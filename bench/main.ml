(* The Zodiac benchmark harness.

     dune exec bench/main.exe                    # all experiments + micro-benchmarks
     dune exec bench/main.exe -- e4 e8           # selected experiments
     dune exec bench/main.exe -- micro           # micro-benchmarks only
     dune exec bench/main.exe -- smoke           # tier-1 gate (engine + daemon)
     dune exec bench/main.exe -- smoke --serve-only  # just the daemon round-trip
     dune exec bench/main.exe -- smoke --mproc-only  # just the multi-process gate

   Each experiment regenerates one table or figure from the paper's
   evaluation section (see DESIGN.md for the index) and prints the
   paper's values alongside for shape comparison. *)

let usage () =
  print_endline
    "usage: main.exe [e1..e21|micro|smoke [--serve-only|--mproc-only]|all]...";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let serve_only = List.mem "--serve-only" args in
  let mproc_only = List.mem "--mproc-only" args in
  let args =
    List.filter (fun a -> a <> "--serve-only" && a <> "--mproc-only") args
  in
  let run_all () =
    List.iter (fun e -> e ()) Experiments.all;
    Micro.run ()
  in
  let (), total =
    Harness.timed "bench.total" (fun () ->
        match args with
        | [] | [ "all" ] -> run_all ()
        | args ->
            List.iter
              (fun arg ->
                match arg with
                | "micro" -> Micro.run ()
                | "smoke" ->
                    if serve_only then Experiments.smoke_serve_only ()
                    else if mproc_only then Experiments.smoke_mproc_only ()
                    else Experiments.smoke ()
                | name -> (
                    match List.assoc_opt name Experiments.by_name with
                    | Some e -> e ()
                    | None -> usage ()))
              args)
  in
  match Zodiac_util.Rss.peak_rss_kb () with
  | Some kb ->
      Printf.printf "\n[bench] total wall time %.1fs, peak RSS %.1f MB\n" total
        (float_of_int kb /. 1024.)
  | None -> Printf.printf "\n[bench] total wall time %.1fs\n" total
