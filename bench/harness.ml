(* Shared context for the experiment reproductions: one pipeline run
   reused by every experiment, plus small reporting helpers. *)

module Pipeline = Zodiac.Pipeline
module Scheduler = Zodiac_validation.Scheduler
module Tablefmt = Zodiac_util.Tablefmt
module Telemetry = Zodiac_util.Telemetry

(* The bench-wide recorder — clocked, because wall time is the whole
   point of a benchmark. [timed] is the single timing helper replacing
   the hand-rolled [Unix.gettimeofday] patterns that used to live in
   harness.ml, main.ml and experiments.ml. Wall times stay inside this
   recorder; pipeline artifacts never see them. *)
let telemetry = Telemetry.create ~clock:Unix.gettimeofday ()

let timed name f = Telemetry.timed telemetry name f

let bench_config =
  {
    Pipeline.default_config with
    Pipeline.corpus_size = 900;
    scheduler = { Scheduler.default_config with Scheduler.max_iterations = 5 };
  }

let artifacts : Pipeline.artifacts Lazy.t =
  lazy
    (Printf.printf "[harness] running the Zodiac pipeline (%d projects)...\n%!"
       bench_config.Pipeline.corpus_size;
     let a, dt =
       timed "harness.pipeline" (fun () -> Pipeline.run ~config:bench_config ())
     in
     Printf.printf "[harness] pipeline done in %.1fs (%d validated checks)\n%!"
       dt
       (List.length a.Pipeline.final_checks);
     a)

let section = Tablefmt.section

let print_table ~header rows = print_endline (Tablefmt.render ~header rows)

let pct x total =
  if total = 0 then "0.0%"
  else Printf.sprintf "%.2f%%" (100.0 *. float_of_int x /. float_of_int total)

let f2 = Printf.sprintf "%.2f"

let paper_note text = Printf.printf "paper: %s\n" text
