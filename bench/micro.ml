(* Bechamel micro-benchmarks for the core components: HCL parsing,
   graph construction, check evaluation, deployment simulation, CSP
   solving, and a full mining pass. *)

open Bechamel
open Toolkit

module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Arm = Zodiac_cloud.Arm
module Graph = Zodiac_iac.Graph
module Program = Zodiac_iac.Program
module Eval = Zodiac_spec.Eval
module Csp = Zodiac_solver.Csp
module Value = Zodiac_iac.Value

let provider = Zodiac_azure.Azure.provider

let quickstart_hcl = Zodiac.Registry.quickstart_vm

let sample_project =
  lazy
    (let projects = Generator.conforming ~provider ~seed:1 ~count:30 () in
     (* pick the largest program for a meaty graph *)
     List.fold_left
       (fun best p ->
         if Program.size p.Generator.program > Program.size best then p.Generator.program
         else best)
       (List.hd projects).Generator.program projects)

let sample_corpus =
  lazy
    (let projects = Generator.conforming ~provider ~seed:2 ~count:60 () in
     List.map (fun p -> p.Generator.program) projects)

let location_check =
  Zodiac_spec.Spec_parser.parse_exn
    "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location"

let test_hcl_parse =
  Test.make ~name:"hcl: parse+compile quickstart"
    (Staged.stage (fun () -> ignore (Zodiac.Registry.compile quickstart_hcl)))

let test_graph_build =
  let prog = Lazy.force sample_project in
  Test.make ~name:"graph: build resource graph"
    (Staged.stage (fun () -> ignore (Graph.build prog)))

let test_check_eval =
  let graph = Graph.build (Lazy.force sample_project) in
  Test.make ~name:"spec: evaluate inter-resource check"
    (Staged.stage (fun () ->
         ignore (Eval.holds ~defaults:(Arm.defaults provider) graph location_check)))

let test_deploy =
  let prog = Lazy.force sample_project in
  Test.make ~name:"cloud: simulate full deployment"
    (Staged.stage (fun () -> ignore (Arm.deploy ~provider prog)))

let test_solver =
  Test.make ~name:"solver: 8-queens-style CSP"
    (Staged.stage (fun () ->
         let p = Csp.create () in
         let n = 8 in
         let cols = List.init n (fun _ -> List.init n (fun i -> Value.Int i)) in
         let vars =
           List.mapi (fun i dom -> Csp.new_var p ~name:(string_of_int i) dom) cols
         in
         List.iteri
           (fun i x ->
             List.iteri
               (fun j y ->
                 if i < j then
                   Csp.add_hard p ~name:(Printf.sprintf "q%d%d" i j) [ x; y ]
                     (fun l ->
                       match (l x, l y) with
                       | Value.Int a, Value.Int b ->
                           a <> b && abs (a - b) <> j - i
                       | _ -> false))
               vars)
           vars;
         ignore (Csp.solve p)))

let test_mining_pass =
  let corpus = Lazy.force sample_corpus in
  let kb = Kb.build ~provider ~projects:corpus () in
  Test.make ~name:"mining: full pass over 60 projects"
    (Staged.stage (fun () -> ignore (Miner.mine ~provider kb corpus)))

let test_kb_probe =
  (* the miner's hot path: tuple-keyed attr_info lookups plus O(1)
     observed-value probes (formerly a string-concat key and a list
     scan, both visible in this number) *)
  let corpus = Lazy.force sample_corpus in
  let kb = Kb.build ~provider ~projects:corpus () in
  let probes =
    List.concat_map
      (fun ty ->
        List.filter_map
          (fun (info : Kb.attr_info) ->
            match info.Kb.observed with
            | (v, _) :: _ -> Some (ty, info.Kb.attr, v)
            | [] -> None)
          (Kb.attrs_of_type kb ty))
      (Kb.types kb)
  in
  Test.make ~name:"kb: attr_info + observed-count probes"
    (Staged.stage (fun () ->
         List.iter
           (fun (rtype, attr, v) ->
             match Kb.attr_info kb ~rtype ~attr with
             | Some info ->
                 ignore (Hashtbl.find_opt info.Kb.observed_index v)
             | None -> ())
           probes))

let benchmarks =
  [
    test_hcl_parse; test_graph_build; test_check_eval; test_deploy; test_solver;
    test_mining_pass; test_kb_probe;
  ]

let run () =
  print_endline (Zodiac_util.Tablefmt.section "Micro-benchmarks (Bechamel)");
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
      in
      let analyze =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-42s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        analyze)
    benchmarks
