(* Reproduction of every table and figure in the paper's evaluation
   (§5). Each experiment prints the measured values next to the
   paper's, so shape comparisons are direct. See DESIGN.md (experiment
   index) and EXPERIMENTS.md (recorded results). *)

module Pipeline = Zodiac.Pipeline
module Report = Zodiac.Report
module Registry = Zodiac.Registry
module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Filter = Zodiac_mining.Filter
module Candidate = Zodiac_mining.Candidate
module Templates = Zodiac_mining.Templates
module Llm = Zodiac_oracle.Llm
module Scheduler = Zodiac_validation.Scheduler
module Testcase = Zodiac_validation.Testcase
module Mutation = Zodiac_validation.Mutation
module Mdc = Zodiac_validation.Mdc
module Rules = Zodiac_cloud.Rules
module Arm = Zodiac_cloud.Arm
module Checker = Zodiac_checkers.Checker
module Baselines = Zodiac_checkers.Baselines
module Check = Zodiac_spec.Check
module Spec_printer = Zodiac_spec.Spec_printer
module Eval = Zodiac_spec.Eval
module Graph = Zodiac_iac.Graph
module Program = Zodiac_iac.Program
module Resource = Zodiac_iac.Resource
module Tablefmt = Zodiac_util.Tablefmt
module Prng = Zodiac_util.Prng

let provider = Zodiac_azure.Azure.provider

open Harness

(* Negative test cases for the validated checks, reused by E2 and E4;
   several positive test cases per check widen the sample the way the
   paper's ~500 randomly generated cases do. *)
let negative_cases :
    (Check.t * Mutation.result) list Lazy.t =
  lazy
    (let a = Lazy.force artifacts in
     let kb = a.Pipeline.kb in
     let corpus = a.Pipeline.corpus in
     List.concat_map
       (fun check ->
         List.filter_map
           (fun tp ->
             Option.map
               (fun res -> (check, res))
               (Mutation.negative ~provider ~kb ~donors:corpus ~target:check
                  ~hard:
                    (List.filter
                       (fun (c : Check.t) -> c.Check.cid <> check.Check.cid)
                       a.Pipeline.final_checks)
                  ~soft:[] tp))
           (Testcase.find ~provider ~limit:3 ~corpus check))
       a.Pipeline.final_checks)

(* Whole-program variants of the same negative cases, used by E4 so the
   baseline checkers see full repositories (the paper samples programs,
   not MDCs; their security findings mostly come from resources
   Zodiac's pruning would have removed). The mutated MDC resources are
   grafted back into the original program. *)
let negative_cases_unpruned :
    (Check.t * Mutation.result) list Lazy.t =
  lazy
    (let a = Lazy.force artifacts in
     let kb = a.Pipeline.kb in
     let corpus = a.Pipeline.corpus in
     List.filter_map
       (fun check ->
         match Testcase.find ~provider ~limit:1 ~corpus check with
         | [] -> None
         | tp :: _ ->
             Option.map
               (fun (res : Mutation.result) ->
                 let grafted =
                   List.fold_left Program.add tp.Testcase.original
                     (Program.resources res.Mutation.program)
                 in
                 (check, { res with Mutation.program = grafted }))
               (Mutation.negative ~provider ~kb ~donors:corpus ~target:check
                  ~hard:
                    (List.filter
                       (fun (c : Check.t) -> c.Check.cid <> check.Check.cid)
                       a.Pipeline.final_checks)
                  ~soft:[] tp))
       a.Pipeline.final_checks)

(* ------------------------------------------------------------------ *)
(* E1 — §5.1 headline: the mining/validation funnel and Table 2        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  print_endline (section "E1  Discovered semantic checks (§5.1, Table 2)");
  let a = Lazy.force artifacts in
  print_endline (Report.mining_summary a);
  print_endline "";
  print_endline (Report.validation_summary a);
  paper_note
    "~9,800 hypothesized; ~5,600 filtered out; 510 validated; template library of 84 shapes";
  Printf.printf "this run: %d template shapes in the catalogue (paper: 84)\n"
    (Templates.count ());
  print_endline "";
  print_table ~header:[ "category"; "validated" ]
    (List.map
       (fun (cat, n) -> [ cat; string_of_int n ])
       (Report.category_breakdown a.Pipeline.final_checks));
  print_endline "\nRepresentative validated checks per template family:";
  let shown = Hashtbl.create 8 in
  List.iter
    (fun check ->
      let cat = Check.category check in
      if not (Hashtbl.mem shown cat) && Hashtbl.length shown < 8 then begin
        Hashtbl.replace shown cat ();
        Printf.printf "  %s\n" (Spec_printer.describe check)
      end)
    a.Pipeline.final_checks

(* ------------------------------------------------------------------ *)
(* E2 — Table 3: deployment-failure phases                              *)
(* ------------------------------------------------------------------ *)

let e2 () =
  print_endline (section "E2  Deployment failure phases (Table 3)");
  let cases = Lazy.force negative_cases in
  let counts = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun ((_ : Check.t), res) ->
      let outcome = Arm.deploy ~provider res.Mutation.program in
      match Arm.first_error outcome with
      | Some f ->
          incr total;
          let key = Rules.phase_to_string f.Arm.phase in
          Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      | None -> ())
    cases;
  let phases =
    [
      ("plugin", "Plugin checks", "9.00%");
      ("pre-sync", "Pre-deploy sync", "5.84%");
      ("create", "Sending request", "74.94%");
      ("polling", "Polling request", "7.79%");
      ("post-sync", "Post-deploy sync", "2.43%");
    ]
  in
  print_table
    ~header:[ "error phase"; "failures"; "share (measured)"; "share (paper)" ]
    (List.map
       (fun (key, label, paper) ->
         let n = Option.value ~default:0 (Hashtbl.find_opt counts key) in
         [ label; string_of_int n; pct n !total; paper ])
       phases);
  Printf.printf "(%d negative test cases deployed)\n" !total

(* ------------------------------------------------------------------ *)
(* E3 — Figure 6: blast radius                                          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  print_endline (section "E3  Blast radius of check violations (Figure 6)");
  (* deploy violating whole programs (not MDCs) so the damage is
     realistic, then aggregate radius per check category *)
  let projects = Generator.generate ~provider ~violation_rate:1.0 ~seed:4242 ~count:500 () in
  let agg : (string, int * int * int * int * int) Hashtbl.t = Hashtbl.create 8 in
  (* category -> (count, halted sum, rollback sum, halted max, rollback max) *)
  List.iter
    (fun p ->
      let outcome = Arm.deploy ~provider p.Generator.program in
      match outcome.Arm.failure with
      | None -> ()
      | Some f -> (
          match Rules.find (provider.Zodiac_provider.Provider.ground_truth ()) f.Arm.rule_id with
          | None -> () (* engine-level failure, not a semantic check *)
          | Some rule ->
              let interpolation_family =
                (* rules generated from the sku documentation tables are
                   the ground truth behind interpolation checks *)
                List.exists
                  (fun prefix ->
                    String.length rule.Rules.rule_id >= String.length prefix
                    && String.equal
                         (String.sub rule.Rules.rule_id 0 (String.length prefix))
                         prefix)
                  [ "VM-NICS-"; "VM-DISKS-"; "GW-TUNNELS-" ]
              in
              let category =
                if interpolation_family then "interpolation"
                else
                  match Check.category rule.Rules.check with
                  | Check.Intra -> "intra-resource"
                  | Check.Inter_no_agg -> "inter w/o agg"
                  | Check.Inter_agg -> "inter w/ agg"
                  | Check.Interpolated -> "interpolation"
              in
              let radius = Arm.blast_radius p.Generator.program outcome in
              let h = List.length radius.Arm.halted_types in
              let r = List.length radius.Arm.rollback_types in
              let c, hs, rs, hm, rm =
                Option.value ~default:(0, 0, 0, 0, 0) (Hashtbl.find_opt agg category)
              in
              Hashtbl.replace agg category (c + 1, hs + h, rs + r, max hm h, max rm r)))
    projects;
  print_table
    ~header:
      [ "check category"; "violations"; "avg halted types"; "avg rollback types";
        "max halted"; "max rollback" ]
    (List.filter_map
       (fun category ->
         match Hashtbl.find_opt agg category with
         | None -> None
         | Some (c, hs, rs, hm, rm) ->
             Some
               [
                 category; string_of_int c;
                 f2 (float_of_int hs /. float_of_int c);
                 f2 (float_of_int rs /. float_of_int c);
                 string_of_int hm; string_of_int rm;
               ])
       [ "intra-resource"; "inter w/o agg"; "inter w/ agg"; "interpolation" ]);
  paper_note
    "worst-case ~7 types in the rollback radius, ~6 halted; inter-resource checks have the largest radius"

(* ------------------------------------------------------------------ *)
(* E4 — Table 4: Zodiac vs existing checkers                            *)
(* ------------------------------------------------------------------ *)

let e4 () =
  print_endline (section "E4  Zodiac vs existing IaC checkers (Table 4)");
  let cases = Lazy.force negative_cases_unpruned in
  (* the paper's ~500 sampled cases carried generic syntax problems;
     mirror that by dropping a required attribute from a random
     resource in every eighth case *)
  let drop_required prog =
    let victims =
      List.filter_map
        (fun r ->
          match Zodiac_azure.Catalog.find r.Resource.rtype with
          | None -> None
          | Some schema -> (
              match
                List.find_opt
                  (fun (a : Zodiac_iac.Schema.attr) ->
                    a.Zodiac_iac.Schema.req = Zodiac_iac.Schema.Required
                    && a.Zodiac_iac.Schema.default = None
                    && Resource.attr r a.Zodiac_iac.Schema.aname <> None)
                  schema.Zodiac_iac.Schema.attrs
              with
              | Some a -> Some (Resource.id r, a.Zodiac_iac.Schema.aname)
              | None -> None))
        (Program.resources prog)
    in
    (* break a late-deploying resource, so the case's semantic failure
       often fires first and the native finding misses the root cause —
       the paper's precision gap *)
    match List.rev victims with
    | [] -> prog
    | (rid, aname) :: _ ->
        Program.update prog rid (fun r -> Resource.remove_attr r aname)
  in
  let programs =
    List.mapi
      (fun i (_, (res : Mutation.result)) ->
        if i mod 8 = 3 then drop_required res.Mutation.program
        else res.Mutation.program)
      cases
  in
  let total = List.length programs in
  (* pre-compute the actual failure per case for the precision column *)
  let failures =
    List.map (fun prog -> (prog, Arm.first_error (Arm.deploy ~provider prog))) programs
  in
  let rows =
    List.map
      (fun (checker : Checker.t) ->
        if not checker.Checker.supports_plan_json then
          [ checker.Checker.name ^ "*"; checker.Checker.spec_format;
            checker.Checker.input_phase; "---"; "---" ]
        else begin
          let flagged = ref 0 in
          let relevant = ref 0 in
          List.iter
            (fun (prog, failure) ->
              let findings = checker.Checker.analyze prog in
              if findings <> [] then begin
                incr flagged;
                (* a finding points at the actual deployment problem when
                   it is non-security and names the failing resource *)
                let points_at_failure =
                  match failure with
                  | None -> false
                  | Some f ->
                      List.exists
                        (fun finding ->
                          (not finding.Checker.security_related)
                          &&
                          match finding.Checker.resource with
                          | Some rid -> Resource.equal_id rid f.Arm.resource
                          | None -> false)
                        findings
                in
                if points_at_failure then incr relevant
              end)
            failures;
          let precision =
            (* only meaningful for deployment-oriented checkers *)
            if String.equal checker.Checker.name "Native" then
              if !flagged = 0 then "0%" else pct !relevant !flagged
            else "---"
          in
          [ checker.Checker.name; checker.Checker.spec_format;
            checker.Checker.input_phase; pct !flagged total; precision ]
        end)
      (Baselines.all provider)
  in
  print_table ~header:[ "tool"; "spec"; "phase"; "prevalence"; "precision" ] rows;
  Printf.printf "(%d Zodiac negative test cases; all fail to deploy by construction)\n" total;
  paper_note
    "Native 11.74%/36.67%; TFSec 11.54%; Checkov 66.34%; TFComp 3.91%; Regula 13.31%; TFLint cannot read plan JSON"

(* ------------------------------------------------------------------ *)
(* E5 — Figure 7a: KB ablation on intra-resource mining                 *)
(* ------------------------------------------------------------------ *)

let e5 () =
  print_endline (section "E5  Candidate checks with and without the KB (Figure 7a)");
  let a = Lazy.force artifacts in
  let programs = List.map snd a.Pipeline.corpus in
  let with_kb = Miner.intra_counts_by_type ~provider ~use_kb:true a.Pipeline.kb programs in
  let without_kb = Miner.intra_counts_by_type ~provider ~use_kb:false a.Pipeline.kb programs in
  let merged =
    List.filter_map
      (fun (ty, attrs, w) ->
        match List.find_opt (fun (ty', _, _) -> String.equal ty ty') without_kb with
        | Some (_, _, wo) when w > 0 || wo > 0 -> Some (ty, attrs, w, wo)
        | _ -> None)
      with_kb
    |> List.sort (fun (_, a1, _, _) (_, a2, _, _) -> Int.compare a1 a2)
  in
  let shown =
    List.filteri (fun i _ -> i mod (max 1 (List.length merged / 12)) = 0) merged
  in
  print_table
    ~header:[ "resource type"; "#attrs"; "mined w/ KB"; "mined w/o KB"; "ratio" ]
    (List.map
       (fun (ty, attrs, w, wo) ->
         [
           ty; string_of_int attrs; string_of_int w; string_of_int wo;
           (if w = 0 then "-" else Printf.sprintf "%.0fx" (float_of_int wo /. float_of_int w));
         ])
       shown);
  let tw = List.fold_left (fun acc (_, _, w, _) -> acc + w) 0 merged in
  let two = List.fold_left (fun acc (_, _, _, wo) -> acc + wo) 0 merged in
  Printf.printf "totals: %d with KB vs %d without (%.0fx reduction)\n" tw two
    (float_of_int two /. float_of_int (max tw 1));
  paper_note "w/o KB generated 70,000+ intra checks, ~35x more than with the KB"

(* ------------------------------------------------------------------ *)
(* E6 — Figure 7b: statistical filtering and LLM interpolation          *)
(* ------------------------------------------------------------------ *)

let e6 () =
  print_endline (section "E6  Filtering and interpolation effectiveness (Figure 7b)");
  let a = Lazy.force artifacts in
  let f = a.Pipeline.filtered in
  let n_conf = List.length f.Filter.removed_confidence in
  let n_lift = List.length f.Filter.removed_lift in
  let n_kept = List.length f.Filter.kept in
  let statistical = n_conf + n_lift + n_kept in
  print_table ~header:[ "stage"; "checks"; "share of statistical candidates" ]
    [
      [ "removed by confidence"; string_of_int n_conf; pct n_conf statistical ];
      [ "removed by lift"; string_of_int n_lift; pct n_lift statistical ];
      [ "kept"; string_of_int n_kept; pct n_kept statistical ];
      [ "llm-found (interpolated)"; string_of_int (List.length a.Pipeline.llm_refined); "" ];
      [ "llm-removed"; string_of_int a.Pipeline.llm_rejected; "" ];
    ];
  paper_note "confidence removed 38.3%, lift another 16.2%; 40% of interpolation queries supported";
  (* §5.3's LLM audit of the filters: assess a sample of kept vs removed *)
  let oracle = Llm.create ~provider ~error_rate:0.05 1234 in
  let rng = Prng.create 77 in
  let sample xs n = Prng.sample rng n xs in
  let rate candidates =
    match candidates with
    | [] -> 0.0
    | _ ->
        let tp = List.length (List.filter (Llm.assess oracle) candidates) in
        float_of_int tp /. float_of_int (List.length candidates)
  in
  let kept_rate = rate (sample f.Filter.kept 200) in
  let removed_rate = rate (sample (f.Filter.removed_confidence @ f.Filter.removed_lift) 200) in
  Printf.printf
    "\nLLM plausibility audit: %.1f%% of kept vs %.1f%% of filtered-out checks judged real\n"
    (100.0 *. kept_rate) (100.0 *. removed_rate);
  paper_note "18.80% of kept vs 4.53% of statistically-removed judged true positives"

(* ------------------------------------------------------------------ *)
(* E7 — Table 5: test-case generation ablations                         *)
(* ------------------------------------------------------------------ *)

let e7 () =
  print_endline (section "E7  Negative test case generation ablations (Table 5)");
  let a = Lazy.force artifacts in
  let kb = a.Pipeline.kb in
  let corpus = a.Pipeline.corpus in
  let validated = a.Pipeline.final_checks in
  let candidates = a.Pipeline.candidates in
  let falsified_candidates =
    List.filter
      (fun (c : Check.t) ->
        not (List.exists (fun (v : Check.t) -> v.Check.cid = c.Check.cid) validated))
      candidates
  in
  let sample = List.filteri (fun i _ -> i < 60) validated in
  let defaults = Arm.defaults provider in
  let count_violations prog checks =
    let g = Graph.build prog in
    List.length
      (List.filter (fun c -> not (Eval.holds ~defaults g c)) checks)
  in
  let run options =
    let acc = ref [] in
    List.iter
      (fun check ->
        match Testcase.find ~provider ~limit:1 ~corpus check with
        | [] -> ()
        | tp :: _ -> (
            let hard, soft =
              if options.Mutation.consider_others then
                ( List.filter (fun (v : Check.t) -> v.Check.cid <> check.Check.cid) validated,
                  List.filter
                    (fun (c : Check.t) -> c.Check.cid <> check.Check.cid)
                    falsified_candidates )
              else ([], [])
            in
            match Mutation.negative ~provider ~options ~kb ~donors:corpus ~target:check ~hard ~soft tp with
            | Some res ->
                let tv =
                  count_violations res.Mutation.program
                    (List.filter (fun (v : Check.t) -> v.Check.cid <> check.Check.cid) validated)
                in
                let fv = count_violations res.Mutation.program falsified_candidates in
                acc := (tv, fv, res.Mutation.attr_changes, res.Mutation.topo_changes) :: !acc
            | None -> ()))
      sample;
    !acc
  in
  let avg f xs =
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left (fun acc x -> acc +. float_of_int (f x)) 0.0 xs
           /. float_of_int (List.length xs)
  in
  let naive = run { Mutation.consider_others = false; minimize_changes = true } in
  let full = run Mutation.default_options in
  let unmin = run { Mutation.consider_others = true; minimize_changes = false } in
  print_table
    ~header:[ "check encoding strategy"; "TP violations"; "FP violations" ]
    [
      [ "ignoring non-target checks"; f2 (avg (fun (tv, _, _, _) -> tv) naive);
        f2 (avg (fun (_, fv, _, _) -> fv) naive) ];
      [ "Zodiac (consider other checks)"; f2 (avg (fun (tv, _, _, _) -> tv) full);
        f2 (avg (fun (_, fv, _, _) -> fv) full) ];
    ];
  paper_note "ignoring others: 4.80 TP / 11.76 FP collateral; Zodiac: 0 TP / 4.04 FP";
  print_table
    ~header:[ "config mutation strategy"; "attr changes"; "topo changes" ]
    [
      [ "no constraints on changes"; f2 (avg (fun (_, _, ac, _) -> ac) unmin);
        f2 (avg (fun (_, _, _, tc) -> tc) unmin) ];
      [ "Zodiac (minimizing changes)"; f2 (avg (fun (_, _, ac, _) -> ac) full);
        f2 (avg (fun (_, _, _, tc) -> tc) full) ];
    ];
  paper_note "unconstrained: 11.05 attr / 3.20 topo; Zodiac: 2.87 attr / 2.90 topo"

(* ------------------------------------------------------------------ *)
(* E8 — Figure 8: scheduler convergence                                 *)
(* ------------------------------------------------------------------ *)

let e8 () =
  print_endline (section "E8  Validation scheduling convergence (Figure 8)");
  let a = Lazy.force artifacts in
  let show label (result : Scheduler.result) =
    Printf.printf "\n%s:\n" label;
    print_table
      ~header:
        [ "iter"; "fp deployable"; "fp unsat"; "fp no-instance"; "tp single";
          "tp group"; "remaining" ]
      (List.map
         (fun (it : Scheduler.iteration) ->
           [
             string_of_int it.Scheduler.iter;
             string_of_int it.Scheduler.fp_deployable;
             string_of_int it.Scheduler.fp_unsat;
             string_of_int it.Scheduler.fp_no_instance;
             string_of_int it.Scheduler.tp_single;
             string_of_int it.Scheduler.tp_group;
             string_of_int it.Scheduler.remaining;
           ])
         result.Scheduler.iterations);
    Printf.printf "validated=%d, unresolved=%d\n"
      (List.length result.Scheduler.validated)
      (List.length
         (List.filter
            (fun (_, v) -> v = Scheduler.Falsified `Stalled)
            result.Scheduler.falsified))
  in
  show "(a,c,d) full scheduler" a.Pipeline.validation;
  let tp_group_total =
    List.fold_left
      (fun acc it -> acc + it.Scheduler.tp_group)
      0 a.Pipeline.validation.Scheduler.iterations
  in
  let tp_total =
    tp_group_total
    + List.fold_left (fun acc it -> acc + it.Scheduler.tp_single) 0
        a.Pipeline.validation.Scheduler.iterations
  in
  Printf.printf
    "validated through indistinguishable groups: %s of all true positives (paper: ~half)\n"
    (pct tp_group_total (max tp_total 1));
  (* (b) ablation: no indistinguishable-check handling *)
  let config =
    { (Harness.bench_config.Pipeline.scheduler) with Scheduler.handle_indistinct = false }
  in
  let ablated =
    Scheduler.run ~config ~provider ~kb:a.Pipeline.kb ~corpus:a.Pipeline.corpus
      ~deploy:(Pipeline.deploy ~provider) a.Pipeline.candidates
  in
  show "(b) without indistinguishable-check handling" ablated;
  Printf.printf
    "=> the ablated run stalls with %d candidates unresolved; the full run resolves all but %d\n"
    (List.length
       (List.filter (fun (_, v) -> v = Scheduler.Falsified `Stalled) ablated.Scheduler.falsified))
    (List.length
       (List.filter
          (fun (_, v) -> v = Scheduler.Falsified `Stalled)
          a.Pipeline.validation.Scheduler.falsified))

(* ------------------------------------------------------------------ *)
(* E9 — Table 6: MDC pruning                                            *)
(* ------------------------------------------------------------------ *)

let e9 () =
  print_endline (section "E9  MDC pruning of positive test cases (Table 6)");
  let a = Lazy.force artifacts in
  let corpus = a.Pipeline.corpus in
  let types = [ "FW"; "SG"; "GW"; "LB"; "RT" ] in
  let rows =
    List.filter_map
      (fun ty ->
        (* checks binding this type, validated or candidate *)
        let checks =
          List.filter
            (fun (c : Check.t) ->
              List.exists (fun (b : Check.binding) -> b.Check.btype = ty) c.Check.bindings)
            a.Pipeline.candidates
        in
        let tps =
          List.concat_map (fun c -> Testcase.find ~provider ~limit:2 ~corpus c) checks
        in
        match tps with
        | [] -> None
        | _ ->
            let stats =
              List.map
                (fun (tp : Testcase.tp) ->
                  (Mdc.measure provider tp.Testcase.program, Mdc.measure provider tp.Testcase.original))
                tps
            in
            let avg f =
              List.fold_left (fun acc x -> acc +. float_of_int (f x)) 0.0 stats
              /. float_of_int (List.length stats)
            in
            Some
              [
                ty;
                f2 (avg (fun (p, _) -> p.Mdc.attended));
                f2 (avg (fun (_, o) -> o.Mdc.attended));
                f2 (avg (fun (p, _) -> p.Mdc.unattended));
                f2 (avg (fun (_, o) -> o.Mdc.unattended));
                string_of_int (List.length stats);
              ])
      types
  in
  print_table
    ~header:[ "type"; "pruned/att."; "orig./att."; "pruned/unatt."; "orig./unatt."; "cases" ]
    rows;
  paper_note "pruning shrinks test cases 3x-9x and sheds most unattended resources"

(* ------------------------------------------------------------------ *)
(* E10 — §5.5: real-world misconfigurations                             *)
(* ------------------------------------------------------------------ *)

let e10 () =
  print_endline (section "E10  Real-world misconfigurations (§5.5)");
  let a = Lazy.force artifacts in
  let reports = Pipeline.scan ~provider ~checks:a.Pipeline.final_checks ~corpus:a.Pipeline.corpus in
  let buggy =
    List.sort_uniq compare (List.map (fun r -> r.Pipeline.project) reports)
  in
  Printf.printf "checked %d repositories: %d carry violations (%s)\n"
    (List.length a.Pipeline.corpus) (List.length buggy)
    (pct (List.length buggy) (List.length a.Pipeline.corpus));
  paper_note "85 of ~4,200 repositories (2.0%) violated validated checks";
  (* top-3 checks by violation count, as GitHub code-search queries *)
  let by_check = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let key = r.Pipeline.check.Check.cid in
      Hashtbl.replace by_check key
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_check key)))
    reports;
  let ranked =
    Hashtbl.fold (fun cid n acc -> (cid, n) :: acc) by_check []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  print_endline "\ntop checks by violations found:";
  List.iteri
    (fun i (cid, n) ->
      if i < 3 then
        match
          List.find_opt (fun (c : Check.t) -> c.Check.cid = cid) a.Pipeline.final_checks
        with
        | Some c -> Printf.printf "  %2d violations: %s\n" n (Spec_printer.to_string c)
        | None -> ())
    ranked;
  (* the documentation case study *)
  print_endline "\nofficial provider usage example (issue #27222 miniature):";
  let buggy_prog = Registry.compile_exn Registry.appgw_assoc_buggy in
  (match Arm.first_error (Arm.deploy ~provider buggy_prog) with
  | Some f ->
      Printf.printf "  as documented: FAILS [%s] %s\n" f.Arm.rule_id f.Arm.message
  | None -> print_endline "  unexpected success");
  let fixed = Registry.compile_exn Registry.appgw_assoc_fixed in
  Printf.printf "  after both fixes: %s\n"
    (if Pipeline.deploy ~provider fixed then "deploys cleanly" else "still fails");
  print_endline "\nofficial mssql_database usage example (issue #27194 miniature):";
  (match Arm.first_error (Arm.deploy ~provider (Registry.compile_exn Registry.mssql_db_buggy)) with
  | Some f -> Printf.printf "  as documented: FAILS [%s] %s\n" f.Arm.rule_id f.Arm.message
  | None -> print_endline "  unexpected success");
  Printf.printf "  with max_size_gb = 2: %s\n"
    (if Pipeline.deploy ~provider (Registry.compile_exn Registry.mssql_db_fixed) then
       "deploys cleanly"
     else "still fails")

(* ------------------------------------------------------------------ *)
(* E11 — §5.6: false positives                                          *)
(* ------------------------------------------------------------------ *)

let e11 () =
  print_endline (section "E11  False positives of validation (§5.6)");
  let a = Lazy.force artifacts in
  let initially = List.length a.Pipeline.validation.Scheduler.validated in
  let exposed = List.length a.Pipeline.counterexample_fps in
  Printf.printf
    "validation produced %d checks; the counterexample-testing pass exposed %d false positives (%s)\n"
    initially exposed (pct exposed (max initially 1));
  paper_note "539 initially; 29 (5.4%) false positives, 17 (3.1%) via automated counterexample testing";
  List.iter
    (fun (c : Check.t) -> Printf.printf "  exposed: %s\n" (Spec_printer.to_string c))
    (List.filteri (fun i _ -> i < 6) a.Pipeline.counterexample_fps);
  (* demonstrate the §5.6 data-scarcity mechanism explicitly *)
  print_endline "\nthe create=Attach data-scarcity example:";
  let fp =
    Zodiac_spec.Spec_parser.parse_exn
      "let r:VM, v:VPC in path(r -> v) => r.source_image_ref != null"
  in
  let big =
    List.map
      (fun p -> (p.Generator.pname, p.Generator.program))
      (Generator.conforming ~provider ~seed:88 ~count:1500 ())
  in
  let _, exposed_fp =
    Scheduler.counterexample_pass ~provider ~corpus:big ~deploy:(Pipeline.deploy ~provider) [ fp ]
  in
  Printf.printf
    "  'VMs reaching a VPC must declare a source image' is %s by a rare create=Attach repository\n"
    (if exposed_fp <> [] then "refuted" else "NOT refuted (rare option absent from this corpus)")

(* ------------------------------------------------------------------ *)
(* E12 — extensions beyond the paper's prototype                        *)
(* ------------------------------------------------------------------ *)

let e12 () =
  print_endline
    (section "E12  Extensions: live updates, quotas, regional skus (§1/§6)");
  (* live updates: disruption caused by in-place vs replace changes *)
  let current = Registry.compile_exn Registry.quickstart_vm in
  let module Update = Zodiac_cloud.Update in
  let in_place =
    Program.update current
      { Resource.rtype = "NIC"; rname = "nic" }
      (fun r ->
        Resource.set r "accelerated_networking" (Zodiac_iac.Value.Bool true))
  in
  let replace =
    Program.update current
      { Resource.rtype = "VPC"; rname = "net" }
      (fun r ->
        Resource.set r "address_space"
          (Zodiac_iac.Value.List [ Zodiac_iac.Value.Str "10.99.0.0/16" ]))
  in
  let d1 = Update.apply ~provider ~current ~desired:in_place () in
  let d2 = Update.apply ~provider ~current ~desired:replace () in
  print_table
    ~header:[ "update"; "resources recreated (downtime)"; "outcome" ]
    [
      [ "NIC attribute (in place)"; string_of_int (Update.disruption d1);
        (if Arm.success d1.Update.outcome then "applies" else "fails") ];
      [ "VPC address space (replace cascade)"; string_of_int (Update.disruption d2);
        (if Arm.success d2.Update.outcome then "applies" else "fails mid-update") ];
    ];
  (* subscription quotas and regional skus, the §6 unsupported classes *)
  let module Quota = Zodiac_cloud.Quota in
  let ips n =
    Program.of_resources
      (List.init n (fun i ->
           Resource.make "IP"
             (Printf.sprintf "ip%d" i)
             [
               ("name", Zodiac_iac.Value.Str (Printf.sprintf "pip%d" i));
               ("location", Zodiac_iac.Value.Str "eastus");
               ("allocation", Zodiac_iac.Value.Str "Static");
               ("sku", Zodiac_iac.Value.Str "Standard");
             ]))
  in
  let unlimited = Arm.deploy ~provider (ips 12) in
  let limited = Arm.deploy ~provider ~quota:Quota.default_subscription (ips 12) in
  Printf.printf
    "\n12 public IPs: unlimited subscription %s; default subscription %s (quota: %d IPs)\n"
    (if Arm.success unlimited then "deploys" else "fails")
    (match Arm.first_error limited with
    | Some f -> Printf.sprintf "fails with %s" f.Arm.rule_id
    | None -> "deploys")
    10;
  let gpu region =
    Registry.compile_exn Registry.quickstart_vm
    |> fun p ->
    Program.update p
      { Resource.rtype = "VM"; rname = "vm" }
      (fun r -> Resource.set r "sku" (Zodiac_iac.Value.Str "Standard_NC6s_v3"))
    |> fun p ->
    List.fold_left
      (fun p r ->
        Program.update p (Resource.id r) (fun r ->
            match Resource.get r "location" with
            | Zodiac_iac.Value.Str _ ->
                Resource.set r "location" (Zodiac_iac.Value.Str region)
            | _ -> r))
      p (Program.resources p)
  in
  let quota = { Quota.unlimited with Quota.regional_skus = true } in
  Printf.printf
    "GPU VM (Standard_NC6s_v3): eastus %s; ukwest %s under regional enforcement\n"
    (if Arm.success (Arm.deploy ~provider ~quota (gpu "eastus")) then "deploys" else "fails")
    (match Arm.first_error (Arm.deploy ~provider ~quota (gpu "ukwest")) with
    | Some f -> Printf.sprintf "fails with %s" f.Arm.rule_id
    | None -> "deploys");
  paper_note
    "region- and subscription-specific constraints are §6 future work; implemented here as opt-in engine extensions"

(* ------------------------------------------------------------------ *)
(* E13 — beyond the paper: the resilient deployment-execution engine  *)
(* ------------------------------------------------------------------ *)

module Engine = Zodiac_engine.Engine
module Engine_stats = Zodiac_engine.Stats
module Flaky = Zodiac_cloud.Flaky

(* One mining pass shared by every engine configuration, so each run
   validates the identical candidate set through a different engine. *)
let e13_setup ~corpus_size ~candidate_cap ~max_iterations =
  let config =
    {
      Pipeline.default_config with
      Pipeline.corpus_size;
      scheduler =
        { Scheduler.default_config with Scheduler.max_iterations };
    }
  in
  let a = Pipeline.mine_only ~config () in
  let candidates =
    List.filteri (fun i _ -> i < candidate_cap) a.Pipeline.candidates
  in
  (config, a, candidates)

let e13_run (config : Pipeline.config) (a : Pipeline.artifacts) candidates
    engine_config =
  let engine = Engine.create ~provider ~config:engine_config () in
  let result =
    Scheduler.run ~config:config.Pipeline.scheduler ~provider ~kb:a.Pipeline.kb
      ~corpus:a.Pipeline.corpus
      ~deploy:(Engine.oracle engine)
      candidates
  in
  (result, Engine.stats engine)

let verdict_sets (result : Scheduler.result) =
  let cids cs = List.sort String.compare (List.map (fun (c : Check.t) -> c.Check.cid) cs) in
  ( cids result.Scheduler.validated,
    cids (List.map fst result.Scheduler.falsified) )

let e13 () =
  print_endline
    (section "E13  Resilient deployment engine: memo savings + fault stability");
  let config, a, candidates =
    e13_setup ~corpus_size:350 ~candidate_cap:40 ~max_iterations:4
  in
  Printf.printf
    "corpus: %d projects; validating %d of %d mined candidates (capped for bench wall time)\n\n"
    config.Pipeline.corpus_size (List.length candidates)
    (List.length a.Pipeline.candidates);
  (* --- deployments saved by the memo cache --------------------------- *)
  let memo_off, off_stats =
    e13_run config a candidates { Engine.default_config with Engine.memo = false }
  in
  let memo_on, on_stats = e13_run config a candidates Engine.default_config in
  print_table
    ~header:
      [ "memo cache"; "engine requests"; "raw deployments"; "saved"; "saved %" ]
    (List.map
       (fun (label, (s : Engine_stats.snapshot)) ->
         [
           label;
           string_of_int s.Engine_stats.requests;
           string_of_int s.Engine_stats.attempts;
           string_of_int s.Engine_stats.deployments_saved;
           pct s.Engine_stats.deployments_saved s.Engine_stats.requests;
         ])
       [ ("off", off_stats); ("on", on_stats) ]);
  Printf.printf "verdicts identical with memo on vs off: %b\n"
    (verdict_sets memo_off = verdict_sets memo_on);
  (* --- verdict stability under injected transient faults ------------- *)
  let baseline = verdict_sets memo_on in
  print_endline "";
  print_table
    ~header:
      [ "fault rate"; "raw deploys"; "retries"; "faults"; "breaker opens";
        "sim time"; "verdicts = fault-free" ]
    (List.map
       (fun rate ->
         let result, s =
           e13_run config a candidates
             (Engine.faulty_config ~fault_rate:rate ~seed:11 ())
         in
         [
           f2 rate;
           string_of_int s.Engine_stats.attempts;
           string_of_int s.Engine_stats.retries;
           string_of_int s.Engine_stats.faults;
           string_of_int s.Engine_stats.breaker_opens;
           Printf.sprintf "%.0fs" s.Engine_stats.sim_seconds;
           string_of_bool (verdict_sets result = baseline);
         ])
       [ 0.0; 0.1; 0.2; 0.3; 0.45 ]);
  paper_note
    "beyond the paper: live Azure throttles and races where the paper assumes \
     an infallible deploy oracle; the engine's burst-capped faults + retry \
     budget make verdict stability a guarantee, and α-canonical memoization \
     converts repeated mutant deployments into cache hits"

(* ------------------------------------------------------------------ *)
(* E14 — beyond the paper: multicore runtime scaling                    *)
(* ------------------------------------------------------------------ *)

module Parallel = Zodiac_util.Parallel
module Json = Zodiac_util.Json

(* Everything that must be jobs-invariant: the full check funnel, the KB
   shape, and the deployment accounting down to individual cache hits. *)
let e14_fingerprint (a : Pipeline.artifacts) =
  ( List.map (fun (c : Check.t) -> c.Check.cid) a.Pipeline.final_checks,
    List.map (fun (c : Check.t) -> c.Check.cid) a.Pipeline.candidates,
    Kb.size a.Pipeline.kb,
    List.length (Kb.conn_kinds a.Pipeline.kb),
    a.Pipeline.validation.Scheduler.deployments,
    a.Pipeline.validation.Scheduler.iterations,
    a.Pipeline.engine_stats )

let e14 () =
  print_endline
    (section "E14  Multicore runtime: wall-clock scaling over --jobs");
  let corpus_size = 400 in
  let config jobs =
    {
      Pipeline.default_config with
      Pipeline.corpus_size;
      jobs;
      scheduler = { Scheduler.default_config with Scheduler.max_iterations = 3 };
    }
  in
  let runs =
    List.map
      (fun jobs ->
        (* recorded per run: on a shared machine the recommended domain
           count can change between runs, and a 1-domain container makes
           every speedup figure meaningless — the JSON flags that. *)
        let recommended = Parallel.recommended_jobs () in
        let a, dt =
          timed
            (Printf.sprintf "e14.jobs%d" jobs)
            (fun () -> Pipeline.run ~config:(config jobs) ())
        in
        Printf.printf "  jobs=%d done in %.1fs (recommended domains: %d)\n%!"
          jobs dt recommended;
        (jobs, dt, recommended, e14_fingerprint a))
      [ 1; 2; 4; 8 ]
  in
  let base_time, base_fp =
    match runs with (_, dt, _, fp) :: _ -> (dt, fp) | [] -> assert false
  in
  let identical = List.for_all (fun (_, _, _, fp) -> fp = base_fp) runs in
  let available = Parallel.recommended_jobs () in
  let parallelism_unavailable =
    available <= 1
    || List.exists (fun (_, _, recommended, _) -> recommended <= 1) runs
  in
  print_endline "";
  print_table
    ~header:[ "jobs"; "wall (s)"; "speedup vs jobs=1"; "artifacts" ]
    (List.map
       (fun (jobs, dt, _, fp) ->
         [
           string_of_int jobs; f2 dt; Printf.sprintf "%.2fx" (base_time /. dt);
           (if fp = base_fp then "identical" else "DIVERGED");
         ])
       runs);
  Printf.printf
    "available domains on this machine: %d (speedup is only expected when \
     jobs <= available domains)\n"
    available;
  if parallelism_unavailable then
    print_endline
      "NOTE: only one domain available — byte-identity is the meaningful \
       result here; wall-clock ratios are not";
  if not identical then begin
    print_endline "E14: FAIL — artifacts diverged across jobs settings";
    exit 1
  end;
  (* adaptive granularity clamps effective domains to the hardware, so
     asking for more jobs than cores must not cost anything: jobs=2 may
     not regress below jobs=1 (beyond timing noise) *)
  let time_at j =
    List.find_map
      (fun (jobs, dt, _, _) -> if jobs = j then Some dt else None)
      runs
  in
  let jobs2_ratio =
    match (time_at 2, time_at 1) with
    | Some t2, Some t1 -> t2 /. Float.max t1 1e-9
    | _ -> 1.0
  in
  let no_regression = jobs2_ratio <= 1.25 in
  Printf.printf "jobs=2 vs jobs=1 wall-time ratio: %.2f (tolerance 1.25)\n"
    jobs2_ratio;
  if not no_regression then begin
    print_endline
      "E14: FAIL — jobs=2 regressed below jobs=1 despite adaptive granularity";
    exit 1
  end;
  let json =
    Json.Obj
      [
        ("experiment", Json.String "e14-multicore-scaling");
        ("corpus_size", Json.Int corpus_size);
        ("available_domains", Json.Int available);
        ("parallelism_unavailable", Json.Bool parallelism_unavailable);
        ("artifacts_identical", Json.Bool identical);
        ("jobs2_vs_jobs1_ratio", Json.Float jobs2_ratio);
        ("jobs2_regression_fixed", Json.Bool no_regression);
        ( "runs",
          Json.List
            (List.map
               (fun (jobs, dt, recommended, _) ->
                 Json.Obj
                   [
                     ("jobs", Json.Int jobs);
                     ("recommended_domain_count", Json.Int recommended);
                     ("wall_seconds", Json.Float dt);
                     ("speedup_vs_jobs1", Json.Float (base_time /. dt));
                   ])
               runs) );
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_parallel.json"

(* ------------------------------------------------------------------ *)
(* E15 — beyond the paper: warm-start artifact cache                    *)
(* ------------------------------------------------------------------ *)

module Cache = Zodiac_util.Cache
module Codec = Zodiac_util.Codec

let rm_rf dir =
  if Sys.file_exists dir then begin
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
         (Sys.readdir dir)
     with Sys_error _ -> ());
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* Byte-exact export of everything the mining phase produced: the full
   corpus (programs included), the mined candidates with their IEEE-754
   statistics bits, the deduplicated check funnel and the KB shape. Two
   runs agree on these bytes iff their artifacts are truly identical —
   the warm-start determinism guarantee, checked stronger than cid
   fingerprints would. *)
let mine_artifact_bytes (a : Pipeline.artifacts) =
  Codec.encode ~stage:"bench-artifacts" (fun b ->
      Codec.write_list Generator.write_project b a.Pipeline.projects;
      Codec.write_list Candidate.write b a.Pipeline.mined;
      Codec.write_list Check.write b a.Pipeline.candidates;
      Codec.write_int b (Kb.size a.Pipeline.kb);
      Codec.write_int b (List.length (Kb.conn_kinds a.Pipeline.kb));
      Codec.write_list Codec.write_string b (Kb.types a.Pipeline.kb))

let e15 () =
  print_endline (section "E15  Warm-start cache: cold vs warm mining runs");
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "zodiac-e15-cache" in
  rm_rf dir;
  let corpus_size = 400 in
  let config =
    { Pipeline.default_config with Pipeline.corpus_size; cache_dir = Some dir }
  in
  let time f = timed "e15.run" f in
  let cold, cold_t = time (fun () -> Pipeline.mine_only ~config ()) in
  let warm, warm_t = time (fun () -> Pipeline.mine_only ~config ()) in
  let identical =
    String.equal (mine_artifact_bytes cold) (mine_artifact_bytes warm)
  in
  let speedup = cold_t /. warm_t in
  (* growing the corpus extends the cached prefix (fresh tail projects +
     monoid KB delta) instead of rebuilding; compare against a cold run
     at the larger size *)
  let grown_size = corpus_size + 100 in
  let config_grown = { config with Pipeline.corpus_size = grown_size } in
  let inc, inc_t = time (fun () -> Pipeline.mine_only ~config:config_grown ()) in
  let cold_grown, cold_grown_t =
    time (fun () ->
        Pipeline.mine_only ~config:{ config_grown with Pipeline.cache_dir = None } ())
  in
  let inc_identical =
    String.equal (mine_artifact_bytes inc) (mine_artifact_bytes cold_grown)
  in
  let row name t (a : Pipeline.artifacts) verdict =
    let s = a.Pipeline.cache_stats in
    [
      name; f2 t; string_of_int s.Cache.hits; string_of_int s.Cache.misses;
      string_of_int s.Cache.writes; verdict;
    ]
  in
  print_table
    ~header:[ "run"; "wall (s)"; "hits"; "misses"; "writes"; "artifacts" ]
    [
      row (Printf.sprintf "cold n=%d" corpus_size) cold_t cold "baseline";
      row (Printf.sprintf "warm n=%d" corpus_size) warm_t warm
        (if identical then "identical" else "DIVERGED");
      row (Printf.sprintf "incr n=%d" grown_size) inc_t inc
        (if inc_identical then "identical" else "DIVERGED");
      row (Printf.sprintf "cold n=%d" grown_size) cold_grown_t cold_grown
        "baseline";
    ];
  Printf.printf
    "warm speedup %.1fx (threshold 5x); incremental run %.1fx vs cold at the \
     grown size\n"
    speedup
    (cold_grown_t /. Float.max inc_t 1e-9);
  let ok = identical && inc_identical && speedup >= 5.0 in
  let json =
    Json.Obj
      [
        ("experiment", Json.String "e15-warm-start-cache");
        ("corpus_size", Json.Int corpus_size);
        ("grown_corpus_size", Json.Int grown_size);
        ("cold_wall_seconds", Json.Float cold_t);
        ("warm_wall_seconds", Json.Float warm_t);
        ("warm_speedup", Json.Float speedup);
        ("warm_artifacts_identical", Json.Bool identical);
        ( "warm_cache",
          Json.Obj
            [
              ("hits", Json.Int warm.Pipeline.cache_stats.Cache.hits);
              ("misses", Json.Int warm.Pipeline.cache_stats.Cache.misses);
            ] );
        ("incremental_wall_seconds", Json.Float inc_t);
        ("cold_grown_wall_seconds", Json.Float cold_grown_t);
        ("incremental_artifacts_identical", Json.Bool inc_identical);
        ( "incremental_cache",
          Json.Obj
            [
              ("hits", Json.Int inc.Pipeline.cache_stats.Cache.hits);
              ("misses", Json.Int inc.Pipeline.cache_stats.Cache.misses);
            ] );
      ]
  in
  let oc = open_out "BENCH_cache.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_cache.json";
  rm_rf dir;
  if not ok then begin
    print_endline
      "E15: FAIL — warm run diverged or fell short of the 5x speedup threshold";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E16 — beyond the paper: stage-runner overhead + trace validity       *)
(* ------------------------------------------------------------------ *)

(* The staged refactor routes every pipeline phase through [Stage.run]
   and a telemetry span. This experiment pins down what that uniformity
   costs: a fully traced run (clocked recorder + sink on every event)
   against an untraced one on the E15 workload, min-of-3 wall times,
   asserting <= 5% overhead, byte-identical artifacts, and that the
   emitted trace is valid JSON covering every mining stage. *)
let e16 () =
  print_endline
    (section "E16  Staged pipeline: telemetry overhead and trace validity");
  let corpus_size = 400 in
  let config = { Pipeline.default_config with Pipeline.corpus_size } in
  let min_of_3 f =
    List.fold_left
      (fun acc _ -> Float.min acc (snd (timed "e16.run" f)))
      infinity [ (); (); () ]
  in
  (* one warm-up run keeps allocator effects out of both measurements *)
  let baseline = Pipeline.mine_only ~config () in
  let baseline_bytes = mine_artifact_bytes baseline in
  let plain_t = min_of_3 (fun () -> ignore (Pipeline.mine_only ~config ())) in
  let events = ref 0 in
  let traced_run () =
    let telemetry =
      Telemetry.create ~clock:Unix.gettimeofday
        ~sinks:[ (fun _ -> incr events) ]
        ()
    in
    (Pipeline.mine_only ~config ~telemetry (), telemetry)
  in
  let traced_t = min_of_3 (fun () -> ignore (traced_run ())) in
  let traced, telemetry = traced_run () in
  let ratio = traced_t /. Float.max plain_t 1e-9 in
  let ok_overhead = ratio <= 1.05 in
  let ok_artifacts = String.equal baseline_bytes (mine_artifact_bytes traced) in
  let trace_text = Json.to_string ~pretty:true (Telemetry.to_json telemetry) in
  let required_spans = [ "corpus"; "materialize"; "kb"; "mine"; "filter"; "oracle" ] in
  let ok_json =
    match Json.of_string trace_text with
    | exception Json.Parse_error _ -> false
    | json ->
        let names =
          List.filter_map
            (fun s -> Json.string_value (Json.member "name" s))
            (Json.to_list (Json.member "spans" json))
        in
        List.for_all (fun n -> List.mem n names) required_spans
  in
  print_table
    ~header:[ "run"; "wall (s, min of 3)" ]
    [
      [ "untraced"; f2 plain_t ];
      [ "traced (clocked recorder + sink)"; f2 traced_t ];
    ];
  Printf.printf
    "overhead ratio %.3f (threshold 1.05); artifacts identical: %b; trace \
     valid JSON with all mining spans: %b; sink events observed: %d\n"
    ratio ok_artifacts ok_json !events;
  let json =
    Json.Obj
      [
        ("experiment", Json.String "e16-stage-telemetry");
        ("corpus_size", Json.Int corpus_size);
        ("untraced_wall_seconds", Json.Float plain_t);
        ("traced_wall_seconds", Json.Float traced_t);
        ("overhead_ratio", Json.Float ratio);
        ("overhead_within_5pct", Json.Bool ok_overhead);
        ("artifacts_identical", Json.Bool ok_artifacts);
        ("trace_valid", Json.Bool ok_json);
        ("sink_events", Json.Int !events);
      ]
  in
  let oc = open_out "BENCH_stage.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_stage.json";
  if not (ok_overhead && ok_artifacts && ok_json) then begin
    print_endline
      "E16: FAIL — stage-runner overhead above 5%, diverged artifacts, or \
       invalid trace";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E17 — check-as-a-service: resident daemon vs cold process-per-scan  *)
(* ------------------------------------------------------------------ *)

module Serve_scan = Zodiac_serve.Scan
module Sarif = Zodiac_serve.Sarif
module Session = Zodiac_serve.Session
module Server = Zodiac_serve.Server

(* The real CLI binary, when we can find it: cwd is _build/default under
   the @check rule, the workspace root under `dune exec`. *)
let zodiac_bin () =
  let candidates =
    (match Sys.getenv_opt "ZODIAC_BIN" with Some p -> [ p ] | None -> [])
    @ [ "bin/zodiac_cli.exe"; "_build/default/bin/zodiac_cli.exe" ]
  in
  List.find_opt Sys.file_exists candidates

let write_bad_tf () =
  let path = Filename.temp_file "zodiac-serve" ".tf" in
  let oc = open_out path in
  output_string oc Registry.mssql_db_buggy;
  close_out oc;
  path

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_request ?(id = 1) path =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int id);
         ("method", Json.String "scan_file");
         ("params", Json.Obj [ ("path", Json.String path) ]);
       ])

let shutdown_request = {|{"id":0,"method":"shutdown"}|}

(* Run the in-process daemon loop over real channels: requests from a
   file, responses to a file — sequential, no domains, fully
   deterministic. Returns the response lines. *)
let serve_round_trip session requests =
  let req_path = Filename.temp_file "zodiac-serve" ".req" in
  let resp_path = Filename.temp_file "zodiac-serve" ".resp" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove req_path with Sys_error _ -> ());
      try Sys.remove resp_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out req_path in
      List.iter
        (fun r ->
          output_string oc r;
          output_char oc '\n')
        requests;
      close_out oc;
      let ic = open_in req_path in
      let oc = open_out resp_path in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr oc)
        (fun () -> Server.serve_channels session ic oc);
      String.split_on_char '\n' (String.trim (read_all resp_path)))

(* Extract the SARIF result of a scan_file response line and re-render
   it exactly as the one-shot CLI prints it (pretty + newline). *)
let sarif_bytes_of_response line =
  match Json.of_string_result line with
  | Error e -> Error ("unparsable response: " ^ e)
  | Ok json -> (
      match (Json.member "ok" json, Json.member "result" json) with
      | Json.Bool true, result ->
          Ok (Json.to_string ~pretty:true result ^ "\n")
      | _ -> Error ("request failed: " ^ line))

(* The daemon round-trip the smoke gate runs: resident SARIF must be
   byte-identical to the one-shot path, through the real binary when
   available and the in-process loop either way. *)
let serve_equivalence () =
  let tf = write_bad_tf () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tf with Sys_error _ -> ())
    (fun () ->
      let oneshot =
        match Serve_scan.load_checks provider None with
        | Error e -> failwith e
        | Ok checks -> (
            match Serve_scan.scan_file ~provider ~checks tf with
            | Error e -> failwith e
            | Ok findings -> (findings, Sarif.to_string findings))
      in
      let findings, oneshot_bytes = oneshot in
      let session =
        match Session.create Session.default_config with
        | Ok s -> s
        | Error e -> failwith e
      in
      let resident_bytes =
        match serve_round_trip session [ scan_request tf; shutdown_request ] with
        | [ scan_line; _shutdown_line ] -> sarif_bytes_of_response scan_line
        | lines ->
            Error
              (Printf.sprintf "expected 2 response lines, got %d"
                 (List.length lines))
      in
      let ok_resident =
        match resident_bytes with
        | Ok bytes -> String.equal bytes oneshot_bytes
        | Error _ -> false
      in
      let ok_findings = findings <> [] in
      (* end-to-end through the spawned binary: one-shot stdout vs the
         daemon's response over its own stdin/stdout *)
      let ok_process, process_checked =
        match zodiac_bin () with
        | None -> (true, false)
        | Some bin ->
            let out = Filename.temp_file "zodiac-serve" ".out" in
            let resp = Filename.temp_file "zodiac-serve" ".dresp" in
            let req = Filename.temp_file "zodiac-serve" ".dreq" in
            Fun.protect
              ~finally:(fun () ->
                List.iter
                  (fun f -> try Sys.remove f with Sys_error _ -> ())
                  [ out; resp; req ])
              (fun () ->
                let scan_cmd =
                  Printf.sprintf
                    "%s scan --format sarif --exit-zero %s > %s 2>/dev/null"
                    (Filename.quote bin) (Filename.quote tf)
                    (Filename.quote out)
                in
                let oc = open_out req in
                output_string oc (scan_request tf);
                output_char oc '\n';
                output_string oc shutdown_request;
                output_char oc '\n';
                close_out oc;
                let serve_cmd =
                  Printf.sprintf "%s serve < %s > %s 2>/dev/null"
                    (Filename.quote bin) (Filename.quote req)
                    (Filename.quote resp)
                in
                if Sys.command scan_cmd <> 0 || Sys.command serve_cmd <> 0 then
                  (false, true)
                else
                  let cli_bytes = read_all out in
                  let daemon_bytes =
                    match
                      String.split_on_char '\n' (String.trim (read_all resp))
                    with
                    | scan_line :: _ -> sarif_bytes_of_response scan_line
                    | [] -> Error "no daemon response"
                  in
                  ( String.equal cli_bytes oneshot_bytes
                    && (match daemon_bytes with
                       | Ok b -> String.equal b cli_bytes
                       | Error _ -> false),
                    true ))
      in
      (ok_findings, ok_resident, ok_process, process_checked))

(* Socket-side client helpers shared by the concurrent smoke gate and
   E19: connect (retrying while the daemon binds), one line out, one
   line back. *)
type sock_client = {
  cfd : Unix.file_descr;
  cic : in_channel;
  coc : out_channel;
}

let sock_connect path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.01;
        go (tries - 1)
  in
  let fd = go 300 in
  { cfd = fd; cic = Unix.in_channel_of_descr fd; coc = Unix.out_channel_of_descr fd }

let sock_send c line =
  output_string c.coc line;
  output_char c.coc '\n';
  flush c.coc

let sock_recv c = input_line c.cic

let sock_close c = try Unix.close c.cfd with Unix.Unix_error _ -> ()

let bench_socket_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "zodiac-%s-%d.sock" tag (Unix.getpid ()))

let stats_request ~id =
  Printf.sprintf {|{"id":%d,"method":"stats"}|} id

(* Two clients on one daemon, interleaved: both scans must come back
   byte-identical to the one-shot path, and a repeat scan must be a
   byte-identical content-fingerprint cache hit. Returns
   (concurrent ≡ one-shot, cache hit ok). *)
let smoke_serve_concurrent () =
  let tf = write_bad_tf () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tf with Sys_error _ -> ())
    (fun () ->
      let oneshot_bytes =
        match Serve_scan.load_checks provider None with
        | Error e -> failwith e
        | Ok checks -> (
            match Serve_scan.scan_file ~provider ~checks tf with
            | Error e -> failwith e
            | Ok findings -> Sarif.to_string findings)
      in
      let session =
        match Session.create Session.default_config with
        | Ok s -> s
        | Error e -> failwith e
      in
      let path = bench_socket_path "smoke-serve" in
      (try Sys.remove path with Sys_error _ -> ());
      let config = { Server.default_config with Server.max_clients = 2 } in
      let srv =
        Domain.spawn (fun () -> Server.serve_socket ~config session ~path)
      in
      let a = sock_connect path in
      let b = sock_connect path in
      (* no exception may escape past this point before the shutdown
         below, or the worker domains stay parked and the join hangs *)
      let verdict =
        try
          sock_send a (scan_request ~id:1 tf);
          sock_send b (scan_request ~id:2 tf);
          let ra = sock_recv a in
          let rb = sock_recv b in
          sock_send a (scan_request ~id:3 tf);
          let ra2 = sock_recv a in
          sock_send a (stats_request ~id:4);
          let rs = sock_recv a in
          let ok_bytes r =
            match sarif_bytes_of_response r with
            | Ok bytes -> String.equal bytes oneshot_bytes
            | Error _ -> false
          in
          let hits =
            match Json.of_string_result rs with
            | Error _ -> 0
            | Ok json ->
                Option.value ~default:0
                  (Json.int_value
                     (Json.member "hits"
                        (Json.member "scan_cache" (Json.member "result" json))))
          in
          Some (ok_bytes ra && ok_bytes rb, ok_bytes ra2 && hits >= 1)
        with _ -> None
      in
      sock_close b;
      let shutdown_sent =
        try
          sock_send a shutdown_request;
          ignore (sock_recv a);
          true
        with _ -> false
      in
      sock_close a;
      if not shutdown_sent then
        (try
           let c = sock_connect path in
           sock_send c shutdown_request;
           (try ignore (sock_recv c) with _ -> ());
           sock_close c
         with _ -> ());
      Domain.join srv;
      match verdict with Some v -> v | None -> (false, false))

let smoke_serve () =
  let ok_findings, ok_resident, ok_process, process_checked =
    serve_equivalence ()
  in
  let ok_concurrent, ok_cache_hit = smoke_serve_concurrent () in
  Printf.printf
    "serve round-trip: known-bad file flagged: %b; resident SARIF ≡ one-shot \
     (in-process): %b; spawned daemon ≡ spawned CLI: %b%s; two concurrent \
     clients ≡ one-shot: %b; repeat scan is a byte-identical cache hit: %b\n"
    ok_findings ok_resident ok_process
    (if process_checked then "" else " (binary not found, skipped)")
    ok_concurrent ok_cache_hit;
  ok_findings && ok_resident && ok_process && ok_concurrent && ok_cache_hit

let smoke_serve_only () =
  print_endline (section "smoke --serve-only  daemon round-trip gate");
  if smoke_serve () then print_endline "smoke: PASS"
  else begin
    print_endline "smoke: FAIL";
    exit 1
  end

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (n * p / 100))

let e17 () =
  print_endline
    (section "E17  Check-as-a-service: resident daemon vs process-per-scan");
  let tf = write_bad_tf () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tf with Sys_error _ -> ())
    (fun () ->
      let bin = zodiac_bin () in
      let mode = match bin with Some _ -> "process" | None -> "in-process" in
      let n_cold = 25 and n_resident = 200 in
      let cold_ms =
        match bin with
        | Some bin ->
            let cmd =
              Printf.sprintf
                "%s scan --format sarif --exit-zero %s >/dev/null 2>&1"
                (Filename.quote bin) (Filename.quote tf)
            in
            Array.init n_cold (fun _ ->
                let status, dt = timed "e17.cold" (fun () -> Sys.command cmd) in
                if status <> 0 then failwith "e17: cold scan failed";
                dt *. 1000.)
        | None ->
            (* no binary to spawn: a cold request is a fresh session
               (registry reload, engine rebuild) per scan *)
            Array.init n_cold (fun _ ->
                let (), dt =
                  timed "e17.cold" (fun () ->
                      match Session.create Session.default_config with
                      | Error e -> failwith e
                      | Ok session ->
                          ignore
                            (Server.handle_line session (scan_request tf)))
                in
                dt *. 1000.)
      in
      let resident_ms =
        match bin with
        | Some bin ->
            let cmd =
              Printf.sprintf "%s serve 2>/dev/null" (Filename.quote bin)
            in
            let ic, oc = Unix.open_process cmd in
            let request i =
              let (), dt =
                timed "e17.resident" (fun () ->
                    output_string oc (scan_request ~id:i tf);
                    output_char oc '\n';
                    flush oc;
                    ignore (input_line ic))
              in
              dt *. 1000.
            in
            (* one warm-up request keeps session construction out of the
               per-request latencies, mirroring the cold side which
               excludes nothing *)
            ignore (request 0);
            let times = Array.init n_resident (fun i -> request (i + 1)) in
            output_string oc (shutdown_request ^ "\n");
            (try flush oc with Sys_error _ -> ());
            ignore (Unix.close_process (ic, oc));
            times
        | None ->
            let session =
              match Session.create Session.default_config with
              | Error e -> failwith e
              | Ok s -> s
            in
            ignore (Server.handle_line session (scan_request tf));
            Array.init n_resident (fun i ->
                let (), dt =
                  timed "e17.resident" (fun () ->
                      ignore (Server.handle_line session (scan_request ~id:i tf)))
                in
                dt *. 1000.)
      in
      let stats times =
        let sorted = Array.copy times in
        Array.sort compare sorted;
        let mean =
          Array.fold_left ( +. ) 0. sorted /. float_of_int (Array.length sorted)
        in
        (mean, percentile sorted 50, percentile sorted 99)
      in
      let cold_mean, cold_p50, cold_p99 = stats cold_ms in
      let res_mean, res_p50, res_p99 = stats resident_ms in
      let speedup = cold_p50 /. Float.max res_p50 1e-6 in
      let rps = 1000. /. Float.max res_mean 1e-6 in
      let ok_speedup = speedup >= 5. in
      print_table
        ~header:[ "mode"; "n"; "mean ms"; "p50 ms"; "p99 ms" ]
        [
          [
            "cold process-per-scan"; string_of_int n_cold; f2 cold_mean;
            f2 cold_p50; f2 cold_p99;
          ];
          [
            "resident daemon"; string_of_int n_resident; f2 res_mean;
            f2 res_p50; f2 res_p99;
          ];
        ];
      Printf.printf
        "measurement mode: %s; resident throughput %.0f req/s; p50 speedup \
         %.1fx (threshold 5x)\n"
        mode rps speedup;
      let json =
        Json.Obj
          [
            ("experiment", Json.String "e17-serve-latency");
            ("mode", Json.String mode);
            ("n_cold", Json.Int n_cold);
            ("n_resident", Json.Int n_resident);
            ("cold_mean_ms", Json.Float cold_mean);
            ("cold_p50_ms", Json.Float cold_p50);
            ("cold_p99_ms", Json.Float cold_p99);
            ("resident_mean_ms", Json.Float res_mean);
            ("resident_p50_ms", Json.Float res_p50);
            ("resident_p99_ms", Json.Float res_p99);
            ("requests_per_sec", Json.Float rps);
            ("p50_speedup", Json.Float speedup);
            ("speedup_at_least_5x", Json.Bool ok_speedup);
          ]
      in
      let oc = open_out "BENCH_serve.json" in
      output_string oc (Json.to_string ~pretty:true json);
      output_string oc "\n";
      close_out oc;
      print_endline "wrote BENCH_serve.json";
      if not ok_speedup then begin
        print_endline
          "E17: FAIL — resident daemon under 5x faster than cold \
           process-per-scan";
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* E18 — beyond the paper: streaming shard pipeline                     *)
(* ------------------------------------------------------------------ *)

module Shard_stream = Zodiac_util.Shard_stream
module Rss = Zodiac_util.Rss

(* Byte-exact export of the funnel a streamed run shares with a
   monolithic one: mined candidates, deduplicated checks and the KB
   shape — but not the projects, which the streamed path never holds
   whole (that being the point). *)
let funnel_bytes ~kb ~mined ~candidates =
  Codec.encode ~stage:"bench-funnel" (fun b ->
      Codec.write_list Candidate.write b mined;
      Codec.write_list Check.write b candidates;
      Codec.write_int b (Kb.size kb);
      Codec.write_int b (List.length (Kb.conn_kinds kb));
      Codec.write_list Codec.write_string b (Kb.types kb))

let mono_funnel_bytes (a : Pipeline.artifacts) =
  funnel_bytes ~kb:a.Pipeline.kb ~mined:a.Pipeline.mined
    ~candidates:a.Pipeline.candidates

let streamed_funnel_bytes (s : Pipeline.streamed) =
  funnel_bytes ~kb:s.Pipeline.s_kb ~mined:s.Pipeline.s_mined
    ~candidates:s.Pipeline.s_candidates

let rss_mb () =
  Option.map (fun kb -> float_of_int kb /. 1024.) (Rss.peak_rss_kb ())

(* The streaming pipeline's three claims, asserted in one experiment:

   (a) equivalence — sharded mining is byte-identical to monolithic for
       every (jobs, shard-size), checked on the full funnel at n=400;
   (b) bounded memory — peak RSS grows ≤ 1.3x when the corpus grows
       10x (10k → 100k projects, shard 1000); each corpus is mined in a
       freshly spawned CLI process so one run's VmHWM high-water mark
       (a process-lifetime maximum) cannot pollute the next reading;
       the 100k run doubles as the headline: a corpus ~80x the
       monolithic default, mined flat;
   (c) checkpointed resume — killing a run loses only the unfinished
       shards: deleting the finals plus a subset of shard checkpoints
       and rerunning re-counts exactly the deleted shards, and a warm
       rerun folds nothing at all. *)
let e18 () =
  print_endline
    (section "E18  Streaming shard pipeline: 100k projects in bounded memory");
  (* (a) sharded ≡ monolithic *)
  let n_small = 400 in
  let base = { Pipeline.default_config with Pipeline.corpus_size = n_small } in
  let mono = Pipeline.mine_only ~config:{ base with Pipeline.jobs = 1 } () in
  let mono_bytes = mono_funnel_bytes mono in
  let grid = [ (1, 50); (1, 170); (1, 400); (4, 64); (4, 170) ] in
  let grid_results =
    List.map
      (fun (jobs, shard) ->
        let s =
          Pipeline.mine_streamed
            ~config:{ base with Pipeline.jobs = jobs }
            ~shard_size:shard ()
        in
        (jobs, shard, s.Pipeline.s_kb_fold.Shard_stream.shards,
         String.equal mono_bytes (streamed_funnel_bytes s)))
      grid
  in
  let ok_grid = List.for_all (fun (_, _, _, ok) -> ok) grid_results in
  print_table
    ~header:[ "jobs"; "shard size"; "shards"; "vs monolithic" ]
    (List.map
       (fun (jobs, shard, shards, ok) ->
         [
           string_of_int jobs; string_of_int shard; string_of_int shards;
           (if ok then "identical" else "DIVERGED");
         ])
       grid_results);
  (* (b) bounded memory: a fresh CLI process per corpus size. VmHWM is
     a process-lifetime high-water mark, so measuring both runs here
     would let the equivalence phase above (and the 10k run itself)
     inflate the 100k reading; spawning also measures exactly what a
     user of `--shard-size` gets. Falls back to in-process probing
     with a reset between runs when the binary isn't on disk. *)
  let first_token s =
    match String.index_opt s ' ' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let field lines prefix conv =
    List.fold_left
      (fun acc l ->
        let l = String.trim l in
        if acc = None && String.starts_with ~prefix l then
          conv
            (String.trim
               (String.sub l (String.length prefix)
                  (String.length l - String.length prefix)))
        else acc)
      None lines
  in
  let int_field lines prefix =
    field lines prefix (fun s -> int_of_string_opt (first_token s))
  in
  let float_field lines prefix =
    field lines prefix (fun s -> float_of_string_opt (first_token s))
  in
  let measure n =
    match zodiac_bin () with
    | Some bin ->
        let cmd =
          Printf.sprintf
            "%s mine --projects %d --jobs 1 --shard-size 1000 --no-cache \
             --limit 0 2>/dev/null"
            (Filename.quote bin) n
        in
        let t0 = Unix.gettimeofday () in
        let ic = Unix.open_process_in cmd in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        let status = Unix.close_process_in ic in
        let dt = Unix.gettimeofday () -. t0 in
        if status <> Unix.WEXITED 0 then
          failwith (Printf.sprintf "e18: spawned mine of %d projects failed" n);
        let lines = List.rev !lines in
        let req name = function
          | Some v -> v
          | None ->
              failwith
                (Printf.sprintf "e18: missing %S in the spawned mine report"
                   name)
        in
        ( n,
          req "kb pass" (int_field lines "kb pass:"),
          dt,
          float_field lines "peak RSS:",
          req "hypothesized checks" (int_field lines "hypothesized checks:"),
          req "candidates entering validation"
            (int_field lines "candidates entering validation:") )
    | None ->
        Gc.compact ();
        ignore (Rss.reset_peak ());
        let config =
          { Pipeline.default_config with Pipeline.corpus_size = n; jobs = 1 }
        in
        let s, dt =
          timed "e18.mine" (fun () ->
              Pipeline.mine_streamed ~config ~shard_size:1000 ())
        in
        ( n,
          s.Pipeline.s_kb_fold.Shard_stream.shards,
          dt,
          rss_mb (),
          List.length s.Pipeline.s_mined,
          List.length s.Pipeline.s_candidates )
  in
  let rss_threshold = 1.3 in
  let run_small = measure 10_000 in
  let run_large = measure 100_000 in
  let rss_of (_, _, _, rss, _, _) = rss in
  let rss_ratio =
    match (rss_of run_small, rss_of run_large) with
    | Some a, Some b when a > 0. -> Some (b /. a)
    | _ -> None
  in
  let rss_unavailable = rss_ratio = None in
  let ok_rss =
    match rss_ratio with None -> true | Some r -> r <= rss_threshold
  in
  let mb = function Some v -> Printf.sprintf "%.1f MB" v | None -> "n/a" in
  print_table
    ~header:[ "corpus"; "shards"; "wall (s)"; "peak RSS"; "mined"; "validated q" ]
    (List.map
       (fun (n, shards, dt, rss, mined, cands) ->
         [
           string_of_int n; string_of_int shards; f2 dt; mb rss;
           string_of_int mined; string_of_int cands;
         ])
       [ run_small; run_large ]);
  (match rss_ratio with
  | Some r ->
      Printf.printf
        "peak RSS grew %.2fx across a 10x corpus growth (threshold %.1fx; %s)\n"
        r rss_threshold
        (if zodiac_bin () <> None then "fresh process per corpus"
         else "in-process fallback")
  | None ->
      print_endline
        "NOTE: no /proc VmHWM on this host — RSS ratio not asserted");
  (* (c) checkpointed resume *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "zodiac-e18-cache" in
  rm_rf dir;
  let rconfig =
    {
      Pipeline.default_config with
      Pipeline.corpus_size = 2000;
      jobs = 1;
      cache_dir = Some dir;
    }
  in
  let cold = Pipeline.mine_streamed ~config:rconfig ~shard_size:500 () in
  let cold_bytes = streamed_funnel_bytes cold in
  let ok_cold =
    cold.Pipeline.s_kb_fold.Shard_stream.built = 4
    && cold.Pipeline.s_mine_fold.Shard_stream.built = 4
  in
  (* Simulate a killed run: the finals are gone, and so are one kb shard
     and two mine shards. Only those three may be re-counted. *)
  let delete_prefixed prefixes keep =
    let doomed =
      List.filter
        (fun f -> List.exists (fun p -> String.starts_with ~prefix:p f) prefixes)
        (List.sort String.compare (Array.to_list (Sys.readdir dir)))
    in
    List.iteri
      (fun i f -> if i >= keep then Sys.remove (Filename.concat dir f))
      doomed
  in
  delete_prefixed [ "kb-"; "mine-" ] 0;
  delete_prefixed [ "shard-kb-" ] 3;
  delete_prefixed [ "shard-mine-" ] 2;
  let resumed = Pipeline.mine_streamed ~config:rconfig ~shard_size:500 () in
  let ok_resume =
    String.equal cold_bytes (streamed_funnel_bytes resumed)
    && resumed.Pipeline.s_kb_fold.Shard_stream.resumed = 3
    && resumed.Pipeline.s_kb_fold.Shard_stream.built = 1
    && resumed.Pipeline.s_mine_fold.Shard_stream.resumed = 2
    && resumed.Pipeline.s_mine_fold.Shard_stream.built = 2
  in
  (* A warm rerun loads the finals and folds no shards at all. *)
  let warm = Pipeline.mine_streamed ~config:rconfig ~shard_size:500 () in
  let ok_warm =
    String.equal cold_bytes (streamed_funnel_bytes warm)
    && warm.Pipeline.s_kb_fold.Shard_stream.shards = 0
    && warm.Pipeline.s_mine_fold.Shard_stream.shards = 0
    && warm.Pipeline.s_cache_stats.Cache.hits > 0
  in
  rm_rf dir;
  Printf.printf
    "resume after kill: kb %d resumed / %d rebuilt, mine %d resumed / %d \
     rebuilt, artifacts identical: %b; warm rerun folds nothing: %b\n"
    resumed.Pipeline.s_kb_fold.Shard_stream.resumed
    resumed.Pipeline.s_kb_fold.Shard_stream.built
    resumed.Pipeline.s_mine_fold.Shard_stream.resumed
    resumed.Pipeline.s_mine_fold.Shard_stream.built
    (String.equal cold_bytes (streamed_funnel_bytes resumed))
    ok_warm;
  let ok = ok_grid && ok_rss && ok_cold && ok_resume && ok_warm in
  let fold_json (o : Shard_stream.outcome) =
    Json.Obj
      [
        ("shards", Json.Int o.Shard_stream.shards);
        ("resumed", Json.Int o.Shard_stream.resumed);
        ("built", Json.Int o.Shard_stream.built);
      ]
  in
  let json =
    Json.Obj
      [
        ("experiment", Json.String "e18-streaming-shard-pipeline");
        ( "equivalence",
          Json.Obj
            [
              ("corpus_size", Json.Int n_small);
              ( "runs",
                Json.List
                  (List.map
                     (fun (jobs, shard, shards, ok) ->
                       Json.Obj
                         [
                           ("jobs", Json.Int jobs);
                           ("shard_size", Json.Int shard);
                           ("shards", Json.Int shards);
                           ("identical_to_monolithic", Json.Bool ok);
                         ])
                     grid_results) );
            ] );
        ( "bounded_memory",
          Json.Obj
            [
              ("shard_size", Json.Int 1000);
              ("rss_unavailable", Json.Bool rss_unavailable);
              ("fresh_process_per_run", Json.Bool (zodiac_bin () <> None));
              ( "runs",
                Json.List
                  (List.map
                     (fun (n, shards, dt, rss, mined, cands) ->
                       Json.Obj
                         [
                           ("corpus_size", Json.Int n);
                           ("shards", Json.Int shards);
                           ("wall_seconds", Json.Float dt);
                           ( "peak_rss_mb",
                             match rss with
                             | Some v -> Json.Float v
                             | None -> Json.Null );
                           ("mined_candidates", Json.Int mined);
                           ("validation_candidates", Json.Int cands);
                         ])
                     [ run_small; run_large ]) );
              ( "rss_ratio_10x",
                match rss_ratio with Some r -> Json.Float r | None -> Json.Null );
              ("rss_ratio_threshold", Json.Float rss_threshold);
            ] );
        ( "resume",
          Json.Obj
            [
              ("corpus_size", Json.Int 2000);
              ("shard_size", Json.Int 500);
              ("kb_fold", fold_json resumed.Pipeline.s_kb_fold);
              ("mine_fold", fold_json resumed.Pipeline.s_mine_fold);
              ( "artifacts_identical",
                Json.Bool (String.equal cold_bytes (streamed_funnel_bytes resumed)) );
              ("warm_rerun_folds_nothing", Json.Bool ok_warm);
            ] );
      ]
  in
  let oc = open_out "BENCH_stream.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_stream.json";
  if not ok then begin
    Printf.printf
      "E18: FAIL — grid identical: %b; RSS ratio ok: %b; resume ok: %b/%b/%b\n"
      ok_grid ok_rss ok_cold ok_resume ok_warm;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E19 — concurrent serve: multi-client scheduling + scan cache        *)
(* ------------------------------------------------------------------ *)

(* A workload big enough that a real scan visibly out-costs a
   content-fingerprint cache hit: [copies] SQL server/database pairs,
   each tripping the Basic-sku size check. [salt] makes
   distinct-content variants of the same shape, so each file carries
   its own content fingerprint. *)
let workload_tf ~salt copies =
  let buf = Buffer.create (copies * 512) in
  Buffer.add_string buf
    (Printf.sprintf "# synthetic serve workload, variant %d\n" salt);
  for i = 0 to copies - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         {|
resource "azurerm_mssql_server" "s%d_%d" {
  name                   = "bench-sql-%d-%d"
  location               = "westeurope"
  version                = "12.0"
  administrator_login    = "sqladmin"
  administrator_password = "Sup3rSecret!"
}

resource "azurerm_mssql_database" "d%d_%d" {
  name        = "bench-db-%d-%d"
  server_id   = azurerm_mssql_server.s%d_%d.id
  sku         = "Basic"
  max_size_gb = 250
}
|}
         salt i salt i salt i salt i salt i)
  done;
  Buffer.contents buf

let write_workload ~salt copies =
  let path = Filename.temp_file "zodiac-e19" ".tf" in
  let oc = open_out path in
  output_string oc (workload_tf ~salt copies);
  close_out oc;
  path

(* One client's conversation at a given concurrency level: [requests]
   scan requests round-robin over the workload files, answered in
   order. Returns (request lines, response lines, latencies in ms). *)
let e19_client ~files ~requests path c =
  let nfiles = Array.length files in
  let client = sock_connect path in
  Fun.protect
    ~finally:(fun () -> sock_close client)
    (fun () ->
      let reqs =
        List.init requests (fun j ->
            scan_request ~id:((c * 1000) + j) files.((c + j) mod nfiles))
      in
      let answered =
        List.map
          (fun line ->
            let resp, dt =
              timed "e19.request" (fun () ->
                  sock_send client line;
                  sock_recv client)
            in
            (resp, dt *. 1000.))
          reqs
      in
      (reqs, List.map fst answered, List.map snd answered))

type e19_level_result = {
  l_clients : int;
  l_requests : int;
  l_wall : float;
  l_rps : float;
  l_mean_ms : float;
  l_p50_ms : float;
  l_p99_ms : float;
  l_rss_mb : float option;
  l_identical : bool;
  l_scan_cache : Json.t;
}

(* One concurrency level end to end on a fresh daemon: spawn the socket
   server with [n] worker domains, drive [n] client domains, join, shut
   down — then replay every client's requests sequentially on a fresh
   session and demand byte-identical responses. *)
let e19_level ~files ~requests n =
  Gc.compact ();
  ignore (Rss.reset_peak ());
  let session =
    match Session.create Session.default_config with
    | Ok s -> s
    | Error e -> failwith e
  in
  let path = bench_socket_path (Printf.sprintf "e19-%d" n) in
  (try Sys.remove path with Sys_error _ -> ());
  let config = { Server.default_config with Server.max_clients = n } in
  let srv =
    Domain.spawn (fun () -> Server.serve_socket ~config session ~path)
  in
  let t0 = Unix.gettimeofday () in
  let clients =
    List.init n (fun c ->
        Domain.spawn (fun () -> e19_client ~files ~requests path c))
  in
  let logs = List.map Domain.join clients in
  let wall = Unix.gettimeofday () -. t0 in
  let ctl = sock_connect path in
  sock_send ctl (stats_request ~id:0);
  let stats_line = sock_recv ctl in
  sock_send ctl shutdown_request;
  ignore (sock_recv ctl);
  sock_close ctl;
  Domain.join srv;
  let replay =
    match Session.create Session.default_config with
    | Ok s -> s
    | Error e -> failwith e
  in
  let identical =
    List.for_all
      (fun (reqs, resps, _) ->
        List.for_all2
          (fun req resp ->
            String.equal (Json.to_string (Server.handle_line replay req)) resp)
          reqs resps)
      logs
  in
  let lat = Array.of_list (List.concat_map (fun (_, _, l) -> l) logs) in
  Array.sort compare lat;
  let count = Array.length lat in
  let total = Array.fold_left ( +. ) 0. lat in
  let scan_cache =
    match Json.of_string_result stats_line with
    | Error _ -> Json.Null
    | Ok json -> Json.member "scan_cache" (Json.member "result" json)
  in
  {
    l_clients = n;
    l_requests = count;
    l_wall = wall;
    l_rps = float_of_int count /. Float.max wall 1e-9;
    l_mean_ms = total /. float_of_int (max 1 count);
    l_p50_ms = percentile lat 50;
    l_p99_ms = percentile lat 99;
    l_rss_mb = rss_mb ();
    l_identical = identical;
    l_scan_cache = scan_cache;
  }

(* Warm-scan-cache speedup on one big file: the first scan pays
   parse + graph + check evaluation, repeats are content-fingerprint
   hits that must still serve byte-identical SARIF. *)
let e19_warm_cache () =
  let big = write_workload ~salt:999 60 in
  Fun.protect
    ~finally:(fun () -> try Sys.remove big with Sys_error _ -> ())
    (fun () ->
      let session =
        match Session.create Session.default_config with
        | Ok s -> s
        | Error e -> failwith e
      in
      let req = scan_request ~id:1 big in
      let cold_resp, cold_dt =
        timed "e19.cold" (fun () -> Server.handle_line session req)
      in
      let cold_ms = cold_dt *. 1000. in
      let n_warm = 30 in
      let identical = ref true in
      let warm =
        Array.init n_warm (fun _ ->
            let resp, dt =
              timed "e19.warm" (fun () -> Server.handle_line session req)
            in
            if not (Json.equal resp cold_resp) then identical := false;
            dt *. 1000.)
      in
      Array.sort compare warm;
      let warm_p50 = percentile warm 50 in
      (cold_ms, warm_p50, cold_ms /. Float.max warm_p50 1e-6, !identical, n_warm))

let e19 () =
  print_endline
    (section "E19  Concurrent serve: multi-client scheduling and scan cache");
  let nfiles = 4 and copies = 12 and requests = 25 in
  let files = Array.init nfiles (fun i -> write_workload ~salt:i copies) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files)
    (fun () ->
      let levels = [ 1; 2; 4; 8 ] in
      let results = List.map (e19_level ~files ~requests) levels in
      let available = Parallel.recommended_jobs () in
      let parallelism_unavailable = available <= 1 in
      let mb = function
        | Some v -> Printf.sprintf "%.1f MB" v
        | None -> "n/a"
      in
      print_table
        ~header:
          [
            "clients"; "requests"; "wall (s)"; "req/s"; "p50 ms"; "p99 ms";
            "peak RSS"; "vs sequential";
          ]
        (List.map
           (fun r ->
             [
               string_of_int r.l_clients; string_of_int r.l_requests;
               f2 r.l_wall; Printf.sprintf "%.0f" r.l_rps; f2 r.l_p50_ms;
               f2 r.l_p99_ms; mb r.l_rss_mb;
               (if r.l_identical then "identical" else "DIVERGED");
             ])
           results);
      Printf.printf
        "available domains on this machine: %d (throughput scaling is only \
         expected when clients <= available domains)\n"
        available;
      if parallelism_unavailable then
        print_endline
          "NOTE: only one domain available — byte-identity is the meaningful \
           result here; throughput ratios are not";
      let cold_ms, warm_p50, speedup, warm_identical, n_warm =
        e19_warm_cache ()
      in
      let ok_identical = List.for_all (fun r -> r.l_identical) results in
      let ok_speedup = speedup >= 5. in
      Printf.printf
        "warm scan cache: cold %.2f ms, warm p50 %.2f ms over %d repeats — \
         %.1fx speedup (threshold 5x); hit bytes identical: %b\n"
        cold_ms warm_p50 n_warm speedup warm_identical;
      let json =
        Json.Obj
          [
            ("experiment", Json.String "e19-concurrent-serve");
            ("available_domains", Json.Int available);
            ("parallelism_unavailable", Json.Bool parallelism_unavailable);
            ("workload_files", Json.Int nfiles);
            ("requests_per_client", Json.Int requests);
            ( "levels",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("clients", Json.Int r.l_clients);
                         ("requests", Json.Int r.l_requests);
                         ("wall_seconds", Json.Float r.l_wall);
                         ("throughput_rps", Json.Float r.l_rps);
                         ("mean_ms", Json.Float r.l_mean_ms);
                         ("p50_ms", Json.Float r.l_p50_ms);
                         ("p99_ms", Json.Float r.l_p99_ms);
                         ( "peak_rss_mb",
                           match r.l_rss_mb with
                           | Some v -> Json.Float v
                           | None -> Json.Null );
                         ( "identical_to_sequential_replay",
                           Json.Bool r.l_identical );
                         ("scan_cache", r.l_scan_cache);
                       ])
                   results) );
            ( "warm_cache",
              Json.Obj
                [
                  ("cold_ms", Json.Float cold_ms);
                  ("warm_p50_ms", Json.Float warm_p50);
                  ("n_warm", Json.Int n_warm);
                  ("speedup", Json.Float speedup);
                  ("speedup_at_least_5x", Json.Bool ok_speedup);
                  ("hit_byte_identical", Json.Bool warm_identical);
                ] );
          ]
      in
      let oc = open_out "BENCH_concurrency.json" in
      output_string oc (Json.to_string ~pretty:true json);
      output_string oc "\n";
      close_out oc;
      print_endline "wrote BENCH_concurrency.json";
      if not (ok_identical && ok_speedup && warm_identical) then begin
        Printf.printf
          "E19: FAIL — concurrent ≡ sequential: %b; warm-cache speedup ≥ 5x: \
           %b; hit bytes identical: %b\n"
          ok_identical ok_speedup warm_identical;
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* E20 — multi-process sharded mining: worker fleet, claim stealing    *)
(* ------------------------------------------------------------------ *)

(* The final kb-/mine- cache artifacts of a run, name → bytes. Shard
   checkpoints and corpus entries are excluded: the merge-pass finals
   are the byte-equality contract. *)
let e20_finals dir =
  List.filter_map
    (fun f ->
      if
        (String.starts_with ~prefix:"kb-" f
        || String.starts_with ~prefix:"mine-" f)
        && Filename.check_suffix f ".bin"
      then Some (f, read_all (Filename.concat dir f))
      else None)
    (List.sort String.compare (Array.to_list (Sys.readdir dir)))

let e20_claims dir =
  List.filter
    (fun f -> Filename.check_suffix f ".claim")
    (Array.to_list (Sys.readdir dir))

let e20_fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("zodiac-e20-" ^ tag)
  in
  rm_rf dir;
  dir

(* Spawn one CLI invocation, swallow stderr, return (wall, ok, lines). *)
let e20_cli bin args =
  let cmd =
    String.concat " " (List.map Filename.quote (bin :: args)) ^ " 2>/dev/null"
  in
  let t0 = Unix.gettimeofday () in
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Unix.gettimeofday () -. t0, status = Unix.WEXITED 0, List.rev !lines)

let e20_mine_args ~n ~jobs ~shard ~workers ~stale ~dir =
  [
    "mine"; "--projects"; string_of_int n; "--jobs"; string_of_int jobs;
    "--cache-dir"; dir; "--limit"; "0"; "--shard-size"; string_of_int shard;
  ]
  @
  if workers > 1 then
    [
      "--workers"; string_of_int workers;
      "--stale-after"; Printf.sprintf "%g" stale;
    ]
  else []

(* Parse the report's "mproc kb: workers=… claimed=… built=… stolen=…"
   accounting line (the optional " failed=…" suffix is ignored). *)
let e20_mproc lines pass =
  let prefix = Printf.sprintf "mproc %s:" pass in
  List.find_map
    (fun l ->
      let l = String.trim l in
      if String.starts_with ~prefix l then
        try
          Scanf.sscanf
            (String.sub l (String.length prefix)
               (String.length l - String.length prefix))
            " workers=%d claimed=%d built=%d stolen=%d" (fun w c b s ->
              Some (w, c, b, s))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      else None)
    lines

(* Plant a claim file for the [lo, hi) KB shard as a long-dead owner
   (mtime backdated to the epoch), so any positive --stale-after makes
   the next claimant steal it. *)
let e20_plant_stale_claim ~dir ~lo ~hi =
  let key =
    Pipeline.corpus_key
      { Pipeline.default_config with Pipeline.corpus_seed = 20240704 }
  in
  let cache = Cache.create ~dir () in
  let name = Shard_stream.claim_name ~stage:"shard-kb" ~key ~lo ~hi in
  match Cache.try_claim cache ~name ~owner:"corpse" with
  | Cache.Claimed _ ->
      Unix.utimes (Cache.claim_path cache ~name) 1. 1.;
      true
  | Cache.Busy -> false

(* KB shard checkpoints present for the default-seed corpus. *)
let e20_kb_checkpoints dir =
  List.filter
    (fun f ->
      String.starts_with ~prefix:"shard-kb-" f && Filename.check_suffix f ".bin")
    (Array.to_list (Sys.readdir dir))

let e20 () =
  print_endline
    (section
       "E20  Multi-process sharded mining: worker fleet, claim stealing, merge");
  match zodiac_bin () with
  | None ->
      (* Workers re-exec the real binary; without one on disk there is
         nothing multi-process to measure. *)
      print_endline
        "NOTE: zodiac CLI binary not found (build bin/ or set ZODIAC_BIN) — \
         E20 skipped"
  | Some bin ->
      (* (a) byte-equality grid: every (workers, jobs, shard) combination
         must leave the same final kb-/mine- artifacts as the monolithic
         run, with no claim files left behind. *)
      let n_small = 400 in
      let mono_dir = e20_fresh_dir "mono" in
      let _, mono_ok, _ =
        e20_cli bin
          [
            "mine"; "--projects"; string_of_int n_small; "--jobs"; "1";
            "--cache-dir"; mono_dir; "--limit"; "0";
          ]
      in
      let mono = e20_finals mono_dir in
      if (not mono_ok) || mono = [] then begin
        print_endline "E20: FAIL — monolithic reference run failed";
        exit 1
      end;
      let grid = [ (1, 1, 100); (2, 1, 100); (4, 1, 100); (2, 2, 100);
                   (2, 1, 170); (4, 2, 64) ]
      in
      let grid_results =
        List.map
          (fun (workers, jobs, shard) ->
            let dir =
              e20_fresh_dir (Printf.sprintf "w%d-j%d-s%d" workers jobs shard)
            in
            let wall, ok_run, lines =
              e20_cli bin
                (e20_mine_args ~n:n_small ~jobs ~shard ~workers ~stale:300.
                   ~dir)
            in
            let fleet_ok =
              workers = 1
              ||
              match e20_mproc lines "kb" with
              | Some (w, claimed, built, _stolen) ->
                  w = workers && claimed >= built && built > 0
              | None -> false
            in
            let ok =
              ok_run && fleet_ok
              && e20_finals dir = mono
              && e20_claims dir = []
            in
            rm_rf dir;
            (workers, jobs, shard, wall, ok))
          grid
      in
      let ok_grid = List.for_all (fun (_, _, _, _, ok) -> ok) grid_results in
      print_table
        ~header:[ "workers"; "jobs"; "shard size"; "wall (s)"; "vs monolithic" ]
        (List.map
           (fun (w, j, s, wall, ok) ->
             [
               string_of_int w; string_of_int j; string_of_int s; f2 wall;
               (if ok then "identical" else "DIVERGED");
             ])
           grid_results);
      rm_rf mono_dir;
      (* (b) scale: wall clock and parent peak RSS at workers = 1/2/4 on
         a 100k-project corpus, a fresh process and cache per level
         (VmHWM is process-lifetime, and warm hits would void the
         comparison). Speedup is recorded, not asserted — it depends on
         the host's core count, which is recorded alongside. *)
      let n_large = 100_000 in
      let first_token s =
        match String.index_opt s ' ' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      let rss_of lines =
        List.find_map
          (fun l ->
            let l = String.trim l in
            if String.starts_with ~prefix:"peak RSS:" l then
              float_of_string_opt
                (first_token
                   (String.trim
                      (String.sub l 9 (String.length l - 9))))
            else None)
          lines
      in
      let scale_levels = [ 1; 2; 4 ] in
      let scale_results =
        List.map
          (fun workers ->
            let dir = e20_fresh_dir (Printf.sprintf "scale-w%d" workers) in
            let wall, ok_run, lines =
              e20_cli bin
                (e20_mine_args ~n:n_large ~jobs:1 ~shard:1000 ~workers
                   ~stale:300. ~dir)
            in
            if not ok_run then begin
              Printf.printf "E20: FAIL — 100k run with --workers %d failed\n"
                workers;
              exit 1
            end;
            let finals = e20_finals dir in
            rm_rf dir;
            (workers, wall, rss_of lines, finals))
          scale_levels
      in
      let scale_reference =
        match scale_results with (_, _, _, f) :: _ -> f | [] -> []
      in
      let ok_scale =
        scale_reference <> []
        && List.for_all (fun (_, _, _, f) -> f = scale_reference) scale_results
      in
      let nproc = Zodiac_util.Parallel.recommended_jobs () in
      let mb = function Some v -> Printf.sprintf "%.1f MB" v | None -> "n/a" in
      print_table
        ~header:[ "workers"; "wall (s)"; "parent peak RSS"; "vs workers=1" ]
        (List.map
           (fun (w, wall, rss, f) ->
             [
               string_of_int w; f2 wall; mb rss;
               (if f = scale_reference then "identical" else "DIVERGED");
             ])
           scale_results);
      Printf.printf "host: %d recommended domains (nproc)\n" nproc;
      (* (c) kill -9 / resume: a lone worker is killed mid-corpus; its
         checkpoints survive, its claim (planted stale if it died
         between shards) is stolen, and a two-worker resume mines
         exactly the unfinished shards to byte-identical finals. *)
      let n_kill = 3000 and shard_kill = 250 in
      let shards_kill = (n_kill + shard_kill - 1) / shard_kill in
      let dir = e20_fresh_dir "kill" in
      ignore (Cache.create ~dir ());
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid =
        Unix.create_process bin
          [|
            bin; "mine-worker"; "--pass"; "kb"; "--projects";
            string_of_int n_kill; "--jobs"; "1"; "--shard-size";
            string_of_int shard_kill; "--cache-dir"; dir; "--stale-after";
            "300";
          |]
          Unix.stdin devnull Unix.stderr
      in
      Unix.close devnull;
      (* Wait for at least two checkpoints, then kill -9. *)
      let deadline = Unix.gettimeofday () +. 60. in
      let rec wait_for_progress () =
        if List.length (e20_kb_checkpoints dir) >= 2 then true
        else if Unix.gettimeofday () > deadline then false
        else begin
          Unix.sleepf 0.005;
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> wait_for_progress ()
          | _ -> true (* finished before we could kill it *)
        end
      in
      let made_progress = wait_for_progress () in
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if not made_progress then begin
        print_endline "E20: FAIL — killed worker checkpointed nothing in 60s";
        exit 1
      end;
      (* If the worker raced to completion, re-open some work so the
         resume still has shards to mine. *)
      let reopened =
        let done_now = e20_kb_checkpoints dir in
        if List.length done_now >= shards_kill then begin
          List.iteri
            (fun i f ->
              if i < shards_kill / 2 then Sys.remove (Filename.concat dir f))
            (List.sort String.compare done_now);
          true
        end
        else false
      in
      let survivors = List.length (e20_kb_checkpoints dir) in
      (* Guarantee a stale claim on some unfinished shard: the kill may
         have landed between shards, leaving none behind. *)
      let planted =
        e20_claims dir = []
        && (let rec first_open lo =
              if lo >= n_kill then false
              else
                let hi = min n_kill (lo + shard_kill) in
                let key =
                  Pipeline.corpus_key
                    {
                      Pipeline.default_config with
                      Pipeline.corpus_seed = 20240704;
                    }
                in
                let ckey = Shard_stream.shard_key ~key ~lo ~hi in
                let cache = Cache.create ~dir () in
                if not (Cache.mem cache ~stage:"shard-kb" ~key:ckey) then
                  e20_plant_stale_claim ~dir ~lo ~hi
                else first_open hi
            in
            first_open 0)
      in
      let leftover_claims = List.length (e20_claims dir) in
      let _, resume_ok, resume_lines =
        e20_cli bin
          (e20_mine_args ~n:n_kill ~jobs:1 ~shard:shard_kill ~workers:2
             ~stale:0.05 ~dir)
      in
      let kb_fleet = e20_mproc resume_lines "kb" in
      let ok_resume_counts =
        match kb_fleet with
        | Some (_, _, built, stolen) ->
            built = shards_kill - survivors
            && stolen >= min 1 leftover_claims
        | None -> false
      in
      let ref_dir = e20_fresh_dir "kill-ref" in
      let _, ref_ok, _ =
        e20_cli bin
          (e20_mine_args ~n:n_kill ~jobs:1 ~shard:shard_kill ~workers:1
             ~stale:300. ~dir:ref_dir)
      in
      let ok_kill =
        resume_ok && ref_ok && ok_resume_counts
        && e20_finals dir = e20_finals ref_dir
        && e20_claims dir = []
      in
      Printf.printf
        "kill -9 mid-mine: %d/%d shards survived (%d stale claims%s, work \
         reopened: %b); 2-worker resume built %s, stole %s, finals identical: \
         %b\n"
        survivors shards_kill leftover_claims
        (if planted then ", one planted" else "")
        reopened
        (match kb_fleet with
        | Some (_, _, b, _) -> string_of_int b
        | None -> "?")
        (match kb_fleet with
        | Some (_, _, _, s) -> string_of_int s
        | None -> "?")
        ok_kill;
      rm_rf dir;
      rm_rf ref_dir;
      let ok = ok_grid && ok_scale && ok_kill in
      let json =
        Json.Obj
          [
            ("experiment", Json.String "e20-multiprocess-sharded-mining");
            ("nproc", Json.Int nproc);
            ( "equivalence",
              Json.Obj
                [
                  ("corpus_size", Json.Int n_small);
                  ( "runs",
                    Json.List
                      (List.map
                         (fun (w, j, s, wall, ok) ->
                           Json.Obj
                             [
                               ("workers", Json.Int w);
                               ("jobs", Json.Int j);
                               ("shard_size", Json.Int s);
                               ("wall_seconds", Json.Float wall);
                               ("identical_to_monolithic", Json.Bool ok);
                             ])
                         grid_results) );
                ] );
            ( "scale",
              Json.Obj
                [
                  ("corpus_size", Json.Int n_large);
                  ("shard_size", Json.Int 1000);
                  ("fresh_process_per_run", Json.Bool true);
                  ( "runs",
                    Json.List
                      (List.map
                         (fun (w, wall, rss, f) ->
                           Json.Obj
                             [
                               ("workers", Json.Int w);
                               ("wall_seconds", Json.Float wall);
                               ( "parent_peak_rss_mb",
                                 match rss with
                                 | Some v -> Json.Float v
                                 | None -> Json.Null );
                               ( "identical_to_workers_1",
                                 Json.Bool (f = scale_reference) );
                             ])
                         scale_results) );
                ] );
            ( "kill_resume",
              Json.Obj
                [
                  ("corpus_size", Json.Int n_kill);
                  ("shards", Json.Int shards_kill);
                  ("checkpoints_survived", Json.Int survivors);
                  ("stale_claims", Json.Int leftover_claims);
                  ("claim_planted", Json.Bool planted);
                  ( "resume_built",
                    match kb_fleet with
                    | Some (_, _, b, _) -> Json.Int b
                    | None -> Json.Null );
                  ( "resume_stolen",
                    match kb_fleet with
                    | Some (_, _, _, s) -> Json.Int s
                    | None -> Json.Null );
                  ("finals_identical", Json.Bool ok_kill);
                ] );
          ]
      in
      let oc = open_out "BENCH_mproc.json" in
      output_string oc (Json.to_string ~pretty:true json);
      output_string oc "\n";
      close_out oc;
      print_endline "wrote BENCH_mproc.json";
      if not ok then begin
        Printf.printf
          "E20: FAIL — grid identical: %b; 100k scale identical: %b; \
           kill/resume ok: %b\n"
          ok_grid ok_scale ok_kill;
        exit 1
      end


(* ------------------------------------------------------------------ *)
(* E21 — provider abstraction: Azure vs AWS mining distributions      *)
(* ------------------------------------------------------------------ *)

(* Cross-provider mining on matched corpus sizes: do the paper's
   support/confidence funnels transfer when the backend (catalogue,
   scenarios, hidden rules) is swapped wholesale? Also re-checks the
   refactor's core promise inline: interleaving an AWS run must leave
   Azure mining artifacts byte-identical. *)

let e21_dist xs =
  match List.sort compare xs with
  | [] -> Json.Obj [ ("n", Json.Int 0) ]
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
      let pct p = arr.(min (n - 1) (n * p / 100)) in
      Json.Obj
        [
          ("n", Json.Int n);
          ("min", Json.Float arr.(0));
          ("p50", Json.Float (pct 50));
          ("p90", Json.Float (pct 90));
          ("max", Json.Float arr.(n - 1));
          ("mean", Json.Float mean);
        ]

let e21_mine provider size =
  let config =
    { Pipeline.default_config with Pipeline.provider; corpus_size = size }
  in
  Pipeline.mine_only ~config ()

let e21_summary (a : Pipeline.artifacts) =
  let mined = a.Pipeline.mined in
  Json.Obj
    [
      ("corpus_resources",
       Json.Int
         (List.fold_left
            (fun acc p -> acc + Program.size p.Generator.program)
            0 a.Pipeline.projects));
      ("kb_attr_entries", Json.Int (Kb.size a.Pipeline.kb));
      ("kb_conn_kinds", Json.Int (List.length (Kb.conn_kinds a.Pipeline.kb)));
      ("mined_candidates", Json.Int (List.length mined));
      ("candidates_to_validation", Json.Int (List.length a.Pipeline.candidates));
      ( "support",
        e21_dist
          (List.map (fun c -> float_of_int c.Candidate.support) mined) );
      ("confidence", e21_dist (List.map (fun c -> c.Candidate.confidence) mined));
      ("lift", e21_dist (List.map (fun c -> c.Candidate.lift) mined));
    ]

let e21 () =
  print_endline
    (section "E21  Provider abstraction: Azure vs AWS mining distributions");
  let size = 200 in
  let azure = Zodiac_azure.Azure.provider in
  let aws = Zodiac_aws.Aws.provider in
  let azure_before = e21_mine azure size in
  let aws_run = e21_mine aws size in
  let azure_after = e21_mine azure size in
  (* the refactor's contract: an interleaved AWS run leaves Azure
     artifacts byte-identical *)
  let azure_stable =
    String.equal
      (mine_artifact_bytes azure_before)
      (mine_artifact_bytes azure_after)
  in
  Printf.printf
    "corpus=%d projects per provider\n\
     azure: %d mined candidates, %d to validation\n\
     aws:   %d mined candidates, %d to validation\n\
     azure byte-identical across interleaved aws run: %b\n"
    size
    (List.length azure_before.Pipeline.mined)
    (List.length azure_before.Pipeline.candidates)
    (List.length aws_run.Pipeline.mined)
    (List.length aws_run.Pipeline.candidates)
    azure_stable;
  let json =
    Json.Obj
      [
        ("experiment", Json.String "provider");
        ("corpus_size", Json.Int size);
        ("azure", e21_summary azure_before);
        ("aws", e21_summary aws_run);
        ("azure_byte_identical", Json.Bool azure_stable);
      ]
  in
  let oc = open_out "BENCH_provider.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_provider.json";
  if not azure_stable then begin
    print_endline "E21: FAIL — azure artifacts changed across an aws run";
    exit 1
  end

(* The fast multi-process gate behind `smoke --mproc-only` (and part of
   the full smoke): workers=2 ≡ workers=1 byte-identical finals, a
   planted stale claim is stolen, and no claim files outlive a run.
   Falls back to the in-process worker entry point when the CLI binary
   isn't on disk — same claim machinery, no fork. *)
let smoke_mproc () =
  let n = 120 and shard = 40 in
  let fresh tag =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        ("zodiac-smoke-mproc-" ^ tag)
    in
    rm_rf dir;
    dir
  in
  let d1 = fresh "w1" and d2 = fresh "w2" in
  let ok =
    match zodiac_bin () with
    | Some bin ->
        let _, ok1, _ =
          e20_cli bin
            (e20_mine_args ~n ~jobs:1 ~shard ~workers:1 ~stale:300. ~dir:d1)
        in
        ignore (Cache.create ~dir:d2 ());
        let planted = e20_plant_stale_claim ~dir:d2 ~lo:0 ~hi:shard in
        let _, ok2, lines =
          e20_cli bin
            (e20_mine_args ~n ~jobs:1 ~shard ~workers:2 ~stale:300. ~dir:d2)
        in
        let stolen =
          match e20_mproc lines "kb" with
          | Some (_, _, _, s) -> s
          | None -> -1
        in
        ok1 && ok2 && planted && stolen >= 1
        && e20_finals d2 = e20_finals d1
        && e20_claims d1 = [] && e20_claims d2 = []
    | None ->
        let config ~dir =
          {
            Pipeline.default_config with
            Pipeline.corpus_size = n;
            corpus_seed = 20240704;
            jobs = 1;
            cache_dir = Some dir;
          }
        in
        let w1 =
          Pipeline.mine_streamed ~config:(config ~dir:d1) ~shard_size:shard ()
        in
        ignore (Cache.create ~dir:d2 ());
        let planted = e20_plant_stale_claim ~dir:d2 ~lo:0 ~hi:shard in
        let kb_outcome =
          Pipeline.mine_worker ~config:(config ~dir:d2) ~stale_after:300.
            ~shard_size:shard ~pass:`Kb ()
        in
        let mine_outcome =
          Pipeline.mine_worker ~config:(config ~dir:d2) ~stale_after:300.
            ~shard_size:shard ~pass:`Mine ()
        in
        let w2 =
          Pipeline.mine_streamed ~config:(config ~dir:d2) ~shard_size:shard ()
        in
        planted
        && kb_outcome.Shard_stream.w_stolen >= 1
        && kb_outcome.Shard_stream.w_built + mine_outcome.Shard_stream.w_built
           > 0
        && String.equal (streamed_funnel_bytes w1) (streamed_funnel_bytes w2)
        && e20_finals d2 = e20_finals d1
        && e20_claims d1 = [] && e20_claims d2 = []
  in
  rm_rf d1;
  rm_rf d2;
  Printf.printf
    "mproc gate (%s): workers=2 ≡ workers=1 with a stolen stale claim: %b\n"
    (match zodiac_bin () with Some _ -> "forked CLI" | None -> "in-process")
    ok;
  ok

let smoke_mproc_only () =
  print_endline (section "smoke --mproc-only  multi-process mining gate");
  if smoke_mproc () then print_endline "smoke: PASS"
  else begin
    print_endline "smoke: FAIL";
    exit 1
  end

(* A fast correctness gate over the same machinery, run by `dune build
   @check` (see the root dune file). Exits nonzero on violation. *)

(* Provider-seam gate (part of smoke): an AWS session must scan and
   report as AWS end to end — daemon round-trip over the in-process
   server plus, when the real binary is on disk, a one-shot
   `scan --provider aws` run. *)
let write_bad_aws_tf () =
  let path = Filename.temp_file "zodiac-provider" ".tf" in
  let oc = open_out path in
  output_string oc
    {|resource "aws_db_instance" "db" {
  name                    = "appdb"
  location                = "us-east-1"
  engine                  = "postgres"
  instance_class          = "db.t3.micro"
  allocated_storage       = 5
  backup_retention_period = 40
}
|};
  close_out oc;
  path

let smoke_provider () =
  let tf = write_bad_aws_tf () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tf with Sys_error _ -> ())
    (fun () ->
      let aws = Zodiac_aws.Aws.provider in
      let config = { Session.default_config with Session.provider = aws } in
      match Session.create config with
      | Error e ->
          Printf.printf "smoke_provider: session: %s\n" e;
          (false, false, false)
      | Ok session ->
          let responses =
            serve_round_trip session
              [
                {|{"id":1,"method":"stats"}|};
                scan_request ~id:2 tf;
                shutdown_request;
              ]
          in
          let ok_stats =
            match responses with
            | stats_line :: _ -> (
                match Json.of_string_result stats_line with
                | Error _ -> false
                | Ok json ->
                    Json.string_value
                      (Json.member "provider" (Json.member "result" json))
                    = Some "aws")
            | [] -> false
          in
          let ok_scan =
            match responses with
            | _ :: scan_line :: _ -> (
                match Json.of_string_result scan_line with
                | Error _ -> false
                | Ok json ->
                    let runs =
                      Json.to_list (Json.member "runs" (Json.member "result" json))
                    in
                    let rule_ids =
                      List.concat_map
                        (fun run ->
                          List.filter_map
                            (fun r ->
                              Json.string_value (Json.member "ruleId" r))
                            (Json.to_list (Json.member "results" run)))
                        runs
                    in
                    rule_ids <> []
                    && List.for_all
                         (fun id -> String.starts_with ~prefix:"AWS-" id)
                         rule_ids)
            | _ -> false
          in
          let ok_cli =
            match zodiac_bin () with
            | None -> true
            | Some bin ->
                Sys.command
                  (Printf.sprintf
                     "%s scan --provider aws --exit-zero %s >/dev/null 2>&1"
                     (Filename.quote bin) (Filename.quote tf))
                = 0
                && Sys.command
                     (Printf.sprintf
                        "%s scan --provider nonesuch %s >/dev/null 2>&1"
                        (Filename.quote bin) (Filename.quote tf))
                   <> 0
          in
          (ok_stats, ok_scan, ok_cli))

let smoke () =
  print_endline (section "smoke  engine invariants (tier-1 gate)");
  let config, a, candidates =
    e13_setup ~corpus_size:120 ~candidate_cap:10 ~max_iterations:2
  in
  let memo_off, off_stats =
    e13_run config a candidates { Engine.default_config with Engine.memo = false }
  in
  let memo_on, on_stats = e13_run config a candidates Engine.default_config in
  let faulty, faulty_stats =
    e13_run config a candidates (Engine.faulty_config ~fault_rate:0.3 ~seed:11 ())
  in
  let saved = on_stats.Engine_stats.deployments_saved in
  let ok_memo = verdict_sets memo_off = verdict_sets memo_on in
  let ok_saved =
    saved > 0
    && on_stats.Engine_stats.attempts < off_stats.Engine_stats.attempts
  in
  let ok_faults =
    verdict_sets faulty = verdict_sets memo_on
    && faulty_stats.Engine_stats.faults > 0
  in
  (* jobs equivalence: the batched parallel scheduler path must produce
     the same verdicts, deployment counts and engine stats as the
     sequential one *)
  let par_run jobs =
    let engine = Engine.create ~provider ~config:Engine.default_config () in
    let result =
      Scheduler.run ~config:config.Pipeline.scheduler ~jobs ~provider
        ~deploy_batch:(Engine.oracle_batch ~jobs engine)
        ~kb:a.Pipeline.kb ~corpus:a.Pipeline.corpus
        ~deploy:(Engine.oracle engine)
        candidates
    in
    (result, Engine.stats engine)
  in
  let seq, seq_stats = par_run 1 in
  let par, par_stats = par_run 2 in
  let ok_jobs =
    verdict_sets seq = verdict_sets par
    && seq.Scheduler.deployments = par.Scheduler.deployments
    && seq.Scheduler.iterations = par.Scheduler.iterations
    && seq_stats = par_stats
  in
  (* warm-start cache: a warm run must reproduce the cold run's artifacts
     byte-for-byte with cache hits and no misses, and a corrupted cache
     must fall back to a cold rebuild of the same artifacts *)
  let cdir =
    Filename.concat (Filename.get_temp_dir_name ()) "zodiac-smoke-cache"
  in
  rm_rf cdir;
  let cconfig =
    {
      Pipeline.default_config with
      Pipeline.corpus_size = 120;
      cache_dir = Some cdir;
    }
  in
  let cache_cold = Pipeline.mine_only ~config:cconfig () in
  let cache_warm = Pipeline.mine_only ~config:cconfig () in
  let cold_bytes = mine_artifact_bytes cache_cold in
  let ok_cache =
    String.equal cold_bytes (mine_artifact_bytes cache_warm)
    && cache_warm.Pipeline.cache_stats.Cache.hits > 0
    && cache_warm.Pipeline.cache_stats.Cache.misses = 0
  in
  (* flip a byte in the middle of every stored entry *)
  Array.iter
    (fun f ->
      let path = Filename.concat cdir f in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let data = Bytes.of_string (really_input_string ic n) in
      close_in ic;
      let mid = n / 2 in
      Bytes.set data mid (Char.chr (Char.code (Bytes.get data mid) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc)
    (Sys.readdir cdir);
  let cache_corrupt = Pipeline.mine_only ~config:cconfig () in
  let ok_corrupt =
    String.equal cold_bytes (mine_artifact_bytes cache_corrupt)
    && cache_corrupt.Pipeline.cache_stats.Cache.hits = 0
  in
  (* streaming shard pipeline: a streamed run over the cache the
     monolithic rebuild just refilled loads the same final artifacts
     (no shards folded); with the finals deleted it folds three shards
     to the identical funnel; and with the shard checkpoints corrupted
     on top it falls back to counting everything, still identically *)
  let funnel_of (a : Pipeline.artifacts) =
    funnel_bytes ~kb:a.Pipeline.kb ~mined:a.Pipeline.mined
      ~candidates:a.Pipeline.candidates
  in
  let mono_funnel = funnel_of cache_corrupt in
  let sconfig = { cconfig with Pipeline.jobs = 1 } in
  let stream_warm = Pipeline.mine_streamed ~config:sconfig ~shard_size:50 () in
  let ok_stream_warm =
    String.equal mono_funnel (streamed_funnel_bytes stream_warm)
    && stream_warm.Pipeline.s_kb_fold.Shard_stream.shards = 0
    && stream_warm.Pipeline.s_mine_fold.Shard_stream.shards = 0
  in
  let delete_finals () =
    Array.iter
      (fun f ->
        if
          String.starts_with ~prefix:"kb-" f
          || String.starts_with ~prefix:"mine-" f
        then Sys.remove (Filename.concat cdir f))
      (Sys.readdir cdir)
  in
  delete_finals ();
  let stream_cold = Pipeline.mine_streamed ~config:sconfig ~shard_size:50 () in
  let ok_stream_cold =
    String.equal mono_funnel (streamed_funnel_bytes stream_cold)
    && stream_cold.Pipeline.s_kb_fold.Shard_stream.built = 3
    && stream_cold.Pipeline.s_mine_fold.Shard_stream.built = 3
  in
  Array.iter
    (fun f ->
      if String.starts_with ~prefix:"shard-" f then begin
        let path = Filename.concat cdir f in
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let data = Bytes.of_string (really_input_string ic n) in
        close_in ic;
        let mid = n / 2 in
        Bytes.set data mid (Char.chr (Char.code (Bytes.get data mid) lxor 0xff));
        let oc = open_out_bin path in
        output_bytes oc data;
        close_out oc
      end)
    (Sys.readdir cdir);
  delete_finals ();
  let stream_rebuilt = Pipeline.mine_streamed ~config:sconfig ~shard_size:50 () in
  let ok_stream_corrupt =
    String.equal mono_funnel (streamed_funnel_bytes stream_rebuilt)
    && stream_rebuilt.Pipeline.s_kb_fold.Shard_stream.resumed = 0
    && stream_rebuilt.Pipeline.s_mine_fold.Shard_stream.resumed = 0
    && stream_rebuilt.Pipeline.s_kb_fold.Shard_stream.built = 3
    && stream_rebuilt.Pipeline.s_mine_fold.Shard_stream.built = 3
  in
  rm_rf cdir;
  (* staged-pipeline trace: a deterministic (clockless) recorder must
     observe every Figure-2 mining stage without perturbing artifacts,
     never record a wall-clock value, and serialize to valid JSON *)
  let telemetry = Telemetry.create () in
  let traced =
    Pipeline.mine_only
      ~config:{ cconfig with Pipeline.cache_dir = None }
      ~telemetry ()
  in
  let ok_trace =
    String.equal cold_bytes (mine_artifact_bytes traced)
    && (match Json.of_string (Json.to_string (Telemetry.to_json telemetry)) with
       | exception Json.Parse_error _ -> false
       | json ->
           let spans = Json.to_list (Json.member "spans" json) in
           let names =
             List.filter_map
               (fun s -> Json.string_value (Json.member "name" s))
               spans
           in
           List.for_all
             (fun n -> List.mem n names)
             [ "corpus"; "kb"; "mine"; "filter"; "oracle" ]
           && List.for_all
                (fun s -> Json.member "wall_seconds" s = Json.Null)
                spans)
  in
  Printf.printf
    "memo verdicts stable: %b; deployments saved: %d (%d -> %d raw); faulted \
     run stable with %d faults: %b; jobs=1 vs jobs=2 identical: %b; warm \
     cache identical: %b; corrupted cache falls back cold: %b; deterministic \
     trace valid: %b; streamed warm/sharded/corrupt-checkpoint identical: \
     %b/%b/%b\n"
    ok_memo saved off_stats.Engine_stats.attempts on_stats.Engine_stats.attempts
    faulty_stats.Engine_stats.faults ok_faults ok_jobs ok_cache ok_corrupt
    ok_trace ok_stream_warm ok_stream_cold ok_stream_corrupt;
  (* daemon round-trip: resident SARIF ≡ one-shot CLI, byte for byte *)
  let ok_serve = smoke_serve () in
  (* multi-process mining: worker fleet ≡ single worker, stale steal *)
  let ok_mproc = smoke_mproc () in
  (* provider seam: AWS session scans as AWS; bad --provider is a CLI error *)
  let ok_prov_stats, ok_prov_scan, ok_prov_cli = smoke_provider () in
  Printf.printf
    "provider round-trip: aws stats report aws: %b; aws scan yields AWS- \
     rules: %b; --provider aws / bad-provider CLI behaviour: %b\n"
    ok_prov_stats ok_prov_scan ok_prov_cli;
  if
    ok_memo && ok_saved && ok_faults && ok_jobs && ok_cache && ok_corrupt
    && ok_trace && ok_stream_warm && ok_stream_cold && ok_stream_corrupt
    && ok_serve && ok_mproc && ok_prov_stats && ok_prov_scan && ok_prov_cli
  then print_endline "smoke: PASS"
  else begin
    print_endline "smoke: FAIL";
    exit 1
  end

let all =
  [
    e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e16; e17;
    e18; e19; e20; e21;
  ]

let by_name =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
  ]
