(* Multi-process mining tests: claim-file protocol units (claim /
   release / stale takeover), the [Shard_stream.fold_worker] sweep
   (completion, sibling wait, stale-claim steal, byte-identity of the
   resulting checkpoints), and a qcheck property that any interleaving
   of two claimants yields exactly-once mining per shard. *)

module Shard_stream = Zodiac_util.Shard_stream
module Cache = Zodiac_util.Cache
module Codec = Zodiac_util.Codec
module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner

let provider = Zodiac_azure.Azure.provider

(* ------------- helpers ------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
         (Sys.readdir dir)
     with Sys_error _ -> ());
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_cache_dir name f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let corpus_n = 60

let projects =
  Miner.materialize ~provider
    (List.map
       (fun p -> p.Generator.program)
       (Generator.generate_range ~provider ~seed:7 ~lo:0 ~hi:corpus_n ()))

let slice lo hi = List.filteri (fun i _ -> i >= lo && i < hi) projects

let bytes_of write v =
  let b = Codec.sink () in
  write b v;
  Codec.contents b

let stats_bytes s = bytes_of Kb.write_stats s

let fold_stats ?cache ~shard_size () =
  Shard_stream.fold ?cache ~stage:"t-kb" ~key:"t-kb" ~write:Kb.write_stats
    ~read:Kb.read_stats
    ~load:(fun ~lo ~hi -> slice lo hi)
    ~count:Kb.stats_of_projects ~merge:Kb.merge_stats
    ~init:(Kb.stats_of_projects []) ~total:corpus_n ~shard_size ()

let worker ?stale_after ?(poll_interval = 0.01) cache ~shard_size () =
  Shard_stream.fold_worker ~cache ?stale_after ~poll_interval ~stage:"t-kb"
    ~key:"t-kb" ~write:Kb.write_stats
    ~load:(fun ~lo ~hi -> slice lo hi)
    ~count:Kb.stats_of_projects ~total:corpus_n ~shard_size ()

(* Backdate a claim file so stale-takeover logic sees an old holder. *)
let backdate path = Unix.utimes path 1. 1.

(* ------------- claim protocol units ------------------------------------ *)

let test_claim_release () =
  with_cache_dir "zodiac-test-mproc-claim" (fun dir ->
      let cache = Cache.create ~dir () in
      (match Cache.try_claim cache ~name:"s0" ~owner:"a" with
      | Cache.Claimed { stolen } ->
          Alcotest.(check bool) "fresh claim not stolen" false stolen
      | Cache.Busy -> Alcotest.fail "fresh claim refused");
      (match Cache.try_claim cache ~name:"s0" ~owner:"b" with
      | Cache.Busy -> ()
      | Cache.Claimed _ -> Alcotest.fail "second claimant won a held claim");
      (* distinct names never contend *)
      (match Cache.try_claim cache ~name:"s1" ~owner:"b" with
      | Cache.Claimed _ -> ()
      | Cache.Busy -> Alcotest.fail "distinct name refused");
      Cache.release cache ~name:"s0";
      (match Cache.try_claim cache ~name:"s0" ~owner:"b" with
      | Cache.Claimed { stolen } ->
          Alcotest.(check bool) "re-claim after release not stolen" false stolen
      | Cache.Busy -> Alcotest.fail "released claim still busy");
      (* release is idempotent, including for names never claimed *)
      Cache.release cache ~name:"s0";
      Cache.release cache ~name:"s0";
      Cache.release cache ~name:"never-claimed")

let test_stale_takeover () =
  with_cache_dir "zodiac-test-mproc-stale" (fun dir ->
      let cache = Cache.create ~dir () in
      (match Cache.try_claim cache ~name:"s0" ~owner:"dead" with
      | Cache.Claimed _ -> ()
      | Cache.Busy -> Alcotest.fail "initial claim refused");
      (* A fresh claim is never stolen, with or without a deadline. *)
      (match Cache.try_claim ~stale_after:3600. cache ~name:"s0" ~owner:"b" with
      | Cache.Busy -> ()
      | Cache.Claimed _ -> Alcotest.fail "fresh claim stolen");
      backdate (Cache.claim_path cache ~name:"s0");
      (* Without a deadline even an ancient claim stays busy. *)
      (match Cache.try_claim cache ~name:"s0" ~owner:"b" with
      | Cache.Busy -> ()
      | Cache.Claimed _ -> Alcotest.fail "claim stolen without a deadline");
      (* With one, the backdated claim is taken over — and flagged. *)
      (match Cache.try_claim ~stale_after:60. cache ~name:"s0" ~owner:"b" with
      | Cache.Claimed { stolen } ->
          Alcotest.(check bool) "takeover flagged as stolen" true stolen
      | Cache.Busy -> Alcotest.fail "stale claim not taken over");
      (* The thief now holds a *fresh* claim. *)
      match Cache.try_claim ~stale_after:60. cache ~name:"s0" ~owner:"c" with
      | Cache.Busy -> ()
      | Cache.Claimed _ -> Alcotest.fail "fresh stolen claim re-stolen")

(* ------------- fold_worker --------------------------------------------- *)

let test_worker_checkpoints_all () =
  with_cache_dir "zodiac-test-mproc-worker" (fun dir ->
      let cache = Cache.create ~dir () in
      let reference, _ = fold_stats ~shard_size:13 () in
      let o = worker cache ~shard_size:13 () in
      Alcotest.(check int) "claimed all" 5 o.Shard_stream.w_claimed;
      Alcotest.(check int) "built all" 5 o.Shard_stream.w_built;
      Alcotest.(check int) "nothing stolen" 0 o.Shard_stream.w_stolen;
      (* The parent's fold is the merge pass: everything resumes, and
         the merged value equals the monolithic fold byte for byte. *)
      let merged, outcome = fold_stats ~cache ~shard_size:13 () in
      Alcotest.(check int) "all resumed" 5 outcome.Shard_stream.resumed;
      Alcotest.(check bool)
        "worker checkpoints ≡ monolithic" true
        (String.equal (stats_bytes reference) (stats_bytes merged));
      (* All claims were released. *)
      Alcotest.(check (list string))
        "no lingering claim files" []
        (List.filter
           (fun f -> Filename.check_suffix f ".claim")
           (Array.to_list (Sys.readdir dir))))

let test_worker_steals_stale_claim () =
  with_cache_dir "zodiac-test-mproc-steal" (fun dir ->
      let cache = Cache.create ~dir () in
      (* A dead sibling left a claim on the second shard. *)
      let name = Shard_stream.claim_name ~stage:"t-kb" ~key:"t-kb" ~lo:13 ~hi:26 in
      (match Cache.try_claim cache ~name ~owner:"dead" with
      | Cache.Claimed _ -> ()
      | Cache.Busy -> Alcotest.fail "plant failed");
      backdate (Cache.claim_path cache ~name);
      let o = worker ~stale_after:1. cache ~shard_size:13 () in
      Alcotest.(check int) "built all despite the corpse" 5 o.Shard_stream.w_built;
      Alcotest.(check int) "the stale claim was stolen" 1 o.Shard_stream.w_stolen;
      let reference, _ = fold_stats ~shard_size:13 () in
      let merged, _ = fold_stats ~cache ~shard_size:13 () in
      Alcotest.(check bool)
        "stolen-shard checkpoints ≡ monolithic" true
        (String.equal (stats_bytes reference) (stats_bytes merged)))

let test_worker_waits_for_live_sibling () =
  with_cache_dir "zodiac-test-mproc-wait" (fun dir ->
      let cache = Cache.create ~dir () in
      (* A live sibling holds the first shard and finishes it late:
         checkpoint stored, then claim released, after a delay. *)
      let name = Shard_stream.claim_name ~stage:"t-kb" ~key:"t-kb" ~lo:0 ~hi:13 in
      let ckey = Shard_stream.shard_key ~key:"t-kb" ~lo:0 ~hi:13 in
      (match Cache.try_claim cache ~name ~owner:"sibling" with
      | Cache.Claimed _ -> ()
      | Cache.Busy -> Alcotest.fail "plant failed");
      let sibling =
        Domain.spawn (fun () ->
            Unix.sleepf 0.2;
            let sibling_cache = Cache.create ~dir () in
            Cache.store sibling_cache ~stage:"t-kb" ~key:ckey (fun b ->
                Kb.write_stats b (Kb.stats_of_projects (slice 0 13)));
            Cache.release sibling_cache ~name)
      in
      let o = worker ~stale_after:3600. cache ~shard_size:13 () in
      Domain.join sibling;
      Alcotest.(check int) "built the other shards" 4 o.Shard_stream.w_built;
      Alcotest.(check bool) "polled at least once" true (o.Shard_stream.w_waits > 0);
      let reference, _ = fold_stats ~shard_size:13 () in
      let merged, outcome = fold_stats ~cache ~shard_size:13 () in
      Alcotest.(check int) "all five resumed" 5 outcome.Shard_stream.resumed;
      Alcotest.(check bool)
        "mixed-author checkpoints ≡ monolithic" true
        (String.equal (stats_bytes reference) (stats_bytes merged)))

(* ------------- exactly-once interleaving property ----------------------- *)

(* Two claimants, each a micro-step state machine over the same shard
   plan (separate [Cache.t] handles on one directory — the same
   observable state as two processes). A step either claims the next
   unfinished shard, or — when already holding one — builds, stores and
   releases it. The generated bool list drives which claimant moves;
   both are then drained. Any interleaving must mine each shard exactly
   once: claims never go stale here, so the O_EXCL create is the only
   arbiter. *)
let prop_two_claimants_exactly_once =
  let total = 40 and shard_size = 10 in
  let shards = Shard_stream.plan ~total ~shard_size in
  QCheck.Test.make ~name:"any 2-claimant interleaving mines each shard once"
    ~count:40
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) bool)
    (fun order ->
      with_cache_dir "zodiac-test-mproc-interleave" (fun dir ->
          let builds = Hashtbl.create 8 in
          let claimant label =
            let cache = Cache.create ~dir () in
            let holding = ref None in
            fun () ->
              match !holding with
              | Some (name, ckey, lo, hi) ->
                  (* Build step: count, checkpoint, release. *)
                  Hashtbl.replace builds ckey
                    (1 + Option.value ~default:0 (Hashtbl.find_opt builds ckey));
                  Cache.store cache ~stage:"t-kb" ~key:ckey (fun b ->
                      Kb.write_stats b (Kb.stats_of_projects (slice lo hi)));
                  Cache.release cache ~name;
                  holding := None
              | None -> (
                  (* Claim step: first shard neither checkpointed nor
                     held by the other claimant. *)
                  match
                    List.find_opt
                      (fun (_i, lo, hi) ->
                        let ckey = Shard_stream.shard_key ~key:"t-kb" ~lo ~hi in
                        (not (Cache.mem cache ~stage:"t-kb" ~key:ckey))
                        &&
                        match
                          Cache.try_claim cache
                            ~name:
                              (Shard_stream.claim_name ~stage:"t-kb" ~key:"t-kb"
                                 ~lo ~hi)
                            ~owner:label
                        with
                        | Cache.Claimed _ -> true
                        | Cache.Busy -> false)
                      shards
                  with
                  | Some (_i, lo, hi) ->
                      holding :=
                        Some
                          ( Shard_stream.claim_name ~stage:"t-kb" ~key:"t-kb" ~lo
                              ~hi,
                            Shard_stream.shard_key ~key:"t-kb" ~lo ~hi,
                            lo,
                            hi )
                  | None -> ())
          in
          let a = claimant "a" and b = claimant "b" in
          List.iter (fun pick -> if pick then a () else b ()) order;
          (* Drain both so every shard finishes regardless of prefix. *)
          for _ = 1 to 2 * List.length shards do
            a ();
            b ()
          done;
          List.for_all
            (fun (_i, lo, hi) ->
              let ckey = Shard_stream.shard_key ~key:"t-kb" ~lo ~hi in
              Hashtbl.find_opt builds ckey = Some 1)
            shards))

let () =
  Alcotest.run "mproc"
    [
      ( "claims",
        [
          Alcotest.test_case "claim / busy / release" `Quick test_claim_release;
          Alcotest.test_case "stale takeover" `Quick test_stale_takeover;
        ] );
      ( "worker",
        [
          Alcotest.test_case "checkpoints every shard" `Quick
            test_worker_checkpoints_all;
          Alcotest.test_case "steals a stale claim" `Quick
            test_worker_steals_stale_claim;
          Alcotest.test_case "waits for a live sibling" `Quick
            test_worker_waits_for_live_sibling;
        ] );
      ( "exactly-once",
        [ QCheck_alcotest.to_alcotest prop_two_claimants_exactly_once ] );
    ]
