(* Tests for the resilient deployment-execution engine: backoff
   schedule, circuit-breaker state machine, α-canonical cache keying,
   the retry client, and the headline soundness property — verdicts
   under injected transient faults equal fault-free verdicts. *)

module Backoff = Zodiac_engine.Backoff
module Breaker = Zodiac_engine.Breaker
module Fingerprint = Zodiac_engine.Fingerprint
module Memo = Zodiac_engine.Memo
module Stats = Zodiac_engine.Stats
module Client = Zodiac_engine.Client
module Engine = Zodiac_engine.Engine
module Flaky = Zodiac_cloud.Flaky
module Arm = Zodiac_cloud.Arm
module Rules = Zodiac_cloud.Rules
module Scheduler = Zodiac_validation.Scheduler
module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Check = Zodiac_spec.Check
module Parser = Zodiac_spec.Spec_parser
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Prng = Zodiac_util.Prng

let provider = Zodiac_azure.Azure.provider

(* ---------------- backoff -------------------------------------------- *)

let test_backoff_schedule () =
  let config = Backoff.default in
  let schedule = Backoff.schedule config ~attempts:7 in
  Alcotest.(check (list (float 1e-9)))
    "doubling, capped"
    [ 1.0; 2.0; 4.0; 8.0; 16.0; 30.0; 30.0 ]
    schedule

let test_backoff_jitter_bounds () =
  let config = Backoff.default in
  let prng = Prng.create 3 in
  for attempt = 0 to 9 do
    let raw = Backoff.raw_delay config ~attempt in
    let d = Backoff.delay config ~prng ~attempt in
    Alcotest.(check bool) "within [raw/2, raw]" true
      (d >= (raw *. 0.5) -. 1e-9 && d <= raw +. 1e-9);
    Alcotest.(check bool) "positive" true (d > 0.0)
  done

(* ---------------- circuit breaker ------------------------------------ *)

let test_breaker_state_machine () =
  let b = Breaker.create { Breaker.failure_threshold = 3; cooldown = 10.0 } in
  Alcotest.(check bool) "starts closed" true (Breaker.state b ~now:0.0 = Breaker.Closed);
  Breaker.record_failure b ~now:0.0;
  Breaker.record_failure b ~now:1.0;
  Alcotest.(check bool) "below threshold: closed" true
    (Breaker.state b ~now:1.0 = Breaker.Closed);
  Breaker.record_failure b ~now:2.0;
  Alcotest.(check bool) "tripped open" true (Breaker.state b ~now:2.0 = Breaker.Open);
  Alcotest.(check int) "one open" 1 (Breaker.opens b);
  Alcotest.(check (option (float 1e-9))) "reopen time" (Some 12.0)
    (Breaker.open_until b ~now:2.0);
  Alcotest.(check bool) "still open before cooldown" true
    (Breaker.state b ~now:11.9 = Breaker.Open);
  Alcotest.(check bool) "half-open after cooldown" true
    (Breaker.state b ~now:12.0 = Breaker.Half_open);
  (* a failure during the probe re-trips immediately *)
  Breaker.record_failure b ~now:12.0;
  Alcotest.(check bool) "re-tripped" true (Breaker.state b ~now:12.0 = Breaker.Open);
  Alcotest.(check int) "two opens" 2 (Breaker.opens b);
  (* a successful probe closes *)
  Breaker.record_success b;
  Alcotest.(check bool) "closed after success" true
    (Breaker.state b ~now:12.0 = Breaker.Closed)

(* ---------------- fingerprint + memo keying -------------------------- *)

let vpc name =
  Resource.make "VPC" name
    [
      ("name", Value.Str "net");
      ("location", Value.Str "eastus");
      ("address_space", Value.List [ Value.Str "10.0.0.0/16" ]);
    ]

let subnet name ~vpc ~cidr =
  Resource.make "SUBNET" name
    [
      ("name", Value.Str "s");
      ("vpc_name", Value.reference "VPC" vpc "name");
      ("cidr", Value.Str cidr);
    ]

let prog_ab = Program.of_resources [ vpc "a"; subnet "b" ~vpc:"a" ~cidr:"10.0.1.0/24" ]

(* α-equivalent: local names renamed, resource order permuted *)
let prog_yx = Program.of_resources [ subnet "x" ~vpc:"y" ~cidr:"10.0.1.0/24"; vpc "y" ]

let prog_other_attr =
  Program.of_resources [ vpc "a"; subnet "b" ~vpc:"a" ~cidr:"10.0.2.0/24" ]

let test_fingerprint_alpha_equivalence () =
  Alcotest.(check bool) "renamed + reordered program hits" true
    (Fingerprint.equivalent prog_ab prog_yx);
  Alcotest.(check string) "digests agree"
    (Fingerprint.digest prog_ab) (Fingerprint.digest prog_yx)

let test_fingerprint_attr_miss () =
  Alcotest.(check bool) "differing attr misses" false
    (Fingerprint.equivalent prog_ab prog_other_attr)

let test_fingerprint_distinguishes_targets () =
  (* same multiset of resources, different wiring *)
  let p1 =
    Program.of_resources
      [ vpc "a"; vpc "b"; subnet "s1" ~vpc:"a" ~cidr:"10.0.1.0/24";
        subnet "s2" ~vpc:"a" ~cidr:"10.0.2.0/24" ]
  in
  let p2 =
    Program.of_resources
      [ vpc "a"; vpc "b"; subnet "s1" ~vpc:"a" ~cidr:"10.0.1.0/24";
        subnet "s2" ~vpc:"b" ~cidr:"10.0.2.0/24" ]
  in
  Alcotest.(check bool) "different wiring misses" false
    (Fingerprint.equivalent p1 p2)

let test_memo_lru () =
  let cache = Memo.create ~capacity:2 () in
  Memo.add cache "k1" 1;
  Memo.add cache "k2" 2;
  Alcotest.(check (option int)) "hit k1" (Some 1) (Memo.find cache "k1");
  (* k2 is now least recently used; inserting k3 evicts it *)
  Memo.add cache "k3" 3;
  Alcotest.(check int) "one eviction" 1 (Memo.evictions cache);
  Alcotest.(check (option int)) "k2 evicted" None (Memo.find cache "k2");
  Alcotest.(check (option int)) "k1 kept" (Some 1) (Memo.find cache "k1");
  Alcotest.(check int) "length bounded" 2 (Memo.length cache);
  Alcotest.(check int) "hits" 2 (Memo.hits cache);
  Alcotest.(check int) "misses" 1 (Memo.misses cache)

(* ---------------- resilient client ----------------------------------- *)

let always_fault : Zodiac_iac.Program.t -> Flaky.response =
 fun _ ->
  Flaky.Fault
    { Flaky.kind = Flaky.Throttled; phase = Rules.Create; retry_after = 1.0 }

let test_client_recovers_within_burst_cap () =
  let stats = Stats.create () in
  let flaky =
    Flaky.create ~provider { Flaky.seed = 9; fault_rate = 1.0; max_consecutive = 3 }
  in
  let client = Client.create ~stats (Flaky.deploy flaky) in
  (match Client.deploy client prog_ab with
  | Ok outcome -> Alcotest.(check bool) "genuine success" true (Arm.success outcome)
  | Error e -> Alcotest.fail (Client.error_to_string e));
  let s = Stats.basic_snapshot stats in
  Alcotest.(check int) "burst-cap attempts" 4 s.Stats.attempts;
  Alcotest.(check int) "three retries" 3 s.Stats.retries;
  Alcotest.(check int) "three faults" 3 s.Stats.faults;
  Alcotest.(check bool) "waited" true (s.Stats.sim_seconds > 0.0)

let test_client_budget_exhaustion () =
  let stats = Stats.create () in
  let config = { Client.default_config with Client.max_retries = 2 } in
  let client = Client.create ~config ~stats always_fault in
  (match Client.deploy client prog_ab with
  | Ok _ -> Alcotest.fail "expected budget exhaustion"
  | Error (Client.Budget_exhausted f) ->
      Alcotest.(check string) "last fault kind" "throttled"
        (Flaky.kind_to_string f.Flaky.kind)
  | Error e -> Alcotest.fail (Client.error_to_string e));
  Alcotest.(check int) "giveup recorded" 1 (Stats.basic_snapshot stats).Stats.giveups

let test_client_deadline () =
  let stats = Stats.create () in
  let config =
    { Client.default_config with Client.max_retries = 50; deadline = Some 10.0 }
  in
  let client = Client.create ~config ~stats always_fault in
  match Client.deploy client prog_ab with
  | Error (Client.Deadline_exceeded t) ->
      Alcotest.(check bool) "clock past deadline" true (t > 10.0)
  | Ok _ | Error _ -> Alcotest.fail "expected deadline exceeded"

let test_client_breaker_paces () =
  let stats = Stats.create () in
  let config =
    {
      Client.default_config with
      Client.max_retries = 10;
      breaker = { Breaker.failure_threshold = 2; cooldown = 500.0 };
    }
  in
  let flaky =
    Flaky.create ~provider { Flaky.seed = 9; fault_rate = 1.0; max_consecutive = 5 }
  in
  let client = Client.create ~config ~stats (Flaky.deploy flaky) in
  (match Client.deploy client prog_ab with
  | Ok outcome -> Alcotest.(check bool) "recovered" true (Arm.success outcome)
  | Error e -> Alcotest.fail (Client.error_to_string e));
  let s = Stats.basic_snapshot stats in
  Alcotest.(check bool) "breaker tripped" true (s.Stats.breaker_opens >= 1);
  Alcotest.(check bool) "cooldown paid in simulated time" true
    (s.Stats.sim_seconds >= 500.0)

(* ---------------- engine memoization --------------------------------- *)

let test_engine_memoizes_alpha_equivalent () =
  let engine = Engine.create ~provider () in
  Alcotest.(check bool) "first deploy" true (Engine.success engine prog_ab);
  Alcotest.(check bool) "same program" true (Engine.success engine prog_ab);
  Alcotest.(check bool) "renamed mutant" true (Engine.success engine prog_yx);
  Alcotest.(check bool) "differing attrs" true
    (Engine.success engine prog_other_attr);
  let s = Engine.stats engine in
  Alcotest.(check int) "four requests" 4 s.Stats.requests;
  Alcotest.(check int) "two raw deployments" 2 s.Stats.attempts;
  Alcotest.(check int) "two saved" 2 s.Stats.deployments_saved

(* ---------------- verdict stability under faults --------------------- *)

let corpus =
  lazy
    (List.map
       (fun p -> (p.Generator.pname, p.Generator.program))
       (Generator.generate ~provider ~seed:55 ~count:200 ()))

let kb =
  lazy (Kb.build ~provider ~projects:(Miner.materialize ~provider (List.map snd (Lazy.force corpus))) ())

let candidates =
  lazy
    (List.map Parser.parse_exn
       [
         "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'";
         "let r:VM in r.priority == 'Spot' => r.evict_policy != null";
         "let r:IP in r.sku == 'Standard' => r.allocation == 'Static'";
         "let r:SA in r.https_only == true => r.replica == 'LRS'";
         "let r:VM in r.os_disk.caching == 'ReadWrite' => r.priority == 'Regular'";
       ])

let verdict_sets (result : Scheduler.result) =
  let cids cs =
    List.sort String.compare (List.map (fun (c : Check.t) -> c.Check.cid) cs)
  in
  (cids result.Scheduler.validated, cids (List.map fst result.Scheduler.falsified))

let run_with_oracle deploy =
  Scheduler.run ~provider ~kb:(Lazy.force kb) ~corpus:(Lazy.force corpus) ~deploy
    (Lazy.force candidates)

let baseline =
  lazy (verdict_sets (run_with_oracle (fun p -> Arm.success (Arm.deploy ~provider p))))

let fault_stability_prop =
  QCheck.Test.make ~count:8 ~name:"verdicts under faults = fault-free verdicts"
    QCheck.(pair (float_range 0.0 0.9) small_nat)
    (fun (fault_rate, seed) ->
      (* retry budget (default 5) exceeds the burst cap (3): recovery of
         the genuine outcome is guaranteed, so verdict sets must match
         the fault-free run for ANY rate and seed *)
      let engine =
        Engine.create ~provider ~config:(Engine.faulty_config ~fault_rate ~seed ()) ()
      in
      let result = run_with_oracle (Engine.oracle engine) in
      verdict_sets result = Lazy.force baseline)

let test_default_fault_rate_nonzero () =
  Alcotest.(check bool) "default fault rate nonzero" true
    (Flaky.default_config.Flaky.fault_rate > 0.0)

let () =
  Alcotest.run "engine"
    [
      ( "backoff",
        [
          Alcotest.test_case "schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "jitter bounds" `Quick test_backoff_jitter_bounds;
        ] );
      ( "breaker",
        [ Alcotest.test_case "state machine" `Quick test_breaker_state_machine ] );
      ( "cache",
        [
          Alcotest.test_case "alpha-equivalent programs hit" `Quick
            test_fingerprint_alpha_equivalence;
          Alcotest.test_case "differing attrs miss" `Quick test_fingerprint_attr_miss;
          Alcotest.test_case "different wiring misses" `Quick
            test_fingerprint_distinguishes_targets;
          Alcotest.test_case "lru eviction" `Quick test_memo_lru;
        ] );
      ( "client",
        [
          Alcotest.test_case "recovers within burst cap" `Quick
            test_client_recovers_within_burst_cap;
          Alcotest.test_case "budget exhaustion" `Quick test_client_budget_exhaustion;
          Alcotest.test_case "deadline accounting" `Quick test_client_deadline;
          Alcotest.test_case "breaker paces, never drops" `Quick
            test_client_breaker_paces;
        ] );
      ( "engine",
        [
          Alcotest.test_case "memoizes alpha-equivalent mutants" `Quick
            test_engine_memoizes_alpha_equivalent;
          Alcotest.test_case "default fault rate nonzero" `Quick
            test_default_fault_rate_nonzero;
        ] );
      ( "soundness",
        [ QCheck_alcotest.to_alcotest ~long:true fault_stability_prop ] );
    ]
