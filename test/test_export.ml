(* Tests for the §6 use-case exports: natural-language insights, the
   RAG knowledge base, and the policy file. *)

module Export = Zodiac.Export
module Parser = Zodiac_spec.Spec_parser
module Json = Zodiac_util.Json

let checks =
  List.map Parser.parse_exn
    [
      "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'";
      "let r:VM in r.priority == 'Spot' => r.evict_policy != null";
      "let r1:VM, r2:NIC in conn(r1.nic_ids -> r2.id) => r1.location == r2.location";
      "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !GW) == 0";
      "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.vpc_name -> r3.name, r2.vpc_name -> r3.name) => !overlap(r1.cidr, r2.cidr)";
      "let r:VM in r.sku == 'Standard_F2s_v2' => indegree(r, NIC) <= 2";
    ]

let contains ~needle haystack =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_sentences () =
  let sentences = List.map Export.to_sentence checks in
  List.iter
    (fun s ->
      Alcotest.(check bool) "non-empty prose" true (String.length s > 30);
      Alcotest.(check bool) "ends with period" true (s.[String.length s - 1] = '.'))
    sentences;
  Alcotest.(check bool) "enum rendered" true
    (contains ~needle:"'Premium'" (List.nth sentences 0));
  Alcotest.(check bool) "null rendered as unset" true
    (contains ~needle:"must be set" (List.nth sentences 1));
  Alcotest.(check bool) "degree rendered" true
    (contains ~needle:"number of NIC resources" (List.nth sentences 5))

let test_insights_grouping () =
  let doc = Export.insights checks in
  List.iter
    (fun heading ->
      Alcotest.(check bool) (heading ^ " section") true
        (contains ~needle:("## " ^ heading) doc))
    [ "SA"; "VM"; "GW"; "SUBNET" ];
  Alcotest.(check bool) "formal check included" true
    (contains ~needle:"r.tier == 'Premium'" doc)

let test_rag_kb () =
  match Export.rag_knowledge_base checks with
  | Json.List entries ->
      Alcotest.(check int) "one entry per check" (List.length checks)
        (List.length entries);
      List.iter
        (fun entry ->
          Alcotest.(check bool) "has id" true
            (Json.string_value (Json.member "id" entry) <> None);
          Alcotest.(check bool) "has statement" true
            (Json.string_value (Json.member "statement" entry) <> None);
          Alcotest.(check bool) "has types" true
            (Json.to_list (Json.member "types" entry) <> []))
        entries;
      (* the KB must survive a JSON round trip (it is meant for RAG
         ingestion) *)
      let text = Json.to_string ~pretty:true (Json.List entries) in
      Alcotest.(check bool) "serializable" true
        (Json.equal (Json.List entries) (Json.of_string text))
  | _ -> Alcotest.fail "expected a list"

let test_policy_rules () =
  let policy = Export.policy_rules checks in
  Alcotest.(check bool) "one policy per check" true
    (List.length (String.split_on_char '\n' policy)
    > 4 * List.length checks);
  Alcotest.(check bool) "ids prefixed" true (contains ~needle:"ZODIAC_c" policy);
  Alcotest.(check bool) "resources listed" true (contains ~needle:"[SA]" policy)

(* ---------------- checkset persistence ------------------------------- *)

module Checkset = Zodiac.Checkset
module Check = Zodiac_spec.Check

let test_checkset_roundtrip () =
  match Checkset.of_json (Checkset.to_json checks) with
  | Ok loaded ->
      Alcotest.(check int) "count" (List.length checks) (List.length loaded);
      List.iter2
        (fun (a : Check.t) (b : Check.t) ->
          Alcotest.(check string) "cid preserved" a.Check.cid b.Check.cid)
        checks loaded
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_checkset_file_roundtrip () =
  let path = Filename.temp_file "zodiac_checks" ".json" in
  Checkset.save_exn path checks;
  (match Checkset.load path with
  | Ok loaded -> Alcotest.(check int) "count" (List.length checks) (List.length loaded)
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_checkset_malformed () =
  (match Checkset.of_json (Json.Obj [ ("checks", Json.Null) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing list accepted");
  match
    Checkset.of_json
      (Json.Obj [ ("checks", Json.List [ Json.Obj [ ("check", Json.String "garbage") ] ]) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage check accepted"

let test_checkset_load_missing_file () =
  match Checkset.load "/nonexistent/zodiac.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let () =
  Alcotest.run "export"
    [
      ( "use cases",
        [
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "insights" `Quick test_insights_grouping;
          Alcotest.test_case "rag kb" `Quick test_rag_kb;
          Alcotest.test_case "policy rules" `Quick test_policy_rules;
        ] );
      ( "checkset",
        [
          Alcotest.test_case "json roundtrip" `Quick test_checkset_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_checkset_file_roundtrip;
          Alcotest.test_case "malformed" `Quick test_checkset_malformed;
          Alcotest.test_case "missing file" `Quick test_checkset_load_missing_file;
        ] );
    ]
