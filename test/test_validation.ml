(* Tests for the validation engine: MDC pruning, positive test cases,
   solver-aided mutation, and the scheduling algorithm. *)

module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Mdc = Zodiac_validation.Mdc
module Testcase = Zodiac_validation.Testcase
module Mutation = Zodiac_validation.Mutation
module Scheduler = Zodiac_validation.Scheduler
module Arm = Zodiac_cloud.Arm
module Check = Zodiac_spec.Check
module Parser = Zodiac_spec.Spec_parser
module Eval = Zodiac_spec.Eval
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph

let provider = Zodiac_azure.Azure.provider
let projects = lazy (Generator.generate ~provider ~seed:55 ~count:400 ())

let corpus =
  lazy (List.map (fun p -> (p.Generator.pname, p.Generator.program)) (Lazy.force projects))

let kb =
  lazy
    (Kb.build ~provider
       ~projects:(Miner.materialize ~provider (List.map snd (Lazy.force corpus)))
       ())

let deploy prog = Arm.success (Arm.deploy ~provider prog)

let parse = Parser.parse_exn

(* ---------------- MDC ------------------------------------------------ *)

let test_mdc_prune_keeps_ancestors () =
  let vpc = Resource.make "VPC" "v" [ ("name", Value.Str "v") ] in
  let subnet =
    Resource.make "SUBNET" "s"
      [ ("name", Value.Str "s"); ("vpc_name", Value.reference "VPC" "v" "name");
        ("cidr", Value.Str "10.0.0.0/24") ]
  in
  let nic =
    Resource.make "NIC" "n"
      [ ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "s" "id") ]) ]
  in
  let unrelated = Resource.make "SA" "sa" [ ("name", Value.Str "x") ] in
  let prog = Program.of_resources [ vpc; subnet; nic; unrelated ] in
  let mdc = Mdc.prune prog ~keep:[ Resource.id nic ] in
  Alcotest.(check int) "nic + subnet + vpc" 3 (Program.size mdc);
  Alcotest.(check bool) "unrelated dropped" false (Program.mem mdc (Resource.id unrelated));
  Alcotest.(check bool) "ancestors kept" true (Program.mem mdc (Resource.id vpc))

let test_mdc_measure () =
  let prog =
    Program.of_resources
      [
        Resource.make "VPC" "v" [];
        Resource.make "MONITOR_DIAG" "d" [];
      ]
  in
  let sizes = Mdc.measure provider prog in
  Alcotest.(check int) "attended" 1 sizes.Mdc.attended;
  Alcotest.(check int) "unattended" 1 sizes.Mdc.unattended

let test_mdc_shrinks_corpus_programs () =
  (* on real projects, pruning to a single witness shrinks programs *)
  let check = parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'" in
  let tps = Testcase.find ~provider ~corpus:(Lazy.force corpus) check in
  Alcotest.(check bool) "found tps" true (tps <> []);
  List.iter
    (fun tp ->
      Alcotest.(check bool) "pruned <= original" true
        (Program.size tp.Testcase.program <= Program.size tp.Testcase.original))
    tps

(* ---------------- positive test cases -------------------------------- *)

let test_tp_witnesses_check () =
  let check =
    parse
      "let r1:SUBNET, r2:VPC in conn(r1.vpc_name -> r2.name) => contain(r2.address_space, r1.cidr)"
  in
  match Testcase.find ~provider ~corpus:(Lazy.force corpus) check with
  | [] -> Alcotest.fail "no positive test case"
  | tp :: _ ->
      let g = Graph.build tp.Testcase.program in
      Alcotest.(check bool) "witnesses" true
        (Eval.first_witness ~defaults:(Arm.defaults provider) g check <> None);
      Alcotest.(check bool) "holds" true (Eval.holds ~defaults:(Arm.defaults provider) g check);
      Alcotest.(check bool) "deploys" true (deploy tp.Testcase.program)

let test_tp_none_for_alien_check () =
  let check = parse "let r:EXPRESS in r.bandwidth_in_mbps >= 50 => r.name != null" in
  Alcotest.(check (list unit)) "no instance" []
    (List.map (fun _ -> ()) (Testcase.find ~provider ~corpus:(Lazy.force corpus) check))

(* ---------------- mutation ------------------------------------------- *)

let mutate ?(hard = []) ?(soft = []) check =
  match Testcase.find ~provider ~limit:1 ~corpus:(Lazy.force corpus) check with
  | [] -> None
  | tp :: _ ->
      Mutation.negative ~provider ~kb:(Lazy.force kb) ~donors:(Lazy.force corpus) ~target:check
        ~hard ~soft tp

let violated prog check =
  not (Eval.holds ~defaults:(Arm.defaults provider) (Graph.build prog) check)

let test_mutation_violates_target () =
  let check = parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'" in
  match mutate check with
  | Some res ->
      Alcotest.(check bool) "target violated" true (violated res.Mutation.program check);
      Alcotest.(check bool) "few changes" true (res.Mutation.attr_changes <= 2);
      Alcotest.(check bool) "real rule: fails to deploy" false
        (deploy res.Mutation.program)
  | None -> Alcotest.fail "mutation failed"

let test_mutation_false_check_deploys () =
  (* a junk hypothesis: violating it deploys fine *)
  let check = parse "let r:SA in r.https_only == true => r.replica == 'LRS'" in
  match mutate check with
  | Some res ->
      Alcotest.(check bool) "violated" true (violated res.Mutation.program check);
      Alcotest.(check bool) "deploys anyway" true (deploy res.Mutation.program)
  | None -> Alcotest.fail "mutation failed"

let test_mutation_respects_hard () =
  (* violating the Premium/GZRS check while keeping "Premium => LRS or
     ZRS only"... impossible: UNSAT *)
  let target = parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'" in
  let hard = [ parse "let r:SA in r.tier == 'Premium' => r.replica == 'LRS'" ] in
  Alcotest.(check bool) "unsat under conflicting hard" true (mutate ~hard target = None)

let test_mutation_degree_addition () =
  let check = parse "let r:VM in r.sku == 'Standard_B2s' => indegree(r, NIC) <= 3" in
  match mutate check with
  | Some res ->
      Alcotest.(check bool) "violated" true (violated res.Mutation.program check);
      Alcotest.(check bool) "resources added" true (res.Mutation.topo_changes >= 1)
  | None -> Alcotest.fail "degree mutation failed"

let test_mutation_exclusivity_addition () =
  let check =
    parse
      "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !GW) == 0"
  in
  match mutate check with
  | Some res ->
      Alcotest.(check bool) "violated" true (violated res.Mutation.program check);
      Alcotest.(check bool) "foreign resource attached" true
        (res.Mutation.topo_changes >= 1)
  | None -> Alcotest.fail "exclusivity mutation failed"

let test_mutation_reports_soft_violations () =
  let target = parse "let r:IP in r.sku == 'Standard' => r.allocation == 'Static'" in
  (* an equivalent formulation must be collaterally violated *)
  let twin = parse "let r:IP in r.allocation == 'Dynamic' => r.sku == 'Basic'" in
  match mutate ~soft:[ twin ] target with
  | Some res ->
      Alcotest.(check bool) "twin reported" true
        (List.mem twin.Check.cid res.Mutation.violated_soft)
  | None -> Alcotest.fail "mutation failed"

let test_mutation_ablation_more_violations () =
  (* without considering other checks, collateral damage grows *)
  let target = parse "let r:IP in r.sku == 'Standard' => r.allocation == 'Static'" in
  let others =
    [
      parse "let r:IP in r.allocation == 'Dynamic' => r.sku == 'Basic'";
      parse "let r:IP in r.sku_tier == 'Global' => r.sku == 'Standard'";
    ]
  in
  let with_encoding = mutate ~soft:others target in
  match with_encoding with
  | Some res ->
      Alcotest.(check bool) "bounded collateral" true
        (List.length res.Mutation.violated_soft <= 2)
  | None -> Alcotest.fail "mutation failed"

(* ---------------- scheduler ------------------------------------------ *)

let test_scheduler_validates_and_falsifies () =
  let candidates =
    [
      (* real rules *)
      parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'";
      parse "let r:VM in r.priority == 'Spot' => r.evict_policy != null";
      parse
        "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.vpc_name -> r3.name, r2.vpc_name -> r3.name) => !overlap(r1.cidr, r2.cidr)";
      (* junk hypotheses *)
      parse "let r:SA in r.https_only == true => r.replica == 'LRS'";
      parse "let r:VM in r.os_disk.caching == 'ReadWrite' => r.priority == 'Regular'";
    ]
  in
  let result =
    Scheduler.run ~provider ~kb:(Lazy.force kb) ~corpus:(Lazy.force corpus) ~deploy candidates
  in
  let validated_cids = List.map (fun (c : Check.t) -> c.Check.cid) result.Scheduler.validated in
  let falsified_cids = List.map (fun ((c : Check.t), _) -> c.Check.cid) result.Scheduler.falsified in
  List.iteri
    (fun i (c : Check.t) ->
      if i < 3 then
        Alcotest.(check bool)
          (Printf.sprintf "real rule %d validated" i)
          true
          (List.mem c.Check.cid validated_cids)
      else
        Alcotest.(check bool)
          (Printf.sprintf "junk %d falsified" i)
          true
          (List.mem c.Check.cid falsified_cids))
    candidates;
  Alcotest.(check bool) "deployments happened" true (result.Scheduler.deployments > 0);
  Alcotest.(check bool) "iterations recorded" true (result.Scheduler.iterations <> [])

let test_scheduler_indistinguishable_group () =
  (* two logically-equivalent IP checks can only be validated together *)
  let pair =
    [
      parse "let r:IP in r.sku == 'Standard' => r.allocation == 'Static'";
      parse "let r:IP in r.allocation == 'Dynamic' => r.sku == 'Basic'";
    ]
  in
  let result =
    Scheduler.run ~provider ~kb:(Lazy.force kb) ~corpus:(Lazy.force corpus) ~deploy pair
  in
  Alcotest.(check int) "both validated" 2 (List.length result.Scheduler.validated);
  let grouped =
    List.exists (fun it -> it.Scheduler.tp_group > 0) result.Scheduler.iterations
  in
  Alcotest.(check bool) "validated via group handling" true grouped

let test_scheduler_stalls_without_indistinct () =
  let pair =
    [
      parse "let r:IP in r.sku == 'Standard' => r.allocation == 'Static'";
      parse "let r:IP in r.allocation == 'Dynamic' => r.sku == 'Basic'";
    ]
  in
  let config = { Scheduler.default_config with Scheduler.handle_indistinct = false } in
  let result =
    Scheduler.run ~config ~provider ~kb:(Lazy.force kb) ~corpus:(Lazy.force corpus) ~deploy pair
  in
  Alcotest.(check int) "nothing validated" 0 (List.length result.Scheduler.validated);
  Alcotest.(check bool) "stalled" true
    (List.exists
       (fun (_, verdict) -> verdict = Scheduler.Falsified `Stalled)
       result.Scheduler.falsified)

let test_counterexample_pass () =
  (* the §5.6 data-scarcity FP: source_image_ref "required" unless the
     rare create=Attach appears in the corpus as a counterexample *)
  let fp = parse "let r:VM, v:VPC in path(r -> v) => r.source_image_ref != null" in
  let real = parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'" in
  (* need a corpus large enough to contain an Attach VM *)
  let big =
    List.map
      (fun p -> (p.Generator.pname, p.Generator.program))
      (Generator.conforming ~provider ~seed:88 ~count:1500 ())
  in
  let kept, exposed = Scheduler.counterexample_pass ~provider ~corpus:big ~deploy [ fp; real ] in
  Alcotest.(check bool) "real kept" true
    (List.exists (fun (c : Check.t) -> c.Check.cid = real.Check.cid) kept);
  Alcotest.(check bool) "fp exposed" true
    (List.exists (fun (c : Check.t) -> c.Check.cid = fp.Check.cid) exposed)

let () =
  Alcotest.run "validation"
    [
      ( "mdc",
        [
          Alcotest.test_case "keeps ancestors" `Quick test_mdc_prune_keeps_ancestors;
          Alcotest.test_case "measure" `Quick test_mdc_measure;
          Alcotest.test_case "shrinks corpus programs" `Slow test_mdc_shrinks_corpus_programs;
        ] );
      ( "testcase",
        [
          Alcotest.test_case "witnesses" `Slow test_tp_witnesses_check;
          Alcotest.test_case "alien check" `Slow test_tp_none_for_alien_check;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "violates target" `Slow test_mutation_violates_target;
          Alcotest.test_case "false check deploys" `Slow test_mutation_false_check_deploys;
          Alcotest.test_case "respects hard" `Slow test_mutation_respects_hard;
          Alcotest.test_case "degree additions" `Slow test_mutation_degree_addition;
          Alcotest.test_case "exclusivity additions" `Slow test_mutation_exclusivity_addition;
          Alcotest.test_case "soft violations reported" `Slow test_mutation_reports_soft_violations;
          Alcotest.test_case "collateral bounded" `Slow test_mutation_ablation_more_violations;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "validates and falsifies" `Slow test_scheduler_validates_and_falsifies;
          Alcotest.test_case "indistinguishable groups" `Slow test_scheduler_indistinguishable_group;
          Alcotest.test_case "stalls without O3" `Slow test_scheduler_stalls_without_indistinct;
          Alcotest.test_case "counterexample pass" `Slow test_counterexample_pass;
        ] );
    ]
