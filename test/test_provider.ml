(* Tests for the provider seam: cross-provider cache isolation, Azure
   mine byte-identity across parallelism knobs, the AWS backend's
   end-to-end pipeline, and per-provider SARIF rule-id prefixes. *)

module Pipeline = Zodiac.Pipeline
module Registry = Zodiac.Registry
module Scheduler = Zodiac_validation.Scheduler
module Candidate = Zodiac_mining.Candidate
module Check = Zodiac_spec.Check
module Generator = Zodiac_corpus.Generator
module Codec = Zodiac_util.Codec
module Cache = Zodiac_util.Cache
module Scan = Zodiac_serve.Scan
module Sarif = Zodiac_serve.Sarif

let azure = Zodiac_azure.Azure.provider
let aws = Zodiac_aws.Aws.provider

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* ------------- cross-provider cache isolation ------------------------- *)

let test_cache_not_shared () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "zodiac-test-provider-cache"
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cfg provider =
        {
          Pipeline.default_config with
          Pipeline.provider;
          corpus_size = 60;
          cache_dir = Some dir;
        }
      in
      let cold = Pipeline.mine_only ~config:(cfg azure) () in
      Alcotest.(check bool) "azure cold run writes entries" true
        (cold.Pipeline.cache_stats.Cache.writes > 0);
      let warm = Pipeline.mine_only ~config:(cfg azure) () in
      Alcotest.(check bool) "azure warm run hits its own entries" true
        (warm.Pipeline.cache_stats.Cache.hits > 0);
      (* the provider fingerprint is part of every cache key: an AWS run
         over the same directory must never consume an Azure entry *)
      let aws_run = Pipeline.mine_only ~config:(cfg aws) () in
      Alcotest.(check int) "aws run never hits the warm azure cache" 0
        aws_run.Pipeline.cache_stats.Cache.hits;
      Alcotest.(check bool) "aws run still caches its own entries" true
        (aws_run.Pipeline.cache_stats.Cache.writes > 0);
      let aws_warm = Pipeline.mine_only ~config:(cfg aws) () in
      Alcotest.(check bool) "aws warm run hits aws entries" true
        (aws_warm.Pipeline.cache_stats.Cache.hits > 0))

(* ------------- azure mine byte-identity (qcheck) ----------------------- *)

let base_cfg = { Pipeline.default_config with Pipeline.corpus_size = 80 }

let mined_bytes mined candidates =
  Codec.encode ~stage:"test-provider" (fun b ->
      Codec.write_list Candidate.write b mined;
      Codec.write_list Check.write b candidates)

let reference_bytes =
  lazy
    (let a =
       Pipeline.mine_only ~config:{ base_cfg with Pipeline.jobs = 1 } ()
     in
     mined_bytes a.Pipeline.mined a.Pipeline.candidates)

let prop_mine_invariant =
  QCheck.Test.make
    ~name:"azure mined artifacts byte-identical across (jobs, shard_size)"
    ~count:5
    QCheck.(pair (int_range 1 4) (int_range 5 40))
    (fun (jobs, shard_size) ->
      let config = { base_cfg with Pipeline.jobs } in
      let a = Pipeline.mine_only ~config () in
      let s = Pipeline.mine_streamed ~config ~shard_size () in
      String.equal (Lazy.force reference_bytes)
        (mined_bytes a.Pipeline.mined a.Pipeline.candidates)
      && String.equal (Lazy.force reference_bytes)
           (mined_bytes s.Pipeline.s_mined s.Pipeline.s_candidates))

(* ------------- aws end-to-end pipeline -------------------------------- *)

let test_aws_pipeline () =
  let config =
    { Pipeline.quick_config with Pipeline.provider = aws; corpus_size = 120 }
  in
  let a = Pipeline.run ~config () in
  Alcotest.(check bool) "mined candidates nonempty" true
    (a.Pipeline.mined <> []);
  Alcotest.(check bool) "candidates reach validation" true
    (a.Pipeline.candidates <> []);
  Alcotest.(check bool) "validated check set nonempty" true
    (a.Pipeline.validation.Scheduler.validated <> []);
  Alcotest.(check bool) "counterexample pass leaves final checks" true
    (a.Pipeline.final_checks <> [])

(* ------------- per-provider SARIF rule-id prefixes --------------------- *)

let aws_bad_source =
  {|resource "aws_db_instance" "db" {
  name                    = "appdb"
  location                = "us-east-1"
  engine                  = "postgres"
  instance_class          = "db.t3.micro"
  allocated_storage       = 5
  backup_retention_period = 40
}
|}

let scan_ground_truth provider src =
  match
    Scan.scan_source ~provider
      ~checks:(Scan.ground_truth_entries provider)
      ~file:"main.tf" src
  with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "scan failed: %s" e

let test_sarif_rule_prefixes () =
  let aws_findings = scan_ground_truth aws aws_bad_source in
  Alcotest.(check bool) "aws scan finds violations" true (aws_findings <> []);
  List.iter
    (fun (f : Sarif.finding) ->
      Alcotest.(check bool)
        (f.Sarif.rule_id ^ " carries the AWS- prefix")
        true
        (String.starts_with ~prefix:"AWS-" f.Sarif.rule_id))
    aws_findings;
  let azure_findings = scan_ground_truth azure Registry.mssql_db_buggy in
  Alcotest.(check bool) "azure scan finds violations" true
    (azure_findings <> []);
  List.iter
    (fun (f : Sarif.finding) ->
      Alcotest.(check bool)
        (f.Sarif.rule_id ^ " is not AWS-prefixed")
        false
        (String.starts_with ~prefix:"AWS-" f.Sarif.rule_id))
    azure_findings

let () =
  Alcotest.run "provider"
    [
      ( "cache",
        [ Alcotest.test_case "no cross-provider hits" `Slow test_cache_not_shared ] );
      ( "byte-identity",
        List.map QCheck_alcotest.to_alcotest [ prop_mine_invariant ] );
      ( "aws",
        [ Alcotest.test_case "end-to-end pipeline" `Slow test_aws_pipeline ] );
      ( "sarif",
        [
          Alcotest.test_case "rule-id prefixes" `Quick test_sarif_rule_prefixes;
        ] );
    ]
