(* Tests for the semantic knowledge base. *)

module Kb = Zodiac_kb.Kb
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Schema = Zodiac_iac.Schema
module Generator = Zodiac_corpus.Generator

let sa tier name =
  Resource.make "SA" name [ ("name", Value.Str name); ("tier", Value.Str tier) ]

let tiny_corpus =
  [
    Program.of_resources
      [
        sa "Standard" "a";
        Resource.make "SUBNET" "s"
          [
            ("name", Value.Str "sub");
            ("vpc_name", Value.reference "VPC" "v" "name");
            ("cidr", Value.Str "10.0.1.0/24");
          ];
        Resource.make "VPC" "v" [ ("name", Value.Str "v") ];
      ];
    Program.of_resources [ sa "Premium" "b"; sa "Standard" "c" ];
  ]

let provider = Zodiac_azure.Azure.provider
let kb = Kb.build ~provider ~projects:tiny_corpus ()

let test_class1_from_schema () =
  match Kb.attr_info kb ~rtype:"SUBNET" ~attr:"vpc_name" with
  | Some info ->
      Alcotest.(check bool) "required" true
        (info.Kb.requirement = Some Schema.Required)
  | None -> Alcotest.fail "schema attribute missing from KB"

let test_class2_observations () =
  match Kb.attr_info kb ~rtype:"SA" ~attr:"tier" with
  | Some info ->
      Alcotest.(check int) "two values observed" 2 (List.length info.Kb.observed);
      let standard =
        List.assoc_opt (Value.Str "Standard") info.Kb.observed
      in
      Alcotest.(check (option int)) "standard count" (Some 2) standard
  | None -> Alcotest.fail "missing entry"

let test_class2_declared_enum () =
  (* declared enums survive even without observations *)
  let values = Kb.enum_values kb ~rtype:"IP" ~attr:"sku" in
  Alcotest.(check bool) "declared enum present" true
    (List.mem (Value.Str "Basic") values && List.mem (Value.Str "Standard") values)

let test_class3_conn_kinds () =
  let kinds = Kb.conn_kinds_from kb "SUBNET" in
  Alcotest.(check bool) "subnet->vpc observed" true
    (List.exists
       (fun (k : Kb.conn_kind) ->
         k.Kb.dst_type = "VPC" && k.Kb.src_attr = "vpc_name" && k.Kb.dst_attr = "name")
       kinds);
  Alcotest.(check bool) "legal target" true
    (List.mem ("VPC", "name")
       (Kb.legal_targets kb ~src_type:"SUBNET" ~src_attr:"vpc_name"))

let test_cidr_attrs () =
  Alcotest.(check bool) "subnet cidr recognized" true
    (List.mem "cidr" (Kb.cidr_attrs kb "SUBNET"))

let test_population () =
  Alcotest.(check int) "3 storage accounts" 3 (Kb.population kb "SA");
  Alcotest.(check int) "unknown type" 0 (Kb.population kb "NOPE")

let test_types_include_catalog () =
  Alcotest.(check bool) "catalog types known" true
    (List.mem "REDIS" (Kb.types kb))

(* --- larger synthetic corpus ----------------------------------------- *)

let big_kb =
  let projects = Generator.conforming ~provider ~seed:5 ~count:200 () in
  Kb.build ~provider ~projects:(List.map (fun p -> p.Generator.program) projects) ()

let test_enum_detection_on_corpus () =
  (* names are high-cardinality: never enum-like *)
  Alcotest.(check (list (of_pp Zodiac_iac.Value.pp))) "vm name not enum" []
    (Kb.enum_values big_kb ~rtype:"VM" ~attr:"name")

let test_reserved_name_observed () =
  match Kb.attr_info big_kb ~rtype:"SUBNET" ~attr:"name" with
  | Some info ->
      Alcotest.(check bool) "GatewaySubnet frequent" true
        (match List.assoc_opt (Value.Str "GatewaySubnet") info.Kb.observed with
        | Some c -> c >= 5
        | None -> false)
  | None -> Alcotest.fail "missing entry"

let test_conn_kind_counts_ordered () =
  let kinds = Kb.conn_kinds big_kb in
  let rec descending = function
    | (a : Kb.conn_kind) :: (b :: _ as rest) ->
        a.Kb.count >= b.Kb.count && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by frequency" true (descending kinds);
  Alcotest.(check bool) "nontrivial" true (List.length kinds > 10)

let test_kb_size () = Alcotest.(check bool) "hundreds of entries" true (Kb.size big_kb > 400)

let () =
  Alcotest.run "kb"
    [
      ( "classes",
        [
          Alcotest.test_case "class 1 native" `Quick test_class1_from_schema;
          Alcotest.test_case "class 2 observations" `Quick test_class2_observations;
          Alcotest.test_case "class 2 declared enums" `Quick test_class2_declared_enum;
          Alcotest.test_case "class 3 references" `Quick test_class3_conn_kinds;
          Alcotest.test_case "cidr attrs" `Quick test_cidr_attrs;
          Alcotest.test_case "population" `Quick test_population;
          Alcotest.test_case "types" `Quick test_types_include_catalog;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "enum detection" `Quick test_enum_detection_on_corpus;
          Alcotest.test_case "reserved names" `Quick test_reserved_name_observed;
          Alcotest.test_case "conn kinds ordered" `Quick test_conn_kind_counts_ordered;
          Alcotest.test_case "size" `Quick test_kb_size;
        ] );
    ]
