(* Tests for the baseline checkers of Table 4. *)

module Checker = Zodiac_checkers.Checker
module Baselines = Zodiac_checkers.Baselines
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
let provider = Zodiac_azure.Azure.provider

module Program = Zodiac_iac.Program
module Generator = Zodiac_corpus.Generator

let v_str s = Value.Str s

let vm_no_auth =
  Resource.make "VM" "m"
    [
      ("name", v_str "m"); ("location", v_str "eastus"); ("sku", v_str "Standard_B2s");
      ("nic_ids", Value.List []);
      ("os_disk", Value.Block [ ("name", v_str "d"); ("caching", v_str "None");
                                ("storage_type", v_str "Standard_LRS") ]);
    ]

let test_native_missing_required () =
  let incomplete = Resource.make "SUBNET" "s" [ ("name", v_str "x") ] in
  let findings = (Baselines.native provider).Checker.analyze (Program.of_resources [ incomplete ]) in
  Alcotest.(check bool) "missing attrs flagged" true
    (List.exists (fun f -> f.Checker.rule = "required-attribute") findings)

let test_native_bad_enum () =
  let bad =
    Resource.make "IP" "p"
      [ ("name", v_str "p"); ("location", v_str "eastus");
        ("allocation", v_str "Sometimes") ]
  in
  let findings = (Baselines.native provider).Checker.analyze (Program.of_resources [ bad ]) in
  Alcotest.(check bool) "enum violation flagged" true
    (List.exists (fun f -> f.Checker.rule = "invalid-value") findings)

let test_native_vm_auth () =
  let findings = (Baselines.native provider).Checker.analyze (Program.of_resources [ vm_no_auth ]) in
  Alcotest.(check bool) "missing auth flagged" true
    (List.exists (fun f -> f.Checker.rule = "missing-authentication") findings)

let test_native_silent_on_semantic_bugs () =
  (* the semantic gap: a premium/GZRS storage account passes native
     validation *)
  let sa =
    Resource.make "SA" "s"
      [ ("name", v_str "s"); ("location", v_str "eastus");
        ("tier", v_str "Premium"); ("replica", v_str "GZRS") ]
  in
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun f -> f.Checker.rule)
       ((Baselines.native provider).Checker.analyze (Program.of_resources [ sa ])))

let test_checkov_broad () =
  let sa =
    Resource.make "SA" "s"
      [ ("name", v_str "s"); ("location", v_str "eastus");
        ("tier", v_str "Standard"); ("replica", v_str "LRS");
        ("https_only", Value.Bool false); ("min_tls", v_str "TLS1_0") ]
  in
  let findings = Baselines.checkov.Checker.analyze (Program.of_resources [ sa ]) in
  Alcotest.(check bool) "several findings" true (List.length findings >= 2);
  List.iter
    (fun f -> Alcotest.(check bool) "security findings" true f.Checker.security_related)
    findings

let test_tfsec_ssh_rule () =
  let sg =
    Resource.make "SG" "g"
      [ ("name", v_str "g"); ("location", v_str "eastus");
        ( "rule",
          Value.List
            [
              Value.Block
                [ ("name", v_str "ssh"); ("dir", v_str "Inbound");
                  ("access", v_str "Allow"); ("priority", Value.Int 100);
                  ("protocol", v_str "Tcp"); ("source_port_range", v_str "*");
                  ("dest_port_range", v_str "22");
                  ("source_cidr", v_str "0.0.0.0/0"); ("dest_cidr", v_str "0.0.0.0/0") ];
            ] ) ]
  in
  let findings = Baselines.tfsec.Checker.analyze (Program.of_resources [ sg ]) in
  Alcotest.(check bool) "ssh open flagged" true (findings <> [])

let test_tflint_cannot_read_plans () =
  Alcotest.(check bool) "hcl only" false Baselines.tflint.Checker.supports_plan_json;
  Alcotest.(check (list string)) "no findings on plans" []
    (List.map (fun f -> f.Checker.rule)
       (Baselines.tflint.Checker.analyze (Program.of_resources [ vm_no_auth ])))

let test_prevalence_ordering () =
  (* on a realistic corpus, checkov flags far more programs than tfcomp *)
  let programs =
    List.map
      (fun p -> p.Generator.program)
      (Generator.generate ~provider ~seed:202 ~count:600 ())
  in
  let p_checkov = Checker.prevalence Baselines.checkov programs in
  let p_tfcomp = Checker.prevalence Baselines.tfcomp programs in
  let p_tfsec = Checker.prevalence Baselines.tfsec programs in
  Alcotest.(check bool)
    (Printf.sprintf "checkov (%.2f) > tfsec (%.2f) > tfcomp (%.2f)" p_checkov p_tfsec p_tfcomp)
    true
    (p_checkov > p_tfsec && p_tfsec >= p_tfcomp);
  Alcotest.(check bool) "checkov broad" true (p_checkov > 0.4)

let test_all_have_metadata () =
  List.iter
    (fun (c : Checker.t) ->
      Alcotest.(check bool) (c.Checker.name ^ " metadata") true
        (String.length c.Checker.spec_format > 0 && String.length c.Checker.input_phase > 0))
    (Baselines.all provider);
  Alcotest.(check int) "six baselines" 6 (List.length (Baselines.all provider))

let () =
  Alcotest.run "checkers"
    [
      ( "native",
        [
          Alcotest.test_case "missing required" `Quick test_native_missing_required;
          Alcotest.test_case "bad enum" `Quick test_native_bad_enum;
          Alcotest.test_case "vm auth conflict" `Quick test_native_vm_auth;
          Alcotest.test_case "silent on semantic bugs" `Quick test_native_silent_on_semantic_bugs;
        ] );
      ( "security",
        [
          Alcotest.test_case "checkov breadth" `Quick test_checkov_broad;
          Alcotest.test_case "tfsec ssh" `Quick test_tfsec_ssh_rule;
          Alcotest.test_case "tflint format" `Quick test_tflint_cannot_read_plans;
          Alcotest.test_case "prevalence ordering" `Slow test_prevalence_ordering;
          Alcotest.test_case "metadata" `Quick test_all_have_metadata;
        ] );
    ]
