(* Integration tests: the whole Zodiac pipeline end to end. *)

module Pipeline = Zodiac.Pipeline
module Report = Zodiac.Report
module Registry = Zodiac.Registry
module Scheduler = Zodiac_validation.Scheduler
module Check = Zodiac_spec.Check
module Arm = Zodiac_cloud.Arm

let artifacts =
  lazy
    (Pipeline.run
       ~config:
         {
           Pipeline.quick_config with
           Pipeline.corpus_size = 350;
           scheduler = { Scheduler.default_config with Scheduler.max_iterations = 4 };
         }
       ())

let test_funnel_shape () =
  let a = Lazy.force artifacts in
  let mined = List.length a.Pipeline.mined in
  let kept = List.length a.Pipeline.filtered.Zodiac_mining.Filter.kept in
  let candidates = List.length a.Pipeline.candidates in
  let validated = List.length a.Pipeline.validation.Scheduler.validated in
  Alcotest.(check bool) "mined >> kept" true (mined > 3 * kept);
  Alcotest.(check bool) "candidates >= validated" true (candidates >= validated);
  Alcotest.(check bool) "some checks validated" true (validated > 20)

let test_validated_survive_deployment_testing () =
  (* every validated check's violation must actually break deployments:
     spot-check via the ground-truth scan of the corpus *)
  let a = Lazy.force artifacts in
  Alcotest.(check bool) "validation ran deployments" true
    (a.Pipeline.validation.Scheduler.deployments > List.length a.Pipeline.candidates / 2)

let test_counterexample_pass_bounded () =
  let a = Lazy.force artifacts in
  let v = List.length a.Pipeline.validation.Scheduler.validated in
  let fp = List.length a.Pipeline.counterexample_fps in
  Alcotest.(check bool) "small residual FP rate" true
    (v = 0 || float_of_int fp /. float_of_int v < 0.2)

let test_scan_finds_misconfigurations () =
  let a = Lazy.force artifacts in
  let reports =
    Pipeline.scan ~provider:Zodiac_azure.Azure.provider ~checks:a.Pipeline.final_checks
      ~corpus:a.Pipeline.corpus
  in
  (* the corpus has ~4% injected violations; the validated checks
     should catch some of them *)
  Alcotest.(check bool) "found violations" true (reports <> []);
  let buggy_projects =
    List.sort_uniq compare (List.map (fun r -> r.Pipeline.project) reports)
  in
  let injected =
    List.filter
      (fun p -> p.Zodiac_corpus.Generator.injected <> [])
      a.Pipeline.projects
  in
  Alcotest.(check bool) "plausible volume" true
    (List.length buggy_projects <= 3 * List.length injected + 10)

let test_report_renders () =
  let a = Lazy.force artifacts in
  let text = Report.full a in
  Alcotest.(check bool) "mentions phases" true (String.length text > 500)

let test_categories_present () =
  let a = Lazy.force artifacts in
  let breakdown = Report.category_breakdown a.Pipeline.final_checks in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 breakdown in
  Alcotest.(check bool) "nonzero" true (total > 0);
  Alcotest.(check bool) "intra present" true
    (List.assoc "intra-resource" breakdown > 0);
  Alcotest.(check bool) "inter present" true (List.assoc "inter w/o agg" breakdown > 0)

let test_registry_case_study () =
  let buggy = Registry.compile_exn Registry.appgw_assoc_buggy in
  let fixed = Registry.compile_exn Registry.appgw_assoc_fixed in
  Alcotest.(check bool) "buggy fails" false (Pipeline.deploy ~provider:Zodiac_azure.Azure.provider buggy);
  Alcotest.(check bool) "fixed deploys" true (Pipeline.deploy ~provider:Zodiac_azure.Azure.provider fixed);
  (match Arm.first_error (Arm.deploy ~provider:Zodiac_azure.Azure.provider buggy) with
  | Some f -> Alcotest.(check string) "first violation" "APPGW-IP-STANDARD" f.Arm.rule_id
  | None -> Alcotest.fail "expected failure")

let test_mine_only_skips_validation () =
  let a = Pipeline.mine_only ~config:{ Pipeline.quick_config with Pipeline.corpus_size = 120 } () in
  Alcotest.(check int) "no deployments" 0 a.Pipeline.validation.Scheduler.deployments;
  Alcotest.(check bool) "candidates exist" true (a.Pipeline.candidates <> [])

let test_determinism () =
  let config = { Pipeline.quick_config with Pipeline.corpus_size = 120 } in
  let a = Pipeline.mine_only ~config () in
  let b = Pipeline.mine_only ~config () in
  let cids x =
    List.map (fun (c : Check.t) -> c.Check.cid) x.Pipeline.candidates
    |> List.sort compare
  in
  Alcotest.(check (list string)) "same candidates" (cids a) (cids b)

let () =
  Alcotest.run "pipeline"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "funnel shape" `Slow test_funnel_shape;
          Alcotest.test_case "deployment-based validation" `Slow test_validated_survive_deployment_testing;
          Alcotest.test_case "counterexample pass" `Slow test_counterexample_pass_bounded;
          Alcotest.test_case "scan finds misconfigurations" `Slow test_scan_finds_misconfigurations;
          Alcotest.test_case "report renders" `Slow test_report_renders;
          Alcotest.test_case "categories" `Slow test_categories_present;
          Alcotest.test_case "appgw case study" `Quick test_registry_case_study;
          Alcotest.test_case "mine only" `Slow test_mine_only_skips_validation;
          Alcotest.test_case "determinism" `Slow test_determinism;
        ] );
    ]
