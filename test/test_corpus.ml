(* Tests for the synthetic corpus generator. *)

module Generator = Zodiac_corpus.Generator
module Arm = Zodiac_cloud.Arm
module Program = Zodiac_iac.Program
module Prng = Zodiac_util.Prng

let provider = Zodiac_azure.Azure.provider

let test_deterministic () =
  let a = Generator.generate ~provider ~seed:3 ~count:50 () in
  let b = Generator.generate ~provider ~seed:3 ~count:50 () in
  List.iter2
    (fun p q ->
      Alcotest.(check string) "names" p.Generator.pname q.Generator.pname;
      Alcotest.(check bool) "programs equal" true
        (Program.equal p.Generator.program q.Generator.program))
    a b

let test_seed_changes_output () =
  let a = Generator.generate ~provider ~seed:3 ~count:20 () in
  let b = Generator.generate ~provider ~seed:4 ~count:20 () in
  Alcotest.(check bool) "different" true
    (List.exists2
       (fun p q -> not (Program.equal p.Generator.program q.Generator.program))
       a b)

let test_conforming_deploys () =
  let projects = Generator.conforming ~provider ~seed:11 ~count:150 () in
  List.iter
    (fun p ->
      if not (Arm.success (Arm.deploy ~provider p.Generator.program)) then
        Alcotest.failf "conforming project %s fails to deploy" p.Generator.pname)
    projects

let test_injected_violations_fail () =
  let projects = Generator.generate ~provider ~violation_rate:1.0 ~seed:13 ~count:60 () in
  let with_injection = List.filter (fun p -> p.Generator.injected <> []) projects in
  Alcotest.(check bool) "most get an injection" true
    (List.length with_injection > 40);
  List.iter
    (fun p ->
      if Arm.success (Arm.deploy ~provider p.Generator.program) then
        Alcotest.failf "injected %s (%s) still deploys" p.Generator.pname
          (String.concat "," p.Generator.injected))
    with_injection

let test_violation_rate_roughly_respected () =
  let projects = Generator.generate ~provider ~violation_rate:0.10 ~seed:17 ~count:500 () in
  let injected = List.length (List.filter (fun p -> p.Generator.injected <> []) projects) in
  Alcotest.(check bool) "about 10%" true (injected > 25 && injected < 90)

let test_scenario_coverage () =
  let projects = Generator.generate ~provider ~seed:19 ~count:600 () in
  let seen =
    List.sort_uniq compare (List.map (fun p -> p.Generator.scenario) projects)
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " appears") true (List.mem s seen))
    (Generator.scenario_names provider)

let test_unique_resource_ids () =
  List.iter
    (fun p ->
      let ids =
        List.map
          (fun r -> Zodiac_iac.Resource.id_to_string (Zodiac_iac.Resource.id r))
          (Program.resources p.Generator.program)
      in
      Alcotest.(check int) "unique ids" (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    (Generator.generate ~provider ~seed:23 ~count:100 ())

let test_unattended_types_present () =
  let projects = Generator.generate ~provider ~seed:29 ~count:300 () in
  let has_unattended =
    List.exists
      (fun p ->
        List.exists
          (fun r -> Zodiac_azure.Catalog.find r.Zodiac_iac.Resource.rtype = None)
          (Program.resources p.Generator.program))
      projects
  in
  Alcotest.(check bool) "some unattended resources" true has_unattended

let test_generate_one () =
  let rng = Prng.create 31 in
  let p = Generator.generate_one ~provider rng 0 in
  Alcotest.(check bool) "non-empty" true (Program.size p.Generator.program > 0)

let test_rare_attach_option () =
  (* the VM create=Attach path exists but is rare (the §5.6 skew) *)
  let projects = Generator.conforming ~provider ~seed:37 ~count:2000 () in
  let vms =
    List.concat_map
      (fun p -> Program.by_type p.Generator.program "VM")
      projects
  in
  let attach =
    List.length
      (List.filter
         (fun vm ->
           Zodiac_iac.Resource.get vm "create" = Zodiac_iac.Value.Str "Attach")
         vms)
  in
  Alcotest.(check bool) "vms exist" true (List.length vms > 500);
  Alcotest.(check bool) "attach rare but present" true
    (attach > 0 && float_of_int attach /. float_of_int (List.length vms) < 0.03)

let () =
  Alcotest.run "corpus"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_output;
          Alcotest.test_case "conforming projects deploy" `Slow test_conforming_deploys;
          Alcotest.test_case "injected violations fail" `Slow test_injected_violations_fail;
          Alcotest.test_case "violation rate" `Quick test_violation_rate_roughly_respected;
          Alcotest.test_case "scenario coverage" `Quick test_scenario_coverage;
          Alcotest.test_case "unique ids" `Quick test_unique_resource_ids;
          Alcotest.test_case "unattended resources" `Quick test_unattended_types_present;
          Alcotest.test_case "generate_one" `Quick test_generate_one;
          Alcotest.test_case "rare attach option" `Slow test_rare_attach_option;
        ] );
    ]
