(* Stage-runner and telemetry tests: cold ≡ warm ≡ prefix ≡ extended ≡
   uncached byte-equality through [Stage.run], the sinks-never-alter-
   artifacts qcheck property, counter-total determinism across jobs,
   corruption fallback, and the result-returning error paths added for
   malformed user input. *)

module Telemetry = Zodiac_util.Telemetry
module Stage = Zodiac_util.Stage
module Cache = Zodiac_util.Cache
module Codec = Zodiac_util.Codec
module Parallel = Zodiac_util.Parallel
module Json = Zodiac_util.Json
module Pipeline = Zodiac.Pipeline
module Checkset = Zodiac.Checkset
module Registry = Zodiac.Registry
module Spec_parser = Zodiac_spec.Spec_parser

(* ------------- helpers ------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
         (Sys.readdir dir)
     with Sys_error _ -> ());
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_cache_dir name f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A toy sized stage over int lists: element [i] is [i * i], so any
   prefix relation is easy to check and extension is exact. [builds]
   counts cold builds so tests can tell which path ran. *)
let int_list_artifact =
  {
    Stage.write = (fun b xs -> Codec.write_list Codec.write_int b xs);
    read = Codec.read_list Codec.read_int;
  }

let squares ~lo ~hi = List.init (hi - lo) (fun i -> (lo + i) * (lo + i))

let toy_stage ?(builds = ref 0) n =
  Stage.sized ~name:"toy" ~key:(Codec.fingerprint [ "toy"; "v1" ]) ~size:n
    ~artifact:int_list_artifact
    ~shrink:(fun ~larger:_ xs -> List.filteri (fun i _ -> i < n) xs)
    ~extend:(fun ~cached prefix -> prefix @ squares ~lo:cached ~hi:n)
    (fun ~jobs:_ ->
      incr builds;
      squares ~lo:0 ~hi:n)

let bytes_of_ints xs =
  let b = Codec.sink () in
  Codec.write_list Codec.write_int b xs;
  Codec.contents b

(* ------------- telemetry unit tests ----------------------------------- *)

let test_null_recorder () =
  let t = Telemetry.null in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  Alcotest.(check bool) "deterministic" true (Telemetry.deterministic t);
  let v = Telemetry.with_span t "x" (fun () -> Telemetry.count t "c" 3; 41 + 1) in
  Alcotest.(check int) "with_span passes value through" 42 v;
  Alcotest.(check int) "no spans" 0 (List.length (Telemetry.spans t));
  Alcotest.(check (list (pair string int))) "no totals" [] (Telemetry.totals t)

let test_spans_and_counters () =
  let t = Telemetry.create () in
  Telemetry.with_span t "outer" (fun () ->
      Telemetry.count t "b" 2;
      Telemetry.count t "a" 1;
      Telemetry.count t "b" 3;
      Telemetry.note t "k" "v1";
      Telemetry.note t "k" "v2";
      Telemetry.with_span t "inner" (fun () -> Telemetry.count t "a" 10));
  Telemetry.count t "root" 7;
  let spans = Telemetry.spans t in
  Alcotest.(check (list string))
    "span-open order" [ "outer"; "inner" ]
    (List.map (fun s -> s.Telemetry.span_name) spans);
  let outer = List.hd spans and inner = List.nth spans 1 in
  Alcotest.(check int) "outer depth" 0 outer.Telemetry.depth;
  Alcotest.(check int) "inner depth" 1 inner.Telemetry.depth;
  Alcotest.(check (list (pair string int)))
    "counters sorted and summed"
    [ ("a", 1); ("b", 5) ]
    outer.Telemetry.counters;
  Alcotest.(check (list (pair string string)))
    "note overwrites" [ ("k", "v2") ] outer.Telemetry.notes;
  Alcotest.(check bool)
    "clockless spans carry no wall time" true
    (List.for_all (fun s -> s.Telemetry.wall_seconds = None) spans);
  Alcotest.(check (list (pair string int)))
    "totals aggregate spans + root"
    [ ("a", 11); ("b", 5); ("root", 7) ]
    (Telemetry.totals t)

let test_clocked_and_timed () =
  let now = ref 100.0 in
  let t = Telemetry.create ~clock:(fun () -> !now) () in
  Alcotest.(check bool) "not deterministic" false (Telemetry.deterministic t);
  let v, dt =
    Telemetry.timed t "work" (fun () ->
        now := !now +. 1.5;
        "done")
  in
  Alcotest.(check string) "timed value" "done" v;
  Alcotest.(check (float 1e-9)) "timed wall" 1.5 dt;
  (match Telemetry.spans t with
  | [ s ] ->
      Alcotest.(check (option (float 1e-9)))
        "span wall recorded" (Some 1.5) s.Telemetry.wall_seconds
  | _ -> Alcotest.fail "expected one span");
  (* the null recorder's timed reports 0 without touching any clock *)
  let v0, dt0 = Telemetry.timed Telemetry.null "work" (fun () -> 9) in
  Alcotest.(check int) "null timed value" 9 v0;
  Alcotest.(check (float 0.)) "null timed wall" 0.0 dt0

let test_span_closes_on_raise () =
  let t = Telemetry.create () in
  (try
     Telemetry.with_span t "boom" (fun () ->
         Telemetry.count t "n" 1;
         failwith "boom")
   with Failure _ -> ());
  match Telemetry.spans t with
  | [ s ] ->
      Alcotest.(check string) "span closed" "boom" s.Telemetry.span_name;
      Alcotest.(check (option int))
        "counter survived" (Some 1)
        (Telemetry.find_counter s "n")
  | _ -> Alcotest.fail "expected one closed span"

let test_to_json_shape () =
  let t = Telemetry.create () in
  Telemetry.with_span t "s" (fun () -> Telemetry.count t "c" 2);
  let json = Json.of_string (Json.to_string (Telemetry.to_json t)) in
  Alcotest.(check bool)
    "deterministic flag" true
    (Json.member "deterministic" json = Json.Bool true);
  let spans = Json.to_list (Json.member "spans" json) in
  Alcotest.(check int) "one span" 1 (List.length spans);
  let s = List.hd spans in
  Alcotest.(check (option string))
    "name" (Some "s")
    (Json.string_value (Json.member "name" s));
  Alcotest.(check bool)
    "no wall_seconds on deterministic recorder" true
    (Json.member "wall_seconds" s = Json.Null);
  Alcotest.(check (option int))
    "totals" (Some 2)
    (Json.int_value (Json.member "c" (Json.member "totals" json)))

(* ------------- stage runner ------------------------------------------- *)

let test_runner_paths_byte_equal () =
  with_cache_dir "zodiac-test-stage-paths" (fun dir ->
      let cache = Cache.create ~dir () in
      let uncached = Stage.run (toy_stage 50) in
      let builds = ref 0 in
      let cold = Stage.run ~cache (toy_stage ~builds 50) in
      Alcotest.(check int) "cold built" 1 !builds;
      let warm = Stage.run ~cache (toy_stage ~builds 50) in
      Alcotest.(check int) "warm did not build" 1 !builds;
      let extended = Stage.run ~cache (toy_stage ~builds 80) in
      Alcotest.(check int) "extension did not build" 1 !builds;
      let prefix = Stage.run ~cache (toy_stage ~builds 30) in
      Alcotest.(check int) "prefix did not build" 1 !builds;
      Alcotest.(check bool)
        "cold ≡ warm ≡ uncached" true
        (String.equal (bytes_of_ints cold) (bytes_of_ints warm)
        && String.equal (bytes_of_ints cold) (bytes_of_ints uncached));
      Alcotest.(check bool)
        "extended ≡ cold at the larger size" true
        (String.equal (bytes_of_ints extended)
           (bytes_of_ints (squares ~lo:0 ~hi:80)));
      Alcotest.(check bool)
        "prefix ≡ cold at the smaller size" true
        (String.equal (bytes_of_ints prefix)
           (bytes_of_ints (squares ~lo:0 ~hi:30))))

let test_runner_source_notes () =
  with_cache_dir "zodiac-test-stage-notes" (fun dir ->
      let cache = Cache.create ~dir () in
      let source_of f =
        let t = Telemetry.create () in
        ignore (f t);
        match Telemetry.spans t with
        | [ s ] -> List.assoc_opt "source" s.Telemetry.notes
        | _ -> None
      in
      Alcotest.(check (option string))
        "no cache -> uncached" (Some "uncached")
        (source_of (fun telemetry -> Stage.run ~telemetry (toy_stage 20)));
      Alcotest.(check (option string))
        "first run -> cold" (Some "cold")
        (source_of (fun telemetry -> Stage.run ~cache ~telemetry (toy_stage 20)));
      Alcotest.(check (option string))
        "second run -> warm" (Some "warm")
        (source_of (fun telemetry -> Stage.run ~cache ~telemetry (toy_stage 20)));
      Alcotest.(check (option string))
        "grown -> extended" (Some "extended")
        (source_of (fun telemetry -> Stage.run ~cache ~telemetry (toy_stage 33)));
      Alcotest.(check (option string))
        "shrunk -> prefix" (Some "prefix")
        (source_of (fun telemetry -> Stage.run ~cache ~telemetry (toy_stage 10))))

let test_runner_cache_counters () =
  with_cache_dir "zodiac-test-stage-counters" (fun dir ->
      let cache = Cache.create ~dir () in
      let t = Telemetry.create () in
      ignore (Stage.run ~cache ~telemetry:t (toy_stage 20));
      ignore (Stage.run ~cache ~telemetry:t (toy_stage 20));
      match Telemetry.spans t with
      | [ cold; warm ] ->
          Alcotest.(check (option int))
            "cold misses" (Some 1)
            (Telemetry.find_counter cold "cache.misses");
          Alcotest.(check (option int))
            "cold writes" (Some 1)
            (Telemetry.find_counter cold "cache.writes");
          Alcotest.(check (option int))
            "warm hits" (Some 1)
            (Telemetry.find_counter warm "cache.hits");
          Alcotest.(check (option int))
            "warm misses" (Some 0)
            (Telemetry.find_counter warm "cache.misses")
      | _ -> Alcotest.fail "expected two spans")

let test_runner_corruption_fallback () =
  with_cache_dir "zodiac-test-stage-corrupt" (fun dir ->
      let cache = Cache.create ~dir () in
      let cold = Stage.run ~cache (toy_stage 24) in
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let data = Bytes.of_string (really_input_string ic n) in
          close_in ic;
          let mid = n / 2 in
          Bytes.set data mid
            (Char.chr (Char.code (Bytes.get data mid) lxor 0xff));
          let oc = open_out_bin path in
          output_bytes oc data;
          close_out oc)
        (Sys.readdir dir);
      let builds = ref 0 in
      let rebuilt = Stage.run ~cache (toy_stage ~builds 24) in
      Alcotest.(check int) "corruption forces a cold rebuild" 1 !builds;
      Alcotest.(check bool)
        "rebuilt artifact identical" true
        (String.equal (bytes_of_ints cold) (bytes_of_ints rebuilt)))

(* ------------- sinks never alter artifacts (qcheck) -------------------- *)

(* Run the same toy stage under a random number of event sinks (some of
   them stateful) plus random extra counters; the artifact must be the
   byte-identical value produced with no telemetry at all. *)
let prop_sinks_never_alter_artifacts =
  QCheck.Test.make ~name:"telemetry sinks never alter artifacts" ~count:60
    QCheck.(pair (int_range 1 40) (int_range 0 5))
    (fun (n, sink_count) ->
      let expected = bytes_of_ints (squares ~lo:0 ~hi:n) in
      let seen = ref 0 in
      let sinks =
        List.init sink_count (fun i ->
            if i mod 2 = 0 then fun _ -> incr seen else fun _ -> ())
      in
      let telemetry = Telemetry.create ~sinks () in
      let v =
        Telemetry.with_span telemetry "prop" (fun () ->
            Telemetry.count telemetry "noise" n;
            Stage.run ~telemetry (toy_stage n))
      in
      String.equal expected (bytes_of_ints v)
      && (sink_count < 2 || !seen > 0))

(* ------------- pipeline counter determinism across jobs ---------------- *)

(* Counter totals must be a pure function of the configuration — except
   the [parallel.*] scheduling counters, which legitimately vary with
   [jobs] and the host's domain count. *)
let test_counter_totals_jobs_invariant () =
  let totals jobs =
    let telemetry = Telemetry.create () in
    let config =
      { Pipeline.quick_config with Pipeline.corpus_size = 60; jobs }
    in
    ignore (Pipeline.mine_only ~config ~telemetry ());
    List.filter
      (fun (k, _) -> not (String.length k >= 9 && String.sub k 0 9 = "parallel."))
      (Telemetry.totals telemetry)
  in
  Alcotest.(check (list (pair string int)))
    "totals identical for jobs=1 and jobs=4" (totals 1) (totals 4)

(* ------------- result-returning error paths ---------------------------- *)

let test_error_paths () =
  (match Checkset.save "/nonexistent-dir/zodiac-checks.json" [] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "save into a missing directory must not succeed");
  (match Registry.compile_file "/nonexistent-dir/main.tf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compiling a missing file must not succeed");
  (match Registry.compile_file "." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compiling a directory must not succeed");
  match Spec_parser.parse_many [ "let r:VM in r.x == 1 => r.y == 2"; "not a check" ] with
  | Error e ->
      Alcotest.(check bool)
        "error names the failing entry" true
        (String.length e >= 8 && String.sub e 0 8 = "check 2:")
  | Ok _ -> Alcotest.fail "malformed batch must not parse"

let () =
  Alcotest.run "stage"
    [
      ( "telemetry",
        [
          Alcotest.test_case "null recorder" `Quick test_null_recorder;
          Alcotest.test_case "spans and counters" `Quick test_spans_and_counters;
          Alcotest.test_case "clocked and timed" `Quick test_clocked_and_timed;
          Alcotest.test_case "span closes on raise" `Quick
            test_span_closes_on_raise;
          Alcotest.test_case "to_json shape" `Quick test_to_json_shape;
        ] );
      ( "runner",
        [
          Alcotest.test_case "paths byte-equal" `Quick
            test_runner_paths_byte_equal;
          Alcotest.test_case "source notes" `Quick test_runner_source_notes;
          Alcotest.test_case "cache counters" `Quick test_runner_cache_counters;
          Alcotest.test_case "corruption fallback" `Quick
            test_runner_corruption_fallback;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_sinks_never_alter_artifacts ] );
      ( "pipeline",
        [
          Alcotest.test_case "counter totals jobs-invariant" `Quick
            test_counter_totals_jobs_invariant;
        ] );
      ( "errors", [ Alcotest.test_case "result paths" `Quick test_error_paths ] );
    ]
