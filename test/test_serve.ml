(* Check-as-a-service tests: the JSON layer's parse/print round-trip
   (qcheck) and malformed-input behavior, the request protocol, the
   resident session's verbs, SARIF determinism, and an in-process
   daemon round-trip asserting byte-equality with the one-shot scan
   path. *)

module Json = Zodiac_util.Json
module Sarif = Zodiac_serve.Sarif
module Scan = Zodiac_serve.Scan
module Protocol = Zodiac_serve.Protocol
module Session = Zodiac_serve.Session
module Server = Zodiac_serve.Server
module Registry = Zodiac.Registry

(* ------------- JSON round-trip (qcheck) ------------------------------ *)

let json_gen : Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  let finite f =
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then 0.
    else f
  in
  sized
  @@ fix (fun self n ->
         let scalar =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map (fun f -> Json.Float (finite f)) float;
               map (fun s -> Json.String s) (string_size (int_bound 16));
             ]
         in
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)))
               );
               ( 1,
                 map
                   (fun ps -> Json.Obj ps)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 8)) (self (n / 2)))) );
             ])

let json_arbitrary =
  QCheck.make ~print:(fun j -> Json.to_string ~pretty:true j) json_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print j) = j" ~count:500 json_arbitrary
    (fun j -> Json.of_string_result (Json.to_string j) = Ok j)

let prop_roundtrip_pretty =
  QCheck.Test.make ~name:"parse (pretty-print j) = j" ~count:500 json_arbitrary
    (fun j -> Json.of_string_result (Json.to_string ~pretty:true j) = Ok j)

(* ------------- malformed-input fuzz ---------------------------------- *)

let malformed_inputs =
  [
    "";
    "   ";
    "{";
    "[1,2";
    "\"abc";
    "{\"a\":}";
    "{\"a\" 1}";
    "[1 2]";
    "nul";
    "tru";
    "falsy";
    "-";
    "--1";
    "01x";
    "{}garbage";
    "\"\\q\"";
    "\"\\u12\"";
    "\"\\u12G4\"";
    "\"\\u1_34\"";
    "\"\\";
    "{\"a\": [1, {\"b\": }]}";
    String.make 4 '[';
  ]

let test_malformed_returns_error () =
  List.iter
    (fun input ->
      match Json.of_string_result input with
      | Error _ -> ()
      | Ok v ->
          Alcotest.failf "input %S parsed to %s" input (Json.to_string v))
    malformed_inputs

let test_oversized_payload () =
  let big = Json.to_string (Json.String (String.make 100 'x')) in
  (match Json.of_string_result ~max_bytes:10 big with
  | Error msg ->
      Alcotest.(check bool) "mentions limit" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "oversized payload accepted");
  match Json.of_string_result ~max_bytes:(String.length big) big with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "at-limit payload rejected: %s" e

let test_deep_nesting_no_crash () =
  (* a malicious depth bomb must come back Error, never Stack_overflow *)
  let depth = 2_000_000 in
  let bomb = String.make depth '[' in
  match Json.of_string_result bomb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth bomb parsed"

(* ------------- protocol ---------------------------------------------- *)

let parse_ok line =
  match Protocol.parse ~max_bytes:4096 line with
  | Ok r -> r
  | Error (_, e) -> Alcotest.failf "parse failed: %s" e.Protocol.message

let parse_err line =
  match Protocol.parse ~max_bytes:4096 line with
  | Ok _ -> Alcotest.failf "parse of %S succeeded" line
  | Error (id, e) -> (id, e.Protocol.code)

let test_protocol_parse () =
  let r = parse_ok {|{"id":7,"method":"scan_file","params":{"path":"a.tf"}}|} in
  Alcotest.(check bool) "id echoed" true (r.Protocol.id = Json.Int 7);
  (match r.Protocol.verb with
  | Protocol.Scan_file { path; source } ->
      Alcotest.(check string) "path" "a.tf" path;
      Alcotest.(check bool) "no source" true (source = None)
  | _ -> Alcotest.fail "wrong verb");
  let r = parse_ok {|{"method":"ping"}|} in
  Alcotest.(check bool) "absent id is Null" true (r.Protocol.id = Json.Null);
  List.iter
    (fun (line, want) ->
      let _, code = parse_err line in
      Alcotest.(check string) line want code)
    [
      ({|[1,2]|}, "invalid_request");
      ({|{"id":1}|}, "invalid_request");
      ({|{"method":"frobnicate"}|}, "unknown_method");
      ({|{"method":"scan_file"}|}, "missing_param");
      ({|{"method":"scan_file","params":{"path":3}}|}, "missing_param");
      ({|{"method":"validate","params":{"path":"x","source":5}}|},
       "invalid_request");
      ("not json at all", "parse_error");
    ];
  (* the id still echoes on post-parse failures *)
  let id, _ = parse_err {|{"id":"abc","method":"nope"}|} in
  Alcotest.(check bool) "id echoed on error" true (id = Json.String "abc")

let test_protocol_too_large () =
  let line = String.make 64 ' ' ^ {|{"method":"ping"}|} in
  match Protocol.parse ~max_bytes:32 line with
  | Error (_, e) ->
      Alcotest.(check string) "code" "request_too_large" e.Protocol.code
  | Ok _ -> Alcotest.fail "oversized request accepted"

(* ------------- session + server ------------------------------------- *)

let write_temp name contents =
  let path = Filename.temp_file "zodiac-test-serve" name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let make_session () =
  match Session.create Session.default_config with
  | Ok s -> s
  | Error e -> Alcotest.failf "session: %s" e

(* Drive the real channel loop: requests from a file, responses to a
   file — the same transport the stdio daemon uses, minus the pipes. *)
let round_trip ?config session requests =
  let req = write_temp ".req" (String.concat "\n" requests ^ "\n") in
  let resp = Filename.temp_file "zodiac-test-serve" ".resp" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove req with Sys_error _ -> ());
      try Sys.remove resp with Sys_error _ -> ())
    (fun () ->
      let ic = open_in req in
      let oc = open_out resp in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr oc)
        (fun () -> Server.serve_channels ?config session ic oc);
      let ic = open_in resp in
      let n = in_channel_length ic in
      let all =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic n)
      in
      match String.trim all with
      | "" -> []
      | trimmed -> String.split_on_char '\n' trimmed)

let scan_request ?(id = 1) path =
  Printf.sprintf {|{"id":%d,"method":"scan_file","params":{"path":%s}}|} id
    (Json.to_string (Json.String path))

let response_field line name =
  match Json.of_string_result line with
  | Error e -> Alcotest.failf "bad response line %S: %s" line e
  | Ok json -> Json.member name json

let test_server_round_trip () =
  let tf = write_temp ".tf" Registry.mssql_db_buggy in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tf with Sys_error _ -> ())
    (fun () ->
      let session = make_session () in
      let responses =
        round_trip session
          [
            {|{"id":1,"method":"ping"}|};
            scan_request ~id:2 tf;
            "utter { garbage";
            {|{"id":4,"method":"list_checks"}|};
            {|{"id":5,"method":"stats"}|};
            {|{"id":6,"method":"shutdown"}|};
            {|{"id":7,"method":"ping"}|};
          ]
      in
      (* the post-shutdown ping is never answered *)
      Alcotest.(check int) "six responses" 6 (List.length responses);
      let nth = List.nth responses in
      Alcotest.(check bool) "ping ok" true
        (response_field (nth 0) "ok" = Json.Bool true);
      (* the daemon's SARIF equals the one-shot scan path, byte for byte *)
      let checks = Session.checks session in
      let findings =
        match Scan.scan_file ~checks tf with
        | Ok fs -> fs
        | Error e -> Alcotest.failf "one-shot scan: %s" e
      in
      Alcotest.(check bool) "known-bad file flagged" true (findings <> []);
      let oneshot = Sarif.to_string findings in
      let daemon =
        Json.to_string ~pretty:true (response_field (nth 1) "result") ^ "\n"
      in
      Alcotest.(check string) "resident ≡ one-shot SARIF" oneshot daemon;
      (* the malformed line got a structured error, and serving went on *)
      Alcotest.(check bool) "garbage answered not-ok" true
        (response_field (nth 2) "ok" = Json.Bool false);
      Alcotest.(check bool) "parse_error code" true
        (Json.member "code" (response_field (nth 2) "error")
        = Json.String "parse_error");
      Alcotest.(check bool) "list_checks ok" true
        (response_field (nth 3) "ok" = Json.Bool true);
      Alcotest.(check bool) "stats counted the scan" true
        (Json.member "files_scanned" (response_field (nth 4) "result")
        = Json.Int 1);
      Alcotest.(check bool) "shutdown acknowledged" true
        (response_field (nth 5) "result" = Json.Obj [ ("stopping", Json.Bool true) ]);
      Alcotest.(check bool) "session stopping" true (Session.stopping session))

let test_server_deadline () =
  let session = make_session () in
  (* a negative deadline is already exceeded when the handler returns:
     deterministic without sleeping *)
  let config = { Server.default_config with Server.deadline_ms = Some (-1) } in
  let resp = Server.handle_line ~config session {|{"id":1,"method":"ping"}|} in
  Alcotest.(check bool) "deadline_exceeded" true
    (Json.member "code" (Json.member "error" resp)
    = Json.String "deadline_exceeded")

let test_server_oversized_line () =
  let session = make_session () in
  let config = { Server.default_config with Server.max_request_bytes = 64 } in
  let long =
    Printf.sprintf {|{"id":1,"method":"scan_file","params":{"path":"%s"}}|}
      (String.make 256 'a')
  in
  (* the channel loop drains the oversized line, answers a structured
     error, and keeps serving the next request *)
  let responses = round_trip ~config session [ long; {|{"id":2,"method":"ping"}|} ] in
  Alcotest.(check int) "both lines answered" 2 (List.length responses);
  Alcotest.(check bool) "request_too_large" true
    (Json.member "code" (response_field (List.nth responses 0) "error")
    = Json.String "request_too_large");
  Alcotest.(check bool) "ping after oversized line still served" true
    (response_field (List.nth responses 1) "ok" = Json.Bool true);
  let resp = Server.handle_line ~config session long in
  Alcotest.(check bool) "handle_line guards too" true
    (Json.member "code" (Json.member "error" resp)
    = Json.String "request_too_large")

let test_validate_verbs () =
  let good = write_temp ".tf" Registry.mssql_db_fixed in
  let bad = write_temp ".tf" Registry.mssql_db_buggy in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove good with Sys_error _ -> ());
      try Sys.remove bad with Sys_error _ -> ())
    (fun () ->
      let session = make_session () in
      let validate path =
        match
          Session.handle session
            (Protocol.Validate { path; source = None })
        with
        | Ok json -> Json.member "deployable" json
        | Error e -> Alcotest.failf "validate: %s" e.Protocol.message
      in
      Alcotest.(check bool) "fixed program deploys" true
        (validate good = Json.Bool true);
      Alcotest.(check bool) "buggy program fails" true
        (validate bad = Json.Bool false);
      match
        Session.handle session
          (Protocol.Validate { path = "/nonexistent.tf"; source = None })
      with
      | Error e ->
          Alcotest.(check string) "validate_error" "validate_error"
            e.Protocol.code
      | Ok _ -> Alcotest.fail "missing file validated")

(* ------------- SARIF ------------------------------------------------- *)

let finding ~file ~line ~rule =
  {
    Sarif.rule_id = rule;
    message = "m:" ^ rule;
    bindings = [ ("r", "T." ^ rule) ];
    explanation = "because";
    file;
    line;
  }

let test_sarif_deterministic () =
  let shuffled =
    [
      finding ~file:"b.tf" ~line:9 ~rule:"R2";
      finding ~file:"a.tf" ~line:5 ~rule:"R3";
      finding ~file:"a.tf" ~line:2 ~rule:"R1";
      finding ~file:"a.tf" ~line:2 ~rule:"R1";  (* duplicate collapses *)
      finding ~file:"a.tf" ~line:5 ~rule:"R2";
    ]
  in
  let doc = Sarif.document shuffled in
  let results = Json.to_list (Json.member "results" (List.hd (Json.to_list (Json.member "runs" doc)))) in
  let keys =
    List.map
      (fun r ->
        let loc = List.hd (Json.to_list (Json.member "locations" r)) in
        let phys = Json.member "physicalLocation" loc in
        ( Option.get
            (Json.string_value
               (Json.member "uri" (Json.member "artifactLocation" phys))),
          Option.get
            (Json.int_value
               (Json.member "startLine" (Json.member "region" phys))),
          Option.get (Json.string_value (Json.member "ruleId" r)) ))
      results
  in
  Alcotest.(check bool) "sorted by (file, line, rule) and deduped" true
    (keys
    = [
        ("a.tf", 2, "R1"); ("a.tf", 5, "R2"); ("a.tf", 5, "R3");
        ("b.tf", 9, "R2");
      ]);
  (* permutation-invariant and byte-stable *)
  Alcotest.(check string) "order-insensitive bytes"
    (Sarif.to_string shuffled)
    (Sarif.to_string (List.rev shuffled));
  (* no wall-clock unless asked *)
  Alcotest.(check bool) "no invocations by default" true
    (Json.member "invocations" (List.hd (Json.to_list (Json.member "runs" doc)))
    = Json.Null);
  let stamped = Sarif.document ~timestamp:"2026-08-08T00:00:00Z" shuffled in
  Alcotest.(check bool) "timestamp present when requested" true
    (Json.member "invocations"
       (List.hd (Json.to_list (Json.member "runs" stamped)))
    <> Json.Null)

let test_line_index () =
  let idx = Sarif.index_source Registry.mssql_db_buggy in
  let server_line =
    Sarif.resource_line idx
      { Zodiac_iac.Resource.rtype = "SQLSERVER"; rname = "s" }
  in
  let db_line =
    Sarif.resource_line idx { Zodiac_iac.Resource.rtype = "SQLDB"; rname = "d" }
  in
  Alcotest.(check bool) "server block located" true (server_line > 1);
  Alcotest.(check bool) "db block after server" true (db_line > server_line);
  Alcotest.(check int) "unknown resource falls back to 1" 1
    (Sarif.resource_line idx
       { Zodiac_iac.Resource.rtype = "NOPE"; rname = "x" })

let test_scan_directory () =
  let dir = Filename.temp_file "zodiac-test-serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sub = Filename.concat dir "sub" in
  Unix.mkdir sub 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "bad.tf" Registry.mssql_db_buggy;
  write "good.tf" Registry.mssql_db_fixed;
  write "notes.txt" "not hcl";
  let oc = open_out (Filename.concat sub "broken.hcl") in
  output_string oc "resource \"x\" {";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [
          Filename.concat dir "bad.tf"; Filename.concat dir "good.tf";
          Filename.concat dir "notes.txt"; Filename.concat sub "broken.hcl";
        ];
      (try Unix.rmdir sub with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let files = Scan.hcl_files dir in
      Alcotest.(check int) "two .tf + one .hcl" 3 (List.length files);
      let checks = Scan.ground_truth_entries () in
      match Scan.scan_directory ~jobs:2 ~checks dir with
      | Error e -> Alcotest.failf "scan_directory: %s" e
      | Ok (findings, errors) ->
          Alcotest.(check bool) "findings from bad.tf" true (findings <> []);
          Alcotest.(check int) "one unparsable file" 1 (List.length errors);
          Alcotest.(check bool) "error names the file" true
            (String.length (fst (List.hd errors)) > 0))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_pretty;
          Alcotest.test_case "malformed inputs return Error" `Quick
            test_malformed_returns_error;
          Alcotest.test_case "oversized payload" `Quick test_oversized_payload;
          Alcotest.test_case "depth bomb" `Quick test_deep_nesting_no_crash;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request parsing" `Quick test_protocol_parse;
          Alcotest.test_case "request too large" `Quick test_protocol_too_large;
        ] );
      ( "server",
        [
          Alcotest.test_case "round trip" `Quick test_server_round_trip;
          Alcotest.test_case "deadline" `Quick test_server_deadline;
          Alcotest.test_case "oversized line" `Quick test_server_oversized_line;
          Alcotest.test_case "validate" `Quick test_validate_verbs;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "deterministic document" `Quick
            test_sarif_deterministic;
          Alcotest.test_case "line index" `Quick test_line_index;
          Alcotest.test_case "directory scan" `Quick test_scan_directory;
        ] );
    ]
