(* Check-as-a-service tests: the JSON layer's parse/print round-trip
   (qcheck) and malformed-input behavior, the request protocol, the
   resident session's verbs, SARIF determinism, and an in-process
   daemon round-trip asserting byte-equality with the one-shot scan
   path. *)

module Json = Zodiac_util.Json
module Sarif = Zodiac_serve.Sarif
module Scan = Zodiac_serve.Scan
module Protocol = Zodiac_serve.Protocol
module Session = Zodiac_serve.Session
module Server = Zodiac_serve.Server
module Registry = Zodiac.Registry

(* ------------- JSON round-trip (qcheck) ------------------------------ *)

let json_gen : Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  let finite f =
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then 0.
    else f
  in
  sized
  @@ fix (fun self n ->
         let scalar =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map (fun f -> Json.Float (finite f)) float;
               map (fun s -> Json.String s) (string_size (int_bound 16));
             ]
         in
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)))
               );
               ( 1,
                 map
                   (fun ps -> Json.Obj ps)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 8)) (self (n / 2)))) );
             ])

let json_arbitrary =
  QCheck.make ~print:(fun j -> Json.to_string ~pretty:true j) json_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print j) = j" ~count:500 json_arbitrary
    (fun j -> Json.of_string_result (Json.to_string j) = Ok j)

let prop_roundtrip_pretty =
  QCheck.Test.make ~name:"parse (pretty-print j) = j" ~count:500 json_arbitrary
    (fun j -> Json.of_string_result (Json.to_string ~pretty:true j) = Ok j)

(* ------------- malformed-input fuzz ---------------------------------- *)

let malformed_inputs =
  [
    "";
    "   ";
    "{";
    "[1,2";
    "\"abc";
    "{\"a\":}";
    "{\"a\" 1}";
    "[1 2]";
    "nul";
    "tru";
    "falsy";
    "-";
    "--1";
    "01x";
    "{}garbage";
    "\"\\q\"";
    "\"\\u12\"";
    "\"\\u12G4\"";
    "\"\\u1_34\"";
    "\"\\";
    "{\"a\": [1, {\"b\": }]}";
    String.make 4 '[';
  ]

let test_malformed_returns_error () =
  List.iter
    (fun input ->
      match Json.of_string_result input with
      | Error _ -> ()
      | Ok v ->
          Alcotest.failf "input %S parsed to %s" input (Json.to_string v))
    malformed_inputs

let test_oversized_payload () =
  let big = Json.to_string (Json.String (String.make 100 'x')) in
  (match Json.of_string_result ~max_bytes:10 big with
  | Error msg ->
      Alcotest.(check bool) "mentions limit" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "oversized payload accepted");
  match Json.of_string_result ~max_bytes:(String.length big) big with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "at-limit payload rejected: %s" e

let test_deep_nesting_no_crash () =
  (* a malicious depth bomb must come back Error, never Stack_overflow *)
  let depth = 2_000_000 in
  let bomb = String.make depth '[' in
  match Json.of_string_result bomb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth bomb parsed"

(* ------------- protocol ---------------------------------------------- *)

let parse_ok line =
  match Protocol.parse ~max_bytes:4096 line with
  | Ok r -> r
  | Error (_, e) -> Alcotest.failf "parse failed: %s" e.Protocol.message

let parse_err line =
  match Protocol.parse ~max_bytes:4096 line with
  | Ok _ -> Alcotest.failf "parse of %S succeeded" line
  | Error (id, e) -> (id, e.Protocol.code)

let test_protocol_parse () =
  let r = parse_ok {|{"id":7,"method":"scan_file","params":{"path":"a.tf"}}|} in
  Alcotest.(check bool) "id echoed" true (r.Protocol.id = Json.Int 7);
  (match r.Protocol.verb with
  | Protocol.Scan_file { path; source } ->
      Alcotest.(check string) "path" "a.tf" path;
      Alcotest.(check bool) "no source" true (source = None)
  | _ -> Alcotest.fail "wrong verb");
  let r = parse_ok {|{"method":"ping"}|} in
  Alcotest.(check bool) "absent id is Null" true (r.Protocol.id = Json.Null);
  List.iter
    (fun (line, want) ->
      let _, code = parse_err line in
      Alcotest.(check string) line want code)
    [
      ({|[1,2]|}, "invalid_request");
      ({|{"id":1}|}, "invalid_request");
      ({|{"method":"frobnicate"}|}, "unknown_method");
      ({|{"method":"scan_file"}|}, "missing_param");
      ({|{"method":"scan_file","params":{"path":3}}|}, "missing_param");
      ({|{"method":"validate","params":{"path":"x","source":5}}|},
       "invalid_request");
      ("not json at all", "parse_error");
    ];
  (* the id still echoes on post-parse failures *)
  let id, _ = parse_err {|{"id":"abc","method":"nope"}|} in
  Alcotest.(check bool) "id echoed on error" true (id = Json.String "abc")

let test_protocol_too_large () =
  let line = String.make 64 ' ' ^ {|{"method":"ping"}|} in
  match Protocol.parse ~max_bytes:32 line with
  | Error (_, e) ->
      Alcotest.(check string) "code" "request_too_large" e.Protocol.code
  | Ok _ -> Alcotest.fail "oversized request accepted"

(* ------------- session + server ------------------------------------- *)

let write_temp name contents =
  let path = Filename.temp_file "zodiac-test-serve" name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let make_session () =
  match Session.create Session.default_config with
  | Ok s -> s
  | Error e -> Alcotest.failf "session: %s" e

(* Drive the real channel loop: requests from a file, responses to a
   file — the same transport the stdio daemon uses, minus the pipes. *)
let round_trip ?config session requests =
  let req = write_temp ".req" (String.concat "\n" requests ^ "\n") in
  let resp = Filename.temp_file "zodiac-test-serve" ".resp" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove req with Sys_error _ -> ());
      try Sys.remove resp with Sys_error _ -> ())
    (fun () ->
      let ic = open_in req in
      let oc = open_out resp in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr oc)
        (fun () -> Server.serve_channels ?config session ic oc);
      let ic = open_in resp in
      let n = in_channel_length ic in
      let all =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic n)
      in
      match String.trim all with
      | "" -> []
      | trimmed -> String.split_on_char '\n' trimmed)

let scan_request ?(id = 1) path =
  Printf.sprintf {|{"id":%d,"method":"scan_file","params":{"path":%s}}|} id
    (Json.to_string (Json.String path))

let response_field line name =
  match Json.of_string_result line with
  | Error e -> Alcotest.failf "bad response line %S: %s" line e
  | Ok json -> Json.member name json

let test_server_round_trip () =
  let tf = write_temp ".tf" Registry.mssql_db_buggy in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tf with Sys_error _ -> ())
    (fun () ->
      let session = make_session () in
      let responses =
        round_trip session
          [
            {|{"id":1,"method":"ping"}|};
            scan_request ~id:2 tf;
            "utter { garbage";
            {|{"id":4,"method":"list_checks"}|};
            {|{"id":5,"method":"stats"}|};
            {|{"id":6,"method":"shutdown"}|};
            {|{"id":7,"method":"ping"}|};
          ]
      in
      (* the post-shutdown ping is never answered *)
      Alcotest.(check int) "six responses" 6 (List.length responses);
      let nth = List.nth responses in
      Alcotest.(check bool) "ping ok" true
        (response_field (nth 0) "ok" = Json.Bool true);
      (* the daemon's SARIF equals the one-shot scan path, byte for byte *)
      let checks = Session.checks session in
      let findings =
        match Scan.scan_file ~provider:Zodiac_azure.Azure.provider ~checks tf with
        | Ok fs -> fs
        | Error e -> Alcotest.failf "one-shot scan: %s" e
      in
      Alcotest.(check bool) "known-bad file flagged" true (findings <> []);
      let oneshot = Sarif.to_string findings in
      let daemon =
        Json.to_string ~pretty:true (response_field (nth 1) "result") ^ "\n"
      in
      Alcotest.(check string) "resident ≡ one-shot SARIF" oneshot daemon;
      (* the malformed line got a structured error, and serving went on *)
      Alcotest.(check bool) "garbage answered not-ok" true
        (response_field (nth 2) "ok" = Json.Bool false);
      Alcotest.(check bool) "parse_error code" true
        (Json.member "code" (response_field (nth 2) "error")
        = Json.String "parse_error");
      Alcotest.(check bool) "list_checks ok" true
        (response_field (nth 3) "ok" = Json.Bool true);
      Alcotest.(check bool) "stats counted the scan" true
        (Json.member "files_scanned" (response_field (nth 4) "result")
        = Json.Int 1);
      Alcotest.(check bool) "shutdown acknowledged" true
        (response_field (nth 5) "result" = Json.Obj [ ("stopping", Json.Bool true) ]);
      Alcotest.(check bool) "session stopping" true (Session.stopping session))

let test_server_deadline () =
  let session = make_session () in
  (* a negative deadline is already exceeded when the handler returns:
     deterministic without sleeping *)
  let config = { Server.default_config with Server.deadline_ms = Some (-1) } in
  let resp = Server.handle_line ~config session {|{"id":1,"method":"ping"}|} in
  Alcotest.(check bool) "deadline_exceeded" true
    (Json.member "code" (Json.member "error" resp)
    = Json.String "deadline_exceeded")

let test_server_oversized_line () =
  let session = make_session () in
  let config = { Server.default_config with Server.max_request_bytes = 64 } in
  let long =
    Printf.sprintf {|{"id":1,"method":"scan_file","params":{"path":"%s"}}|}
      (String.make 256 'a')
  in
  (* the channel loop drains the oversized line, answers a structured
     error, and keeps serving the next request *)
  let responses = round_trip ~config session [ long; {|{"id":2,"method":"ping"}|} ] in
  Alcotest.(check int) "both lines answered" 2 (List.length responses);
  Alcotest.(check bool) "request_too_large" true
    (Json.member "code" (response_field (List.nth responses 0) "error")
    = Json.String "request_too_large");
  Alcotest.(check bool) "ping after oversized line still served" true
    (response_field (List.nth responses 1) "ok" = Json.Bool true);
  let resp = Server.handle_line ~config session long in
  Alcotest.(check bool) "handle_line guards too" true
    (Json.member "code" (Json.member "error" resp)
    = Json.String "request_too_large")

let test_validate_verbs () =
  let good = write_temp ".tf" Registry.mssql_db_fixed in
  let bad = write_temp ".tf" Registry.mssql_db_buggy in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove good with Sys_error _ -> ());
      try Sys.remove bad with Sys_error _ -> ())
    (fun () ->
      let session = make_session () in
      let validate path =
        match
          Session.handle session
            (Protocol.Validate { path; source = None })
        with
        | Ok json -> Json.member "deployable" json
        | Error e -> Alcotest.failf "validate: %s" e.Protocol.message
      in
      Alcotest.(check bool) "fixed program deploys" true
        (validate good = Json.Bool true);
      Alcotest.(check bool) "buggy program fails" true
        (validate bad = Json.Bool false);
      match
        Session.handle session
          (Protocol.Validate { path = "/nonexistent.tf"; source = None })
      with
      | Error e ->
          Alcotest.(check string) "validate_error" "validate_error"
            e.Protocol.code
      | Ok _ -> Alcotest.fail "missing file validated")

(* ------------- SARIF ------------------------------------------------- *)

let finding ~file ~line ~rule =
  {
    Sarif.rule_id = rule;
    message = "m:" ^ rule;
    bindings = [ ("r", "T." ^ rule) ];
    explanation = "because";
    file;
    line;
  }

let test_sarif_deterministic () =
  let shuffled =
    [
      finding ~file:"b.tf" ~line:9 ~rule:"R2";
      finding ~file:"a.tf" ~line:5 ~rule:"R3";
      finding ~file:"a.tf" ~line:2 ~rule:"R1";
      finding ~file:"a.tf" ~line:2 ~rule:"R1";  (* duplicate collapses *)
      finding ~file:"a.tf" ~line:5 ~rule:"R2";
    ]
  in
  let doc = Sarif.document shuffled in
  let results = Json.to_list (Json.member "results" (List.hd (Json.to_list (Json.member "runs" doc)))) in
  let keys =
    List.map
      (fun r ->
        let loc = List.hd (Json.to_list (Json.member "locations" r)) in
        let phys = Json.member "physicalLocation" loc in
        ( Option.get
            (Json.string_value
               (Json.member "uri" (Json.member "artifactLocation" phys))),
          Option.get
            (Json.int_value
               (Json.member "startLine" (Json.member "region" phys))),
          Option.get (Json.string_value (Json.member "ruleId" r)) ))
      results
  in
  Alcotest.(check bool) "sorted by (file, line, rule) and deduped" true
    (keys
    = [
        ("a.tf", 2, "R1"); ("a.tf", 5, "R2"); ("a.tf", 5, "R3");
        ("b.tf", 9, "R2");
      ]);
  (* permutation-invariant and byte-stable *)
  Alcotest.(check string) "order-insensitive bytes"
    (Sarif.to_string shuffled)
    (Sarif.to_string (List.rev shuffled));
  (* no wall-clock unless asked *)
  Alcotest.(check bool) "no invocations by default" true
    (Json.member "invocations" (List.hd (Json.to_list (Json.member "runs" doc)))
    = Json.Null);
  let stamped = Sarif.document ~timestamp:"2026-08-08T00:00:00Z" shuffled in
  Alcotest.(check bool) "timestamp present when requested" true
    (Json.member "invocations"
       (List.hd (Json.to_list (Json.member "runs" stamped)))
    <> Json.Null)

let test_line_index () =
  let idx = Sarif.index_source Registry.mssql_db_buggy in
  let server_line =
    Sarif.resource_line idx
      { Zodiac_iac.Resource.rtype = "SQLSERVER"; rname = "s" }
  in
  let db_line =
    Sarif.resource_line idx { Zodiac_iac.Resource.rtype = "SQLDB"; rname = "d" }
  in
  Alcotest.(check bool) "server block located" true (server_line > 1);
  Alcotest.(check bool) "db block after server" true (db_line > server_line);
  Alcotest.(check int) "unknown resource falls back to 1" 1
    (Sarif.resource_line idx
       { Zodiac_iac.Resource.rtype = "NOPE"; rname = "x" })

let test_scan_directory () =
  let dir = Filename.temp_file "zodiac-test-serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sub = Filename.concat dir "sub" in
  Unix.mkdir sub 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "bad.tf" Registry.mssql_db_buggy;
  write "good.tf" Registry.mssql_db_fixed;
  write "notes.txt" "not hcl";
  let oc = open_out (Filename.concat sub "broken.hcl") in
  output_string oc "resource \"x\" {";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [
          Filename.concat dir "bad.tf"; Filename.concat dir "good.tf";
          Filename.concat dir "notes.txt"; Filename.concat sub "broken.hcl";
        ];
      (try Unix.rmdir sub with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let files = Scan.hcl_files dir in
      Alcotest.(check int) "two .tf + one .hcl" 3 (List.length files);
      let checks = Scan.ground_truth_entries Zodiac_azure.Azure.provider in
      match
        Scan.scan_directory ~provider:Zodiac_azure.Azure.provider ~jobs:2
          ~checks dir
      with
      | Error e -> Alcotest.failf "scan_directory: %s" e
      | Ok (findings, errors) ->
          Alcotest.(check bool) "findings from bad.tf" true (findings <> []);
          Alcotest.(check int) "one unparsable file" 1 (List.length errors);
          Alcotest.(check bool) "error names the file" true
            (String.length (fst (List.hd errors)) > 0))

(* ------------- concurrency ------------------------------------------- *)

(* Live client connections opened through [connect], so the harness
   can hang them all up before shutting the server down — a failing
   assertion must not leave a worker parked on an open socket (the
   shutdown request would queue behind it forever). *)
let live_fds = ref []
let live_lock = Mutex.create ()

let hang_up_all () =
  Mutex.lock live_lock;
  let fds = !live_fds in
  live_fds := [];
  Mutex.unlock live_lock;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds

(* Run [f session socket_path] against a live [serve_socket] server on
   its own domain; always shuts the server down and joins it. *)
let with_server ?(max_clients = 2) ?deadline_ms f =
  let path = Filename.temp_file "zodiac-test-serve" ".sock" in
  Sys.remove path;
  let session = make_session () in
  let config =
    { Server.default_config with Server.max_clients; deadline_ms }
  in
  let srv =
    Domain.spawn (fun () -> Server.serve_socket ~config session ~path)
  in
  Fun.protect
    ~finally:(fun () ->
      (* free every worker, then a best-effort shutdown request *)
      hang_up_all ();
      (if not (Session.stopping session) then
         try
           let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           Unix.connect fd (Unix.ADDR_UNIX path);
           let msg = {|{"id":0,"method":"shutdown"}|} ^ "\n" in
           ignore (Unix.write_substring fd msg 0 (String.length msg));
           let buf = Bytes.create 256 in
           (try ignore (Unix.read fd buf 0 256) with Unix.Unix_error _ -> ());
           Unix.close fd
         with Unix.Unix_error _ | Sys_error _ -> ());
      Domain.join srv)
    (fun () -> f session path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 0 ->
        Unix.sleepf 0.01;
        go (n - 1)
  in
  go 200;
  Mutex.lock live_lock;
  live_fds := fd :: !live_fds;
  Mutex.unlock live_lock;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

(* Close one tracked connection (and only once — never a second close
   of a recycled fd number). *)
let hang_up fd =
  Mutex.lock live_lock;
  let mine = List.memq fd !live_fds in
  live_fds := List.filter (fun f -> f != fd) !live_fds;
  Mutex.unlock live_lock;
  if mine then try Unix.close fd with Unix.Unix_error _ -> ()

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let source_scan_request ~id ~path src =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int id);
         ("method", Json.String "scan_file");
         ( "params",
           Json.Obj
             [ ("path", Json.String path); ("source", Json.String src) ] );
       ])

let response_id line = response_field line "id"

let test_concurrent_clients () =
  with_server ~max_clients:2 (fun _session path ->
      let fd_a, ic_a, oc_a = connect path in
      let fd_b, ic_b, oc_b = connect path in
      (* interleave requests across both live connections; each client
         must get exactly its own ids back, in its own send order *)
      send oc_a {|{"id":1,"method":"ping"}|};
      send oc_b {|{"id":11,"method":"ping"}|};
      send oc_a (source_scan_request ~id:2 ~path:"a.tf" Registry.mssql_db_buggy);
      send oc_b (source_scan_request ~id:12 ~path:"b.tf" Registry.mssql_db_buggy);
      send oc_b {|{"id":13,"method":"list_checks"}|};
      let a = List.init 2 (fun _ -> input_line ic_a) in
      let b = List.init 3 (fun _ -> input_line ic_b) in
      Alcotest.(check bool) "A's ids routed to A" true
        (List.map response_id a = [ Json.Int 1; Json.Int 2 ]);
      Alcotest.(check bool) "B's ids routed to B" true
        (List.map response_id b = [ Json.Int 11; Json.Int 12; Json.Int 13 ]);
      (* B's answered requests prove both connections were live at
         once; only now is stats guaranteed to have seen both *)
      send oc_a {|{"id":3,"method":"stats"}|};
      let stats_line = input_line ic_a in
      List.iter
        (fun line ->
          Alcotest.(check bool) "all ok" true
            (response_field line "ok" = Json.Bool true))
        ((a @ b) @ [ stats_line ]);
      let stats = response_field stats_line "result" in
      (match Json.int_value (Json.member "connections_total" stats) with
      | Some n -> Alcotest.(check bool) "two connections counted" true (n >= 2)
      | None -> Alcotest.fail "stats lacks connections_total");
      send oc_a {|{"id":4,"method":"shutdown"}|};
      Alcotest.(check bool) "shutdown acknowledged" true
        (response_field (input_line ic_a) "ok" = Json.Bool true);
      hang_up fd_a;
      hang_up fd_b)

let test_busy_past_max_clients () =
  with_server ~max_clients:1 (fun _session path ->
      (* occupy the single worker: the answered ping proves connection
         A was dequeued, so the admission queue is empty again *)
      let fd_a, ic_a, oc_a = connect path in
      send oc_a {|{"id":1,"method":"ping"}|};
      Alcotest.(check bool) "A served" true
        (response_field (input_line ic_a) "ok" = Json.Bool true);
      (* B fills the one queue slot; C must be refused with "busy" *)
      let fd_b, ic_b, oc_b = connect path in
      Unix.sleepf 0.2;
      let fd_c, ic_c, _ = connect path in
      let busy = input_line ic_c in
      Alcotest.(check bool) "C refused not-ok" true
        (response_field busy "ok" = Json.Bool false);
      Alcotest.(check bool) "busy code" true
        (Json.member "code" (response_field busy "error") = Json.String "busy");
      hang_up fd_c;
      (* hanging up A frees the worker for the queued B *)
      hang_up fd_a;
      send oc_b {|{"id":2,"method":"ping"}|};
      Alcotest.(check bool) "queued B served after A hangs up" true
        (response_field (input_line ic_b) "ok" = Json.Bool true);
      send oc_b {|{"id":3,"method":"shutdown"}|};
      ignore (input_line ic_b);
      hang_up fd_b)

let test_deadline_discards_partial_work () =
  let session = make_session () in
  (* a negative deadline trips the very first in-flight checkpoint, so
     the scan is abandoned mid-request — no file count, no findings,
     no cache entry may survive *)
  (match
     Session.handle ~deadline_ms:(-1) session
       (Protocol.Scan_file
          { path = "x.tf"; source = Some Registry.mssql_db_buggy })
   with
  | Error e ->
      Alcotest.(check string) "deadline_exceeded" "deadline_exceeded"
        e.Protocol.code
  | Ok _ -> Alcotest.fail "over-deadline scan succeeded");
  match Session.handle session Protocol.Stats with
  | Error e -> Alcotest.failf "stats: %s" e.Protocol.message
  | Ok stats ->
      Alcotest.(check bool) "partial scan not counted" true
        (Json.member "files_scanned" stats = Json.Int 0);
      Alcotest.(check bool) "partial findings not counted" true
        (Json.member "findings" stats = Json.Int 0);
      Alcotest.(check bool) "no cache entry from abandoned scan" true
        (Json.member "entries" (Json.member "scan_cache" stats) = Json.Int 0)

let test_scan_cache () =
  let session = make_session () in
  let scan ~path src =
    match
      Session.handle session
        (Protocol.Scan_file { path; source = Some src })
    with
    | Ok sarif -> Json.to_string ~pretty:true sarif
    | Error e -> Alcotest.failf "scan: %s" e.Protocol.message
  in
  let first = scan ~path:"a.tf" Registry.mssql_db_buggy in
  let second = scan ~path:"a.tf" Registry.mssql_db_buggy in
  Alcotest.(check string) "repeat scan byte-identical" first second;
  (* same bytes under another path: cache hit, but the response must
     carry the new path, not the first requester's *)
  let third = scan ~path:"b.tf" Registry.mssql_db_buggy in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "hit reattaches the caller's path" true
    (contains third "b.tf" && not (contains third "a.tf"))

let test_scan_cache_stats () =
  let session = make_session () in
  let scan ~path src =
    match
      Session.handle session (Protocol.Scan_file { path; source = Some src })
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "scan: %s" e.Protocol.message
  in
  scan ~path:"a.tf" Registry.mssql_db_buggy;
  scan ~path:"a.tf" Registry.mssql_db_buggy;
  scan ~path:"b.tf" Registry.mssql_db_buggy;
  scan ~path:"c.tf" Registry.mssql_db_fixed;
  match Session.handle session Protocol.Stats with
  | Error e -> Alcotest.failf "stats: %s" e.Protocol.message
  | Ok stats ->
      let sc = Json.member "scan_cache" stats in
      Alcotest.(check bool) "two distinct contents -> two misses" true
        (Json.member "misses" sc = Json.Int 2);
      Alcotest.(check bool) "repeat + same-bytes-other-path -> two hits" true
        (Json.member "hits" sc = Json.Int 2);
      Alcotest.(check bool) "two entries" true
        (Json.member "entries" sc = Json.Int 2)

let test_content_fingerprint () =
  let session = make_session () in
  let scan ~path src =
    match
      Session.handle_extra session
        (Protocol.Scan_file { path; source = Some src })
    with
    | Ok (sarif, extra) -> (sarif, extra)
    | Error e -> Alcotest.failf "scan: %s" e.Protocol.message
  in
  let fp extra =
    match List.assoc_opt "content_fingerprint" extra with
    | Some (Json.String s) -> s
    | Some _ -> Alcotest.fail "content_fingerprint is not a string"
    | None -> Alcotest.fail "content_fingerprint missing"
  in
  let sarif1, e1 = scan ~path:"a.tf" Registry.mssql_db_buggy in
  let _, e2 = scan ~path:"a.tf" Registry.mssql_db_buggy in
  let _, e3 = scan ~path:"b.tf" Registry.mssql_db_fixed in
  Alcotest.(check string) "stable across repeats (ETag)" (fp e1) (fp e2);
  Alcotest.(check bool) "distinct contents, distinct fingerprints" true
    (fp e1 <> fp e3);
  (* the fingerprint rides beside [result] in the envelope: the result
     member itself is byte-identical to what plain [handle] returns *)
  (match
     Session.handle session
       (Protocol.Scan_file { path = "a.tf"; source = Some Registry.mssql_db_buggy })
   with
  | Ok sarif ->
      Alcotest.(check string) "result bytes unchanged by the extra"
        (Json.to_string sarif1) (Json.to_string sarif)
  | Error e -> Alcotest.failf "scan: %s" e.Protocol.message);
  (* control verbs carry no envelope extras *)
  match Session.handle_extra session Protocol.Ping with
  | Ok (_, extra) ->
      Alcotest.(check int) "ping has no extras" 0 (List.length extra)
  | Error e -> Alcotest.failf "ping: %s" e.Protocol.message

let test_scan_batch () =
  let tf = write_temp ".tf" Registry.mssql_db_buggy in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tf with Sys_error _ -> ())
    (fun () ->
      let session = make_session () in
      let files =
        [
          (tf, None);
          ("missing.tf", None);
          ("inline.tf", Some Registry.mssql_db_fixed);
        ]
      in
      match Session.handle session (Protocol.Scan_batch { files }) with
      | Error e -> Alcotest.failf "scan_batch: %s" e.Protocol.message
      | Ok result ->
          let entries = Json.to_list (Json.member "results" result) in
          Alcotest.(check int) "one result per file" 3 (List.length entries);
          (* request order is preserved regardless of completion order *)
          Alcotest.(check bool) "paths in request order" true
            (List.map (fun e -> Json.member "path" e) entries
            = List.map (fun (p, _) -> Json.String p) files);
          let nth = List.nth entries in
          Alcotest.(check bool) "existing file has sarif" true
            (Json.member "sarif" (nth 0) <> Json.Null);
          Alcotest.(check bool) "missing file has error" true
            (Json.member "error" (nth 1) <> Json.Null);
          Alcotest.(check bool) "inline source has sarif" true
            (Json.member "sarif" (nth 2) <> Json.Null);
          Alcotest.(check bool) "counters" true
            (Json.member "files_scanned" result = Json.Int 2
            && Json.member "errors" result = Json.Int 1);
          (* each batch entry equals the equivalent scan_file response *)
          let single =
            match
              Session.handle session
                (Protocol.Scan_file { path = tf; source = None })
            with
            | Ok sarif -> Json.to_string sarif
            | Error e -> Alcotest.failf "scan_file: %s" e.Protocol.message
          in
          Alcotest.(check string) "batch entry ≡ scan_file" single
            (Json.to_string (Json.member "sarif" (nth 0))))

let test_scan_terraform_plan () =
  let session = make_session () in
  let prog =
    match
      Zodiac_hcl.Compile.compile_string
        ~type_map:Zodiac_azure.Catalog.of_terraform Registry.mssql_db_buggy
    with
    | Ok (prog, _) -> prog
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let plan_src =
    Zodiac_hcl.Plan.to_string ~type_name:Zodiac_azure.Catalog.to_terraform prog
  in
  let rule_ids json =
    Json.to_list (Json.member "runs" json)
    |> List.hd
    |> Json.member "results"
    |> Json.to_list
    |> List.map (fun r -> Json.member "ruleId" r)
    |> List.sort_uniq compare
  in
  match
    Session.handle session
      (Protocol.Scan_plan { path = "plan.json"; source = Some plan_src })
  with
  | Error e -> Alcotest.failf "scan_terraform_plan: %s" e.Protocol.message
  | Ok plan_sarif -> (
      Alcotest.(check bool) "plan scan finds violations" true
        (rule_ids plan_sarif <> []);
      match
        Session.handle session
          (Protocol.Scan_file
             { path = "x.tf"; source = Some Registry.mssql_db_buggy })
      with
      | Error e -> Alcotest.failf "scan_file: %s" e.Protocol.message
      | Ok hcl_sarif ->
          (* same program, two input languages: same rules must fire
             (lines differ — plan JSON has no source positions) *)
          Alcotest.(check bool) "plan rules ≡ HCL rules" true
            (rule_ids plan_sarif = rule_ids hcl_sarif);
          (* malformed plan JSON is a structured scan_error *)
          match
            Session.handle session
              (Protocol.Scan_plan { path = "p.json"; source = Some "{}" })
          with
          | Error e ->
              Alcotest.(check string) "scan_error" "scan_error" e.Protocol.code
          | Ok _ -> Alcotest.fail "empty plan scanned")

(* qcheck: N concurrent clients each replaying a request script over
   its own connection get byte-for-byte the responses a sequential
   replay of the same script produces — determinism survives
   concurrency, scheduling and the shared scan cache. *)
let example_sources =
  [|
    Registry.mssql_db_buggy;
    Registry.mssql_db_fixed;
    Registry.appgw_assoc_buggy;
    Registry.appgw_assoc_fixed;
    Registry.quickstart_vm;
  |]

let prop_concurrent_equals_sequential server_path =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 3)
        (list_size (int_range 1 4)
           (int_bound (Array.length example_sources - 1))))
  in
  let arb =
    QCheck.make
      ~print:(fun clients ->
        String.concat ";"
          (List.map
             (fun picks -> String.concat "," (List.map string_of_int picks))
             clients))
      gen
  in
  QCheck.Test.make ~name:"concurrent ≡ sequential SARIF bytes" ~count:5 arb
    (fun clients ->
      let script client_idx picks =
        List.mapi
          (fun i pick ->
            source_scan_request
              ~id:((100 * client_idx) + i)
              ~path:(Printf.sprintf "c%d-%d.tf" client_idx i)
              example_sources.(pick))
          picks
      in
      let scripts = List.mapi script clients in
      let drivers =
        List.map
          (fun lines ->
            Domain.spawn (fun () ->
                let fd, ic, oc = connect server_path in
                let responses =
                  List.map
                    (fun line ->
                      send oc line;
                      input_line ic)
                    lines
                in
                hang_up fd;
                responses))
          scripts
      in
      let concurrent = List.map Domain.join drivers in
      (* sequential replay on a fresh session — same scripts, no
         concurrency, no shared cache state with the server *)
      let replay = make_session () in
      let sequential =
        List.map
          (List.map (fun line ->
               Json.to_string (Server.handle_line replay line)))
          scripts
      in
      concurrent = sequential)

let test_concurrent_determinism () =
  with_server ~max_clients:4 (fun _session path ->
      QCheck.Test.check_exn (prop_concurrent_equals_sequential path))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_pretty;
          Alcotest.test_case "malformed inputs return Error" `Quick
            test_malformed_returns_error;
          Alcotest.test_case "oversized payload" `Quick test_oversized_payload;
          Alcotest.test_case "depth bomb" `Quick test_deep_nesting_no_crash;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request parsing" `Quick test_protocol_parse;
          Alcotest.test_case "request too large" `Quick test_protocol_too_large;
        ] );
      ( "server",
        [
          Alcotest.test_case "round trip" `Quick test_server_round_trip;
          Alcotest.test_case "deadline" `Quick test_server_deadline;
          Alcotest.test_case "oversized line" `Quick test_server_oversized_line;
          Alcotest.test_case "validate" `Quick test_validate_verbs;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "deterministic document" `Quick
            test_sarif_deterministic;
          Alcotest.test_case "line index" `Quick test_line_index;
          Alcotest.test_case "directory scan" `Quick test_scan_directory;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "interleaved clients, id routing" `Quick
            test_concurrent_clients;
          Alcotest.test_case "busy past --max-clients" `Quick
            test_busy_past_max_clients;
          Alcotest.test_case "in-flight deadline discards partial work"
            `Quick test_deadline_discards_partial_work;
          Alcotest.test_case "scan cache reattaches paths" `Quick
            test_scan_cache;
          Alcotest.test_case "scan cache stats" `Quick test_scan_cache_stats;
          Alcotest.test_case "content fingerprint" `Quick
            test_content_fingerprint;
          Alcotest.test_case "scan_batch" `Quick test_scan_batch;
          Alcotest.test_case "scan_terraform_plan" `Quick
            test_scan_terraform_plan;
          Alcotest.test_case "concurrent ≡ sequential (qcheck)" `Quick
            test_concurrent_determinism;
        ] );
    ]
