(* Streaming shard pipeline tests: [Shard_stream.plan] unit cases, the
   shard-boundary invariance properties (fold at any shard size ≡
   monolithic, for corpus stats, the KB and every miner table family),
   checkpointed resume after a mid-run crash, corrupted-checkpoint
   fallback, the [Stage.streamed] warm path, the bounded observation
   table's grouping invariance past its cap, and the peak-RSS probe. *)

module Shard_stream = Zodiac_util.Shard_stream
module Stage = Zodiac_util.Stage
module Cache = Zodiac_util.Cache
module Codec = Zodiac_util.Codec
module Telemetry = Zodiac_util.Telemetry
module Rss = Zodiac_util.Rss
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Candidate = Zodiac_mining.Candidate

let provider = Zodiac_azure.Azure.provider

(* ------------- helpers ------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
         (Sys.readdir dir)
     with Sys_error _ -> ());
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_cache_dir name f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A small generated corpus shared by the invariance checks. *)
let corpus_n = 60

let projects =
  Miner.materialize ~provider
    (List.map
       (fun p -> p.Generator.program)
       (Generator.generate_range ~provider ~seed:7 ~lo:0 ~hi:corpus_n ()))

let slice lo hi = List.filteri (fun i _ -> i >= lo && i < hi) projects

let bytes_of write v =
  let b = Codec.sink () in
  write b v;
  Codec.contents b

let stats_bytes s = bytes_of Kb.write_stats s

(* Fold the shared corpus at [shard_size] through [Shard_stream.fold]
   with no cache; [load] slices the materialized list so every grouping
   sees identical projects. *)
let fold_stats ?cache ~shard_size () =
  Shard_stream.fold ?cache ~stage:"t-kb" ~key:"t-kb" ~write:Kb.write_stats
    ~read:Kb.read_stats
    ~load:(fun ~lo ~hi -> slice lo hi)
    ~count:Kb.stats_of_projects ~merge:Kb.merge_stats
    ~init:(Kb.stats_of_projects []) ~total:corpus_n ~shard_size ()

let fold_tables ?cache kb ~shard_size () =
  Shard_stream.fold ?cache ~stage:"t-mine" ~key:"t-mine"
    ~write:Miner.write_tables ~read:Miner.read_tables
    ~load:(fun ~lo ~hi -> slice lo hi)
    ~count:(Miner.count_tables ~provider Miner.default_config kb)
    ~merge:Miner.merge_tables
    ~init:(Miner.count_tables ~provider Miner.default_config kb [])
    ~total:corpus_n ~shard_size ()

(* ------------- plan units ---------------------------------------------- *)

let test_plan () =
  Alcotest.(check (list (triple int int int)))
    "empty corpus" [] (Shard_stream.plan ~total:0 ~shard_size:10);
  Alcotest.(check (list (triple int int int)))
    "shard_size 0 degenerates to one shard"
    [ (0, 0, 7) ]
    (Shard_stream.plan ~total:7 ~shard_size:0);
  Alcotest.(check (list (triple int int int)))
    "remainder shard is short"
    [ (0, 0, 4); (1, 4, 8); (2, 8, 10) ]
    (Shard_stream.plan ~total:10 ~shard_size:4);
  let plan = Shard_stream.plan ~total:1000 ~shard_size:64 in
  Alcotest.(check int) "shard count" 16 (List.length plan);
  Alcotest.(check bool)
    "ranges tile the corpus" true
    (List.for_all2
       (fun (i, lo, hi) (i', lo', _) -> i' = i + 1 && lo' = hi && hi > lo)
       (List.filteri (fun i _ -> i < 15) plan)
       (List.tl plan))

let test_shard_key () =
  let k1 = Shard_stream.shard_key ~key:"a" ~lo:0 ~hi:10 in
  let k2 = Shard_stream.shard_key ~key:"a" ~lo:10 ~hi:20 in
  let k3 = Shard_stream.shard_key ~key:"b" ~lo:0 ~hi:10 in
  Alcotest.(check bool) "ranges distinct" true (k1 <> k2);
  Alcotest.(check bool) "keys distinct" true (k1 <> k3)

(* ------------- shard-boundary invariance (qcheck) ----------------------- *)

let prop_shard_size_invariant =
  QCheck.Test.make ~name:"fold at any shard size ≡ monolithic" ~count:20
    QCheck.(pair (int_range 1 70) (int_range 1 70))
    (fun (k, k') ->
      let mono, _ = fold_stats ~shard_size:corpus_n () in
      let a, oa = fold_stats ~shard_size:k () in
      let b, _ = fold_stats ~shard_size:k' () in
      oa.Shard_stream.shards = (corpus_n + k - 1) / k
      && String.equal (stats_bytes mono) (stats_bytes a)
      && String.equal (stats_bytes mono) (stats_bytes b))

let prop_tables_invariant =
  QCheck.Test.make ~name:"miner tables fold ≡ monolithic mine" ~count:12
    QCheck.(int_range 1 70)
    (fun k ->
      let kb = Kb.finalize ~provider (fst (fold_stats ~shard_size:k ())) in
      let tables, _ = fold_tables kb ~shard_size:k () in
      let streamed = Miner.emit_tables Miner.default_config kb tables in
      let mono = Miner.mine ~provider ~config:Miner.default_config kb projects in
      String.equal
        (bytes_of (Codec.write_list Candidate.write) streamed)
        (bytes_of (Codec.write_list Candidate.write) mono))

(* ------------- checkpointed resume -------------------------------------- *)

exception Crash

let test_resume_after_crash () =
  with_cache_dir "zodiac-test-stream-resume" (fun dir ->
      let cache = Cache.create ~dir () in
      let reference, _ = fold_stats ~shard_size:13 () in
      (* Crash after two shards have been counted and checkpointed. *)
      let calls = ref 0 in
      (try
         ignore
           (Shard_stream.fold ~cache ~stage:"t-kb" ~key:"t-kb"
              ~write:Kb.write_stats ~read:Kb.read_stats
              ~load:(fun ~lo ~hi -> slice lo hi)
              ~count:(fun ps ->
                incr calls;
                if !calls > 2 then raise Crash;
                Kb.stats_of_projects ps)
              ~merge:Kb.merge_stats ~init:(Kb.stats_of_projects [])
              ~total:corpus_n ~shard_size:13 ());
         Alcotest.fail "crash did not propagate"
       with Crash -> ());
      (* The rerun resumes the two finished shards and counts the rest. *)
      let resumed, outcome = fold_stats ~cache ~shard_size:13 () in
      Alcotest.(check int) "shards" 5 outcome.Shard_stream.shards;
      Alcotest.(check int) "resumed" 2 outcome.Shard_stream.resumed;
      Alcotest.(check int) "built" 3 outcome.Shard_stream.built;
      Alcotest.(check bool)
        "resumed fold ≡ uncached fold" true
        (String.equal (stats_bytes reference) (stats_bytes resumed));
      (* A second full run resumes everything. *)
      let warm, outcome = fold_stats ~cache ~shard_size:13 () in
      Alcotest.(check int) "all resumed" 5 outcome.Shard_stream.resumed;
      Alcotest.(check bool)
        "warm fold ≡ uncached fold" true
        (String.equal (stats_bytes reference) (stats_bytes warm)))

let test_corrupt_checkpoint_fallback () =
  with_cache_dir "zodiac-test-stream-corrupt" (fun dir ->
      let cache = Cache.create ~dir () in
      let reference, _ = fold_stats ~cache ~shard_size:20 () in
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let data = Bytes.of_string (really_input_string ic n) in
          close_in ic;
          let mid = n / 2 in
          Bytes.set data mid
            (Char.chr (Char.code (Bytes.get data mid) lxor 0xff));
          let oc = open_out_bin path in
          output_bytes oc data;
          close_out oc)
        (Sys.readdir dir);
      let rebuilt, outcome = fold_stats ~cache ~shard_size:20 () in
      Alcotest.(check int) "nothing resumed" 0 outcome.Shard_stream.resumed;
      Alcotest.(check int) "all rebuilt" 3 outcome.Shard_stream.built;
      Alcotest.(check bool)
        "rebuilt fold ≡ original" true
        (String.equal (stats_bytes reference) (stats_bytes rebuilt)))

(* ------------- Stage.streamed ------------------------------------------- *)

let streamed_stage ?(folds = ref 0) () =
  Stage.streamed ~name:"toy-stream" ~key:(Codec.fingerprint [ "toy-stream" ])
    ~artifact:
      {
        Stage.write = (fun b xs -> Codec.write_list Codec.write_int b xs);
        read = Codec.read_list Codec.read_int;
      }
    (fun ~cache:_ ~telemetry:_ ~jobs:_ ->
      incr folds;
      List.init 10 (fun i -> i * i))

let test_stage_streamed_warm () =
  with_cache_dir "zodiac-test-stream-stage" (fun dir ->
      let cache = Cache.create ~dir () in
      let folds = ref 0 in
      let source_of f =
        let t = Telemetry.create () in
        ignore (f t);
        match Telemetry.spans t with
        | [ s ] -> List.assoc_opt "source" s.Telemetry.notes
        | _ -> None
      in
      Alcotest.(check (option string))
        "no cache -> uncached" (Some "uncached")
        (source_of (fun telemetry ->
             Stage.run ~telemetry (streamed_stage ~folds ())));
      Alcotest.(check (option string))
        "first cached run -> streamed" (Some "streamed")
        (source_of (fun telemetry ->
             Stage.run ~cache ~telemetry (streamed_stage ~folds ())));
      Alcotest.(check (option string))
        "second cached run -> warm" (Some "warm")
        (source_of (fun telemetry ->
             Stage.run ~cache ~telemetry (streamed_stage ~folds ())));
      Alcotest.(check int) "warm run did not fold" 2 !folds)

(* ------------- bounded observation table -------------------------------- *)

(* Push one attribute past the cap and check that (a) the cap is
   enforced with an exact residue and enum inference stays off, and
   (b) stats are byte-identical whether counted whole or in slices —
   the grouping invariance the streamed KB fold relies on. *)
let test_observation_cap () =
  let n = Kb.max_observed_values + 150 in
  let mk i =
    Program.of_resources
      [
        Resource.make "SA" (Printf.sprintf "sa%05d" i)
          [ ("name", Value.Str (Printf.sprintf "sa%05d" i)) ];
      ]
  in
  let all = List.init n mk in
  let whole = Kb.stats_of_projects all in
  let halves =
    Kb.merge_stats
      (Kb.stats_of_projects (List.filteri (fun i _ -> i < n / 3) all))
      (Kb.stats_of_projects (List.filteri (fun i _ -> i >= n / 3) all))
  in
  Alcotest.(check bool)
    "capped stats grouping-invariant" true
    (String.equal (stats_bytes whole) (stats_bytes halves));
  match Kb.attr_info (Kb.finalize ~provider whole) ~rtype:"SA" ~attr:"name" with
  | None -> Alcotest.fail "SA.name missing"
  | Some info ->
      Alcotest.(check int)
        "kept entries at the cap" Kb.max_observed_values
        (List.length info.Kb.observed);
      Alcotest.(check int) "total counts whole corpus" n info.Kb.observed_total;
      Alcotest.(check (list bool))
        "capped attribute is not enum-like" []
        (List.map (fun _ -> true) info.Kb.enum_values)

(* ------------- peak RSS probe ------------------------------------------- *)

let test_rss_probe () =
  match Rss.peak_rss_kb () with
  | None -> () (* not a Linux /proc — probe reports None, nothing to check *)
  | Some kb ->
      Alcotest.(check bool) "peak is positive" true (kb > 0);
      ignore (Rss.reset_peak ());
      (match Rss.peak_rss_kb () with
      | Some kb' -> Alcotest.(check bool) "still readable" true (kb' > 0)
      | None -> Alcotest.fail "probe vanished after reset")

let () =
  Alcotest.run "stream"
    [
      ( "plan",
        [
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "shard keys" `Quick test_shard_key;
        ] );
      ( "invariance",
        [
          QCheck_alcotest.to_alcotest prop_shard_size_invariant;
          QCheck_alcotest.to_alcotest prop_tables_invariant;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "resume after crash" `Quick
            test_resume_after_crash;
          Alcotest.test_case "corrupt checkpoint fallback" `Quick
            test_corrupt_checkpoint_fallback;
        ] );
      ( "stage",
        [ Alcotest.test_case "streamed stage paths" `Quick
            test_stage_streamed_warm ] );
      ( "kb-cap",
        [ Alcotest.test_case "bounded observation table" `Quick
            test_observation_cap ] );
      ("rss", [ Alcotest.test_case "probe" `Quick test_rss_probe ]);
    ]
