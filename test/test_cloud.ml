(* Tests for the simulated Azure cloud: ground-truth rules, the
   deployment engine and its five phases, blast radius accounting. *)

module Rules = Zodiac_cloud.Rules
module Arm = Zodiac_cloud.Arm
module Defaults = Zodiac_cloud.Defaults
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program

let provider = Zodiac_azure.Azure.provider

let v_str s = Value.Str s

(* ---------------- rule set ------------------------------------------ *)

let test_rules_count () =
  Alcotest.(check bool) "200+ ground truth rules" true (List.length (provider.Zodiac_provider.Provider.ground_truth ()) >= 200)

let test_rules_unique_ids () =
  let ids = List.map (fun r -> r.Rules.rule_id) (provider.Zodiac_provider.Provider.ground_truth ()) in
  Alcotest.(check int) "unique" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_rules_phases_all_present () =
  let phases = List.map (fun r -> r.Rules.phase) (provider.Zodiac_provider.Provider.ground_truth ()) in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Rules.phase_to_string phase ^ " present")
        true (List.mem phase phases))
    [ Rules.Plugin; Rules.Pre_sync; Rules.Create; Rules.Polling; Rules.Post_sync ]

let test_rules_find () =
  let gt = provider.Zodiac_provider.Provider.ground_truth () in
  Alcotest.(check bool) "by id" true (Rules.find gt "VM-SPOT-EVICT" <> None);
  Alcotest.(check bool) "missing" true (Rules.find gt "NOPE" = None);
  Alcotest.(check bool) "per type" true (List.length (Rules.rules_for_type gt "VM") >= 30)

(* ---------------- building blocks ------------------------------------ *)

let vpc = Resource.make "VPC" "v"
    [ ("name", v_str "net"); ("location", v_str "eastus");
      ("address_space", Value.List [ v_str "10.0.0.0/16" ]) ]

let subnet ?(name = "default") ?(cidr = "10.0.1.0/24") rname =
  Resource.make "SUBNET" rname
    [ ("name", v_str name); ("vpc_name", Value.reference "VPC" "v" "name");
      ("cidr", v_str cidr) ]

let nic ?(loc = "eastus") rname =
  Resource.make "NIC" rname
    [ ("name", v_str ("nic-" ^ rname)); ("location", v_str loc);
      ("ip_config", Value.Block [
         ("name", v_str "cfg");
         ("subnet_id", Value.reference "SUBNET" "s" "id");
         ("private_ip_allocation", v_str "Dynamic") ]) ]

let vm rname nic_names =
  Resource.make "VM" rname
    [ ("name", v_str ("vm-" ^ rname)); ("location", v_str "eastus");
      ("sku", v_str "Standard_B2s");
      ("nic_ids", Value.List (List.map (fun n -> Value.reference "NIC" n "id") nic_names));
      ("os_disk", Value.Block [
         ("name", v_str ("osd-" ^ rname)); ("caching", v_str "ReadWrite");
         ("storage_type", v_str "Standard_LRS") ]);
      ("admin_username", v_str "azureuser");
      ("admin_password", v_str "secret-1");
      ( "source_image_ref",
        Value.Block
          [ ("publisher", v_str "Canonical"); ("offer", v_str "ubuntu");
            ("sku", v_str "22_04"); ("version", v_str "latest") ] ) ]

let base = [ vpc; subnet "s"; nic "n"; vm "m" [ "n" ] ]

let deploy resources = Arm.deploy ~provider (Program.of_resources resources)

let check_fails ?phase ?rule resources =
  let outcome = deploy resources in
  match Arm.first_error outcome with
  | None -> Alcotest.fail "expected deployment failure"
  | Some f ->
      Option.iter
        (fun expected ->
          Alcotest.(check string) "phase" (Rules.phase_to_string expected)
            (Rules.phase_to_string f.Arm.phase))
        phase;
      Option.iter (fun expected -> Alcotest.(check string) "rule" expected f.Arm.rule_id) rule;
      f

(* ---------------- defaults ------------------------------------------- *)

let test_defaults_lookup () =
  Alcotest.(check bool) "gw active_active default false" true
    (Defaults.lookup provider ~rtype:"GW" ~attr:"active_active" = Some (Value.Bool false));
  Alcotest.(check bool) "no default for name" true
    (Defaults.lookup provider ~rtype:"GW" ~attr:"name" = None)

let test_defaults_effective () =
  let ip = Resource.make "IP" "p" [ ("name", v_str "x") ] in
  let eff = Defaults.effective provider ip in
  Alcotest.(check bool) "sku default applied" true
    (Resource.get eff "sku" = v_str "Basic")

(* ---------------- deployment engine ---------------------------------- *)

let test_deploy_success () =
  let outcome = deploy base in
  Alcotest.(check bool) "succeeds" true (Arm.success outcome);
  Alcotest.(check int) "all deployed" 4 (List.length outcome.Arm.deployed)

let test_deploy_order () =
  let outcome = deploy base in
  let names = List.map Resource.id_to_string outcome.Arm.deployed in
  Alcotest.(check (list string)) "dependency order"
    [ "VPC.v"; "SUBNET.s"; "NIC.n"; "VM.m" ] names

let test_missing_required_fails_plugin () =
  let bad_nic = Resource.remove_attr (nic "n") "location" in
  ignore (check_fails ~phase:Rules.Plugin ~rule:"ENGINE-SCHEMA" [ vpc; subnet "s"; bad_nic ])

let test_invalid_enum_fails () =
  let bad = Resource.set (vm "m" [ "n" ]) "sku" (v_str "Standard_Z9") in
  ignore (check_fails ~phase:Rules.Plugin [ vpc; subnet "s"; nic "n"; bad ])

let test_invalid_region_fails () =
  let bad = Resource.set (nic "n") "location" (v_str "atlantis") in
  ignore (check_fails ~phase:Rules.Plugin [ vpc; subnet "s"; bad ])

let test_name_conflict_pre_sync () =
  (* two subnets with the same name in the same VPC *)
  let s1 = subnet ~name:"dup" ~cidr:"10.0.1.0/24" "s" in
  let s2 = subnet ~name:"dup" ~cidr:"10.0.2.0/24" "s2" in
  ignore (check_fails ~phase:Rules.Pre_sync ~rule:"ENGINE-EXISTS" [ vpc; s1; s2 ])

let test_name_scope_allows_cross_vpc () =
  (* same subnet name in different VPCs is fine *)
  let vpc2 =
    Resource.make "VPC" "v2"
      [ ("name", v_str "net2"); ("location", v_str "eastus");
        ("address_space", Value.List [ v_str "10.1.0.0/16" ]) ]
  in
  let s2 =
    Resource.make "SUBNET" "s2"
      [ ("name", v_str "default"); ("vpc_name", Value.reference "VPC" "v2" "name");
        ("cidr", v_str "10.1.1.0/24") ]
  in
  Alcotest.(check bool) "deploys" true (Arm.success (deploy [ vpc; subnet "s"; vpc2; s2 ]))

let test_dangling_ref_fails_create () =
  let orphan_nic =
    Resource.make "NIC" "n"
      [ ("name", v_str "x"); ("location", v_str "eastus");
        ("ip_config", Value.Block [
           ("name", v_str "c"); ("subnet_id", Value.reference "SUBNET" "ghost" "id");
           ("private_ip_allocation", v_str "Dynamic") ]) ]
  in
  ignore (check_fails ~phase:Rules.Create ~rule:"ENGINE-NOTFOUND" [ vpc; orphan_nic ])

let test_semantic_rule_create_phase () =
  let wrong_region = [ vpc; subnet "s"; nic ~loc:"westus" "n"; vm "m" [ "n" ] ] in
  ignore (check_fails ~phase:Rules.Create ~rule:"LOC-NIC-VPC" wrong_region)

let test_polling_phase_rule () =
  (* firewall subnet with delegation -> polling failure *)
  let fw_subnet =
    Resource.make "SUBNET" "s"
      [ ("name", v_str "AzureFirewallSubnet");
        ("vpc_name", Value.reference "VPC" "v" "name");
        ("cidr", v_str "10.0.9.0/24");
        ("delegation", Value.Block [ ("name", v_str "d"); ("service", v_str "Microsoft.Web/serverFarms") ]) ]
  in
  let ip =
    Resource.make "IP" "ip"
      [ ("name", v_str "fwip"); ("location", v_str "eastus");
        ("allocation", v_str "Static"); ("sku", v_str "Standard") ]
  in
  let fw =
    Resource.make "FW" "f"
      [ ("name", v_str "fw"); ("location", v_str "eastus");
        ("sku_name", v_str "AZFW_VNet"); ("sku_tier", v_str "Standard");
        ("ip_config", Value.Block [
           ("name", v_str "c");
           ("subnet_id", Value.reference "SUBNET" "s" "id");
           ("public_ip_id", Value.reference "IP" "ip" "id") ]) ]
  in
  ignore (check_fails ~phase:Rules.Polling ~rule:"FW-SUBNET-DELEG" [ vpc; fw_subnet; ip; fw ])

let test_post_sync_phase_rule () =
  (* subnet attached to two route tables: deploys but is inconsistent *)
  let rt name = Resource.make "RT" name [ ("name", v_str name); ("location", v_str "eastus") ] in
  let assoc name rt_name =
    Resource.make "RTASSOC" name
      [ ("subnet_id", Value.reference "SUBNET" "s" "id");
        ("rt_id", Value.reference "RT" rt_name "id") ]
  in
  let outcome = deploy [ vpc; subnet "s"; rt "r1"; rt "r2"; assoc "a1" "r1"; assoc "a2" "r2" ] in
  Alcotest.(check bool) "no halting failure" true (outcome.Arm.failure = None);
  Alcotest.(check bool) "post-sync issues found" true (outcome.Arm.post_sync_issues <> []);
  Alcotest.(check bool) "overall not success" false (Arm.success outcome)

let test_unattended_types_deploy () =
  let diag =
    Resource.make "MONITOR_DIAG" "d"
      [ ("name", v_str "diag"); ("target_resource_id", Value.reference "VPC" "v" "id") ]
  in
  Alcotest.(check bool) "unknown type ok" true (Arm.success (deploy [ vpc; diag ]))

let test_newly_introduced_violation_attribution () =
  (* a NIC intruding on a gateway subnet is blamed even though the
     violated check binds only GW and SUBNET *)
  let gw_subnet = subnet ~name:"GatewaySubnet" ~cidr:"10.0.8.0/24" "gs" in
  let ip =
    Resource.make "IP" "ip"
      [ ("name", v_str "gwip"); ("location", v_str "eastus");
        ("allocation", v_str "Static"); ("sku", v_str "Standard") ]
  in
  let gw =
    Resource.make "GW" "g"
      [ ("name", v_str "gw"); ("location", v_str "eastus");
        ("type", v_str "Vpn"); ("sku", v_str "VpnGw1");
        ("ip_config", Value.Block [
           ("name", v_str "c");
           ("public_ip_id", Value.reference "IP" "ip" "id");
           ("subnet_id", Value.reference "SUBNET" "gs" "id") ]) ]
  in
  let intruder =
    Resource.make "NIC" "bad"
      [ ("name", v_str "bad"); ("location", v_str "eastus");
        ("ip_config", Value.Block [
           ("name", v_str "c"); ("subnet_id", Value.reference "SUBNET" "gs" "id");
           ("private_ip_allocation", v_str "Dynamic") ]) ]
  in
  let f = check_fails [ vpc; gw_subnet; ip; gw; intruder ] in
  Alcotest.(check bool) "gateway-subnet rule fired" true
    (List.mem f.Arm.rule_id [ "GW-SUBNET-EXCL"; "GWSUBNET-ONLY-GW" ])

let test_sku_limit_rule () =
  let nics = [ "a"; "b"; "c" ] in
  let small = Resource.set (vm "m" nics) "sku" (v_str "Standard_B1s") in
  let resources = vpc :: subnet "s" :: List.map (fun n -> nic n) nics @ [ small ] in
  ignore (check_fails ~rule:"VM-NICS-Standard_B1s" resources)

let test_blast_radius () =
  (* subnet CIDR out of range: VPC deploys, subnet fails, NIC+VM halted *)
  let bad = [ vpc; subnet ~cidr:"192.168.0.0/24" "s"; nic "n"; vm "m" [ "n" ] ] in
  let outcome = deploy bad in
  let radius = Arm.blast_radius (Program.of_resources bad) outcome in
  Alcotest.(check bool) "halting radius includes NIC and VM" true
    (List.mem "NIC" radius.Arm.halted_types && List.mem "VM" radius.Arm.halted_types);
  Alcotest.(check bool) "rollback includes the subnet" true
    (List.mem "SUBNET" radius.Arm.rollback_types)

let test_blast_radius_empty_on_success () =
  let radius = Arm.blast_radius (Program.of_resources base) (deploy base) in
  Alcotest.(check int) "no halted" 0 (List.length radius.Arm.halted_types);
  Alcotest.(check int) "no rollback" 0 (List.length radius.Arm.rollback_types)

let test_deterministic_outcome () =
  let o1 = deploy base and o2 = deploy base in
  Alcotest.(check bool) "same outcome" true
    (o1.Arm.deployed = o2.Arm.deployed && o1.Arm.failure = o2.Arm.failure)

(* ---------------- quotas & regional skus (§6 extensions) ------------- *)

module Quota = Zodiac_cloud.Quota

let test_quota_off_by_default () =
  (* ten IPs deploy fine without a quota *)
  let ips =
    List.init 12 (fun i ->
        Resource.make "IP" (Printf.sprintf "ip%d" i)
          [ ("name", v_str (Printf.sprintf "pip%d" i)); ("location", v_str "eastus");
            ("allocation", v_str "Static"); ("sku", v_str "Standard") ])
  in
  Alcotest.(check bool) "unlimited" true (Arm.success (deploy ips))

let test_quota_per_type () =
  let ips =
    List.init 3 (fun i ->
        Resource.make "IP" (Printf.sprintf "ip%d" i)
          [ ("name", v_str (Printf.sprintf "pip%d" i)); ("location", v_str "eastus");
            ("allocation", v_str "Static"); ("sku", v_str "Standard") ])
  in
  let outcome = Arm.deploy ~provider ~quota:Quota.strict (Program.of_resources ips) in
  match Arm.first_error outcome with
  | Some f ->
      Alcotest.(check string) "quota error" "ENGINE-QUOTA" f.Arm.rule_id;
      Alcotest.(check int) "one created before the limit" 1
        (List.length outcome.Arm.deployed)
  | None -> Alcotest.fail "expected a quota failure"

let test_quota_total () =
  let sas =
    List.init 10 (fun i ->
        Resource.make "SA" (Printf.sprintf "sa%d" i)
          [ ("name", v_str (Printf.sprintf "acct%d" i)); ("location", v_str "eastus");
            ("tier", v_str "Standard"); ("replica", v_str "LRS") ])
  in
  let outcome = Arm.deploy ~provider ~quota:Quota.strict (Program.of_resources sas) in
  (match Arm.first_error outcome with
  | Some f -> Alcotest.(check string) "total quota" "ENGINE-QUOTA" f.Arm.rule_id
  | None -> Alcotest.fail "expected total-quota failure");
  Alcotest.(check int) "eight created" 8 (List.length outcome.Arm.deployed)

let test_regional_sku () =
  let gpu_vm region =
    [
      Resource.make "VPC" "v"
        [ ("name", v_str "net"); ("location", v_str region);
          ("address_space", Value.List [ v_str "10.0.0.0/16" ]) ];
      Resource.make "SUBNET" "s"
        [ ("name", v_str "default"); ("vpc_name", Value.reference "VPC" "v" "name");
          ("cidr", v_str "10.0.1.0/24") ];
      Resource.make "NIC" "n"
        [ ("name", v_str "nic"); ("location", v_str region);
          ("ip_config", Value.Block [
             ("name", v_str "c"); ("subnet_id", Value.reference "SUBNET" "s" "id");
             ("private_ip_allocation", v_str "Dynamic") ]) ];
      Resource.make "VM" "m"
        [ ("name", v_str "gpu"); ("location", v_str region);
          ("sku", v_str "Standard_NC6s_v3");
          ("nic_ids", Value.List [ Value.reference "NIC" "n" "id" ]);
          ("os_disk", Value.Block [
             ("name", v_str "osd"); ("caching", v_str "ReadWrite");
             ("storage_type", v_str "Premium_LRS") ]);
          ("admin_username", v_str "azureuser"); ("admin_password", v_str "pw-1");
          ( "source_image_ref",
            Value.Block
              [ ("publisher", v_str "Canonical"); ("offer", v_str "u");
                ("sku", v_str "22"); ("version", v_str "latest") ] ) ];
    ]
  in
  let quota = { Quota.unlimited with Quota.regional_skus = true } in
  let ok = Arm.deploy ~provider ~quota (Program.of_resources (gpu_vm "eastus")) in
  Alcotest.(check bool) "gpu in eastus ok" true (Arm.success ok);
  let bad = Arm.deploy ~provider ~quota (Program.of_resources (gpu_vm "ukwest")) in
  (match Arm.first_error bad with
  | Some f -> Alcotest.(check string) "regional sku" "ENGINE-REGION-SKU" f.Arm.rule_id
  | None -> Alcotest.fail "expected regional failure");
  (* same program deploys when enforcement is off (the paper's setting) *)
  Alcotest.(check bool) "off by default" true
    (Arm.success (deploy (gpu_vm "ukwest")))

let () =
  Alcotest.run "cloud"
    [
      ( "rules",
        [
          Alcotest.test_case "count" `Quick test_rules_count;
          Alcotest.test_case "unique ids" `Quick test_rules_unique_ids;
          Alcotest.test_case "all phases present" `Quick test_rules_phases_all_present;
          Alcotest.test_case "find" `Quick test_rules_find;
        ] );
      ( "defaults",
        [
          Alcotest.test_case "lookup" `Quick test_defaults_lookup;
          Alcotest.test_case "effective" `Quick test_defaults_effective;
        ] );
      ( "deploy",
        [
          Alcotest.test_case "success" `Quick test_deploy_success;
          Alcotest.test_case "dependency order" `Quick test_deploy_order;
          Alcotest.test_case "missing required -> plugin" `Quick test_missing_required_fails_plugin;
          Alcotest.test_case "invalid enum -> plugin" `Quick test_invalid_enum_fails;
          Alcotest.test_case "invalid region -> plugin" `Quick test_invalid_region_fails;
          Alcotest.test_case "name conflict -> pre-sync" `Quick test_name_conflict_pre_sync;
          Alcotest.test_case "name scoping" `Quick test_name_scope_allows_cross_vpc;
          Alcotest.test_case "dangling ref -> create" `Quick test_dangling_ref_fails_create;
          Alcotest.test_case "semantic rule -> create" `Quick test_semantic_rule_create_phase;
          Alcotest.test_case "polling phase" `Quick test_polling_phase_rule;
          Alcotest.test_case "post-sync phase" `Quick test_post_sync_phase_rule;
          Alcotest.test_case "unattended types" `Quick test_unattended_types_deploy;
          Alcotest.test_case "violation attribution" `Quick test_newly_introduced_violation_attribution;
          Alcotest.test_case "sku limits" `Quick test_sku_limit_rule;
          Alcotest.test_case "deterministic" `Quick test_deterministic_outcome;
        ] );
      ( "blast radius",
        [
          Alcotest.test_case "failure radius" `Quick test_blast_radius;
          Alcotest.test_case "success radius empty" `Quick test_blast_radius_empty_on_success;
        ] );
      ( "quota extensions",
        [
          Alcotest.test_case "off by default" `Quick test_quota_off_by_default;
          Alcotest.test_case "per-type quota" `Quick test_quota_per_type;
          Alcotest.test_case "total quota" `Quick test_quota_total;
          Alcotest.test_case "regional skus" `Quick test_regional_sku;
        ] );
    ]
