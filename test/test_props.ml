(* Cross-cutting property-based tests (qcheck): random programs and
   checks exercising the graph/evaluator/solver invariants. *)

module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Printer = Zodiac_spec.Spec_printer
module Parser = Zodiac_spec.Spec_parser
module Csp = Zodiac_solver.Csp
module Generator = Zodiac_corpus.Generator
module Prng = Zodiac_util.Prng

let provider = Zodiac_azure.Azure.provider

(* ------------- random program generator ------------------------------ *)

let gen_program =
  QCheck.Gen.(
    let* seed = int_bound 10_000 in
    let* n = int_range 2 10 in
    let rng = Prng.create seed in
    (* random resources of a tiny universe with random references *)
    let types = [| "A"; "B"; "C" |] in
    let resources =
      List.init n (fun i ->
          let ty = types.(Prng.int rng 3) in
          let name = Printf.sprintf "r%d" i in
          let attrs =
            [ ("name", Value.Str name); ("idx", Value.Int (Prng.int rng 5)) ]
            @
            (* reference an earlier resource half the time *)
            if i > 0 && Prng.bool rng then
              let j = Prng.int rng i in
              [ ("link", Value.reference types.(Prng.int rng 3) (Printf.sprintf "r%d" j) "id") ]
            else []
          in
          Resource.make ty name attrs)
    in
    return (Program.of_resources resources))

let program_arb = QCheck.make ~print:(fun p -> Format.asprintf "%a" Program.pp p) gen_program

(* ------------- graph invariants -------------------------------------- *)

let prop_degree_sum =
  QCheck.Test.make ~name:"sum of indegrees = sum of outdegrees = #edges" ~count:200
    program_arb (fun prog ->
      let g = Graph.build prog in
      let nodes = Graph.nodes g in
      let any = Graph.Not_type "\000impossible" in
      let in_sum = List.fold_left (fun acc v -> acc + Graph.indegree g v any) 0 nodes in
      let out_sum = List.fold_left (fun acc v -> acc + Graph.outdegree g v any) 0 nodes in
      let edges = List.length (Graph.edges g) in
      in_sum = edges && out_sum = edges)

let prop_edges_from_to_partition =
  QCheck.Test.make ~name:"every edge appears in exactly one edges_from and edges_to"
    ~count:200 program_arb (fun prog ->
      let g = Graph.build prog in
      List.for_all
        (fun (e : Graph.edge) ->
          List.memq e (Graph.edges_from g e.Graph.src)
          && List.memq e (Graph.edges_to g e.Graph.dst))
        (Graph.edges g))

let prop_reachability_transitive =
  QCheck.Test.make ~name:"reachable_from is transitively closed" ~count:100
    program_arb (fun prog ->
      let g = Graph.build prog in
      List.for_all
        (fun v ->
          let reach = Graph.reachable_from g v in
          List.for_all
            (fun w ->
              List.for_all
                (fun x ->
                  List.exists (Resource.equal_id x) reach)
                (Graph.reachable_from g w))
            reach)
        (Graph.nodes g))

let prop_topo_order_respects_edges =
  QCheck.Test.make ~name:"topological order puts referenced nodes first (DAGs)"
    ~count:200 program_arb (fun prog ->
      let g = Graph.build prog in
      (* our generator only references earlier resources: always a DAG *)
      let order = Graph.topological_order g in
      let pos v =
        let rec go i = function
          | [] -> max_int
          | x :: rest -> if Resource.equal_id x v then i else go (i + 1) rest
        in
        go 0 order
      in
      List.for_all (fun (e : Graph.edge) -> pos e.Graph.dst < pos e.Graph.src) (Graph.edges g))

(* ------------- evaluator invariants ---------------------------------- *)

let idx_check =
  Parser.parse_exn "let r:A in r.idx >= 0 => r.idx <= 4"

let prop_holds_iff_no_violations =
  QCheck.Test.make ~name:"holds <=> violations empty" ~count:200 program_arb
    (fun prog ->
      let g = Graph.build prog in
      Eval.holds g idx_check = (Eval.violations g idx_check = []))

let prop_first_violation_consistent =
  QCheck.Test.make ~name:"first_violation agrees with violations" ~count:200
    program_arb (fun prog ->
      let g = Graph.build prog in
      (Eval.first_violation g idx_check <> None)
      = (Eval.violations g idx_check <> []))

let prop_stats_consistent =
  QCheck.Test.make ~name:"stats: both <= cond <= instances" ~count:200 program_arb
    (fun prog ->
      let g = Graph.build prog in
      let s = Eval.stats g idx_check in
      s.Eval.both_true <= s.Eval.cond_true
      && s.Eval.cond_true <= s.Eval.instances
      && s.Eval.stmt_true <= s.Eval.instances)

let prop_violations_witnesses_disjoint =
  QCheck.Test.make ~name:"an assignment cannot be both witness-only and violation"
    ~count:100 program_arb (fun prog ->
      let g = Graph.build prog in
      (* a single-instance check: each assignment is one instance, so
         witness and violation sets are disjoint *)
      let v = Eval.violations g idx_check in
      let w = Eval.witnesses g idx_check in
      List.for_all (fun a -> not (List.mem a w)) v)

(* ------------- corpus/cloud property ---------------------------------- *)

let prop_conforming_projects_deploy =
  QCheck.Test.make ~name:"conforming generator output always deploys" ~count:20
    QCheck.(int_bound 100_000) (fun seed ->
      let projects = Generator.conforming ~provider ~seed ~count:5 () in
      List.for_all
        (fun p ->
          Zodiac_cloud.Arm.success (Zodiac_cloud.Arm.deploy ~provider p.Generator.program))
        projects)

(* ------------- solver properties -------------------------------------- *)

let prop_solver_solution_satisfies_hard =
  QCheck.Test.make ~name:"solver solutions satisfy all hard constraints" ~count:100
    QCheck.(pair (int_bound 1000) (int_range 2 6))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let p = Csp.create () in
      let dom = List.init 3 (fun i -> Value.Int i) in
      let vars = List.init n (fun i -> Csp.new_var p ~name:(string_of_int i) dom) in
      (* random binary difference constraints *)
      let cons = ref [] in
      List.iteri
        (fun i x ->
          List.iteri
            (fun j y ->
              if i < j && Prng.chance rng 0.4 then begin
                let pred l = l x <> l y in
                cons := pred :: !cons;
                Csp.add_hard p ~name:(Printf.sprintf "c%d%d" i j) [ x; y ] pred
              end)
            vars)
        vars;
      match Csp.solve p with
      | None -> true (* UNSAT is acceptable; soundness checked below *)
      | Some sol ->
          let lookup v = Csp.value sol v in
          List.for_all (fun pred -> pred lookup) !cons)

let prop_solver_cost_counts_soft =
  QCheck.Test.make ~name:"solution cost >= 10 * violated soft constraints" ~count:100
    QCheck.(int_bound 1000) (fun seed ->
      let rng = Prng.create seed in
      let p = Csp.create () in
      let dom = [ Value.Int 0; Value.Int 1 ] in
      let vars = List.init 4 (fun i -> Csp.new_var p ~name:(string_of_int i) dom) in
      List.iteri
        (fun i x ->
          if Prng.bool rng then begin
            let wanted = Value.Int (Prng.int rng 2) in
            Csp.add_soft p ~name:(Printf.sprintf "s%d" i) ~weight:10 [ x ]
              (fun l -> l x = wanted)
          end)
        vars;
      match Csp.solve p with
      | None -> false (* soft-only problems are always SAT *)
      | Some sol -> Csp.cost sol >= 10 * List.length (Csp.violated_soft sol))

let () =
  Alcotest.run "properties"
    [
      ( "graph",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_degree_sum; prop_edges_from_to_partition;
            prop_reachability_transitive; prop_topo_order_respects_edges;
          ] );
      ( "eval",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_holds_iff_no_violations; prop_first_violation_consistent;
            prop_stats_consistent; prop_violations_witnesses_disjoint;
          ] );
      ( "corpus",
        List.map QCheck_alcotest.to_alcotest [ prop_conforming_projects_deploy ] );
      ( "solver",
        List.map QCheck_alcotest.to_alcotest
          [ prop_solver_solution_satisfies_hard; prop_solver_cost_counts_soft ] );
    ]
