(* The deterministic domain pool: ordering, merge order, exception
   propagation, and the end-to-end jobs-independence contract of the
   pipeline (parallel output bit-identical to sequential). *)

module Parallel = Zodiac_util.Parallel
module Pipeline = Zodiac.Pipeline
module Scheduler = Zodiac_validation.Scheduler
module Kb = Zodiac_kb.Kb
module Check = Zodiac_spec.Check

let test_recommended_jobs () =
  Alcotest.(check bool) "at least one domain" true (Parallel.recommended_jobs () >= 1)

let test_map_ordering () =
  let xs = List.init 257 (fun i -> i) in
  let f x = (x * x) - (3 * x) in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map jobs=%d" jobs)
        expected
        (Parallel.map ~jobs f xs))
    [ 1; 2; 3; 4; 8; 300 ];
  Alcotest.(check (list int)) "empty input" [] (Parallel.map ~jobs:4 f [])

let test_mapi_indices () =
  let xs = List.init 100 (fun i -> 100 - i) in
  let f i x = (i, x) in
  Alcotest.(check (list (pair int int)))
    "indices are positions in the input, not in the chunk"
    (List.mapi f xs)
    (Parallel.mapi ~jobs:4 f xs)

let test_chunks_reassemble () =
  List.iter
    (fun (len, jobs) ->
      let xs = List.init len (fun i -> i) in
      let cs = Parallel.chunks ~jobs xs in
      Alcotest.(check (list int))
        (Printf.sprintf "concat of chunks len=%d jobs=%d" len jobs)
        xs (List.concat cs);
      Alcotest.(check bool) "no empty chunks" true (List.for_all (( <> ) []) cs))
    [ (0, 4); (1, 4); (3, 8); (8, 3); (100, 4); (5, 1) ]

let test_map_reduce_order () =
  (* string concatenation is order-sensitive: any merge reordering would
     show up immediately *)
  let xs = List.init 64 string_of_int in
  let expected = String.concat "," xs in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fold in input order, jobs=%d" jobs)
        expected
        (Parallel.map_reduce ~jobs ~map:Fun.id
           ~merge:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
           ~init:"" xs))
    [ 1; 2; 4; 7 ]

exception Boom of int

let test_exception_propagation () =
  let xs = List.init 40 (fun i -> i) in
  let f i = if i mod 10 = 3 then raise (Boom i) else i in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f xs with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
          Alcotest.(check int)
            (Printf.sprintf "lowest-index exception wins, jobs=%d" jobs)
            3 i)
    [ 1; 2; 4 ]

let test_workers_survive_after_exception () =
  (* the pool must be usable again after a failing run *)
  (try ignore (Parallel.map ~jobs:4 (fun _ -> raise Exit) [ 1; 2; 3 ])
   with Exit -> ());
  Alcotest.(check (list int)) "pool still works" [ 2; 4; 6 ]
    (Parallel.map ~jobs:4 (fun x -> 2 * x) [ 1; 2; 3 ])

(* qcheck: parallel map ≡ sequential map for arbitrary inputs and jobs *)
let prop_map_equals_sequential =
  QCheck.Test.make ~count:100 ~name:"Parallel.map ≡ List.map"
    QCheck.(pair (list small_int) (int_range 1 9))
    (fun (xs, jobs) ->
      let f x = Hashtbl.hash (x * 2654435761) in
      Parallel.map ~jobs f xs = List.map f xs)

let prop_map_reduce_equals_fold =
  QCheck.Test.make ~count:100 ~name:"map_reduce ≡ fold_left of map"
    QCheck.(pair (list small_int) (int_range 1 9))
    (fun (xs, jobs) ->
      let map x = [ x; x + 1 ] in
      let merge acc ys = acc @ ys in
      Parallel.map_reduce ~jobs ~map ~merge ~init:[] xs
      = List.fold_left merge [] (List.map map xs))

(* ---- end-to-end: pipeline output is independent of [jobs] ------------ *)

let run_pipeline jobs =
  Pipeline.run
    ~config:
      {
        Pipeline.quick_config with
        Pipeline.corpus_size = 150;
        jobs;
        scheduler =
          { Scheduler.default_config with Scheduler.max_iterations = 3 };
      }
    ()

let kb_summary kb =
  ( Kb.size kb,
    List.length (Kb.conn_kinds kb),
    List.length (Kb.types kb),
    List.map
      (fun (c : Kb.conn_kind) ->
        (c.Kb.src_type, c.Kb.src_attr, c.Kb.dst_type, c.Kb.dst_attr, c.Kb.count))
      (Kb.conn_kinds kb) )

let cids checks = List.map (fun (c : Check.t) -> c.Check.cid) checks

let test_pipeline_jobs_independent () =
  let a = run_pipeline 1 in
  let b = run_pipeline 4 in
  Alcotest.(check (list string))
    "identical final checks (order included)"
    (cids a.Pipeline.final_checks)
    (cids b.Pipeline.final_checks);
  Alcotest.(check (list string))
    "identical candidates"
    (cids a.Pipeline.candidates)
    (cids b.Pipeline.candidates);
  Alcotest.(check bool) "identical KB summary" true
    (kb_summary a.Pipeline.kb = kb_summary b.Pipeline.kb);
  Alcotest.(check int) "identical deployment counts"
    a.Pipeline.validation.Scheduler.deployments
    b.Pipeline.validation.Scheduler.deployments;
  Alcotest.(check bool) "identical iteration traces" true
    (a.Pipeline.validation.Scheduler.iterations
    = b.Pipeline.validation.Scheduler.iterations);
  Alcotest.(check bool) "identical engine stats" true
    (a.Pipeline.engine_stats = b.Pipeline.engine_stats)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs;
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
          Alcotest.test_case "chunks reassemble" `Quick test_chunks_reassemble;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "pool survives exceptions" `Quick
            test_workers_survive_after_exception;
          QCheck_alcotest.to_alcotest prop_map_equals_sequential;
          QCheck_alcotest.to_alcotest prop_map_reduce_equals_fold;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pipeline jobs=1 ≡ jobs=4" `Slow
            test_pipeline_jobs_independent;
        ] );
    ]
