(* Tests for the live-update planner/simulator. *)

module Update = Zodiac_cloud.Update
module Arm = Zodiac_cloud.Arm
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program

let provider = Zodiac_azure.Azure.provider

let current = Zodiac.Registry.compile_exn Zodiac.Registry.quickstart_vm

let vpc_id = { Resource.rtype = "VPC"; rname = "net" }
let subnet_id = { Resource.rtype = "SUBNET"; rname = "app" }
let nic_id = { Resource.rtype = "NIC"; rname = "nic" }
let vm_id = { Resource.rtype = "VM"; rname = "vm" }

let has_action actions pred = List.exists pred actions

let test_noop_plan () =
  let actions = Update.plan ~provider ~current ~desired:current in
  List.iter
    (fun a ->
      match a with
      | Update.Noop _ -> ()
      | _ -> Alcotest.fail "identical programs must be all noop")
    actions

let test_in_place_update () =
  let desired =
    Program.update current nic_id (fun r ->
        Resource.set r "accelerated_networking" (Value.Bool true))
  in
  let actions = Update.plan ~provider ~current ~desired in
  Alcotest.(check bool) "in-place on nic" true
    (has_action actions (function
      | Update.Update_in_place (id, [ "accelerated_networking" ]) ->
          Resource.equal_id id nic_id
      | _ -> false));
  Alcotest.(check bool) "no replacement" false
    (has_action actions (function Update.Replace _ -> true | _ -> false))

let test_immutable_forces_replace () =
  let desired =
    Program.update current vm_id (fun r ->
        Resource.set r "sku" (Value.Str "Standard_D2s_v3"))
  in
  let actions = Update.plan ~provider ~current ~desired in
  Alcotest.(check bool) "vm replaced" true
    (has_action actions (function
      | Update.Replace (id, _) -> Resource.equal_id id vm_id
      | _ -> false))

let test_replace_cascades_to_dependents () =
  let desired =
    Program.update current vpc_id (fun r ->
        Resource.set r "address_space" (Value.List [ Value.Str "10.99.0.0/16" ]))
  in
  let actions = Update.plan ~provider ~current ~desired in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Resource.id_to_string id ^ " replaced")
        true
        (has_action actions (function
          | Update.Replace (id', _) -> Resource.equal_id id id'
          | _ -> false)))
    [ vpc_id; subnet_id; nic_id; vm_id ]

let test_leaf_replace_does_not_cascade_down () =
  (* replacing the VM does not touch what it references *)
  let desired =
    Program.update current vm_id (fun r ->
        Resource.set r "sku" (Value.Str "Standard_D2s_v3"))
  in
  let actions = Update.plan ~provider ~current ~desired in
  Alcotest.(check bool) "vpc untouched" true
    (has_action actions (function
      | Update.Noop id -> Resource.equal_id id vpc_id
      | _ -> false))

let test_create_and_destroy () =
  let extra = Resource.make "SA" "logs"
      [ ("name", Value.Str "logsacct"); ("location", Value.Str "westeurope");
        ("tier", Value.Str "Standard"); ("replica", Value.Str "LRS") ]
  in
  let desired = Program.add (Program.remove current vm_id) extra in
  let actions = Update.plan ~provider ~current ~desired in
  Alcotest.(check bool) "create sa" true
    (has_action actions (function
      | Update.Create id -> Resource.equal_id id (Resource.id extra)
      | _ -> false));
  Alcotest.(check bool) "destroy vm" true
    (has_action actions (function
      | Update.Destroy id -> Resource.equal_id id vm_id
      | _ -> false))

let test_apply_clean_update () =
  let desired =
    Program.update current nic_id (fun r ->
        Resource.set r "accelerated_networking" (Value.Bool true))
  in
  let result = Update.apply ~provider ~current ~desired () in
  Alcotest.(check int) "no disruption" 0 (Update.disruption result);
  Alcotest.(check bool) "succeeds" true (Arm.success result.Update.outcome)

let test_apply_failing_update () =
  (* VPC address space changed, subnet range left stale *)
  let desired =
    Program.update current vpc_id (fun r ->
        Resource.set r "address_space" (Value.List [ Value.Str "10.99.0.0/16" ]))
  in
  let result = Update.apply ~provider ~current ~desired () in
  Alcotest.(check bool) "disruption includes cascade" true
    (Update.disruption result >= 4);
  (match Arm.first_error result.Update.outcome with
  | Some f -> Alcotest.(check string) "fails on stale subnet" "SUBNET-IN-VPC" f.Arm.rule_id
  | None -> Alcotest.fail "expected the mid-update failure")

let test_immutable_attr_table () =
  Alcotest.(check bool) "vpc address space immutable" true
    (List.mem "address_space" (Update.immutable_attrs provider "VPC"));
  Alcotest.(check bool) "names immutable everywhere" true
    (List.mem "name" (Update.immutable_attrs provider "WEBAPP"))

let () =
  Alcotest.run "update"
    [
      ( "plan",
        [
          Alcotest.test_case "noop" `Quick test_noop_plan;
          Alcotest.test_case "in-place" `Quick test_in_place_update;
          Alcotest.test_case "immutable forces replace" `Quick test_immutable_forces_replace;
          Alcotest.test_case "cascade to dependents" `Quick test_replace_cascades_to_dependents;
          Alcotest.test_case "no downward cascade" `Quick test_leaf_replace_does_not_cascade_down;
          Alcotest.test_case "create/destroy" `Quick test_create_and_destroy;
          Alcotest.test_case "immutable table" `Quick test_immutable_attr_table;
        ] );
      ( "apply",
        [
          Alcotest.test_case "clean update" `Quick test_apply_clean_update;
          Alcotest.test_case "failing update" `Quick test_apply_failing_update;
        ] );
    ]
