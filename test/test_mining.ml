(* Tests for the mining engine: templates, association statistics,
   statistical filtering. *)

module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Filter = Zodiac_mining.Filter
module Candidate = Zodiac_mining.Candidate
module Templates = Zodiac_mining.Templates
module Check = Zodiac_spec.Check
module Printer = Zodiac_spec.Spec_printer

let provider = Zodiac_azure.Azure.provider

let corpus =
  lazy
    (let projects = Generator.generate ~provider ~seed:101 ~count:500 () in
     Miner.materialize ~provider (List.map (fun p -> p.Generator.program) projects))

let kb = lazy (Kb.build ~provider ~projects:(Lazy.force corpus) ())

let mined = lazy (Miner.mine ~provider (Lazy.force kb) (Lazy.force corpus))

let find_check pattern =
  List.find_opt
    (fun (c : Candidate.t) ->
      let s = Printer.to_string c.Candidate.check in
      (* substring search *)
      let n = String.length pattern and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = pattern || go (i + 1)) in
      go 0)
    (Lazy.force mined)

(* ---------------- templates ------------------------------------------ *)

let test_template_catalogue () =
  Alcotest.(check bool) "25+ templates" true (Templates.count () >= 25);
  let ids = List.map (fun t -> t.Templates.template_id) Templates.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun family ->
      Alcotest.(check bool)
        (Templates.family_to_string family ^ " non-empty")
        true
        (Templates.by_family family <> []))
    [
      Templates.F_intra; Templates.F_intra_indexed; Templates.F_inter;
      Templates.F_inter_agg; Templates.F_interpolation;
    ]

(* ---------------- mining --------------------------------------------- *)

let test_mining_volume () =
  let n = List.length (Lazy.force mined) in
  Alcotest.(check bool) "thousands of hypotheses" true (n > 2000)

let test_mining_statistics_sane () =
  List.iter
    (fun (c : Candidate.t) ->
      Alcotest.(check bool) "support positive" true (c.Candidate.support > 0);
      Alcotest.(check bool) "confidence in [0,1]" true
        (c.Candidate.confidence >= 0.0 && c.Candidate.confidence <= 1.0001);
      Alcotest.(check bool) "lift nonneg" true (c.Candidate.lift >= 0.0))
    (Lazy.force mined)

let test_mining_dedup () =
  let cids = List.map (fun c -> c.Candidate.check.Check.cid) (Lazy.force mined) in
  Alcotest.(check int) "no duplicate checks" (List.length cids)
    (List.length (List.sort_uniq compare cids))

let test_finds_spot_evict () =
  match find_check "r.priority == 'Spot' => r.evict_policy != null" with
  | Some c ->
      Alcotest.(check bool) "high confidence" true (c.Candidate.confidence > 0.9)
  | None -> Alcotest.fail "VM spot/evict check not mined"

let test_finds_location_consistency () =
  Alcotest.(check bool) "VM/NIC location mined" true
    (find_check "conn(r1.nic_ids -> r2.id) => r1.location == r2.location" <> None)

let test_finds_path_location () =
  (* NIC and VPC are two hops apart; only the path family can see it *)
  match find_check "path(r1 -> r2) => r1.location == r2.location" with
  | Some c ->
      Alcotest.(check string) "template" "PATH-ATTR-EQ" c.Candidate.template_id
  | None -> Alcotest.fail "path-based location agreement not mined" 

let test_finds_reserved_subnet () =
  Alcotest.(check bool) "firewall subnet name mined" true
    (find_check "=> r2.name == 'AzureFirewallSubnet'" <> None)

let test_finds_sibling_overlap () =
  Alcotest.(check bool) "subnet overlap mined" true
    (find_check "!overlap(r1.cidr, r2.cidr)" <> None)

let test_finds_degree_template () =
  Alcotest.(check bool) "outdegree template mined" true
    (List.exists
       (fun (c : Candidate.t) -> c.Candidate.template_id = "CONN-OUTDEG-ONE")
       (Lazy.force mined))

let test_interpolation_candidates_flagged () =
  let interp =
    List.filter (fun c -> c.Candidate.needs_interpolation) (Lazy.force mined)
  in
  Alcotest.(check bool) "interpolation queue non-empty" true (interp <> []);
  List.iter
    (fun (c : Candidate.t) ->
      match Check.category c.Candidate.check with
      | Check.Intra | Check.Inter_agg | Check.Interpolated | Check.Inter_no_agg -> ())
    interp

(* ---------------- KB ablation (Figure 7a) ---------------------------- *)

let test_kb_reduces_candidates () =
  let with_kb = Miner.intra_counts_by_type ~provider ~use_kb:true (Lazy.force kb) (Lazy.force corpus) in
  let without_kb =
    Miner.intra_counts_by_type ~provider ~use_kb:false (Lazy.force kb) (Lazy.force corpus)
  in
  let total counts = List.fold_left (fun acc (_, _, n) -> acc + n) 0 counts in
  let w = total with_kb and wo = total without_kb in
  Alcotest.(check bool) "both non-trivial" true (w > 50 && wo > w);
  Alcotest.(check bool)
    (Printf.sprintf "KB reduces by >3x (%d vs %d)" w wo)
    true
    (wo > 3 * w)

(* ---------------- filtering (Figure 7b) ------------------------------ *)

let test_filter_partitions () =
  let all = Lazy.force mined in
  let o = Filter.run all in
  Alcotest.(check int) "partition complete"
    (List.length all)
    (List.length o.Filter.kept
    + List.length o.Filter.removed_confidence
    + List.length o.Filter.removed_lift
    + List.length o.Filter.interpolation_queue);
  Alcotest.(check bool) "confidence removals exist" true
    (o.Filter.removed_confidence <> []);
  Alcotest.(check bool) "lift removals exist" true (o.Filter.removed_lift <> []);
  List.iter
    (fun (c : Candidate.t) ->
      Alcotest.(check bool) "kept pass confidence" true (c.Candidate.confidence >= 0.95);
      Alcotest.(check bool) "kept pass lift" true (c.Candidate.lift >= 1.10))
    o.Filter.kept

let test_filter_thresholds () =
  let o =
    Filter.run ~thresholds:{ Filter.min_confidence = 0.0; min_lift = 0.0 }
      (Lazy.force mined)
  in
  Alcotest.(check int) "nothing removed at zero thresholds" 0
    (List.length o.Filter.removed_confidence + List.length o.Filter.removed_lift)

let test_injected_noise_lowers_confidence () =
  (* violations in the corpus should leave some checks below perfect
     confidence *)
  let below =
    List.filter (fun (c : Candidate.t) -> c.Candidate.confidence < 1.0) (Lazy.force mined)
  in
  Alcotest.(check bool) "noise visible" true (below <> [])

let () =
  Alcotest.run "mining"
    [
      ("templates", [ Alcotest.test_case "catalogue" `Quick test_template_catalogue ]);
      ( "miner",
        [
          Alcotest.test_case "volume" `Slow test_mining_volume;
          Alcotest.test_case "statistics sane" `Slow test_mining_statistics_sane;
          Alcotest.test_case "dedup" `Slow test_mining_dedup;
          Alcotest.test_case "finds spot/evict" `Slow test_finds_spot_evict;
          Alcotest.test_case "finds location rule" `Slow test_finds_location_consistency;
          Alcotest.test_case "finds path location rule" `Slow test_finds_path_location;
          Alcotest.test_case "finds reserved subnet" `Slow test_finds_reserved_subnet;
          Alcotest.test_case "finds sibling overlap" `Slow test_finds_sibling_overlap;
          Alcotest.test_case "finds degree template" `Slow test_finds_degree_template;
          Alcotest.test_case "interpolation flagged" `Slow test_interpolation_candidates_flagged;
        ] );
      ( "kb ablation",
        [ Alcotest.test_case "kb reduces candidates" `Slow test_kb_reduces_candidates ] );
      ( "filter",
        [
          Alcotest.test_case "partitions" `Slow test_filter_partitions;
          Alcotest.test_case "thresholds" `Slow test_filter_thresholds;
          Alcotest.test_case "noise lowers confidence" `Slow test_injected_noise_lowers_confidence;
        ] );
    ]
