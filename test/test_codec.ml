(* Codec and warm-start cache tests: exact round-trips (qcheck over the
   primitives and real pipeline artifacts), the KB stats monoid/delta
   property, corruption and stale-version fallback, and cold-vs-warm
   pipeline equality. *)

module Codec = Zodiac_util.Codec
module Cache = Zodiac_util.Cache
module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Candidate = Zodiac_mining.Candidate
module Check = Zodiac_spec.Check
module Pipeline = Zodiac.Pipeline

let roundtrip write read v =
  let b = Codec.sink () in
  write b v;
  read (Codec.src_of_string (Codec.contents b))

let bytes_of write v =
  let b = Codec.sink () in
  write b v;
  Codec.contents b

(* ------------- primitive round-trips (qcheck) ------------------------- *)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"int round-trips" ~count:500
    QCheck.(
      frequency
        [
          (4, int); (1, small_signed_int);
          (1, oneofl [ min_int; max_int; 0; -1; 1; min_int + 1; max_int - 1 ]);
        ])
    (fun i -> roundtrip Codec.write_int Codec.read_int i = i)

let prop_float_roundtrip =
  QCheck.Test.make ~name:"float round-trips bit-exactly" ~count:500
    QCheck.(
      frequency
        [ (4, float); (1, oneofl [ 0.0; -0.0; infinity; neg_infinity; nan ]) ])
    (fun f ->
      Int64.equal
        (Int64.bits_of_float (roundtrip Codec.write_float Codec.read_float f))
        (Int64.bits_of_float f))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string round-trips" ~count:300 QCheck.string (fun s ->
      String.equal (roundtrip Codec.write_string Codec.read_string s) s)

let prop_list_option_roundtrip =
  QCheck.Test.make ~name:"int option list round-trips" ~count:300
    QCheck.(list (option int))
    (fun xs ->
      roundtrip
        (Codec.write_list (Codec.write_option Codec.write_int))
        (Codec.read_list (Codec.read_option Codec.read_int))
        xs
      = xs)

let prop_table_canonical =
  QCheck.Test.make ~name:"tables serialize insertion-order independently"
    ~count:100
    QCheck.(list (pair small_string int))
    (fun rows ->
      (* same bindings, opposite insertion orders *)
      let mk rows =
        let t = Hashtbl.create 16 in
        List.iter (fun (k, v) -> Hashtbl.replace t k v) rows;
        t
      in
      let fwd = mk rows and bwd = mk (List.rev rows) in
      (* replace semantics: last binding wins in fwd, first in bwd, so
         only compare when the keys are distinct *)
      let distinct =
        List.length rows
        = List.length (List.sort_uniq compare (List.map fst rows))
      in
      QCheck.assume distinct;
      String.equal
        (bytes_of (Codec.write_table Codec.write_string Codec.write_int) fwd)
        (bytes_of (Codec.write_table Codec.write_string Codec.write_int) bwd))

(* ------------- artifact round-trips ----------------------------------- *)

let provider = Zodiac_azure.Azure.provider
let projects = Generator.generate ~provider ~seed:7 ~count:12 ()

let test_project_roundtrip () =
  let decoded =
    roundtrip
      (Codec.write_list Generator.write_project)
      (Codec.read_list Generator.read_project)
      projects
  in
  Alcotest.(check int)
    "count" (List.length projects) (List.length decoded);
  List.iter2
    (fun (p : Generator.project) (q : Generator.project) ->
      Alcotest.(check string) "pname" p.Generator.pname q.Generator.pname;
      Alcotest.(check string) "scenario" p.Generator.scenario q.Generator.scenario;
      Alcotest.(check (list string)) "injected" p.Generator.injected q.Generator.injected)
    projects decoded;
  (* write o read o write = write: the serialized form is a fixed point *)
  Alcotest.(check bool)
    "bytes stable" true
    (String.equal
       (bytes_of (Codec.write_list Generator.write_project) projects)
       (bytes_of (Codec.write_list Generator.write_project) decoded))

let programs =
  Miner.materialize ~provider (List.map (fun p -> p.Generator.program) projects)

let test_kb_stats_roundtrip_and_monoid () =
  let full = Kb.stats_of_projects programs in
  let k = List.length programs / 2 in
  let prefix = List.filteri (fun i _ -> i < k) programs in
  let tail = List.filteri (fun i _ -> i >= k) programs in
  let merged =
    Kb.merge_stats (Kb.stats_of_projects prefix) (Kb.stats_of_projects tail)
  in
  Alcotest.(check bool)
    "merge of prefix+delta serializes identically to full" true
    (String.equal (bytes_of Kb.write_stats merged) (bytes_of Kb.write_stats full));
  let decoded = roundtrip Kb.write_stats Kb.read_stats full in
  Alcotest.(check bool)
    "stats round-trip bytes" true
    (String.equal (bytes_of Kb.write_stats decoded) (bytes_of Kb.write_stats full));
  let kb_full = Kb.finalize ~provider full and kb_dec = Kb.finalize ~provider decoded in
  Alcotest.(check int) "kb size" (Kb.size kb_full) (Kb.size kb_dec);
  Alcotest.(check (list string)) "kb types" (Kb.types kb_full) (Kb.types kb_dec);
  Alcotest.(check int)
    "conn kinds"
    (List.length (Kb.conn_kinds kb_full))
    (List.length (Kb.conn_kinds kb_dec))

let test_candidate_roundtrip () =
  let kb = Kb.build ~provider ~projects:programs () in
  let mined = Miner.mine ~provider kb programs in
  Alcotest.(check bool) "mined something" true (mined <> []);
  List.iter
    (fun (c : Candidate.t) ->
      let d = roundtrip Candidate.write Candidate.read c in
      Alcotest.(check string) "cid" c.Candidate.check.Check.cid d.Candidate.check.Check.cid;
      Alcotest.(check string) "template" c.Candidate.template_id d.Candidate.template_id;
      Alcotest.(check int) "support" c.Candidate.support d.Candidate.support;
      Alcotest.(check bool)
        "confidence bits" true
        (Int64.equal
           (Int64.bits_of_float c.Candidate.confidence)
           (Int64.bits_of_float d.Candidate.confidence));
      Alcotest.(check bool)
        "lift bits" true
        (Int64.equal
           (Int64.bits_of_float c.Candidate.lift)
           (Int64.bits_of_float d.Candidate.lift));
      Alcotest.(check bool)
        "needs_interpolation" c.Candidate.needs_interpolation
        d.Candidate.needs_interpolation;
      Alcotest.(check bool)
        "check bytes" true
        (String.equal (bytes_of Check.write c.Candidate.check)
           (bytes_of Check.write d.Candidate.check)))
    mined

(* ------------- envelope invalidation ---------------------------------- *)

let test_envelope () =
  let sealed = Codec.encode ~stage:"t" (fun b -> Codec.write_int b 42) in
  (match Codec.decode ~stage:"t" sealed Codec.read_int with
  | Ok v -> Alcotest.(check int) "decodes" 42 v
  | Error e -> Alcotest.failf "decode failed: %s" e);
  Alcotest.(check bool)
    "stage mismatch rejected" true
    (Result.is_error (Codec.decode ~stage:"other" sealed Codec.read_int));
  (* corrupt one payload byte: the checksum must catch it *)
  let corrupt = Bytes.of_string sealed in
  let mid = Bytes.length corrupt / 2 in
  Bytes.set corrupt mid
    (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x01));
  Alcotest.(check bool)
    "corruption rejected" true
    (Result.is_error
       (Codec.decode ~stage:"t" (Bytes.to_string corrupt) Codec.read_int));
  (* a stale codec version (byte 4, right after the 4-byte magic) must
     be rejected even with an intact payload *)
  let stale = Bytes.of_string sealed in
  Bytes.set stale 4 (Char.chr (Char.code (Bytes.get stale 4) lxor 0x7f));
  Alcotest.(check bool)
    "stale version rejected" true
    (Result.is_error
       (Codec.decode ~stage:"t" (Bytes.to_string stale) Codec.read_int))

(* ------------- cache store ------------------------------------------- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_tmp_cache name f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_cache_store () =
  with_tmp_cache "zodiac-test-cache" (fun dir ->
      let c = Cache.create ~dir () in
      Alcotest.(check (option int))
        "empty cache misses" None
        (Cache.find c ~stage:"s" ~key:"k" Codec.read_int);
      Cache.store c ~stage:"s" ~key:"k" (fun b -> Codec.write_int b 7);
      Alcotest.(check (option int))
        "store then find" (Some 7)
        (Cache.find c ~stage:"s" ~key:"k" Codec.read_int);
      Cache.store c ~stage:"s" ~key:"k" ~size:10 (fun b -> Codec.write_int b 10);
      Cache.store c ~stage:"s" ~key:"k" ~size:3 (fun b -> Codec.write_int b 3);
      Alcotest.(check (list int))
        "sizes sorted" [ 3; 10 ]
        (Cache.sizes c ~stage:"s" ~key:"k");
      Alcotest.(check (option int))
        "sized entry" (Some 3)
        (Cache.find c ~stage:"s" ~key:"k" ~size:3 Codec.read_int);
      let s = Cache.stats c in
      Alcotest.(check int) "writes counted" 3 s.Cache.writes;
      (* corrupt every file on disk: every find must degrade to a miss *)
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let data = Bytes.of_string (really_input_string ic n) in
          close_in ic;
          Bytes.set data (n / 2)
            (Char.chr (Char.code (Bytes.get data (n / 2)) lxor 0xff));
          let oc = open_out_bin path in
          output_bytes oc data;
          close_out oc)
        (Sys.readdir dir);
      Alcotest.(check (option int))
        "corrupt entry is a miss" None
        (Cache.find c ~stage:"s" ~key:"k" Codec.read_int))

(* ------------- cold vs warm pipeline ---------------------------------- *)

let test_pipeline_warm_equals_cold () =
  with_tmp_cache "zodiac-test-warm" (fun dir ->
      let config =
        {
          Pipeline.default_config with
          Pipeline.corpus_size = 60;
          cache_dir = Some dir;
        }
      in
      let cids (a : Pipeline.artifacts) =
        List.map (fun (c : Check.t) -> c.Check.cid) a.Pipeline.candidates
      in
      let corpus_bytes (a : Pipeline.artifacts) =
        bytes_of (Codec.write_list Generator.write_project) a.Pipeline.projects
      in
      let cold = Pipeline.mine_only ~config () in
      let warm = Pipeline.mine_only ~config () in
      Alcotest.(check (list string)) "candidate cids" (cids cold) (cids warm);
      Alcotest.(check int)
        "mined count"
        (List.length cold.Pipeline.mined)
        (List.length warm.Pipeline.mined);
      Alcotest.(check int) "kb size" (Kb.size cold.Pipeline.kb) (Kb.size warm.Pipeline.kb);
      Alcotest.(check bool)
        "corpus bytes identical" true
        (String.equal (corpus_bytes cold) (corpus_bytes warm));
      Alcotest.(check bool)
        "warm run hit the cache" true
        (warm.Pipeline.cache_stats.Cache.hits > 0);
      Alcotest.(check int)
        "warm run never missed" 0 warm.Pipeline.cache_stats.Cache.misses;
      (* growing the corpus must extend the cached prefix and still match
         a cold run at the larger size *)
      let grown = { config with Pipeline.corpus_size = 75 } in
      let inc = Pipeline.mine_only ~config:grown () in
      let cold75 =
        Pipeline.mine_only ~config:{ grown with Pipeline.cache_dir = None } ()
      in
      Alcotest.(check (list string))
        "incremental candidate cids" (cids cold75) (cids inc);
      Alcotest.(check bool)
        "incremental corpus bytes identical" true
        (String.equal (corpus_bytes cold75) (corpus_bytes inc)))

let () =
  Alcotest.run "codec"
    [
      ( "primitives",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_int_roundtrip; prop_float_roundtrip; prop_string_roundtrip;
            prop_list_option_roundtrip; prop_table_canonical;
          ] );
      ( "artifacts",
        [
          Alcotest.test_case "corpus projects round-trip" `Quick
            test_project_roundtrip;
          Alcotest.test_case "kb stats round-trip + monoid" `Quick
            test_kb_stats_roundtrip_and_monoid;
          Alcotest.test_case "mined candidates round-trip" `Quick
            test_candidate_roundtrip;
        ] );
      ( "envelope",
        [ Alcotest.test_case "seal, corrupt, stale version" `Quick test_envelope ] );
      ( "cache",
        [ Alcotest.test_case "store/find/sizes/corrupt" `Quick test_cache_store ] );
      ( "pipeline",
        [
          Alcotest.test_case "cold = warm = incremental" `Slow
            test_pipeline_warm_equals_cold;
        ] );
    ]
