(* Tests for the simulated LLM oracle: prompt construction and
   interpolation. *)

module Llm = Zodiac_oracle.Llm
module Prompt = Zodiac_oracle.Prompt
module Candidate = Zodiac_mining.Candidate
module Check = Zodiac_spec.Check
module Parser = Zodiac_spec.Spec_parser
module Printer = Zodiac_spec.Spec_printer
module Value = Zodiac_iac.Value

let candidate src =
  Candidate.make ~needs_interpolation:true ~template_id:"TEST" ~support:10
    ~confidence:1.0 ~lift:1.0 (Parser.parse_exn src)

let provider = Zodiac_azure.Azure.provider
let perfect () = Llm.create ~provider ~error_rate:0.0 1

let test_prompt_of_check () =
  match Prompt.of_check (Parser.parse_exn "let r:VM in r.sku == 'Standard_F2s_v2' => indegree(r, NIC) <= 1") with
  | Some q ->
      Alcotest.(check string) "subject" "VM" q.Prompt.subject_type;
      Alcotest.(check string) "attr" "sku" q.Prompt.cond_attr;
      let text = Prompt.few_shot q in
      Alcotest.(check bool) "few-shot examples present" true
        (String.length text > 200)
  | None -> Alcotest.fail "query extraction failed"

let test_prompt_not_applicable () =
  Alcotest.(check bool) "non-quantitative rejected" true
    (Prompt.of_check (Parser.parse_exn "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'")
    = None)

let refined_bound check =
  match check.Check.stmt with
  | Check.Cmp (_, _, Check.Const (Value.Int i)) -> i
  | _ -> Alcotest.fail "unexpected statement shape"

let test_interpolate_vm_nics () =
  (* mined witness says <= 1, documentation says 2 *)
  let c = candidate "let r:VM in r.sku == 'Standard_F2s_v2' => indegree(r, NIC) <= 1" in
  match Llm.interpolate (perfect ()) c with
  | Llm.Refined check ->
      Alcotest.(check int) "documented bound" 2 (refined_bound check);
      Alcotest.(check bool) "provenance" true
        (check.Check.source = Check.Llm_interpolated)
  | Llm.Unsupported -> Alcotest.fail "should be documented"

let test_interpolate_gw_tunnels () =
  let c = candidate "let g:GW in g.sku == 'Basic' => outdegree(g, TUNNEL) <= 3" in
  match Llm.interpolate (perfect ()) c with
  | Llm.Refined check -> Alcotest.(check int) "documented bound" 10 (refined_bound check)
  | Llm.Unsupported -> Alcotest.fail "should be documented"

let test_interpolate_kv_retention () =
  let c = candidate "let k:KV in k.soft_delete_retention_days != null => k.soft_delete_retention_days >= 30" in
  match Llm.interpolate (perfect ()) c with
  | Llm.Refined check -> Alcotest.(check int) "documented min" 7 (refined_bound check)
  | Llm.Unsupported -> Alcotest.fail "should be documented"

let test_interpolate_undocumented () =
  let c = candidate "let r:VPC in r.encryption_enabled == false => outdegree(r, SUBNET) <= 5" in
  match Llm.interpolate (perfect ()) c with
  | Llm.Unsupported -> ()
  | Llm.Refined check ->
      Alcotest.failf "fabricated a limit: %s" (Printer.to_string check)

let test_hallucination_rate () =
  (* with error_rate 1.0, the oracle always misbehaves *)
  let oracle = Llm.create ~provider ~error_rate:1.0 7 in
  let c = candidate "let r:VM in r.sku == 'Standard_F2s_v2' => indegree(r, NIC) <= 1" in
  (match Llm.interpolate oracle c with
  | Llm.Refined check ->
      Alcotest.(check bool) "perturbed bound" true (refined_bound check <> 2)
  | Llm.Unsupported -> ());
  Alcotest.(check bool) "queries counted" true (Llm.queries_made oracle > 0)

let test_assess_separates () =
  let oracle = perfect () in
  let plausible =
    candidate "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'"
  in
  let junk =
    candidate "let r:VM in r.custom_data != null => r.user_data != null"
  in
  Alcotest.(check bool) "real constraint assessed true" true
    (Llm.assess oracle { plausible with Candidate.needs_interpolation = false });
  Alcotest.(check bool) "junk assessed false" false
    (Llm.assess oracle { junk with Candidate.needs_interpolation = false })

let test_deterministic_given_seed () =
  let run () =
    let oracle = Llm.create ~provider ~error_rate:0.3 5 in
    List.map
      (fun src ->
        match Llm.interpolate oracle (candidate src) with
        | Llm.Refined c -> Printer.to_string c
        | Llm.Unsupported -> "unsupported")
      [
        "let r:VM in r.sku == 'Standard_B2s' => indegree(r, NIC) <= 1";
        "let g:GW in g.sku == 'VpnGw1' => outdegree(g, TUNNEL) <= 2";
        "let r:REDIS in r.family == 'C' => r.capacity <= 4";
      ]
  in
  Alcotest.(check (list string)) "reproducible" (run ()) (run ())

let () =
  Alcotest.run "oracle"
    [
      ( "prompt",
        [
          Alcotest.test_case "query extraction" `Quick test_prompt_of_check;
          Alcotest.test_case "non-applicable" `Quick test_prompt_not_applicable;
        ] );
      ( "interpolation",
        [
          Alcotest.test_case "vm nic limit" `Quick test_interpolate_vm_nics;
          Alcotest.test_case "gw tunnel limit" `Quick test_interpolate_gw_tunnels;
          Alcotest.test_case "kv retention" `Quick test_interpolate_kv_retention;
          Alcotest.test_case "undocumented rejected" `Quick test_interpolate_undocumented;
          Alcotest.test_case "hallucination" `Quick test_hallucination_rate;
          Alcotest.test_case "assessment" `Quick test_assess_separates;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
        ] );
    ]
