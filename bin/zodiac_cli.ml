(* The zodiac command-line tool.

   Subcommands:
     zodiac mine      — run the mining phase and print the funnel + checks
     zodiac validate  — run the full pipeline (mining + validation)
     zodiac scan FILE — check an HCL file against the ground-truth ruleset
     zodiac deploy FILE — simulate deployment of an HCL file
     zodiac plan FILE — compile an HCL file to Terraform-style plan JSON
     zodiac graph FILE — resource graph in Graphviz DOT
     zodiac corpus    — generate a synthetic corpus and print statistics
     zodiac rules     — list the simulated cloud's ground-truth rules
     zodiac export    — render validated checks as insights / RAG KB / policies
     zodiac serve     — resident check-as-a-service daemon (JSON-line protocol) *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable verbose logging.")

(* --provider azure|aws: unknown names are a usage error (clean exit,
   no backtrace), listing what the binary actually links. *)
let provider_conv =
  let parse s =
    match Zodiac_providers.Providers.find s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown provider %S (expected one of: %s)" s
                (String.concat ", " Zodiac_providers.Providers.names)))
  in
  let print ppf (p : Zodiac_provider.Provider.t) =
    Format.pp_print_string ppf p.Zodiac_provider.Provider.name
  in
  Arg.conv (parse, print)

let provider_arg =
  Arg.(
    value
    & opt provider_conv Zodiac_providers.Providers.default
    & info [ "provider" ] ~docv:"PROVIDER"
        ~doc:
          "Cloud backend to run against (its schemas, corpus scenarios, \
           ground-truth rules and documentation tables): azure (default) \
           or aws.")

let seed_arg =
  Arg.(
    value
    & opt int 20240704
    & info [ "seed" ] ~docv:"SEED" ~doc:"Corpus generation seed.")

let size_arg default =
  Arg.(
    value
    & opt int default
    & info [ "projects" ] ~docv:"N" ~doc:"Number of synthetic projects.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains used for the parallel phases (corpus generation, KB \
           build, mining, validation batches). 0 means the recommended \
           domain count. Results are bit-identical for every value.")

let resolve_jobs jobs =
  if jobs <= 0 then Zodiac_util.Parallel.recommended_jobs () else jobs

let cache_dir_arg =
  Arg.(
    value
    & opt string Zodiac_util.Cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Warm-start cache directory. Cold runs write corpus, \
           knowledge-base and mined-candidate artifacts there; warm runs \
           with the same parameters load them (byte-identical results), \
           and growing --projects extends the cached corpus \
           incrementally.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the warm-start cache: always rebuild from scratch.")

(* --cache-dir DIR + --no-cache combined into the config's cache_dir *)
let cache_term =
  Term.(
    const (fun dir no_cache -> if no_cache then None else Some dir)
    $ cache_dir_arg $ no_cache_arg)

let config_of ?(fault_rate = 0.0) ?(fault_seed = 7) ?(jobs = 0) ?cache_dir
    ~provider seed size =
  let engine =
    if fault_rate > 0.0 then
      Zodiac_engine.Engine.faulty_config ~fault_rate ~seed:fault_seed ()
    else Zodiac_engine.Engine.default_config
  in
  {
    Zodiac.Pipeline.default_config with
    Zodiac.Pipeline.provider;
    corpus_seed = seed;
    corpus_size = size;
    jobs = resolve_jobs jobs;
    cache_dir;
    engine;
  }

let fault_rate_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Inject transient cloud faults (throttling, timeouts, polling \
           flakes, quota races) with per-call probability $(docv); the \
           resilient engine retries them away.")

let fault_seed_arg =
  Arg.(
    value
    & opt int 7
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Fault-injection seed.")

(* ---- telemetry / tracing -------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON trace to $(docv): one span per \
           pipeline stage with cache hit/miss, deployment/retry and \
           parallel chunk counters, plus wall-clock timings. Timings live \
           only in the trace — pipeline artifacts and cache entries never \
           contain wall-clock values.")

(* Without [--trace] the recorder is clockless (purely deterministic);
   with it, spans also measure wall time for the trace file. Either way
   the report gets a per-stage table. *)
let telemetry_of trace =
  match trace with
  | None -> Zodiac_util.Telemetry.create ()
  | Some _ -> Zodiac_util.Telemetry.create ~clock:Unix.gettimeofday ()

let write_trace trace telemetry =
  match trace with
  | None -> ()
  | Some path -> (
      let json =
        Zodiac_util.Json.to_string ~pretty:true
          (Zodiac_util.Telemetry.to_json telemetry)
      in
      match open_out path with
      | exception Sys_error e ->
          prerr_endline ("error writing trace: " ^ e);
          exit 2
      | oc ->
          output_string oc json;
          output_char oc '\n';
          close_out oc)

(* ---- mine ----------------------------------------------------------- *)

let shard_size_arg =
  Arg.(
    value
    & opt int 0
    & info [ "shard-size" ] ~docv:"N"
        ~doc:
          "Stream the corpus in shards of $(docv) projects instead of \
           materializing it whole: bounded memory for very large \
           --projects counts, with each completed shard checkpointed \
           through the warm-start cache so a killed run resumes. 0 \
           (default) runs the monolithic path. Results are \
           byte-identical for every value.")

let workers_arg =
  Arg.(
    value
    & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Fork $(docv) worker processes that mine disjoint shards of the \
           corpus in parallel into the shared --cache-dir, claiming shards \
           dynamically through atomic claim files (work stealing, crash \
           tolerance: a killed worker's claims expire and survivors re-mine \
           only its unfinished shards). Requires --shard-size and the \
           cache. The parent merges the per-shard checkpoints; artifacts \
           are byte-identical to --workers 1 for every (workers, jobs, \
           shard-size) combination.")

let stale_after_arg =
  Arg.(
    value
    & opt float 300.0
    & info [ "stale-after" ] ~docv:"SECONDS"
        ~doc:
          "Treat another worker's shard claim as abandoned once it is older \
           than $(docv) seconds and take it over. Must exceed the worst \
           single-shard mining time, or live workers steal each other's \
           shards (harmless — work is duplicated, results unchanged).")

(* Per-shard progress for long multi-worker runs: tty-only (stderr), so
   redirected/test runs keep byte-stable output. Elapsed and peak RSS
   are render-time probes — they never enter artifacts or telemetry. *)
let progress_of () =
  if not (Unix.isatty Unix.stderr) then None
  else
    let start = Unix.gettimeofday () in
    Some
      (fun ~pass ~index ~shards ~built ->
        let rss =
          match Zodiac_util.Rss.peak_rss_kb () with
          | None -> ""
          | Some kb ->
              Printf.sprintf ", peak RSS %.1f MB" (float_of_int kb /. 1024.)
        in
        Printf.eprintf "mine[%s]: shard %d/%d %s (%.1fs elapsed%s)\n%!" pass
          (index + 1) shards
          (if built then "built" else "resumed")
          (Unix.gettimeofday () -. start)
          rss)

let mine_cmd =
  let run verbose provider seed size jobs cache trace limit shard_size workers
      stale_after =
    setup_logs verbose;
    let telemetry = telemetry_of trace in
    let config = config_of ~jobs ?cache_dir:cache ~provider seed size in
    if workers > 1 && (shard_size <= 0 || Option.is_none cache) then begin
      prerr_endline
        "zodiac: --workers N requires --shard-size and an enabled cache \
         (shard claims and checkpoints live in --cache-dir)";
      exit 2
    end;
    if shard_size > 0 then begin
      (* Workers re-exec this binary in the hidden worker mode with the
         exact mining parameters; only coordination knobs (stale-after)
         travel separately, so a worker's shard bytes are the parent's
         by construction. *)
      let worker_command pass =
        [|
          Sys.executable_name;
          "mine-worker";
          "--pass";
          pass;
          "--provider";
          provider.Zodiac_provider.Provider.name;
          "--seed";
          string_of_int seed;
          "--projects";
          string_of_int size;
          "--jobs";
          string_of_int config.Zodiac.Pipeline.jobs;
          "--shard-size";
          string_of_int shard_size;
          "--cache-dir";
          Option.get cache;
          "--stale-after";
          Printf.sprintf "%.6f" stale_after;
        |]
      in
      let streamed =
        Zodiac.Pipeline.mine_streamed ~config ~telemetry ~workers
          ~worker_command ?progress:(progress_of ()) ~shard_size ()
      in
      write_trace trace telemetry;
      print_endline (Zodiac.Report.streamed_summary streamed);
      print_endline "";
      print_endline "Top candidates by support:";
      print_endline
        (Zodiac.Report.checks_listing ~limit
           streamed.Zodiac.Pipeline.s_candidates)
    end
    else begin
      let artifacts = Zodiac.Pipeline.mine_only ~config ~telemetry () in
      write_trace trace telemetry;
      print_endline (Zodiac.Report.mining_summary artifacts);
      print_endline (Zodiac.Report.stats_section ~telemetry artifacts);
      print_endline "";
      print_endline "Top candidates by support:";
      print_endline
        (Zodiac.Report.checks_listing ~limit artifacts.Zodiac.Pipeline.candidates)
    end
  in
  let limit =
    Arg.(value & opt int 25 & info [ "limit" ] ~docv:"N" ~doc:"Checks to list.")
  in
  Cmd.v
    (Cmd.info "mine" ~doc:"Mine hypothesized semantic checks from a corpus")
    Term.(
      const run $ verbose_arg $ provider_arg $ seed_arg $ size_arg 800
      $ jobs_arg $ cache_term $ trace_arg $ limit $ shard_size_arg
      $ workers_arg $ stale_after_arg)

(* ---- mine-worker (hidden) ------------------------------------------- *)

(* The re-exec target behind [mine --workers N]: claim and checkpoint
   shards of one pass into the shared cache dir, print one summary
   line, exit. Never invoked by hand — the parent constructs the argv. *)
let mine_worker_cmd =
  let run verbose provider seed size jobs cache shard_size pass stale_after =
    setup_logs verbose;
    match cache with
    | None ->
        prerr_endline "zodiac: mine-worker requires --cache-dir";
        exit 2
    | Some _ -> (
        let config = config_of ~jobs ?cache_dir:cache ~provider seed size in
        let pass = if String.equal pass "kb" then `Kb else `Mine in
        match
          Zodiac.Pipeline.mine_worker ~config ~stale_after ~shard_size ~pass ()
        with
        | outcome -> print_endline (Zodiac.Pipeline.worker_summary outcome)
        | exception Invalid_argument msg ->
            prerr_endline ("zodiac: " ^ msg);
            exit 2)
  in
  let pass_arg =
    Arg.(
      value
      & opt (enum [ ("kb", "kb"); ("mine", "mine") ]) "kb"
      & info [ "pass" ] ~docv:"PASS"
          ~doc:"Which streamed pass to checkpoint shards for (kb or mine).")
  in
  Cmd.v
    (Cmd.info "mine-worker"
       ~doc:
         "(internal) Shard worker for $(b,mine --workers): claims and \
          checkpoints shards into the shared cache, then exits. Spawned by \
          the parent mine process; not intended for direct use.")
    Term.(
      const run $ verbose_arg $ provider_arg $ seed_arg $ size_arg 800
      $ jobs_arg $ cache_term $ shard_size_arg $ pass_arg $ stale_after_arg)

(* ---- validate ------------------------------------------------------- *)

let validate_cmd =
  let run verbose provider seed size jobs cache trace output fault_rate
      fault_seed =
    setup_logs verbose;
    let telemetry = telemetry_of trace in
    let artifacts =
      Zodiac.Pipeline.run
        ~config:
          (config_of ~fault_rate ~fault_seed ~jobs ?cache_dir:cache ~provider
             seed size)
        ~telemetry ()
    in
    write_trace trace telemetry;
    print_endline (Zodiac.Report.full ~telemetry artifacts);
    match output with
    | None -> ()
    | Some path -> (
        match
          Zodiac.Checkset.save path artifacts.Zodiac.Pipeline.final_checks
        with
        | Error e ->
            prerr_endline ("error writing checks: " ^ e);
            exit 2
        | Ok () ->
            Printf.printf "\nwrote %d validated checks to %s\n"
              (List.length artifacts.Zodiac.Pipeline.final_checks)
              path)
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the validated check set to FILE (JSON).")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Run the full pipeline: mine, filter, interpolate, validate")
    Term.(
      const run $ verbose_arg $ provider_arg $ seed_arg $ size_arg 600
      $ jobs_arg $ cache_term $ trace_arg $ output $ fault_rate_arg
      $ fault_seed_arg)

(* ---- scan ----------------------------------------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"A Terraform (HCL) configuration file.")

let load_hcl ?provider path =
  match Zodiac.Registry.compile_file ?provider path with
  | Ok prog -> prog
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 2

let load_scan_checks provider checks_file =
  match Zodiac_serve.Scan.load_checks provider checks_file with
  | Ok checks -> checks
  | Error e ->
      prerr_endline ("error loading checks: " ^ e);
      exit 2

(* Exit codes are CI currency: 0 = clean, 1 = findings, 2 = error.
   [--exit-zero] collapses 1 into 0 for advisory runs. *)
let scan_exit ~exit_zero findings =
  if findings <> [] && not exit_zero then exit 1

let render_scan_text findings =
  if findings = [] then print_endline "no semantic check violations found"
  else begin
    Printf.printf "%d semantic check violation(s):\n" (List.length findings);
    List.iter
      (fun (f : Zodiac_serve.Sarif.finding) ->
        Printf.printf "  [%s] %s\n    where %s\n    because %s\n"
          f.Zodiac_serve.Sarif.rule_id f.Zodiac_serve.Sarif.message
          (String.concat ", "
             (List.map
                (fun (var, id) -> Printf.sprintf "%s = %s" var id)
                f.Zodiac_serve.Sarif.bindings))
          f.Zodiac_serve.Sarif.explanation)
      findings
  end

let scan_cmd =
  let run verbose provider path checks_file format timestamps exit_zero =
    setup_logs verbose;
    (* shared with the daemon's scan_file: same findings, same SARIF
       bytes (the smoke gate holds us to that) *)
    let checks = load_scan_checks provider checks_file in
    match Zodiac_serve.Scan.scan_file ~provider ~checks path with
    | Error e ->
        prerr_endline ("error: " ^ e);
        exit 2
    | Ok findings -> (
        match format with
        | "text" ->
            render_scan_text findings;
            scan_exit ~exit_zero findings
        | "sarif" ->
            let timestamp =
              if timestamps then Some (Zodiac_serve.Session.utc_now ())
              else None
            in
            print_string (Zodiac_serve.Sarif.to_string ?timestamp findings);
            scan_exit ~exit_zero findings
        | other ->
            prerr_endline ("unknown format: " ^ other);
            exit 2)
  in
  let checks_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "checks" ] ~docv:"FILE"
          ~doc:"Lint against a validated check set saved by 'zodiac validate -o'.")
  in
  let format =
    Arg.(
      value
      & opt string "text"
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: text (human), sarif (SARIF 2.1.0 JSON, \
             byte-identical to the daemon's scan_file result).")
  in
  let timestamps =
    Arg.(
      value & flag
      & info [ "timestamps" ]
          ~doc:
            "Stamp SARIF output with the wall-clock UTC end time. Off by \
             default so output is byte-stable.")
  in
  let exit_zero =
    Arg.(
      value & flag
      & info [ "exit-zero" ]
          ~doc:
            "Exit 0 even when violations are found (default: findings exit \
             1, errors exit 2).")
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Scan an HCL file for semantic check violations")
    Term.(
      const run $ verbose_arg $ provider_arg $ file_arg $ checks_file $ format
      $ timestamps $ exit_zero)

(* ---- deploy --------------------------------------------------------- *)

let deploy_cmd =
  let run verbose provider path fault_rate fault_seed trace =
    setup_logs verbose;
    let module Engine = Zodiac_engine.Engine in
    let telemetry = telemetry_of trace in
    let module Telemetry = Zodiac_util.Telemetry in
    let prog =
      Telemetry.with_span telemetry "compile" (fun () ->
          load_hcl ~provider path)
    in
    let engine_config =
      if fault_rate > 0.0 then
        Engine.faulty_config ~fault_rate ~seed:fault_seed ()
      else Engine.default_config
    in
    let engine = Engine.create ~provider ~config:engine_config () in
    (* one span per engine deployment, mirroring the pipeline's
       engine.* counters so daemon and one-shot traces line up *)
    let record_engine_counters () =
      let s = Engine.stats engine in
      Telemetry.count telemetry "engine.requests" s.Zodiac_engine.Stats.requests;
      Telemetry.count telemetry "engine.attempts" s.Zodiac_engine.Stats.attempts;
      Telemetry.count telemetry "engine.retries" s.Zodiac_engine.Stats.retries;
      Telemetry.count telemetry "engine.faults" s.Zodiac_engine.Stats.faults
    in
    let outcome =
      match
        Telemetry.with_span telemetry "deploy" (fun () ->
            let r = Engine.deploy engine prog in
            record_engine_counters ();
            r)
      with
      | Ok outcome -> outcome
      | Error e ->
          write_trace trace telemetry;
          prerr_endline
            ("deployment abandoned: " ^ Zodiac_engine.Client.error_to_string e);
          print_endline (Zodiac_engine.Stats.summary (Engine.stats engine));
          exit 1
    in
    write_trace trace telemetry;
    List.iter
      (fun id ->
        Printf.printf "created  %s\n" (Zodiac_iac.Resource.id_to_string id))
      outcome.Zodiac_cloud.Arm.deployed;
    (match outcome.Zodiac_cloud.Arm.failure with
    | None -> ()
    | Some f ->
        Printf.printf "FAILED   %s [%s phase] %s\n"
          (Zodiac_iac.Resource.id_to_string f.Zodiac_cloud.Arm.resource)
          (Zodiac_cloud.Rules.phase_to_string f.Zodiac_cloud.Arm.phase)
          f.Zodiac_cloud.Arm.message;
        List.iter
          (fun id ->
            Printf.printf "halted   %s\n" (Zodiac_iac.Resource.id_to_string id))
          outcome.Zodiac_cloud.Arm.halted);
    List.iter
      (fun (f : Zodiac_cloud.Arm.failure) ->
        Printf.printf "post-sync inconsistency: %s (%s)\n"
          f.Zodiac_cloud.Arm.message
          (Zodiac_iac.Resource.id_to_string f.Zodiac_cloud.Arm.resource))
      outcome.Zodiac_cloud.Arm.post_sync_issues;
    if fault_rate > 0.0 || verbose then
      print_endline (Zodiac_engine.Stats.summary (Engine.stats engine));
    if not (Zodiac_cloud.Arm.success outcome) then exit 1
    else print_endline "deployment succeeded"
  in
  Cmd.v
    (Cmd.info "deploy" ~doc:"Simulate a cloud deployment of an HCL file")
    Term.(
      const run $ verbose_arg $ provider_arg $ file_arg $ fault_rate_arg
      $ fault_seed_arg $ trace_arg)

(* ---- graph ---------------------------------------------------------- *)

let graph_cmd =
  let run verbose provider path =
    setup_logs verbose;
    let prog = load_hcl ~provider path in
    print_string (Zodiac_iac.Graph.to_dot (Zodiac_iac.Graph.build prog))
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Print the resource graph of an HCL file in Graphviz DOT format")
    Term.(const run $ verbose_arg $ provider_arg $ file_arg)

(* ---- plan ----------------------------------------------------------- *)

let plan_cmd =
  let run verbose provider path =
    setup_logs verbose;
    let prog = load_hcl ~provider path in
    print_endline
      (Zodiac_hcl.Plan.to_string
         ~type_name:provider.Zodiac_provider.Provider.to_terraform prog)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Compile an HCL file and print its Terraform-style plan JSON")
    Term.(const run $ verbose_arg $ provider_arg $ file_arg)

(* ---- export --------------------------------------------------------- *)

let export_cmd =
  let run verbose provider seed size jobs cache trace format =
    setup_logs verbose;
    let telemetry = telemetry_of trace in
    let artifacts =
      Zodiac.Pipeline.run
        ~config:(config_of ~jobs ?cache_dir:cache ~provider seed size)
        ~telemetry ()
    in
    write_trace trace telemetry;
    let checks = artifacts.Zodiac.Pipeline.final_checks in
    match format with
    | "insights" -> print_endline (Zodiac.Export.insights checks)
    | "rag" ->
        print_endline
          (Zodiac_util.Json.to_string ~pretty:true
             (Zodiac.Export.rag_knowledge_base checks))
    | "policy" -> print_endline (Zodiac.Export.policy_rules checks)
    | other ->
        prerr_endline ("unknown format: " ^ other);
        exit 2
  in
  let format =
    Arg.(
      value
      & opt string "insights"
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: insights (markdown), rag (JSON), policy (YAML).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Run the pipeline and export the validated checks as documentation \
          insights, a RAG knowledge base, or an ancillary-checker policy file")
    Term.(
      const run $ verbose_arg $ provider_arg $ seed_arg $ size_arg 600
      $ jobs_arg $ cache_term $ trace_arg $ format)

(* ---- corpus --------------------------------------------------------- *)

let corpus_cmd =
  let run verbose provider seed size jobs cache trace =
    setup_logs verbose;
    let config = config_of ~jobs ?cache_dir:cache ~provider seed size in
    let telemetry = telemetry_of trace in
    let cache_store =
      Option.map
        (fun dir -> Zodiac_util.Cache.create ~dir ())
        config.Zodiac.Pipeline.cache_dir
    in
    let projects =
      Zodiac.Pipeline.cached_corpus ?cache:cache_store ~telemetry config
    in
    write_trace trace telemetry;
    let by_scenario = Hashtbl.create 16 in
    List.iter
      (fun p ->
        Hashtbl.replace by_scenario p.Zodiac_corpus.Generator.scenario
          (1
          + Option.value ~default:0
              (Hashtbl.find_opt by_scenario p.Zodiac_corpus.Generator.scenario)))
      projects;
    Printf.printf "%d projects (%d with injected violations)\n"
      (List.length projects)
      (List.length
         (List.filter (fun p -> p.Zodiac_corpus.Generator.injected <> []) projects));
    Hashtbl.iter (fun s c -> Printf.printf "  %-18s %d\n" s c) by_scenario
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"Generate a synthetic corpus and print statistics")
    Term.(
      const run $ verbose_arg $ provider_arg $ seed_arg $ size_arg 1000
      $ jobs_arg $ cache_term $ trace_arg)

(* ---- serve ---------------------------------------------------------- *)

let serve_cmd =
  let run verbose provider checks_file socket jobs cache trace timestamps
      max_request_bytes deadline_ms max_clients =
    setup_logs verbose;
    let telemetry = telemetry_of trace in
    let session_config =
      {
        Zodiac_serve.Session.provider;
        checks_file;
        cache_dir = cache;
        jobs = resolve_jobs jobs;
        timestamps;
        engine = Zodiac_engine.Engine.default_config;
      }
    in
    match Zodiac_serve.Session.create ~telemetry session_config with
    | Error e ->
        prerr_endline ("error: " ^ e);
        exit 2
    | Ok session ->
        let server_config =
          {
            Zodiac_serve.Server.max_request_bytes;
            deadline_ms = (if deadline_ms <= 0 then None else Some deadline_ms);
            max_clients;
          }
        in
        (* the banner goes to stderr: stdout is the protocol channel *)
        Printf.eprintf
          "zodiac serve [%s]: %d checks resident (%s), %s transport; send \
           {\"method\":\"shutdown\"} or EOF to stop\n%!"
          provider.Zodiac_provider.Provider.name
          (List.length (Zodiac_serve.Session.checks session))
          (match checks_file with
          | None -> "ground truth"
          | Some f -> "check set " ^ f)
          (match socket with
          | None -> "stdio"
          | Some path -> "unix socket " ^ path);
        (match socket with
        | None ->
            Zodiac_serve.Server.serve_stdio ~config:server_config session
        | Some path ->
            Zodiac_serve.Server.serve_socket ~config:server_config session
              ~path);
        write_trace trace telemetry
  in
  let checks_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "checks" ] ~docv:"FILE"
          ~doc:
            "Serve a validated check set saved by 'zodiac validate -o' \
             instead of the built-in ground-truth rules.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of \
             stdin/stdout; up to --max-clients connections are served \
             concurrently.")
  in
  let timestamps =
    Arg.(
      value & flag
      & info [ "timestamps" ]
          ~doc:
            "Stamp SARIF results with wall-clock UTC time. Off by default \
             so responses are byte-stable.")
  in
  let max_request_bytes =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:
            "Reject (with a structured error) request lines longer than \
             $(docv) bytes; oversized lines are drained, never buffered.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Answer deadline_exceeded when handling a request takes longer \
             than $(docv) milliseconds (0 = no deadline).")
  in
  let max_clients =
    Arg.(
      value
      & opt int Zodiac_serve.Server.default_config.max_clients
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "Serve up to $(docv) socket connections concurrently (one \
             domain each); up to $(docv) more may wait in the admission \
             queue, and past that new connections are answered with a \
             structured 'busy' error and closed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident check-as-a-service daemon: registry, engine memo \
          and warm cache loaded once, requests answered over a \
          line-delimited JSON protocol with SARIF results")
    Term.(
      const run $ verbose_arg $ provider_arg $ checks_file $ socket $ jobs_arg
      $ cache_term $ trace_arg $ timestamps $ max_request_bytes $ deadline_ms
      $ max_clients)

(* ---- rules ---------------------------------------------------------- *)

let rules_cmd =
  let run verbose provider =
    setup_logs verbose;
    List.iter
      (fun (rule : Zodiac_cloud.Rules.t) ->
        Printf.printf "%-28s [%-9s] %s\n" rule.Zodiac_cloud.Rules.rule_id
          (Zodiac_cloud.Rules.phase_to_string rule.Zodiac_cloud.Rules.phase)
          (Zodiac_spec.Spec_printer.to_string rule.Zodiac_cloud.Rules.check))
      (provider.Zodiac_provider.Provider.ground_truth ())
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List the simulated cloud's ground-truth rules")
    Term.(const run $ verbose_arg $ provider_arg)

let main =
  Cmd.group
    (Cmd.info "zodiac" ~version:"1.0.0"
       ~doc:"Unearthing semantic checks for cloud IaC programs")
    [
      mine_cmd; mine_worker_cmd; validate_cmd; scan_cmd; deploy_cmd; plan_cmd;
      graph_cmd; corpus_cmd; rules_cmd; export_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval main)
