bench/harness.ml: Lazy List Printf Unix Zodiac Zodiac_util Zodiac_validation
