bench/main.mli:
