examples/appgw_case_study.mli:
