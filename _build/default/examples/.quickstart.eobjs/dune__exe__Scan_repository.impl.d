examples/scan_repository.ml: List Printf String Zodiac_cloud Zodiac_corpus Zodiac_iac Zodiac_spec
