examples/scan_repository.mli:
