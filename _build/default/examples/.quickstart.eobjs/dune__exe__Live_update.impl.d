examples/live_update.ml: List Printf String Zodiac Zodiac_cloud Zodiac_iac
