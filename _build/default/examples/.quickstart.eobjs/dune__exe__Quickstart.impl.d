examples/quickstart.ml: List Printf Zodiac Zodiac_cloud Zodiac_iac Zodiac_spec
