examples/appgw_case_study.ml: List Printf Zodiac Zodiac_cloud Zodiac_iac
