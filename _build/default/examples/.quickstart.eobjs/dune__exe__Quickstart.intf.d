examples/quickstart.mli:
