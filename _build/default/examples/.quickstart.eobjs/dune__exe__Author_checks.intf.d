examples/author_checks.mli:
