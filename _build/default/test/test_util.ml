(* Tests for Zodiac_util: PRNG, JSON, CIDR arithmetic, table rendering. *)

module Prng = Zodiac_util.Prng
module Json = Zodiac_util.Json
module Cidr = Zodiac_util.Cidr
module Tablefmt = Zodiac_util.Tablefmt

(* ---------------- Prng ---------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Prng.next64 a <> Prng.next64 b)

let test_prng_int_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 13 in
    Alcotest.(check bool) "in [0,13)" true (v >= 0 && v < 13)
  done

let test_prng_int_in () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_prng_int_coverage () =
  (* all residues of a small bound appear *)
  let rng = Prng.create 3 in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 7) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_prng_weighted () =
  let rng = Prng.create 5 in
  let zero_weight_never =
    List.init 500 (fun _ -> Prng.weighted rng [ (0, "never"); (3, "a"); (1, "b") ])
  in
  Alcotest.(check bool) "zero weight excluded" true
    (not (List.mem "never" zero_weight_never));
  let a_count = List.length (List.filter (String.equal "a") zero_weight_never) in
  Alcotest.(check bool) "weights respected roughly" true (a_count > 250)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 11 in
  let xs = List.init 50 Fun.id in
  let shuffled = Prng.shuffle_list rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare shuffled)

let test_prng_sample_distinct () =
  let rng = Prng.create 13 in
  let sample = Prng.sample rng 10 (List.init 30 Fun.id) in
  Alcotest.(check int) "size" 10 (List.length sample);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare sample))

let test_prng_split_independent () =
  let rng = Prng.create 17 in
  let child = Prng.split rng in
  let a = Prng.next64 child in
  let b = Prng.next64 rng in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let prng_chance_prop =
  QCheck.Test.make ~name:"chance(1.0) always true, chance(0.0) always false"
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      Prng.chance rng 1.0 && not (Prng.chance rng 0.0))

(* ---------------- Json ---------------------------------------------- *)

let test_json_roundtrip_basics () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.String "hello \"world\"\n\t";
      Json.List [ Json.Int 1; Json.Int 2 ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Null ]) ];
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool) "roundtrip" true (Json.equal j (Json.of_string (Json.to_string j))))
    samples

let test_json_pretty_roundtrip () =
  let j = Json.Obj [ ("xs", Json.List [ Json.Obj [ ("k", Json.String "v") ] ]) ] in
  Alcotest.(check bool) "pretty parses back" true
    (Json.equal j (Json.of_string (Json.to_string ~pretty:true j)))

let test_json_parse_whitespace () =
  Alcotest.(check bool) "ws tolerated" true
    (Json.equal (Json.List [ Json.Int 1 ]) (Json.of_string " [\n 1 ] "))

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" bad)
    [ ""; "{"; "[1,"; "nul"; "\"unterminated"; "[1] trailing" ]

let test_json_unicode_escape () =
  match Json.of_string {|"Aé"|} with
  | Json.String s -> Alcotest.(check string) "decoded" "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected string"

let test_json_member () =
  let j = Json.Obj [ ("a", Json.Int 1) ] in
  Alcotest.(check bool) "present" true (Json.member "a" j = Json.Int 1);
  Alcotest.(check bool) "absent is null" true (Json.member "b" j = Json.Null);
  Alcotest.(check bool) "non-object is null" true (Json.member "a" Json.Null = Json.Null)

let json_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) small_signed_int;
               map (fun s -> Json.String s) (string_size (int_bound 8));
             ]
         else
           frequency
             [
               (2, map (fun xs -> Json.List xs) (list_size (int_bound 4) (self (n / 2))));
               ( 2,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 5)) (self (n / 2)))) );
               (1, map (fun i -> Json.Int i) small_signed_int);
             ])

let json_roundtrip_prop =
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:300
    (QCheck.make json_gen) (fun j ->
      Json.equal j (Json.of_string (Json.to_string j)))

(* ---------------- Cidr ---------------------------------------------- *)

let cidr = Cidr.of_string_exn

let test_cidr_parse_print () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Cidr.to_string (cidr s)))
    [ "10.0.0.0/16"; "0.0.0.0/0"; "192.168.1.0/24"; "255.255.255.255/32" ]

let test_cidr_normalizes_host_bits () =
  Alcotest.(check string) "host bits cleared" "10.0.0.0/16"
    (Cidr.to_string (cidr "10.0.123.45/16"))

let test_cidr_bare_address () =
  Alcotest.(check int) "/32 default" 32 (Cidr.prefix_len (cidr "1.2.3.4"))

let test_cidr_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " invalid") true (Cidr.of_string s = None))
    [ "10.0.0/16"; "10.0.0.0/33"; "256.0.0.0/8"; "abc"; "10.0.0.0/-1"; "" ]

let test_cidr_contains () =
  Alcotest.(check bool) "vpc contains subnet" true
    (Cidr.contains (cidr "10.0.0.0/16") (cidr "10.0.5.0/24"));
  Alcotest.(check bool) "subnet not contains vpc" false
    (Cidr.contains (cidr "10.0.5.0/24") (cidr "10.0.0.0/16"));
  Alcotest.(check bool) "disjoint" false
    (Cidr.contains (cidr "10.1.0.0/16") (cidr "10.2.0.0/24"))

let test_cidr_overlap () =
  Alcotest.(check bool) "nested overlap" true
    (Cidr.overlap (cidr "10.0.0.0/8") (cidr "10.200.0.0/16"));
  Alcotest.(check bool) "disjoint no overlap" false
    (Cidr.overlap (cidr "10.0.1.0/24") (cidr "10.0.2.0/24"))

let test_cidr_adjacent () =
  Alcotest.(check string) "sibling block" "10.0.1.0/24"
    (Cidr.to_string (Cidr.adjacent (cidr "10.0.0.0/24")));
  Alcotest.(check string) "sibling back" "10.0.0.0/24"
    (Cidr.to_string (Cidr.adjacent (cidr "10.0.1.0/24")));
  let a = cidr "10.0.4.0/24" in
  Alcotest.(check bool) "adjacent disjoint" false (Cidr.overlap a (Cidr.adjacent a))

let test_cidr_subdivide () =
  let blocks = Cidr.subdivide (cidr "10.0.0.0/22") 24 in
  Alcotest.(check int) "4 blocks" 4 (List.length blocks);
  List.iteri
    (fun i b ->
      Alcotest.(check string) "block" (Printf.sprintf "10.0.%d.0/24" i) (Cidr.to_string b))
    blocks

let test_cidr_nth_subnet () =
  Alcotest.(check (option string)) "nth" (Some "10.0.3.0/24")
    (Option.map Cidr.to_string (Cidr.nth_subnet (cidr "10.0.0.0/16") 24 3));
  Alcotest.(check bool) "out of range" true
    (Cidr.nth_subnet (cidr "10.0.0.0/24") 24 1 = None)

let test_cidr_disjoint_within () =
  let blocks = Cidr.disjoint_within (cidr "10.0.0.0/16") 24 5 in
  Alcotest.(check int) "count" 5 (List.length blocks);
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "pairwise disjoint" false (Cidr.overlap a b))
        blocks)
    blocks

let cidr_gen =
  QCheck.Gen.(
    map2
      (fun addr prefix -> Cidr.v (addr lsr 24) (addr lsr 16) (addr lsr 8) addr prefix)
      (int_bound 0xFFFFFF) (int_range 4 30))

let cidr_overlap_symmetric =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:500
    (QCheck.make (QCheck.Gen.pair cidr_gen cidr_gen))
    (fun (a, b) -> Cidr.overlap a b = Cidr.overlap b a)

let cidr_contains_implies_overlap =
  QCheck.Test.make ~name:"contains implies overlap" ~count:500
    (QCheck.make (QCheck.Gen.pair cidr_gen cidr_gen))
    (fun (a, b) -> (not (Cidr.contains a b)) || Cidr.overlap a b)

let cidr_roundtrip =
  QCheck.Test.make ~name:"cidr string roundtrip" ~count:500 (QCheck.make cidr_gen)
    (fun c ->
      match Cidr.of_string (Cidr.to_string c) with
      | Some c' -> Cidr.equal c c'
      | None -> false)

let cidr_adjacent_same_size =
  QCheck.Test.make ~name:"adjacent block has same prefix and no overlap" ~count:500
    (QCheck.make cidr_gen) (fun c ->
      let a = Cidr.adjacent c in
      Cidr.prefix_len a = Cidr.prefix_len c && not (Cidr.overlap a c))

(* ---------------- Tablefmt ------------------------------------------ *)

let test_table_render () =
  let s = Tablefmt.render ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333" ] ] in
  Alcotest.(check bool) "contains cells" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length = 6
    (* 3 rules + header + 2 rows *));
  Alcotest.(check bool) "pads short rows" true (String.index_opt s '3' <> None)

let test_bar_chart () =
  let s = Tablefmt.bar_chart ~title:"t" [ ("x", 10.0); ("y", 5.0) ] in
  Alcotest.(check bool) "has bars" true (String.contains s '#')

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "int coverage" `Quick test_prng_int_coverage;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample_distinct;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          QCheck_alcotest.to_alcotest prng_chance_prop;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_json_roundtrip_basics;
          Alcotest.test_case "pretty roundtrip" `Quick test_json_pretty_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_json_parse_whitespace;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "member" `Quick test_json_member;
          QCheck_alcotest.to_alcotest json_roundtrip_prop;
        ] );
      ( "cidr",
        [
          Alcotest.test_case "parse/print" `Quick test_cidr_parse_print;
          Alcotest.test_case "normalization" `Quick test_cidr_normalizes_host_bits;
          Alcotest.test_case "bare address" `Quick test_cidr_bare_address;
          Alcotest.test_case "invalid inputs" `Quick test_cidr_invalid;
          Alcotest.test_case "contains" `Quick test_cidr_contains;
          Alcotest.test_case "overlap" `Quick test_cidr_overlap;
          Alcotest.test_case "adjacent" `Quick test_cidr_adjacent;
          Alcotest.test_case "subdivide" `Quick test_cidr_subdivide;
          Alcotest.test_case "nth_subnet" `Quick test_cidr_nth_subnet;
          Alcotest.test_case "disjoint_within" `Quick test_cidr_disjoint_within;
          QCheck_alcotest.to_alcotest cidr_overlap_symmetric;
          QCheck_alcotest.to_alcotest cidr_contains_implies_overlap;
          QCheck_alcotest.to_alcotest cidr_roundtrip;
          QCheck_alcotest.to_alcotest cidr_adjacent_same_size;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
        ] );
    ]
