(* Tests for the check specification language: parsing, printing,
   evaluation semantics. *)

module Check = Zodiac_spec.Check
module Parser = Zodiac_spec.Spec_parser
module Printer = Zodiac_spec.Spec_printer
module Eval = Zodiac_spec.Eval
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph

let parse = Parser.parse_exn

let graph_of resources = Graph.build (Program.of_resources resources)

(* ---------------- parser / printer ---------------------------------- *)

let test_parse_print_roundtrip () =
  List.iter
    (fun src ->
      let c = parse src in
      let printed = Printer.to_string c in
      let c2 = parse printed in
      Alcotest.(check bool) src true (Check.equal c c2))
    [
      "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'";
      "let r:VM in r.priority == 'Spot' => r.evict_policy != null";
      "let r1:VM, r2:NIC in conn(r1.nic_ids -> r2.id) => r1.location == r2.location";
      "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
      "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.vpc_name -> r3.name, r2.vpc_name -> r3.name) => !overlap(r1.cidr, r2.cidr)";
      "let t:TUNNEL, v1:VPC, v2:VPC in copath(t -> v1, t -> v2) => !overlap(v1.address_space, v2.address_space)";
      "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !GW) == 0";
      "let r:VM in r.sku == 'Standard_F2s_v2' => indegree(r, NIC) <= 2";
      "let r:SG in r.rule[i].dir == r.rule[j].dir => r.rule[i].priority != r.rule[j].priority";
      "let r:KV in r.name != null => r.soft_delete_retention_days >= 7";
      "let r:COSMOS in r.automatic_failover_enabled == true => !length(r.geo_location, 1)";
      "let t:TUNNEL, l:LNG, v:VPC in conn(t.lng_id -> l.id) && path(t -> v) => !overlap(l.address_space, v.address_space)";
      "let r2:VPC, r1:SUBNET in conn(r1.vpc_name -> r2.name) => contain(r2.address_space, r1.cidr)";
    ]

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error for %S" src)
    [
      "";
      "r.x == 1";
      "let r:VM in r.x";
      "let r:VM in r.x == 1 => ";
      "let r in r.x == 1 => r.y == 2";
      "let r:VM in conn(r.x) => r.y == 1";
    ]

let test_stable_ids () =
  let c1 = parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'" in
  let c2 = parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'" in
  Alcotest.(check string) "same id" c1.Check.cid c2.Check.cid;
  let c3 = parse "let r:SA in r.tier == 'Premium' => r.replica != 'LRS'" in
  Alcotest.(check bool) "different id" true (c1.Check.cid <> c3.Check.cid)

let test_categories () =
  let cat src = Check.category (parse src) in
  Alcotest.(check bool) "intra" true
    (cat "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'" = Check.Intra);
  Alcotest.(check bool) "inter" true
    (cat "let r1:VM, r2:NIC in conn(r1.nic_ids -> r2.id) => r1.location == r2.location"
    = Check.Inter_no_agg);
  Alcotest.(check bool) "agg" true
    (cat "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !GW) == 0"
    = Check.Inter_agg)

let test_index_vars () =
  let c = parse "let r:SG in r.rule[i].dir == r.rule[j].dir => r.rule[i].priority != r.rule[j].priority" in
  Alcotest.(check (list string)) "two ivars" [ "i"; "j" ] (Check.index_vars c);
  Alcotest.(check string) "strip" "rule.priority" (Check.strip_indices "rule[i].priority")

(* ---------------- evaluation ---------------------------------------- *)

let sa tier replica =
  Resource.make "SA" "x" [ ("tier", Value.Str tier); ("replica", Value.Str replica) ]

let premium_check = parse "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'"

let test_eval_intra () =
  Alcotest.(check bool) "conforming holds" true
    (Eval.holds (graph_of [ sa "Premium" "LRS" ]) premium_check);
  Alcotest.(check bool) "violating fails" false
    (Eval.holds (graph_of [ sa "Premium" "GZRS" ]) premium_check);
  Alcotest.(check bool) "vacuous holds" true
    (Eval.holds (graph_of [ sa "Standard" "GZRS" ]) premium_check);
  Alcotest.(check bool) "empty program holds" true
    (Eval.holds (graph_of []) premium_check)

let test_eval_stats () =
  let g = graph_of [ sa "Premium" "GZRS"; sa "Premium" "LRS" ] in
  (* note: both resources named "x" would collide; rename one *)
  ignore g;
  let g =
    graph_of
      [
        Resource.make "SA" "a" [ ("tier", Value.Str "Premium"); ("replica", Value.Str "GZRS") ];
        Resource.make "SA" "b" [ ("tier", Value.Str "Premium"); ("replica", Value.Str "LRS") ];
        Resource.make "SA" "c" [ ("tier", Value.Str "Standard"); ("replica", Value.Str "GZRS") ];
      ]
  in
  let s = Eval.stats g premium_check in
  Alcotest.(check int) "instances" 3 s.Eval.instances;
  Alcotest.(check int) "occurrences" 2 s.Eval.cond_true;
  Alcotest.(check int) "satisfied" 1 s.Eval.both_true

let test_eval_defaults () =
  (* active_active defaults to false; with defaults the check holds *)
  let gw = Resource.make "GW" "g" [ ("sku", Value.Str "Basic") ] in
  let check = parse "let g:GW in g.sku == 'Basic' => g.active_active == false" in
  let defaults ~rtype ~attr =
    if rtype = "GW" && attr = "active_active" then Some (Value.Bool false) else None
  in
  Alcotest.(check bool) "without defaults fails" false
    (Eval.holds (graph_of [ gw ]) check);
  Alcotest.(check bool) "with defaults holds" true
    (Eval.holds ~defaults (graph_of [ gw ]) check)

let vpc name = Resource.make "VPC" name [ ("name", Value.Str name); ("location", Value.Str "eastus") ]

let subnet name vpc_name cidr =
  Resource.make "SUBNET" name
    [
      ("name", Value.Str name);
      ("vpc_name", Value.reference "VPC" vpc_name "name");
      ("cidr", Value.Str cidr);
    ]

let overlap_check =
  parse
    "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.vpc_name -> r3.name, r2.vpc_name -> r3.name) => !overlap(r1.cidr, r2.cidr)"

let test_eval_coconn_overlap () =
  let good = [ vpc "v"; subnet "s1" "v" "10.0.1.0/24"; subnet "s2" "v" "10.0.2.0/24" ] in
  let bad = [ vpc "v"; subnet "s1" "v" "10.0.1.0/24"; subnet "s2" "v" "10.0.1.0/25" ] in
  Alcotest.(check bool) "disjoint holds" true (Eval.holds (graph_of good) overlap_check);
  Alcotest.(check bool) "overlap fails" false (Eval.holds (graph_of bad) overlap_check);
  (* subnets in different VPCs may overlap *)
  let cross =
    [ vpc "v1"; vpc "v2"; subnet "s1" "v1" "10.0.1.0/24"; subnet "s2" "v2" "10.0.1.0/24" ]
  in
  Alcotest.(check bool) "cross-vpc ok" true (Eval.holds (graph_of cross) overlap_check)

let test_eval_path () =
  let nic =
    Resource.make "NIC" "n"
      [
        ("location", Value.Str "westus");
        ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "s1" "id") ]);
      ]
  in
  let check = parse "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location" in
  let g = graph_of [ vpc "v"; subnet "s1" "v" "10.0.1.0/24"; nic ] in
  Alcotest.(check bool) "violated over 2-hop path" false (Eval.holds g check);
  Alcotest.(check int) "one violation" 1 (List.length (Eval.violations g check))

let test_eval_degrees () =
  let nic name =
    Resource.make "NIC" name
      [ ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "s1" "id") ]) ]
  in
  let vm nics =
    Resource.make "VM" "vm"
      [
        ("sku", Value.Str "Standard_F2s_v2");
        ("nic_ids", Value.List (List.map (fun n -> Value.reference "NIC" n "id") nics));
      ]
  in
  let check = parse "let r:VM in r.sku == 'Standard_F2s_v2' => indegree(r, NIC) <= 2" in
  let g2 = graph_of [ vpc "v"; subnet "s1" "v" "10.0.0.0/24"; nic "a"; nic "b"; vm [ "a"; "b" ] ] in
  Alcotest.(check bool) "2 nics ok" true (Eval.holds g2 check);
  let g3 =
    graph_of
      [ vpc "v"; subnet "s1" "v" "10.0.0.0/24"; nic "a"; nic "b"; nic "c"; vm [ "a"; "b"; "c" ] ]
  in
  Alcotest.(check bool) "3 nics violate" false (Eval.holds g3 check)

let test_eval_outdeg_exclusive () =
  let gw =
    Resource.make "GW" "g"
      [ ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "s1" "id") ]) ]
  in
  let nic =
    Resource.make "NIC" "n"
      [ ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "s1" "id") ]) ]
  in
  let check =
    parse "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !GW) == 0"
  in
  let base = [ vpc "v"; subnet "s1" "v" "10.0.0.0/24"; gw ] in
  Alcotest.(check bool) "exclusive ok" true (Eval.holds (graph_of base) check);
  Alcotest.(check bool) "intruder violates" false
    (Eval.holds (graph_of (base @ [ nic ])) check)

let test_eval_indexed () =
  let sg rules =
    Resource.make "SG" "sg"
      [
        ( "rule",
          Value.List
            (List.map
               (fun (dir, pri) ->
                 Value.Block
                   [ ("dir", Value.Str dir); ("priority", Value.Int pri) ])
               rules) );
      ]
  in
  let check =
    parse "let r:SG in r.rule[i].dir == r.rule[j].dir => r.rule[i].priority != r.rule[j].priority"
  in
  Alcotest.(check bool) "distinct priorities hold" true
    (Eval.holds (graph_of [ sg [ ("Inbound", 100); ("Inbound", 200) ] ]) check);
  Alcotest.(check bool) "duplicate priorities fail" false
    (Eval.holds (graph_of [ sg [ ("Inbound", 100); ("Inbound", 100) ] ]) check);
  Alcotest.(check bool) "different directions may share" true
    (Eval.holds (graph_of [ sg [ ("Inbound", 100); ("Outbound", 100) ] ]) check);
  Alcotest.(check bool) "single rule vacuous" true
    (Eval.holds (graph_of [ sg [ ("Inbound", 100) ] ]) check)

let test_eval_contain () =
  let v =
    Resource.make "VPC" "v"
      [ ("name", Value.Str "v"); ("address_space", Value.List [ Value.Str "10.0.0.0/16" ]) ]
  in
  let check =
    parse "let r1:SUBNET, r2:VPC in conn(r1.vpc_name -> r2.name) => contain(r2.address_space, r1.cidr)"
  in
  Alcotest.(check bool) "inside holds" true
    (Eval.holds (graph_of [ v; subnet "s" "v" "10.0.3.0/24" ]) check);
  Alcotest.(check bool) "outside fails" false
    (Eval.holds (graph_of [ v; subnet "s" "v" "192.168.0.0/24" ]) check)

let test_eval_length () =
  let cosmos n =
    Resource.make "COSMOS" "c"
      [
        ("automatic_failover_enabled", Value.Bool true);
        ( "geo_location",
          Value.List (List.init n (fun i -> Value.Block [ ("failover_priority", Value.Int i) ]))
        );
      ]
  in
  let check =
    parse "let r:COSMOS in r.automatic_failover_enabled == true => !length(r.geo_location, 1)"
  in
  Alcotest.(check bool) "two locations ok" true (Eval.holds (graph_of [ cosmos 2 ]) check);
  Alcotest.(check bool) "one location fails" false (Eval.holds (graph_of [ cosmos 1 ]) check)

let test_eval_first_witness_agrees () =
  let g =
    graph_of
      [
        Resource.make "SA" "a" [ ("tier", Value.Str "Premium"); ("replica", Value.Str "LRS") ];
      ]
  in
  Alcotest.(check bool) "first witness found" true
    (Eval.first_witness g premium_check <> None);
  Alcotest.(check bool) "no violation" true (Eval.first_violation g premium_check = None)

let test_eval_injective_bindings () =
  (* two same-type bindings never alias one resource *)
  let check = parse "let r1:SA, r2:SA in r1.tier == r2.tier => r1.name != r2.name" in
  let g =
    graph_of
      [ Resource.make "SA" "only" [ ("tier", Value.Str "Standard"); ("name", Value.Str "n") ] ]
  in
  (* with a single SA there is no (r1, r2) instance at all *)
  Alcotest.(check int) "no instances" 0 (Eval.stats g check).Eval.instances

(* ---------------- diagnosis ------------------------------------------ *)

module Diagnose = Zodiac_spec.Diagnose

let has_sub ~needle haystack =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_diagnose_cmp () =
  let g = graph_of [ sa "Premium" "GZRS" ] in
  match Diagnose.all g premium_check with
  | [ d ] ->
      let text = Diagnose.to_string d in
      Alcotest.(check bool) "names the resource" true (has_sub ~needle:"SA.x" text);
      Alcotest.(check bool) "shows the actual value" true
        (has_sub ~needle:"GZRS" d.Diagnose.explanation)
  | other -> Alcotest.failf "expected one diagnosis, got %d" (List.length other)

let test_diagnose_locations () =
  let nic =
    Resource.make "NIC" "n"
      [ ("location", Value.Str "westus");
        ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "s1" "id") ]) ]
  in
  let check = parse "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location" in
  let g = graph_of [ vpc "v"; subnet "s1" "v" "10.0.1.0/24"; nic ] in
  match Diagnose.all g check with
  | [ d ] ->
      Alcotest.(check bool) "both values shown" true
        (has_sub ~needle:"westus" d.Diagnose.explanation
        && has_sub ~needle:"eastus" d.Diagnose.explanation);
      Alcotest.(check bool) "expectation stated" true
        (has_sub ~needle:"equal" d.Diagnose.explanation)
  | other -> Alcotest.failf "expected one diagnosis, got %d" (List.length other)

let test_diagnose_indexed () =
  let sg =
    Resource.make "SG" "sg"
      [
        ( "rule",
          Value.List
            [
              Value.Block [ ("dir", Value.Str "Inbound"); ("priority", Value.Int 100) ];
              Value.Block [ ("dir", Value.Str "Inbound"); ("priority", Value.Int 100) ];
            ] );
      ]
  in
  let check =
    parse "let r:SG in r.rule[i].dir == r.rule[j].dir => r.rule[i].priority != r.rule[j].priority"
  in
  match Diagnose.all (graph_of [ sg ]) check with
  | d :: _ ->
      Alcotest.(check bool) "shows the clashing priority" true
        (has_sub ~needle:"100" d.Diagnose.explanation)
  | [] -> Alcotest.fail "expected a diagnosis"

let test_diagnose_overlap () =
  let g =
    graph_of [ vpc "v"; subnet "s1" "v" "10.0.1.0/24"; subnet "s2" "v" "10.0.1.0/25" ]
  in
  match Diagnose.all g overlap_check with
  | d :: _ ->
      Alcotest.(check bool) "mentions the ranges" true
        (has_sub ~needle:"10.0.1.0" d.Diagnose.explanation)
  | [] -> Alcotest.fail "expected a diagnosis"

let () =
  Alcotest.run "spec"
    [
      ( "syntax",
        [
          Alcotest.test_case "parse/print roundtrip" `Quick test_parse_print_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "stable ids" `Quick test_stable_ids;
          Alcotest.test_case "categories" `Quick test_categories;
          Alcotest.test_case "index vars" `Quick test_index_vars;
        ] );
      ( "eval",
        [
          Alcotest.test_case "intra" `Quick test_eval_intra;
          Alcotest.test_case "stats" `Quick test_eval_stats;
          Alcotest.test_case "defaults" `Quick test_eval_defaults;
          Alcotest.test_case "coconn overlap" `Quick test_eval_coconn_overlap;
          Alcotest.test_case "path" `Quick test_eval_path;
          Alcotest.test_case "degree bounds" `Quick test_eval_degrees;
          Alcotest.test_case "exclusive outdegree" `Quick test_eval_outdeg_exclusive;
          Alcotest.test_case "indexed quantification" `Quick test_eval_indexed;
          Alcotest.test_case "containment" `Quick test_eval_contain;
          Alcotest.test_case "length" `Quick test_eval_length;
          Alcotest.test_case "first witness/violation" `Quick test_eval_first_witness_agrees;
          Alcotest.test_case "injective bindings" `Quick test_eval_injective_bindings;
        ] );
      ( "diagnose",
        [
          Alcotest.test_case "comparison" `Quick test_diagnose_cmp;
          Alcotest.test_case "location mismatch" `Quick test_diagnose_locations;
          Alcotest.test_case "indexed" `Quick test_diagnose_indexed;
          Alcotest.test_case "overlap" `Quick test_diagnose_overlap;
        ] );
    ]
