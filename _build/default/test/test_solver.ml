(* Tests for the finite-domain Max-CSP solver. *)

module Csp = Zodiac_solver.Csp
module Value = Zodiac_iac.Value

let s v = Value.Str v

(* helper: look up inside a constraint predicate *)
let v l x = l x

let test_unsat () =
  let p = Csp.create () in
  let x = Csp.new_var p ~name:"x" [ s "a" ] in
  Csp.add_hard p ~name:"impossible" [ x ] (fun l -> v l x = s "b");
  Alcotest.(check bool) "unsat" true (Csp.solve p = None)

let test_all_different_coloring () =
  (* 3-coloring of a triangle *)
  let p = Csp.create () in
  let colors = [ s "r"; s "g"; s "b" ] in
  let a = Csp.new_var p ~name:"a" colors in
  let b = Csp.new_var p ~name:"b" colors in
  let c = Csp.new_var p ~name:"c" colors in
  let diff name x y = Csp.add_hard p ~name [ x; y ] (fun l -> v l x <> v l y) in
  diff "ab" a b;
  diff "bc" b c;
  diff "ac" a c;
  match Csp.solve p with
  | Some sol ->
      let va = Csp.value sol a and vb = Csp.value sol b and vc = Csp.value sol c in
      Alcotest.(check bool) "all distinct" true (va <> vb && vb <> vc && va <> vc)
  | None -> Alcotest.fail "triangle is 3-colorable"

let test_pigeonhole_unsat () =
  (* 3 pigeons, 2 holes, all-different: UNSAT *)
  let p = Csp.create () in
  let holes = [ Value.Int 0; Value.Int 1 ] in
  let xs = List.init 3 (fun i -> Csp.new_var p ~name:(string_of_int i) holes) in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if i < j then
            Csp.add_hard p ~name:(Printf.sprintf "d%d%d" i j) [ x; y ] (fun l ->
                v l x <> v l y))
        xs)
    xs;
  Alcotest.(check bool) "unsat" true (Csp.solve p = None)

let test_value_costs_minimized () =
  let p = Csp.create () in
  let x = Csp.new_var p ~name:"x" [ s "cheap"; s "pricey" ] in
  Csp.set_value_cost p x (fun value -> if value = s "pricey" then 5 else 0);
  match Csp.solve p with
  | Some sol ->
      Alcotest.(check bool) "picks cheap" true (Csp.value sol x = s "cheap");
      Alcotest.(check int) "zero cost" 0 (Csp.cost sol)
  | None -> Alcotest.fail "sat expected"

let test_cost_vs_hard () =
  (* the hard constraint forces the costly value *)
  let p = Csp.create () in
  let x = Csp.new_var p ~name:"x" [ s "cheap"; s "pricey" ] in
  Csp.set_value_cost p x (fun value -> if value = s "pricey" then 5 else 0);
  Csp.add_hard p ~name:"force" [ x ] (fun l -> v l x = s "pricey");
  match Csp.solve p with
  | Some sol -> Alcotest.(check int) "cost paid" 5 (Csp.cost sol)
  | None -> Alcotest.fail "sat expected"

let test_soft_constraints () =
  let p = Csp.create () in
  let x = Csp.new_var p ~name:"x" [ s "a"; s "b" ] in
  let y = Csp.new_var p ~name:"y" [ s "a"; s "b" ] in
  (* two incompatible soft constraints: satisfy the heavier *)
  Csp.add_soft p ~name:"want-xa" ~weight:1 [ x ] (fun l -> v l x = s "a");
  Csp.add_soft p ~name:"want-xb" ~weight:10 [ x ] (fun l -> v l x = s "b");
  Csp.add_soft p ~name:"want-ya" ~weight:3 [ y ] (fun l -> v l y = s "a");
  match Csp.solve p with
  | Some sol ->
      Alcotest.(check bool) "x=b (heavier)" true (Csp.value sol x = s "b");
      Alcotest.(check bool) "y=a" true (Csp.value sol y = s "a");
      Alcotest.(check (list string)) "violated light one" [ "want-xa" ]
        (Csp.violated_soft sol);
      Alcotest.(check int) "cost = weight 1" 1 (Csp.cost sol)
  | None -> Alcotest.fail "sat expected"

let test_soft_never_unsat () =
  let p = Csp.create () in
  let x = Csp.new_var p ~name:"x" [ s "a" ] in
  Csp.add_soft p ~name:"impossible" ~weight:100 [ x ] (fun l -> v l x = s "b");
  match Csp.solve p with
  | Some sol -> Alcotest.(check int) "pays the weight" 100 (Csp.cost sol)
  | None -> Alcotest.fail "soft constraints must not cause UNSAT"

let test_multi_scope_constraint () =
  let p = Csp.create () in
  let xs = List.init 4 (fun i -> Csp.new_var p ~name:(string_of_int i) [ Value.Int 0; Value.Int 1 ]) in
  (* sum of all four variables = 2 *)
  Csp.add_hard p ~name:"sum2" xs (fun l ->
      List.fold_left
        (fun acc x -> acc + match v l x with Value.Int i -> i | _ -> 0)
        0 xs
      = 2);
  match Csp.solve p with
  | Some sol ->
      let sum =
        List.fold_left
          (fun acc x -> acc + match Csp.value sol x with Value.Int i -> i | _ -> 0)
          0 xs
      in
      Alcotest.(check int) "sum is 2" 2 sum
  | None -> Alcotest.fail "sat expected"

let test_good_enough_stops () =
  let p = Csp.create () in
  let xs =
    List.init 10 (fun i -> Csp.new_var p ~name:(string_of_int i) [ Value.Int 0; Value.Int 1 ])
  in
  List.iter (fun x -> Csp.set_value_cost p x (fun value -> if value = Value.Int 1 then 1 else 0)) xs;
  (match Csp.solve ~good_enough:0 p with
  | Some sol -> Alcotest.(check int) "optimal immediately" 0 (Csp.cost sol)
  | None -> Alcotest.fail "sat expected");
  Alcotest.(check bool) "few nodes" true (Csp.stats_nodes p <= 12)

let test_priority_ordering () =
  (* the prioritized variable is decided first, so an early conflict on
     it prunes immediately instead of after exploring the others *)
  let p = Csp.create () in
  let key = Csp.new_var p ~name:"key" [ s "bad"; s "good" ] in
  let _noise =
    List.init 8 (fun i -> Csp.new_var p ~name:(Printf.sprintf "n%d" i) [ Value.Int 0; Value.Int 1 ])
  in
  Csp.set_priority p key 0;
  Csp.add_hard p ~name:"key-good" [ key ] (fun l -> v l key = s "good");
  match Csp.solve ~good_enough:0 p with
  | Some sol ->
      Alcotest.(check bool) "good" true (Csp.value sol key = s "good");
      Alcotest.(check bool) "cheap search" true (Csp.stats_nodes p < 30)
  | None -> Alcotest.fail "sat expected"

let test_node_budget_respected () =
  let p = Csp.create () in
  let xs =
    List.init 20 (fun i -> Csp.new_var p ~name:(string_of_int i) [ Value.Int 0; Value.Int 1 ])
  in
  (* unsatisfiable parity-ish constraint over everything, forcing
     exhaustive search beyond the budget *)
  Csp.add_hard p ~name:"impossible" xs (fun l ->
      List.fold_left
        (fun acc x -> acc + match v l x with Value.Int i -> i | _ -> 0)
        0 xs
      = 50);
  let _ = Csp.solve ~node_budget:500 p in
  Alcotest.(check bool) "budget respected" true (Csp.stats_nodes p <= 501)

let test_empty_domain_rejected () =
  let p = Csp.create () in
  match Csp.new_var p ~name:"x" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty domain must be rejected"

let test_deterministic () =
  let solve_once () =
    let p = Csp.create () in
    let xs =
      List.init 6 (fun i ->
          Csp.new_var p ~name:(string_of_int i) [ s "a"; s "b"; s "c" ])
    in
    List.iteri
      (fun i x ->
        List.iteri
          (fun j y ->
            if j = i + 1 then
              Csp.add_hard p ~name:(Printf.sprintf "d%d" i) [ x; y ] (fun l ->
                  v l x <> v l y))
          xs)
      xs;
    match Csp.solve p with
    | Some sol -> List.map (Csp.value sol) xs
    | None -> []
  in
  Alcotest.(check bool) "same solution twice" true (solve_once () = solve_once ())

let () =
  Alcotest.run "solver"
    [
      ( "csp",
        [
          Alcotest.test_case "unsat" `Quick test_unsat;
          Alcotest.test_case "triangle coloring" `Quick test_all_different_coloring;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "value costs" `Quick test_value_costs_minimized;
          Alcotest.test_case "cost vs hard" `Quick test_cost_vs_hard;
          Alcotest.test_case "soft constraints" `Quick test_soft_constraints;
          Alcotest.test_case "soft never unsat" `Quick test_soft_never_unsat;
          Alcotest.test_case "multi-var scope" `Quick test_multi_scope_constraint;
          Alcotest.test_case "good-enough early stop" `Quick test_good_enough_stops;
          Alcotest.test_case "priority ordering" `Quick test_priority_ordering;
          Alcotest.test_case "node budget" `Quick test_node_budget_respected;
          Alcotest.test_case "empty domain" `Quick test_empty_domain_rejected;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
