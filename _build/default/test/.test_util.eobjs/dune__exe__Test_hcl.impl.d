test/test_hcl.ml: Alcotest List String Zodiac Zodiac_azure Zodiac_hcl Zodiac_iac Zodiac_util
