test/test_solver.ml: Alcotest List Printf Zodiac_iac Zodiac_solver
