test/test_cloud.ml: Alcotest List Option Printf Zodiac_cloud Zodiac_iac
