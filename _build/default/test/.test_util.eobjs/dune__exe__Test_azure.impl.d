test/test_azure.ml: Alcotest List Printf String Zodiac_azure Zodiac_iac
