test/test_validation.ml: Alcotest Lazy List Printf Zodiac_cloud Zodiac_corpus Zodiac_iac Zodiac_kb Zodiac_mining Zodiac_spec Zodiac_validation
