test/test_corpus.ml: Alcotest List String Zodiac_azure Zodiac_cloud Zodiac_corpus Zodiac_iac Zodiac_util
