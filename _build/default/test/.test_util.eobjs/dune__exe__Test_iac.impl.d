test/test_iac.ml: Alcotest List String Zodiac_iac
