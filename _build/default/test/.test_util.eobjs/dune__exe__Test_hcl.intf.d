test/test_hcl.mli:
