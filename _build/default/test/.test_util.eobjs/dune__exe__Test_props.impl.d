test/test_props.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Zodiac_cloud Zodiac_corpus Zodiac_iac Zodiac_solver Zodiac_spec Zodiac_util
