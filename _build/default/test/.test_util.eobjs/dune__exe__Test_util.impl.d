test/test_util.ml: Alcotest Array Fun List Option Printf QCheck QCheck_alcotest String Zodiac_util
