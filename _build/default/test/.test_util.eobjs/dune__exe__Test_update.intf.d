test/test_update.mli:
