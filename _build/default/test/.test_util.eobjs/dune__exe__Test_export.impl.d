test/test_export.ml: Alcotest Filename List String Sys Zodiac Zodiac_spec Zodiac_util
