test/test_iac.mli:
