test/test_spec.ml: Alcotest List String Zodiac_iac Zodiac_spec
