test/test_kb.mli:
