test/test_pipeline.ml: Alcotest Lazy List String Zodiac Zodiac_cloud Zodiac_corpus Zodiac_mining Zodiac_spec Zodiac_validation
