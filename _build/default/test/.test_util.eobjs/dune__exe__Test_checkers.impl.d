test/test_checkers.ml: Alcotest List Printf String Zodiac_checkers Zodiac_corpus Zodiac_iac
