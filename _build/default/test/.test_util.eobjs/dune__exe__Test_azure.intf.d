test/test_azure.mli:
