test/test_oracle.ml: Alcotest List String Zodiac_iac Zodiac_mining Zodiac_oracle Zodiac_spec
