test/test_update.ml: Alcotest List Zodiac Zodiac_cloud Zodiac_iac
