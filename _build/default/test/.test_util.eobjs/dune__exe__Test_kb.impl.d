test/test_kb.ml: Alcotest List Zodiac_corpus Zodiac_iac Zodiac_kb
