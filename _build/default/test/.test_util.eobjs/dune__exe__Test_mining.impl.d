test/test_mining.ml: Alcotest Lazy List Printf String Zodiac_corpus Zodiac_kb Zodiac_mining Zodiac_spec
