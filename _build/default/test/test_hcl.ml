(* Tests for the HCL subset: lexer, parser, printer, compiler. *)

module Ast = Zodiac_hcl.Ast
module Lexer = Zodiac_hcl.Lexer
module Parser = Zodiac_hcl.Parser
module Printer = Zodiac_hcl.Printer
module Compile = Zodiac_hcl.Compile
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program

let type_map = Zodiac_azure.Catalog.of_terraform

let parse_ok src =
  match Parser.parse_result src with
  | Ok file -> file
  | Error e -> Alcotest.failf "parse failed: %s" e

let compile_ok src =
  match Compile.compile_string ~type_map src with
  | Ok (prog, _) -> prog
  | Error e -> Alcotest.failf "compile failed: %s" e

(* ---------------- lexer --------------------------------------------- *)

let test_lex_basics () =
  let toks = Lexer.tokenize "a = 1\nb = \"x\"" in
  Alcotest.(check int) "token count" 8 (List.length toks)
(* a = 1 NL b = "x" EOF *)

let test_lex_comments () =
  let toks = Lexer.tokenize "# line\n// line2\n/* block\nspanning */ a" in
  let idents =
    List.filter (fun t -> match t.Lexer.tok with Lexer.Ident _ -> true | _ -> false) toks
  in
  Alcotest.(check int) "only ident a" 1 (List.length idents)

let test_lex_string_escapes () =
  match Lexer.tokenize {|x = "a\"b\nc"|} with
  | [ _; _; { Lexer.tok = Lexer.Str [ Ast.Lit s ]; _ }; _ ] ->
      Alcotest.(check string) "unescaped" "a\"b\nc" s
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_interpolation () =
  match Lexer.tokenize {|x = "${azurerm_subnet.a.id}"|} with
  | [ _; _; { Lexer.tok = Lexer.Str [ Ast.Interp segs ]; _ }; _ ] ->
      Alcotest.(check (list string)) "traversal" [ "azurerm_subnet"; "a"; "id" ] segs
  | _ -> Alcotest.fail "expected single interpolation"

let test_lex_errors () =
  List.iter
    (fun src ->
      match Lexer.tokenize src with
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected lex error for %S" src)
    [ {|x = "unterminated|}; "x = @" ]

let test_lex_negative_number () =
  match Lexer.tokenize "x = -5" with
  | [ _; _; { Lexer.tok = Lexer.Int_lit (-5); _ }; _ ] -> ()
  | _ -> Alcotest.fail "expected -5"

(* ---------------- parser -------------------------------------------- *)

let test_parse_resource_block () =
  let file =
    parse_ok
      {|
resource "azurerm_subnet" "a" {
  name = "frontend"
  cidr = "10.0.1.0/24"
}
|}
  in
  match file with
  | [ { Ast.btype = "resource"; labels = [ "azurerm_subnet"; "a" ]; body } ] ->
      Alcotest.(check int) "two attrs" 2 (List.length body.Ast.battrs)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_nested_blocks () =
  let file =
    parse_ok
      {|
resource "t" "x" {
  outer {
    inner = true
  }
  outer {
    inner = false
  }
}
|}
  in
  match file with
  | [ { Ast.body = { Ast.bblocks; _ }; _ } ] ->
      Alcotest.(check int) "two nested" 2 (List.length bblocks)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_lists_and_maps () =
  let file =
    parse_ok
      {|
resource "t" "x" {
  xs = [1, 2,
        3]
  m = { a = "b", c = 2 }
  empty = []
}
|}
  in
  match file with
  | [ { Ast.body = { Ast.battrs; _ }; _ } ] -> (
      match List.assoc "xs" battrs with
      | Ast.E_list items -> Alcotest.(check int) "3 items" 3 (List.length items)
      | _ -> Alcotest.fail "xs not a list")
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_traversal () =
  let file = parse_ok {|
resource "t" "x" {
  r = azurerm_subnet.a.id
}
|} in
  match file with
  | [ { Ast.body = { Ast.battrs = [ (_, Ast.E_traversal segs) ]; _ }; _ } ] ->
      Alcotest.(check (list string)) "segments" [ "azurerm_subnet"; "a"; "id" ] segs
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_index_traversal () =
  let file = parse_ok {|
resource "t" "x" {
  r = azurerm_x.a.ids[0]
}
|} in
  match file with
  | [ { Ast.body = { Ast.battrs = [ (_, Ast.E_traversal segs) ]; _ }; _ } ] ->
      Alcotest.(check (list string)) "segments" [ "azurerm_x"; "a"; "ids"; "0" ] segs
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" src)
    [
      "resource {";
      "resource \"a\" \"b\" { x = }";
      "resource \"a\" \"b\" { x 1 }";
      "= 3";
    ]

(* ---------------- printer roundtrip --------------------------------- *)

let test_print_parse_roundtrip () =
  let src =
    {|
resource "azurerm_virtual_network" "net" {
  name          = "n"
  address_space = ["10.0.0.0/16"]
  tags          = { env = "prod" }
}

resource "azurerm_subnet" "s" {
  name     = "x"
  vpc_name = azurerm_virtual_network.net.name
  cidr     = "10.0.1.0/24"
  delegation {
    name    = "d"
    service = "Microsoft.Web/serverFarms"
  }
}
|}
  in
  let file = parse_ok src in
  let printed = Printer.file_to_string file in
  let file2 = parse_ok printed in
  (* compare through compilation, which normalizes formatting *)
  let p1, _ = Compile.compile_file ~type_map file in
  let p2, _ = Compile.compile_file ~type_map file2 in
  Alcotest.(check bool) "same program" true (Program.equal p1 p2)

(* ---------------- compile ------------------------------------------- *)

let test_compile_references () =
  let prog =
    compile_ok
      {|
resource "azurerm_virtual_network" "n" {
  name = "vn"
}
resource "azurerm_subnet" "s" {
  name     = "sub"
  vpc_name = azurerm_virtual_network.n.name
  cidr     = "10.0.0.0/24"
}
|}
  in
  match Program.find prog { Resource.rtype = "SUBNET"; rname = "s" } with
  | Some r -> (
      match Resource.get r "vpc_name" with
      | Value.Ref { Value.rtype = "VPC"; rname = "n"; attr = "name" } -> ()
      | v -> Alcotest.failf "unexpected %s" (Value.to_string v))
  | None -> Alcotest.fail "subnet missing"

let test_compile_interpolation_ref () =
  let prog =
    compile_ok
      {|
resource "azurerm_subnet" "s" {
  name     = "sub"
  vpc_name = "${azurerm_virtual_network.n.name}"
  cidr     = "10.0.0.0/24"
}
|}
  in
  match Program.resources prog with
  | [ r ] -> (
      match Resource.get r "vpc_name" with
      | Value.Ref _ -> ()
      | v -> Alcotest.failf "expected ref, got %s" (Value.to_string v))
  | _ -> Alcotest.fail "one resource expected"

let test_compile_variables () =
  let prog =
    compile_ok
      {|
variable "region" {
  default = "eastus"
}
resource "azurerm_public_ip" "p" {
  name     = "ip"
  location = var.region
  allocation = "Static"
}
|}
  in
  match Program.resources prog with
  | [ r ] ->
      Alcotest.(check bool) "substituted" true
        (Resource.get r "location" = Value.Str "eastus")
  | _ -> Alcotest.fail "one resource expected"

let test_compile_unknown_type_diagnostic () =
  match
    Compile.compile_string ~type_map
      {|
resource "azurerm_something_new" "x" {
  name = "n"
}
|}
  with
  | Ok (prog, diags) ->
      Alcotest.(check int) "kept with literal type" 1 (Program.size prog);
      Alcotest.(check bool) "diagnostic emitted" true (diags <> [])
  | Error e -> Alcotest.failf "unexpected failure %s" e

let test_compile_repeated_blocks_to_list () =
  let prog =
    compile_ok
      {|
resource "azurerm_network_security_group" "sg" {
  name = "n"
  location = "eastus"
  rule {
    name = "a"
    priority = 100
  }
  rule {
    name = "b"
    priority = 200
  }
}
|}
  in
  match Program.resources prog with
  | [ r ] -> (
      match Resource.attr r "rule" with
      | Some (Value.List items) -> Alcotest.(check int) "two rules" 2 (List.length items)
      | _ -> Alcotest.fail "rule should be a list")
  | _ -> Alcotest.fail "one resource expected"

let test_compile_mixed_template_degrades () =
  let prog =
    compile_ok
      {|
resource "azurerm_subnet" "s" {
  name = "prefix-${azurerm_virtual_network.n.name}"
  cidr = "10.0.0.0/24"
  vpc_name = azurerm_virtual_network.n.name
}
|}
  in
  match Program.resources prog with
  | [ r ] -> (
      match Resource.get r "name" with
      | Value.Str s ->
          Alcotest.(check bool) "rendered textually" true
            (String.length s > String.length "prefix-")
      | v -> Alcotest.failf "expected string, got %s" (Value.to_string v))
  | _ -> Alcotest.fail "one resource expected"

let test_decompile_roundtrip () =
  (* program -> HCL -> program is stable *)
  let prog =
    compile_ok
      {|
resource "azurerm_network_interface" "nic" {
  name     = "n"
  location = "eastus"
  ip_config {
    name                  = "internal"
    subnet_id             = azurerm_subnet.s.id
    private_ip_allocation = "Dynamic"
  }
}
resource "azurerm_subnet" "s" {
  name = "sub"
  cidr = "10.0.0.0/24"
  vpc_name = "net"
}
|}
  in
  let hcl = Compile.program_to_hcl ~type_name:Zodiac_azure.Catalog.to_terraform prog in
  let prog2 = compile_ok hcl in
  Alcotest.(check bool) "stable" true (Program.equal prog prog2)

(* ---------------- plan JSON ----------------------------------------- *)

module Plan = Zodiac_hcl.Plan

let tf_name = Zodiac_azure.Catalog.to_terraform

let test_plan_roundtrip () =
  let prog =
    compile_ok
      {|
resource "azurerm_virtual_network" "n" {
  name = "vn"
  location = "eastus"
  address_space = ["10.0.0.0/16"]
}
resource "azurerm_subnet" "s" {
  name     = "sub"
  vpc_name = azurerm_virtual_network.n.name
  cidr     = "10.0.0.0/24"
}
resource "azurerm_linux_virtual_machine" "vm" {
  name = "m"
  location = "eastus"
  sku = "Standard_B2s"
  nic_ids = [azurerm_network_interface.a.id, azurerm_network_interface.b.id]
  os_disk {
    name = "osd"
    caching = "ReadWrite"
    storage_type = "Standard_LRS"
  }
}
resource "azurerm_network_interface" "a" {
  name = "a"
  location = "eastus"
  ip_config {
    name = "c"
    subnet_id = azurerm_subnet.s.id
    private_ip_allocation = "Dynamic"
  }
}
resource "azurerm_network_interface" "b" {
  name = "b"
  location = "eastus"
  ip_config {
    name = "c"
    subnet_id = azurerm_subnet.s.id
    private_ip_allocation = "Dynamic"
  }
}
|}
  in
  let text = Plan.to_string ~type_name:tf_name prog in
  match Plan.of_string ~type_map text with
  | Ok prog2 ->
      Alcotest.(check bool) "round trip" true (Program.equal prog prog2);
      (* the resource graph survives *)
      let g1 = Zodiac_iac.Graph.build prog in
      let g2 = Zodiac_iac.Graph.build prog2 in
      Alcotest.(check int) "same edges"
        (List.length (Zodiac_iac.Graph.edges g1))
        (List.length (Zodiac_iac.Graph.edges g2))
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_plan_shape () =
  let prog = compile_ok {|
resource "azurerm_public_ip" "p" {
  name = "pip"
  location = "eastus"
  allocation = "Static"
}
|} in
  let json = Plan.to_json ~type_name:tf_name prog in
  let open Zodiac_util.Json in
  (* terraform-shaped top level *)
  Alcotest.(check (option string)) "format_version" (Some "1.2")
    (string_value (member "format_version" json));
  let planned =
    member "planned_values" json |> member "root_module" |> member "resources"
    |> to_list
  in
  Alcotest.(check int) "one planned resource" 1 (List.length planned);
  Alcotest.(check (option string)) "address" (Some "azurerm_public_ip.p")
    (string_value (member "address" (List.hd planned)))

let test_plan_refs_null_in_values () =
  let prog = compile_ok {|
resource "azurerm_subnet" "s" {
  name = "x"
  cidr = "10.0.0.0/24"
  vpc_name = azurerm_virtual_network.n.name
}
resource "azurerm_virtual_network" "n" {
  name = "vn"
  location = "eastus"
  address_space = ["10.0.0.0/16"]
}
|} in
  let json = Plan.to_json ~type_name:tf_name prog in
  let open Zodiac_util.Json in
  let subnet_values =
    member "planned_values" json |> member "root_module" |> member "resources"
    |> to_list
    |> List.find (fun r -> string_value (member "name" r) = Some "s")
    |> member "values"
  in
  Alcotest.(check bool) "reference unknown at plan time" true
    (member "vpc_name" subnet_values = Null)

let test_plan_rejects_garbage () =
  match Plan.of_string ~type_map "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty plan accepted"

let test_registry_examples_compile () =
  List.iter
    (fun src ->
      match Zodiac.Registry.compile src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "registry example failed: %s" e)
    [
      Zodiac.Registry.appgw_assoc_buggy;
      Zodiac.Registry.appgw_assoc_fixed;
      Zodiac.Registry.mssql_db_buggy;
      Zodiac.Registry.mssql_db_fixed;
      Zodiac.Registry.quickstart_vm;
    ]

let () =
  Alcotest.run "hcl"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
          Alcotest.test_case "interpolation" `Quick test_lex_interpolation;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "negative numbers" `Quick test_lex_negative_number;
        ] );
      ( "parser",
        [
          Alcotest.test_case "resource block" `Quick test_parse_resource_block;
          Alcotest.test_case "nested blocks" `Quick test_parse_nested_blocks;
          Alcotest.test_case "lists and maps" `Quick test_parse_lists_and_maps;
          Alcotest.test_case "traversal" `Quick test_parse_traversal;
          Alcotest.test_case "indexed traversal" `Quick test_parse_index_traversal;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "printer",
        [ Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip ] );
      ( "plan",
        [
          Alcotest.test_case "roundtrip" `Quick test_plan_roundtrip;
          Alcotest.test_case "terraform shape" `Quick test_plan_shape;
          Alcotest.test_case "refs null in planned values" `Quick test_plan_refs_null_in_values;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
        ] );
      ( "compile",
        [
          Alcotest.test_case "references" `Quick test_compile_references;
          Alcotest.test_case "interpolated ref" `Quick test_compile_interpolation_ref;
          Alcotest.test_case "variables" `Quick test_compile_variables;
          Alcotest.test_case "unknown types" `Quick test_compile_unknown_type_diagnostic;
          Alcotest.test_case "repeated blocks" `Quick test_compile_repeated_blocks_to_list;
          Alcotest.test_case "mixed templates" `Quick test_compile_mixed_template_degrades;
          Alcotest.test_case "decompile roundtrip" `Quick test_decompile_roundtrip;
          Alcotest.test_case "registry examples" `Quick test_registry_examples_compile;
        ] );
    ]
