(* Sanity tests for the Azure provider catalogue. *)

module Catalog = Zodiac_azure.Catalog
module Skus = Zodiac_azure.Skus
module Regions = Zodiac_azure.Regions
module Schema = Zodiac_iac.Schema

let test_catalog_size () =
  Alcotest.(check bool) "at least 52 resource types" true
    (List.length Catalog.schemas >= 52)

let test_catalog_unique_names () =
  let names = Catalog.type_names in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_catalog_lookup () =
  Alcotest.(check bool) "SUBNET" true (Catalog.find "SUBNET" <> None);
  Alcotest.(check bool) "unknown" true (Catalog.find "NOPE" = None);
  match Catalog.find_exn "VM" with
  | schema -> Alcotest.(check string) "vm" "VM" schema.Schema.type_name

let test_terraform_mapping_bijective () =
  List.iter
    (fun canonical ->
      let tf = Catalog.to_terraform canonical in
      Alcotest.(check (option string))
        (Printf.sprintf "roundtrip %s" canonical)
        (Some canonical) (Catalog.of_terraform tf))
    Catalog.type_names

let test_every_type_mapped () =
  List.iter
    (fun canonical ->
      let tf = Catalog.to_terraform canonical in
      Alcotest.(check bool)
        (Printf.sprintf "%s has azurerm name" canonical)
        true
        (String.length tf > 8 && String.sub tf 0 8 = "azurerm_"))
    Catalog.type_names

let test_vm_is_widest () =
  let vm = Schema.attr_count (Catalog.find_exn "VM") in
  Alcotest.(check bool) "vm has 40+ attributes" true (vm >= 40);
  List.iter
    (fun schema ->
      Alcotest.(check bool)
        (schema.Schema.type_name ^ " narrower than VM")
        true
        (Schema.attr_count schema <= vm))
    Catalog.schemas

let test_attribute_count_spread () =
  (* Figure 7a needs types across the 10..80 attribute spectrum *)
  let counts = List.map Schema.attr_count Catalog.schemas in
  Alcotest.(check bool) "some small types" true (List.exists (fun c -> c < 10) counts);
  Alcotest.(check bool) "some large types" true (List.exists (fun c -> c > 40) counts)

let test_required_have_no_default () =
  List.iter
    (fun schema ->
      List.iter
        (fun (path, (a : Schema.attr)) ->
          if a.Schema.req = Schema.Required then
            Alcotest.(check bool)
              (Printf.sprintf "%s.%s required without default" schema.Schema.type_name path)
              true (a.Schema.default = None))
        (Schema.leaf_paths schema))
    Catalog.schemas

let test_refs_to_targets_exist () =
  List.iter
    (fun schema ->
      List.iter
        (fun (path, (a : Schema.attr)) ->
          List.iter
            (fun (target_type, target_attr) ->
              match Catalog.find target_type with
              | None ->
                  Alcotest.failf "%s.%s references unknown type %s"
                    schema.Schema.type_name path target_type
              | Some target ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s.%s -> %s.%s target attr exists"
                       schema.Schema.type_name path target_type target_attr)
                    true
                    (Schema.find_attr target target_attr <> None))
            a.Schema.refs_to)
        (Schema.leaf_paths schema))
    Catalog.schemas

let test_slow_create_types () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) (ty ^ " slow") true (Catalog.find_exn ty).Schema.slow_create)
    [ "GW"; "FW"; "APPGW"; "AKS" ]

let test_vm_skus () =
  Alcotest.(check bool) "30+ skus" true (List.length Skus.vm_skus >= 30);
  List.iter
    (fun (sku : Skus.vm_sku) ->
      Alcotest.(check bool) (sku.Skus.vm_name ^ " nics>=1") true (sku.Skus.max_nics >= 1);
      Alcotest.(check bool) (sku.Skus.vm_name ^ " disks>=1") true
        (sku.Skus.max_data_disks >= 1))
    Skus.vm_skus;
  Alcotest.(check bool) "lookup" true (Skus.find_vm "Standard_B1s" <> None);
  Alcotest.(check bool) "missing" true (Skus.find_vm "Standard_Z99" = None)

let test_vm_sku_enum_matches_schema () =
  match Schema.enum_values (Catalog.find_exn "VM") "sku" with
  | Some values ->
      Alcotest.(check (list string)) "schema enum = sku table" Skus.vm_sku_names values
  | None -> Alcotest.fail "VM.sku should be an enum"

let test_gw_skus () =
  Alcotest.(check bool) "basic no active-active" true
    (match Skus.find_gw "Basic" with
    | Some sku -> not sku.Skus.supports_active_active
    | None -> false);
  Alcotest.(check bool) "vpngw1 supports" true
    (match Skus.find_gw "VpnGw1" with
    | Some sku -> sku.Skus.supports_active_active
    | None -> false)

let test_sa_replications () =
  Alcotest.(check bool) "GZRS not premium" true
    (not (List.mem "GZRS" Skus.sa_premium_replications));
  Alcotest.(check bool) "LRS premium ok" true (List.mem "LRS" Skus.sa_premium_replications)

let test_regions () =
  Alcotest.(check bool) "30+ regions" true (List.length Regions.all >= 30);
  Alcotest.(check bool) "eastus" true (Regions.is_region "eastus");
  Alcotest.(check bool) "not a region" false (Regions.is_region "mars-north");
  Alcotest.(check (option string)) "pairing" (Some "westus") (Regions.paired "eastus");
  (* pairs point at real regions *)
  List.iter
    (fun r ->
      match Regions.paired r with
      | Some p -> Alcotest.(check bool) (r ^ " pair exists") true (Regions.is_region p)
      | None -> Alcotest.fail "every region is paired")
    Regions.all

let test_reserved_subnets () =
  Alcotest.(check (option string)) "gateway subnet" (Some "GW")
    (List.assoc_opt "GatewaySubnet" Catalog.reserved_subnet_names);
  List.iter
    (fun (_, ty) ->
      Alcotest.(check bool) (ty ^ " exists") true (Catalog.find ty <> None))
    Catalog.reserved_subnet_names

let () =
  Alcotest.run "azure"
    [
      ( "catalog",
        [
          Alcotest.test_case "size" `Quick test_catalog_size;
          Alcotest.test_case "unique names" `Quick test_catalog_unique_names;
          Alcotest.test_case "lookup" `Quick test_catalog_lookup;
          Alcotest.test_case "terraform mapping" `Quick test_terraform_mapping_bijective;
          Alcotest.test_case "every type mapped" `Quick test_every_type_mapped;
          Alcotest.test_case "vm widest" `Quick test_vm_is_widest;
          Alcotest.test_case "attr count spread" `Quick test_attribute_count_spread;
          Alcotest.test_case "required no default" `Quick test_required_have_no_default;
          Alcotest.test_case "reference targets exist" `Quick test_refs_to_targets_exist;
          Alcotest.test_case "slow types" `Quick test_slow_create_types;
          Alcotest.test_case "reserved subnets" `Quick test_reserved_subnets;
        ] );
      ( "skus",
        [
          Alcotest.test_case "vm table" `Quick test_vm_skus;
          Alcotest.test_case "vm enum consistency" `Quick test_vm_sku_enum_matches_schema;
          Alcotest.test_case "gw table" `Quick test_gw_skus;
          Alcotest.test_case "sa replications" `Quick test_sa_replications;
        ] );
      ("regions", [ Alcotest.test_case "table" `Quick test_regions ]);
    ]
