(* Tests for the IaC resource model: values, resources, programs,
   graphs, schemas. *)

module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Schema = Zodiac_iac.Schema

let v_str s = Value.Str s

(* ---------------- Value --------------------------------------------- *)

let test_value_refs () =
  let v =
    Value.List
      [
        Value.reference "SUBNET" "a" "id";
        Value.Block [ ("x", Value.reference "VPC" "b" "name") ];
        Value.Int 3;
      ]
  in
  Alcotest.(check int) "two refs" 2 (List.length (Value.refs v))

let test_value_map_refs () =
  let v = Value.List [ Value.reference "A" "x" "id" ] in
  let v' =
    Value.map_refs (fun r -> Value.Ref { r with Value.rname = "y" }) v
  in
  match Value.refs v' with
  | [ { Value.rname = "y"; _ } ] -> ()
  | _ -> Alcotest.fail "rename failed"

let test_value_json_roundtrip () =
  let samples =
    [
      Value.Null;
      Value.Bool false;
      Value.Int 7;
      Value.Str "x";
      Value.List [ Value.Str "a"; Value.reference "T" "n" "attr" ];
      Value.Block [ ("k", Value.Block [ ("n", Value.Int 1) ]) ];
      Value.reference "SUBNET" "a" "id";
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "roundtrip" true
        (Value.equal v (Value.of_json (Value.to_json v))))
    samples

let test_value_ref_dotted_attr_roundtrip () =
  let v = Value.reference "VM" "a" "os_disk.name" in
  Alcotest.(check bool) "dotted ref roundtrips" true
    (Value.equal v (Value.of_json (Value.to_json v)))

let test_value_cidr () =
  Alcotest.(check bool) "parses" true (Value.cidr (v_str "10.0.0.0/8") <> None);
  Alcotest.(check bool) "non-cidr" true (Value.cidr (v_str "hello") = None);
  Alcotest.(check bool) "non-string" true (Value.cidr (Value.Int 3) = None)

(* ---------------- Resource ------------------------------------------ *)

let sg =
  Resource.make "SG" "fw"
    [
      ("name", v_str "nsg");
      ( "rule",
        Value.List
          [
            Value.Block [ ("name", v_str "r0"); ("priority", Value.Int 100) ];
            Value.Block [ ("name", v_str "r1"); ("priority", Value.Int 200) ];
          ] );
      ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "a" "id") ]);
    ]

let test_resource_get () =
  Alcotest.(check bool) "top level" true (Resource.get sg "name" = v_str "nsg");
  Alcotest.(check bool) "nested" true
    (Resource.get sg "ip_config.subnet_id" = Value.reference "SUBNET" "a" "id");
  Alcotest.(check bool) "through list takes first" true
    (Resource.get sg "rule.name" = v_str "r0");
  Alcotest.(check bool) "absent is null" true (Value.is_null (Resource.get sg "zzz"))

let test_resource_get_all_fanout () =
  Alcotest.(check int) "fan out over rules" 2
    (List.length (Resource.get_all sg "rule.name"))

let test_resource_set () =
  let r = Resource.set sg "name" (v_str "new") in
  Alcotest.(check bool) "updated" true (Resource.get r "name" = v_str "new");
  let r = Resource.set sg "ip_config.subnet_id" Value.Null in
  Alcotest.(check bool) "nested nulled" true
    (Value.is_null (Resource.get r "ip_config.subnet_id"));
  let r = Resource.set sg "fresh_attr" (Value.Int 1) in
  Alcotest.(check bool) "added" true (Resource.get r "fresh_attr" = Value.Int 1);
  (* removing a top-level attr by setting Null *)
  let r = Resource.set sg "name" Value.Null in
  Alcotest.(check bool) "removed" true (Resource.attr r "name" = None)

let test_resource_references () =
  let refs = Resource.references sg in
  Alcotest.(check int) "one ref" 1 (List.length refs);
  let path, reference = List.hd refs in
  Alcotest.(check string) "path" "ip_config.subnet_id" path;
  Alcotest.(check string) "target type" "SUBNET" reference.Value.rtype

let test_resource_rename_refs () =
  let r =
    Resource.rename_refs
      ~old_id:{ Resource.rtype = "SUBNET"; rname = "a" }
      ~new_id:{ Resource.rtype = "SUBNET"; rname = "b" }
      sg
  in
  match Resource.references r with
  | [ (_, { Value.rname = "b"; _ }) ] -> ()
  | _ -> Alcotest.fail "rename missed the reference"

let test_resource_attr_paths () =
  let paths = Resource.attr_paths sg in
  Alcotest.(check bool) "has rule.priority" true (List.mem "rule.priority" paths);
  Alcotest.(check bool) "has ip_config.subnet_id" true
    (List.mem "ip_config.subnet_id" paths);
  Alcotest.(check bool) "no duplicates" true
    (List.length paths = List.length (List.sort_uniq compare paths))

let test_resource_json_roundtrip () =
  match Resource.of_json (Resource.to_json sg) with
  | Some r ->
      Alcotest.(check bool) "same id" true
        (Resource.equal_id (Resource.id r) (Resource.id sg))
  | None -> Alcotest.fail "roundtrip failed"

(* ---------------- Program ------------------------------------------- *)

let subnet = Resource.make "SUBNET" "a" [ ("name", v_str "s") ]
let nic =
  Resource.make "NIC" "n"
    [ ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "a" "id") ]) ]

let prog = Program.of_resources [ subnet; nic ]

let test_program_basics () =
  Alcotest.(check int) "size" 2 (Program.size prog);
  Alcotest.(check bool) "mem" true (Program.mem prog (Resource.id subnet));
  Alcotest.(check bool) "find" true (Program.find prog (Resource.id nic) <> None);
  Alcotest.(check (list string)) "types" [ "SUBNET"; "NIC" ] (Program.types prog)

let test_program_add_replaces () =
  let subnet' = Resource.set subnet "name" (v_str "other") in
  let p = Program.add prog subnet' in
  Alcotest.(check int) "size unchanged" 2 (Program.size p);
  match Program.find p (Resource.id subnet) with
  | Some r -> Alcotest.(check bool) "replaced" true (Resource.get r "name" = v_str "other")
  | None -> Alcotest.fail "lost resource"

let test_program_remove_update () =
  let p = Program.remove prog (Resource.id nic) in
  Alcotest.(check int) "removed" 1 (Program.size p);
  let p = Program.update prog (Resource.id subnet) (fun r -> Resource.set r "x" (Value.Int 1)) in
  match Program.find p (Resource.id subnet) with
  | Some r -> Alcotest.(check bool) "updated" true (Resource.get r "x" = Value.Int 1)
  | None -> Alcotest.fail "lost resource"

let test_program_fresh_name () =
  let name = Program.fresh_name prog "SUBNET" in
  Alcotest.(check bool) "unused" true
    (not (Program.mem prog { Resource.rtype = "SUBNET"; rname = name }))

let test_program_dangling () =
  let orphan =
    Resource.make "VM" "v" [ ("nic_ids", Value.List [ Value.reference "NIC" "ghost" "id" ]) ]
  in
  let p = Program.add prog orphan in
  Alcotest.(check int) "one dangling" 1 (List.length (Program.dangling_refs p));
  Alcotest.(check int) "none in base" 0 (List.length (Program.dangling_refs prog))

let test_program_json_roundtrip () =
  match Program.of_json (Program.to_json prog) with
  | Some p -> Alcotest.(check bool) "equal" true (Program.equal p prog)
  | None -> Alcotest.fail "roundtrip failed"

(* ---------------- Graph --------------------------------------------- *)

let vm =
  Resource.make "VM" "v"
    [ ("nic_ids", Value.List [ Value.reference "NIC" "n" "id" ]) ]

let graph = Graph.build (Program.of_resources [ subnet; nic; vm ])

let id r = Resource.id r

let test_graph_edges () =
  Alcotest.(check int) "two edges" 2 (List.length (Graph.edges graph));
  Alcotest.(check bool) "nic->subnet" true
    (Graph.conn graph ~src:(id nic) ~src_attr:"ip_config.subnet_id" ~dst:(id subnet)
       ~dst_attr:"id");
  Alcotest.(check bool) "vm->nic" true (Graph.connected graph (id vm) (id nic))

let test_graph_path () =
  Alcotest.(check bool) "vm reaches subnet" true (Graph.path graph (id vm) (id subnet));
  Alcotest.(check bool) "subnet does not reach vm" false
    (Graph.path graph (id subnet) (id vm));
  Alcotest.(check bool) "no self path" false (Graph.path graph (id vm) (id vm))

let test_graph_degrees () =
  Alcotest.(check int) "vm indegree(NIC)=1" 1
    (Graph.indegree graph (id vm) (Graph.Type "NIC"));
  Alcotest.(check int) "nic outdegree(VM)=1" 1
    (Graph.outdegree graph (id nic) (Graph.Type "VM"));
  Alcotest.(check int) "subnet outdegree(!GW)=1" 1
    (Graph.outdegree graph (id subnet) (Graph.Not_type "GW"));
  Alcotest.(check int) "subnet outdegree(GW)=0" 0
    (Graph.outdegree graph (id subnet) (Graph.Type "GW"))

let test_graph_reachability () =
  Alcotest.(check int) "vm reaches 2" 2 (List.length (Graph.reachable_from graph (id vm)));
  Alcotest.(check int) "subnet reached-by 2" 2 (List.length (Graph.reaching graph (id subnet)))

let test_graph_topo_order () =
  let order = Graph.topological_order graph in
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: rest -> if Resource.equal_id x y then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "subnet before nic" true (pos (id subnet) < pos (id nic));
  Alcotest.(check bool) "nic before vm" true (pos (id nic) < pos (id vm))

let test_graph_cycle_order_total () =
  (* a reference cycle still yields a total order *)
  let a = Resource.make "DISK" "a" [ ("source_id", Value.reference "DISK" "b" "id") ] in
  let b = Resource.make "DISK" "b" [ ("source_id", Value.reference "DISK" "a" "id") ] in
  let g = Graph.build (Program.of_resources [ a; b ]) in
  Alcotest.(check int) "both ordered" 2 (List.length (Graph.topological_order g))

let test_graph_to_dot () =
  let dot = Graph.to_dot graph in
  let has needle =
    let n = String.length needle and m = String.length dot in
    let rec go i = i + n <= m && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph iac");
  Alcotest.(check bool) "node" true (has "\"SUBNET.a\"");
  Alcotest.(check bool) "edge label" true (has "ip_config.subnet_id")

let test_graph_dangling_no_edge () =
  let lone =
    Resource.make "NIC" "x"
      [ ("ip_config", Value.Block [ ("subnet_id", Value.reference "SUBNET" "ghost" "id") ]) ]
  in
  let g = Graph.build (Program.of_resources [ lone ]) in
  Alcotest.(check int) "no edges" 0 (List.length (Graph.edges g))

(* ---------------- Schema -------------------------------------------- *)

let schema =
  Schema.make "T"
    [
      Schema.attr_v ~req:Schema.Required "name" Schema.T_string;
      Schema.attr_v "blk"
        (Schema.T_block
           [ Schema.attr_v ~req:Schema.Required "inner" Schema.T_int ]);
      Schema.attr_v ~format:(Schema.Enum [ "a"; "b" ]) "mode" Schema.T_string;
      Schema.attr_v "items"
        (Schema.T_list (Schema.T_block [ Schema.attr_v "x" Schema.T_string ]));
    ]

let test_schema_lookup () =
  Alcotest.(check bool) "top" true (Schema.find_attr schema "name" <> None);
  Alcotest.(check bool) "nested" true (Schema.find_attr schema "blk.inner" <> None);
  Alcotest.(check bool) "list nested" true (Schema.find_attr schema "items.x" <> None);
  Alcotest.(check bool) "missing" true (Schema.find_attr schema "nope" = None)

let test_schema_counts () =
  Alcotest.(check int) "attr count incl nested" 6 (Schema.attr_count schema);
  Alcotest.(check int) "required top-level" 1 (List.length (Schema.required_attrs schema))

let test_schema_leaf_paths () =
  let paths = List.map fst (Schema.leaf_paths schema) in
  Alcotest.(check bool) "blk.inner leaf" true (List.mem "blk.inner" paths);
  Alcotest.(check bool) "blk itself not leaf" true (not (List.mem "blk" paths))

let test_schema_enum () =
  Alcotest.(check (option (list string))) "enum" (Some [ "a"; "b" ])
    (Schema.enum_values schema "mode");
  Alcotest.(check bool) "no enum" true (Schema.enum_values schema "name" = None)

let () =
  Alcotest.run "iac"
    [
      ( "value",
        [
          Alcotest.test_case "refs" `Quick test_value_refs;
          Alcotest.test_case "map_refs" `Quick test_value_map_refs;
          Alcotest.test_case "json roundtrip" `Quick test_value_json_roundtrip;
          Alcotest.test_case "dotted ref roundtrip" `Quick test_value_ref_dotted_attr_roundtrip;
          Alcotest.test_case "cidr" `Quick test_value_cidr;
        ] );
      ( "resource",
        [
          Alcotest.test_case "get" `Quick test_resource_get;
          Alcotest.test_case "get_all fanout" `Quick test_resource_get_all_fanout;
          Alcotest.test_case "set" `Quick test_resource_set;
          Alcotest.test_case "references" `Quick test_resource_references;
          Alcotest.test_case "rename refs" `Quick test_resource_rename_refs;
          Alcotest.test_case "attr paths" `Quick test_resource_attr_paths;
          Alcotest.test_case "json roundtrip" `Quick test_resource_json_roundtrip;
        ] );
      ( "program",
        [
          Alcotest.test_case "basics" `Quick test_program_basics;
          Alcotest.test_case "add replaces" `Quick test_program_add_replaces;
          Alcotest.test_case "remove/update" `Quick test_program_remove_update;
          Alcotest.test_case "fresh name" `Quick test_program_fresh_name;
          Alcotest.test_case "dangling refs" `Quick test_program_dangling;
          Alcotest.test_case "json roundtrip" `Quick test_program_json_roundtrip;
        ] );
      ( "graph",
        [
          Alcotest.test_case "edges" `Quick test_graph_edges;
          Alcotest.test_case "path" `Quick test_graph_path;
          Alcotest.test_case "degrees" `Quick test_graph_degrees;
          Alcotest.test_case "reachability" `Quick test_graph_reachability;
          Alcotest.test_case "topological order" `Quick test_graph_topo_order;
          Alcotest.test_case "cycles still ordered" `Quick test_graph_cycle_order_total;
          Alcotest.test_case "dangling refs make no edges" `Quick test_graph_dangling_no_edge;
          Alcotest.test_case "dot export" `Quick test_graph_to_dot;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "counts" `Quick test_schema_counts;
          Alcotest.test_case "leaf paths" `Quick test_schema_leaf_paths;
          Alcotest.test_case "enum values" `Quick test_schema_enum;
        ] );
    ]
