module Check = Zodiac_spec.Check
module Value = Zodiac_iac.Value
module Graph = Zodiac_iac.Graph
module Skus = Zodiac_azure.Skus
module Prng = Zodiac_util.Prng
module Candidate = Zodiac_mining.Candidate

type t = { rng : Prng.t; error_rate : float; mutable queries : int }

let create ?(error_rate = 0.05) seed = { rng = Prng.create seed; error_rate; queries = 0 }

type verdict = Refined of Check.t | Unsupported

(* ---- the "documentation" ------------------------------------------- *)

(* Documented service limits, looked up from the condition
   (type, attribute, value) and the constrained quantity. [`Deg] is a
   degree bound towards a peer type; [`Num] a numeric attribute bound. *)
type quantity = Deg of [ `In | `Out ] * string | Num of string

let documented_limit ~subject ~cond ~(quantity : quantity) ~op =
  let vm_sku name = Skus.find_vm name in
  let gw_sku name = Skus.find_gw name in
  match (subject, cond, quantity, op) with
  | "VM", Some ("sku", Value.Str sku), Deg (`In, "NIC"), Check.Le ->
      Option.map (fun (s : Skus.vm_sku) -> s.Skus.max_nics) (vm_sku sku)
  | "VM", Some ("sku", Value.Str sku), Deg (`Out, "ATTACH"), Check.Le ->
      Option.map (fun (s : Skus.vm_sku) -> s.Skus.max_data_disks) (vm_sku sku)
  | "GW", Some ("sku", Value.Str sku), Deg (`Out, "TUNNEL"), Check.Le ->
      Option.map (fun (s : Skus.gw_sku) -> s.Skus.max_tunnels) (gw_sku sku)
  | "REDIS", Some ("family", Value.Str "C"), Num "capacity", Check.Le -> Some 6
  | "REDIS", Some ("family", Value.Str "P"), Num "capacity", Check.Le -> Some 5
  | "REDIS", Some ("family", Value.Str "P"), Num "capacity", Check.Ge -> Some 1
  | "KV", _, Num "soft_delete_retention_days", Check.Le -> Some 90
  | "KV", _, Num "soft_delete_retention_days", Check.Ge -> Some 7
  | "EVENTHUB", _, Num "partition_count", Check.Le -> Some 32
  | "EVENTHUB", _, Num "partition_count", Check.Ge -> Some 1
  | "SG", _, Num "rule.priority", Check.Ge -> Some 100
  | "SG", _, Num "rule.priority", Check.Le -> Some 4096
  | "APPGW", Some ("sku.tier", Value.Str "Standard"), Num "sku.capacity", Check.Le ->
      Some 32
  | "APPGW", Some ("sku.tier", Value.Str "Standard_v2"), Num "sku.capacity", Check.Le
    ->
      Some 125
  | "SQLDB", Some ("sku", Value.Str "Basic"), Num "max_size_gb", Check.Le -> Some 2
  | "LOGWS", Some ("sku", Value.Str "Free"), Num "retention_in_days", Check.Le ->
      Some 7
  | "LOGWS", _, Num "retention_in_days", Check.Le -> Some 730
  | "LOGWS", _, Num "retention_in_days", Check.Ge -> Some 7
  | "IP", _, Num "idle_timeout_in_minutes", Check.Le -> Some 30
  | "IP", _, Num "idle_timeout_in_minutes", Check.Ge -> Some 4
  | "NAT", _, Num "idle_timeout_in_minutes", Check.Le -> Some 120
  | "NAT", _, Num "idle_timeout_in_minutes", Check.Ge -> Some 4
  | "AVSET", _, Num "fault_domain_count", Check.Le -> Some 3
  | "AVSET", _, Num "fault_domain_count", Check.Ge -> Some 1
  | "AVSET", _, Num "update_domain_count", Check.Le -> Some 20
  | "AVSET", _, Num "update_domain_count", Check.Ge -> Some 1
  | "AKS", _, Num "default_node_pool.node_count", Check.Le -> Some 1000
  | "AKS", _, Num "default_node_pool.node_count", Check.Ge -> Some 1
  | "AKS", _, Num "default_node_pool.max_pods", Check.Le -> Some 250
  | "AKS", _, Num "default_node_pool.max_pods", Check.Ge -> Some 10
  | "MYSQL", _, Num "backup_retention_days", Check.Le -> Some 35
  | "MYSQL", _, Num "backup_retention_days", Check.Ge -> Some 1
  | "APPINS", _, Num "retention_in_days", Check.Le -> Some 730
  | "APPINS", _, Num "retention_in_days", Check.Ge -> Some 30
  | "SHARE", _, Num "quota", Check.Le -> Some 102400
  | "SHARE", _, Num "quota", Check.Ge -> Some 1
  | "SBQUEUE", _, Num "max_size_in_megabytes", Check.Le -> Some 5120
  | "SBQUEUE", _, Num "max_size_in_megabytes", Check.Ge -> Some 1024
  | "EVENTHUB_NS", _, Num "capacity", Check.Le -> Some 40
  | "EVENTHUB_NS", _, Num "capacity", Check.Ge -> Some 1
  | "EXPRESS", _, Num "bandwidth_in_mbps", Check.Le -> Some 10000
  | "EXPRESS", _, Num "bandwidth_in_mbps", Check.Ge -> Some 50
  | "DISK", _, Num "size_gb", Check.Le -> Some 32767
  | "DISK", _, Num "size_gb", Check.Ge -> Some 1
  | "COSMOS", _, Num "consistency_policy.max_interval_in_seconds", Check.Le ->
      Some 86400
  | "COSMOS", _, Num "consistency_policy.max_interval_in_seconds", Check.Ge -> Some 5
  | "TUNNEL", _, Num "routing_weight", Check.Le -> Some 32000
  | "TUNNEL", _, Num "routing_weight", Check.Ge -> Some 0
  | "DNSREC", _, Num "ttl", Check.Le -> Some 2147483646
  | "DNSREC", _, Num "ttl", Check.Ge -> Some 1
  | _ -> None

let decompose (check : Check.t) =
  match check.Check.bindings with
  | [ { Check.btype; _ } ] -> (
      let cond =
        match check.Check.cond with
        | Check.Cmp (Check.Eq, Check.Attr { Check.attr; _ }, Check.Const v) ->
            Some (Check.strip_indices attr, v)
        | _ -> None
      in
      match check.Check.stmt with
      | Check.Cmp (((Check.Le | Check.Ge) as op), term, Check.Const (Value.Int bound))
        ->
          let quantity =
            match term with
            | Check.Indeg (_, Graph.Type tau) -> Some (Deg (`In, tau))
            | Check.Outdeg (_, Graph.Type tau) -> Some (Deg (`Out, tau))
            | Check.Attr { Check.attr; _ } -> Some (Num (Check.strip_indices attr))
            | _ -> None
          in
          Option.map (fun q -> (btype, cond, q, op, bound)) quantity
      | _ -> None)
  | _ -> None

let replace_bound (check : Check.t) bound =
  let stmt =
    match check.Check.stmt with
    | Check.Cmp (op, term, Check.Const (Value.Int _)) ->
        Check.Cmp (op, term, Check.Const (Value.Int bound))
    | stmt -> stmt
  in
  Check.make ~source:Check.Llm_interpolated check.Check.bindings check.Check.cond stmt

let interpolate t (candidate : Candidate.t) =
  t.queries <- t.queries + 1;
  let check = candidate.Candidate.check in
  match decompose check with
  | None -> Unsupported
  | Some (subject, cond, quantity, op, witnessed) -> (
      let hallucinate = Prng.chance t.rng t.error_rate in
      match documented_limit ~subject ~cond ~quantity ~op with
      | Some bound ->
          let bound =
            if hallucinate then max 1 (bound + if Prng.bool t.rng then 1 else -1)
            else bound
          in
          Refined (replace_bound check bound)
      | None ->
          if hallucinate then Refined (replace_bound check witnessed)
          else Unsupported)

(* Plausibility assessment (§5.3): a structural judgement of whether a
   mined check "sounds like" a real cloud constraint. Only used to
   score the statistical filters, never to validate. *)
let rec plausible_expr = function
  | Check.Func ((Check.Overlap | Check.Contain), _, _) -> true
  | Check.Func (Check.Length, _, _) -> false
  | Check.Not e -> plausible_expr e
  | Check.And es -> List.exists plausible_expr es
  | Check.Cmp (_, Check.Attr { Check.attr = a1; _ }, Check.Attr { Check.attr = a2; _ })
    ->
      String.equal a1 a2 (* same-attribute agreement, e.g. locations *)
  | Check.Cmp (_, t1, t2) -> term_plausible t1 || term_plausible t2
  | Check.Conn _ | Check.Path _ | Check.Coconn _ | Check.Copath _ -> false

and term_plausible = function
  | Check.Indeg _ | Check.Outdeg _ -> true
  | Check.Const (Value.Str s) ->
      List.mem s
        [
          "GatewaySubnet"; "AzureFirewallSubnet"; "AzureBastionSubnet"; "Standard";
          "Basic"; "Premium"; "Spot"; "Static"; "Dynamic";
        ]
  | Check.Const _ | Check.Attr _ -> false

let assess t (candidate : Candidate.t) =
  t.queries <- t.queries + 1;
  let check = candidate.Candidate.check in
  let structural =
    plausible_expr check.Check.stmt
    || (plausible_expr check.Check.cond
       &&
       (* with a marker in the condition, a constant-valued statement
          reads like a sku restriction *)
       match check.Check.stmt with
       | Check.Cmp (_, _, Check.Const (Value.Str _)) -> true
       | _ -> false)
  in
  let documented = match decompose check with
    | Some (subject, cond, quantity, op, _) ->
        documented_limit ~subject ~cond ~quantity ~op <> None
    | None -> false
  in
  let verdict = structural || documented in
  if Prng.chance t.rng t.error_rate then not verdict else verdict

let queries_made t = t.queries
