lib/oracle/prompt.mli: Zodiac_spec
