lib/oracle/llm.ml: List Option String Zodiac_azure Zodiac_iac Zodiac_mining Zodiac_spec Zodiac_util
