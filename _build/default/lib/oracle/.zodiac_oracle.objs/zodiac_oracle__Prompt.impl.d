lib/oracle/prompt.ml: Printf String Zodiac_iac Zodiac_spec
