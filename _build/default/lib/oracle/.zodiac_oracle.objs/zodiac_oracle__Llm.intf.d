lib/oracle/llm.mli: Zodiac_mining Zodiac_spec
