(** Few-shot prompt construction for interpolation queries (§3.3).

    Zodiac translates a quantitative candidate check into a natural-
    language question and wraps it with input/output examples so the
    language model answers with a bare constant or "none". The prompt
    text is what a production deployment would send to the LLM; the
    offline oracle consumes the structured query directly but the
    prompt is still built (and exposed) for inspection and testing. *)

type query = {
  subject_type : string;  (** e.g. ["VM"] *)
  cond_attr : string;  (** e.g. ["sku"] *)
  cond_value : string;  (** e.g. ["Standard_F2s_v2"] *)
  quantity : string;  (** e.g. ["maximum number of NICs"] *)
}

val question : query -> string
(** The bare natural-language question. *)

val few_shot : query -> string
(** The full prompt: instructions, worked examples, then the query. *)

val of_check : Zodiac_spec.Check.t -> query option
(** Extract a query from a quantitative candidate of the shape
    [A.attr == Enum => degree/number <= int]. *)
