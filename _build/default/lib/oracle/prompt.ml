module Check = Zodiac_spec.Check
module Value = Zodiac_iac.Value
module Graph = Zodiac_iac.Graph

type query = {
  subject_type : string;
  cond_attr : string;
  cond_value : string;
  quantity : string;
}

let question q =
  Printf.sprintf "For a %s %s whose %s is %s, what is the %s allowed?"
    q.subject_type "resource" q.cond_attr q.cond_value q.quantity

let few_shot q =
  String.concat "\n"
    [
      "You are answering questions about Microsoft Azure resource limits.";
      "Answer with a single integer, or \"none\" when no documented limit exists.";
      "Refer to the official Azure documentation tables.";
      "";
      "Q: For a VM resource whose sku is Standard_F2s_v2, what is the maximum \
       number of network interfaces allowed?";
      "A: 2";
      "";
      "Q: For a GW resource whose sku is Basic, what is the maximum number of \
       tunnels allowed?";
      "A: 10";
      "";
      "Q: For a SA resource whose kind is StorageV2, what is the maximum number \
       of tags allowed?";
      "A: none";
      "";
      "Q: " ^ question q;
      "A:";
    ]

let quantity_of_stmt subject = function
  | Check.Cmp ((Check.Le | Check.Ge), Check.Indeg (_, Graph.Type tau), Check.Const _)
    ->
      Some (Printf.sprintf "maximum number of %s resources referenced by the %s" tau subject)
  | Check.Cmp ((Check.Le | Check.Ge), Check.Outdeg (_, Graph.Type tau), Check.Const _)
    ->
      Some (Printf.sprintf "maximum number of %s resources attached to the %s" tau subject)
  | Check.Cmp (Check.Le, Check.Attr { Check.attr; _ }, Check.Const _) ->
      Some (Printf.sprintf "maximum value of %s" attr)
  | Check.Cmp (Check.Ge, Check.Attr { Check.attr; _ }, Check.Const _) ->
      Some (Printf.sprintf "minimum value of %s" attr)
  | _ -> None

let of_check (check : Check.t) =
  match (check.Check.bindings, check.Check.cond) with
  | ( [ { Check.btype; _ } ],
      Check.Cmp (Check.Eq, Check.Attr { Check.attr; _ }, Check.Const v) ) -> (
      match quantity_of_stmt btype check.Check.stmt with
      | Some quantity ->
          Some
            {
              subject_type = btype;
              cond_attr = attr;
              cond_value = Value.to_string v;
              quantity;
            }
      | None -> None)
  | ( [ { Check.btype; _ } ],
      Check.Cmp (Check.Ne, Check.Attr { Check.attr; _ }, Check.Const Value.Null) )
    -> (
      match quantity_of_stmt btype check.Check.stmt with
      | Some quantity ->
          Some
            {
              subject_type = btype;
              cond_attr = attr;
              cond_value = "present";
              quantity;
            }
      | None -> None)
  | _ -> None
