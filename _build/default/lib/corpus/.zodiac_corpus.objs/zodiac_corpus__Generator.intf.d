lib/corpus/generator.mli: Zodiac_iac Zodiac_util
