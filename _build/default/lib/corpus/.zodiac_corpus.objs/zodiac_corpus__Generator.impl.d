lib/corpus/generator.ml: Fun Hashtbl List Option Printf String Zodiac_azure Zodiac_iac Zodiac_util
