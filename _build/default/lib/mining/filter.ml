type thresholds = { min_confidence : float; min_lift : float }

let default_thresholds = { min_confidence = 0.95; min_lift = 1.10 }

type outcome = {
  kept : Candidate.t list;
  removed_confidence : Candidate.t list;
  removed_lift : Candidate.t list;
  interpolation_queue : Candidate.t list;
}

let run ?(thresholds = default_thresholds) candidates =
  let interpolation_queue, statistical =
    List.partition (fun c -> c.Candidate.needs_interpolation) candidates
  in
  let passes_confidence c = c.Candidate.confidence >= thresholds.min_confidence in
  let passes_lift c = c.Candidate.lift >= thresholds.min_lift in
  let removed_confidence, rest =
    List.partition (fun c -> not (passes_confidence c)) statistical
  in
  let removed_lift, kept = List.partition (fun c -> not (passes_lift c)) rest in
  { kept; removed_confidence; removed_lift; interpolation_queue }

let summary o =
  Printf.sprintf
    "filter: kept=%d removed(confidence)=%d removed(lift)=%d interpolation=%d"
    (List.length o.kept)
    (List.length o.removed_confidence)
    (List.length o.removed_lift)
    (List.length o.interpolation_queue)
