lib/mining/candidate.ml: Hashtbl Int List Printf Zodiac_spec
