lib/mining/filter.ml: Candidate List Printf
