lib/mining/templates.ml: List
