lib/mining/filter.mli: Candidate
