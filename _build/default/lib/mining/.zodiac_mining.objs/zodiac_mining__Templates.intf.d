lib/mining/templates.mli:
