lib/mining/miner.ml: Candidate Float Hashtbl List Option Printf String Zodiac_azure Zodiac_cloud Zodiac_iac Zodiac_kb Zodiac_spec Zodiac_util
