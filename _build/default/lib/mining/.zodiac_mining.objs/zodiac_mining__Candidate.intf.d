lib/mining/candidate.mli: Zodiac_spec
