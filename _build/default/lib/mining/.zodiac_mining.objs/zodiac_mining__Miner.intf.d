lib/mining/miner.mli: Candidate Zodiac_iac Zodiac_kb
