(** Statistical filtering of mined candidates (§3.3, Figure 7b).

    Confidence removes checks with too many counterexamples in the
    corpus; lift removes checks whose condition and statement are not
    positively correlated. Interpolation candidates bypass both — they
    are completed by the LLM oracle instead. *)

type thresholds = {
  min_confidence : float;  (** default 0.95 *)
  min_lift : float;  (** default 1.10 *)
}

val default_thresholds : thresholds

type outcome = {
  kept : Candidate.t list;
  removed_confidence : Candidate.t list;
  removed_lift : Candidate.t list;
  interpolation_queue : Candidate.t list;
      (** quantitative candidates routed to the oracle *)
}

val run : ?thresholds:thresholds -> Candidate.t list -> outcome

val summary : outcome -> string
