module Check = Zodiac_spec.Check
module Spec_printer = Zodiac_spec.Spec_printer

type t = {
  check : Check.t;
  template_id : string;
  support : int;
  confidence : float;
  lift : float;
  needs_interpolation : bool;
}

let make ?(needs_interpolation = false) ~template_id ~support ~confidence ~lift check
    =
  { check; template_id; support; confidence; lift; needs_interpolation }

let dedup candidates =
  let table = Hashtbl.create 256 in
  List.iter
    (fun c ->
      let key = c.check.Check.cid in
      match Hashtbl.find_opt table key with
      | Some existing when existing.support >= c.support -> ()
      | Some _ | None -> Hashtbl.replace table key c)
    candidates;
  Hashtbl.fold (fun _ c acc -> c :: acc) table []
  |> List.sort (fun a b -> Int.compare b.support a.support)

let describe c =
  Printf.sprintf "%s [%s sup=%d conf=%.2f lift=%.2f%s]"
    (Spec_printer.to_string c.check)
    c.template_id c.support c.confidence c.lift
    (if c.needs_interpolation then " interp" else "")
