type family = F_intra | F_intra_indexed | F_inter | F_inter_agg | F_interpolation

type t = {
  template_id : string;
  family : family;
  shape : string;
  example : string;
}

let t template_id family shape example = { template_id; family; shape; example }

(* The catalogue enumerates the operator variants of each counting
   pass implemented in Miner; ids of the form FAMILY-VARIANT. *)
let all =
  [
    (* Intra-resource attribute relations. *)
    t "INTRA-EQ-EQ" F_intra "A.attr1 == Enum => A.attr2 == Enum"
      "GW.sku == 'Basic' => GW.active_active == false";
    t "INTRA-EQ-NE" F_intra "A.attr1 == Enum => A.attr2 != Enum"
      "SA.tier == 'Premium' => SA.replica != 'GZRS'";
    t "INTRA-EQ-NOTNULL" F_intra "A.attr1 == Enum => A.attr2 != null"
      "VM.priority == 'Spot' => VM.evict_policy != null";
    t "INTRA-EQ-NULL" F_intra "A.attr1 == Enum => A.attr2 == null"
      "AKS.network_plugin == 'azure' => AKS.pod_cidr == null";
    t "INTRA-NOTNULL-EQ" F_intra "A.attr1 != null => A.attr2 == Enum"
      "REDIS.subnet_id != null => REDIS.sku == 'Premium'";
    t "INTRA-NOTNULL-NULL" F_intra "A.attr1 != null => A.attr2 == null"
      "VM.zone != null => VM.availability_set_id == null";
    t "INTRA-NOTNULL-NOTNULL" F_intra "A.attr1 != null => A.attr2 != null"
      "ROUTE.next_hop_ip != null => ROUTE.next_hop_type != null";
    (* Repeated-block element relations. *)
    t "IDX-EQ-NE" F_intra_indexed
      "A.blk[i].x == A.blk[j].x => A.blk[i].y != A.blk[j].y"
      "SG.rule[i].dir == SG.rule[j].dir => SG.rule[i].priority != SG.rule[j].priority";
    t "IDX-NE" F_intra_indexed "A.blk[i].y present => A.blk[i].y != A.blk[j].y"
      "SG.rule[i].name != SG.rule[j].name";
    (* Inter-resource, no aggregation. *)
    t "CONN-ATTR-EQ" F_inter "conn(A.in -> B.out) => A.attr1 == B.attr2"
      "conn(VM.nic_ids -> NIC.id) => VM.location == NIC.location";
    t "PATH-ATTR-EQ" F_inter "path(A -> B) => A.attr1 == B.attr2"
      "path(NIC -> VPC) => NIC.location == VPC.location";
    t "CONN-DST-EQ" F_inter "conn(A.in -> B.out) => B.attr == Enum"
      "conn(APPGW.ip -> IP.id) => IP.sku == 'Standard'";
    t "CONN-DST-NULL" F_inter "conn(A.in -> B.out) => B.attr == null"
      "conn(FW.subnet_id -> SUBNET.id) => SUBNET.delegation == null";
    t "CONN-SRC-EQ" F_inter "conn(A.in -> B.out) => A.attr == Enum"
      "conn(TUNNEL.gw_id -> GW.id) => TUNNEL.type == 'IPsec'";
    t "CONN-COND-DST-EQ" F_inter
      "conn(A.in -> B.out) && A.attr1 == Enum => B.attr2 == Enum"
      "conn(LB.ip -> IP.id) && LB.sku == 'Standard' => IP.sku == 'Standard'";
    t "CONN-CONTAIN" F_inter "conn(A.in -> B.out) => contain(B.attr, A.attr)"
      "conn(SUBNET.vpc_name -> VPC.name) => contain(VPC.address_space, SUBNET.cidr)";
    t "SIBLING-OVERLAP" F_inter
      "coconn(A.in -> C.out, B.in -> C.out) => !overlap(A.attr, B.attr)"
      "two subnets of one VPC have disjoint CIDR ranges";
    t "SIBLING-NE" F_inter
      "coconn(A.in -> C.out, B.in -> C.out) => A.attr != B.attr"
      "routes of one table have distinct address prefixes";
    t "ASSOC-ATTR-EQ" F_inter
      "coconn(C.in1 -> A.out, C.in2 -> B.out) => A.attr == B.attr"
      "coconn(ATTACH.vm_id -> VM.id, ATTACH.disk_id -> DISK.id) => VM.location == DISK.location";
    t "ASSOC-ATTR-NE" F_inter
      "coconn(C.in1 -> A.out, C.in2 -> B.out) => A.attr != B.attr"
      "VM os_disk and data disk have different names";
    t "COPATH-OVERLAP" F_inter
      "copath(A -> B, A -> C) => !overlap(B.attr, C.attr)"
      "two tunneled VPCs have exclusive IP CIDR";
    (* Aggregation. *)
    t "CONN-OUTDEG-ONE" F_inter_agg "conn(A.in -> B.out) => outdegree(B, tau) == 1"
      "a NIC can only be attached to one VM";
    t "CONN-OUTDEG-EXCL" F_inter_agg "conn(A.in -> B.out) => outdegree(B, !tau) == 0"
      "no other resource can share a subnet with a GW";
    t "NAME-OUTDEG-EXCL" F_inter_agg "A.attr == Enum => outdegree(A, !tau) == 0"
      "subnets named GatewaySubnet only host gateways";
    t "ENUM-INDEG-ZERO" F_inter_agg "A.attr == Enum => indegree(A, tau) == 0"
      "VPC2VPC tunnels cannot use HA gateways";
    (* Interpolation targets. *)
    t "ENUM-INDEG-LE" F_interpolation "A.attr == Enum => indegree(A, tau) <= int"
      "an sf4 sku VM can be attached to at most 4 NICs";
    t "ENUM-OUTDEG-LE" F_interpolation "A.attr == Enum => outdegree(A, tau) <= int"
      "a Basic sku GW can have at most 10 tunnels";
    t "ENUM-NUM-LE" F_interpolation "A.attr1 == Enum => A.attr2 <= int"
      "family C Redis caches support capacity at most 6";
    t "ENUM-NUM-GE" F_interpolation "A.attr1 == Enum => A.attr2 >= int"
      "family P Redis caches need capacity at least 1";
    t "PRESENT-NUM-LE" F_interpolation "A.attr1 != null => A.attr2 <= int"
      "key vault retention is at most 90 days";
    t "PRESENT-NUM-GE" F_interpolation "A.attr1 != null => A.attr2 >= int"
      "key vault retention is at least 7 days";
  ]

let count () = List.length all

let by_family family = List.filter (fun tpl -> tpl.family = family) all

let family_to_string = function
  | F_intra -> "intra-resource"
  | F_intra_indexed -> "intra-resource (indexed)"
  | F_inter -> "inter w/o agg"
  | F_inter_agg -> "inter w/ agg"
  | F_interpolation -> "interpolation"
