(** The curated check-template catalogue (§3.3).

    Each template constrains the shape of a hypothesized check: which
    expression kinds may appear in the condition and statement, and
    which KB classes restrict the slots (e.g. the right side of an
    [==] must be a Class-2 enum value). The mining engine implements a
    counting pass per template family; this module is the declarative
    index of those families and their operator variants. *)

type family =
  | F_intra  (** attribute relations within one resource *)
  | F_intra_indexed  (** relations over repeated-block elements *)
  | F_inter  (** topological predicates, no aggregation *)
  | F_inter_agg  (** indegree/outdegree aggregation *)
  | F_interpolation  (** quantitative, completed by the LLM *)

type t = {
  template_id : string;
  family : family;
  shape : string;  (** informal pattern, paper notation *)
  example : string;  (** an instance Zodiac can mine *)
}

val all : t list
(** The full catalogue. *)

val count : unit -> int
val by_family : family -> t list
val family_to_string : family -> string
