lib/kb/kb.ml: Hashtbl Int List Option String Zodiac_azure Zodiac_iac Zodiac_util
