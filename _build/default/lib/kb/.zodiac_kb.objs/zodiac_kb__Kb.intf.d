lib/kb/kb.mli: Zodiac_iac Zodiac_spec
