module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Schema = Zodiac_iac.Schema
module Catalog = Zodiac_azure.Catalog
module Cidr = Zodiac_util.Cidr

type attr_info = {
  rtype : string;
  attr : string;
  requirement : Schema.requirement option;
  format : Schema.format;
  observed : (Value.t * int) list;
  enum_values : Value.t list;
  default : Value.t option;
  occurrences : int;
}

type conn_kind = {
  src_type : string;
  src_attr : string;
  dst_type : string;
  dst_attr : string;
  count : int;
}

type t = {
  entries : (string, attr_info) Hashtbl.t;  (* key: rtype ^ "/" ^ attr *)
  conns : conn_kind list;
  known_types : string list;
  populations : (string, int) Hashtbl.t;  (* resources per type *)
}

let key rtype attr = rtype ^ "/" ^ attr

(* An attribute is enum-like when its observed value set is small,
   string-typed and well-supported — or when the schema declares an
   enum outright. *)
let max_enum_cardinality = 12
let min_enum_support = 4

(* Values worth keeping in the observation table: scalars only. *)
let observable = function
  | Value.Str _ | Value.Int _ | Value.Bool _ -> true
  | Value.Null | Value.List _ | Value.Block _ | Value.Ref _ -> false

let build ~projects =
  let observations : (string, (Value.t, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 512
  in
  let attr_presence : (string, int) Hashtbl.t = Hashtbl.create 512 in
  let conn_counts : (string * string * string * string, int) Hashtbl.t =
    Hashtbl.create 128
  in
  let observe_value rtype path v =
    if observable v then begin
      let k = key rtype path in
      let table =
        match Hashtbl.find_opt observations k with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 8 in
            Hashtbl.replace observations k t;
            t
      in
      Hashtbl.replace table v (1 + Option.value ~default:0 (Hashtbl.find_opt table v))
    end
  in
  let populations : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let observe_resource r =
    let rtype = r.Resource.rtype in
    Hashtbl.replace populations rtype
      (1 + Option.value ~default:0 (Hashtbl.find_opt populations rtype));
    List.iter
      (fun path ->
        Hashtbl.replace attr_presence (key rtype path)
          (1 + Option.value ~default:0 (Hashtbl.find_opt attr_presence (key rtype path)));
        List.iter (observe_value rtype path) (Resource.get_all r path))
      (Resource.attr_paths r)
  in
  List.iter
    (fun prog ->
      List.iter observe_resource (Program.resources prog);
      let graph = Graph.build prog in
      List.iter
        (fun (e : Graph.edge) ->
          let k =
            ( e.Graph.src.Resource.rtype,
              e.Graph.src_attr,
              e.Graph.dst.Resource.rtype,
              e.Graph.dst_attr )
          in
          Hashtbl.replace conn_counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt conn_counts k)))
        (Graph.edges graph))
    projects;
  (* Fold schema facts (Class 1 + declared Class 2) with observations. *)
  let entries = Hashtbl.create 512 in
  let add_entry rtype attr requirement declared_format default =
    let k = key rtype attr in
    let observed =
      match Hashtbl.find_opt observations k with
      | None -> []
      | Some table ->
          Hashtbl.fold (fun v c acc -> (v, c) :: acc) table []
          |> List.sort (fun (_, c1) (_, c2) -> Int.compare c2 c1)
    in
    let occurrences = Option.value ~default:0 (Hashtbl.find_opt attr_presence k) in
    let strings_only =
      observed <> []
      && (List.for_all
            (fun (v, _) -> match v with Value.Str _ -> true | _ -> false)
            observed
         || List.for_all
              (fun (v, _) -> match v with Value.Bool _ -> true | _ -> false)
              observed)
    in
    let total_support = List.fold_left (fun acc (_, c) -> acc + c) 0 observed in
    let enum_values =
      match declared_format with
      | Schema.Enum declared -> List.map (fun s -> Value.Str s) declared
      | Schema.Free_string
        when strings_only
             && List.length observed <= max_enum_cardinality
             && total_support >= min_enum_support ->
          List.map fst observed
      | Schema.Free_string | Schema.Cidr_format | Schema.Port_format | Schema.Region
      | Schema.Name_format | Schema.Id_format ->
          []
    in
    (* Infer CIDR format from observed values when undeclared. *)
    let format =
      match declared_format with
      | Schema.Free_string
        when observed <> []
             && List.for_all
                  (fun (v, _) ->
                    match v with
                    | Value.Str s -> Cidr.of_string s <> None
                    | _ -> false)
                  observed ->
          Schema.Cidr_format
      | f -> f
    in
    Hashtbl.replace entries k
      { rtype; attr; requirement; format; observed; enum_values; default; occurrences }
  in
  (* Class 1: every schema attribute. *)
  List.iter
    (fun schema ->
      List.iter
        (fun (path, (a : Schema.attr)) ->
          add_entry schema.Schema.type_name path (Some a.Schema.req) a.Schema.format
            a.Schema.default)
        (Schema.leaf_paths schema))
    Catalog.schemas;
  (* Corpus-only attributes (unknown to schemas) still get entries. *)
  Hashtbl.iter
    (fun k _count ->
      if not (Hashtbl.mem entries k) then
        match String.index_opt k '/' with
        | Some i ->
            let rtype = String.sub k 0 i in
            let attr = String.sub k (i + 1) (String.length k - i - 1) in
            add_entry rtype attr None Schema.Free_string None
        | None -> ())
    attr_presence;
  let conns =
    Hashtbl.fold
      (fun (src_type, src_attr, dst_type, dst_attr) count acc ->
        { src_type; src_attr; dst_type; dst_attr; count } :: acc)
      conn_counts []
    |> List.sort (fun a b -> Int.compare b.count a.count)
  in
  let known_types =
    let from_corpus =
      Hashtbl.fold
        (fun k _ acc ->
          match String.index_opt k '/' with
          | Some i ->
              let ty = String.sub k 0 i in
              if List.mem ty acc then acc else ty :: acc
          | None -> acc)
        attr_presence []
    in
    List.fold_left
      (fun acc ty -> if List.mem ty acc then acc else acc @ [ ty ])
      Catalog.type_names from_corpus
  in
  { entries; conns; known_types; populations }

let attr_info t ~rtype ~attr = Hashtbl.find_opt t.entries (key rtype attr)

let population t rtype =
  Option.value ~default:0 (Hashtbl.find_opt t.populations rtype)

let attrs_of_type t rtype =
  Hashtbl.fold
    (fun _ info acc -> if String.equal info.rtype rtype then info :: acc else acc)
    t.entries []
  |> List.sort (fun a b -> String.compare a.attr b.attr)

let enum_values t ~rtype ~attr =
  match attr_info t ~rtype ~attr with Some info -> info.enum_values | None -> []

let conn_kinds t = t.conns

let conn_kinds_from t src_type =
  List.filter (fun c -> String.equal c.src_type src_type) t.conns

let conn_kinds_between t src_type dst_type =
  List.filter
    (fun c -> String.equal c.src_type src_type && String.equal c.dst_type dst_type)
    t.conns

let legal_targets t ~src_type ~src_attr =
  List.filter_map
    (fun c ->
      if String.equal c.src_type src_type && String.equal c.src_attr src_attr then
        Some (c.dst_type, c.dst_attr)
      else None)
    t.conns

let cidr_attrs t rtype =
  List.filter_map
    (fun info ->
      if info.format = Schema.Cidr_format then Some info.attr else None)
    (attrs_of_type t rtype)

let numeric_attrs t rtype =
  List.filter_map
    (fun info ->
      let numeric =
        info.observed <> []
        && List.for_all
             (fun (v, _) -> match v with Value.Int _ -> true | _ -> false)
             info.observed
      in
      if numeric then Some info.attr else None)
    (attrs_of_type t rtype)

let defaults ~rtype ~attr =
  match Catalog.find rtype with
  | None -> None
  | Some schema -> (
      match Schema.find_attr schema attr with
      | Some { Schema.default = Some d; _ } -> Some d
      | Some _ | None -> None)

let types t = t.known_types

let size t = Hashtbl.length t.entries
