lib/core/export.ml: Buffer List Printf String Zodiac_iac Zodiac_spec Zodiac_util
