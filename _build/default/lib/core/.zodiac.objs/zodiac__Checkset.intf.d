lib/core/checkset.mli: Zodiac_spec Zodiac_util
