lib/core/checkset.ml: List Zodiac_spec Zodiac_util
