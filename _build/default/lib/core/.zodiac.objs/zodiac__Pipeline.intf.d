lib/core/pipeline.mli: Zodiac_corpus Zodiac_iac Zodiac_kb Zodiac_mining Zodiac_spec Zodiac_validation
