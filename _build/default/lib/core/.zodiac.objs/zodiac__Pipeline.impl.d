lib/core/pipeline.ml: Hashtbl List Zodiac_cloud Zodiac_corpus Zodiac_iac Zodiac_kb Zodiac_mining Zodiac_oracle Zodiac_spec Zodiac_validation
