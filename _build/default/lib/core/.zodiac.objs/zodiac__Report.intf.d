lib/core/report.mli: Pipeline Zodiac_spec
