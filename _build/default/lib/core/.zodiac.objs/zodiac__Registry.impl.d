lib/core/registry.ml: Buffer List Printf String Zodiac_azure Zodiac_hcl
