lib/core/registry.mli: Zodiac_iac
