lib/core/report.ml: List Pipeline Printf String Zodiac_iac Zodiac_kb Zodiac_mining Zodiac_spec Zodiac_util Zodiac_validation
