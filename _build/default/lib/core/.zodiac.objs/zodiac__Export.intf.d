lib/core/export.mli: Zodiac_spec Zodiac_util
