module Check = Zodiac_spec.Check
module Spec_printer = Zodiac_spec.Spec_printer
module Value = Zodiac_iac.Value
module Graph = Zodiac_iac.Graph
module Json = Zodiac_util.Json

(* ---- natural language ---------------------------------------------- *)

let value_text = function
  | Value.Null -> "unset"
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Str s -> Printf.sprintf "'%s'" s
  | (Value.List _ | Value.Block _ | Value.Ref _) as v -> Value.to_string v

let tyspec_text = function
  | Graph.Type ty -> ty
  | Graph.Not_type ty -> "non-" ^ ty

let term_text = function
  | Check.Const v -> value_text v
  | Check.Attr e -> Printf.sprintf "its %s" (Check.strip_indices e.Check.attr)
  | Check.Indeg (_, ty) ->
      Printf.sprintf "the number of %s resources it references" (tyspec_text ty)
  | Check.Outdeg (_, ty) ->
      Printf.sprintf "the number of %s resources attached to it" (tyspec_text ty)

let cmp_text positive = function
  | Check.Eq -> if positive then "must be" else "is"
  | Check.Ne -> if positive then "must differ from" else "differs from"
  | Check.Le -> if positive then "must be at most" else "is at most"
  | Check.Ge -> if positive then "must be at least" else "is at least"
  | Check.Lt -> if positive then "must be below" else "is below"
  | Check.Gt -> if positive then "must be above" else "is above"

let rec expr_text ~assertive = function
  | Check.Conn (a, b) ->
      Printf.sprintf "the %s connects to the %s through %s" a.Check.var b.Check.var
        (Check.strip_indices a.Check.attr)
  | Check.Path (a, b) -> Printf.sprintf "the %s reaches the %s" a b
  | Check.Coconn ((a, b), (c, d)) ->
      Printf.sprintf "%s and %s"
        (expr_text ~assertive (Check.Conn (a, b)))
        (expr_text ~assertive (Check.Conn (c, d)))
  | Check.Copath ((a, b), (c, d)) ->
      Printf.sprintf "the %s reaches both the %s and the %s" a b d |> fun s ->
      if String.equal a c then s
      else
        Printf.sprintf "%s and %s"
          (expr_text ~assertive (Check.Path (a, b)))
          (expr_text ~assertive (Check.Path (c, d)))
  | Check.Cmp (Check.Ne, t, Check.Const Value.Null)
  | Check.Cmp (Check.Ne, Check.Const Value.Null, t) ->
      if assertive then Printf.sprintf "%s must be set" (term_text t)
      else Printf.sprintf "%s is set" (term_text t)
  | Check.Cmp (Check.Eq, t, Check.Const Value.Null)
  | Check.Cmp (Check.Eq, Check.Const Value.Null, t) ->
      if assertive then Printf.sprintf "%s must be left unset" (term_text t)
      else Printf.sprintf "%s is unset" (term_text t)
  | Check.Cmp (op, t1, t2) ->
      Printf.sprintf "%s %s %s" (term_text t1) (cmp_text assertive op) (term_text t2)
  | Check.Func (Check.Overlap, t1, t2) ->
      Printf.sprintf "%s overlaps %s" (term_text t1) (term_text t2)
  | Check.Func (Check.Contain, t1, t2) ->
      if assertive then
        Printf.sprintf "%s must contain %s" (term_text t1) (term_text t2)
      else Printf.sprintf "%s contains %s" (term_text t1) (term_text t2)
  | Check.Func (Check.Length, t1, t2) ->
      Printf.sprintf "%s has exactly %s element(s)" (term_text t1) (term_text t2)
  | Check.Not (Check.Func (Check.Overlap, t1, t2)) ->
      if assertive then
        Printf.sprintf "%s must not overlap %s" (term_text t1) (term_text t2)
      else Printf.sprintf "%s does not overlap %s" (term_text t1) (term_text t2)
  | Check.Not e ->
      Printf.sprintf "it is not the case that %s" (expr_text ~assertive e)
  | Check.And es ->
      String.concat " and " (List.map (expr_text ~assertive) es)

let bindings_text (bindings : Check.binding list) =
  String.concat ", "
    (List.map (fun (b : Check.binding) -> Printf.sprintf "%s (a %s)" b.Check.var b.Check.btype) bindings)

let to_sentence (c : Check.t) =
  Printf.sprintf "For %s: when %s, %s." (bindings_text c.Check.bindings)
    (expr_text ~assertive:false c.Check.cond)
    (expr_text ~assertive:true c.Check.stmt)

(* ---- documentation insights ----------------------------------------- *)

let primary_type (c : Check.t) =
  match c.Check.bindings with
  | { Check.btype; _ } :: _ -> btype
  | [] -> "GENERAL"

let insights checks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# Deployment insights\n\n";
  Buffer.add_string buf
    "Semantic requirements unearthed by Zodiac through deployment-based\n\
     testing. Violating any of these compiles cleanly but fails (or\n\
     corrupts) the deployment.\n";
  let types =
    List.sort_uniq compare (List.map primary_type checks)
  in
  List.iter
    (fun ty ->
      Buffer.add_string buf (Printf.sprintf "\n## %s\n\n" ty);
      List.iter
        (fun c ->
          if String.equal (primary_type c) ty then begin
            Buffer.add_string buf (Printf.sprintf "- %s\n" (to_sentence c));
            Buffer.add_string buf
              (Printf.sprintf "  `%s`\n" (Spec_printer.to_string c))
          end)
        checks)
    types;
  Buffer.contents buf

(* ---- RAG knowledge base ---------------------------------------------- *)

let rag_knowledge_base checks =
  Json.List
    (List.map
       (fun (c : Check.t) ->
         Json.Obj
           [
             ("id", Json.String c.Check.cid);
             ( "types",
               Json.List
                 (List.map
                    (fun (b : Check.binding) -> Json.String b.Check.btype)
                    c.Check.bindings) );
             ("check", Json.String (Spec_printer.to_string c));
             ("statement", Json.String (to_sentence c));
             ( "category",
               Json.String
                 (match Check.category c with
                 | Check.Intra -> "intra-resource"
                 | Check.Inter_no_agg -> "inter-resource"
                 | Check.Inter_agg -> "aggregation"
                 | Check.Interpolated -> "quantitative") );
           ])
       checks)

(* ---- ancillary-checker policy file ----------------------------------- *)

let policy_rules checks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# Custom semantic policies generated by Zodiac\n";
  Buffer.add_string buf "policies:\n";
  List.iter
    (fun (c : Check.t) ->
      Buffer.add_string buf (Printf.sprintf "  - id: ZODIAC_%s\n" c.Check.cid);
      Buffer.add_string buf
        (Printf.sprintf "    severity: error\n    resources: [%s]\n"
           (String.concat ", "
              (List.map (fun (b : Check.binding) -> b.Check.btype) c.Check.bindings)));
      Buffer.add_string buf
        (Printf.sprintf "    description: %S\n" (to_sentence c));
      Buffer.add_string buf
        (Printf.sprintf "    assertion: %S\n" (Spec_printer.to_string c)))
    checks;
  Buffer.contents buf
