(** Downstream uses of validated semantic checks (§6, "Use cases").

    Beyond flagging violations, the paper sketches two applications for
    the unearthed checks: feeding them to LLM program-synthesis
    workflows as a retrieval-augmented-generation knowledge base, and
    bolstering provider documentation with deployment insights. This
    module renders both, plus a Checkov-style policy file so the checks
    can ride in existing ancillary-checker pipelines. *)

val to_sentence : Zodiac_spec.Check.t -> string
(** A natural-language rendering of one check, e.g.
    ["When a SA's tier is 'Premium', its replica must not be 'GZRS'."] *)

val insights : Zodiac_spec.Check.t list -> string
(** A markdown "deployment insights" document grouped by resource
    type — the documentation-bolstering use case. *)

val rag_knowledge_base : Zodiac_spec.Check.t list -> Zodiac_util.Json.t
(** A JSON knowledge base of [{id, types, check, statement}] entries
    keyed for retrieval — the RAG use case. Each entry carries both the
    formal check and its natural-language statement. *)

val policy_rules : Zodiac_spec.Check.t list -> string
(** A YAML-ish custom-policy file in the style ancillary checkers
    (Checkov/TFSec) accept, one rule per check. *)
