module Value = Zodiac_iac.Value
module Graph = Zodiac_iac.Graph

let value_to_string = function
  | Value.Null -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Str s -> Printf.sprintf "'%s'" s
  | (Value.List _ | Value.Block _ | Value.Ref _) as v -> Value.to_string v

let tyspec_to_string = function
  | Graph.Type ty -> ty
  | Graph.Not_type ty -> "!" ^ ty

let term_to_string = function
  | Check.Const v -> value_to_string v
  | Check.Attr e -> Printf.sprintf "%s.%s" e.Check.var e.Check.attr
  | Check.Indeg (v, ty) -> Printf.sprintf "indegree(%s, %s)" v (tyspec_to_string ty)
  | Check.Outdeg (v, ty) -> Printf.sprintf "outdegree(%s, %s)" v (tyspec_to_string ty)

let cmp_to_string = function
  | Check.Eq -> "=="
  | Check.Ne -> "!="
  | Check.Le -> "<="
  | Check.Ge -> ">="
  | Check.Lt -> "<"
  | Check.Gt -> ">"

let func_to_string = function
  | Check.Overlap -> "overlap"
  | Check.Contain -> "contain"
  | Check.Length -> "length"

let endpoint_to_string (e : Check.endpoint) = Printf.sprintf "%s.%s" e.var e.attr

let rec expr_to_string = function
  | Check.Conn (a, b) ->
      Printf.sprintf "conn(%s -> %s)" (endpoint_to_string a) (endpoint_to_string b)
  | Check.Path (a, b) -> Printf.sprintf "path(%s -> %s)" a b
  | Check.Coconn ((a, b), (c, d)) ->
      Printf.sprintf "coconn(%s -> %s, %s -> %s)" (endpoint_to_string a)
        (endpoint_to_string b) (endpoint_to_string c) (endpoint_to_string d)
  | Check.Copath ((a, b), (c, d)) ->
      Printf.sprintf "copath(%s -> %s, %s -> %s)" a b c d
  | Check.Cmp (op, t1, t2) ->
      Printf.sprintf "%s %s %s" (term_to_string t1) (cmp_to_string op)
        (term_to_string t2)
  | Check.Func (f, t1, t2) ->
      Printf.sprintf "%s(%s, %s)" (func_to_string f) (term_to_string t1)
        (term_to_string t2)
  | Check.Not e -> "!" ^ expr_to_string e
  | Check.And es -> String.concat " && " (List.map expr_to_string es)

let to_string (c : Check.t) =
  Printf.sprintf "let %s in %s => %s"
    (String.concat ", "
       (List.map
          (fun (b : Check.binding) -> Printf.sprintf "%s:%s" b.var b.btype)
          c.bindings))
    (expr_to_string c.cond) (expr_to_string c.stmt)

let pp fmt c = Format.pp_print_string fmt (to_string c)

let category_to_string = function
  | Check.Intra -> "intra-resource"
  | Check.Inter_no_agg -> "inter w/o agg"
  | Check.Inter_agg -> "inter w/ agg"
  | Check.Interpolated -> "interpolation"

let describe c =
  Printf.sprintf "[%s|%s] %s" c.Check.cid
    (category_to_string (Check.category c))
    (to_string c)
