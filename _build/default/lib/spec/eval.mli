(** Evaluation of semantic checks over an IaC resource graph.

    A check instance is an injective assignment of the check's bound
    variables to resources of the declared types, extended with values
    for any index variables (quantified over repeated-block elements).
    Distinct index variables take pairwise-distinct positions, so
    [rule\[i\]] and [rule\[j\]] never alias the same element. The check
    holds on a graph iff no instance satisfies the condition while
    falsifying the statement. *)

type assignment = (string * Zodiac_iac.Resource.id) list
(** Bound variable -> resource. *)

type defaults = rtype:string -> attr:string -> Zodiac_iac.Value.t option
(** Provider-side default lookup applied when an attribute is absent
    (e.g. [GW.active_active] defaults to [false]). *)

type stats = {
  instances : int;  (** total check instances enumerated *)
  cond_true : int;  (** instances whose condition holds (occurrences) *)
  stmt_true : int;  (** instances whose statement holds *)
  both_true : int;  (** instances where both hold *)
}

val no_defaults : defaults

val term_value :
  ?defaults:defaults ->
  Zodiac_iac.Graph.t ->
  assignment ->
  (string * int) list ->
  Check.term ->
  Zodiac_iac.Value.t
(** Evaluate a term under an assignment and index environment. Missing
    attributes evaluate to [Null]. *)

val eval_expr :
  ?defaults:defaults ->
  Zodiac_iac.Graph.t ->
  assignment ->
  (string * int) list ->
  Check.expr ->
  bool

val stats : ?defaults:defaults -> Zodiac_iac.Graph.t -> Check.t -> stats

val holds : ?defaults:defaults -> Zodiac_iac.Graph.t -> Check.t -> bool
(** No violating instance exists. Vacuously true when the condition
    never fires. *)

val occurrences : ?defaults:defaults -> Zodiac_iac.Graph.t -> Check.t -> int

val violations :
  ?defaults:defaults -> Zodiac_iac.Graph.t -> Check.t -> assignment list
(** Assignments (resource part only) with some instance where the
    condition holds and the statement fails; duplicates removed. *)

val witnesses :
  ?defaults:defaults -> Zodiac_iac.Graph.t -> Check.t -> assignment list
(** Assignments with some instance where condition and statement both
    hold — the raw material for positive test cases. *)

val first_witness :
  ?defaults:defaults -> Zodiac_iac.Graph.t -> Check.t -> assignment option
(** Like {!witnesses} but stops at the first hit (corpus scans). *)

val first_violation :
  ?defaults:defaults -> Zodiac_iac.Graph.t -> Check.t -> assignment option
(** Like {!violations} but stops at the first hit. *)

val violating_index_env :
  ?defaults:defaults ->
  Zodiac_iac.Graph.t ->
  Check.t ->
  assignment ->
  (string * int) list option
(** For a known violating assignment, an index environment under which
    the condition holds and the statement fails ([Some []] for checks
    without index variables). Used for diagnosis. *)
