module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Cidr = Zodiac_util.Cidr

type assignment = (string * Resource.id) list

type defaults = rtype:string -> attr:string -> Value.t option

type stats = {
  instances : int;
  cond_true : int;
  stmt_true : int;
  both_true : int;
}

let no_defaults ~rtype:_ ~attr:_ = None

(* --- attribute path resolution with index variables ---------------- *)

type segment = { field : string; index : string option }

let parse_path path =
  List.map
    (fun seg ->
      match String.index_opt seg '[' with
      | Some i when String.length seg > i + 2 && seg.[String.length seg - 1] = ']' ->
          {
            field = String.sub seg 0 i;
            index = Some (String.sub seg (i + 1) (String.length seg - i - 2));
          }
      | _ -> { field = seg; index = None })
    (String.split_on_char '.' path)

let as_list = function
  | Value.List items -> items
  | Value.Block _ as b -> [ b ]
  | Value.Null -> []
  | v -> [ v ]

(* Resolve a parsed path on a resource under an index environment.
   Unindexed traversal into a list picks the first element (matching
   Resource.get); indexed traversal selects the element named by the
   index variable. Returns Null when the path is absent. *)
let resolve_path resource segments ienv =
  let rec walk value segments =
    match segments with
    | [] -> value
    | { field; index } :: rest -> (
        let enter v =
          match v with
          | Value.Block fields -> (
              match List.assoc_opt field fields with
              | Some inner -> Some inner
              | None -> None)
          | _ -> None
        in
        let v =
          match value with
          | Value.List (x :: _) -> enter x
          | other -> enter other
        in
        match v with
        | None -> Value.Null
        | Some inner -> (
            match index with
            | None -> walk inner rest
            | Some ivar -> (
                let items = as_list inner in
                match List.assoc_opt ivar ienv with
                | Some i when i < List.length items -> walk (List.nth items i) rest
                | Some _ | None -> Value.Null)))
  in
  match segments with
  | [] -> Value.Null
  | { field; index } :: rest -> (
      match Resource.attr resource field with
      | None -> Value.Null
      | Some v -> (
          match index with
          | None -> walk v rest
          | Some ivar -> (
              let items = as_list v in
              match List.assoc_opt ivar ienv with
              | Some i when i < List.length items -> walk (List.nth items i) rest
              | Some _ | None -> Value.Null)))

(* Length of the collection an index variable ranges over, within one
   endpoint, under the partial index environment (for earlier vars). *)
let collection_length resource path ivar ienv =
  let segments = parse_path path in
  let rec split acc = function
    | [] -> None
    | ({ index = Some v; _ } as seg) :: _rest when String.equal v ivar ->
        Some (List.rev ({ seg with index = None } :: acc))
    | seg :: rest -> split (seg :: acc) rest
  in
  match split [] segments with
  | None -> None
  | Some prefix ->
      let v = resolve_path resource prefix ienv in
      Some (List.length (as_list v))

(* --- term and expression evaluation -------------------------------- *)

let lookup_resource graph env var =
  match List.assoc_opt var env with
  | None -> None
  | Some id -> Program.find (Graph.program graph) id

let term_value ?(defaults = no_defaults) graph env ienv term =
  match term with
  | Check.Const v -> v
  | Check.Attr { var; attr } -> (
      match lookup_resource graph env var with
      | None -> Value.Null
      | Some r -> (
          match resolve_path r (parse_path attr) ienv with
          | Value.Null ->
              let stripped = Check.strip_indices attr in
              (match defaults ~rtype:r.Resource.rtype ~attr:stripped with
              | Some d -> d
              | None -> Value.Null)
          | v -> v))
  | Check.Indeg (var, ty) -> (
      match List.assoc_opt var env with
      | None -> Value.Null
      | Some id -> Value.Int (Graph.indegree graph id ty))
  | Check.Outdeg (var, ty) -> (
      match List.assoc_opt var env with
      | None -> Value.Null
      | Some id -> Value.Int (Graph.outdegree graph id ty))

let cidrs_of_value v =
  match v with
  | Value.Str s -> ( match Cidr.of_string s with Some c -> [ c ] | None -> [])
  | Value.List items ->
      List.filter_map
        (fun item ->
          match item with Value.Str s -> Cidr.of_string s | _ -> None)
        items
  | _ -> []

let value_int = function Value.Int i -> Some i | _ -> None

let compare_values op v1 v2 =
  match op with
  | Check.Eq -> Value.equal v1 v2
  | Check.Ne -> not (Value.equal v1 v2)
  | Check.Le | Check.Ge | Check.Lt | Check.Gt -> (
      match (value_int v1, value_int v2) with
      | Some a, Some b -> (
          match op with
          | Check.Le -> a <= b
          | Check.Ge -> a >= b
          | Check.Lt -> a < b
          | Check.Gt -> a > b
          | Check.Eq | Check.Ne -> assert false)
      | _ -> false)

let eval_func f v1 v2 =
  match f with
  | Check.Overlap ->
      let cs1 = cidrs_of_value v1 and cs2 = cidrs_of_value v2 in
      List.exists (fun a -> List.exists (fun b -> Cidr.overlap a b) cs2) cs1
  | Check.Contain ->
      let cs1 = cidrs_of_value v1 and cs2 = cidrs_of_value v2 in
      cs1 <> [] && cs2 <> []
      && List.for_all
           (fun b -> List.exists (fun a -> Cidr.contains a b) cs1)
           cs2
  | Check.Length -> (
      let len =
        match v1 with
        | Value.List items -> Some (List.length items)
        | Value.Str s -> Some (String.length s)
        | _ -> None
      in
      match (len, value_int v2) with Some a, Some b -> a = b | _ -> false)

let endpoint_conn graph env (a : Check.endpoint) (b : Check.endpoint) =
  match (List.assoc_opt a.var env, List.assoc_opt b.var env) with
  | Some src, Some dst ->
      Graph.conn graph ~src ~src_attr:(Check.strip_indices a.attr) ~dst
        ~dst_attr:(Check.strip_indices b.attr)
  | _ -> false

let node_path graph env a b =
  match (List.assoc_opt a env, List.assoc_opt b env) with
  | Some x, Some y -> Graph.path graph x y
  | _ -> false

let rec eval_expr ?(defaults = no_defaults) graph env ienv expr =
  match expr with
  | Check.Conn (a, b) -> endpoint_conn graph env a b
  | Check.Path (a, b) -> node_path graph env a b
  | Check.Coconn ((a, b), (c, d)) ->
      endpoint_conn graph env a b && endpoint_conn graph env c d
  | Check.Copath ((a, b), (c, d)) -> node_path graph env a b && node_path graph env c d
  | Check.Cmp (op, t1, t2) ->
      compare_values op
        (term_value ~defaults graph env ienv t1)
        (term_value ~defaults graph env ienv t2)
  | Check.Func (f, t1, t2) ->
      eval_func f
        (term_value ~defaults graph env ienv t1)
        (term_value ~defaults graph env ienv t2)
  | Check.Not e -> not (eval_expr ~defaults graph env ienv e)
  | Check.And es -> List.for_all (eval_expr ~defaults graph env ienv) es

(* --- instance enumeration ------------------------------------------ *)

(* All injective assignments of bindings to resources of matching type. *)
let assignments graph (bindings : Check.binding list) =
  let prog = Graph.program graph in
  let rec extend env = function
    | [] -> [ List.rev env ]
    | (b : Check.binding) :: rest ->
        let candidates = Program.by_type prog b.btype in
        List.concat_map
          (fun r ->
            let id = Resource.id r in
            if List.exists (fun (_, id') -> Resource.equal_id id id') env then []
            else extend ((b.var, id) :: env) rest)
          candidates
  in
  extend [] bindings

(* Index environments for one assignment: the product of the domains of
   each index variable, where a variable's domain is the largest
   collection it indexes across all endpoints mentioning it. *)
let index_envs graph check env =
  let ivars = Check.index_vars check in
  if ivars = [] then [ [] ]
  else
    let endpoints = Check.attrs_of_expr check.Check.cond @ Check.attrs_of_expr check.Check.stmt in
    let domain ienv ivar =
      List.fold_left
        (fun acc (e : Check.endpoint) ->
          match lookup_resource graph env e.var with
          | None -> acc
          | Some r -> (
              match collection_length r e.attr ivar ienv with
              | Some n -> max acc n
              | None -> acc))
        0 endpoints
    in
    (* Distinct index variables range over pairwise-distinct positions:
       [rule[i]] vs [rule[j]] never aliases the same element. *)
    let rec expand ienvs = function
      | [] -> ienvs
      | ivar :: rest ->
          let ienvs =
            List.concat_map
              (fun ienv ->
                let n = domain ienv ivar in
                if n = 0 then []
                else
                  List.filter_map
                    (fun i ->
                      if List.exists (fun (_, j) -> j = i) ienv then None
                      else Some (ienv @ [ (ivar, i) ]))
                    (List.init n Fun.id))
              ienvs
          in
          expand ienvs rest
    in
    expand [ [] ] ivars

let fold_instances ?(defaults = no_defaults) graph check f init =
  List.fold_left
    (fun acc env ->
      List.fold_left
        (fun acc ienv ->
          let cond = eval_expr ~defaults graph env ienv check.Check.cond in
          let stmt = eval_expr ~defaults graph env ienv check.Check.stmt in
          f acc env cond stmt)
        acc (index_envs graph check env))
    init
    (assignments graph check.Check.bindings)

let stats ?(defaults = no_defaults) graph check =
  fold_instances ~defaults graph check
    (fun acc _env cond stmt ->
      {
        instances = acc.instances + 1;
        cond_true = (acc.cond_true + if cond then 1 else 0);
        stmt_true = (acc.stmt_true + if stmt then 1 else 0);
        both_true = (acc.both_true + if cond && stmt then 1 else 0);
      })
    { instances = 0; cond_true = 0; stmt_true = 0; both_true = 0 }

let holds ?(defaults = no_defaults) graph check =
  fold_instances ~defaults graph check
    (fun acc _env cond stmt -> acc && ((not cond) || stmt))
    true

let occurrences ?(defaults = no_defaults) graph check =
  (stats ~defaults graph check).cond_true

let dedup_assignments envs =
  List.fold_left (fun acc env -> if List.mem env acc then acc else env :: acc) [] envs
  |> List.rev

let violations ?(defaults = no_defaults) graph check =
  fold_instances ~defaults graph check
    (fun acc env cond stmt -> if cond && not stmt then env :: acc else acc)
    []
  |> dedup_assignments

let witnesses ?(defaults = no_defaults) graph check =
  fold_instances ~defaults graph check
    (fun acc env cond stmt -> if cond && stmt then env :: acc else acc)
    []
  |> dedup_assignments

exception Found of assignment

let first_matching ~defaults graph check pred =
  match
    fold_instances ~defaults graph check
      (fun () env cond stmt -> if pred cond stmt then raise (Found env))
      ()
  with
  | () -> None
  | exception Found env -> Some env

let first_witness ?(defaults = no_defaults) graph check =
  first_matching ~defaults graph check (fun cond stmt -> cond && stmt)

let first_violation ?(defaults = no_defaults) graph check =
  first_matching ~defaults graph check (fun cond stmt -> cond && not stmt)

let violating_index_env ?(defaults = no_defaults) graph check env =
  List.find_opt
    (fun ienv ->
      eval_expr ~defaults graph env ienv check.Check.cond
      && not (eval_expr ~defaults graph env ienv check.Check.stmt))
    (index_envs graph check env)
