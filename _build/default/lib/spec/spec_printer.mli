(** Concrete syntax for semantic checks (inverse of {!Spec_parser}).

    Example output:
    [let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) =>
     outdegree(r2, !GW) == 0] *)

val term_to_string : Check.term -> string
val expr_to_string : Check.expr -> string
val to_string : Check.t -> string
val pp : Format.formatter -> Check.t -> unit

val describe : Check.t -> string
(** One-line human description including id and category. *)
