(** Human-readable diagnosis of check violations.

    A violation report names the bound resources and explains which
    part of the statement failed with the actual values involved —
    e.g. ["r1 = VM.web: location = \"westus\"; r2 = NIC.nic0: location
    = \"eastus\" — expected them to be equal"]. Used by the CLI's scan
    output and the examples. *)

type t = {
  check : Check.t;
  assignment : Eval.assignment;
  bindings : (string * string) list;  (** var -> "TYPE.name" *)
  explanation : string;  (** why the statement fails, with values *)
}

val violation :
  ?defaults:Eval.defaults ->
  Zodiac_iac.Graph.t ->
  Check.t ->
  Eval.assignment ->
  t
(** Diagnose one violating assignment (as returned by
    {!Eval.violations}). *)

val all :
  ?defaults:Eval.defaults -> Zodiac_iac.Graph.t -> Check.t -> t list
(** Diagnose every violation of a check on a graph. *)

val to_string : t -> string
(** Multi-line rendering: the check, the bindings, the explanation. *)
