module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Graph = Zodiac_iac.Graph

type t = {
  check : Check.t;
  assignment : Eval.assignment;
  bindings : (string * string) list;
  explanation : string;
}

(* Render a term together with its actual value under the assignment. *)
let term_with_value ?defaults graph env ienv term =
  let value = Eval.term_value ?defaults graph env ienv term in
  match term with
  | Check.Const _ -> Value.to_string value
  | Check.Attr { Check.var; attr } ->
      Printf.sprintf "%s.%s = %s" var attr (Value.to_string value)
  | Check.Indeg (var, ty) ->
      Printf.sprintf "indegree(%s, %s) = %s" var
        (match ty with Graph.Type t -> t | Graph.Not_type t -> "!" ^ t)
        (Value.to_string value)
  | Check.Outdeg (var, ty) ->
      Printf.sprintf "outdegree(%s, %s) = %s" var
        (match ty with Graph.Type t -> t | Graph.Not_type t -> "!" ^ t)
        (Value.to_string value)

let cmp_expectation = function
  | Check.Eq -> "expected them to be equal"
  | Check.Ne -> "expected them to differ"
  | Check.Le -> "expected the first to be at most the second"
  | Check.Ge -> "expected the first to be at least the second"
  | Check.Lt -> "expected the first to be below the second"
  | Check.Gt -> "expected the first to be above the second"

(* Explain the (sub)expression that actually fails. *)
let rec explain ?defaults graph env ienv expr =
  let eval e = Eval.eval_expr ?defaults graph env ienv e in
  let tv t = term_with_value ?defaults graph env ienv t in
  match expr with
  | Check.And es -> (
      match List.find_opt (fun e -> not (eval e)) es with
      | Some failing -> explain ?defaults graph env ienv failing
      | None -> "all conjuncts hold")
  | Check.Not inner ->
      Printf.sprintf "%s — but it must not"
        (match inner with
        | Check.Func (Check.Overlap, t1, t2) ->
            Printf.sprintf "%s overlaps %s" (tv t1) (tv t2)
        | _ -> Printf.sprintf "%s holds" (Spec_printer.expr_to_string inner))
  | Check.Cmp (op, t1, t2) ->
      Printf.sprintf "%s; %s — %s" (tv t1) (tv t2) (cmp_expectation op)
  | Check.Func (Check.Overlap, t1, t2) ->
      Printf.sprintf "%s and %s do not overlap — expected overlap" (tv t1) (tv t2)
  | Check.Func (Check.Contain, t1, t2) ->
      Printf.sprintf "%s does not contain %s" (tv t1) (tv t2)
  | Check.Func (Check.Length, t1, t2) ->
      Printf.sprintf "%s does not have length %s" (tv t1) (tv t2)
  | Check.Conn (a, b) ->
      Printf.sprintf "no connection %s.%s -> %s.%s" a.Check.var a.Check.attr b.Check.var
        b.Check.attr
  | Check.Path (a, b) -> Printf.sprintf "no path from %s to %s" a b
  | Check.Coconn _ | Check.Copath _ ->
      Printf.sprintf "the topology pattern %s is absent"
        (Spec_printer.expr_to_string expr)

let violation ?defaults graph check assignment =
  let bindings =
    List.map (fun (var, id) -> (var, Resource.id_to_string id)) assignment
  in
  let explanation =
    match Eval.violating_index_env ?defaults graph check assignment with
    | Some ienv -> explain ?defaults graph assignment ienv check.Check.stmt
    | None -> explain ?defaults graph assignment [] check.Check.stmt
  in
  { check; assignment; bindings; explanation }

let all ?defaults graph check =
  List.map (violation ?defaults graph check) (Eval.violations ?defaults graph check)

let to_string t =
  String.concat "\n"
    ([
       Printf.sprintf "violated: %s" (Spec_printer.to_string t.check);
       Printf.sprintf "  where %s"
         (String.concat ", "
            (List.map (fun (var, id) -> Printf.sprintf "%s = %s" var id) t.bindings));
     ]
    @ [ Printf.sprintf "  because %s" t.explanation ])
