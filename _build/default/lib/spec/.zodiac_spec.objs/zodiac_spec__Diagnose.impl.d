lib/spec/diagnose.ml: Check Eval List Printf Spec_printer String Zodiac_iac
