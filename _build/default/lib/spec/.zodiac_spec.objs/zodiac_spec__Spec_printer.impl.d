lib/spec/spec_printer.ml: Check Format List Printf String Zodiac_iac
