lib/spec/spec_printer.mli: Check Format
