lib/spec/spec_parser.ml: Array Check List Printf String Zodiac_iac
