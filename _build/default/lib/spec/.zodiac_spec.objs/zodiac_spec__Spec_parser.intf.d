lib/spec/spec_parser.mli: Check
