lib/spec/eval.ml: Check Fun List String Zodiac_iac Zodiac_util
