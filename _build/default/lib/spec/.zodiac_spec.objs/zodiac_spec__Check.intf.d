lib/spec/check.mli: Zodiac_iac
