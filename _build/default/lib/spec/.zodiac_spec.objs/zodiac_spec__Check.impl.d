lib/spec/check.ml: Buffer Char List Printf Stdlib String Zodiac_iac
