lib/spec/eval.mli: Check Zodiac_iac
