lib/spec/diagnose.mli: Check Eval Zodiac_iac
