(** Provider schema model (the paper's Class-1 "IaC native constraints").

    A resource schema lists its attributes with a requirement class
    (required / optional / computed), a type, and — when the provider
    schema declares them — value formats such as enumerations. Deeper
    provider-specific knowledge (reserved names, CIDR semantics) and
    reference semantics are mined separately into the KB. *)

type requirement = Required | Optional | Computed

type format =
  | Free_string  (** arbitrary string *)
  | Enum of string list  (** closed set of legal values *)
  | Cidr_format  (** IPv4 CIDR range *)
  | Port_format  (** TCP/UDP port number or range *)
  | Region  (** cloud region name *)
  | Name_format  (** resource name (unique within its namespace) *)
  | Id_format  (** opaque provider-assigned identifier *)

type attr_type =
  | T_string
  | T_int
  | T_bool
  | T_list of attr_type
  | T_block of attr list

and attr = {
  aname : string;
  atype : attr_type;
  req : requirement;
  format : format;
  refs_to : (string * string) list;
      (** resource types/attributes this attribute may legally reference
          (the provider registry's reference semantics) *)
  default : Value.t option;
      (** provider-side default applied when the attribute is omitted *)
}

type t = {
  type_name : string;
  attrs : attr list;
  slow_create : bool;
      (** resources that deploy asynchronously (gateways, firewalls) —
          their violations surface in the polling phase *)
  description : string;
}

val attr_v :
  ?req:requirement ->
  ?format:format ->
  ?refs_to:(string * string) list ->
  ?default:Value.t ->
  string ->
  attr_type ->
  attr
(** Attribute constructor with the common defaults
    ([Optional], [Free_string], no references, no default). *)

val make :
  ?slow_create:bool -> ?description:string -> string -> attr list -> t

val find_attr : t -> string -> attr option
(** Dotted-path lookup descending through [T_block] and [T_list]. *)

val required_attrs : t -> attr list
(** Top-level required attributes. *)

val attr_count : t -> int
(** Total number of attributes including nested ones (Figure 7a's
    x-axis). *)

val leaf_paths : t -> (string * attr) list
(** Dotted paths to every leaf (non-block) attribute. *)

val enum_values : t -> string -> string list option
(** Declared enumeration for a dotted path, if any. *)
