type edge = {
  src : Resource.id;
  src_attr : string;
  dst : Resource.id;
  dst_attr : string;
}

type type_spec = Type of string | Not_type of string

module Id_map = Map.Make (struct
  type t = Resource.id

  let compare = Resource.compare_id
end)

type t = {
  prog : Program.t;
  all_edges : edge list;
  out_adj : edge list Id_map.t;  (* keyed by src *)
  in_adj : edge list Id_map.t;  (* keyed by dst *)
}

let build prog =
  let all_edges =
    List.concat_map
      (fun r ->
        let src = Resource.id r in
        List.filter_map
          (fun (path, (reference : Value.reference)) ->
            let dst = { Resource.rtype = reference.rtype; rname = reference.rname } in
            if Program.mem prog dst then
              Some { src; src_attr = path; dst; dst_attr = reference.attr }
            else None)
          (Resource.references r))
      (Program.resources prog)
  in
  let add_to key edge map =
    Id_map.update key
      (function None -> Some [ edge ] | Some es -> Some (edge :: es))
      map
  in
  let out_adj =
    List.fold_left (fun m e -> add_to e.src e m) Id_map.empty all_edges
  in
  let in_adj = List.fold_left (fun m e -> add_to e.dst e m) Id_map.empty all_edges in
  { prog; all_edges; out_adj; in_adj }

let program t = t.prog

let edges t = t.all_edges

let nodes t = List.map Resource.id (Program.resources t.prog)

let edges_from t id = match Id_map.find_opt id t.out_adj with Some es -> es | None -> []

let edges_to t id = match Id_map.find_opt id t.in_adj with Some es -> es | None -> []

let conn t ~src ~src_attr ~dst ~dst_attr =
  List.exists
    (fun e ->
      Resource.equal_id e.dst dst
      && String.equal e.src_attr src_attr
      && String.equal e.dst_attr dst_attr)
    (edges_from t src)

let connected t a b = List.exists (fun e -> Resource.equal_id e.dst b) (edges_from t a)

let matches_type spec rtype =
  match spec with
  | Type ty -> String.equal ty rtype
  | Not_type ty -> not (String.equal ty rtype)

let distinct ids =
  List.fold_left (fun acc id -> if List.exists (Resource.equal_id id) acc then acc else id :: acc) [] ids
  |> List.rev

let neighbours_out t id = distinct (List.map (fun e -> e.dst) (edges_from t id))

let neighbours_in t id = distinct (List.map (fun e -> e.src) (edges_to t id))

let bfs step start =
  let visited = ref [] in
  let rec loop frontier =
    match frontier with
    | [] -> ()
    | id :: rest ->
        if List.exists (Resource.equal_id id) !visited then loop rest
        else begin
          visited := id :: !visited;
          loop (step id @ rest)
        end
  in
  loop (step start);
  List.rev !visited

let reachable_from t id = bfs (neighbours_out t) id

let reaching t id = bfs (neighbours_in t) id

let path t a b =
  (not (Resource.equal_id a b) || List.exists (Resource.equal_id a) (reachable_from t a))
  && List.exists (Resource.equal_id b) (reachable_from t a)

let indegree t id spec =
  List.length
    (List.filter (fun e -> matches_type spec e.dst.Resource.rtype) (edges_from t id))

let outdegree t id spec =
  List.length
    (List.filter (fun e -> matches_type spec e.src.Resource.rtype) (edges_to t id))

let topological_order t =
  (* Deploy referenced resources before referencing ones: repeatedly
     emit nodes all of whose out-neighbours are already emitted. *)
  let all = nodes t in
  let emitted = Hashtbl.create 16 in
  let key id = Resource.id_to_string id in
  let order = ref [] in
  let remaining = ref all in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let ready, blocked =
      List.partition
        (fun id ->
          List.for_all
            (fun dep -> Hashtbl.mem emitted (key dep))
            (neighbours_out t id))
        !remaining
    in
    if ready <> [] then begin
      progress := true;
      List.iter
        (fun id ->
          Hashtbl.replace emitted (key id) ();
          order := id :: !order)
        ready
    end;
    remaining := blocked
  done;
  (* Break cycles deterministically by appending leftovers in program order. *)
  List.iter (fun id -> order := id :: !order) !remaining;
  List.rev !order

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph iac {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "  %S;\n" (Resource.id_to_string id)))
    (nodes t);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=%S];\n"
           (Resource.id_to_string e.src)
           (Resource.id_to_string e.dst)
           e.src_attr))
    t.all_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
