(** The IaC resource graph.

    Nodes are resources; a directed edge runs from the {e referencing}
    resource (whose attribute is an {e inbound endpoint}) to the
    {e referenced} resource (whose attribute is an {e outbound
    endpoint}): [conn(NIC.b.subnet_id -> SUBNET.a.id)] is an edge
    [NIC.b -> SUBNET.a].

    Degree conventions (see DESIGN.md — the paper's §3.2 prose and
    Table 2 disagree; we follow the reading consistent with Table 2):
    - [indegree g r ty] counts edges leaving [r]'s inbound endpoints,
      i.e. resources of type [ty] that [r] references;
    - [outdegree g r ty] counts edges arriving at [r]'s outbound
      endpoints, i.e. resources of type [ty] referencing [r]. *)

type edge = {
  src : Resource.id;  (** referencing resource *)
  src_attr : string;  (** inbound endpoint (dotted attribute path) *)
  dst : Resource.id;  (** referenced resource *)
  dst_attr : string;  (** outbound endpoint *)
}

type type_spec = Type of string | Not_type of string
(** [τ] of the grammar: a resource type or its complement [!t]. *)

type t

val build : Program.t -> t
(** Derive the graph; dangling references produce no edge. *)

val program : t -> Program.t
val edges : t -> edge list
val nodes : t -> Resource.id list

val edges_from : t -> Resource.id -> edge list
(** Edges whose [src] is the given resource. *)

val edges_to : t -> Resource.id -> edge list
(** Edges whose [dst] is the given resource. *)

val conn : t -> src:Resource.id -> src_attr:string -> dst:Resource.id -> dst_attr:string -> bool
(** Does the specific edge exist? *)

val connected : t -> Resource.id -> Resource.id -> bool
(** Some edge from the first to the second resource, any endpoints. *)

val path : t -> Resource.id -> Resource.id -> bool
(** Reachability following edge direction (reflexive on equal ids only
    when a cycle exists; a resource has no trivial path to itself). *)

val matches_type : type_spec -> string -> bool

val indegree : t -> Resource.id -> type_spec -> int
val outdegree : t -> Resource.id -> type_spec -> int

val neighbours_out : t -> Resource.id -> Resource.id list
(** Distinct resources referenced by the given one. *)

val neighbours_in : t -> Resource.id -> Resource.id list
(** Distinct resources referencing the given one. *)

val reachable_from : t -> Resource.id -> Resource.id list
(** Transitive successors, excluding the start node unless on a cycle. *)

val reaching : t -> Resource.id -> Resource.id list
(** Transitive predecessors. *)

val topological_order : t -> Resource.id list
(** Deployment order: referenced resources first. Cycles are broken
    arbitrarily but deterministically. *)

val to_dot : t -> string
(** Graphviz rendering of the resource graph: one node per resource
    (labelled TYPE.name), one edge per reference (labelled with the
    inbound endpoint). *)
