lib/iac/resource.ml: Format List Printf String Value Zodiac_util
