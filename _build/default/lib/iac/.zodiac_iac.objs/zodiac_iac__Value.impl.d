lib/iac/value.ml: Format List Printf Stdlib String Zodiac_util
