lib/iac/program.mli: Format Resource Value Zodiac_util
