lib/iac/value.mli: Format Zodiac_util
