lib/iac/graph.ml: Buffer Hashtbl List Map Printf Program Resource String Value
