lib/iac/schema.mli: Value
