lib/iac/resource.mli: Format Value Zodiac_util
