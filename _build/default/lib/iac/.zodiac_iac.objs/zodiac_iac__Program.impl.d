lib/iac/program.ml: Format Fun List Option Printf Resource String Value Zodiac_util
