lib/iac/schema.ml: List String Value
