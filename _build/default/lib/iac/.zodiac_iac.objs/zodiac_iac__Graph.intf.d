lib/iac/graph.mli: Program Resource
