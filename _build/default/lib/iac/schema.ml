type requirement = Required | Optional | Computed

type format =
  | Free_string
  | Enum of string list
  | Cidr_format
  | Port_format
  | Region
  | Name_format
  | Id_format

type attr_type =
  | T_string
  | T_int
  | T_bool
  | T_list of attr_type
  | T_block of attr list

and attr = {
  aname : string;
  atype : attr_type;
  req : requirement;
  format : format;
  refs_to : (string * string) list;
  default : Value.t option;
}

type t = {
  type_name : string;
  attrs : attr list;
  slow_create : bool;
  description : string;
}

let attr_v ?(req = Optional) ?(format = Free_string) ?(refs_to = []) ?default aname
    atype =
  { aname; atype; req; format; refs_to; default }

let make ?(slow_create = false) ?(description = "") type_name attrs =
  { type_name; attrs; slow_create; description }

let rec find_in_attrs attrs segments =
  match segments with
  | [] -> None
  | seg :: rest -> (
      match List.find_opt (fun a -> String.equal a.aname seg) attrs with
      | None -> None
      | Some a -> (
          if rest = [] then Some a
          else
            match a.atype with
            | T_block inner -> find_in_attrs inner rest
            | T_list (T_block inner) -> find_in_attrs inner rest
            | T_string | T_int | T_bool | T_list _ -> None))

let find_attr t path = find_in_attrs t.attrs (String.split_on_char '.' path)

let required_attrs t = List.filter (fun a -> a.req = Required) t.attrs

let rec count_attrs attrs =
  List.fold_left
    (fun acc a ->
      acc + 1
      +
      match a.atype with
      | T_block inner | T_list (T_block inner) -> count_attrs inner
      | T_string | T_int | T_bool | T_list _ -> 0)
    0 attrs

let attr_count t = count_attrs t.attrs

let leaf_paths t =
  let acc = ref [] in
  let rec walk prefix attrs =
    List.iter
      (fun a ->
        let path = if prefix = "" then a.aname else prefix ^ "." ^ a.aname in
        match a.atype with
        | T_block inner | T_list (T_block inner) -> walk path inner
        | T_string | T_int | T_bool | T_list _ -> acc := (path, a) :: !acc)
      attrs
  in
  walk "" t.attrs;
  List.rev !acc

let enum_values t path =
  match find_attr t path with
  | Some { format = Enum values; _ } -> Some values
  | Some _ | None -> None
