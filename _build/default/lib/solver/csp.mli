(** A finite-domain constraint solver with soft constraints and
    branch-and-bound minimization — Zodiac's stand-in for Z3's MaxSMT.

    The mutation search space of §4.1 is finite: enum attributes range
    over their legal values, locations over the region list, CIDRs over
    a candidate block set, optional virtual resources over
    included/excluded. Negative-test-case generation therefore reduces
    to a weighted Max-CSP: hard constraints encode the semantic KB and
    the checks that must stay satisfied, soft constraints encode the
    checks in [R_c] that may be collaterally violated, and per-value
    costs implement change minimization (prefer the original value).

    Constraints are extensional predicates over declared variable
    scopes; the solver performs backtracking search with
    smallest-domain-first ordering, forward checking on unit
    constraints, and branch-and-bound on the accumulated penalty. *)

type problem
type var

val create : unit -> problem

val new_var : problem -> name:string -> Zodiac_iac.Value.t list -> var
(** A decision variable with a non-empty finite domain. *)

val var_name : problem -> var -> string
val domain : problem -> var -> Zodiac_iac.Value.t list

val set_value_cost :
  problem -> var -> (Zodiac_iac.Value.t -> int) -> unit
(** Cost charged when the variable takes a value (0 by default). Used
    to prefer original attribute values and minimal mutations. *)

val set_priority : problem -> var -> int -> unit
(** Variable-ordering class (default 1; lower assigned first). The
    mutation engine assigns the target check's slots priority 0 so the
    violation is decided at the top of the search tree. *)

val add_hard :
  problem -> name:string -> var list -> ((var -> Zodiac_iac.Value.t) -> bool) -> unit
(** A hard constraint over the given scope. The predicate is consulted
    once every scope variable is assigned (and for pruning when exactly
    one remains free). *)

val add_soft :
  problem ->
  name:string ->
  weight:int ->
  var list ->
  ((var -> Zodiac_iac.Value.t) -> bool) ->
  unit
(** A soft constraint: violation adds [weight] to the objective. *)

type solution

val value : solution -> var -> Zodiac_iac.Value.t
val cost : solution -> int
(** Total penalty: value costs plus violated soft-constraint weights. *)

val violated_soft : solution -> string list
(** Names of soft constraints violated by the solution. *)

val solve : ?node_budget:int -> ?good_enough:int -> problem -> solution option
(** Minimize the objective subject to the hard constraints. [None]
    means UNSAT (or budget exhausted with no feasible assignment;
    default budget 200_000 nodes). When a solution with cost at most
    [good_enough] is found, the search stops immediately — with
    cheapest-value-first ordering this yields near-minimal mutations at
    a fraction of the proof-of-optimality cost. Deterministic. *)

val stats_nodes : problem -> int
(** Search nodes explored by the last [solve] call. *)
