lib/solver/csp.mli: Zodiac_iac
