lib/solver/csp.ml: Array Int List Printf Zodiac_iac
