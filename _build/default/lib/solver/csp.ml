module Value = Zodiac_iac.Value

type var = int

type constraint_ = {
  cname : string;
  scope : var list;
  pred : (var -> Value.t) -> bool;
  weight : int option;  (* None = hard *)
}

type problem = {
  mutable domains : Value.t array array;  (* var -> candidate values *)
  mutable names : string array;
  mutable value_costs : (Value.t -> int) array;
  mutable priorities : int array;  (* lower = assigned earlier *)
  mutable nvars : int;
  mutable constraints : constraint_ list;
  mutable nodes : int;
}

let initial_capacity = 16

let create () =
  {
    domains = Array.make initial_capacity [||];
    names = Array.make initial_capacity "";
    value_costs = Array.make initial_capacity (fun _ -> 0);
    priorities = Array.make initial_capacity 1;
    nvars = 0;
    constraints = [];
    nodes = 0;
  }

let ensure_capacity p =
  if p.nvars >= Array.length p.domains then begin
    let n = 2 * Array.length p.domains in
    let grow a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    p.domains <- grow p.domains [||];
    p.names <- grow p.names "";
    p.value_costs <- grow p.value_costs (fun _ -> 0);
    p.priorities <- grow p.priorities 1
  end

let new_var p ~name values =
  if values = [] then invalid_arg (Printf.sprintf "Csp.new_var %s: empty domain" name);
  ensure_capacity p;
  let v = p.nvars in
  p.domains.(v) <- Array.of_list values;
  p.names.(v) <- name;
  p.nvars <- p.nvars + 1;
  v

let var_name p v = p.names.(v)

let domain p v = Array.to_list p.domains.(v)

let set_value_cost p v cost = p.value_costs.(v) <- cost

let set_priority p v priority = p.priorities.(v) <- priority

let add_hard p ~name scope pred =
  p.constraints <- { cname = name; scope; pred; weight = None } :: p.constraints

let add_soft p ~name ~weight scope pred =
  p.constraints <- { cname = name; scope; pred; weight = Some weight } :: p.constraints

type solution = {
  values : Value.t array;
  total_cost : int;
  violated : string list;
}

let value s v = s.values.(v)
let cost s = s.total_cost
let violated_soft s = s.violated

exception Found_infeasible

exception Good_enough

let solve ?(node_budget = 200_000) ?(good_enough = min_int) p =
  p.nodes <- 0;
  let n = p.nvars in
  let assignment = Array.make (max n 1) Value.Null in
  let assigned = Array.make (max n 1) false in
  let lookup v =
    if assigned.(v) then assignment.(v) else raise Found_infeasible
  in
  (* A constraint is decided when all scope vars are assigned. *)
  let check_decided c =
    match c.pred lookup with
    | ok -> Some ok
    | exception Found_infeasible -> None
  in
  let constraints = Array.of_list (List.rev p.constraints) in
  (* Per-variable constraint index for quick relevance tests. *)
  let relevant = Array.make (max n 1) [] in
  Array.iter
    (fun c -> List.iter (fun v -> relevant.(v) <- c :: relevant.(v)) c.scope)
    constraints;
  let best : solution option ref = ref None in
  let best_cost () = match !best with Some s -> s.total_cost | None -> max_int in
  (* Penalty of soft constraints already fully decided + value costs of
     assigned vars — a monotone lower bound on any completion. *)
  let rec search depth lower_bound =
    if p.nodes < node_budget then begin
      p.nodes <- p.nodes + 1;
      if lower_bound < best_cost () then begin
        (* pick the unassigned var with the lowest priority class,
           breaking ties by smallest domain (variables constrained by
           the problem's focus come first, avoiding thrash on unrelated
           variables deep in the tree) *)
        let pick = ref (-1) in
        let pick_key = ref (max_int, max_int) in
        for v = 0 to n - 1 do
          if not assigned.(v) then begin
            let key = (p.priorities.(v), Array.length p.domains.(v)) in
            if key < !pick_key then begin
              pick := v;
              pick_key := key
            end
          end
        done;
        if !pick < 0 then begin
          (* complete assignment *)
          let violated =
            Array.to_list constraints
            |> List.filter_map (fun c ->
                   match (c.weight, check_decided c) with
                   | Some _, Some false -> Some c.cname
                   | _ -> None)
          in
          if
            Array.for_all
              (fun c ->
                match (c.weight, check_decided c) with
                | None, Some ok -> ok
                | None, None -> false
                | Some _, _ -> true)
              constraints
          then begin
            let total = lower_bound in
            if total < best_cost () then begin
              best :=
                Some { values = Array.copy assignment; total_cost = total; violated };
              if total <= good_enough then raise Good_enough
            end
          end
        end
        else begin
          let v = !pick in
          (* order values by their cost, cheapest first *)
          let values =
            Array.to_list p.domains.(v)
            |> List.map (fun value -> (p.value_costs.(v) value, value))
            |> List.stable_sort (fun (c1, _) (c2, _) -> Int.compare c1 c2)
          in
          List.iter
            (fun (vcost, value) ->
              assignment.(v) <- value;
              assigned.(v) <- true;
              (* consistency of newly decided constraints + new penalty *)
              let feasible = ref true in
              let penalty = ref 0 in
              List.iter
                (fun c ->
                  if List.for_all (fun w -> assigned.(w)) c.scope then
                    (* newly decided iff v is the last assigned in scope *)
                    match check_decided c with
                    | Some ok ->
                        if not ok then begin
                          match c.weight with
                          | None -> feasible := false
                          | Some w ->
                              (* charge only when v completes the scope *)
                              let completes =
                                List.for_all
                                  (fun w' -> w' = v || assigned.(w'))
                                  c.scope
                              in
                              if completes then penalty := !penalty + w
                        end
                    | None -> ())
                (List.filter
                   (fun c ->
                     (* decided now, and v is in scope (so decided by this
                        assignment, not earlier) *)
                     List.mem v c.scope
                     && List.for_all (fun w -> assigned.(w)) c.scope)
                   relevant.(v));
              if !feasible then search (depth + 1) (lower_bound + vcost + !penalty);
              assigned.(v) <- false)
            values
        end
      end
    end
  in
  (try search 0 0 with Good_enough -> ());
  !best

let stats_nodes p = p.nodes
