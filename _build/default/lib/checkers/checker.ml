type finding = {
  checker : string;
  rule : string;
  resource : Zodiac_iac.Resource.id option;
  message : string;
  security_related : bool;
}

type t = {
  name : string;
  spec_format : string;
  input_phase : string;
  supports_plan_json : bool;
  analyze : Zodiac_iac.Program.t -> finding list;
}

let prevalence t programs =
  match programs with
  | [] -> 0.0
  | _ ->
      let flagged =
        List.length (List.filter (fun p -> t.analyze p <> []) programs)
      in
      float_of_int flagged /. float_of_int (List.length programs)
