lib/checkers/checker.mli: Zodiac_iac
