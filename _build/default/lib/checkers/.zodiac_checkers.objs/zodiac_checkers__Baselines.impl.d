lib/checkers/baselines.ml: Checker List Printf String Zodiac_azure Zodiac_iac
