lib/checkers/baselines.mli: Checker
