lib/checkers/checker.ml: List Zodiac_iac
