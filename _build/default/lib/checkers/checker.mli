(** Common interface for the baseline IaC static checkers of Table 4.

    Each baseline consumes either the HCL configuration or the compiled
    JSON plan (here: the program model) and reports findings. A finding
    is {e deployment-relevant} when the flagged configuration would
    actually fail to deploy — the precision column of Table 4 is the
    fraction of reported findings that are. *)

type finding = {
  checker : string;
  rule : string;
  resource : Zodiac_iac.Resource.id option;
  message : string;
  security_related : bool;
      (** compliance/security finding rather than a deployment error *)
}

type t = {
  name : string;
  spec_format : string;  (** rule language (JSON, YAML, OPA, ...) *)
  input_phase : string;  (** "Config" (HCL) or "Plan" (compiled JSON) *)
  supports_plan_json : bool;
      (** false for TFLint, which only reads HCL configurations *)
  analyze : Zodiac_iac.Program.t -> finding list;
}

val prevalence : t -> Zodiac_iac.Program.t list -> float
(** Fraction of programs with at least one finding. *)
