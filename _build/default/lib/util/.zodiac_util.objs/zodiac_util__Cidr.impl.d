lib/util/cidr.ml: Int List Printf String
