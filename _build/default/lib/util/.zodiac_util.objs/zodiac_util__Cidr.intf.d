lib/util/cidr.mli:
