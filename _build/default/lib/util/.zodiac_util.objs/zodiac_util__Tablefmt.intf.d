lib/util/tablefmt.mli:
