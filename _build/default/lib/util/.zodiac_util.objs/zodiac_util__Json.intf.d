lib/util/json.mli:
