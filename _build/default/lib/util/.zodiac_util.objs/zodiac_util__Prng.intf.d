lib/util/prng.mli:
