type t = { net : int; prefix : int }

let mask prefix = if prefix <= 0 then 0 else 0xFFFFFFFF lsl (32 - prefix) land 0xFFFFFFFF

let normalize net prefix =
  let prefix = max 0 (min 32 prefix) in
  { net = net land mask prefix; prefix }

let v a b c d prefix =
  let octet x = x land 0xFF in
  normalize ((octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d) prefix

let of_string s =
  let addr_part, prefix_part =
    match String.index_opt s '/' with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "32")
  in
  let octets = String.split_on_char '.' addr_part in
  let parse_octet o =
    match int_of_string_opt o with
    | Some v when v >= 0 && v <= 255 -> Some v
    | _ -> None
  in
  match (octets, int_of_string_opt prefix_part) with
  | [ a; b; c; d ], Some p when p >= 0 && p <= 32 -> (
      match (parse_octet a, parse_octet b, parse_octet c, parse_octet d) with
      | Some a, Some b, Some c, Some d -> Some (v a b c d p)
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Cidr.of_string_exn: %S" s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d/%d"
    ((t.net lsr 24) land 0xFF)
    ((t.net lsr 16) land 0xFF)
    ((t.net lsr 8) land 0xFF)
    (t.net land 0xFF) t.prefix

let prefix_len t = t.prefix

let network t = t.net

let size t = 1 lsl (32 - t.prefix)

let contains outer inner =
  outer.prefix <= inner.prefix && inner.net land mask outer.prefix = outer.net

let overlap a b = contains a b || contains b a

let equal a b = a.net = b.net && a.prefix = b.prefix

let compare a b =
  match Int.compare a.net b.net with 0 -> Int.compare a.prefix b.prefix | c -> c

let adjacent t =
  if t.prefix = 0 then t
  else
    let step = size t in
    let sibling = t.net lxor step in
    if sibling land 0xFFFFFFFF = sibling && sibling >= 0 then normalize sibling t.prefix
    else normalize (t.net - step) t.prefix

let nth_subnet t p i =
  if p < t.prefix || p > 32 then None
  else
    let step = 1 lsl (32 - p) in
    let count = 1 lsl (p - t.prefix) in
    if i < 0 || i >= count then None else Some (normalize (t.net + (i * step)) p)

let subdivide t p =
  if p <= t.prefix then [ t ]
  else
    let count = min 256 (1 lsl (min 30 (p - t.prefix))) in
    List.init count (fun i ->
        match nth_subnet t p i with
        | Some s -> s
        | None -> assert false)

let disjoint_within parent p n =
  let blocks = subdivide parent p in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take n blocks
