(** ASCII table rendering for experiment reports.

    The benchmark harness regenerates every table and figure of the paper
    as text; this module renders aligned tables and simple horizontal bar
    charts so the output is directly comparable to the paper. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] draws a boxed table with column widths fitted
    to content. Rows shorter than the header are padded with blanks. *)

val bar_chart :
  ?width:int -> title:string -> (string * float) list -> string
(** [bar_chart ~title series] renders one horizontal bar per entry,
    scaled so the largest value spans [width] (default 50) cells. *)

val grouped_bars :
  ?width:int ->
  title:string ->
  group_names:string list ->
  (string * float list) list ->
  string
(** [grouped_bars ~title ~group_names rows] renders, for each row label,
    one bar per group (used for the w/- and w/o-KB comparison of
    Figure 7a). *)

val section : string -> string
(** A visually distinct section banner. *)
