let pad s width = s ^ String.make (max 0 (width - String.length s)) ' '

let render ~header rows =
  let cols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= cols then row else row @ List.init (cols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let hline =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let render_row cells =
    "| "
    ^ String.concat " | " (List.map2 (fun cell w -> pad cell w) cells widths)
    ^ " |"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (hline ^ "\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (hline ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf hline;
  Buffer.contents buf

let bar ?(width = 50) value max_value =
  let cells =
    if max_value <= 0.0 then 0
    else int_of_float (Float.round (value /. max_value *. float_of_int width))
  in
  String.make (max 0 cells) '#'

let bar_chart ?(width = 50) ~title series =
  let max_value = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 series in
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 series
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, value) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s | %s %.2f\n" (pad label label_width)
           (bar ~width value max_value) value))
    series;
  Buffer.contents buf

let grouped_bars ?(width = 40) ~title ~group_names rows =
  let max_value =
    List.fold_left
      (fun acc (_, values) -> List.fold_left Float.max acc values)
      0.0 rows
  in
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
  in
  let group_width =
    List.fold_left (fun acc g -> max acc (String.length g)) 0 group_names
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, values) ->
      List.iteri
        (fun i value ->
          let group = List.nth group_names i in
          let row_label = if i = 0 then label else "" in
          Buffer.add_string buf
            (Printf.sprintf "  %s %s | %s %.1f\n" (pad row_label label_width)
               (pad group group_width)
               (bar ~width value max_value)
               value))
        values)
    rows;
  Buffer.contents buf

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.sprintf "\n%s\n==  %s  ==\n%s" line title line
