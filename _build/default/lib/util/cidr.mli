(** IPv4 CIDR arithmetic.

    Semantic checks over IaC programs frequently constrain address space
    ("subnets of a VPC must not overlap", "peered VPCs use disjoint
    ranges"), and negative test generation must mutate CIDR values to
    adjacent ranges of the same prefix length. This module provides exact
    prefix arithmetic on IPv4 blocks. *)

type t
(** A CIDR block, normalized: host bits below the prefix are zero. *)

val v : int -> int -> int -> int -> int -> t
(** [v a b c d prefix] builds [a.b.c.d/prefix]. Octets are masked to
    8 bits, prefix clamped to [\[0,32\]], host bits cleared. *)

val of_string : string -> t option
(** Parse ["10.0.0.0/16"]. [None] on malformed input. A bare address
    parses as a /32. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val prefix_len : t -> int
(** Prefix length in [\[0,32\]]. *)

val network : t -> int
(** Network address as a 32-bit unsigned value in an OCaml int. *)

val size : t -> int
(** Number of addresses covered, [2^(32-prefix)]. *)

val contains : t -> t -> bool
(** [contains outer inner] — every address of [inner] lies in [outer]. *)

val overlap : t -> t -> bool
(** The two blocks share at least one address. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Order by network address, then prefix length. *)

val adjacent : t -> t
(** The neighbouring block of the same prefix length (sibling within the
    parent block when one exists, otherwise the previous block). Used to
    minimally mutate a CIDR value. *)

val subdivide : t -> int -> t list
(** [subdivide t p] splits [t] into blocks of prefix length [p >=
    prefix_len t]. Returns [\[t\]] when [p <= prefix_len t]. The list is
    capped at 256 blocks to bound enumeration. *)

val nth_subnet : t -> int -> int -> t option
(** [nth_subnet t p i] is the [i]-th /p block inside [t], if it exists. *)

val disjoint_within : t -> int -> int -> t list
(** [disjoint_within parent p n] carves up to [n] pairwise-disjoint /p
    blocks out of [parent]. *)
