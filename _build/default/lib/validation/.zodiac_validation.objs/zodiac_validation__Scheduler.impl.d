lib/validation/scheduler.ml: Hashtbl Int List Mdc Mutation Option String Testcase Zodiac_cloud Zodiac_iac Zodiac_kb Zodiac_spec
