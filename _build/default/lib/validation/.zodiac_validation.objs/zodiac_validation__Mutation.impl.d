lib/validation/mutation.ml: Hashtbl Int List Mdc Option Printf String Testcase Zodiac_azure Zodiac_cloud Zodiac_iac Zodiac_kb Zodiac_solver Zodiac_spec Zodiac_util
