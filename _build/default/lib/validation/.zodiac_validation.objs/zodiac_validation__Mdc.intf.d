lib/validation/mdc.mli: Zodiac_iac
