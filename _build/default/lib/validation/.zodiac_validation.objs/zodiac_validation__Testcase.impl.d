lib/validation/testcase.ml: Int List Mdc String Zodiac_cloud Zodiac_iac Zodiac_spec
