lib/validation/scheduler.mli: Zodiac_iac Zodiac_kb Zodiac_spec
