lib/validation/mdc.ml: List Zodiac_azure Zodiac_iac
