lib/validation/mutation.mli: Testcase Zodiac_iac Zodiac_kb Zodiac_spec
