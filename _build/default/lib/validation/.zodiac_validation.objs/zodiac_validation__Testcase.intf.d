lib/validation/testcase.mli: Zodiac_iac Zodiac_spec
