open Zodiac_iac.Schema
module Value = Zodiac_iac.Value

(* Shorthands for schema construction. *)
let req = Required
let computed = Computed

let a = attr_v

let str_default s = Value.Str s
let bool_default b = Value.Bool b
let int_default i = Value.Int i

(* Attributes shared by nearly every Azure resource. *)
let name_attr = a ~req ~format:Name_format "name" T_string
let location_attr = a ~req ~format:Region "location" T_string
let id_attr = a ~req:computed ~format:Id_format "id" T_string
let tags_attr = a "tags" (T_block [])

let common = [ name_attr; location_attr; id_attr; tags_attr ]

(* A timeouts block, present on most azurerm resources; contributes to
   realistic attribute counts. *)
let timeouts_block =
  a "timeouts"
    (T_block
       [
         a "create" T_string;
         a "read" T_string;
         a "update" T_string;
         a "delete" T_string;
       ])

let identity_block =
  a "identity"
    (T_block
       [
         a ~req ~format:(Enum [ "SystemAssigned"; "UserAssigned" ]) "type" T_string;
         a ~refs_to:[ ("IDENTITY", "id") ] "identity_ids" (T_list T_string);
         a ~req:computed "principal_id" T_string;
       ])

let vpc =
  make ~description:"Virtual network (VPC)" "VPC"
    (common
    @ [
        a ~req ~format:Cidr_format "address_space" (T_list T_string);
        a "dns_servers" (T_list T_string);
        a "flow_timeout_in_minutes" T_int;
        a "bgp_community" T_string;
        a ~default:(bool_default false) "encryption_enabled" T_bool;
        a ~format:Id_format ~refs_to:[ ("DDOS", "id") ] "ddos_protection_plan_id" T_string;
        timeouts_block;
      ])

let subnet =
  make ~description:"Subnet of a virtual network" "SUBNET"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("VPC", "name") ] "vpc_name" T_string;
      a ~req ~format:Cidr_format "cidr" T_string;
      a
        ~format:
          (Enum
             [
               "Microsoft.Storage";
               "Microsoft.Sql";
               "Microsoft.KeyVault";
               "Microsoft.Web";
               "Microsoft.ContainerRegistry";
             ])
        "service_endpoints" (T_list T_string);
      a
        "delegation"
        (T_block
           [
             a ~req "name" T_string;
             a ~req
               ~format:
                 (Enum
                    [
                      "Microsoft.Web/serverFarms";
                      "Microsoft.ContainerInstance/containerGroups";
                      "Microsoft.Netapp/volumes";
                      "Microsoft.DBforMySQL/flexibleServers";
                    ])
               "service" T_string;
           ]);
      a ~default:(str_default "Enabled") ~format:(Enum [ "Enabled"; "Disabled" ])
        "private_endpoint_network_policies" T_string;
      a ~default:(bool_default true) "private_link_service_network_policies_enabled"
        T_bool;
      a "default_outbound_access_enabled" T_bool;
      timeouts_block;
    ]

let nic =
  make ~description:"Network interface card" "NIC"
    (common
    @ [
        a ~req "ip_config"
          (T_block
             [
               a ~req "name" T_string;
               a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id"
                 T_string;
               a ~req ~format:(Enum [ "Dynamic"; "Static" ]) "private_ip_allocation"
                 T_string;
               a "private_ip_address" T_string;
               a ~format:Id_format ~refs_to:[ ("IP", "id") ] "public_ip_id" T_string;
               a ~default:(bool_default true) "primary" T_bool;
               a ~default:(str_default "IPv4") ~format:(Enum [ "IPv4"; "IPv6" ])
                 "private_ip_version" T_string;
             ]);
        a "dns_servers" (T_list T_string);
        a ~default:(bool_default false) "accelerated_networking" T_bool;
        a ~default:(bool_default false) "ip_forwarding" T_bool;
        a "internal_dns_name_label" T_string;
        a ~req:computed "mac_address" T_string;
        a ~req:computed "private_ip_addresses" (T_list T_string);
        timeouts_block;
      ])

(* The VM schema is deliberately the broadest (Figure 7a's right-most
   column): Azure's azurerm_linux_virtual_machine has 80+ attributes. *)
let vm =
  make ~description:"Virtual machine" "VM"
    (common
    @ [
        a ~req ~format:(Enum Skus.vm_sku_names) "sku" T_string;
        a ~req ~format:Id_format ~refs_to:[ ("NIC", "id") ] "nic_ids" (T_list T_string);
        a ~req "os_disk"
          (T_block
             [
               a ~req ~format:Name_format "name" T_string;
               a ~req ~format:(Enum [ "None"; "ReadOnly"; "ReadWrite" ]) "caching"
                 T_string;
               a ~req
                 ~format:
                   (Enum
                      [ "Standard_LRS"; "StandardSSD_LRS"; "Premium_LRS"; "UltraSSD_LRS" ])
                 "storage_type" T_string;
               a "disk_size_gb" T_int;
               a "write_accelerator_enabled" T_bool;
               a "security_encryption_type" T_string;
             ]);
        a "source_image_ref"
          (T_block
             [
               a ~req "publisher" T_string;
               a ~req "offer" T_string;
               a ~req "sku" T_string;
               a ~default:(str_default "latest") "version" T_string;
             ]);
        a ~format:Id_format ~refs_to:[ ("IMAGE", "id") ] "source_image_id" T_string;
        a ~default:(str_default "Image") ~format:(Enum [ "Image"; "Attach" ]) "create"
          T_string;
        a "admin_username" T_string;
        a "admin_password" T_string;
        a "admin_ssh_key"
          (T_block [ a ~req "username" T_string; a ~req "public_key" T_string ]);
        a ~default:(bool_default true) "password_authentication_enabled" T_bool;
        a ~default:(str_default "Regular") ~format:(Enum [ "Regular"; "Spot" ])
          "priority" T_string;
        a ~format:(Enum [ "Deallocate"; "Delete" ]) "evict_policy" T_string;
        a "max_bid_price" T_int;
        a "zone" T_string;
        a ~format:Id_format ~refs_to:[ ("AVSET", "id") ] "availability_set_id" T_string;
        a ~format:Id_format ~refs_to:[ ("PPG", "id") ] "proximity_placement_group_id"
          T_string;
        a ~format:Id_format "dedicated_host_id" T_string;
        a "custom_data" T_string;
        a "user_data" T_string;
        a "computer_name" T_string;
        a ~default:(bool_default false) "encryption_at_host_enabled" T_bool;
        a ~default:(bool_default false) "secure_boot_enabled" T_bool;
        a ~default:(bool_default false) "vtpm_enabled" T_bool;
        a ~format:(Enum [ "ImageDefault"; "AutomaticByPlatform" ]) "patch_mode" T_string;
        a ~format:(Enum [ "None"; "Windows_Client"; "Windows_Server"; "RHEL_BYOS" ])
          "license_type" T_string;
        a "extensions_time_budget" T_string;
        a "allow_extension_operations" T_bool;
        a "boot_diagnostics" (T_block [ a "storage_account_uri" T_string ]);
        a "plan"
          (T_block
             [
               a ~req "name" T_string;
               a ~req "product" T_string;
               a ~req "publisher" T_string;
             ]);
        a "termination_notification"
          (T_block [ a ~req "enabled" T_bool; a "timeout" T_string ]);
        a "gallery_application"
          (T_block [ a ~req "version_id" T_string; a "order" T_int ]);
        identity_block;
        a ~req:computed "private_ip_address" T_string;
        a ~req:computed "public_ip_address" T_string;
        a ~req:computed "virtual_machine_id" T_string;
        timeouts_block;
      ])

let ip =
  make ~description:"Public IP address" "IP"
    (common
    @ [
        a ~req ~format:(Enum [ "Static"; "Dynamic" ]) "allocation" T_string;
        a ~default:(str_default "Basic") ~format:(Enum Skus.ip_sku_names) "sku" T_string;
        a ~default:(str_default "Regional") ~format:(Enum [ "Regional"; "Global" ])
          "sku_tier" T_string;
        a ~default:(str_default "IPv4") ~format:(Enum [ "IPv4"; "IPv6" ]) "ip_version"
          T_string;
        a "zones" (T_list T_string);
        a "domain_name_label" T_string;
        a ~default:(int_default 4) "idle_timeout_in_minutes" T_int;
        a "reverse_fqdn" T_string;
        a ~req:computed "ip_address" T_string;
        a ~req:computed "fqdn" T_string;
        timeouts_block;
      ])

let gw =
  make ~slow_create:true ~description:"Virtual network gateway" "GW"
    (common
    @ [
        a ~req ~format:(Enum [ "Vpn"; "ExpressRoute" ]) "type" T_string;
        a ~default:(str_default "RouteBased")
          ~format:(Enum [ "RouteBased"; "PolicyBased" ]) "vpn_type" T_string;
        a ~req ~format:(Enum Skus.gw_sku_names) "sku" T_string;
        a ~default:(bool_default false) "active_active" T_bool;
        a ~default:(bool_default false) "enable_bgp" T_bool;
        a ~default:(str_default "Generation1")
          ~format:(Enum [ "Generation1"; "Generation2" ]) "generation" T_string;
        a ~req "ip_config"
          (T_block
             [
               a ~req "name" T_string;
               a ~req ~format:Id_format ~refs_to:[ ("IP", "id") ] "public_ip_id"
                 T_string;
               a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id"
                 T_string;
               a ~default:(str_default "Dynamic")
                 ~format:(Enum [ "Dynamic"; "Static" ]) "private_ip_allocation" T_string;
             ]);
        a "bgp_settings"
          (T_block [ a "asn" T_int; a "peering_addresses" (T_list T_string) ]);
        a "custom_route" (T_block [ a "address_prefixes" (T_list T_string) ]);
        timeouts_block;
      ])

let appgw =
  make ~slow_create:true ~description:"Application gateway" "APPGW"
    (common
    @ [
        a ~req "sku"
          (T_block
             [
               a ~req ~format:(Enum Skus.appgw_sku_names) "name" T_string;
               a ~req
                 ~format:(Enum [ "Standard"; "Standard_v2"; "WAF"; "WAF_v2" ]) "tier"
                 T_string;
               a "capacity" T_int;
             ]);
        a ~req "gateway_ip_config"
          (T_block
             [
               a ~req "name" T_string;
               a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id"
                 T_string;
             ]);
        a ~req "frontend_ip_config"
          (T_block
             [
               a ~req "name" T_string;
               a ~format:Id_format ~refs_to:[ ("IP", "id") ] "public_ip_id" T_string;
               a ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
               a ~format:(Enum [ "Dynamic"; "Static" ]) "private_ip_allocation" T_string;
             ]);
        a ~req "frontend_port"
          (T_list
             (T_block
                [ a ~req "name" T_string; a ~req ~format:Port_format "port" T_int ]));
        a ~req "backend_address_pool"
          (T_list (T_block [ a ~req "name" T_string; a "ip_addresses" (T_list T_string) ]));
        a ~req "backend_http_settings"
          (T_list
             (T_block
                [
                  a ~req "name" T_string;
                  a ~req ~format:Port_format "port" T_int;
                  a ~req ~format:(Enum [ "Http"; "Https" ]) "protocol" T_string;
                  a ~format:(Enum [ "Enabled"; "Disabled" ]) "cookie_based_affinity"
                    T_string;
                  a "request_timeout" T_int;
                ]));
        a ~req "http_listener"
          (T_list
             (T_block
                [
                  a ~req "name" T_string;
                  a ~req "frontend_ip_config_name" T_string;
                  a ~req "frontend_port_name" T_string;
                  a ~req ~format:(Enum [ "Http"; "Https" ]) "protocol" T_string;
                  a "host_name" T_string;
                ]));
        a ~req "request_routing_rule"
          (T_list
             (T_block
                [
                  a ~req "name" T_string;
                  a ~req ~format:(Enum [ "Basic"; "PathBasedRouting" ]) "rule_type"
                    T_string;
                  a ~req "http_listener_name" T_string;
                  a "backend_address_pool_name" T_string;
                  a "backend_http_settings_name" T_string;
                  a "priority" T_int;
                ]));
        a "waf_configuration"
          (T_block
             [
               a ~req "enabled" T_bool;
               a ~req ~format:(Enum [ "Detection"; "Prevention" ]) "firewall_mode"
                 T_string;
               a ~req "rule_set_version" T_string;
             ]);
        a ~default:(bool_default false) "http2_enabled" T_bool;
        a "zones" (T_list T_string);
        identity_block;
        timeouts_block;
      ])

let lb =
  make ~description:"Load balancer" "LB"
    (common
    @ [
        a ~default:(str_default "Basic") ~format:(Enum Skus.lb_sku_names) "sku" T_string;
        a ~default:(str_default "Regional") ~format:(Enum [ "Regional"; "Global" ])
          "sku_tier" T_string;
        a ~req "frontend_ip_config"
          (T_block
             [
               a ~req "name" T_string;
               a ~format:Id_format ~refs_to:[ ("IP", "id") ] "public_ip_id" T_string;
               a ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
               a ~format:(Enum [ "Dynamic"; "Static" ]) "private_ip_allocation" T_string;
               a "private_ip_address" T_string;
               a "zones" (T_list T_string);
             ]);
        timeouts_block;
      ])

let sg =
  make ~description:"Network security group" "SG"
    (common
    @ [
        a "rule"
          (T_list
             (T_block
                [
                  a ~req "name" T_string;
                  a ~req ~format:(Enum [ "Inbound"; "Outbound" ]) "dir" T_string;
                  a ~req ~format:(Enum [ "Allow"; "Deny" ]) "access" T_string;
                  a ~req "priority" T_int;
                  a ~req ~format:(Enum [ "Tcp"; "Udp"; "Icmp"; "*" ]) "protocol"
                    T_string;
                  a ~req ~format:Port_format "source_port_range" T_string;
                  a ~req ~format:Port_format "dest_port_range" T_string;
                  a ~req ~format:Cidr_format "source_cidr" T_string;
                  a ~req ~format:Cidr_format "dest_cidr" T_string;
                  a "description" T_string;
                ]));
        timeouts_block;
      ])

let rt =
  make ~description:"Route table" "RT"
    (common
    @ [
        a ~default:(bool_default false) "disable_bgp_route_propagation" T_bool;
        timeouts_block;
      ])

let route =
  make ~description:"Route within a route table" "ROUTE"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("RT", "name") ] "rt_name" T_string;
      a ~req ~format:Cidr_format "address_prefix" T_string;
      a ~req
        ~format:
          (Enum
             [
               "VirtualNetworkGateway"; "VnetLocal"; "Internet"; "VirtualAppliance"; "None";
             ])
        "next_hop_type" T_string;
      a "next_hop_ip" T_string;
      timeouts_block;
    ]

let rtassoc =
  make ~description:"Subnet / route-table association" "RTASSOC"
    [
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("RT", "id") ] "rt_id" T_string;
      timeouts_block;
    ]

let sgassoc =
  make ~description:"Subnet / security-group association" "SGASSOC"
    [
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("SG", "id") ] "sg_id" T_string;
      timeouts_block;
    ]

let fw =
  make ~slow_create:true ~description:"Azure firewall" "FW"
    (common
    @ [
        a ~req ~format:(Enum [ "AZFW_VNet"; "AZFW_Hub" ]) "sku_name" T_string;
        a ~req ~format:(Enum [ "Basic"; "Standard"; "Premium" ]) "sku_tier" T_string;
        a ~req "ip_config"
          (T_block
             [
               a ~req "name" T_string;
               a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id"
                 T_string;
               a ~req ~format:Id_format ~refs_to:[ ("IP", "id") ] "public_ip_id"
                 T_string;
             ]);
        a ~format:Id_format "policy_id" T_string;
        a "zones" (T_list T_string);
        a "dns_servers" (T_list T_string);
        timeouts_block;
      ])

let sa =
  make ~description:"Storage account" "SA"
    (common
    @ [
        a ~req ~format:(Enum [ "Standard"; "Premium" ]) "tier" T_string;
        a ~req ~format:(Enum Skus.sa_replications) "replica" T_string;
        a ~default:(str_default "StorageV2")
          ~format:(Enum [ "StorageV2"; "Storage"; "BlobStorage"; "FileStorage"; "BlockBlobStorage" ])
          "kind" T_string;
        a ~default:(str_default "Hot") ~format:(Enum [ "Hot"; "Cool" ]) "access_tier"
          T_string;
        a ~default:(bool_default true) "https_only" T_bool;
        a ~default:(str_default "TLS1_2")
          ~format:(Enum [ "TLS1_0"; "TLS1_1"; "TLS1_2" ]) "min_tls" T_string;
        a ~default:(bool_default false) "public_access_enabled" T_bool;
        a ~default:(bool_default false) "hns_enabled" T_bool;
        a ~default:(bool_default false) "sftp_enabled" T_bool;
        a "network_rules"
          (T_block
             [
               a ~req ~format:(Enum [ "Allow"; "Deny" ]) "default_action" T_string;
               a "ip_rules" (T_list T_string);
               a ~refs_to:[ ("SUBNET", "id") ] "subnet_ids" (T_list T_string);
             ]);
        identity_block;
        a ~req:computed "primary_blob_endpoint" T_string;
        a ~req:computed "primary_access_key" T_string;
        timeouts_block;
      ])

let disk =
  make ~description:"Managed disk" "DISK"
    (common
    @ [
        a ~req
          ~format:
            (Enum [ "Standard_LRS"; "StandardSSD_LRS"; "Premium_LRS"; "UltraSSD_LRS" ])
          "storage_type" T_string;
        a ~req ~format:(Enum [ "Empty"; "Copy"; "FromImage"; "Import"; "Restore" ])
          "create_option" T_string;
        a "size_gb" T_int;
        a ~format:Id_format ~refs_to:[ ("DISK", "id"); ("SNAPSHOT", "id") ] "source_id"
          T_string;
        a ~format:Id_format ~refs_to:[ ("IMAGE", "id") ] "image_id" T_string;
        a "zone" T_string;
        a "disk_iops_read_write" T_int;
        a "disk_mbps_read_write" T_int;
        a ~default:(bool_default false) "public_network_access_enabled" T_bool;
        timeouts_block;
      ])

let attach =
  make ~description:"VM / managed-disk attachment" "ATTACH"
    [
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("VM", "id") ] "vm_id" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("DISK", "id") ] "disk_id" T_string;
      a ~req "lun" T_int;
      a ~req ~format:(Enum [ "None"; "ReadOnly"; "ReadWrite" ]) "caching" T_string;
      a ~default:(bool_default false) "write_accelerator_enabled" T_bool;
      timeouts_block;
    ]

let peering =
  make ~description:"VPC peering" "PEERING"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("VPC", "name") ] "vpc_name" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("VPC", "id") ] "remote_vpc_id" T_string;
      a ~default:(bool_default false) "allow_forwarded_traffic" T_bool;
      a ~default:(bool_default false) "allow_gateway_transit" T_bool;
      a ~default:(bool_default false) "use_remote_gateways" T_bool;
      a ~default:(bool_default true) "allow_virtual_network_access" T_bool;
      timeouts_block;
    ]

let tunnel =
  make ~slow_create:true ~description:"VPN connection (tunnel)" "TUNNEL"
    (common
    @ [
        a ~req ~format:(Enum [ "IPsec"; "Vnet2Vnet"; "ExpressRoute" ]) "type" T_string;
        a ~req ~format:Id_format ~refs_to:[ ("GW", "id") ] "gw_id" T_string;
        a ~format:Id_format ~refs_to:[ ("GW", "id") ] "peer_gw_id" T_string;
        a ~format:Id_format ~refs_to:[ ("LNG", "id") ] "lng_id" T_string;
        a "shared_key" T_string;
        a ~default:(int_default 10) "routing_weight" T_int;
        a ~default:(bool_default false) "enable_bgp" T_bool;
        a ~format:(Enum [ "IKEv1"; "IKEv2" ]) "connection_protocol" T_string;
        a "dpd_timeout_seconds" T_int;
        timeouts_block;
      ])

let lng =
  make ~description:"Local network gateway (on-premises endpoint)" "LNG"
    (common
    @ [
        a ~req "gateway_address" T_string;
        a ~req ~format:Cidr_format "address_space" (T_list T_string);
        a "bgp_settings" (T_block [ a "asn" T_int; a "bgp_peering_address" T_string ]);
        timeouts_block;
      ])

let nat =
  make ~description:"NAT gateway" "NAT"
    (common
    @ [
        a ~default:(str_default "Standard") ~format:(Enum [ "Standard" ]) "sku" T_string;
        a ~default:(int_default 4) "idle_timeout_in_minutes" T_int;
        a "zones" (T_list T_string);
        timeouts_block;
      ])

let natassoc =
  make ~description:"Subnet / NAT gateway association" "NATASSOC"
    [
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("NAT", "id") ] "nat_id" T_string;
      timeouts_block;
    ]

let natipassoc =
  make ~description:"NAT gateway / public-IP association" "NATIPASSOC"
    [
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("NAT", "id") ] "nat_id" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("IP", "id") ] "ip_id" T_string;
      timeouts_block;
    ]

let bastion =
  make ~description:"Bastion host" "BASTION"
    (common
    @ [
        a ~default:(str_default "Basic") ~format:(Enum [ "Developer"; "Basic"; "Standard" ])
          "sku" T_string;
        a ~req "ip_config"
          (T_block
             [
               a ~req "name" T_string;
               a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id"
                 T_string;
               a ~req ~format:Id_format ~refs_to:[ ("IP", "id") ] "public_ip_id"
                 T_string;
             ]);
        a "scale_units" T_int;
        a ~default:(bool_default false) "tunneling_enabled" T_bool;
        timeouts_block;
      ])

let avset =
  make ~description:"Availability set" "AVSET"
    (common
    @ [
        a ~default:(int_default 3) "fault_domain_count" T_int;
        a ~default:(int_default 5) "update_domain_count" T_int;
        a ~default:(bool_default true) "managed" T_bool;
        a ~format:Id_format ~refs_to:[ ("PPG", "id") ] "proximity_placement_group_id"
          T_string;
        timeouts_block;
      ])

let ppg =
  make ~description:"Proximity placement group" "PPG"
    (common
    @ [
        a "allowed_vm_sizes" (T_list T_string);
        a "zone" T_string;
        timeouts_block;
      ])

let vmss =
  make ~description:"VM scale set" "VMSS"
    (common
    @ [
        a ~req ~format:(Enum Skus.vm_sku_names) "sku" T_string;
        a ~req "instances" T_int;
        a ~req "os_disk"
          (T_block
             [
               a ~req ~format:(Enum [ "None"; "ReadOnly"; "ReadWrite" ]) "caching"
                 T_string;
               a ~req
                 ~format:(Enum [ "Standard_LRS"; "StandardSSD_LRS"; "Premium_LRS" ])
                 "storage_type" T_string;
             ]);
        a ~req "network_interface"
          (T_block
             [
               a ~req "name" T_string;
               a ~req "ip_config"
                 (T_block
                    [
                      a ~req "name" T_string;
                      a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id"
                        T_string;
                    ]);
               a ~default:(bool_default true) "primary" T_bool;
             ]);
        a "source_image_ref"
          (T_block
             [
               a ~req "publisher" T_string;
               a ~req "offer" T_string;
               a ~req "sku" T_string;
               a ~req "version" T_string;
             ]);
        a "admin_username" T_string;
        a "admin_password" T_string;
        a "upgrade_mode" ~format:(Enum [ "Manual"; "Automatic"; "Rolling" ]) T_string;
        a "zones" (T_list T_string);
        a ~default:(bool_default false) "overprovision" T_bool;
        identity_block;
        timeouts_block;
      ])

let snapshot =
  make ~description:"Disk snapshot" "SNAPSHOT"
    (common
    @ [
        a ~req ~format:(Enum [ "Copy"; "Import" ]) "create_option" T_string;
        a ~req ~format:Id_format ~refs_to:[ ("DISK", "id") ] "source_disk_id" T_string;
        a "size_gb" T_int;
        timeouts_block;
      ])

let image =
  make ~description:"Custom VM image" "IMAGE"
    (common
    @ [
        a ~format:Id_format ~refs_to:[ ("VM", "id") ] "source_vm_id" T_string;
        a "os_disk"
          (T_block
             [
               a ~format:(Enum [ "Linux"; "Windows" ]) "os_type" T_string;
               a ~format:(Enum [ "Generalized"; "Specialized" ]) "os_state" T_string;
               a ~format:Id_format "managed_disk_id" T_string;
             ]);
        a ~default:(str_default "V1") ~format:(Enum [ "V1"; "V2" ]) "hyper_v_generation"
          T_string;
        timeouts_block;
      ])

let container =
  make ~description:"Blob container" "CONTAINER"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("SA", "name") ] "sa_name" T_string;
      a ~default:(str_default "private")
        ~format:(Enum [ "private"; "blob"; "container" ]) "access_type" T_string;
      timeouts_block;
    ]

let share =
  make ~description:"File share" "SHARE"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("SA", "name") ] "sa_name" T_string;
      a ~req "quota" T_int;
      a ~format:(Enum [ "SMB"; "NFS" ]) "protocol" T_string;
      a ~format:(Enum [ "TransactionOptimized"; "Hot"; "Cool"; "Premium" ]) "tier"
        T_string;
      timeouts_block;
    ]

let dns =
  make ~description:"Public DNS zone" "DNS"
    [ name_attr; id_attr; tags_attr; a ~req:computed "name_servers" (T_list T_string); timeouts_block ]

let dnsrec =
  make ~description:"DNS record set" "DNSREC"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("DNS", "name") ] "zone_name" T_string;
      a ~req ~format:(Enum [ "A"; "AAAA"; "CNAME"; "MX"; "TXT"; "NS"; "SRV" ]) "type"
        T_string;
      a ~req "ttl" T_int;
      a "records" (T_list T_string);
      a ~format:Id_format ~refs_to:[ ("IP", "id") ] "target_resource_id" T_string;
      timeouts_block;
    ]

let privdns =
  make ~description:"Private DNS zone" "PRIVDNS"
    [ name_attr; id_attr; tags_attr; timeouts_block ]

let privdnslink =
  make ~description:"Private DNS zone / VPC link" "PRIVDNSLINK"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("PRIVDNS", "name") ] "zone_name" T_string;
      a ~req ~format:Id_format ~refs_to:[ ("VPC", "id") ] "vpc_id" T_string;
      a ~default:(bool_default false) "registration_enabled" T_bool;
      timeouts_block;
    ]

let privep =
  make ~description:"Private endpoint" "PRIVEP"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
        a ~req "private_service_connection"
          (T_block
             [
               a ~req "name" T_string;
               a ~req ~format:Id_format
                 ~refs_to:[ ("SA", "id"); ("KV", "id"); ("SQLSERVER", "id") ]
                 "target_resource_id" T_string;
               a ~req "subresource_names" (T_list T_string);
               a ~default:(bool_default false) "is_manual_connection" T_bool;
             ]);
        timeouts_block;
      ])

let kv =
  make ~description:"Key vault" "KV"
    (common
    @ [
        a ~req ~format:(Enum [ "standard"; "premium" ]) "sku" T_string;
        a ~req "tenant_id" T_string;
        a ~default:(bool_default false) "purge_protection_enabled" T_bool;
        a ~default:(int_default 90) "soft_delete_retention_days" T_int;
        a ~default:(bool_default false) "rbac_authorization_enabled" T_bool;
        a ~default:(bool_default true) "public_network_access_enabled" T_bool;
        a "network_acls"
          (T_block
             [
               a ~req ~format:(Enum [ "Allow"; "Deny" ]) "default_action" T_string;
               a ~req ~format:(Enum [ "AzureServices"; "None" ]) "bypass" T_string;
               a "ip_rules" (T_list T_string);
             ]);
        timeouts_block;
      ])

let acr =
  make ~description:"Container registry" "ACR"
    (common
    @ [
        a ~req ~format:(Enum [ "Basic"; "Standard"; "Premium" ]) "sku" T_string;
        a ~default:(bool_default false) "admin_enabled" T_bool;
        a "georeplications"
          (T_list
             (T_block
                [
                  a ~req ~format:Region "location" T_string;
                  a ~default:(bool_default false) "zone_redundancy_enabled" T_bool;
                ]));
        a ~default:(bool_default false) "anonymous_pull_enabled" T_bool;
        a ~default:(bool_default true) "public_network_access_enabled" T_bool;
        timeouts_block;
      ])

let aks =
  make ~slow_create:true ~description:"Managed Kubernetes cluster" "AKS"
    (common
    @ [
        a ~req "dns_prefix" T_string;
        a ~req "default_node_pool"
          (T_block
             [
               a ~req "name" T_string;
               a ~req "node_count" T_int;
               a ~req ~format:(Enum Skus.vm_sku_names) "vm_size" T_string;
               a ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
               a "max_pods" T_int;
               a ~default:(bool_default false) "auto_scaling_enabled" T_bool;
               a "min_count" T_int;
               a "max_count" T_int;
             ]);
        a "network_profile"
          (T_block
             [
               a ~req ~format:(Enum [ "azure"; "kubenet"; "none" ]) "network_plugin"
                 T_string;
               a ~format:(Enum [ "azure"; "calico"; "cilium" ]) "network_policy" T_string;
               a ~format:Cidr_format "service_cidr" T_string;
               a ~format:Cidr_format "pod_cidr" T_string;
               a "dns_service_ip" T_string;
               a ~format:(Enum [ "loadBalancer"; "userDefinedRouting"; "natGateway" ])
                 "outbound_type" T_string;
             ]);
        a ~default:(str_default "Free") ~format:(Enum [ "Free"; "Standard"; "Premium" ])
          "sku_tier" T_string;
        a "kubernetes_version" T_string;
        a ~default:(bool_default false) "private_cluster_enabled" T_bool;
        a ~default:(bool_default true) "role_based_access_control_enabled" T_bool;
        identity_block;
        a ~req:computed "kube_config" T_string;
        a ~req:computed "fqdn" T_string;
        timeouts_block;
      ])

let sqlserver =
  make ~description:"SQL server" "SQLSERVER"
    (common
    @ [
        a ~req ~format:(Enum [ "12.0" ]) "version" T_string;
        a ~req "administrator_login" T_string;
        a ~req "administrator_password" T_string;
        a ~default:(str_default "1.2") ~format:(Enum [ "1.0"; "1.1"; "1.2" ])
          "minimum_tls_version" T_string;
        a ~default:(bool_default true) "public_network_access_enabled" T_bool;
        identity_block;
        a ~req:computed "fully_qualified_domain_name" T_string;
        timeouts_block;
      ])

let sqldb =
  make ~description:"SQL database" "SQLDB"
    [
      name_attr;
      id_attr;
      tags_attr;
      a ~req ~format:Id_format ~refs_to:[ ("SQLSERVER", "id") ] "server_id" T_string;
      a ~default:(str_default "Basic")
        ~format:(Enum [ "Basic"; "S0"; "S1"; "S2"; "P1"; "P2"; "GP_Gen5_2"; "BC_Gen5_2" ])
        "sku" T_string;
      a "max_size_gb" T_int;
      a ~default:(bool_default false) "zone_redundant" T_bool;
      a ~format:(Enum [ "Local"; "Zone"; "Geo"; "GeoZone" ]) "backup_storage_redundancy"
        T_string;
      a ~default:(str_default "LicenseIncluded")
        ~format:(Enum [ "LicenseIncluded"; "BasePrice" ]) "license_type" T_string;
      timeouts_block;
    ]

let mysql =
  make ~description:"MySQL flexible server" "MYSQL"
    (common
    @ [
        a ~req
          ~format:(Enum [ "B_Standard_B1s"; "B_Standard_B2s"; "GP_Standard_D2ds_v4"; "MO_Standard_E4ds_v4" ])
          "sku" T_string;
        a ~req ~format:(Enum [ "5.7"; "8.0.21" ]) "version" T_string;
        a "administrator_login" T_string;
        a "administrator_password" T_string;
        a "storage" (T_block [ a "size_gb" T_int; a "iops" T_int; a "auto_grow_enabled" T_bool ]);
        a ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "delegated_subnet_id" T_string;
        a "zone" T_string;
        a ~default:(int_default 7) "backup_retention_days" T_int;
        a ~default:(bool_default false) "geo_redundant_backup_enabled" T_bool;
        timeouts_block;
      ])

let redis =
  make ~description:"Redis cache" "REDIS"
    (common
    @ [
        a ~req "capacity" T_int;
        a ~req ~format:(Enum [ "C"; "P" ]) "family" T_string;
        a ~req ~format:(Enum [ "Basic"; "Standard"; "Premium" ]) "sku" T_string;
        a ~default:(bool_default false) "non_ssl_port_enabled" T_bool;
        a ~default:(str_default "1.2") ~format:(Enum [ "1.0"; "1.1"; "1.2" ])
          "minimum_tls_version" T_string;
        a ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "subnet_id" T_string;
        a "shard_count" T_int;
        a "zones" (T_list T_string);
        a "redis_configuration"
          (T_block
             [
               a "maxmemory_policy" T_string;
               a "rdb_backup_enabled" T_bool;
               a "rdb_storage_connection_string" T_string;
             ]);
        timeouts_block;
      ])

let cosmos =
  make ~description:"Cosmos DB account" "COSMOS"
    (common
    @ [
        a ~req ~format:(Enum [ "Standard" ]) "offer_type" T_string;
        a ~default:(str_default "GlobalDocumentDB")
          ~format:(Enum [ "GlobalDocumentDB"; "MongoDB"; "Parse" ]) "kind" T_string;
        a ~req "consistency_policy"
          (T_block
             [
               a ~req
                 ~format:
                   (Enum
                      [ "Eventual"; "Session"; "BoundedStaleness"; "Strong"; "ConsistentPrefix" ])
                 "level" T_string;
               a "max_interval_in_seconds" T_int;
               a "max_staleness_prefix" T_int;
             ]);
        a ~req "geo_location"
          (T_list
             (T_block
                [
                  a ~req ~format:Region "location" T_string;
                  a ~req "failover_priority" T_int;
                  a "zone_redundant" T_bool;
                ]));
        a ~default:(bool_default false) "free_tier_enabled" T_bool;
        a ~default:(bool_default false) "automatic_failover_enabled" T_bool;
        timeouts_block;
      ])

let plan =
  make ~description:"App service plan" "PLAN"
    (common
    @ [
        a ~req ~format:(Enum [ "Linux"; "Windows" ]) "os_type" T_string;
        a ~req
          ~format:
            (Enum [ "F1"; "B1"; "B2"; "S1"; "S2"; "P1v2"; "P2v2"; "P1v3"; "EP1"; "Y1" ])
          "sku" T_string;
        a "worker_count" T_int;
        a ~default:(bool_default false) "zone_balancing_enabled" T_bool;
        timeouts_block;
      ])

let webapp =
  make ~description:"Web app (app service)" "WEBAPP"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("PLAN", "id") ] "plan_id" T_string;
        a ~req "site_config"
          (T_block
             [
               a ~default:(bool_default true) "always_on" T_bool;
               a ~format:(Enum [ "1.0"; "1.1"; "1.2" ]) "minimum_tls_version" T_string;
               a "app_command_line" T_string;
               a "application_stack"
                 (T_block
                    [
                      a "node_version" T_string;
                      a "python_version" T_string;
                      a "dotnet_version" T_string;
                    ]);
             ]);
        a "app_settings" (T_block []);
        a ~default:(bool_default true) "https_only" T_bool;
        a ~format:Id_format ~refs_to:[ ("SUBNET", "id") ] "virtual_network_subnet_id"
          T_string;
        identity_block;
        a ~req:computed "default_hostname" T_string;
        timeouts_block;
      ])

let func =
  make ~description:"Function app" "FUNC"
    (common
    @ [
        a ~req ~format:Id_format ~refs_to:[ ("PLAN", "id") ] "plan_id" T_string;
        a ~req ~format:Name_format ~refs_to:[ ("SA", "name") ] "sa_name" T_string;
        a "sa_access_key" T_string;
        a "site_config"
          (T_block
             [
               a "always_on" T_bool;
               a "application_stack" (T_block [ a "node_version" T_string; a "python_version" T_string ]);
             ]);
        a "app_settings" (T_block []);
        a ~default:(bool_default true) "https_only" T_bool;
        identity_block;
        timeouts_block;
      ])

let logws =
  make ~description:"Log analytics workspace" "LOGWS"
    (common
    @ [
        a ~default:(str_default "PerGB2018")
          ~format:(Enum [ "Free"; "PerNode"; "PerGB2018"; "CapacityReservation" ]) "sku"
          T_string;
        a ~default:(int_default 30) "retention_in_days" T_int;
        a "daily_quota_gb" T_int;
        a ~default:(bool_default true) "internet_ingestion_enabled" T_bool;
        timeouts_block;
      ])

let appins =
  make ~description:"Application insights" "APPINS"
    (common
    @ [
        a ~req ~format:(Enum [ "web"; "java"; "other"; "ios"; "Node.JS" ])
          "application_type" T_string;
        a ~format:Id_format ~refs_to:[ ("LOGWS", "id") ] "workspace_id" T_string;
        a ~default:(int_default 90) "retention_in_days" T_int;
        a ~req:computed "instrumentation_key" T_string;
        a ~req:computed "connection_string" T_string;
        timeouts_block;
      ])

let eventhub_ns =
  make ~description:"Event hubs namespace" "EVENTHUB_NS"
    (common
    @ [
        a ~req ~format:(Enum [ "Basic"; "Standard"; "Premium" ]) "sku" T_string;
        a ~default:(int_default 1) "capacity" T_int;
        a ~default:(bool_default false) "auto_inflate_enabled" T_bool;
        a "maximum_throughput_units" T_int;
        a ~default:(bool_default true) "public_network_access_enabled" T_bool;
        timeouts_block;
      ])

let eventhub =
  make ~description:"Event hub" "EVENTHUB"
    [
      name_attr;
      id_attr;
      a ~req ~format:Name_format ~refs_to:[ ("EVENTHUB_NS", "name") ] "namespace_name"
        T_string;
      a ~req "partition_count" T_int;
      a ~req "message_retention" T_int;
      a "capture_description"
        (T_block
           [
             a ~req "enabled" T_bool;
             a ~req ~format:(Enum [ "Avro"; "AvroDeflate" ]) "encoding" T_string;
           ]);
      timeouts_block;
    ]

let servicebus_ns =
  make ~description:"Service bus namespace" "SERVICEBUS_NS"
    (common
    @ [
        a ~req ~format:(Enum [ "Basic"; "Standard"; "Premium" ]) "sku" T_string;
        a "capacity" T_int;
        a ~default:(bool_default false) "premium_messaging_partitions_enabled" T_bool;
        a ~default:(str_default "1.2") "minimum_tls_version" T_string;
        timeouts_block;
      ])

let sbqueue =
  make ~description:"Service bus queue" "SBQUEUE"
    [
      name_attr;
      id_attr;
      a ~req ~format:Id_format ~refs_to:[ ("SERVICEBUS_NS", "id") ] "namespace_id"
        T_string;
      a ~default:(int_default 1024) "max_size_in_megabytes" T_int;
      a ~default:(bool_default false) "requires_session" T_bool;
      a ~default:(bool_default false) "requires_duplicate_detection" T_bool;
      a ~default:(bool_default false) "partitioning_enabled" T_bool;
      a "lock_duration" T_string;
      timeouts_block;
    ]

let identity =
  make ~description:"User-assigned managed identity" "IDENTITY"
    (common @ [ a ~req:computed "client_id" T_string; a ~req:computed "principal_id" T_string; timeouts_block ])

let express =
  make ~slow_create:true ~description:"ExpressRoute circuit" "EXPRESS"
    (common
    @ [
        a ~req "service_provider_name" T_string;
        a ~req "peering_location" T_string;
        a ~req "bandwidth_in_mbps" T_int;
        a ~req "sku"
          (T_block
             [
               a ~req ~format:(Enum [ "Standard"; "Premium"; "Local" ]) "tier" T_string;
               a ~req ~format:(Enum [ "MeteredData"; "UnlimitedData" ]) "family" T_string;
             ]);
        a ~default:(bool_default false) "allow_classic_operations" T_bool;
        timeouts_block;
      ])

let ddos =
  make ~description:"DDoS protection plan" "DDOS" (common @ [ timeouts_block ])

let schemas =
  [
    vpc; subnet; nic; vm; ip; gw; appgw; lb; sg; rt; route; rtassoc; sgassoc; fw; sa;
    disk; attach; peering; tunnel; lng; nat; natassoc; natipassoc; bastion; avset; ppg;
    vmss; snapshot; image; container; share; dns; dnsrec; privdns; privdnslink; privep;
    kv; acr; aks; sqlserver; sqldb; mysql; redis; cosmos; plan; webapp; func; logws;
    appins; eventhub_ns; eventhub; servicebus_ns; sbqueue; identity; express; ddos;
  ]

let find name = List.find_opt (fun s -> String.equal s.type_name name) schemas

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Catalog.find_exn: unknown type %s" name)

let type_names = List.map (fun s -> s.type_name) schemas

let terraform_names =
  [
    ("azurerm_virtual_network", "VPC");
    ("azurerm_subnet", "SUBNET");
    ("azurerm_network_interface", "NIC");
    ("azurerm_linux_virtual_machine", "VM");
    ("azurerm_public_ip", "IP");
    ("azurerm_virtual_network_gateway", "GW");
    ("azurerm_application_gateway", "APPGW");
    ("azurerm_lb", "LB");
    ("azurerm_network_security_group", "SG");
    ("azurerm_route_table", "RT");
    ("azurerm_route", "ROUTE");
    ("azurerm_subnet_route_table_association", "RTASSOC");
    ("azurerm_subnet_network_security_group_association", "SGASSOC");
    ("azurerm_firewall", "FW");
    ("azurerm_storage_account", "SA");
    ("azurerm_managed_disk", "DISK");
    ("azurerm_virtual_machine_data_disk_attachment", "ATTACH");
    ("azurerm_virtual_network_peering", "PEERING");
    ("azurerm_virtual_network_gateway_connection", "TUNNEL");
    ("azurerm_local_network_gateway", "LNG");
    ("azurerm_nat_gateway", "NAT");
    ("azurerm_subnet_nat_gateway_association", "NATASSOC");
    ("azurerm_nat_gateway_public_ip_association", "NATIPASSOC");
    ("azurerm_bastion_host", "BASTION");
    ("azurerm_availability_set", "AVSET");
    ("azurerm_proximity_placement_group", "PPG");
    ("azurerm_linux_virtual_machine_scale_set", "VMSS");
    ("azurerm_snapshot", "SNAPSHOT");
    ("azurerm_image", "IMAGE");
    ("azurerm_storage_container", "CONTAINER");
    ("azurerm_storage_share", "SHARE");
    ("azurerm_dns_zone", "DNS");
    ("azurerm_dns_a_record", "DNSREC");
    ("azurerm_private_dns_zone", "PRIVDNS");
    ("azurerm_private_dns_zone_virtual_network_link", "PRIVDNSLINK");
    ("azurerm_private_endpoint", "PRIVEP");
    ("azurerm_key_vault", "KV");
    ("azurerm_container_registry", "ACR");
    ("azurerm_kubernetes_cluster", "AKS");
    ("azurerm_mssql_server", "SQLSERVER");
    ("azurerm_mssql_database", "SQLDB");
    ("azurerm_mysql_flexible_server", "MYSQL");
    ("azurerm_redis_cache", "REDIS");
    ("azurerm_cosmosdb_account", "COSMOS");
    ("azurerm_service_plan", "PLAN");
    ("azurerm_linux_web_app", "WEBAPP");
    ("azurerm_linux_function_app", "FUNC");
    ("azurerm_log_analytics_workspace", "LOGWS");
    ("azurerm_application_insights", "APPINS");
    ("azurerm_eventhub_namespace", "EVENTHUB_NS");
    ("azurerm_eventhub", "EVENTHUB");
    ("azurerm_servicebus_namespace", "SERVICEBUS_NS");
    ("azurerm_servicebus_queue", "SBQUEUE");
    ("azurerm_user_assigned_identity", "IDENTITY");
    ("azurerm_express_route_circuit", "EXPRESS");
    ("azurerm_network_ddos_protection_plan", "DDOS");
  ]

let of_terraform tf = List.assoc_opt tf terraform_names

let to_terraform canonical =
  match
    List.find_opt (fun (_, c) -> String.equal c canonical) terraform_names
  with
  | Some (tf, _) -> tf
  | None -> canonical

let reserved_subnet_names =
  [
    ("GatewaySubnet", "GW");
    ("AzureFirewallSubnet", "FW");
    ("AzureBastionSubnet", "BASTION");
  ]
