lib/azure/skus.ml: List String
