lib/azure/catalog.ml: List Printf Skus String Zodiac_iac
