lib/azure/catalog.mli: Zodiac_iac
