lib/azure/skus.mli:
