lib/azure/regions.mli:
