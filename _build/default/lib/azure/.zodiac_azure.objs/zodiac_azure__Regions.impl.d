lib/azure/regions.ml: List String
