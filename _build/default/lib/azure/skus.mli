(** Azure sku documentation tables.

    These tables stand in for the provider documentation pages the paper
    queries through an LLM (e.g. the Fsv2-series page giving the maximum
    NIC count per VM size). They serve two roles: the cloud simulator
    enforces them as ground truth, and the {!Zodiac_oracle} answers
    interpolation queries from them (with optional noise). *)

type vm_sku = {
  vm_name : string;
  max_nics : int;  (** maximum network interfaces attachable *)
  max_data_disks : int;
  vcpus : int;
  premium_io : bool;  (** supports premium storage disks *)
}

val vm_skus : vm_sku list
val find_vm : string -> vm_sku option
val vm_sku_names : string list

type gw_sku = {
  gw_name : string;
  max_tunnels : int;
  supports_active_active : bool;
  generation : int;
}

val gw_skus : gw_sku list
val find_gw : string -> gw_sku option
val gw_sku_names : string list

val sa_replications : string list
(** All storage-account replication options. *)

val sa_premium_replications : string list
(** Replication options legal for Premium-tier accounts. *)

val appgw_sku_names : string list
val appgw_v2_skus : string list
(** The v2 skus (requiring rule priorities, supporting WAF_v2 policy). *)

val lb_sku_names : string list
val ip_sku_names : string list
val redis_families : (string * string) list
(** (family, required sku) pairs — family [P] requires sku [Premium]. *)
