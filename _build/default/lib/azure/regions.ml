(* Region name, paired region, availability-zone support. *)
let table =
  [
    ("eastus", "westus", true);
    ("eastus2", "centralus", true);
    ("westus", "eastus", false);
    ("westus2", "westcentralus", true);
    ("westus3", "eastus", true);
    ("centralus", "eastus2", true);
    ("northcentralus", "southcentralus", false);
    ("southcentralus", "northcentralus", true);
    ("westcentralus", "westus2", false);
    ("canadacentral", "canadaeast", true);
    ("canadaeast", "canadacentral", false);
    ("brazilsouth", "southcentralus", true);
    ("northeurope", "westeurope", true);
    ("westeurope", "northeurope", true);
    ("uksouth", "ukwest", true);
    ("ukwest", "uksouth", false);
    ("francecentral", "francesouth", true);
    ("francesouth", "francecentral", false);
    ("germanywestcentral", "germanynorth", true);
    ("germanynorth", "germanywestcentral", false);
    ("switzerlandnorth", "switzerlandwest", true);
    ("switzerlandwest", "switzerlandnorth", false);
    ("norwayeast", "norwaywest", true);
    ("norwaywest", "norwayeast", false);
    ("swedencentral", "swedensouth", true);
    ("swedensouth", "swedencentral", false);
    ("eastasia", "southeastasia", true);
    ("southeastasia", "eastasia", true);
    ("japaneast", "japanwest", true);
    ("japanwest", "japaneast", false);
    ("australiaeast", "australiasoutheast", true);
    ("australiasoutheast", "australiaeast", false);
    ("koreacentral", "koreasouth", true);
    ("koreasouth", "koreacentral", false);
    ("centralindia", "southindia", true);
    ("southindia", "centralindia", false);
    ("uaenorth", "uaecentral", true);
    ("uaecentral", "uaenorth", false);
    ("southafricanorth", "southafricawest", true);
    ("southafricawest", "southafricanorth", false);
  ]

let all = List.map (fun (name, _, _) -> name) table

let is_region name = List.exists (fun (n, _, _) -> String.equal n name) table

let paired name =
  List.find_map
    (fun (n, pair, _) -> if String.equal n name then Some pair else None)
    table

let zonal name =
  List.exists (fun (n, _, z) -> String.equal n name && z) table
