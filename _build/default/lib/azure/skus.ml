type vm_sku = {
  vm_name : string;
  max_nics : int;
  max_data_disks : int;
  vcpus : int;
  premium_io : bool;
}

let vm_skus =
  [
    { vm_name = "Standard_B1ls"; max_nics = 2; max_data_disks = 2; vcpus = 1; premium_io = false };
    { vm_name = "Standard_B1s"; max_nics = 2; max_data_disks = 2; vcpus = 1; premium_io = false };
    { vm_name = "Standard_B2s"; max_nics = 3; max_data_disks = 4; vcpus = 2; premium_io = false };
    { vm_name = "Standard_B2ms"; max_nics = 3; max_data_disks = 4; vcpus = 2; premium_io = false };
    { vm_name = "Standard_B4ms"; max_nics = 4; max_data_disks = 8; vcpus = 4; premium_io = false };
    { vm_name = "Standard_D2s_v3"; max_nics = 2; max_data_disks = 4; vcpus = 2; premium_io = true };
    { vm_name = "Standard_D4s_v3"; max_nics = 2; max_data_disks = 8; vcpus = 4; premium_io = true };
    { vm_name = "Standard_D8s_v3"; max_nics = 4; max_data_disks = 16; vcpus = 8; premium_io = true };
    { vm_name = "Standard_D16s_v3"; max_nics = 8; max_data_disks = 32; vcpus = 16; premium_io = true };
    { vm_name = "Standard_D32s_v3"; max_nics = 8; max_data_disks = 32; vcpus = 32; premium_io = true };
    { vm_name = "Standard_F2s_v2"; max_nics = 2; max_data_disks = 4; vcpus = 2; premium_io = true };
    { vm_name = "Standard_F4s_v2"; max_nics = 2; max_data_disks = 8; vcpus = 4; premium_io = true };
    { vm_name = "Standard_F8s_v2"; max_nics = 4; max_data_disks = 16; vcpus = 8; premium_io = true };
    { vm_name = "Standard_F16s_v2"; max_nics = 4; max_data_disks = 32; vcpus = 16; premium_io = true };
    { vm_name = "Standard_F32s_v2"; max_nics = 8; max_data_disks = 32; vcpus = 32; premium_io = true };
    { vm_name = "Standard_E2s_v3"; max_nics = 2; max_data_disks = 4; vcpus = 2; premium_io = true };
    { vm_name = "Standard_E4s_v3"; max_nics = 2; max_data_disks = 8; vcpus = 4; premium_io = true };
    { vm_name = "Standard_E8s_v3"; max_nics = 4; max_data_disks = 16; vcpus = 8; premium_io = true };
    { vm_name = "Standard_E16s_v3"; max_nics = 8; max_data_disks = 32; vcpus = 16; premium_io = true };
    { vm_name = "Standard_L8s_v2"; max_nics = 4; max_data_disks = 16; vcpus = 8; premium_io = true };
    { vm_name = "Standard_M64s"; max_nics = 8; max_data_disks = 64; vcpus = 64; premium_io = true };
    { vm_name = "Standard_NC6s_v3"; max_nics = 4; max_data_disks = 12; vcpus = 6; premium_io = true };
    { vm_name = "Standard_A1_v2"; max_nics = 2; max_data_disks = 2; vcpus = 1; premium_io = false };
    { vm_name = "Standard_A2_v2"; max_nics = 2; max_data_disks = 4; vcpus = 2; premium_io = false };
    { vm_name = "Standard_A4_v2"; max_nics = 4; max_data_disks = 8; vcpus = 4; premium_io = false };
    { vm_name = "Standard_DS1_v2"; max_nics = 2; max_data_disks = 4; vcpus = 1; premium_io = true };
    { vm_name = "Standard_DS2_v2"; max_nics = 2; max_data_disks = 8; vcpus = 2; premium_io = true };
    { vm_name = "Standard_DS3_v2"; max_nics = 4; max_data_disks = 16; vcpus = 4; premium_io = true };
    { vm_name = "Standard_DS4_v2"; max_nics = 8; max_data_disks = 32; vcpus = 8; premium_io = true };
    { vm_name = "Standard_DS5_v2"; max_nics = 8; max_data_disks = 64; vcpus = 16; premium_io = true };
  ]

let find_vm name = List.find_opt (fun sku -> String.equal sku.vm_name name) vm_skus

let vm_sku_names = List.map (fun sku -> sku.vm_name) vm_skus

type gw_sku = {
  gw_name : string;
  max_tunnels : int;
  supports_active_active : bool;
  generation : int;
}

let gw_skus =
  [
    { gw_name = "Basic"; max_tunnels = 10; supports_active_active = false; generation = 1 };
    { gw_name = "VpnGw1"; max_tunnels = 30; supports_active_active = true; generation = 1 };
    { gw_name = "VpnGw2"; max_tunnels = 30; supports_active_active = true; generation = 1 };
    { gw_name = "VpnGw3"; max_tunnels = 30; supports_active_active = true; generation = 1 };
    { gw_name = "VpnGw4"; max_tunnels = 100; supports_active_active = true; generation = 2 };
    { gw_name = "VpnGw5"; max_tunnels = 100; supports_active_active = true; generation = 2 };
    { gw_name = "Standard"; max_tunnels = 10; supports_active_active = false; generation = 1 };
    { gw_name = "HighPerformance"; max_tunnels = 30; supports_active_active = false; generation = 1 };
    { gw_name = "ErGw1AZ"; max_tunnels = 4; supports_active_active = true; generation = 2 };
    { gw_name = "ErGw2AZ"; max_tunnels = 8; supports_active_active = true; generation = 2 };
  ]

let find_gw name = List.find_opt (fun sku -> String.equal sku.gw_name name) gw_skus

let gw_sku_names = List.map (fun sku -> sku.gw_name) gw_skus

let sa_replications = [ "LRS"; "ZRS"; "GRS"; "RAGRS"; "GZRS"; "RAGZRS" ]

let sa_premium_replications = [ "LRS"; "ZRS" ]

let appgw_sku_names =
  [ "Standard_Small"; "Standard_Medium"; "Standard_Large"; "Standard_v2"; "WAF_Medium"; "WAF_Large"; "WAF_v2" ]

let appgw_v2_skus = [ "Standard_v2"; "WAF_v2" ]

let lb_sku_names = [ "Basic"; "Standard"; "Gateway" ]

let ip_sku_names = [ "Basic"; "Standard" ]

let redis_families = [ ("C", "Basic"); ("C", "Standard"); ("P", "Premium") ]
