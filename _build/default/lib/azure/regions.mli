(** Azure region catalogue used by the provider model and corpus
    generator. *)

val all : string list
(** Canonical region names (a representative subset of Azure's
    regions). *)

val is_region : string -> bool

val paired : string -> string option
(** The paired secondary region used for geo-redundant replication. *)

val zonal : string -> bool
(** Whether the region supports availability zones. *)
