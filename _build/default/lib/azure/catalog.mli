(** The Azure provider catalogue: schemas for the 52 resource types the
    paper's evaluation covers, and the mapping between Terraform type
    names ([azurerm_*]) and Zodiac's canonical short names.

    Schemas encode the provider-schema facts (Class 1 of the semantic
    KB: requirement classes, types, declared enums) and the registry's
    reference semantics (which attributes may reference which resource
    attributes — the raw material for Class 3). *)

val schemas : Zodiac_iac.Schema.t list
(** All resource schemas, one per canonical type. *)

val find : string -> Zodiac_iac.Schema.t option
(** Lookup by canonical type name (e.g. ["SUBNET"]). *)

val find_exn : string -> Zodiac_iac.Schema.t

val type_names : string list
(** All canonical type names. *)

val of_terraform : string -> string option
(** ["azurerm_subnet"] -> [Some "SUBNET"]. *)

val to_terraform : string -> string
(** ["SUBNET"] -> ["azurerm_subnet"]; identity for unknown types. *)

val reserved_subnet_names : (string * string) list
(** Provider-reserved subnet names and the single resource type allowed
    to occupy them, e.g. [("GatewaySubnet", "GW")]. *)
