(** The hidden ground-truth semantic rules enforced by the simulated
    Azure backend.

    This rule set plays the role of Azure's opaque cloud-level
    requirements: the mining and validation engines never read it —
    they only observe deployment outcomes, preserving the paper's
    blackbox setting. Each rule carries the deployment phase in which a
    violation surfaces (Table 3's error taxonomy).

    The set combines ~100 hand-authored rules (covering every concrete
    example in the paper) with families generated from the sku
    documentation tables (per-VM-sku NIC/disk limits, per-GW-sku tunnel
    limits, premium-storage restrictions, APPGW sku/tier consistency). *)

type phase =
  | Plugin  (** rejected by provider plugin before any API call *)
  | Pre_sync  (** state synchronization conflict ("already exists") *)
  | Create  (** creation request rejected by the cloud *)
  | Polling  (** asynchronous provisioning failure on slow resources *)
  | Post_sync  (** deployed, but cloud/IaC states are inconsistent *)

type t = {
  rule_id : string;
  check : Zodiac_spec.Check.t;
  phase : phase;
  message : string;  (** cloud error message shown on violation *)
}

val phase_to_string : phase -> string

val ground_truth : unit -> t list
(** The full rule set (memoized; parsing happens once). *)

val find : string -> t option
(** Lookup by [rule_id]. *)

val count : unit -> int

val rules_for_type : string -> t list
(** Rules binding at least one variable of the given resource type. *)
