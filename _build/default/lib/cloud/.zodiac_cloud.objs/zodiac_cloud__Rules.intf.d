lib/cloud/rules.mli: Zodiac_spec
