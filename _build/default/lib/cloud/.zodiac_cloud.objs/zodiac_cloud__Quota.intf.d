lib/cloud/quota.mli:
