lib/cloud/defaults.ml: List Zodiac_azure Zodiac_iac
