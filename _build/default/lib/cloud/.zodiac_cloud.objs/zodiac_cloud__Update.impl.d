lib/cloud/update.ml: Arm List String Zodiac_iac
