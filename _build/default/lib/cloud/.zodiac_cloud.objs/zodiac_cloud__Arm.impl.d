lib/cloud/arm.ml: Defaults List Printf Quota Rules String Zodiac_azure Zodiac_iac Zodiac_spec Zodiac_util
