lib/cloud/rules.ml: List Printf String Zodiac_azure Zodiac_spec
