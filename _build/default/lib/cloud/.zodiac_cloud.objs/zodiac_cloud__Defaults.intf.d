lib/cloud/defaults.mli: Zodiac_iac
