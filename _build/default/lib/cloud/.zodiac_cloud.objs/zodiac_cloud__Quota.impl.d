lib/cloud/quota.ml: List Printf
