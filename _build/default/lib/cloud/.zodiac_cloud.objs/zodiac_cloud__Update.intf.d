lib/cloud/update.mli: Arm Rules Zodiac_iac
