lib/cloud/arm.mli: Quota Rules Zodiac_iac Zodiac_spec
