module Schema = Zodiac_iac.Schema
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Catalog = Zodiac_azure.Catalog

let lookup ~rtype ~attr =
  match Catalog.find rtype with
  | None -> None
  | Some schema -> (
      match Schema.find_attr schema attr with
      | Some { Schema.default = Some d; _ } -> Some d
      | Some _ | None -> None)

let effective r =
  match Catalog.find r.Resource.rtype with
  | None -> r
  | Some schema ->
      List.fold_left
        (fun r (a : Schema.attr) ->
          match a.Schema.default with
          | Some d when Resource.attr r a.Schema.aname = None ->
              { r with Resource.attrs = r.Resource.attrs @ [ (a.Schema.aname, d) ] }
          | Some _ | None -> r)
        r schema.Schema.attrs
