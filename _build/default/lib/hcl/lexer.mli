(** Hand-written lexer for the HCL subset. *)

type token =
  | Ident of string
  | Str of Ast.string_part list
  | Int_lit of int
  | Float_lit of float
  | Lbrace
  | Rbrace
  | Lbrack
  | Rbrack
  | Equal
  | Comma
  | Colon
  | Dot
  | Newline
  | Eof

type spanned = { tok : token; line : int }

exception Lex_error of string * int
(** Message and line number. *)

val tokenize : string -> spanned list
(** Lex a whole document. Comments ([#], [//], [/* */]) are skipped;
    runs of newlines collapse to a single [Newline] token; the list
    always ends with [Eof].
    @raise Lex_error on unterminated strings or illegal characters. *)

val token_to_string : token -> string
