(** Compilation between HCL syntax and the resource-graph program model
    (the analogue of [terraform plan]).

    Compilation resolves [variable] defaults, maps Terraform resource
    type names (e.g. ["azurerm_subnet"]) to Zodiac's canonical type
    names (e.g. ["SUBNET"]) through a caller-supplied mapping, turns
    traversals and whole-string interpolations into {!Zodiac_iac.Value.Ref}
    values, and groups repeated nested blocks into lists. *)

type diagnostic = { message : string; context : string }

val compile_file :
  type_map:(string -> string option) ->
  Ast.file ->
  Zodiac_iac.Program.t * diagnostic list
(** Unknown resource types are kept with their literal type name and
    reported as diagnostics; unresolvable variables become literal
    ["${var.x}"] strings. *)

val compile_string :
  type_map:(string -> string option) ->
  string ->
  (Zodiac_iac.Program.t * diagnostic list, string) result
(** Parse then compile. *)

val decompile :
  type_name:(string -> string) ->
  Zodiac_iac.Program.t ->
  Ast.file
(** Render a program back to HCL blocks. [type_name] maps canonical type
    names back to Terraform type names. *)

val program_to_hcl :
  type_name:(string -> string) -> Zodiac_iac.Program.t -> string
(** [decompile] composed with the printer. *)
