exception Parse_error of string * int

type state = { toks : Lexer.spanned array; mutable idx : int }

let current st = st.toks.(st.idx)

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let fail st msg =
  let { Lexer.tok; line } = current st in
  raise
    (Parse_error
       (Printf.sprintf "%s, found %s" msg (Lexer.token_to_string tok), line))

let skip_newlines st =
  while (current st).Lexer.tok = Lexer.Newline do
    advance st
  done

let expect st tok msg =
  if (current st).Lexer.tok = tok then advance st else fail st msg

(* A dotted traversal starting from an already-consumed identifier. *)
let parse_traversal st first =
  let segments = ref [ first ] in
  let continue = ref true in
  while !continue do
    match (current st).Lexer.tok with
    | Lexer.Dot -> (
        advance st;
        match (current st).Lexer.tok with
        | Lexer.Ident s ->
            advance st;
            segments := s :: !segments
        | Lexer.Int_lit i ->
            advance st;
            segments := string_of_int i :: !segments
        | _ -> fail st "expected attribute name after '.'")
    | Lexer.Lbrack -> (
        advance st;
        (match (current st).Lexer.tok with
        | Lexer.Int_lit i ->
            advance st;
            segments := string_of_int i :: !segments
        | _ -> fail st "expected index after '['");
        match (current st).Lexer.tok with
        | Lexer.Rbrack -> advance st
        | _ -> fail st "expected ']'")
    | _ -> continue := false
  done;
  Ast.E_traversal (List.rev !segments)

let rec parse_expr st =
  skip_newlines st;
  match (current st).Lexer.tok with
  | Lexer.Ident "null" ->
      advance st;
      Ast.E_null
  | Lexer.Ident "true" ->
      advance st;
      Ast.E_bool true
  | Lexer.Ident "false" ->
      advance st;
      Ast.E_bool false
  | Lexer.Ident s ->
      advance st;
      parse_traversal st s
  | Lexer.Int_lit i ->
      advance st;
      Ast.E_int i
  | Lexer.Float_lit f ->
      advance st;
      Ast.E_float f
  | Lexer.Str parts ->
      advance st;
      Ast.E_string parts
  | Lexer.Lbrack ->
      advance st;
      parse_list st
  | Lexer.Lbrace ->
      advance st;
      parse_map st
  | _ -> fail st "expected expression"

and parse_list st =
  let items = ref [] in
  skip_newlines st;
  let rec loop () =
    match (current st).Lexer.tok with
    | Lexer.Rbrack -> advance st
    | _ ->
        items := parse_expr st :: !items;
        skip_newlines st;
        (match (current st).Lexer.tok with
        | Lexer.Comma ->
            advance st;
            skip_newlines st
        | _ -> ());
        loop ()
  in
  loop ();
  Ast.E_list (List.rev !items)

and parse_map st =
  let fields = ref [] in
  skip_newlines st;
  let rec loop () =
    match (current st).Lexer.tok with
    | Lexer.Rbrace -> advance st
    | Lexer.Ident key | Lexer.Str [ Ast.Lit key ] ->
        advance st;
        (match (current st).Lexer.tok with
        | Lexer.Equal | Lexer.Colon -> advance st
        | _ -> fail st "expected '=' or ':' in map");
        let v = parse_expr st in
        fields := (key, v) :: !fields;
        skip_newlines st;
        (match (current st).Lexer.tok with
        | Lexer.Comma ->
            advance st;
            skip_newlines st
        | _ -> ());
        loop ()
    | _ -> fail st "expected map key or '}'"
  in
  loop ();
  Ast.E_map (List.rev !fields)

(* Body items: `ident = expr` attributes or `ident ("label")* { ... }`
   nested blocks. *)
let rec parse_body st =
  let battrs = ref [] in
  let bblocks = ref [] in
  skip_newlines st;
  let rec loop () =
    match (current st).Lexer.tok with
    | Lexer.Rbrace | Lexer.Eof -> ()
    | Lexer.Ident name -> (
        advance st;
        match (current st).Lexer.tok with
        | Lexer.Equal ->
            advance st;
            let v = parse_expr st in
            battrs := (name, v) :: !battrs;
            end_of_item st;
            loop ()
        | Lexer.Lbrace | Lexer.Str _ | Lexer.Ident _ ->
            let block = parse_block_after_type st name in
            bblocks := block :: !bblocks;
            end_of_item st;
            loop ()
        | _ -> fail st "expected '=' or block after identifier")
    | Lexer.Newline ->
        skip_newlines st;
        loop ()
    | _ -> fail st "expected attribute or block"
  in
  loop ();
  { Ast.battrs = List.rev !battrs; bblocks = List.rev !bblocks }

and end_of_item st =
  match (current st).Lexer.tok with
  | Lexer.Newline -> skip_newlines st
  | Lexer.Rbrace | Lexer.Eof -> ()
  | _ -> fail st "expected newline after item"

and parse_block_after_type st btype =
  let labels = ref [] in
  let rec read_labels () =
    match (current st).Lexer.tok with
    | Lexer.Str [ Ast.Lit label ] ->
        advance st;
        labels := label :: !labels;
        read_labels ()
    | Lexer.Ident label ->
        advance st;
        labels := label :: !labels;
        read_labels ()
    | _ -> ()
  in
  read_labels ();
  expect st Lexer.Lbrace "expected '{' opening block body";
  let body = parse_body st in
  expect st Lexer.Rbrace "expected '}' closing block body";
  { Ast.btype; labels = List.rev !labels; body }

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; idx = 0 } in
  let blocks = ref [] in
  skip_newlines st;
  let rec loop () =
    match (current st).Lexer.tok with
    | Lexer.Eof -> ()
    | Lexer.Ident btype ->
        advance st;
        blocks := parse_block_after_type st btype :: !blocks;
        skip_newlines st;
        loop ()
    | _ -> fail st "expected top-level block"
  in
  loop ();
  List.rev !blocks

let parse_result src =
  match parse src with
  | file -> Ok file
  | exception Parse_error (msg, line) ->
      Error (Printf.sprintf "parse error: %s (line %d)" msg line)
  | exception Lexer.Lex_error (msg, line) ->
      Error (Printf.sprintf "lex error: %s (line %d)" msg line)
