type token =
  | Ident of string
  | Str of Ast.string_part list
  | Int_lit of int
  | Float_lit of float
  | Lbrace
  | Rbrace
  | Lbrack
  | Rbrack
  | Equal
  | Comma
  | Colon
  | Dot
  | Newline
  | Eof

type spanned = { tok : token; line : int }

exception Lex_error of string * int

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Str _ -> "string"
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbrack -> "'['"
  | Rbrack -> "']'"
  | Equal -> "'='"
  | Comma -> "','"
  | Colon -> "':'"
  | Dot -> "'.'"
  | Newline -> "newline"
  | Eof -> "end of input"

type state = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (if st.pos < String.length st.src && st.src.[st.pos] = '\n' then
     st.line <- st.line + 1);
  st.pos <- st.pos + 1

let is_ident_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

let read_ident st =
  let start = st.pos in
  while
    match peek st with Some c when is_ident_char c -> true | Some _ | None -> false
  do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_number st =
  let start = st.pos in
  let seen_dot = ref false in
  while
    match peek st with
    | Some c when is_digit c -> true
    | Some '.' when not !seen_dot && (match peek2 st with Some d -> is_digit d | None -> false) ->
        seen_dot := true;
        true
    | Some _ | None -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  if !seen_dot then Float_lit (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int_lit i
    | None -> raise (Lex_error (Printf.sprintf "bad number %S" text, st.line))

(* Read the traversal inside ${...}: dotted identifiers, allowing
   numeric segments for list indexing (azurerm_x.a.ids.0). Index
   brackets [0] are normalized into numeric segments. *)
let read_interp_traversal st =
  let segments = ref [] in
  let read_segment () =
    match peek st with
    | Some c when is_ident_start c -> segments := read_ident st :: !segments
    | Some c when is_digit c -> (
        match read_number st with
        | Int_lit i -> segments := string_of_int i :: !segments
        | Float_lit _ | _ -> raise (Lex_error ("bad index in interpolation", st.line)))
    | _ -> raise (Lex_error ("bad interpolation", st.line))
  in
  read_segment ();
  let continue = ref true in
  while !continue do
    match peek st with
    | Some '.' ->
        advance st;
        read_segment ()
    | Some '[' ->
        advance st;
        read_segment ();
        (match peek st with
        | Some ']' -> advance st
        | _ -> raise (Lex_error ("expected ']' in interpolation", st.line)))
    | _ -> continue := false
  done;
  (match peek st with
  | Some '}' -> advance st
  | _ -> raise (Lex_error ("expected '}' closing interpolation", st.line)));
  List.rev !segments

let read_string st =
  let line0 = st.line in
  advance st;
  (* opening quote *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush_lit () =
    if Buffer.length buf > 0 then begin
      parts := Ast.Lit (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec loop () =
    match peek st with
    | None -> raise (Lex_error ("unterminated string", line0))
    | Some '"' ->
        advance st;
        flush_lit ()
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '$' -> Buffer.add_char buf '$'
        | Some c -> Buffer.add_char buf c
        | None -> raise (Lex_error ("unterminated string", line0)));
        advance st;
        loop ()
    | Some '$' when peek2 st = Some '{' ->
        advance st;
        advance st;
        flush_lit ();
        let traversal = read_interp_traversal st in
        parts := Ast.Interp traversal :: !parts;
        loop ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Str (List.rev !parts)

let skip_line_comment st =
  while match peek st with Some c when c <> '\n' -> true | Some _ | None -> false do
    advance st
  done

let skip_block_comment st =
  let line0 = st.line in
  let rec loop () =
    match (peek st, peek2 st) with
    | Some '*', Some '/' ->
        advance st;
        advance st
    | Some _, _ ->
        advance st;
        loop ()
    | None, _ -> raise (Lex_error ("unterminated comment", line0))
  in
  advance st;
  advance st;
  loop ()

let tokenize src =
  let st = { src; pos = 0; line = 1 } in
  let out = ref [] in
  let emit tok = out := { tok; line = st.line } :: !out in
  let last_is_newline () =
    match !out with { tok = Newline; _ } :: _ | [] -> true | _ -> false
  in
  let rec loop () =
    match peek st with
    | None -> emit Eof
    | Some (' ' | '\t' | '\r') ->
        advance st;
        loop ()
    | Some '\n' ->
        if not (last_is_newline ()) then emit Newline;
        advance st;
        loop ()
    | Some '#' ->
        skip_line_comment st;
        loop ()
    | Some '/' when peek2 st = Some '/' ->
        skip_line_comment st;
        loop ()
    | Some '/' when peek2 st = Some '*' ->
        skip_block_comment st;
        loop ()
    | Some '"' ->
        emit (read_string st);
        loop ()
    | Some '{' ->
        advance st;
        emit Lbrace;
        loop ()
    | Some '}' ->
        advance st;
        emit Rbrace;
        loop ()
    | Some '[' ->
        advance st;
        emit Lbrack;
        loop ()
    | Some ']' ->
        advance st;
        emit Rbrack;
        loop ()
    | Some '=' ->
        advance st;
        emit Equal;
        loop ()
    | Some ',' ->
        advance st;
        emit Comma;
        loop ()
    | Some ':' ->
        advance st;
        emit Colon;
        loop ()
    | Some '.' ->
        advance st;
        emit Dot;
        loop ()
    | Some '-' when (match peek2 st with Some d -> is_digit d | None -> false) ->
        advance st;
        (match read_number st with
        | Int_lit i -> emit (Int_lit (-i))
        | Float_lit f -> emit (Float_lit (-.f))
        | _ -> assert false);
        loop ()
    | Some c when is_digit c ->
        emit (read_number st);
        loop ()
    | Some c when is_ident_start c ->
        emit (Ident (read_ident st));
        loop ()
    | Some c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, st.line))
  in
  loop ();
  List.rev !out
