(** Pretty-printer emitting HCL text from the AST (the inverse of
    {!Parser.parse} up to formatting). *)

val expr_to_string : Ast.expr -> string
val file_to_string : Ast.file -> string
