(** Abstract syntax of the HCL subset Zodiac understands.

    This covers the Terraform configuration-language core: top-level
    blocks ([resource], [variable], [provider], [output], ...), nested
    blocks, attribute assignments, literals, lists, maps, traversals
    ([azurerm_subnet.a.id]) and string templates with [${...}]
    interpolation. Functions, conditionals and meta-arguments such as
    [count]/[for_each] are out of scope — the crawled corpus is compiled
    to deployment plans before mining, and plans have those expanded. *)

type string_part =
  | Lit of string
  | Interp of string list  (** a traversal inside [${...}] *)

type expr =
  | E_null
  | E_bool of bool
  | E_int of int
  | E_float of float
  | E_string of string_part list
  | E_list of expr list
  | E_map of (string * expr) list
  | E_traversal of string list  (** bare reference, e.g. [var.x] *)

type block = { btype : string; labels : string list; body : body }

and body = { battrs : (string * expr) list; bblocks : block list }

type file = block list

val empty_body : body
val string_lit : string -> expr

val plain_string : expr -> string option
(** [Some s] when the expression is a string with no interpolation. *)
