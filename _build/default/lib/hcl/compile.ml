module Value = Zodiac_iac.Value
module Program = Zodiac_iac.Program
module Resource = Zodiac_iac.Resource

type diagnostic = { message : string; context : string }

type env = {
  type_map : string -> string option;
  variables : (string * Ast.expr) list;
  mutable diags : diagnostic list;
}

let warn env message context = env.diags <- { message; context } :: env.diags

let resolve_traversal env segments =
  match segments with
  | "var" :: name :: _ -> (
      match List.assoc_opt name env.variables with
      | Some default -> `Expr default
      | None -> `Opaque (Printf.sprintf "${var.%s}" name))
  | "local" :: name :: _ -> `Opaque (Printf.sprintf "${local.%s}" name)
  | "data" :: rest -> `Opaque (Printf.sprintf "${data.%s}" (String.concat "." rest))
  | tf_type :: rname :: attr_segments when attr_segments <> [] -> (
      match env.type_map tf_type with
      | Some rtype ->
          `Ref { Value.rtype; rname; attr = String.concat "." attr_segments }
      | None -> `Opaque (String.concat "." segments))
  | _ -> `Opaque (String.concat "." segments)

let rec expr_to_value env expr =
  match expr with
  | Ast.E_null -> Value.Null
  | Ast.E_bool b -> Value.Bool b
  | Ast.E_int i -> Value.Int i
  | Ast.E_float f -> Value.Int (int_of_float f)
  | Ast.E_list items -> Value.List (List.map (expr_to_value env) items)
  | Ast.E_map fields ->
      Value.Block (List.map (fun (k, v) -> (k, expr_to_value env v)) fields)
  | Ast.E_traversal segments -> (
      match resolve_traversal env segments with
      | `Ref r -> Value.Ref r
      | `Expr e -> expr_to_value env e
      | `Opaque s -> Value.Str s)
  | Ast.E_string [ Ast.Interp segments ] -> (
      match resolve_traversal env segments with
      | `Ref r -> Value.Ref r
      | `Expr e -> expr_to_value env e
      | `Opaque s -> Value.Str s)
  | Ast.E_string parts ->
      (* Mixed template: render to a flat string; references degrade to
         their textual form (no graph edge), matching plan rendering of
         computed string concatenations. *)
      let render part =
        match part with
        | Ast.Lit s -> s
        | Ast.Interp segments -> (
            match resolve_traversal env segments with
            | `Ref r -> Printf.sprintf "%s.%s.%s" r.Value.rtype r.rname r.attr
            | `Expr e -> (
                match expr_to_value env e with
                | Value.Str s -> s
                | v -> Value.to_string v)
            | `Opaque s -> s)
      in
      Value.Str (String.concat "" (List.map render parts))

let body_to_attrs env body =
  let attrs =
    List.map (fun (k, v) -> (k, expr_to_value env v)) body.Ast.battrs
  in
  (* Group nested blocks by type: a single occurrence compiles to a
     Block value, repeats compile to a List of Blocks. *)
  let rec block_value b = Value.Block (body_fields b.Ast.body)
  and body_fields body =
    let attrs = List.map (fun (k, v) -> (k, expr_to_value env v)) body.Ast.battrs in
    attrs @ grouped_blocks body
  and grouped_blocks body =
    let names =
      List.fold_left
        (fun acc b -> if List.mem b.Ast.btype acc then acc else acc @ [ b.Ast.btype ])
        [] body.Ast.bblocks
    in
    List.map
      (fun name ->
        let occurrences =
          List.filter (fun b -> String.equal b.Ast.btype name) body.Ast.bblocks
        in
        match occurrences with
        | [ only ] -> (name, block_value only)
        | many -> (name, Value.List (List.map block_value many)))
      names
  in
  attrs @ grouped_blocks body

let compile_file ~type_map file =
  let variables =
    List.filter_map
      (fun block ->
        match (block.Ast.btype, block.Ast.labels) with
        | "variable", [ name ] ->
            Option.map
              (fun d -> (name, d))
              (List.assoc_opt "default" block.Ast.body.Ast.battrs)
        | _ -> None)
      file
  in
  let env = { type_map; variables; diags = [] } in
  let resources =
    List.filter_map
      (fun block ->
        match (block.Ast.btype, block.Ast.labels) with
        | "resource", [ tf_type; rname ] ->
            let rtype =
              match type_map tf_type with
              | Some canonical -> canonical
              | None ->
                  warn env "unknown resource type" tf_type;
                  tf_type
            in
            Some (Resource.make rtype rname (body_to_attrs env block.Ast.body))
        | "resource", labels ->
            warn env "malformed resource block" (String.concat " " labels);
            None
        | ("variable" | "provider" | "output" | "terraform" | "locals" | "data"), _ ->
            None
        | other, _ ->
            warn env "ignored top-level block" other;
            None)
      file
  in
  (Program.of_resources resources, List.rev env.diags)

let compile_string ~type_map src =
  match Parser.parse_result src with
  | Error e -> Error e
  | Ok file -> Ok (compile_file ~type_map file)

let rec value_to_expr ~type_name v =
  match v with
  | Value.Null -> Ast.E_null
  | Value.Bool b -> Ast.E_bool b
  | Value.Int i -> Ast.E_int i
  | Value.Str s -> Ast.string_lit s
  | Value.List items -> Ast.E_list (List.map (value_to_expr ~type_name) items)
  | Value.Block fields ->
      Ast.E_map (List.map (fun (k, v) -> (k, value_to_expr ~type_name v)) fields)
  | Value.Ref r ->
      Ast.E_traversal
        ((type_name r.Value.rtype :: r.rname :: String.split_on_char '.' r.attr))

(* Block values become nested blocks; lists of blocks become repeated
   nested blocks; everything else is an attribute. *)
let rec attrs_to_body ~type_name attrs =
  let battrs = ref [] in
  let bblocks = ref [] in
  List.iter
    (fun (k, v) ->
      match v with
      | Value.Block fields ->
          bblocks :=
            { Ast.btype = k; labels = []; body = attrs_to_body ~type_name fields }
            :: !bblocks
      | Value.List items
        when items <> []
             && List.for_all (function Value.Block _ -> true | _ -> false) items ->
          List.iter
            (fun item ->
              match item with
              | Value.Block fields ->
                  bblocks :=
                    {
                      Ast.btype = k;
                      labels = [];
                      body = attrs_to_body ~type_name fields;
                    }
                    :: !bblocks
              | _ -> ())
            items
      | v -> battrs := (k, value_to_expr ~type_name v) :: !battrs)
    attrs;
  { Ast.battrs = List.rev !battrs; bblocks = List.rev !bblocks }

let decompile ~type_name prog =
  List.map
    (fun r ->
      {
        Ast.btype = "resource";
        labels = [ type_name r.Resource.rtype; r.Resource.rname ];
        body = attrs_to_body ~type_name r.Resource.attrs;
      })
    (Program.resources prog)

let program_to_hcl ~type_name prog = Printer.file_to_string (decompile ~type_name prog)
