lib/hcl/printer.mli: Ast
