lib/hcl/ast.ml:
