lib/hcl/compile.mli: Ast Zodiac_iac
