lib/hcl/lexer.mli: Ast
