lib/hcl/plan.mli: Zodiac_iac Zodiac_util
