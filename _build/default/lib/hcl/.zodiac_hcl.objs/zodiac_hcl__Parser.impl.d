lib/hcl/parser.ml: Array Ast Lexer List Printf
