lib/hcl/lexer.ml: Ast Buffer List Printf String
