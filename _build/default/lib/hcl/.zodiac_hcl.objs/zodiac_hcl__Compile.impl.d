lib/hcl/compile.ml: Ast List Option Parser Printer Printf String Zodiac_iac
