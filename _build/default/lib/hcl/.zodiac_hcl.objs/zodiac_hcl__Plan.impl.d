lib/hcl/plan.ml: List Option Printf String Zodiac_iac Zodiac_util
