lib/hcl/ast.mli:
