lib/hcl/printer.ml: Ast Buffer List Printf String
