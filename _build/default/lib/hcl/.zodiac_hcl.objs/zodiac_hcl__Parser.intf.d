lib/hcl/parser.mli: Ast
