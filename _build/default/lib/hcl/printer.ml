let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '$' -> Buffer.add_string buf "\\$"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let string_parts_to_string parts =
  let buf = Buffer.create 32 in
  Buffer.add_char buf '"';
  List.iter
    (fun part ->
      match part with
      | Ast.Lit s -> Buffer.add_string buf (escape s)
      | Ast.Interp traversal ->
          Buffer.add_string buf "${";
          Buffer.add_string buf (String.concat "." traversal);
          Buffer.add_char buf '}')
    parts;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec expr_to_string = function
  | Ast.E_null -> "null"
  | Ast.E_bool b -> string_of_bool b
  | Ast.E_int i -> string_of_int i
  | Ast.E_float f -> string_of_float f
  | Ast.E_string parts -> string_parts_to_string parts
  | Ast.E_list items -> "[" ^ String.concat ", " (List.map expr_to_string items) ^ "]"
  | Ast.E_map fields ->
      "{ "
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (expr_to_string v)) fields)
      ^ " }"
  | Ast.E_traversal segments -> String.concat "." segments

let rec emit_block buf indent block =
  let pad = String.make indent ' ' in
  Buffer.add_string buf pad;
  Buffer.add_string buf block.Ast.btype;
  List.iter
    (fun label -> Buffer.add_string buf (Printf.sprintf " %S" label))
    block.Ast.labels;
  Buffer.add_string buf " {\n";
  emit_body buf (indent + 2) block.Ast.body;
  Buffer.add_string buf pad;
  Buffer.add_string buf "}\n"

and emit_body buf indent body =
  let pad = String.make indent ' ' in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %s\n" pad k (expr_to_string v)))
    body.Ast.battrs;
  List.iter
    (fun block ->
      emit_block buf indent block)
    body.Ast.bblocks

let file_to_string file =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i block ->
      if i > 0 then Buffer.add_char buf '\n';
      emit_block buf 0 block)
    file;
  Buffer.contents buf
