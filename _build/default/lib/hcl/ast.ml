type string_part = Lit of string | Interp of string list

type expr =
  | E_null
  | E_bool of bool
  | E_int of int
  | E_float of float
  | E_string of string_part list
  | E_list of expr list
  | E_map of (string * expr) list
  | E_traversal of string list

type block = { btype : string; labels : string list; body : body }

and body = { battrs : (string * expr) list; bblocks : block list }

type file = block list

let empty_body = { battrs = []; bblocks = [] }

let string_lit s = E_string [ Lit s ]

let plain_string = function
  | E_string [ Lit s ] -> Some s
  | E_string [] -> Some ""
  | _ -> None
