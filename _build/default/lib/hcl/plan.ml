module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Json = Zodiac_util.Json

(* ---- emission -------------------------------------------------------- *)

(* planned values: references are unknown at plan time *)
let rec value_to_planned = function
  | Value.Null -> Json.Null
  | Value.Bool b -> Json.Bool b
  | Value.Int i -> Json.Int i
  | Value.Str s -> Json.String s
  | Value.List items -> Json.List (List.map value_to_planned items)
  | Value.Block fields ->
      Json.Obj (List.map (fun (k, v) -> (k, value_to_planned v)) fields)
  | Value.Ref _ -> Json.Null

(* configuration expressions: structure plus references *)
let rec value_to_expression ~type_name v =
  match v with
  | Value.Ref r ->
      Json.Obj
        [
          ( "references",
            Json.List
              [
                Json.String
                  (Printf.sprintf "%s.%s.%s" (type_name r.Value.rtype) r.Value.rname
                     r.Value.attr);
              ] );
        ]
  | Value.Block fields ->
      Json.Obj
        (List.map (fun (k, v) -> (k, value_to_expression ~type_name v)) fields)
  | Value.List items ->
      (* a list with references keeps per-element expressions; terraform
         flattens reference lists into a single references array, which
         we mirror when every element is a reference *)
      if items <> [] && List.for_all (function Value.Ref _ -> true | _ -> false) items
      then
        Json.Obj
          [
            ( "references",
              Json.List
                (List.map
                   (function
                     | Value.Ref r ->
                         Json.String
                           (Printf.sprintf "%s.%s.%s" (type_name r.Value.rtype)
                              r.Value.rname r.Value.attr)
                     | _ -> Json.Null)
                   items) );
          ]
      else Json.List (List.map (value_to_expression ~type_name) items)
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _ ->
      Json.Obj [ ("constant_value", value_to_planned v) ]

let to_json ~type_name prog =
  let planned =
    List.map
      (fun r ->
        let tf_type = type_name r.Resource.rtype in
        Json.Obj
          [
            ("address", Json.String (Printf.sprintf "%s.%s" tf_type r.Resource.rname));
            ("mode", Json.String "managed");
            ("type", Json.String tf_type);
            ("name", Json.String r.Resource.rname);
            ("provider_name", Json.String "registry.terraform.io/hashicorp/azurerm");
            ( "values",
              Json.Obj
                (List.map (fun (k, v) -> (k, value_to_planned v)) r.Resource.attrs) );
          ])
      (Program.resources prog)
  in
  let configuration =
    List.map
      (fun r ->
        let tf_type = type_name r.Resource.rtype in
        Json.Obj
          [
            ("address", Json.String (Printf.sprintf "%s.%s" tf_type r.Resource.rname));
            ("type", Json.String tf_type);
            ("name", Json.String r.Resource.rname);
            ( "expressions",
              Json.Obj
                (List.map
                   (fun (k, v) -> (k, value_to_expression ~type_name v))
                   r.Resource.attrs) );
          ])
      (Program.resources prog)
  in
  Json.Obj
    [
      ("format_version", Json.String "1.2");
      ("terraform_version", Json.String "1.9.0");
      ( "planned_values",
        Json.Obj [ ("root_module", Json.Obj [ ("resources", Json.List planned) ]) ] );
      ( "configuration",
        Json.Obj
          [ ("root_module", Json.Obj [ ("resources", Json.List configuration) ]) ] );
    ]

let to_string ~type_name prog = Json.to_string ~pretty:true (to_json ~type_name prog)

(* ---- parsing --------------------------------------------------------- *)

let parse_reference ~type_map text =
  match String.split_on_char '.' text with
  | tf_type :: rname :: attr_segments when attr_segments <> [] -> (
      match type_map tf_type with
      | Some rtype ->
          Some (Value.Ref { Value.rtype; rname; attr = String.concat "." attr_segments })
      | None -> None)
  | _ -> None

let rec expression_to_value ~type_map json =
  match json with
  | Json.Obj fields when List.mem_assoc "references" fields -> (
      match List.assoc "references" fields with
      | Json.List [ Json.String text ] -> (
          match parse_reference ~type_map text with
          | Some v -> v
          | None -> Value.Str text)
      | Json.List refs ->
          Value.List
            (List.map
               (fun r ->
                 match r with
                 | Json.String text -> (
                     match parse_reference ~type_map text with
                     | Some v -> v
                     | None -> Value.Str text)
                 | _ -> Value.Null)
               refs)
      | _ -> Value.Null)
  | Json.Obj fields when List.mem_assoc "constant_value" fields ->
      Value.of_json (List.assoc "constant_value" fields)
  | Json.Obj fields ->
      Value.Block (List.map (fun (k, v) -> (k, expression_to_value ~type_map v)) fields)
  | Json.List items -> Value.List (List.map (expression_to_value ~type_map) items)
  | other -> Value.of_json other

let of_json ~type_map json =
  let resources_json =
    Json.member "configuration" json
    |> Json.member "root_module" |> Json.member "resources" |> Json.to_list
  in
  if resources_json = [] then Error "no resources in configuration.root_module"
  else
    let parse_resource entry =
      match
        ( Json.string_value (Json.member "type" entry),
          Json.string_value (Json.member "name" entry),
          Json.member "expressions" entry )
      with
      | Some tf_type, Some rname, Json.Obj fields ->
          let rtype = Option.value ~default:tf_type (type_map tf_type) in
          Ok
            (Resource.make rtype rname
               (List.map (fun (k, v) -> (k, expression_to_value ~type_map v)) fields))
      | _ -> Error "malformed resource entry"
    in
    let rec go acc = function
      | [] -> Ok (Program.of_resources (List.rev acc))
      | entry :: rest -> (
          match parse_resource entry with
          | Ok r -> go (r :: acc) rest
          | Error e -> Error e)
    in
    go [] resources_json

let of_string ~type_map text =
  match Json.of_string text with
  | exception Json.Parse_error e -> Error e
  | json -> of_json ~type_map json
