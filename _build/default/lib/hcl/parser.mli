(** Recursive-descent parser from tokens to {!Ast.file}. *)

exception Parse_error of string * int
(** Message and line number. *)

val parse : string -> Ast.file
(** Parse a complete HCL document.
    @raise Parse_error on syntax errors.
    @raise Lexer.Lex_error on lexical errors. *)

val parse_result : string -> (Ast.file, string) result
(** Like {!parse} but folding both error kinds into a message. *)
