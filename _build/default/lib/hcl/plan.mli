(** Terraform-style JSON deployment plans.

    Zodiac's mining operates on compiled deployment plans, and the
    paper's cross-framework roadmap (§6) rests on plan JSON being the
    common denominator between Terraform, CDKTF and CloudFormation.
    This module emits and parses a [terraform show -json]-shaped
    document:

    - [planned_values.root_module.resources] carries concrete attribute
      values, with cross-resource references rendered as [null] (their
      values are only known after apply);
    - [configuration.root_module.resources[].expressions] carries the
      expression structure, including [references], from which the
      parser reconstructs the resource graph. *)

val to_json :
  type_name:(string -> string) -> Zodiac_iac.Program.t -> Zodiac_util.Json.t
(** Emit a plan document. [type_name] maps canonical type names to
    Terraform type names. *)

val of_json :
  type_map:(string -> string option) ->
  Zodiac_util.Json.t ->
  (Zodiac_iac.Program.t, string) result
(** Reconstruct a program from a plan document (references are restored
    from the configuration section). *)

val to_string :
  type_name:(string -> string) -> Zodiac_iac.Program.t -> string

val of_string :
  type_map:(string -> string option) ->
  string ->
  (Zodiac_iac.Program.t, string) result
