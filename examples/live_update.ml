(* Live updates to a running deployment (§1).

   Changing a deployed VPC's address space cannot be applied in place:
   Azure forces the VPC — and transitively every resource referencing
   it — to be destroyed and recreated. This example plans three updates
   against a running web tier and shows the disruption each causes,
   including an update that fails mid-flight.

     dune exec examples/live_update.exe *)

module Update = Zodiac_cloud.Update
module Arm = Zodiac_cloud.Arm
module Program = Zodiac_iac.Program
module Resource = Zodiac_iac.Resource
module Value = Zodiac_iac.Value

let action_text = function
  | Update.Create id -> Printf.sprintf "+ create  %s" (Resource.id_to_string id)
  | Update.Update_in_place (id, changes) ->
      Printf.sprintf "~ update  %s (%s)" (Resource.id_to_string id)
        (String.concat ", " changes)
  | Update.Replace (id, _) ->
      Printf.sprintf "! replace %s (destroy and recreate)" (Resource.id_to_string id)
  | Update.Destroy id -> Printf.sprintf "- destroy %s" (Resource.id_to_string id)
  | Update.Noop _ -> ""

let show_plan label current desired =
  Printf.printf "\n=== %s ===\n" label;
  let provider = Zodiac_azure.Azure.provider in
  let result = Update.apply ~provider ~current ~desired () in
  List.iter
    (fun action ->
      match action_text action with "" -> () | line -> print_endline ("  " ^ line))
    result.Update.actions;
  Printf.printf "  resources incurring downtime: %d\n" (Update.disruption result);
  (match Arm.first_error result.Update.outcome with
  | None -> print_endline "  update applies cleanly"
  | Some f ->
      Printf.printf "  UPDATE FAILS mid-flight: [%s] %s\n" f.Arm.rule_id f.Arm.message;
      print_endline
        "  the recreated resources are already gone - the deployment is now degraded");
  result

let () =
  (* a running deployment *)
  let current = Zodiac.Registry.compile_exn Zodiac.Registry.quickstart_vm in
  assert (Arm.success (Arm.deploy ~provider:Zodiac_azure.Azure.provider current));
  Printf.printf "running deployment: %d resources\n" (Program.size current);

  (* update 1: a tag-level change applies in place *)
  let desired =
    Program.update current
      { Resource.rtype = "NIC"; rname = "nic" }
      (fun r -> Resource.set r "accelerated_networking" (Value.Bool true))
  in
  ignore (show_plan "enable accelerated networking on the NIC" current desired);

  (* update 2: growing the VPC address space forces a full recreate
     cascade (the paper's CIDR-fix scenario), but applies cleanly when
     the subnet moves along *)
  let vpc_moved =
    Program.update current
      { Resource.rtype = "VPC"; rname = "net" }
      (fun r ->
        Resource.set r "address_space" (Value.List [ Value.Str "10.99.0.0/16" ]))
  in
  let desired_fixed =
    Program.update vpc_moved
      { Resource.rtype = "SUBNET"; rname = "app" }
      (fun r -> Resource.set r "cidr" (Value.Str "10.99.1.0/24"))
  in
  ignore
    (show_plan "change the VPC address space (subnet updated too)" current
       desired_fixed);

  (* update 3: the same change with the subnet range forgotten - the
     update fails after the VPC was already destroyed *)
  ignore
    (show_plan "the same change with a stale subnet range" current vpc_moved)
