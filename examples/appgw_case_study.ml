(* The application-gateway documentation bug (§5.5, provider issue
   #27222), replayed end to end.

   The official usage example compiles cleanly yet violates two
   semantic checks; the naive fix for the first violation trips a
   third check; only the complete fix deploys.

     dune exec examples/appgw_case_study.exe *)

module Arm = Zodiac_cloud.Arm
module Rules = Zodiac_cloud.Rules
module Program = Zodiac_iac.Program
module Resource = Zodiac_iac.Resource
module Value = Zodiac_iac.Value

let banner title = Printf.printf "\n=== %s ===\n" title

let attempt label program =
  banner label;
  let provider = Zodiac_azure.Azure.provider in
  let outcome = Arm.deploy ~provider program in
  match Arm.first_error outcome with
  | None ->
      Printf.printf "deployment SUCCEEDS (%d resources created)\n"
        (List.length outcome.Arm.deployed);
      true
  | Some f ->
      Printf.printf "deployment FAILS at %s\n  [%s, %s phase] %s\n"
        (Resource.id_to_string f.Arm.resource)
        f.Arm.rule_id
        (Rules.phase_to_string f.Arm.phase)
        f.Arm.message;
      Printf.printf "  resources created before the failure: %d; halted behind it: %d\n"
        (List.length outcome.Arm.deployed)
        (List.length outcome.Arm.halted);
      false

let () =
  let buggy = Zodiac.Registry.compile_exn Zodiac.Registry.appgw_assoc_buggy in
  Printf.printf
    "The example compiles without errors — Terraform's own validation sees nothing wrong.\n";
  ignore (attempt "official usage example, as documented" buggy);

  (* Naive fix: bump the IP sku to Standard but keep Dynamic allocation.
     This trades the APPGW-IP violation for an intra-resource one. *)
  let naive =
    Program.update buggy
      { Resource.rtype = "IP"; rname = "d" }
      (fun r -> Resource.set r "sku" (Value.Str "Standard"))
  in
  ignore (attempt "naive fix: sku = Standard (allocation still Dynamic)" naive);

  (* Complete fix for violation 1: Standard + Static. Violation 2 (the
     NIC sharing the gateway's subnet) now surfaces. *)
  let v1_fixed =
    Program.update naive
      { Resource.rtype = "IP"; rname = "d" }
      (fun r -> Resource.set r "allocation" (Value.Str "Static"))
  in
  ignore (attempt "violation 1 fixed: Standard + Static" v1_fixed);

  (* Full fix: also move the NIC to the backend subnet. *)
  let fixed = Zodiac.Registry.compile_exn Zodiac.Registry.appgw_assoc_fixed in
  if attempt "complete fix: NIC moved to the backend subnet" fixed then
    print_endline
      "\nBoth violations found by Zodiac were reported upstream and fixed in the provider docs."
