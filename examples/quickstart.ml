(* Quickstart: parse a Terraform configuration, compile it to a
   resource graph, simulate its deployment, and check it against the
   semantic rule set.

     dune exec examples/quickstart.exe *)

module Arm = Zodiac_cloud.Arm
module Rules = Zodiac_cloud.Rules
module Graph = Zodiac_iac.Graph
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Eval = Zodiac_spec.Eval

let () =
  (* 1. Compile HCL into Zodiac's program model. *)
  let program = Zodiac.Registry.compile_exn Zodiac.Registry.quickstart_vm in
  Printf.printf "compiled %d resources:\n" (Program.size program);
  List.iter
    (fun r ->
      Printf.printf "  %s\n" (Resource.id_to_string (Resource.id r)))
    (Program.resources program);

  (* 2. Inspect the resource graph. *)
  let graph = Graph.build program in
  Printf.printf "\nresource graph edges:\n";
  List.iter
    (fun (e : Graph.edge) ->
      Printf.printf "  %s.%s -> %s.%s\n"
        (Resource.id_to_string e.Graph.src)
        e.Graph.src_attr
        (Resource.id_to_string e.Graph.dst)
        e.Graph.dst_attr)
    (Graph.edges graph);

  (* 3. Simulate the deployment. *)
  let provider = Zodiac_azure.Azure.provider in
  let outcome = Arm.deploy ~provider program in
  Printf.printf "\ndeployment: %s\n"
    (if Arm.success outcome then "SUCCESS" else "FAILED");

  (* 4. Break the program — move the NIC to another region — and watch
     the semantic gap open: compilation still succeeds, deployment
     fails. *)
  let broken =
    Program.update program
      { Resource.rtype = "NIC"; rname = "nic" }
      (fun r -> Resource.set r "location" (Zodiac_iac.Value.Str "japaneast"))
  in
  let outcome = Arm.deploy ~provider broken in
  (match Arm.first_error outcome with
  | Some f ->
      Printf.printf
        "\nafter moving the NIC to japaneast:\n  deployment fails at %s (%s phase): %s\n"
        (Resource.id_to_string f.Arm.resource)
        (Rules.phase_to_string f.Arm.phase)
        f.Arm.message
  | None -> print_endline "unexpectedly deployed");

  (* 5. The corresponding semantic check catches it statically. *)
  let check =
    Zodiac_spec.Spec_parser.parse_exn
      "let r1:VM, r2:NIC in conn(r1.nic_ids -> r2.id) => r1.location == r2.location"
  in
  let violations =
    Eval.violations ~defaults:(Arm.defaults provider) (Graph.build broken) check
  in
  Printf.printf
    "\nsemantic check '%s'\n  flags %d violation(s) at compile time — no cloud required.\n"
    (Zodiac_spec.Spec_printer.to_string check)
    (List.length violations)
