(* Scan a repository corpus for semantic misconfigurations (§5.5).

   Generates a synthetic "GitHub" corpus with a realistic violation
   rate, scans every project against the semantic checks, and reports
   the buggy repositories together with the deployment damage each bug
   would have caused (blast radius).

     dune exec examples/scan_repository.exe *)

module Generator = Zodiac_corpus.Generator
module Arm = Zodiac_cloud.Arm
module Rules = Zodiac_cloud.Rules
module Graph = Zodiac_iac.Graph
module Resource = Zodiac_iac.Resource
module Eval = Zodiac_spec.Eval

let () =
  let provider = Zodiac_azure.Azure.provider in
  let projects = Generator.generate ~provider ~violation_rate:0.06 ~seed:1234 ~count:400 () in
  Printf.printf "scanning %d repositories...\n\n" (List.length projects);
  let buggy = ref 0 in
  List.iter
    (fun p ->
      let graph = Graph.build p.Generator.program in
      let findings =
        List.concat_map
          (fun (rule : Rules.t) ->
            List.map
              (fun assignment -> (rule, assignment))
              (Eval.violations ~defaults:(Arm.defaults provider) graph rule.Rules.check))
          (provider.Zodiac_provider.Provider.ground_truth ())
      in
      if findings <> [] then begin
        incr buggy;
        Printf.printf "%s (%s):\n" p.Generator.pname p.Generator.scenario;
        List.iter
          (fun ((rule : Rules.t), assignment) ->
            Printf.printf "  [%s] %s\n    involving %s\n" rule.Rules.rule_id
              rule.Rules.message
              (String.concat ", "
                 (List.map (fun (_, id) -> Resource.id_to_string id) assignment)))
          findings;
        (* what would have happened at deploy time? *)
        let outcome = Arm.deploy ~provider p.Generator.program in
        (match Arm.first_error outcome with
        | Some f ->
            let radius = Arm.blast_radius p.Generator.program outcome in
            Printf.printf
              "  deployment impact: fails at %s (%s phase); %d resource type(s) halted, %d need rollback\n"
              (Resource.id_to_string f.Arm.resource)
              (Rules.phase_to_string f.Arm.phase)
              (List.length radius.Arm.halted_types)
              (List.length radius.Arm.rollback_types)
        | None -> print_endline "  deployment impact: silent state inconsistency");
        print_newline ()
      end)
    projects;
  Printf.printf "=> %d of %d repositories carry semantic misconfigurations (%.1f%%)\n"
    !buggy (List.length projects)
    (100.0 *. float_of_int !buggy /. float_of_int (List.length projects))
