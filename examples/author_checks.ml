(* Authoring semantic checks in Zodiac's assertion language, and using
   the validation machinery to test a hypothesis against the cloud.

     dune exec examples/author_checks.exe *)

module Parser = Zodiac_spec.Spec_parser
module Printer = Zodiac_spec.Spec_printer
module Eval = Zodiac_spec.Eval
module Graph = Zodiac_iac.Graph
module Generator = Zodiac_corpus.Generator
module Kb = Zodiac_kb.Kb
module Miner = Zodiac_mining.Miner
module Testcase = Zodiac_validation.Testcase
module Mutation = Zodiac_validation.Mutation
module Arm = Zodiac_cloud.Arm

let () =
  (* Author checks in the concrete syntax of Figure 4. *)
  let hypotheses =
    List.map Parser.parse_exn
      [
        (* a real Azure constraint *)
        "let r:SA in r.tier == 'Premium' => r.replica != 'GZRS'";
        (* a plausible-sounding but wrong one *)
        "let r:SA in r.tier == 'Standard' => r.https_only == true";
      ]
  in
  (* Set up a corpus and KB for test-case generation. *)
  let provider = Zodiac_azure.Azure.provider in
  let projects = Generator.generate ~provider ~seed:77 ~count:300 () in
  let corpus =
    List.map (fun p -> (p.Generator.pname, p.Generator.program)) projects
  in
  let programs = Miner.materialize ~provider (List.map snd corpus) in
  let kb = Kb.build ~provider ~projects:programs () in
  List.iter
    (fun check ->
      Printf.printf "hypothesis: %s\n" (Printer.to_string check);
      match Testcase.find ~provider ~corpus check with
      | [] -> print_endline "  no positive witness in the corpus\n"
      | tp :: _ -> (
          Printf.printf "  positive test case from %s (%d resources after MDC pruning)\n"
            tp.Testcase.source
            (Zodiac_iac.Program.size tp.Testcase.program);
          assert (Arm.success (Arm.deploy ~provider tp.Testcase.program));
          print_endline "  positive case deploys: OK";
          match
            Mutation.negative ~provider ~kb ~donors:corpus ~target:check ~hard:[] ~soft:[] tp
          with
          | None -> print_endline "  no negative test case exists (UNSAT)\n"
          | Some neg ->
              Printf.printf
                "  negative test case generated (%d attribute change(s), %d added resource(s))\n"
                neg.Mutation.attr_changes neg.Mutation.topo_changes;
              if Arm.success (Arm.deploy ~provider neg.Mutation.program) then
                print_endline
                  "  negative case DEPLOYS — hypothesis falsified (not a cloud rule)\n"
              else
                print_endline
                  "  negative case fails to deploy — hypothesis VALIDATED\n"))
    hypotheses;
  (* The evaluator can also be used directly as a linter. *)
  let check = Parser.parse_exn "let r:IP in r.sku == 'Standard' => r.allocation == 'Static'" in
  let bad =
    Zodiac_iac.Program.of_resources
      [
        Zodiac_iac.Resource.make "IP" "pip"
          [
            ("name", Zodiac_iac.Value.Str "demo");
            ("location", Zodiac_iac.Value.Str "eastus");
            ("sku", Zodiac_iac.Value.Str "Standard");
            ("allocation", Zodiac_iac.Value.Str "Dynamic");
          ];
      ]
  in
  let violations =
    Eval.violations ~defaults:(Arm.defaults provider) (Graph.build bad) check
  in
  Printf.printf "linting a standalone program: %d violation(s) of %s\n"
    (List.length violations) (Printer.to_string check)
