(** Azure corpus scenario templates, violation injectors and the
    unattended-resource decorator, moved verbatim from the generator so
    the provider owns its corpus knowledge. PRNG call order within each
    builder is load-bearing: projects must be byte-identical to the
    pre-refactor generator for every seed. *)

module Prng = Zodiac_util.Prng
module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
open Zodiac_provider.Provider.Build


let common_sku ctx = Prng.weighted ctx.rng
    [ (6, "Standard_B2s"); (5, "Standard_D2s_v3"); (4, "Standard_B1s");
      (3, "Standard_D4s_v3"); (3, "Standard_F4s_v2"); (2, "Standard_E4s_v3");
      (2, "Standard_DS2_v2"); (1, "Standard_B4ms"); (1, "Standard_F8s_v2");
      (1, "Standard_D8s_v3"); (1, "Standard_A2_v2"); (1, "Standard_DS3_v2") ]

(* ------------- resource builders ------------------------------------ *)

let make_vpc ctx index =
  let cidr = Printf.sprintf "10.%d.0.0/16" (index land 0xFF) in
  add ctx "VPC" (fresh ctx "vnet")
    [
      ("name", str (fresh ctx "vnet-net"));
      ("location", str ctx.region);
      ("address_space", Value.List [ str cidr ]);
    ]

let vpc_base vpc =
  match Resource.get vpc "address_space" with
  | Value.List (Value.Str s :: _) -> s
  | _ -> "10.0.0.0/16"

let subnet_cidr vpc index =
  match Zodiac_util.Cidr.of_string (vpc_base vpc) with
  | Some base -> (
      match Zodiac_util.Cidr.nth_subnet base 24 index with
      | Some c -> Zodiac_util.Cidr.to_string c
      | None -> "10.0.0.0/24")
  | None -> "10.0.0.0/24"

let make_subnet ?name ctx vpc index =
  let sname = match name with Some n -> n | None -> fresh ctx "snet" in
  add ctx "SUBNET" (fresh ctx "subnet")
    [
      ("name", str sname);
      ("vpc_name", ref_to vpc "name");
      ("cidr", str (subnet_cidr vpc index));
    ]

let make_ip ?(standard = false) ctx =
  let sku = if standard || Prng.chance ctx.rng 0.55 then "Standard" else "Basic" in
  let allocation = if String.equal sku "Standard" then "Static"
    else if Prng.chance ctx.rng 0.7 then "Dynamic" else "Static" in
  add ctx "IP" (fresh ctx "pip")
    [
      ("name", str (fresh ctx "pip-addr"));
      ("location", str ctx.region);
      ("allocation", str allocation);
      ("sku", str sku);
    ]

let make_nic ?public_ip ctx subnet =
  let base_cfg =
    [
      ("name", str "internal");
      ("subnet_id", ref_to subnet "id");
      ("private_ip_allocation", str "Dynamic");
    ]
  in
  let cfg =
    match public_ip with
    | Some ip -> base_cfg @ [ ("public_ip_id", ref_to ip "id") ]
    | None -> base_cfg
  in
  add ctx "NIC" (fresh ctx "nic")
    [
      ("name", str (fresh ctx "nic-if"));
      ("location", str ctx.region);
      ("ip_config", Value.Block cfg);
    ]

let make_vm ?sku ?avset ctx nics =
  let sku = match sku with Some s -> s | None -> common_sku ctx in
  let uses_password = Prng.chance ctx.rng 0.4 in
  let auth =
    if uses_password then
      [ ("admin_password", str (Printf.sprintf "P@ssw0rd-%06d!" (Prng.int ctx.rng 999999))) ]
    else
      [
        ("password_authentication_enabled", bool false);
        ( "admin_ssh_key",
          Value.Block
            [
              ("username", str "azureuser");
              ( "public_key",
                str (Printf.sprintf "ssh-rsa AAAAB3Nz%08x" (Prng.int ctx.rng 0x3FFFFFFF)) );
            ] );
      ]
  in
  (* Real corpora essentially always deploy from an image; the Attach
     path is vanishingly rare (the §5.6 data-scarcity false positive). *)
  let creation =
    if Prng.chance ctx.rng 0.008 then [ ("create", str "Attach") ]
    else
      [
        ( "source_image_ref",
          Value.Block
            [
              ("publisher", str "Canonical");
              ("offer", str "0001-com-ubuntu-server-jammy");
              ("sku", str "22_04-lts");
              ("version", str "latest");
            ] );
      ]
  in
  let storage_type =
    match Skus.find_vm sku with
    | Some s when s.Skus.premium_io && Prng.chance ctx.rng 0.5 -> "Premium_LRS"
    | _ -> if Prng.chance ctx.rng 0.5 then "StandardSSD_LRS" else "Standard_LRS"
  in
  let spot =
    if Prng.chance ctx.rng 0.08 then
      [
        ("priority", str "Spot");
        ( "evict_policy",
          str (if Prng.chance ctx.rng 0.7 then "Deallocate" else "Delete") );
      ]
    else []
  in
  let avset_attr =
    match avset with Some av -> [ ("availability_set_id", ref_to av "id") ] | None -> []
  in
  add ctx "VM" (fresh ctx "vm")
    ([
       ("name", str (fresh ctx "vm-host"));
       ("location", str ctx.region);
       ("sku", str sku);
       ("nic_ids", Value.List (List.map (fun nic -> ref_to nic "id") nics));
       ( "os_disk",
         Value.Block
           [
             ("name", str (fresh ctx "osdisk"));
             ("caching", str "ReadWrite");
             ("storage_type", str storage_type);
           ] );
       ("admin_username", str "azureuser");
     ]
    @ auth @ creation @ spot @ avset_attr)

let make_sa ctx =
  let tier, replica =
    if Prng.chance ctx.rng 0.15 then
      ("Premium", Prng.choose_list ctx.rng Skus.sa_premium_replications)
    else
      ( "Standard",
        Prng.weighted ctx.rng
          [ (5, "LRS"); (3, "GRS"); (2, "ZRS"); (1, "RAGRS"); (1, "GZRS") ] )
  in
  add ctx "SA" (fresh ctx "sa")
    [
      ("name", str (fresh ctx "storacct"));
      ("location", str ctx.region);
      ("tier", str tier);
      ("replica", str replica);
      ("https_only", bool (Prng.chance ctx.rng 0.9));
    ]

let make_sg ctx =
  let rule_count = Prng.int_in ctx.rng 1 4 in
  let used = Hashtbl.create 4 in
  let rules =
    List.init rule_count (fun i ->
        let dir = if Prng.chance ctx.rng 0.7 then "Inbound" else "Outbound" in
        let rec pick_priority () =
          let p = 100 + (10 * Prng.int ctx.rng 300) in
          if Hashtbl.mem used (dir, p) then pick_priority ()
          else begin
            Hashtbl.replace used (dir, p) ();
            p
          end
        in
        Value.Block
          [
            ("name", str (Printf.sprintf "rule%d" i));
            ("dir", str dir);
            ("access", str (if Prng.chance ctx.rng 0.8 then "Allow" else "Deny"));
            ("priority", int (pick_priority ()));
            ("protocol", str (Prng.choose_list ctx.rng [ "Tcp"; "Udp"; "*" ]));
            ("source_port_range", str "*");
            ( "dest_port_range",
              str (Prng.choose_list ctx.rng [ "22"; "80"; "443"; "3389"; "*" ]) );
            ("source_cidr", str (if Prng.chance ctx.rng 0.5 then "0.0.0.0/0" else "10.0.0.0/8"));
            ("dest_cidr", str "0.0.0.0/0");
          ])
  in
  add ctx "SG" (fresh ctx "sg")
    [
      ("name", str (fresh ctx "nsg"));
      ("location", str ctx.region);
      ("rule", Value.List rules);
    ]

let make_gw ?(sku = "VpnGw1") ctx subnet ip =
  add ctx "GW" (fresh ctx "gw")
    [
      ("name", str (fresh ctx "vpngw"));
      ("location", str ctx.region);
      ("type", str "Vpn");
      ("sku", str sku);
      ( "ip_config",
        Value.Block
          [
            ("name", str "gwipcfg");
            ("public_ip_id", ref_to ip "id");
            ("subnet_id", ref_to subnet "id");
          ] );
    ]

(* ------------- scenarios -------------------------------------------- *)

let web_tier ctx =
  let vpc = make_vpc ctx 0 in
  let subnet_count = Prng.int_in ctx.rng 1 3 in
  let subnets = List.init subnet_count (fun i -> make_subnet ctx vpc i) in
  let sg = make_sg ctx in
  List.iteri
    (fun i subnet ->
      if i = 0 || Prng.chance ctx.rng 0.5 then
        ignore
          (add ctx "SGASSOC" (fresh ctx "sga")
             [ ("subnet_id", ref_to subnet "id"); ("sg_id", ref_to sg "id") ]))
    subnets;
  let vm_count = Prng.int_in ctx.rng 1 3 in
  List.iter
    (fun _ ->
      let subnet = Prng.choose_list ctx.rng subnets in
      let public_ip = if Prng.chance ctx.rng 0.3 then Some (make_ip ctx) else None in
      let nic = make_nic ?public_ip ctx subnet in
      ignore (make_vm ctx [ nic ]))
    (List.init vm_count Fun.id);
  if Prng.chance ctx.rng 0.4 then begin
    let lb_ip = make_ip ~standard:true ctx in
    ignore
      (add ctx "LB" (fresh ctx "lb")
         [
           ("name", str (fresh ctx "weblb"));
           ("location", str ctx.region);
           ("sku", str "Standard");
           ( "frontend_ip_config",
             Value.Block [ ("name", str "frontend"); ("public_ip_id", ref_to lb_ip "id") ]
           );
         ])
  end;
  if Prng.chance ctx.rng 0.5 then ignore (make_sa ctx)

let hub_spoke ctx =
  let hub = make_vpc ctx 0 in
  let gw_subnet = make_subnet ~name:"GatewaySubnet" ctx hub 0 in
  let gw_ip = make_ip ~standard:true ctx in
  let sku = Prng.choose_list ctx.rng [ "VpnGw1"; "VpnGw2"; "Basic" ] in
  ignore (make_gw ~sku ctx gw_subnet gw_ip);
  let spokes = Prng.int_in ctx.rng 1 3 in
  List.iter
    (fun i ->
      let spoke = make_vpc ctx (i + 1) in
      ignore (make_subnet ctx spoke 0);
      ignore
        (add ctx "PEERING" (fresh ctx "peer")
           [
             ("name", str (fresh ctx "hub-to-spoke"));
             ("vpc_name", ref_to hub "name");
             ("remote_vpc_id", ref_to spoke "id");
             ("allow_forwarded_traffic", bool true);
           ]);
      ignore
        (add ctx "PEERING" (fresh ctx "peer")
           [
             ("name", str (fresh ctx "spoke-to-hub"));
             ("vpc_name", ref_to spoke "name");
             ("remote_vpc_id", ref_to hub "id");
             ("use_remote_gateways", bool false);
           ]))
    (List.init spokes Fun.id)

let vpn_site ctx =
  let vpc = make_vpc ctx 0 in
  let gw_subnet = make_subnet ~name:"GatewaySubnet" ctx vpc 0 in
  ignore (make_subnet ctx vpc 1);
  let ip = make_ip ~standard:true ctx in
  let sku = Prng.choose_list ctx.rng [ "VpnGw1"; "VpnGw2"; "VpnGw3"; "Basic" ] in
  let gw = make_gw ~sku ctx gw_subnet ip in
  let lng =
    add ctx "LNG" (fresh ctx "lng")
      [
        ("name", str (fresh ctx "onprem"));
        ("location", str ctx.region);
        ("gateway_address", str "203.0.113.12");
        ("address_space", Value.List [ str "192.168.0.0/16" ]);
      ]
  in
  let tunnels = Prng.int_in ctx.rng 1 3 in
  List.iter
    (fun _ ->
      ignore
        (add ctx "TUNNEL" (fresh ctx "conn")
           [
             ("name", str (fresh ctx "s2s"));
             ("location", str ctx.region);
             ("type", str "IPsec");
             ("gw_id", ref_to gw "id");
             ("lng_id", ref_to lng "id");
             ("shared_key", str (Printf.sprintf "psk-%08x" (Prng.int ctx.rng 0x3FFFFFFF)));
           ]))
    (List.init tunnels Fun.id)

let vnet2vnet ctx =
  (* two VPCs, each with a gateway, connected by Vnet2Vnet tunnels *)
  let make_side index =
    let vpc = make_vpc ctx index in
    let gw_subnet = make_subnet ~name:"GatewaySubnet" ctx vpc 0 in
    let ip = make_ip ~standard:true ctx in
    let sku = Prng.choose_list ctx.rng [ "VpnGw1"; "VpnGw2" ] in
    make_gw ~sku ctx gw_subnet ip
  in
  let gw1 = make_side 0 in
  let gw2 = make_side 1 in
  let tunnel name a b =
    ignore
      (add ctx "TUNNEL" (fresh ctx name)
         [
           ("name", str (fresh ctx name));
           ("location", str ctx.region);
           ("type", str "Vnet2Vnet");
           ("gw_id", ref_to a "id");
           ("peer_gw_id", ref_to b "id");
           ("shared_key", str (Printf.sprintf "psk-%08x" (Prng.int ctx.rng 0x3FFFFFFF)));
         ])
  in
  tunnel "v2v" gw1 gw2;
  if Prng.chance ctx.rng 0.7 then tunnel "v2v-back" gw2 gw1

let aks_cluster ctx =
  let vpc = make_vpc ctx 0 in
  let subnet = make_subnet ctx vpc 0 in
  let plugin = if Prng.chance ctx.rng 0.7 then "azure" else "kubenet" in
  let profile =
    [
      ("network_plugin", str plugin);
      ("service_cidr", str "172.16.0.0/16");
      ("dns_service_ip", str "172.16.0.10");
    ]
    @ if String.equal plugin "kubenet" then [ ("pod_cidr", str "172.17.0.0/16") ] else []
  in
  ignore
    (add ctx "AKS" (fresh ctx "aks")
       [
         ("name", str (fresh ctx "cluster"));
         ("location", str ctx.region);
         ("dns_prefix", str (fresh ctx "aksdns"));
         ( "default_node_pool",
           Value.Block
             [
               ("name", str "default");
               ("node_count", int (Prng.int_in ctx.rng 1 5));
               ("vm_size", str (common_sku ctx));
               ("subnet_id", ref_to subnet "id");
             ] );
         ("network_profile", Value.Block profile);
         ("identity", Value.Block [ ("type", str "SystemAssigned") ]);
       ]);
  if Prng.chance ctx.rng 0.5 then begin
    let ws =
      add ctx "LOGWS" (fresh ctx "logws")
        [
          ("name", str (fresh ctx "loganalytics"));
          ("location", str ctx.region);
          ("retention_in_days", int 30);
        ]
    in
    ignore
      (add ctx "APPINS" (fresh ctx "appins")
         [
           ("name", str (fresh ctx "insights"));
           ("location", str ctx.region);
           ("application_type", str "web");
           ("workspace_id", ref_to ws "id");
         ])
  end

let storage_pipeline ctx =
  let sa = make_sa ctx in
  let containers = Prng.int_in ctx.rng 1 3 in
  List.iter
    (fun i ->
      ignore
        (add ctx "CONTAINER" (fresh ctx "cont")
           [
             ("name", str (Printf.sprintf "data%d" i));
             ("sa_name", ref_to sa "name");
             ("access_type", str "private");
           ]))
    (List.init containers Fun.id);
  if Prng.chance ctx.rng 0.4 then
    ignore
      (add ctx "SHARE" (fresh ctx "share")
         [
           ("name", str (fresh ctx "fileshare"));
           ("sa_name", ref_to sa "name");
           ("quota", int (Prng.choose_list ctx.rng [ 50; 100; 500 ]));
         ]);
  if Prng.chance ctx.rng 0.15 then begin
    let premium_sa =
      add ctx "SA" (fresh ctx "sa")
        [
          ("name", str (fresh ctx "premfiles"));
          ("location", str ctx.region);
          ("tier", str "Premium");
          ("replica", str "LRS");
          ("kind", str "FileStorage");
        ]
    in
    ignore
      (add ctx "SHARE" (fresh ctx "share")
         [
           ("name", str (fresh ctx "nfsshare"));
           ("sa_name", ref_to premium_sa "name");
           ("quota", int 100);
           ("protocol", str "NFS");
         ])
  end;
  if Prng.chance ctx.rng 0.6 then begin
    let ns_sku = Prng.weighted ctx.rng [ (4, "Standard"); (2, "Basic"); (1, "Premium") ] in
    let ns =
      add ctx "EVENTHUB_NS" (fresh ctx "ehns")
        [
          ("name", str (fresh ctx "events-ns"));
          ("location", str ctx.region);
          ("sku", str ns_sku);
        ]
    in
    let retention = if String.equal ns_sku "Basic" then 1 else Prng.int_in ctx.rng 1 7 in
    ignore
      (add ctx "EVENTHUB" (fresh ctx "eh")
         [
           ("name", str (fresh ctx "hub"));
           ("namespace_name", ref_to ns "name");
           ("partition_count", int (Prng.choose_list ctx.rng [ 2; 4; 8 ]));
           ("message_retention", int retention);
         ])
  end;
  if Prng.chance ctx.rng 0.5 then begin
    let plan =
      add ctx "PLAN" (fresh ctx "plan")
        [
          ("name", str (fresh ctx "funcplan"));
          ("location", str ctx.region);
          ("os_type", str "Linux");
          ("sku", str "Y1");
        ]
    in
    ignore
      (add ctx "FUNC" (fresh ctx "func")
         [
           ("name", str (fresh ctx "worker"));
           ("location", str ctx.region);
           ("plan_id", ref_to plan "id");
           ("sa_name", ref_to sa "name");
         ])
  end

let appgw_front ctx =
  let vpc = make_vpc ctx 0 in
  let gw_subnet = make_subnet ctx vpc 0 in
  let backend_subnet = make_subnet ctx vpc 1 in
  let ip = make_ip ~standard:true ctx in
  let waf = Prng.chance ctx.rng 0.25 in
  let v2 = waf || Prng.chance ctx.rng 0.75 in
  let sku_name =
    if waf then "WAF_v2" else if v2 then "Standard_v2" else "Standard_Medium"
  in
  let sku_tier = if waf then "WAF_v2" else if v2 then "Standard_v2" else "Standard" in
  let rrr =
    Value.Block
      ([
         ("name", str "rule1");
         ("rule_type", str "Basic");
         ("http_listener_name", str "listener1");
         ("backend_address_pool_name", str "pool1");
         ("backend_http_settings_name", str "http1");
       ]
      @ if v2 then [ ("priority", int (Prng.int_in ctx.rng 1 100)) ] else [])
  in
  ignore
    (add ctx "APPGW" (fresh ctx "appgw")
       ([
         ("name", str (fresh ctx "gateway"));
         ("location", str ctx.region);
         ( "sku",
           Value.Block
             [ ("name", str sku_name); ("tier", str sku_tier); ("capacity", int 2) ] );
         ( "gateway_ip_config",
           Value.Block [ ("name", str "gwip"); ("subnet_id", ref_to gw_subnet "id") ] );
         ( "frontend_ip_config",
           Value.Block [ ("name", str "feip"); ("public_ip_id", ref_to ip "id") ] );
         ("frontend_port", Value.List [ Value.Block [ ("name", str "port80"); ("port", int 80) ] ]);
         ( "backend_address_pool",
           Value.List [ Value.Block [ ("name", str "pool1") ] ] );
         ( "backend_http_settings",
           Value.List
             [
               Value.Block
                 [
                   ("name", str "http1");
                   ("port", int 80);
                   ("protocol", str "Http");
                 ];
             ] );
         ( "http_listener",
           Value.List
             [
               Value.Block
                 [
                   ("name", str "listener1");
                   ("frontend_ip_config_name", str "feip");
                   ("frontend_port_name", str "port80");
                   ("protocol", str "Http");
                 ];
             ] );
         ("request_routing_rule", Value.List [ rrr ]);
       ]
       @
       if waf then
        [
          ( "waf_configuration",
            Value.Block
              [
                ("enabled", bool true);
                ("firewall_mode", str (if Prng.chance ctx.rng 0.6 then "Prevention" else "Detection"));
                ("rule_set_version", str "3.2");
              ] );
        ]
       else []));
  let nic = make_nic ctx backend_subnet in
  ignore (make_vm ctx [ nic ])

let data_tier ctx =
  if Prng.chance ctx.rng 0.7 then begin
    let server =
      add ctx "SQLSERVER" (fresh ctx "sqlsrv")
        [
          ("name", str (fresh ctx "sqlserver"));
          ("location", str ctx.region);
          ("version", str "12.0");
          ("administrator_login", str "sqladmin");
          ("administrator_password", str (Printf.sprintf "P@ssw0rd-%06d!" (Prng.int ctx.rng 999999)));
        ]
    in
    let dbs = Prng.int_in ctx.rng 1 3 in
    List.iter
      (fun i ->
        ignore
          (add ctx "SQLDB" (fresh ctx "sqldb")
             [
               ("name", str (Printf.sprintf "appdb%d" i));
               ("server_id", ref_to server "id");
               ("sku", str (Prng.choose_list ctx.rng [ "Basic"; "S0"; "S1"; "GP_Gen5_2" ]));
             ]))
      (List.init dbs Fun.id)
  end;
  if Prng.chance ctx.rng 0.5 then begin
    let family, sku =
      if Prng.chance ctx.rng 0.25 then ("P", "Premium")
      else ("C", Prng.choose_list ctx.rng [ "Basic"; "Standard" ])
    in
    let capacity = if String.equal family "P" then Prng.int_in ctx.rng 1 4 else Prng.int_in ctx.rng 0 6 in
    ignore
      (add ctx "REDIS" (fresh ctx "redis")
         [
           ("name", str (fresh ctx "cache"));
           ("location", str ctx.region);
           ("capacity", int capacity);
           ("family", str family);
           ("sku", str sku);
         ])
  end;
  if Prng.chance ctx.rng 0.3 then begin
    let multi = Prng.chance ctx.rng 0.4 in
    let locations =
      if multi then
        [
          Value.Block [ ("location", str ctx.region); ("failover_priority", int 0) ];
          Value.Block
            [
              ("location", str (Prng.choose_list ctx.rng Regions.all));
              ("failover_priority", int 1);
            ];
        ]
      else [ Value.Block [ ("location", str ctx.region); ("failover_priority", int 0) ] ]
    in
    let level =
      Prng.weighted ctx.rng [ (5, "Session"); (2, "Eventual"); (1, "BoundedStaleness") ]
    in
    let consistency =
      [ ("level", str level) ]
      @
      if String.equal level "BoundedStaleness" then
        [ ("max_interval_in_seconds", int 300) ]
      else []
    in
    ignore
      (add ctx "COSMOS" (fresh ctx "cosmos")
         ([
            ("name", str (fresh ctx "cosmosdb"));
            ("location", str ctx.region);
            ("offer_type", str "Standard");
            ("consistency_policy", Value.Block consistency);
            ("geo_location", Value.List locations);
          ]
         @ if multi && Prng.chance ctx.rng 0.5 then
             [ ("automatic_failover_enabled", bool true) ]
           else []))
  end;
  if Prng.chance ctx.rng 0.4 then
    ignore
      (add ctx "KV" (fresh ctx "kv")
         [
           ("name", str (fresh ctx "vault"));
           ("location", str ctx.region);
           ("sku", str (if Prng.chance ctx.rng 0.8 then "standard" else "premium"));
           ("tenant_id", str "00000000-0000-0000-0000-000000000000");
         ]);
  if Prng.chance ctx.rng 0.3 then begin
    let vpc = make_vpc ctx 2 in
    let subnet =
      add ctx "SUBNET" (fresh ctx "subnet")
        [
          ("name", str "mysql-snet");
          ("vpc_name", ref_to vpc "name");
          ("cidr", str (subnet_cidr vpc 0));
          ( "delegation",
            Value.Block
              [
                ("name", str "mysqldeleg");
                ("service", str "Microsoft.DBforMySQL/flexibleServers");
              ] );
        ]
    in
    ignore
      (add ctx "MYSQL" (fresh ctx "mysql")
         [
           ("name", str (fresh ctx "mysqlsrv"));
           ("location", str ctx.region);
           ("sku", str "B_Standard_B1s");
           ("version", str "8.0.21");
           ("administrator_login", str "mysqladmin");
           ("administrator_password", str (Printf.sprintf "P@ssw0rd-%06d!" (Prng.int ctx.rng 999999)));
           ("delegated_subnet_id", ref_to subnet "id");
         ])
  end

let vm_fleet ctx =
  let vpc = make_vpc ctx 0 in
  let subnet = make_subnet ctx vpc 0 in
  let avset =
    if Prng.chance ctx.rng 0.5 then
      Some
        (add ctx "AVSET" (fresh ctx "avset")
           [
             ("name", str (fresh ctx "avail"));
             ("location", str ctx.region);
             ("managed", bool true);
           ])
    else None
  in
  let vm_count = Prng.int_in ctx.rng 2 4 in
  let vms =
    List.init vm_count (fun _ ->
        let nic = make_nic ctx subnet in
        make_vm ?avset ctx [ nic ])
  in
  (* Attach data disks, respecting sku limits. *)
  List.iteri
    (fun vi vm ->
      let sku = match Resource.get vm "sku" with Value.Str s -> s | _ -> "" in
      let max_disks =
        match Skus.find_vm sku with Some s -> s.Skus.max_data_disks | None -> 2
      in
      let premium_ok =
        match Skus.find_vm sku with Some s -> s.Skus.premium_io | None -> false
      in
      let disk_count = min (Prng.int_in ctx.rng 0 2) max_disks in
      List.iter
        (fun di ->
          let storage =
            if premium_ok && Prng.chance ctx.rng 0.4 then "Premium_LRS"
            else "StandardSSD_LRS"
          in
          let disk =
            add ctx "DISK" (fresh ctx "disk")
              [
                ("name", str (Printf.sprintf "data-%d-%d" vi di));
                ("location", str ctx.region);
                ("storage_type", str storage);
                ("create_option", str "Empty");
                ("size_gb", int (Prng.choose_list ctx.rng [ 64; 128; 256 ]));
              ]
          in
          ignore
            (add ctx "ATTACH" (fresh ctx "attach")
               [
                 ("vm_id", ref_to vm "id");
                 ("disk_id", ref_to disk "id");
                 ("lun", int di);
                 ("caching", str "ReadOnly");
               ]))
        (List.init disk_count Fun.id))
    vms

let secure_net ctx =
  let vpc = make_vpc ctx 0 in
  let subnets = List.init (Prng.int_in ctx.rng 2 3) (fun i -> make_subnet ctx vpc i) in
  let work_subnet = List.nth subnets 0 in
  let sg = make_sg ctx in
  ignore
    (add ctx "SGASSOC" (fresh ctx "sga")
       [ ("subnet_id", ref_to work_subnet "id"); ("sg_id", ref_to sg "id") ]);
  let rt =
    add ctx "RT" (fresh ctx "rt")
      [ ("name", str (fresh ctx "routes")); ("location", str ctx.region) ]
  in
  ignore
    (add ctx "ROUTE" (fresh ctx "route")
       [
         ("name", str "default-out");
         ("rt_name", ref_to rt "name");
         ("address_prefix", str "0.0.0.0/0");
         ("next_hop_type", str "Internet");
       ]);
  if Prng.chance ctx.rng 0.4 then
    ignore
      (add ctx "ROUTE" (fresh ctx "route")
         [
           ("name", str "via-nva");
           ("rt_name", ref_to rt "name");
           ("address_prefix", str "10.100.0.0/16");
           ("next_hop_type", str "VirtualAppliance");
           ("next_hop_ip", str "10.0.0.4");
         ]);
  ignore
    (add ctx "RTASSOC" (fresh ctx "rta")
       [ ("subnet_id", ref_to work_subnet "id"); ("rt_id", ref_to rt "id") ]);
  if Prng.chance ctx.rng 0.4 then begin
    let fw_subnet = make_subnet ~name:"AzureFirewallSubnet" ctx vpc 5 in
    let fw_ip = make_ip ~standard:true ctx in
    ignore
      (add ctx "FW" (fresh ctx "fw")
         [
           ("name", str (fresh ctx "firewall"));
           ("location", str ctx.region);
           ("sku_name", str "AZFW_VNet");
           ("sku_tier", str "Standard");
           ( "ip_config",
             Value.Block
               [
                 ("name", str "fwip");
                 ("subnet_id", ref_to fw_subnet "id");
                 ("public_ip_id", ref_to fw_ip "id");
               ] );
         ])
  end;
  if Prng.chance ctx.rng 0.3 then begin
    let bastion_subnet = make_subnet ~name:"AzureBastionSubnet" ctx vpc 6 in
    let bastion_ip = make_ip ~standard:true ctx in
    ignore
      (add ctx "BASTION" (fresh ctx "bastion")
         [
           ("name", str (fresh ctx "bast"));
           ("location", str ctx.region);
           ( "ip_config",
             Value.Block
               [
                 ("name", str "bastip");
                 ("subnet_id", ref_to bastion_subnet "id");
                 ("public_ip_id", ref_to bastion_ip "id");
               ] );
         ])
  end;
  if Prng.chance ctx.rng 0.3 then begin
    let nat =
      add ctx "NAT" (fresh ctx "nat")
        [ ("name", str (fresh ctx "natgw")); ("location", str ctx.region) ]
    in
    let nat_ip = make_ip ~standard:true ctx in
    ignore
      (add ctx "NATIPASSOC" (fresh ctx "natip")
         [ ("nat_id", ref_to nat "id"); ("ip_id", ref_to nat_ip "id") ]);
    ignore
      (add ctx "NATASSOC" (fresh ctx "nata")
         [
           ("subnet_id", ref_to (List.nth subnets (List.length subnets - 1)) "id");
           ("nat_id", ref_to nat "id");
         ])
  end

let dns_setup ctx =
  let zone =
    add ctx "DNS" (fresh ctx "dns")
      [ ("name", str (fresh ctx "example-com")) ]
  in
  let recs = Prng.int_in ctx.rng 1 4 in
  List.iter
    (fun i ->
      ignore
        (add ctx "DNSREC" (fresh ctx "rec")
           [
             ("name", str (Printf.sprintf "www%d" i));
             ("zone_name", ref_to zone "name");
             ("type", str "A");
             ("ttl", int 300);
             ("records", Value.List [ str "203.0.113.10" ]);
           ]))
    (List.init recs Fun.id);
  if Prng.chance ctx.rng 0.5 then begin
    let vpc = make_vpc ctx 0 in
    let priv =
      add ctx "PRIVDNS" (fresh ctx "privdns")
        [ ("name", str (fresh ctx "internal-zone")) ]
    in
    ignore
      (add ctx "PRIVDNSLINK" (fresh ctx "link")
         [
           ("name", str (fresh ctx "dns-link"));
           ("zone_name", ref_to priv "name");
           ("vpc_id", ref_to vpc "id");
         ])
  end

let messaging ctx =
  let sku = Prng.weighted ctx.rng [ (4, "Standard"); (3, "Basic"); (1, "Premium") ] in
  let ns =
    add ctx "SERVICEBUS_NS" (fresh ctx "sbns")
      ([
         ("name", str (fresh ctx "bus-ns"));
         ("location", str ctx.region);
         ("sku", str sku);
       ]
      @ if String.equal sku "Premium" then [ ("capacity", int 1) ] else [])
  in
  let queues = Prng.int_in ctx.rng 1 3 in
  List.iter
    (fun i ->
      let session = String.equal sku "Standard" && Prng.chance ctx.rng 0.3 in
      ignore
        (add ctx "SBQUEUE" (fresh ctx "queue")
           [
             ("name", str (Printf.sprintf "jobs%d" i));
             ("namespace_id", ref_to ns "id");
             ("requires_session", bool session);
           ]))
    (List.init queues Fun.id)

let eventing ctx =
  let sku = Prng.weighted ctx.rng [ (3, "Standard"); (2, "Basic") ] in
  let inflate = String.equal sku "Standard" && Prng.chance ctx.rng 0.4 in
  let ns =
    add ctx "EVENTHUB_NS" (fresh ctx "ehns")
      ([
         ("name", str (fresh ctx "stream-ns"));
         ("location", str ctx.region);
         ("sku", str sku);
       ]
      @
      if inflate then
        [ ("auto_inflate_enabled", bool true); ("maximum_throughput_units", int 10) ]
      else [])
  in
  List.iter
    (fun i ->
      let retention = if String.equal sku "Basic" then 1 else Prng.int_in ctx.rng 1 7 in
      ignore
        (add ctx "EVENTHUB" (fresh ctx "eh")
           [
             ("name", str (Printf.sprintf "stream%d" i));
             ("namespace_name", ref_to ns "name");
             ("partition_count", int (Prng.choose_list ctx.rng [ 2; 4; 8; 16 ]));
             ("message_retention", int retention);
           ]))
    (List.init (Prng.int_in ctx.rng 1 3) Fun.id);
  if Prng.chance ctx.rng 0.4 then ignore (make_sa ctx)

let paas_app ctx =
  let plan_sku = Prng.weighted ctx.rng [ (3, "B1"); (3, "S1"); (2, "P1v2"); (2, "F1") ] in
  let plan =
    add ctx "PLAN" (fresh ctx "plan")
      [
        ("name", str (fresh ctx "appplan"));
        ("location", str ctx.region);
        ("os_type", str "Linux");
        ("sku", str plan_sku);
      ]
  in
  let always_on = not (String.equal plan_sku "F1") && Prng.chance ctx.rng 0.7 in
  ignore
    (add ctx "WEBAPP" (fresh ctx "webapp")
       [
         ("name", str (fresh ctx "site"));
         ("location", str ctx.region);
         ("plan_id", ref_to plan "id");
         ("site_config", Value.Block [ ("always_on", bool always_on) ]);
         ("https_only", bool true);
       ]);
  if Prng.chance ctx.rng 0.4 then ignore (make_sa ctx);
  if Prng.chance ctx.rng 0.3 then begin
    let acr_sku = Prng.weighted ctx.rng [ (3, "Basic"); (2, "Standard"); (1, "Premium") ] in
    ignore
      (add ctx "ACR" (fresh ctx "acr")
         [
           ("name", str (fresh ctx "registry"));
           ("location", str ctx.region);
           ("sku", str acr_sku);
         ])
  end

let scenarios =
  [
    (8, ("web_tier", web_tier));
    (3, ("vnet2vnet", vnet2vnet));
    (3, ("eventing", eventing));
    (4, ("hub_spoke", hub_spoke));
    (4, ("vpn_site", vpn_site));
    (5, ("aks_cluster", aks_cluster));
    (6, ("storage_pipeline", storage_pipeline));
    (4, ("appgw_front", appgw_front));
    (5, ("data_tier", data_tier));
    (6, ("vm_fleet", vm_fleet));
    (5, ("secure_net", secure_net));
    (3, ("dns_setup", dns_setup));
    (3, ("messaging", messaging));
    (5, ("paas_app", paas_app));
  ]

(* ------------- violation injection ----------------------------------- *)

(* Each injector returns the mutated program when applicable. *)
let injectors :
    (string * (Prng.t -> Program.t -> Program.t option)) list =
  let pick_of_type rng prog rtype =
    match Program.by_type prog rtype with
    | [] -> None
    | rs -> Some (Prng.choose_list rng rs)
  in
  let other_region rng current =
    let candidates = List.filter (fun r -> not (String.equal r current)) Regions.all in
    Prng.choose_list rng candidates
  in
  [
    ( "nic-wrong-region",
      fun rng prog ->
        Option.map
          (fun nic ->
            let current =
              match Resource.get nic "location" with Value.Str s -> s | _ -> "eastus"
            in
            Program.update prog (Resource.id nic) (fun r ->
                Resource.set r "location" (str (other_region rng current))))
          (pick_of_type rng prog "NIC") );
    ( "subnet-overlap",
      fun _rng prog ->
        match Program.by_type prog "SUBNET" with
        | s1 :: s2 :: _
          when Value.equal (Resource.get s1 "vpc_name") (Resource.get s2 "vpc_name") ->
            Some
              (Program.update prog (Resource.id s2) (fun r ->
                   Resource.set r "cidr" (Resource.get s1 "cidr")))
        | _ -> None );
    ( "subnet-out-of-range",
      fun _rng prog ->
        Option.map
          (fun subnet ->
            Program.update prog (Resource.id subnet) (fun r ->
                Resource.set r "cidr" (str "192.168.77.0/24")))
          (match Program.by_type prog "SUBNET" with [] -> None | s :: _ -> Some s) );
    ( "spot-no-evict",
      fun rng prog ->
        Option.map
          (fun vm ->
            Program.update prog (Resource.id vm) (fun r ->
                Resource.remove_attr (Resource.set r "priority" (str "Spot")) "evict_policy"))
          (pick_of_type rng prog "VM") );
    ( "sa-premium-gzrs",
      fun rng prog ->
        Option.map
          (fun sa ->
            Program.update prog (Resource.id sa) (fun r ->
                Resource.set (Resource.set r "tier" (str "Premium")) "replica" (str "GZRS")))
          (pick_of_type rng prog "SA") );
    ( "ip-standard-dynamic",
      fun rng prog ->
        Option.map
          (fun ip ->
            Program.update prog (Resource.id ip) (fun r ->
                Resource.set (Resource.set r "sku" (str "Standard")) "allocation"
                  (str "Dynamic")))
          (pick_of_type rng prog "IP") );
    ( "gw-subnet-name",
      fun rng prog ->
        Option.map
          (fun subnet ->
            Program.update prog (Resource.id subnet) (fun r ->
                Resource.set r "name" (str "gateway-subnet")))
          (match
             List.filter
               (fun s -> Resource.get s "name" = Value.Str "GatewaySubnet")
               (Program.by_type prog "SUBNET")
           with
          | [] -> None
          | subnets -> Some (Prng.choose_list rng subnets)) );
    ( "gw-basic-active-active",
      fun rng prog ->
        Option.map
          (fun gw ->
            Program.update prog (Resource.id gw) (fun r ->
                Resource.set (Resource.set r "sku" (str "Basic")) "active_active"
                  (bool true)))
          (pick_of_type rng prog "GW") );
    ( "appgw-basic-ip",
      fun _rng prog ->
        match (Program.by_type prog "APPGW", Program.by_type prog "IP") with
        | appgw :: _, _ -> (
            match Resource.get appgw "frontend_ip_config.public_ip_id" with
            | Value.Ref reference ->
                Some
                  (Program.update prog
                     { Resource.rtype = reference.Value.rtype; rname = reference.Value.rname }
                     (fun r ->
                       Resource.set (Resource.set r "sku" (str "Basic")) "allocation"
                         (str "Dynamic")))
            | _ -> None)
        | _ -> None );
    ( "sg-duplicate-priority",
      fun _rng prog ->
        match Program.by_type prog "SG" with
        | sg :: _ -> (
            match Resource.attr sg "rule" with
            | Some (Value.List (Value.Block f1 :: Value.Block f2 :: rest)) ->
                let priority = List.assoc_opt "priority" f1 in
                let dir = List.assoc_opt "dir" f1 in
                let f2 =
                  List.map
                    (fun (k, v) ->
                      match (k, priority, dir) with
                      | "priority", Some p, _ -> (k, p)
                      | "dir", _, Some d -> (k, d)
                      | _ -> (k, v))
                    f2
                in
                Some
                  (Program.update prog (Resource.id sg) (fun r ->
                       Resource.set r "rule"
                         (Value.List (Value.Block f1 :: Value.Block f2 :: rest))))
            | _ -> None)
        | [] -> None );
    ( "double-rt-assoc",
      fun _rng prog ->
        match (Program.by_type prog "RTASSOC", Program.by_type prog "RT") with
        | assoc :: _, rt :: _ ->
            let extra_rt =
              Resource.make "RT" "rt_extra"
                [
                  ("name", str "rt-extra");
                  ("location", Resource.get rt "location");
                ]
            in
            let extra =
              Resource.make "RTASSOC" "rta_extra"
                [
                  ("subnet_id", Resource.get assoc "subnet_id");
                  ("rt_id", ref_to extra_rt "id");
                ]
            in
            Some (Program.add (Program.add prog extra_rt) extra)
        | _ -> None );
    ( "vm-osdisk-name-clash",
      fun _rng prog ->
        match (Program.by_type prog "ATTACH", Program.by_type prog "VM") with
        | attach :: _, _ -> (
            match
              (Resource.get attach "vm_id", Resource.get attach "disk_id")
            with
            | Value.Ref vm_ref, Value.Ref disk_ref -> (
                let disk_id =
                  { Resource.rtype = disk_ref.Value.rtype; rname = disk_ref.Value.rname }
                in
                match Program.find prog disk_id with
                | Some disk ->
                    let disk_name = Resource.get disk "name" in
                    Some
                      (Program.update prog
                         { Resource.rtype = vm_ref.Value.rtype; rname = vm_ref.Value.rname }
                         (fun r -> Resource.set r "os_disk.name" disk_name))
                | None -> None)
            | _ -> None)
        | _ -> None );
    ( "redis-family-mismatch",
      fun rng prog ->
        Option.map
          (fun redis ->
            Program.update prog (Resource.id redis) (fun r ->
                Resource.set (Resource.set r "family" (str "P")) "sku" (str "Standard")))
          (pick_of_type rng prog "REDIS") );
    ( "eh-basic-retention",
      fun _rng prog ->
        match (Program.by_type prog "EVENTHUB", Program.by_type prog "EVENTHUB_NS") with
        | eh :: _, ns :: _ ->
            let prog =
              Program.update prog (Resource.id ns) (fun r ->
                  Resource.set r "sku" (str "Basic"))
            in
            Some
              (Program.update prog (Resource.id eh) (fun r ->
                   Resource.set r "message_retention" (int 7)))
        | _ -> None );
    ( "acr-geo-basic",
      fun rng prog ->
        Option.map
          (fun acr ->
            Program.update prog (Resource.id acr) (fun r ->
                Resource.set
                  (Resource.set r "sku" (str "Basic"))
                  "georeplications"
                  (Value.List
                     [ Value.Block [ ("location", str (other_region rng "x")) ] ])))
          (pick_of_type rng prog "ACR") );
    ( "webapp-f1-alwayson",
      fun _rng prog ->
        match (Program.by_type prog "WEBAPP", Program.by_type prog "PLAN") with
        | webapp :: _, plan :: _ ->
            let prog =
              Program.update prog (Resource.id plan) (fun r ->
                  Resource.set r "sku" (str "F1"))
            in
            Some
              (Program.update prog (Resource.id webapp) (fun r ->
                   Resource.set r "site_config.always_on" (bool true)))
        | _ -> None );
    ( "nic-on-gateway-subnet",
      fun rng prog ->
        (* drop a NIC into a reserved gateway subnet (exclusivity) *)
        match
          List.filter
            (fun su -> Resource.get su "name" = Value.Str "GatewaySubnet")
            (Program.by_type prog "SUBNET")
        with
        | [] -> None
        | subnets ->
            let subnet = Prng.choose_list rng subnets in
            let region =
              match
                List.find_map
                  (fun r ->
                    match Resource.get r "location" with
                    | Value.Str s -> Some s
                    | _ -> None)
                  (Program.resources prog)
              with
              | Some r -> r
              | None -> "eastus"
            in
            let intruder =
              Resource.make "NIC" "intruder_nic"
                [
                  ("name", str "intruder-nic");
                  ("location", str region);
                  ( "ip_config",
                    Value.Block
                      [
                        ("name", str "cfg");
                        ("subnet_id", ref_to subnet "id");
                        ("private_ip_allocation", str "Dynamic");
                      ] );
                ]
            in
            Some (Program.add prog intruder) );
    ( "vm-overloaded-nics",
      fun rng prog ->
        (* push a VM past its sku's documented NIC limit *)
        match Program.by_type prog "VM" with
        | [] -> None
        | vms -> (
            let vm = Prng.choose_list rng vms in
            match
              ( Resource.get vm "nic_ids",
                Skus.find_vm
                  (match Resource.get vm "sku" with Value.Str s -> s | _ -> "") )
            with
            | Value.List (Value.Ref first :: _ as nics), Some sku ->
                let donor =
                  { Resource.rtype = first.Value.rtype; rname = first.Value.rname }
                in
                (match Program.find prog donor with
                | None -> None
                | Some nic_template ->
                    let need = sku.Skus.max_nics + 1 - List.length nics in
                    if need <= 0 || need > 6 then None
                    else begin
                      let prog = ref prog in
                      let extra_refs = ref [] in
                      for i = 1 to need do
                        let rname = Printf.sprintf "%s_x%d" donor.Resource.rname i in
                        let nic =
                          Resource.set
                            { nic_template with Resource.rname = rname }
                            "name"
                            (Value.Str (Printf.sprintf "nic-extra-%d" i))
                        in
                        prog := Program.add !prog nic;
                        extra_refs :=
                          Value.Ref { first with Value.rname = rname } :: !extra_refs
                      done;
                      Some
                        (Program.update !prog (Resource.id vm) (fun r ->
                             Resource.set r "nic_ids" (Value.List (nics @ !extra_refs))))
                    end)
            | _ -> None) );
    ( "vm-missing-password",
      fun rng prog ->
        match
          List.filter
            (fun vm -> Resource.attr vm "admin_password" <> None)
            (Program.by_type prog "VM")
        with
        | [] -> None
        | vms ->
            let vm = Prng.choose_list rng vms in
            Some
              (Program.update prog (Resource.id vm) (fun r ->
                   Resource.set
                     (Resource.remove_attr r "admin_password")
                     "password_authentication_enabled" (bool true))) );
    ( "route-appliance-no-ip",
      fun rng prog ->
        Option.map
          (fun route ->
            Program.update prog (Resource.id route) (fun r ->
                Resource.remove_attr
                  (Resource.set r "next_hop_type" (str "VirtualAppliance"))
                  "next_hop_ip"))
          (pick_of_type rng prog "ROUTE") );
    ( "kv-retention-short",
      fun rng prog ->
        Option.map
          (fun kv ->
            Program.update prog (Resource.id kv) (fun r ->
                Resource.set r "soft_delete_retention_days" (int 3)))
          (pick_of_type rng prog "KV") );
    ( "tunnel-missing-key",
      fun rng prog ->
        match
          List.filter
            (fun t -> Resource.get t "type" = Value.Str "IPsec")
            (Program.by_type prog "TUNNEL")
        with
        | [] -> None
        | tunnels ->
            let tunnel = Prng.choose_list rng tunnels in
            Some
              (Program.update prog (Resource.id tunnel) (fun r ->
                   Resource.remove_attr r "shared_key")) );
  ]

(* Decorate a project with "unattended" resources — types outside
   Zodiac's catalogue (diagnostic settings, locks, role assignments)
   that real repositories carry. They reference attended resources (and
   occasionally are referenced by them), exercising the MDC pruning of
   Table 6. *)
let add_unattended ctx =
  (* diagnostic settings / locks / role assignments target coarse
     resources, never subnets (a metadata reference to a reserved
     subnet is not an occupancy) *)
  let attended =
    List.filter
      (fun r -> not (String.equal r.Resource.rtype "SUBNET"))
      ctx.resources
  in
  let pick () = Prng.choose_list ctx.rng attended in
  if attended <> [] then begin
    if Prng.chance ctx.rng 0.35 then begin
      let target = pick () in
      ignore
        (add ctx "MONITOR_DIAG" (fresh ctx "diag")
           [
             ("name", str (fresh ctx "diagnostics"));
             ("target_resource_id", ref_to target "id");
             ("log_category", str "AllLogs");
           ])
    end;
    if Prng.chance ctx.rng 0.2 then begin
      let target = pick () in
      ignore
        (add ctx "LOCK" (fresh ctx "lock")
           [
             ("name", str (fresh ctx "cantdelete"));
             ("scope_id", ref_to target "id");
             ("lock_level", str "CanNotDelete");
           ])
    end;
    if Prng.chance ctx.rng 0.25 then begin
      let target = pick () in
      ignore
        (add ctx "RBAC" (fresh ctx "role")
           [
             ("scope_id", ref_to target "id");
             ("role_definition_name", str "Contributor");
             ("principal_id", str (Printf.sprintf "%08x" (Prng.int ctx.rng 0x3FFFFFFF)));
           ])
    end;
    (* Occasionally an attended VM references an unattended maintenance
       configuration, making the unattended resource an ancestor that
       MDC must keep. *)
    if Prng.chance ctx.rng 0.15 then begin
      match List.filter (fun r -> String.equal r.Resource.rtype "VM") attended with
      | [] -> ()
      | vms ->
          let maint =
            add ctx "MAINT_CONF" (fresh ctx "maint")
              [
                ("name", str (fresh ctx "maintenance"));
                ("location", str ctx.region);
                ("scope", str "Host");
              ]
          in
          let vm = Prng.choose_list ctx.rng vms in
          ctx.resources <-
            List.map
              (fun r ->
                if Resource.equal_id (Resource.id r) (Resource.id vm) then
                  Resource.set r "maintenance_configuration_id" (ref_to maint "id")
                else r)
              ctx.resources
    end
  end
