(** The Azure hidden ground-truth rule set, expressed over the shared
    provider rule type. The exact list order is load-bearing: the
    deployment simulator reports the first violating rule in phase
    order, so reordering changes artifacts. *)

module Check = Zodiac_spec.Check
module Provider = Zodiac_provider.Provider

type phase = Provider.phase = Plugin | Pre_sync | Create | Polling | Post_sync

type t = Provider.rule = {
  rule_id : string;
  check : Check.t;
  phase : phase;
  message : string;
}

let rule = Provider.rule

(* ---------------- hand-authored rules ------------------------------ *)

let authored () =
  [
    (* Location consistency across connected resources. *)
    rule "LOC-NIC-VPC" Create "NIC and its virtual network must be in the same region"
      "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-VM-NIC" Create "VM and its NIC must be in the same region"
      "let r1:VM, r2:NIC in conn(r1.nic_ids -> r2.id) => r1.location == r2.location";
    rule "LOC-VM-VPC" Create "VM and its virtual network must be in the same region"
      "let r1:VM, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-GW-IP" Create "Gateway and its public IP must be in the same region"
      "let r1:GW, r2:IP in conn(r1.ip_config.public_ip_id -> r2.id) => r1.location == r2.location";
    rule "LOC-GW-VPC" Create "Gateway and its virtual network must be in the same region"
      "let r1:GW, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-FW-IP" Create "Firewall and its public IP must be in the same region"
      "let r1:FW, r2:IP in conn(r1.ip_config.public_ip_id -> r2.id) => r1.location == r2.location";
    rule "LOC-FW-VPC" Create "Firewall and its virtual network must be in the same region"
      "let r1:FW, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-LB-IP" Create "Load balancer and its public IP must be in the same region"
      "let r1:LB, r2:IP in conn(r1.frontend_ip_config.public_ip_id -> r2.id) => r1.location == r2.location";
    rule "LOC-APPGW-IP" Create
      "Application gateway and its public IP must be in the same region"
      "let r1:APPGW, r2:IP in conn(r1.frontend_ip_config.public_ip_id -> r2.id) => r1.location == r2.location";
    rule "LOC-APPGW-VPC" Create
      "Application gateway and its virtual network must be in the same region"
      "let r1:APPGW, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-BASTION-IP" Create "Bastion and its public IP must be in the same region"
      "let r1:BASTION, r2:IP in conn(r1.ip_config.public_ip_id -> r2.id) => r1.location == r2.location";
    rule "LOC-BASTION-VPC" Create
      "Bastion and its virtual network must be in the same region"
      "let r1:BASTION, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-ATTACH" Create "VM and attached disk must be in the same region"
      "let r1:VM, r2:DISK, r3:ATTACH in coconn(r3.vm_id -> r1.id, r3.disk_id -> r2.id) => r1.location == r2.location";
    rule "LOC-TUNNEL-GW" Polling "VPN connection must be in its gateway's region"
      "let r1:TUNNEL, r2:GW in conn(r1.gw_id -> r2.id) => r1.location == r2.location";
    rule "LOC-WEBAPP-PLAN" Create "Web app and its plan must be in the same region"
      "let r1:WEBAPP, r2:PLAN in conn(r1.plan_id -> r2.id) => r1.location == r2.location";
    rule "LOC-FUNC-PLAN" Create "Function app and its plan must be in the same region"
      "let r1:FUNC, r2:PLAN in conn(r1.plan_id -> r2.id) => r1.location == r2.location";
    rule "LOC-AKS-VPC" Create "AKS cluster must be in its virtual network's region"
      "let r1:AKS, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-REDIS-VPC" Create "Redis cache must be in its virtual network's region"
      "let r1:REDIS, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-MYSQL-VPC" Create "MySQL server must be in its virtual network's region"
      "let r1:MYSQL, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-PRIVEP-VPC" Create
      "Private endpoint must be in its virtual network's region"
      "let r1:PRIVEP, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-VMSS-VPC" Create "VM scale set must be in its virtual network's region"
      "let r1:VMSS, r2:VPC in path(r1 -> r2) => r1.location == r2.location";
    rule "LOC-AVSET-VM" Create "VM and its availability set must be in the same region"
      "let r1:VM, r2:AVSET in conn(r1.availability_set_id -> r2.id) => r1.location == r2.location";
    rule "LOC-SNAPSHOT-DISK" Create "Snapshot must be in its source disk's region"
      "let r1:SNAPSHOT, r2:DISK in conn(r1.source_disk_id -> r2.id) => r1.location == r2.location";
    rule "LOC-NAT-VPC" Create "NAT gateway must be in its virtual network's region"
      "let a:NATASSOC, n:NAT, s:SUBNET, v:VPC in coconn(a.nat_id -> n.id, a.subnet_id -> s.id) && conn(s.vpc_name -> v.name) => n.location == v.location";
    (* Reserved subnets and subnet exclusivity. *)
    rule "GW-SUBNET-NAME" Create "VPN gateway requires a subnet named GatewaySubnet"
      "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => r2.name == 'GatewaySubnet'";
    rule "GW-SUBNET-EXCL" Create "No other resource can share the gateway subnet"
      "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !GW) == 0";
    rule "GW-PER-SUBNET" Create "A subnet can host at most one VPN gateway"
      "let r1:GW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, GW) == 1";
    rule "GWSUBNET-ONLY-GW" Create "GatewaySubnet may only host VPN gateways"
      "let r:SUBNET in r.name == 'GatewaySubnet' => outdegree(r, !GW) == 0";
    rule "FW-SUBNET-NAME" Create "Firewall requires a subnet named AzureFirewallSubnet"
      "let r1:FW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => r2.name == 'AzureFirewallSubnet'";
    rule "FW-SUBNET-EXCL" Polling "No other resource can share the firewall subnet"
      "let r1:FW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !FW) == 0";
    rule "FW-SUBNET-DELEG" Polling "Firewall subnet cannot use delegation"
      "let r1:FW, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => r2.delegation == null";
    rule "BASTION-SUBNET-NAME" Create
      "Bastion requires a subnet named AzureBastionSubnet"
      "let r1:BASTION, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => r2.name == 'AzureBastionSubnet'";
    rule "BASTION-SUBNET-EXCL" Create "No other resource can share the bastion subnet"
      "let r1:BASTION, r2:SUBNET in conn(r1.ip_config.subnet_id -> r2.id) => outdegree(r2, !BASTION) == 0";
    rule "APPGW-SUBNET-EXCL" Create
      "The subnet of an application gateway is exclusive"
      "let r1:APPGW, r2:SUBNET in conn(r1.gateway_ip_config.subnet_id -> r2.id) => outdegree(r2, !APPGW) == 0";
    (* CIDR discipline. *)
    rule "SUBNET-IN-VPC" Create
      "Subnet range must be contained in the virtual network address space"
      "let r1:SUBNET, r2:VPC in conn(r1.vpc_name -> r2.name) => contain(r2.address_space, r1.cidr)";
    rule "SUBNET-OVERLAP" Create
      "Subnets of the same virtual network cannot have overlapping ranges"
      "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.vpc_name -> r3.name, r2.vpc_name -> r3.name) => !overlap(r1.cidr, r2.cidr)";
    rule "PEERING-OVERLAP" Create
      "Peered virtual networks cannot have overlapping address spaces"
      "let p:PEERING, v1:VPC, v2:VPC in coconn(p.vpc_name -> v1.name, p.remote_vpc_id -> v2.id) => !overlap(v1.address_space, v2.address_space)";
    rule "TUNNEL-VPC-OVERLAP" Polling
      "Two tunneled virtual networks must have exclusive IP ranges"
      "let t:TUNNEL, v1:VPC, v2:VPC in copath(t -> v1, t -> v2) => !overlap(v1.address_space, v2.address_space)";
    rule "LNG-VPC-OVERLAP" Create
      "On-premises address space cannot overlap the tunneled virtual network"
      "let t:TUNNEL, l:LNG, v:VPC in conn(t.lng_id -> l.id) && path(t -> v) => !overlap(l.address_space, v.address_space)";
    rule "AKS-SERVICE-CIDR" Create
      "AKS service CIDR cannot overlap the node subnet range"
      "let a:AKS, s:SUBNET in conn(a.default_node_pool.subnet_id -> s.id) => !overlap(a.network_profile.service_cidr, s.cidr)";
    (* Public IP rules. *)
    rule "IP-STANDARD-STATIC" Plugin "Standard sku public IP must use static allocation"
      "let r:IP in r.sku == 'Standard' => r.allocation == 'Static'";
    rule "IP-ZONES-STANDARD" Create "Zonal public IPs require the Standard sku"
      "let r:IP in r.zones != null => r.sku == 'Standard'";
    rule "IP-GLOBAL-STANDARD" Create "Global tier public IPs require the Standard sku"
      "let r:IP in r.sku_tier == 'Global' => r.sku == 'Standard'";
    rule "APPGW-IP-STANDARD" Create
      "IP associated with an application gateway must use the Standard sku"
      "let r1:APPGW, r2:IP in conn(r1.frontend_ip_config.public_ip_id -> r2.id) => r2.sku == 'Standard'";
    rule "NAT-IP-STANDARD" Create "IP associated with NAT must use the Standard sku"
      "let a:NATIPASSOC, r:IP in conn(a.ip_id -> r.id) => r.sku == 'Standard'";
    rule "LB-STANDARD-IP" Create "Standard load balancer requires Standard sku IPs"
      "let l:LB, r:IP in conn(l.frontend_ip_config.public_ip_id -> r.id) && l.sku == 'Standard' => r.sku == 'Standard'";
    rule "GW-IP-STANDARD" Create "VPN gateway requires a Standard sku public IP"
      "let g:GW, r:IP in conn(g.ip_config.public_ip_id -> r.id) => r.sku == 'Standard'";
    rule "FW-IP-STANDARD" Create "Firewall requires a Standard sku public IP"
      "let f:FW, r:IP in conn(f.ip_config.public_ip_id -> r.id) => r.sku == 'Standard'";
    rule "BASTION-IP-STANDARD" Create "Bastion requires a Standard sku public IP"
      "let b:BASTION, r:IP in conn(b.ip_config.public_ip_id -> r.id) => r.sku == 'Standard'";
    (* Virtual machines, disks, attachments. *)
    rule "VM-SPOT-EVICT" Plugin "Spot VMs must configure an eviction policy"
      "let r:VM in r.priority == 'Spot' => r.evict_policy != null";
    rule "VM-EVICT-SPOT" Plugin "Eviction policy is only valid for Spot VMs"
      "let r:VM in r.evict_policy != null => r.priority == 'Spot'";
    rule "VM-MAXBID-SPOT" Plugin "max_bid_price is only valid for Spot VMs"
      "let r:VM in r.max_bid_price != null => r.priority == 'Spot'";
    rule "VM-IMAGE-REQUIRED" Create
      "VM without a source image must use the Attach create option"
      "let r:VM in r.source_image_ref == null && r.source_image_id == null => r.create == 'Attach'";
    rule "VM-ZONE-AVSET" Plugin "Zonal VMs cannot join an availability set"
      "let r:VM in r.zone != null => r.availability_set_id == null";
    rule "VM-PASSWORD" Create
      "Password authentication requires an admin password"
      "let r:VM in r.password_authentication_enabled == true => r.admin_password != null";
    rule "NIC-ONE-VM" Create "A NIC can only be attached to one VM"
      "let r1:VM, r2:NIC in conn(r1.nic_ids -> r2.id) => outdegree(r2, VM) == 1";
    rule "VM-OSDISK-DISK-NAME" Pre_sync
      "VM os_disk and attached data disk must have different names"
      "let r1:VM, r2:DISK, r3:ATTACH in coconn(r3.vm_id -> r1.id, r3.disk_id -> r2.id) => r1.os_disk.name != r2.name";
    rule "ATTACH-LUN-DISTINCT" Create
      "Disk attachments on the same VM must use distinct LUNs"
      "let a1:ATTACH, a2:ATTACH, v:VM in coconn(a1.vm_id -> v.id, a2.vm_id -> v.id) => a1.lun != a2.lun";
    rule "ATTACH-ONE-VM" Create "A managed disk can be attached to at most one VM"
      "let a:ATTACH, d:DISK in conn(a.disk_id -> d.id) => outdegree(d, ATTACH) == 1";
    rule "ATTACH-ULTRA-CACHING" Create "UltraSSD disks only support caching None"
      "let a:ATTACH, d:DISK in conn(a.disk_id -> d.id) && d.storage_type == 'UltraSSD_LRS' => a.caching == 'None'";
    rule "DISK-ULTRA-ZONE" Create "UltraSSD disks must be zonal"
      "let d:DISK in d.storage_type == 'UltraSSD_LRS' => d.zone != null";
    rule "DISK-COPY-SOURCE" Plugin "Copy disks require a source resource"
      "let d:DISK in d.create_option == 'Copy' => d.source_id != null";
    rule "DISK-SOURCE-COPY" Plugin "A disk source is only valid with the Copy option"
      "let d:DISK in d.source_id != null => d.create_option == 'Copy'";
    rule "DISK-EMPTY-SIZE" Plugin "Empty disks must declare a size"
      "let d:DISK in d.create_option == 'Empty' => d.size_gb != null";
    rule "DISK-FROMIMAGE-IMAGE" Plugin "FromImage disks require an image reference"
      "let d:DISK in d.create_option == 'FromImage' => d.image_id != null";
    (* Virtual network gateways and tunnels. *)
    rule "GW-POLICY-BASIC" Create "Policy-based VPN requires the Basic gateway sku"
      "let g:GW in g.vpn_type == 'PolicyBased' => g.sku == 'Basic'";
    rule "GW-BASIC-BGP" Create "Basic sku gateways do not support BGP"
      "let g:GW in g.sku == 'Basic' => g.enable_bgp == false";
    rule "GW-GEN2-SKU" Create "Generation2 is not available for the Basic sku"
      "let g:GW in g.generation == 'Generation2' => g.sku != 'Basic'";
    rule "GW-ER-SKU-1" Create "ErGw skus require an ExpressRoute type gateway"
      "let g:GW in g.sku == 'ErGw1AZ' => g.type == 'ExpressRoute'";
    rule "GW-ER-SKU-2" Create "ErGw skus require an ExpressRoute type gateway"
      "let g:GW in g.sku == 'ErGw2AZ' => g.type == 'ExpressRoute'";
    rule "TUNNEL-V2V-PEER" Plugin "Vnet2Vnet connections require a peer gateway"
      "let t:TUNNEL in t.type == 'Vnet2Vnet' => t.peer_gw_id != null";
    rule "TUNNEL-IPSEC-LNG" Plugin "IPsec connections require a local network gateway"
      "let t:TUNNEL in t.type == 'IPsec' => t.lng_id != null";
    rule "TUNNEL-IPSEC-KEY" Create "IPsec connections require a shared key"
      "let t:TUNNEL in t.type == 'IPsec' => t.shared_key != null";
    rule "TUNNEL-V2V-NO-HA" Polling
      "Vnet2Vnet tunnels cannot terminate on active-active gateways"
      "let t:TUNNEL, g:GW in conn(t.gw_id -> g.id) && t.type == 'Vnet2Vnet' => g.active_active == false";
    (* Security groups. *)
    rule "SG-PRIORITY-DISTINCT" Create
      "Same-direction security rules must have distinct priorities"
      "let r:SG in r.rule[i].dir == r.rule[j].dir => r.rule[i].priority != r.rule[j].priority";
    rule "SG-NAME-DISTINCT" Create "Security rule names must be unique"
      "let r:SG in r.rule[i].name != null && r.rule[j].name != null => r.rule[i].name != r.rule[j].name";
    rule "SG-PRIORITY-MIN" Plugin "Security rule priority must be at least 100"
      "let r:SG in r.rule[i].name != null => r.rule[i].priority >= 100";
    rule "SG-PRIORITY-MAX" Plugin "Security rule priority must be at most 4096"
      "let r:SG in r.rule[i].name != null => r.rule[i].priority <= 4096";
    (* Route tables and associations. *)
    rule "ROUTE-APPLIANCE-IP" Plugin
      "VirtualAppliance routes require a next hop IP address"
      "let r:ROUTE in r.next_hop_type == 'VirtualAppliance' => r.next_hop_ip != null";
    rule "ROUTE-IP-APPLIANCE" Plugin
      "A next hop IP is only valid for VirtualAppliance routes"
      "let r:ROUTE in r.next_hop_ip != null => r.next_hop_type == 'VirtualAppliance'";
    rule "ROUTE-PREFIX-DISTINCT" Create
      "Routes of one table must have distinct address prefixes"
      "let r1:ROUTE, r2:ROUTE, t:RT in coconn(r1.rt_name -> t.name, r2.rt_name -> t.name) => r1.address_prefix != r2.address_prefix";
    rule "SUBNET-ONE-RT" Post_sync "A subnet can attach to at most one route table"
      "let a:RTASSOC, s:SUBNET in conn(a.subnet_id -> s.id) => outdegree(s, RTASSOC) == 1";
    rule "SUBNET-ONE-SG" Post_sync "A subnet can attach to at most one security group"
      "let a:SGASSOC, s:SUBNET in conn(a.subnet_id -> s.id) => outdegree(s, SGASSOC) == 1";
    rule "SUBNET-ONE-NAT" Post_sync "A subnet can attach to at most one NAT gateway"
      "let a:NATASSOC, s:SUBNET in conn(a.subnet_id -> s.id) => outdegree(s, NATASSOC) == 1";
    (* Peering. *)
    rule "PEERING-GW-TRANSIT" Create
      "use_remote_gateways conflicts with allow_gateway_transit"
      "let p:PEERING in p.use_remote_gateways == true => p.allow_gateway_transit == false";
    (* Container registry. *)
    rule "ACR-GEO-PREMIUM" Create "Geo-replication requires the Premium sku"
      "let r:ACR in r.georeplications != null => r.sku == 'Premium'";
    rule "ACR-GEO-DIFF-REGION" Create
      "Geo-replication regions must differ from the home region"
      "let r:ACR in r.georeplications[i].location != null => r.georeplications[i].location != r.location";
    (* Redis. *)
    rule "REDIS-P-PREMIUM" Plugin "Family P caches require the Premium sku"
      "let r:REDIS in r.family == 'P' => r.sku == 'Premium'";
    rule "REDIS-PREMIUM-P" Plugin "Premium caches require family P"
      "let r:REDIS in r.sku == 'Premium' => r.family == 'P'";
    rule "REDIS-SUBNET-PREMIUM" Create "VNet-injected caches require the Premium sku"
      "let r:REDIS in r.subnet_id != null => r.sku == 'Premium'";
    rule "REDIS-SHARD-PREMIUM" Create "Clustering requires the Premium sku"
      "let r:REDIS in r.shard_count != null => r.sku == 'Premium'";
    rule "REDIS-C-CAPACITY" Create "Family C capacity must be at most 6"
      "let r:REDIS in r.family == 'C' => r.capacity <= 6";
    rule "REDIS-P-CAPACITY-MIN" Create "Family P capacity must be at least 1"
      "let r:REDIS in r.family == 'P' => r.capacity >= 1";
    rule "REDIS-P-CAPACITY-MAX" Create "Family P capacity must be at most 5"
      "let r:REDIS in r.family == 'P' => r.capacity <= 5";
    (* Event hubs. *)
    rule "EH-BASIC-RETENTION" Create
      "Basic namespaces support at most 1 day message retention"
      "let e:EVENTHUB, n:EVENTHUB_NS in conn(e.namespace_name -> n.name) && n.sku == 'Basic' => e.message_retention <= 1";
    rule "EH-PARTITIONS-MIN" Plugin "Event hubs need at least one partition"
      "let e:EVENTHUB in e.name != null => e.partition_count >= 1";
    rule "EH-PARTITIONS-MAX" Plugin "Event hubs support at most 32 partitions"
      "let e:EVENTHUB in e.name != null => e.partition_count <= 32";
    rule "EH-CAPTURE-STANDARD" Create "Capture is unavailable on Basic namespaces"
      "let e:EVENTHUB, n:EVENTHUB_NS in conn(e.namespace_name -> n.name) && n.sku == 'Basic' => e.capture_description == null";
    rule "EHNS-INFLATE-STANDARD" Create "Auto-inflate requires the Standard sku"
      "let n:EVENTHUB_NS in n.auto_inflate_enabled == true => n.sku == 'Standard'";
    rule "EHNS-MAXTPU-INFLATE" Plugin
      "maximum_throughput_units requires auto-inflate"
      "let n:EVENTHUB_NS in n.maximum_throughput_units != null => n.auto_inflate_enabled == true";
    (* Service bus. *)
    rule "SB-SESSION-BASIC" Create "Sessions are unavailable on Basic namespaces"
      "let q:SBQUEUE, n:SERVICEBUS_NS in conn(q.namespace_id -> n.id) && n.sku == 'Basic' => q.requires_session == false";
    rule "SBNS-CAPACITY-PREMIUM" Create "Capacity is only valid for Premium namespaces"
      "let n:SERVICEBUS_NS in n.capacity != null => n.sku == 'Premium'";
    rule "SBNS-PARTITION-PREMIUM" Create
      "Premium messaging partitions require the Premium sku"
      "let n:SERVICEBUS_NS in n.premium_messaging_partitions_enabled == true => n.sku == 'Premium'";
    (* AKS. *)
    rule "AKS-AZURE-NO-PODCIDR" Create
      "The azure network plugin does not accept a pod CIDR"
      "let a:AKS in a.network_profile.network_plugin == 'azure' => a.network_profile.pod_cidr == null";
    rule "AKS-CILIUM-AZURE" Create "The cilium policy requires the azure plugin"
      "let a:AKS in a.network_profile.network_policy == 'cilium' => a.network_profile.network_plugin == 'azure'";
    rule "AKS-AUTOSCALE-MIN" Plugin "Autoscaling requires min_count"
      "let a:AKS in a.default_node_pool.auto_scaling_enabled == true => a.default_node_pool.min_count != null";
    rule "AKS-MIN-AUTOSCALE" Plugin "min_count requires autoscaling"
      "let a:AKS in a.default_node_pool.min_count != null => a.default_node_pool.auto_scaling_enabled == true";
    (* Key vault. *)
    rule "KV-RETENTION-MIN" Create "Soft delete retention must be at least 7 days"
      "let k:KV in k.name != null => k.soft_delete_retention_days >= 7";
    rule "KV-RETENTION-MAX" Create "Soft delete retention must be at most 90 days"
      "let k:KV in k.name != null => k.soft_delete_retention_days <= 90";
    (* Cosmos DB. *)
    rule "COSMOS-BOUNDED-INTERVAL" Create
      "BoundedStaleness requires a staleness interval"
      "let c:COSMOS in c.consistency_policy.level == 'BoundedStaleness' => c.consistency_policy.max_interval_in_seconds != null";
    rule "COSMOS-INTERVAL-BOUNDED" Create
      "A staleness interval requires BoundedStaleness"
      "let c:COSMOS in c.consistency_policy.max_interval_in_seconds != null => c.consistency_policy.level == 'BoundedStaleness'";
    rule "COSMOS-PRIORITY-DISTINCT" Create
      "Geo locations must have distinct failover priorities"
      "let c:COSMOS in c.geo_location[i].location != null && c.geo_location[j].location != null => c.geo_location[i].failover_priority != c.geo_location[j].failover_priority";
    rule "COSMOS-FAILOVER-MULTI" Create
      "Automatic failover requires more than one geo location"
      "let c:COSMOS in c.automatic_failover_enabled == true => !length(c.geo_location, 1)";
    (* App service. *)
    rule "WEBAPP-F1-ALWAYSON" Create "Free tier plans do not support always_on"
      "let w:WEBAPP, p:PLAN in conn(w.plan_id -> p.id) && p.sku == 'F1' => w.site_config.always_on != true";
    rule "FUNC-Y1-ALWAYSON" Create "Consumption plans do not support always_on"
      "let f:FUNC, p:PLAN in conn(f.plan_id -> p.id) && p.sku == 'Y1' => f.site_config.always_on != true";
    rule "WEBAPP-VNET-SKU" Create "VNet integration is unavailable on Free plans"
      "let w:WEBAPP, p:PLAN in conn(w.plan_id -> p.id) && p.sku == 'F1' => w.virtual_network_subnet_id == null";
    (* Application gateway behaviour beyond sku/tier consistency. *)
    rule "APPGW-V2-PRIORITY-STD" Create
      "Standard_v2 routing rules must specify a priority"
      "let a:APPGW in a.sku.name == 'Standard_v2' && a.request_routing_rule[i].name != null => a.request_routing_rule[i].priority != null";
    rule "APPGW-V2-PRIORITY-WAF" Create
      "WAF_v2 routing rules must specify a priority"
      "let a:APPGW in a.sku.name == 'WAF_v2' && a.request_routing_rule[i].name != null => a.request_routing_rule[i].priority != null";
    rule "APPGW-WAF-CONFIG-SKU" Create
      "WAF configuration requires a WAF sku"
      "let a:APPGW in a.waf_configuration != null => a.sku.tier != 'Standard' && a.sku.tier != 'Standard_v2'";
    rule "APPGW-CAPACITY-V1" Plugin "v1 gateways support at most 32 instances"
      "let a:APPGW in a.sku.tier == 'Standard' && a.sku.capacity != null => a.sku.capacity <= 32";
    rule "APPGW-CAPACITY-V2" Plugin "v2 gateways support at most 125 instances"
      "let a:APPGW in a.sku.tier == 'Standard_v2' && a.sku.capacity != null => a.sku.capacity <= 125";
    (* MySQL. *)
    rule "MYSQL-DELEGATION" Create
      "MySQL flexible server subnets must be delegated to flexibleServers"
      "let m:MYSQL, s:SUBNET in conn(m.delegated_subnet_id -> s.id) => s.delegation.service == 'Microsoft.DBforMySQL/flexibleServers'";
    (* Private endpoints. *)
    rule "PRIVEP-SUBNET-POLICY" Create
      "Private endpoints require network policies disabled on the subnet"
      "let p:PRIVEP, s:SUBNET in conn(p.subnet_id -> s.id) => s.private_endpoint_network_policies == 'Disabled'";
    (* Load balancer. *)
    rule "LB-ZONES-STANDARD" Create "Zonal frontends require the Standard sku"
      "let l:LB in l.frontend_ip_config.zones != null => l.sku == 'Standard'";
    (* Storage misc. *)
    rule "SA-BLOCKBLOB-PREMIUM" Create "BlockBlobStorage accounts must be Premium"
      "let r:SA in r.kind == 'BlockBlobStorage' => r.tier == 'Premium'";
    rule "SA-FILESTORAGE-PREMIUM" Create "FileStorage accounts must be Premium"
      "let r:SA in r.kind == 'FileStorage' => r.tier == 'Premium'";
    rule "SHARE-NFS-PREMIUM" Create "NFS file shares require a Premium FileStorage account"
      "let s:SHARE, a:SA in conn(s.sa_name -> a.name) && s.protocol == 'NFS' => a.tier == 'Premium'";
    rule "CONTAINER-KIND" Create "FileStorage accounts cannot hold blob containers"
      "let c:CONTAINER, a:SA in conn(c.sa_name -> a.name) => a.kind != 'FileStorage'";
    (* SQL. *)
    rule "SQLDB-ZONE-SKU" Create "Zone-redundant databases need a non-Basic sku"
      "let d:SQLDB in d.zone_redundant == true => d.sku != 'Basic'";
    rule "SQLDB-BASIC-SIZE" Create "Basic databases support at most 2 GB"
      "let d:SQLDB in d.sku == 'Basic' && d.max_size_gb != null => d.max_size_gb <= 2";
    (* DNS. *)
    rule "DNSREC-CNAME-SINGLE" Create "CNAME record sets hold exactly one record"
      "let r:DNSREC in r.type == 'CNAME' && r.records != null => length(r.records, 1)";
    rule "DNSREC-TARGET-XOR" Plugin
      "A record set uses either records or a target resource"
      "let r:DNSREC in r.target_resource_id != null => r.records == null";
    (* Log analytics. *)
    rule "LOGWS-FREE-RETENTION" Create "Free tier retention is capped at 7 days"
      "let w:LOGWS in w.sku == 'Free' => w.retention_in_days <= 7";
    rule "LOGWS-QUOTA-PAID" Create "Daily quota is unavailable on the Free tier"
      "let w:LOGWS in w.daily_quota_gb != null => w.sku != 'Free'";
    rule "LOGWS-RETENTION-MAX" Create "Log retention is capped at 730 days"
      "let w:LOGWS in w.retention_in_days != null => w.retention_in_days <= 730";
    (* Documented value ranges across services (plugin-validated). *)
    rule "IP-IDLE-MIN" Plugin "Idle timeout must be at least 4 minutes"
      "let r:IP in r.idle_timeout_in_minutes != null => r.idle_timeout_in_minutes >= 4";
    rule "IP-IDLE-MAX" Create "Idle timeout must be at most 30 minutes"
      "let r:IP in r.idle_timeout_in_minutes != null => r.idle_timeout_in_minutes <= 30";
    rule "NAT-IDLE-MIN" Create "NAT idle timeout must be at least 4 minutes"
      "let r:NAT in r.idle_timeout_in_minutes != null => r.idle_timeout_in_minutes >= 4";
    rule "NAT-IDLE-MAX" Create "NAT idle timeout must be at most 120 minutes"
      "let r:NAT in r.idle_timeout_in_minutes != null => r.idle_timeout_in_minutes <= 120";
    rule "AVSET-FD-MIN" Create "Fault domain count must be at least 1"
      "let r:AVSET in r.fault_domain_count != null => r.fault_domain_count >= 1";
    rule "AVSET-FD-MAX" Create "Fault domain count must be at most 3"
      "let r:AVSET in r.fault_domain_count != null => r.fault_domain_count <= 3";
    rule "AVSET-UD-MIN" Create "Update domain count must be at least 1"
      "let r:AVSET in r.update_domain_count != null => r.update_domain_count >= 1";
    rule "AVSET-UD-MAX" Create "Update domain count must be at most 20"
      "let r:AVSET in r.update_domain_count != null => r.update_domain_count <= 20";
    rule "VMSS-INSTANCES-MAX" Create "Scale sets support at most 1000 instances"
      "let r:VMSS in r.instances != null => r.instances <= 1000";
    rule "VMSS-INSTANCES-MIN" Plugin "Instance count cannot be negative"
      "let r:VMSS in r.instances != null => r.instances >= 0";
    rule "AKS-NODES-MIN" Plugin "The default node pool needs at least 1 node"
      "let a:AKS in a.default_node_pool.node_count != null => a.default_node_pool.node_count >= 1";
    rule "AKS-NODES-MAX" Create "Node pools support at most 1000 nodes"
      "let a:AKS in a.default_node_pool.node_count != null => a.default_node_pool.node_count <= 1000";
    rule "AKS-MAXPODS-MIN" Create "max_pods must be at least 10"
      "let a:AKS in a.default_node_pool.max_pods != null => a.default_node_pool.max_pods >= 10";
    rule "AKS-MAXPODS-MAX" Create "max_pods must be at most 250"
      "let a:AKS in a.default_node_pool.max_pods != null => a.default_node_pool.max_pods <= 250";
    rule "MYSQL-BACKUP-MIN" Create "Backup retention must be at least 1 day"
      "let m:MYSQL in m.backup_retention_days != null => m.backup_retention_days >= 1";
    rule "MYSQL-BACKUP-MAX" Create "Backup retention must be at most 35 days"
      "let m:MYSQL in m.backup_retention_days != null => m.backup_retention_days <= 35";
    rule "APPINS-RETENTION-MIN" Create "Telemetry retention must be at least 30 days"
      "let r:APPINS in r.retention_in_days != null => r.retention_in_days >= 30";
    rule "APPINS-RETENTION-MAX" Create "Telemetry retention must be at most 730 days"
      "let r:APPINS in r.retention_in_days != null => r.retention_in_days <= 730";
    rule "SHARE-QUOTA-MIN" Create "File shares need at least 1 GiB"
      "let s:SHARE in s.quota != null => s.quota >= 1";
    rule "SHARE-QUOTA-MAX" Create "File shares are capped at 100 TiB"
      "let s:SHARE in s.quota != null => s.quota <= 102400";
    rule "SHARE-NFS-QUOTA" Create "Premium NFS shares start at 100 GiB"
      "let s:SHARE in s.protocol == 'NFS' => s.quota >= 100";
    rule "DNSREC-TTL-MIN" Plugin "Record TTL must be at least 1 second"
      "let r:DNSREC in r.ttl != null => r.ttl >= 1";
    rule "DNSREC-TTL-MAX" Create "Record TTL must be at most 2147483646"
      "let r:DNSREC in r.ttl != null => r.ttl <= 2147483646";
    rule "SBQUEUE-SIZE-MIN" Create "Queue size must be at least 1024 MB"
      "let q:SBQUEUE in q.max_size_in_megabytes != null => q.max_size_in_megabytes >= 1024";
    rule "SBQUEUE-SIZE-MAX" Create "Queue size must be at most 5120 MB"
      "let q:SBQUEUE in q.max_size_in_megabytes != null => q.max_size_in_megabytes <= 5120";
    rule "EHNS-CAPACITY-MIN" Create "Throughput units start at 1"
      "let n:EVENTHUB_NS in n.capacity != null => n.capacity >= 1";
    rule "EHNS-CAPACITY-MAX" Create "Throughput units are capped at 40"
      "let n:EVENTHUB_NS in n.capacity != null => n.capacity <= 40";
    rule "EXPRESS-BW-MIN" Create "Circuits start at 50 Mbps"
      "let e:EXPRESS in e.bandwidth_in_mbps != null => e.bandwidth_in_mbps >= 50";
    rule "EXPRESS-BW-MAX" Create "Circuits are capped at 10 Gbps"
      "let e:EXPRESS in e.bandwidth_in_mbps != null => e.bandwidth_in_mbps <= 10000";
    rule "DISK-SIZE-MIN" Create "Managed disks start at 1 GiB"
      "let d:DISK in d.size_gb != null => d.size_gb >= 1";
    rule "DISK-SIZE-MAX" Create "Managed disks are capped at 32767 GiB"
      "let d:DISK in d.size_gb != null => d.size_gb <= 32767";
    rule "COSMOS-STALENESS-MIN" Create "Staleness interval must be at least 5 seconds"
      "let c:COSMOS in c.consistency_policy.max_interval_in_seconds != null => c.consistency_policy.max_interval_in_seconds >= 5";
    rule "COSMOS-STALENESS-MAX" Create "Staleness interval must be at most 86400 seconds"
      "let c:COSMOS in c.consistency_policy.max_interval_in_seconds != null => c.consistency_policy.max_interval_in_seconds <= 86400";
    rule "TUNNEL-WEIGHT-MIN" Plugin "Routing weight cannot be negative"
      "let t:TUNNEL in t.routing_weight != null => t.routing_weight >= 0";
    rule "TUNNEL-WEIGHT-MAX" Create "Routing weight is capped at 32000"
      "let t:TUNNEL in t.routing_weight != null => t.routing_weight <= 32000";
  ]

(* ---------------- generated rule families --------------------------- *)

let vm_sku_rules () =
  List.concat_map
    (fun (sku : Skus.vm_sku) ->
      let nic =
        rule
          (Printf.sprintf "VM-NICS-%s" sku.Skus.vm_name)
          Create
          (Printf.sprintf "%s VMs support at most %d NICs" sku.Skus.vm_name
             sku.Skus.max_nics)
          (Printf.sprintf
             "let r:VM in r.sku == '%s' => indegree(r, NIC) <= %d"
             sku.Skus.vm_name sku.Skus.max_nics)
      in
      let disks =
        rule
          (Printf.sprintf "VM-DISKS-%s" sku.Skus.vm_name)
          Create
          (Printf.sprintf "%s VMs support at most %d data disks" sku.Skus.vm_name
             sku.Skus.max_data_disks)
          (Printf.sprintf
             "let r:VM in r.sku == '%s' => outdegree(r, ATTACH) <= %d"
             sku.Skus.vm_name sku.Skus.max_data_disks)
      in
      let premium =
        if sku.Skus.premium_io then []
        else
          [
            rule
              (Printf.sprintf "VM-PREMIUM-OS-%s" sku.Skus.vm_name)
              Create
              (Printf.sprintf "%s VMs do not support premium os disks"
                 sku.Skus.vm_name)
              (Printf.sprintf
                 "let r:VM in r.sku == '%s' => r.os_disk.storage_type != 'Premium_LRS'"
                 sku.Skus.vm_name);
            rule
              (Printf.sprintf "VM-PREMIUM-DATA-%s" sku.Skus.vm_name)
              Create
              (Printf.sprintf "%s VMs do not support premium data disks"
                 sku.Skus.vm_name)
              (Printf.sprintf
                 "let r:VM, d:DISK, a:ATTACH in coconn(a.vm_id -> r.id, a.disk_id -> d.id) && r.sku == '%s' => d.storage_type != 'Premium_LRS'"
                 sku.Skus.vm_name);
          ]
      in
      nic :: disks :: premium)
    Skus.vm_skus

let gw_sku_rules () =
  List.concat_map
    (fun (sku : Skus.gw_sku) ->
      let tunnels =
        rule
          (Printf.sprintf "GW-TUNNELS-%s" sku.Skus.gw_name)
          Polling
          (Printf.sprintf "%s sku gateways support at most %d tunnels"
             sku.Skus.gw_name sku.Skus.max_tunnels)
          (Printf.sprintf
             "let g:GW in g.sku == '%s' => outdegree(g, TUNNEL) <= %d"
             sku.Skus.gw_name sku.Skus.max_tunnels)
      in
      let active_active =
        if sku.Skus.supports_active_active then []
        else
          [
            rule
              (Printf.sprintf "GW-AA-%s" sku.Skus.gw_name)
              Plugin
              (Printf.sprintf "%s sku gateways cannot be active-active"
                 sku.Skus.gw_name)
              (Printf.sprintf
                 "let g:GW in g.sku == '%s' => g.active_active == false"
                 sku.Skus.gw_name);
          ]
      in
      tunnels :: active_active)
    Skus.gw_skus

let sa_rules () =
  List.map
    (fun replica ->
      rule
        (Printf.sprintf "SA-PREMIUM-%s" replica)
        Create
        (Printf.sprintf "Premium storage accounts do not support %s replication"
           replica)
        (Printf.sprintf "let r:SA in r.tier == 'Premium' => r.replica != '%s'"
           replica))
    (List.filter
       (fun r -> not (List.mem r Skus.sa_premium_replications))
       Skus.sa_replications)

let appgw_sku_tier_rules () =
  let tier_of name =
    if List.mem name Skus.appgw_v2_skus then
      if String.equal name "WAF_v2" then "WAF_v2" else "Standard_v2"
    else if String.length name >= 3 && String.equal (String.sub name 0 3) "WAF" then
      "WAF"
    else "Standard"
  in
  List.map
    (fun name ->
      rule
        (Printf.sprintf "APPGW-TIER-%s" name)
        Plugin
        (Printf.sprintf "Application gateway sku %s requires tier %s" name
           (tier_of name))
        (Printf.sprintf
           "let a:APPGW in a.sku.name == '%s' => a.sku.tier == '%s'" name
           (tier_of name)))
    Skus.appgw_sku_names

let all_rules = ref None

let ground_truth () =
  match !all_rules with
  | Some rules -> rules
  | None ->
      let rules =
        authored () @ vm_sku_rules () @ gw_sku_rules () @ sa_rules ()
        @ appgw_sku_tier_rules ()
      in
      all_rules := Some rules;
      rules

let find rule_id =
  List.find_opt (fun r -> String.equal r.rule_id rule_id) (ground_truth ())

let count () = List.length (ground_truth ())

let rules_for_type rtype =
  List.filter
    (fun r ->
      List.exists
        (fun (b : Check.binding) -> String.equal b.btype rtype)
        r.check.Check.bindings)
    (ground_truth ())
