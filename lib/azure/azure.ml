(** The Azure backend: one [Provider.t] value tying together the
    catalogue, region/sku knowledge, the hidden ground-truth rule set,
    deployment-phase semantics and corpus templates. *)

module Provider = Zodiac_provider.Provider
module Value = Zodiac_iac.Value
module Check = Zodiac_spec.Check

(* Naming scope: names must be unique among resources of the same type
   sharing the scope attribute's value (subnets within one VPC, routes
   within one table, ...). Types not listed use a global namespace. *)
let name_scope_attr = function
  | "SUBNET" -> Some "vpc_name"
  | "ROUTE" -> Some "rt_name"
  | "PEERING" -> Some "vpc_name"
  | "CONTAINER" | "SHARE" -> Some "sa_name"
  | "DNSREC" -> Some "zone_name"
  | "EVENTHUB" -> Some "namespace_name"
  | "SBQUEUE" -> Some "namespace_id"
  | "SQLDB" -> Some "server_id"
  | _ -> None

(* Regional sku availability applies to the sku-bearing compute types. *)
let sku_location_attr = function
  | "VM" | "VMSS" -> Some "sku"
  | "AKS" -> Some "default_node_pool.vm_size"
  | _ -> None

(* GPU and large-memory skus are only rolled out to major regions; the
   table lists regions where a sku is NOT offered. *)
let sku_restricted_regions =
  [
    ( "Standard_NC6s_v3",
      [
        "westcentralus"; "canadaeast"; "ukwest"; "francesouth"; "germanynorth";
        "switzerlandwest"; "norwaywest"; "swedensouth"; "japanwest";
        "australiasoutheast"; "koreasouth"; "southindia"; "uaecentral";
        "southafricawest";
      ] );
    ( "Standard_M64s",
      [
        "westcentralus"; "northcentralus"; "canadaeast"; "ukwest"; "francesouth";
        "germanynorth"; "switzerlandwest"; "norwaywest"; "swedensouth";
        "japanwest"; "australiasoutheast"; "koreasouth"; "southindia";
        "uaecentral"; "southafricawest"; "brazilsouth";
      ] );
    ("Standard_L8s_v2", [ "westcentralus"; "ukwest"; "francesouth"; "germanynorth" ]);
  ]

(* Names and locations are immutable everywhere in Azure; a handful of
   structural attributes force replacement too. *)
let immutable_attrs rtype =
  [ "name"; "location" ]
  @
  match rtype with
  | "VPC" -> [ "address_space" ]
  | "SUBNET" -> [ "vpc_name" ]
  | "SA" -> [ "tier"; "kind" ]
  | "VM" -> [ "sku"; "os_disk.name"; "availability_set_id"; "zone" ]
  | "DISK" -> [ "storage_type"; "create_option"; "zone" ]
  | "IP" -> [ "sku" ]
  | "GW" -> [ "type"; "sku" ]
  | "REDIS" -> [ "family"; "sku"; "subnet_id" ]
  | "AKS" -> [ "dns_prefix"; "network_profile.network_plugin" ]
  | "COSMOS" -> [ "kind" ]
  | "PLAN" -> [ "os_type" ]
  | _ -> []

(* Documented service limits, looked up from the condition
   (type, attribute, value) and the constrained quantity — the oracle's
   "documentation". *)
let documented_limit ~subject ~cond ~(quantity : Provider.quantity) ~op =
  let vm_sku name = Skus.find_vm name in
  let gw_sku name = Skus.find_gw name in
  match (subject, cond, quantity, op) with
  | "VM", Some ("sku", Value.Str sku), Provider.Deg (`In, "NIC"), Check.Le ->
      Option.map (fun (s : Skus.vm_sku) -> s.Skus.max_nics) (vm_sku sku)
  | "VM", Some ("sku", Value.Str sku), Provider.Deg (`Out, "ATTACH"), Check.Le ->
      Option.map (fun (s : Skus.vm_sku) -> s.Skus.max_data_disks) (vm_sku sku)
  | "GW", Some ("sku", Value.Str sku), Provider.Deg (`Out, "TUNNEL"), Check.Le ->
      Option.map (fun (s : Skus.gw_sku) -> s.Skus.max_tunnels) (gw_sku sku)
  | "REDIS", Some ("family", Value.Str "C"), Provider.Num "capacity", Check.Le ->
      Some 6
  | "REDIS", Some ("family", Value.Str "P"), Provider.Num "capacity", Check.Le ->
      Some 5
  | "REDIS", Some ("family", Value.Str "P"), Provider.Num "capacity", Check.Ge ->
      Some 1
  | "KV", _, Provider.Num "soft_delete_retention_days", Check.Le -> Some 90
  | "KV", _, Provider.Num "soft_delete_retention_days", Check.Ge -> Some 7
  | "EVENTHUB", _, Provider.Num "partition_count", Check.Le -> Some 32
  | "EVENTHUB", _, Provider.Num "partition_count", Check.Ge -> Some 1
  | "SG", _, Provider.Num "rule.priority", Check.Ge -> Some 100
  | "SG", _, Provider.Num "rule.priority", Check.Le -> Some 4096
  | ( "APPGW",
      Some ("sku.tier", Value.Str "Standard"),
      Provider.Num "sku.capacity",
      Check.Le ) ->
      Some 32
  | ( "APPGW",
      Some ("sku.tier", Value.Str "Standard_v2"),
      Provider.Num "sku.capacity",
      Check.Le ) ->
      Some 125
  | "SQLDB", Some ("sku", Value.Str "Basic"), Provider.Num "max_size_gb", Check.Le
    ->
      Some 2
  | ( "LOGWS",
      Some ("sku", Value.Str "Free"),
      Provider.Num "retention_in_days",
      Check.Le ) ->
      Some 7
  | "LOGWS", _, Provider.Num "retention_in_days", Check.Le -> Some 730
  | "LOGWS", _, Provider.Num "retention_in_days", Check.Ge -> Some 7
  | "IP", _, Provider.Num "idle_timeout_in_minutes", Check.Le -> Some 30
  | "IP", _, Provider.Num "idle_timeout_in_minutes", Check.Ge -> Some 4
  | "NAT", _, Provider.Num "idle_timeout_in_minutes", Check.Le -> Some 120
  | "NAT", _, Provider.Num "idle_timeout_in_minutes", Check.Ge -> Some 4
  | "AVSET", _, Provider.Num "fault_domain_count", Check.Le -> Some 3
  | "AVSET", _, Provider.Num "fault_domain_count", Check.Ge -> Some 1
  | "AVSET", _, Provider.Num "update_domain_count", Check.Le -> Some 20
  | "AVSET", _, Provider.Num "update_domain_count", Check.Ge -> Some 1
  | "AKS", _, Provider.Num "default_node_pool.node_count", Check.Le -> Some 1000
  | "AKS", _, Provider.Num "default_node_pool.node_count", Check.Ge -> Some 1
  | "AKS", _, Provider.Num "default_node_pool.max_pods", Check.Le -> Some 250
  | "AKS", _, Provider.Num "default_node_pool.max_pods", Check.Ge -> Some 10
  | "MYSQL", _, Provider.Num "backup_retention_days", Check.Le -> Some 35
  | "MYSQL", _, Provider.Num "backup_retention_days", Check.Ge -> Some 1
  | "APPINS", _, Provider.Num "retention_in_days", Check.Le -> Some 730
  | "APPINS", _, Provider.Num "retention_in_days", Check.Ge -> Some 30
  | "SHARE", _, Provider.Num "quota", Check.Le -> Some 102400
  | "SHARE", _, Provider.Num "quota", Check.Ge -> Some 1
  | "SBQUEUE", _, Provider.Num "max_size_in_megabytes", Check.Le -> Some 5120
  | "SBQUEUE", _, Provider.Num "max_size_in_megabytes", Check.Ge -> Some 1024
  | "EVENTHUB_NS", _, Provider.Num "capacity", Check.Le -> Some 40
  | "EVENTHUB_NS", _, Provider.Num "capacity", Check.Ge -> Some 1
  | "EXPRESS", _, Provider.Num "bandwidth_in_mbps", Check.Le -> Some 10000
  | "EXPRESS", _, Provider.Num "bandwidth_in_mbps", Check.Ge -> Some 50
  | "DISK", _, Provider.Num "size_gb", Check.Le -> Some 32767
  | "DISK", _, Provider.Num "size_gb", Check.Ge -> Some 1
  | ( "COSMOS",
      _,
      Provider.Num "consistency_policy.max_interval_in_seconds",
      Check.Le ) ->
      Some 86400
  | ( "COSMOS",
      _,
      Provider.Num "consistency_policy.max_interval_in_seconds",
      Check.Ge ) ->
      Some 5
  | "TUNNEL", _, Provider.Num "routing_weight", Check.Le -> Some 32000
  | "TUNNEL", _, Provider.Num "routing_weight", Check.Ge -> Some 0
  | "DNSREC", _, Provider.Num "ttl", Check.Le -> Some 2147483646
  | "DNSREC", _, Provider.Num "ttl", Check.Ge -> Some 1
  | _ -> None

let plausible_markers =
  [
    "GatewaySubnet"; "AzureFirewallSubnet"; "AzureBastionSubnet"; "Standard";
    "Basic"; "Premium"; "Spot"; "Static"; "Dynamic";
  ]

let provider : Provider.t =
  {
    Provider.name = "azure";
    tf_prefix = "azurerm_";
    schemas = Catalog.schemas;
    find_schema = Catalog.find;
    type_names = Catalog.type_names;
    of_terraform = Catalog.of_terraform;
    to_terraform = Catalog.to_terraform;
    reserved_names = Catalog.reserved_subnet_names;
    regions = Regions.all;
    is_region = Regions.is_region;
    ground_truth = Rules.ground_truth;
    name_scope_attr;
    sku_location_attr;
    sku_restricted_regions;
    immutable_attrs;
    documented_limit;
    plausible_markers;
    scenarios = Corpus.scenarios;
    injectors = Corpus.injectors;
    add_unattended = Corpus.add_unattended;
  }
