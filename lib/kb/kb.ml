module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Schema = Zodiac_iac.Schema
module Provider = Zodiac_provider.Provider
module Cidr = Zodiac_util.Cidr
module Parallel = Zodiac_util.Parallel

type attr_info = {
  rtype : string;
  attr : string;
  requirement : Schema.requirement option;
  format : Schema.format;
  observed : (Value.t * int) list;
  observed_index : (Value.t, int) Hashtbl.t;
  observed_total : int;
  enum_values : Value.t list;
  default : Value.t option;
  occurrences : int;
}

type conn_kind = {
  src_type : string;
  src_attr : string;
  dst_type : string;
  dst_attr : string;
  count : int;
}

type t = {
  entries : (string * string, attr_info) Hashtbl.t;  (* key: (rtype, attr) *)
  conns : conn_kind list;
  known_types : string list;
  populations : (string, int) Hashtbl.t;  (* resources per type *)
}

(* An attribute is enum-like when its observed value set is small,
   string-typed and well-supported — or when the schema declares an
   enum outright. *)
let max_enum_cardinality = 12
let min_enum_support = 4

(* Values worth keeping in the observation table: scalars only. *)
let observable = function
  | Value.Str _ | Value.Int _ | Value.Bool _ -> true
  | Value.Null | Value.List _ | Value.Block _ | Value.Ref _ -> false

let bump tbl k n =
  Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))

(* Observation tables are bounded: each (rtype, attr) tracks at most
   [max_observed_values] distinct values, keeping the canonically
   smallest ones. Attributes whose values are instance-unique (generated
   names, secrets, per-resource prefixes) would otherwise grow the KB
   linearly with the corpus and defeat bounded-memory streaming; real
   vocabularies saturate far below the cap, and every corpus small
   enough that no attribute crosses it produces byte-identical stats —
   with the generator's densest attribute (subnet names) that holds
   through ~2000-project corpora, comfortably past the 1200 default. *)
let max_observed_values = 2048

let value_is_cidr = function
  | Value.Str s -> Cidr.of_string s <> None
  | _ -> false

(* Per-attribute value counts plus an exact residue for evicted mass.
   [evicted_all_cidr] is the AND over evicted values' CIDR-ness
   (vacuously true while nothing is evicted), so CIDR-format inference
   stays faithful past the cap. *)
type obs = {
  values : (Value.t, int) Hashtbl.t;
  mutable evicted : int;
  mutable evicted_all_cidr : bool;
}

let new_obs () =
  { values = Hashtbl.create 8; evicted = 0; evicted_all_cidr = true }

(* Evict down to [max_observed_values], dropping the canonically largest
   values. Keeping the K smallest is what makes the cap grouping
   invariant: a value among the K smallest of the whole corpus is among
   the K smallest of every sub-table containing it, so no intermediate
   eviction ever loses one of its occurrences — kept counts are exact
   sums and the evicted mass is conserved, whatever the shard size. *)
let cap_obs o =
  if Hashtbl.length o.values > max_observed_values then begin
    let keys = Hashtbl.fold (fun v _ acc -> v :: acc) o.values [] in
    List.sort Value.compare keys
    |> List.filteri (fun i _ -> i >= max_observed_values)
    |> List.iter (fun v ->
           o.evicted <- o.evicted + Hashtbl.find o.values v;
           o.evicted_all_cidr <- o.evicted_all_cidr && value_is_cidr v;
           Hashtbl.remove o.values v)
  end

(* One shard of corpus statistics: private tables for a contiguous slice of
   projects, built with no shared state so shards can run on any domain. *)
type shard = {
  s_observations : (string * string, obs) Hashtbl.t;
  s_presence : (string * string, int) Hashtbl.t;
  s_conns : (string * string * string * string, int) Hashtbl.t;
  s_populations : (string, int) Hashtbl.t;
}

let build_shard projects =
  let s =
    {
      s_observations = Hashtbl.create 512;
      s_presence = Hashtbl.create 512;
      s_conns = Hashtbl.create 128;
      s_populations = Hashtbl.create 64;
    }
  in
  let observe_value rtype path v =
    if observable v then begin
      let k = (rtype, path) in
      let o =
        match Hashtbl.find_opt s.s_observations k with
        | Some o -> o
        | None ->
            let o = new_obs () in
            Hashtbl.replace s.s_observations k o;
            o
      in
      bump o.values v 1;
      (* Amortized: let the table overshoot to 2x the cap before the
         O(n log n) eviction pass; the exact cap is restored below. *)
      if Hashtbl.length o.values > 2 * max_observed_values then cap_obs o
    end
  in
  let observe_resource r =
    let rtype = r.Resource.rtype in
    bump s.s_populations rtype 1;
    List.iter
      (fun path ->
        bump s.s_presence (rtype, path) 1;
        List.iter (observe_value rtype path) (Resource.get_all r path))
      (Resource.attr_paths r)
  in
  List.iter
    (fun prog ->
      List.iter observe_resource (Program.resources prog);
      let graph = Graph.build prog in
      List.iter
        (fun (e : Graph.edge) ->
          bump s.s_conns
            ( e.Graph.src.Resource.rtype,
              e.Graph.src_attr,
              e.Graph.dst.Resource.rtype,
              e.Graph.dst_attr )
            1)
        (Graph.edges graph))
    projects;
  Hashtbl.iter (fun _ o -> cap_obs o) s.s_observations;
  s

(* Merge [src] into [dst], adding counts. Count merges are exact integer
   additions, so the merged totals are independent of the chunking; any
   residual Hashtbl iteration-order differences are erased downstream by
   canonical sorts. *)
let merge_shard dst src =
  Hashtbl.iter (fun k n -> bump dst.s_presence k n) src.s_presence;
  Hashtbl.iter (fun k n -> bump dst.s_conns k n) src.s_conns;
  Hashtbl.iter (fun k n -> bump dst.s_populations k n) src.s_populations;
  Hashtbl.iter
    (fun k o ->
      match Hashtbl.find_opt dst.s_observations k with
      | None ->
          Hashtbl.replace dst.s_observations k
            {
              values = Hashtbl.copy o.values;
              evicted = o.evicted;
              evicted_all_cidr = o.evicted_all_cidr;
            }
      | Some into ->
          Hashtbl.iter (fun v n -> bump into.values v n) o.values;
          into.evicted <- into.evicted + o.evicted;
          into.evicted_all_cidr <- into.evicted_all_cidr && o.evicted_all_cidr;
          cap_obs into)
    src.s_observations;
  dst

(* The public face of [shard]: raw monoid count tables, the unit of
   incremental KB construction. [stats_of_projects] builds them,
   [merge_stats] adds them (exact integer addition, associative over any
   contiguous grouping of the corpus), [finalize] derives the canonical
   KB — so stats(prefix) + stats(delta) finalizes identically to
   stats(prefix @ delta), which is what lets a warm run extend a cached
   prefix instead of rebuilding. *)
type stats = shard

let stats_of_projects ?jobs projects =
  match Parallel.chunks ?jobs projects with
  | [] -> build_shard []
  | chunks ->
      (* Shards in parallel, merge strictly in chunk order. *)
      List.fold_left merge_shard (build_shard [])
        (Parallel.map ?jobs build_shard chunks)

let merge_stats = merge_shard

module Codec = Zodiac_util.Codec

let write_stats b (s : stats) =
  let ws = Codec.write_string in
  Codec.write_table
    (fun b (ty, attr) ->
      ws b ty;
      ws b attr)
    (fun b o ->
      Codec.write_table Value.write Codec.write_int b o.values;
      Codec.write_int b o.evicted;
      Codec.write_bool b o.evicted_all_cidr)
    b s.s_observations;
  Codec.write_table
    (fun b (ty, attr) ->
      ws b ty;
      ws b attr)
    Codec.write_int b s.s_presence;
  Codec.write_table
    (fun b (st, sa, dt, da) ->
      ws b st;
      ws b sa;
      ws b dt;
      ws b da)
    Codec.write_int b s.s_conns;
  Codec.write_table ws Codec.write_int b s.s_populations

let read_stats s =
  let rs = Codec.read_string in
  let pair s =
    let ty = rs s in
    let attr = rs s in
    (ty, attr)
  in
  let s_observations =
    Codec.read_table pair
      (fun s ->
        let values = Codec.read_table Value.read Codec.read_int s in
        let evicted = Codec.read_int s in
        let evicted_all_cidr = Codec.read_bool s in
        { values; evicted; evicted_all_cidr })
      s
  in
  let s_presence = Codec.read_table pair Codec.read_int s in
  let s_conns =
    Codec.read_table
      (fun s ->
        let st = rs s in
        let sa = rs s in
        let dt = rs s in
        let da = rs s in
        (st, sa, dt, da))
      Codec.read_int s
  in
  let s_populations = Codec.read_table rs Codec.read_int s in
  { s_observations; s_presence; s_conns; s_populations }

let stats_artifact =
  { Zodiac_util.Stage.write = write_stats; read = read_stats }

let compare_observed (v1, c1) (v2, c2) =
  match Int.compare c2 c1 with 0 -> Value.compare v1 v2 | n -> n

let compare_conns a b =
  match Int.compare b.count a.count with
  | 0 ->
      Stdlib.compare
        (a.src_type, a.src_attr, a.dst_type, a.dst_attr)
        (b.src_type, b.src_attr, b.dst_type, b.dst_attr)
  | n -> n

let finalize ~provider (stats : stats) =
  let { s_observations = observations; s_presence = attr_presence;
        s_conns = conn_counts; s_populations = populations } =
    stats
  in
  (* Fold schema facts (Class 1 + declared Class 2) with observations. *)
  let entries = Hashtbl.create 512 in
  let add_entry rtype attr requirement declared_format default =
    let k = (rtype, attr) in
    let o =
      match Hashtbl.find_opt observations k with
      | Some o -> o
      | None -> new_obs ()
    in
    let observed_index = o.values in
    let observed =
      Hashtbl.fold (fun v c acc -> (v, c) :: acc) observed_index []
      |> List.sort compare_observed
    in
    let occurrences = Option.value ~default:0 (Hashtbl.find_opt attr_presence k) in
    let strings_only =
      observed <> []
      && (List.for_all
            (fun (v, _) -> match v with Value.Str _ -> true | _ -> false)
            observed
         || List.for_all
              (fun (v, _) -> match v with Value.Bool _ -> true | _ -> false)
              observed)
    in
    (* True corpus total: kept counts plus the evicted residue, so
       priors and support thresholds see the whole corpus even past the
       observation cap. *)
    let observed_total =
      List.fold_left (fun acc (_, c) -> acc + c) 0 observed + o.evicted
    in
    let enum_values =
      match declared_format with
      | Schema.Enum declared -> List.map (fun s -> Value.Str s) declared
      | Schema.Free_string
        when strings_only && o.evicted = 0
             && List.length observed <= max_enum_cardinality
             && observed_total >= min_enum_support ->
          List.map fst observed
      | Schema.Free_string | Schema.Cidr_format | Schema.Port_format | Schema.Region
      | Schema.Name_format | Schema.Id_format ->
          []
    in
    (* Infer CIDR format from observed values when undeclared. *)
    let format =
      match declared_format with
      | Schema.Free_string
        when observed <> []
             && List.for_all (fun (v, _) -> value_is_cidr v) observed
             && o.evicted_all_cidr ->
          Schema.Cidr_format
      | f -> f
    in
    Hashtbl.replace entries k
      {
        rtype;
        attr;
        requirement;
        format;
        observed;
        observed_index;
        observed_total;
        enum_values;
        default;
        occurrences;
      }
  in
  (* Class 1: every schema attribute. *)
  List.iter
    (fun schema ->
      List.iter
        (fun (path, (a : Schema.attr)) ->
          add_entry schema.Schema.type_name path (Some a.Schema.req) a.Schema.format
            a.Schema.default)
        (Schema.leaf_paths schema))
    provider.Provider.schemas;
  (* Corpus-only attributes (unknown to schemas) still get entries; sorted
     so the entry table is filled in a chunking-independent order. *)
  Hashtbl.fold (fun k _count acc -> k :: acc) attr_presence []
  |> List.sort Stdlib.compare
  |> List.iter (fun ((rtype, attr) as k) ->
         if not (Hashtbl.mem entries k) then
           add_entry rtype attr None Schema.Free_string None);
  let conns =
    Hashtbl.fold
      (fun (src_type, src_attr, dst_type, dst_attr) count acc ->
        { src_type; src_attr; dst_type; dst_attr; count } :: acc)
      conn_counts []
    |> List.sort compare_conns
  in
  let known_types =
    let from_corpus =
      Hashtbl.fold
        (fun (ty, _attr) _ acc ->
          if List.mem ty acc then acc else ty :: acc)
        attr_presence []
      |> List.sort String.compare
    in
    List.fold_left
      (fun acc ty -> if List.mem ty acc then acc else acc @ [ ty ])
      provider.Provider.type_names from_corpus
  in
  { entries; conns; known_types; populations }

let build ~provider ?jobs ~projects () =
  finalize ~provider (stats_of_projects ?jobs projects)

let attr_info t ~rtype ~attr = Hashtbl.find_opt t.entries (rtype, attr)

let population t rtype =
  Option.value ~default:0 (Hashtbl.find_opt t.populations rtype)

let attrs_of_type t rtype =
  Hashtbl.fold
    (fun _ info acc -> if String.equal info.rtype rtype then info :: acc else acc)
    t.entries []
  |> List.sort (fun a b -> String.compare a.attr b.attr)

let enum_values t ~rtype ~attr =
  match attr_info t ~rtype ~attr with Some info -> info.enum_values | None -> []

let conn_kinds t = t.conns

let conn_kinds_from t src_type =
  List.filter (fun c -> String.equal c.src_type src_type) t.conns

let conn_kinds_between t src_type dst_type =
  List.filter
    (fun c -> String.equal c.src_type src_type && String.equal c.dst_type dst_type)
    t.conns

let legal_targets t ~src_type ~src_attr =
  List.filter_map
    (fun c ->
      if String.equal c.src_type src_type && String.equal c.src_attr src_attr then
        Some (c.dst_type, c.dst_attr)
      else None)
    t.conns

let cidr_attrs t rtype =
  List.filter_map
    (fun info ->
      if info.format = Schema.Cidr_format then Some info.attr else None)
    (attrs_of_type t rtype)

let numeric_attrs t rtype =
  List.filter_map
    (fun info ->
      let numeric =
        info.observed <> []
        && List.for_all
             (fun (v, _) -> match v with Value.Int _ -> true | _ -> false)
             info.observed
      in
      if numeric then Some info.attr else None)
    (attrs_of_type t rtype)

let defaults provider ~rtype ~attr = Provider.defaults provider ~rtype ~attr

let types t = t.known_types

let size t = Hashtbl.length t.entries
