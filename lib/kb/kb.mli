(** The semantic knowledge base (§3.1).

    Holds the three classes of base facts that bootstrap check mining:

    - {b Class 1 — IaC native constraints}: requirement class and type
      of every attribute, read from the provider schema files
      (here: the Azure catalogue).
    - {b Class 2 — provider-specific constraints}: enum-like value
      sets, CIDR/port formats, defaults, and reserved names, mined from
      attribute usage across the crawled corpus (plus the schema's
      declared enums).
    - {b Class 3 — resource references}: which attribute endpoints
      legally connect to which resource attributes, harvested from the
      reference patterns observed in registry examples and user
      repositories.

    The KB is the search-space regulator of Figure 7a: templates only
    instantiate enum comparisons on Class-2 enum attributes and
    connection patterns on Class-3 edges. *)

type attr_info = {
  rtype : string;
  attr : string;  (** dotted path without index markers *)
  requirement : Zodiac_iac.Schema.requirement option;  (** Class 1 *)
  format : Zodiac_iac.Schema.format;  (** declared or inferred *)
  observed : (Zodiac_iac.Value.t * int) list;
      (** distinct observed values with counts, most frequent first
          (ties broken by {!Zodiac_iac.Value.compare}). At most
          {!max_observed_values} entries — see the bounded-table note
          there. *)
  observed_index : (Zodiac_iac.Value.t, int) Hashtbl.t;
      (** the same counts as [observed], keyed for O(1) probes — the
          miner's priors hit this in nested loops, so a list scan here
          is quadratic. Treat as read-only. *)
  observed_total : int;
      (** sum of all observation counts (cached denominator) *)
  enum_values : Zodiac_iac.Value.t list;
      (** Class 2: values usable on the right of an [==] (empty when
          the attribute is not enum-like) *)
  default : Zodiac_iac.Value.t option;
  occurrences : int;  (** resources in the corpus carrying the attr *)
}

type conn_kind = {
  src_type : string;
  src_attr : string;  (** inbound endpoint path *)
  dst_type : string;
  dst_attr : string;  (** outbound endpoint path *)
  count : int;  (** occurrences across the corpus *)
}

type t

val build :
  provider:Zodiac_provider.Provider.t ->
  ?jobs:int ->
  projects:Zodiac_iac.Program.t list ->
  unit ->
  t
(** Construct the KB from provider schemas plus a corpus. The corpus is
    split into contiguous shards, per-shard statistics are gathered on up
    to [jobs] domains (default: recommended domain count), and shard
    tables are merged in shard order; all derived orderings are canonical,
    so the result is identical for every [jobs] value.
    [build ~projects () = finalize (stats_of_projects projects)]. *)

val max_observed_values : int
(** Observation tables are bounded: each (type, attribute) tracks at
    most this many distinct values — the canonically smallest by
    {!Zodiac_iac.Value.compare} — plus an exact residue (evicted count
    mass and its CIDR-ness), so the KB's footprint stays flat however
    large the corpus grows. The cap is grouping-invariant: a value in
    the cap-smallest of the whole corpus is in the cap-smallest of
    every sub-table containing it, so kept counts are exact sums under
    any sharding and [stats] keeps its monoid contract. Attributes
    whose distinct-value count stays under the cap (every real
    vocabulary, and every generated corpus up to ~2000 projects) are
    byte-identical to the unbounded semantics; [observed_total],
    presence and connection counts are exact always. *)

type stats
(** Raw monoid count tables over a corpus slice — the unit of
    incremental KB construction. Merging is exact integer addition and
    associative over any contiguous grouping, so
    [finalize (merge_stats (stats_of_projects prefix) (stats_of_projects delta))]
    is identical to [finalize (stats_of_projects (prefix @ delta))] —
    the property the warm-start cache relies on to extend a cached
    corpus prefix instead of rebuilding. *)

val stats_of_projects : ?jobs:int -> Zodiac_iac.Program.t list -> stats

val merge_stats : stats -> stats -> stats
(** [merge_stats dst src] adds [src]'s counts into [dst] (mutating it)
    and returns [dst]. [src] is unchanged. *)

val finalize : provider:Zodiac_provider.Provider.t -> stats -> t
(** Fold schema facts with the counted observations and derive the
    canonical KB (sorted observation lists, enum/CIDR inference,
    connection kinds). The stats tables are captured by the result —
    do not merge into them afterwards. *)

val write_stats : Zodiac_util.Codec.sink -> stats -> unit
(** Binary codec for the warm-start cache. Rows are written in sorted
    key order, so equal stats serialize to equal bytes. *)

val read_stats : Zodiac_util.Codec.src -> stats
(** @raise Zodiac_util.Codec.Corrupt on malformed input. *)

val stats_artifact : stats Zodiac_util.Stage.artifact
(** The KB stage's cache binding ({!write_stats}/{!read_stats}) for
    {!Zodiac_util.Stage.run}; the runner caches raw monoid stats and
    the pipeline applies {!finalize} to whatever comes back. *)

val attr_info : t -> rtype:string -> attr:string -> attr_info option

val population : t -> string -> int
(** Number of corpus resources of the given type. *)

val attrs_of_type : t -> string -> attr_info list
(** All attributes observed or declared for a type. *)

val enum_values : t -> rtype:string -> attr:string -> Zodiac_iac.Value.t list
val conn_kinds : t -> conn_kind list
val conn_kinds_from : t -> string -> conn_kind list
(** Connection kinds whose source is the given type. *)

val conn_kinds_between : t -> string -> string -> conn_kind list

val legal_targets : t -> src_type:string -> src_attr:string -> (string * string) list
(** Class 3: legal (dst type, dst attr) targets of an endpoint. *)

val cidr_attrs : t -> string -> string list
(** Attribute paths of a type holding CIDR values. *)

val numeric_attrs : t -> string -> string list

val defaults : Zodiac_provider.Provider.t -> Zodiac_spec.Eval.defaults
(** Class 2 defaults (delegates to the provider schema). *)

val types : t -> string list
(** Types known to the KB (union of catalogue and corpus). *)

val size : t -> int
(** Number of attribute entries. *)
