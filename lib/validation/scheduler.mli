(** The end-to-end validation scheduling algorithm (Figure 5).

    Iterates over the candidate set [R_c] with alternating passes until
    it empties (or a pass makes no progress):

    - {b false-positive removal}: for each candidate, generate a
      negative test case that conforms to every validated check in
      [R_v] (hard) while minimizing collateral violations of [R_c]
      (soft). UNSAT means the candidate conflicts with ground truth and
      is dropped; a {e deployable} negative test case falsifies the
      candidate — and every other [R_c] check it violates.
    - {b true-positive validation}: when the negative test case fails
      to deploy, the candidate is validated if it is the only violated
      candidate, or if the violated set lies within a pre-computed
      {e indistinguishable group} (checks that can never be violated
      separately, O3).

    Candidates are processed in {e evaluation partial order} (O4):
    checks over early-deploying resource types first, which defuses
    reasoning loops between location-style checks.

    Every pass is instrumented for the convergence plots of Figure 8. *)

type deploy = Zodiac_iac.Program.t -> bool
(** Deployment oracle: true iff the program deploys cleanly. *)

type deploy_batch = Zodiac_iac.Program.t list -> bool list
(** Batched oracle; must be order-faithful, i.e. observationally
    [List.map deploy]. {!Zodiac_engine} provides one that computes pure
    backend responses in parallel. *)

type iteration = {
  iter : int;
  fp_deployable : int;  (** FPs removed because [t_n] deployed *)
  fp_unsat : int;  (** FPs removed because no [t_n] exists *)
  fp_no_instance : int;  (** FPs removed for lack of a positive witness *)
  tp_single : int;  (** validated with a single violation *)
  tp_group : int;  (** validated through an indistinguishable group *)
  remaining : int;  (** |R_c| after the iteration *)
}

type verdict =
  | Validated of { group : string list }
      (** cids validated together (singleton for a lone check) *)
  | Falsified of
      [ `Deployable | `Unsat | `No_instance | `Stalled ]

type result = {
  validated : Zodiac_spec.Check.t list;
  falsified : (Zodiac_spec.Check.t * verdict) list;
  iterations : iteration list;
  deployments : int;  (** total cloud deployments performed *)
}

type config = {
  handle_indistinct : bool;  (** O3 (Figure 8b ablation) *)
  use_partial_order : bool;  (** O4 *)
  max_iterations : int;
  tp_limit : int;  (** positive test cases considered per check *)
  donor_pool : int;  (** corpus prefix used as mutation donors *)
}

val default_config : config

val run :
  ?config:config ->
  ?telemetry:Zodiac_util.Telemetry.t ->
  ?jobs:int ->
  ?deploy_batch:deploy_batch ->
  provider:Zodiac_provider.Provider.t ->
  kb:Zodiac_kb.Kb.t ->
  corpus:(string * Zodiac_iac.Program.t) list ->
  deploy:deploy ->
  Zodiac_spec.Check.t list ->
  result
(** Passes are batch-synchronous: each pass plans every mutant from the
    pass-start snapshot of (R_c, R_v) — a pure fan-out across up to
    [jobs] domains — deploys the batch in snapshot order (through
    [deploy_batch] when given, else [deploy] one by one), and commits
    verdicts sequentially in that order. The result is identical for
    every [jobs] value.

    [telemetry] (default {!Zodiac_util.Telemetry.null}) receives
    [scheduler.batches] / [scheduler.batch_programs] per deployed
    batch and [scheduler.iterations] / [scheduler.deployments] totals;
    pure observation, never part of the result. *)

val counterexample_pass :
  ?jobs:int ->
  provider:Zodiac_provider.Provider.t ->
  corpus:(string * Zodiac_iac.Program.t) list ->
  deploy:deploy ->
  Zodiac_spec.Check.t list ->
  Zodiac_spec.Check.t list * Zodiac_spec.Check.t list
(** §5.6: hunt for corpus programs that violate a validated check yet
    deploy successfully. Returns (kept, exposed false positives). *)
