module Program = Zodiac_iac.Program
module Resource = Zodiac_iac.Resource
module Graph = Zodiac_iac.Graph
module Provider = Zodiac_provider.Provider

let prune prog ~keep =
  let graph = Graph.build prog in
  let closure =
    List.concat_map (fun id -> id :: Graph.reachable_from graph id) keep
  in
  Program.filter
    (fun r ->
      let id = Resource.id r in
      List.exists (Resource.equal_id id) closure)
    prog

type sizes = { attended : int; unattended : int }

let measure provider prog =
  List.fold_left
    (fun acc r ->
      if provider.Provider.find_schema r.Resource.rtype = None then
        { acc with unattended = acc.unattended + 1 }
      else { acc with attended = acc.attended + 1 })
    { attended = 0; unattended = 0 }
    (Program.resources prog)
