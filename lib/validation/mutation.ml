module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Schema = Zodiac_iac.Schema
module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Kb = Zodiac_kb.Kb
module Csp = Zodiac_solver.Csp
module Provider = Zodiac_provider.Provider
module Cidr = Zodiac_util.Cidr
module Arm = Zodiac_cloud.Arm

type options = { consider_others : bool; minimize_changes : bool }

let default_options = { consider_others = true; minimize_changes = true }

type result = {
  program : Program.t;
  violated_soft : string list;
  attr_changes : int;
  topo_changes : int;
}

(* ------------------------------------------------------------------ *)
(* Mutable slots                                                       *)
(* ------------------------------------------------------------------ *)

(* A slot addresses one mutable position: a dotted attribute path, or a
   sub-attribute of one element of a repeated-block collection. *)
type slot =
  | Flat of Resource.id * string
  | Elem of Resource.id * string * int * string

let slot_resource = function Flat (rid, _) | Elem (rid, _, _, _) -> rid

let slot_name = function
  | Flat (rid, path) -> Printf.sprintf "%s.%s" (Resource.id_to_string rid) path
  | Elem (rid, coll, i, sub) ->
      Printf.sprintf "%s.%s[%d].%s" (Resource.id_to_string rid) coll i sub

let read_slot prog slot =
  match slot with
  | Flat (rid, path) -> (
      match Program.find prog rid with
      | Some r -> Resource.get r path
      | None -> Value.Null)
  | Elem (rid, coll, i, sub) -> (
      match Program.find prog rid with
      | None -> Value.Null
      | Some r -> (
          match Resource.attr r coll with
          | Some (Value.List items) when i < List.length items -> (
              match List.nth items i with
              | Value.Block fields ->
                  Option.value ~default:Value.Null (List.assoc_opt sub fields)
              | _ -> Value.Null)
          | _ -> Value.Null))

let write_slot prog slot v =
  match slot with
  | Flat (rid, path) -> Program.update prog rid (fun r -> Resource.set r path v)
  | Elem (rid, coll, i, sub) ->
      Program.update prog rid (fun r ->
          match Resource.attr r coll with
          | Some (Value.List items) when i < List.length items ->
              let items =
                List.mapi
                  (fun j item ->
                    if j <> i then item
                    else
                      match item with
                      | Value.Block fields ->
                          let fields =
                            if List.mem_assoc sub fields then
                              List.map
                                (fun (k, old) -> if String.equal k sub then (k, v) else (k, old))
                                fields
                            else fields @ [ (sub, v) ]
                          in
                          Value.Block fields
                      | other -> other)
                  items
              in
              Resource.set r coll (Value.List items)
          | _ -> r)

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)
(* ------------------------------------------------------------------ *)

(* Fresh-name source for synthesized resources/values. Domain-local, and
   reset at every [negative] entry, so the names a mutation uses depend
   only on that mutation's own inputs — never on how many mutations ran
   before it or on which domain it runs. Names only need to be unique
   within one mutant program. *)
let fresh_counter = Domain.DLS.new_key (fun () -> ref 0)

let reset_fresh () = Domain.DLS.get fresh_counter := 0

let fresh_string prefix =
  let r = Domain.DLS.get fresh_counter in
  incr r;
  Printf.sprintf "%s-zn%d" prefix !r

(* Integer constants compared against [attr] anywhere in the checks. *)
let int_constants_for checks rtype attr =
  let acc = ref [] in
  let add i = if not (List.mem i !acc) then acc := i :: !acc in
  let scan_term relevant = function
    | Check.Const (Value.Int i) when relevant -> List.iter add [ i; i + 1; max 0 (i - 1) ]
    | _ -> ()
  in
  let rec scan_expr (check : Check.t) = function
    | Check.Cmp (_, t1, t2) | Check.Func (_, t1, t2) ->
        let mentions t =
          match t with
          | Check.Attr { Check.var; attr = a } ->
              Check.strip_indices a = attr
              && (match Check.binding_type check var with
                 | Some ty -> String.equal ty rtype
                 | None -> false)
          | _ -> false
        in
        let rel = mentions t1 || mentions t2 in
        scan_term rel t1;
        scan_term rel t2
    | Check.Not e -> scan_expr check e
    | Check.And es -> List.iter (scan_expr check) es
    | Check.Conn _ | Check.Path _ | Check.Coconn _ | Check.Copath _ -> ()
  in
  List.iter
    (fun (c : Check.t) ->
      scan_expr c c.Check.cond;
      scan_expr c c.Check.stmt)
    checks;
  !acc

(* Candidate values for a slot, original first. *)
let slot_domain provider kb checks prog slot =
  let original = read_slot prog slot in
  let rid = slot_resource slot in
  let rtype = rid.Resource.rtype in
  let attr =
    match slot with
    | Flat (_, path) -> path
    | Elem (_, coll, _, sub) -> coll ^ "." ^ sub
  in
  let info = Kb.attr_info kb ~rtype ~attr in
  let optional =
    match info with
    | Some { Kb.requirement = Some Schema.Optional; _ } -> true
    | Some { Kb.requirement = None; _ } -> true
    | _ -> false
  in
  let format = match info with Some i -> i.Kb.format | None -> Schema.Free_string in
  let base =
    match format with
    | Schema.Enum values -> List.map (fun s -> Value.Str s) values
    | Schema.Region ->
        (* regions already used in the program (so added resources can
           align), plus a couple of foreign ones (to break alignment) *)
        let in_program =
          List.filter_map
            (fun r ->
              match Resource.get r "location" with
              | Value.Str s -> Some (Value.Str s)
              | _ -> None)
            (Program.resources prog)
        in
        let foreign =
          List.filteri (fun i _ -> i < 2) provider.Provider.regions
          |> List.map (fun r -> Value.Str r)
        in
        in_program @ foreign
    | Schema.Cidr_format -> (
        (* the original, its adjacent sibling, CIDRs of same-attr peers
           (to manufacture overlaps), and a clearly-foreign block *)
        let peers =
          List.concat_map
            (fun r ->
              if String.equal r.Resource.rtype rtype then
                match Resource.get r attr with
                | Value.Str s -> (
                    match Cidr.of_string s with Some c -> [ c ] | None -> [])
                | _ -> []
              else [])
            (Program.resources prog)
        in
        match original with
        | Value.Str s -> (
            match Cidr.of_string s with
            | Some c ->
                List.map
                  (fun c -> Value.Str (Cidr.to_string c))
                  (c :: Cidr.adjacent c :: peers)
                @ [ Value.Str "192.168.250.0/24" ]
            | None -> [ Value.Str "192.168.250.0/24" ])
        | _ -> [ Value.Str "192.168.250.0/24" ])
    | Schema.Name_format ->
        (* reserved names give name checks something to bite on *)
        List.map (fun (n, _) -> Value.Str n) provider.Provider.reserved_names
        @ [ Value.Str (fresh_string "res") ]
    | Schema.Port_format | Schema.Id_format | Schema.Free_string -> (
        match info with
        | Some i ->
            List.filteri (fun idx _ -> idx < 3) i.Kb.observed |> List.map fst
        | None -> [])
  in
  let base =
    match original with
    | Value.Bool b -> [ Value.Bool b; Value.Bool (not b) ]
    | Value.Int i ->
        List.map
          (fun v -> Value.Int v)
          (List.sort_uniq Int.compare
             ((i :: i + 1 :: max 0 (i - 1) :: int_constants_for checks rtype attr)))
    | _ -> base
  in
  let with_null = if optional then base @ [ Value.Null ] else base in
  let dedup =
    List.fold_left
      (fun acc v -> if List.exists (Value.equal v) acc then acc else acc @ [ v ])
      []
      ((original :: with_null)
      @ (match format with
        | Schema.Enum _ | Schema.Region | Schema.Cidr_format | Schema.Name_format ->
            []
        | Schema.Port_format | Schema.Id_format | Schema.Free_string -> (
            (* give non-null alternatives to currently-null free slots *)
            match original with
            | Value.Null -> [ Value.Str (fresh_string "val") ]
            | _ -> [])))
  in
  dedup

(* ------------------------------------------------------------------ *)
(* Virtual resource additions for aggregation targets                  *)
(* ------------------------------------------------------------------ *)

let rename_suffix prog suffix =
  (* rename every resource with a suffix, rewriting references *)
  let resources = Program.resources prog in
  let renames =
    List.map
      (fun r ->
        let id = Resource.id r in
        (id, { id with Resource.rname = id.Resource.rname ^ suffix }))
      resources
  in
  let renamed =
    List.map
      (fun r ->
        let r =
          List.fold_left
            (fun r (old_id, new_id) -> Resource.rename_refs ~old_id ~new_id r)
            r renames
        in
        { r with Resource.rname = r.Resource.rname ^ suffix })
      resources
  in
  Program.of_resources renamed

let reserved_names provider = List.map fst provider.Provider.reserved_names

let freshen_names provider prog =
  (* give every resource a fresh, unique "name" attribute value —
     except provider-reserved names (GatewaySubnet, ...), which carry
     semantics and are unique per parent anyway *)
  Program.of_resources
    (List.map
       (fun r ->
         match Resource.attr r "name" with
         | Some (Value.Str s) when not (List.mem s (reserved_names provider)) ->
             Resource.set r "name" (Value.Str (fresh_string s))
         | _ -> r)
       (Program.resources prog))

(* Region of the majority of a program's resources. *)
let dominant_region prog =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Resource.get r "location" with
      | Value.Str loc ->
          Hashtbl.replace counts loc
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts loc))
      | _ -> ())
    (Program.resources prog);
  Hashtbl.fold
    (fun loc c best ->
      match best with
      | Some (_, c') when c' >= c -> best
      | _ -> Some (loc, c))
    counts None
  |> Option.map fst

(* Duplicate [src] (a resource of [prog]) with a fresh local name and a
   fresh "name" attribute; returns the duplicate. *)
let duplicate prog src_id =
  match Program.find prog src_id with
  | None -> None
  | Some r ->
      let rname = Program.fresh_name prog r.Resource.rtype in
      let dup = { r with Resource.rname = rname } in
      let dup =
        match Resource.attr dup "name" with
        | Some (Value.Str s) -> Resource.set dup "name" (Value.Str (fresh_string s))
        | _ -> dup
      in
      (* fresh nested ip_config / os_disk names to avoid collisions *)
      let dup =
        List.fold_left
          (fun dup path ->
            match Resource.get dup path with
            | Value.Str s when String.length s > 0 ->
                Resource.set dup path (Value.Str (fresh_string s))
            | _ -> dup)
          dup [ "os_disk.name" ]
      in
      Some dup

type addition_plan = {
  new_program : Program.t;
  added : Resource.id list;
}

(* Raise indegree(r, tau): r gains references to duplicated tau
   resources through the list attribute it already uses. *)
let raise_indegree prog r_id tau need =
  let graph = Graph.build prog in
  let existing =
    List.filter
      (fun (e : Graph.edge) -> String.equal e.Graph.dst.Resource.rtype tau)
      (Graph.edges_from graph r_id)
  in
  match existing with
  | [] -> None
  | edge :: _ -> (
      let list_attr = edge.Graph.src_attr in
      let rec add_copies prog added n =
        if n = 0 then Some (prog, added)
        else
          match duplicate prog edge.Graph.dst with
          | None -> None
          | Some dup ->
              let prog = Program.add prog dup in
              let dup_id = Resource.id dup in
              let prog =
                Program.update prog r_id (fun r ->
                    match Resource.get r list_attr with
                    | Value.List items ->
                        Resource.set r list_attr
                          (Value.List
                             (items
                             @ [
                                 Value.Ref
                                   {
                                     Value.rtype = dup_id.Resource.rtype;
                                     rname = dup_id.Resource.rname;
                                     attr = edge.Graph.dst_attr;
                                   };
                               ]))
                    | _ -> r)
              in
              add_copies prog (dup_id :: added) (n - 1)
      in
      match add_copies prog [] need with
      | Some (new_program, added) -> Some { new_program; added }
      | None -> None)

(* Raise outdegree(r, tau): duplicate existing referencing resources of
   type tau (keeping their reference to r). *)
let raise_outdegree prog r_id tau need =
  let graph = Graph.build prog in
  let existing =
    List.filter
      (fun (e : Graph.edge) -> String.equal e.Graph.src.Resource.rtype tau)
      (Graph.edges_to graph r_id)
  in
  match existing with
  | [] -> None
  | edge :: _ -> (
      let rec add_copies prog added n =
        if n = 0 then Some (prog, added)
        else
          match duplicate prog edge.Graph.src with
          | None -> None
          | Some dup -> add_copies (Program.add prog dup) (Resource.id dup :: added) (n - 1)
      in
      match add_copies prog [] need with
      | Some (new_program, added) -> Some { new_program; added }
      | None -> None)

(* Attach a resource of a type other than [tau] to r: instantiate a
   donor pattern from the corpus and remap its reference. *)
let attach_foreign ~provider ~kb ~donors prog (r_id : Resource.id) tau =
  let dst_type = r_id.Resource.rtype in
  let kinds =
    List.filter
      (fun (k : Kb.conn_kind) ->
        String.equal k.Kb.dst_type dst_type && not (String.equal k.Kb.src_type tau)
        && provider.Provider.find_schema k.Kb.src_type <> None)
      (Kb.conn_kinds kb)
  in
  let try_kind (k : Kb.conn_kind) =
    (* find a donor program containing such an edge *)
    List.find_map
      (fun (_, donor) ->
        let graph = Graph.build donor in
        List.find_map
          (fun (e : Graph.edge) ->
            if
              String.equal e.Graph.src.Resource.rtype k.Kb.src_type
              && String.equal e.Graph.src_attr k.Kb.src_attr
              && String.equal e.Graph.dst.Resource.rtype dst_type
            then begin
              (* donor closure of the source, excluding the old target's
                 own subtree where possible *)
              let closure = Mdc.prune donor ~keep:[ e.Graph.src ] in
              let closure = rename_suffix closure "_zn" in
              let closure = freshen_names provider closure in
              (* align the donor's regions with the target program *)
              let closure =
                match dominant_region prog with
                | None -> closure
                | Some region ->
                    Program.of_resources
                      (List.map
                         (fun r ->
                           match Resource.get r "location" with
                           | Value.Str _ ->
                               Resource.set r "location" (Value.Str region)
                           | _ -> r)
                         (Program.resources closure))
              in
              let src' =
                {
                  e.Graph.src with
                  Resource.rname = e.Graph.src.Resource.rname ^ "_zn";
                }
              in
              (* remap the donor edge so it points at r *)
              let closure =
                Program.update closure src' (fun r ->
                    Resource.rename_refs
                      ~old_id:{ e.Graph.dst with Resource.rname = e.Graph.dst.Resource.rname ^ "_zn" }
                      ~new_id:r_id r)
              in
              (* merge; drop donor resources that became unreferenced *)
              let merged =
                List.fold_left Program.add prog (Program.resources closure)
              in
              let pruned =
                Mdc.prune merged
                  ~keep:(src' :: List.map Resource.id (Program.resources prog))
              in
              let added =
                List.filter_map
                  (fun r ->
                    let id = Resource.id r in
                    if Program.mem prog id then None else Some id)
                  (Program.resources pruned)
              in
              if added = [] then None else Some { new_program = pruned; added }
            end
            else None)
          (Graph.edges graph))
      donors
  in
  List.find_map try_kind kinds

(* ------------------------------------------------------------------ *)
(* Strategy selection                                                  *)
(* ------------------------------------------------------------------ *)

let witness_resource (tp : Testcase.tp) var =
  List.assoc_opt var tp.Testcase.witness

(* Plan topology additions needed to make the target's statement
   falsifiable; returns the augmented program and added ids. *)
let plan_additions ~provider ~kb ~donors (tp : Testcase.tp) (target : Check.t) =
  let prog = tp.Testcase.program in
  let graph = Graph.build prog in
  let rec plan expr =
    match expr with
    | Check.Cmp (op, Check.Indeg (var, Graph.Type tau), Check.Const (Value.Int k)) -> (
        match witness_resource tp var with
        | None -> None
        | Some rid ->
            let current = Graph.indegree graph rid (Graph.Type tau) in
            let needed =
              match op with
              | Check.Le -> (k + 1) - current
              | Check.Eq -> if k = 0 then 1 else (k + 1) - current
              | Check.Lt -> k - current
              | Check.Ne | Check.Ge | Check.Gt -> -1
            in
            if needed <= 0 then Some { new_program = prog; added = [] }
            else raise_indegree prog rid tau needed)
    | Check.Cmp (op, Check.Outdeg (var, spec), Check.Const (Value.Int k)) -> (
        match witness_resource tp var with
        | None -> None
        | Some rid -> (
            match (spec, op) with
            | Graph.Type tau, (Check.Le | Check.Eq) ->
                let current = Graph.outdegree graph rid (Graph.Type tau) in
                let needed = (k + 1) - current in
                if needed <= 0 then Some { new_program = prog; added = [] }
                else raise_outdegree prog rid tau needed
            | Graph.Not_type tau, Check.Eq when k = 0 ->
                attach_foreign ~provider ~kb ~donors prog rid tau
            | _ -> None))
    | Check.And es ->
        (* violating any conjunct suffices; prefer attribute conjuncts
           (no additions), else the first satisfiable plan *)
        let attr_only =
          List.exists
            (fun e ->
              match e with
              | Check.Cmp (_, Check.Attr _, _)
              | Check.Cmp (_, _, Check.Attr _)
              | Check.Func _ | Check.Not _ ->
                  true
              | _ -> false)
            es
        in
        if attr_only then Some { new_program = prog; added = [] }
        else List.find_map plan es
    | Check.Cmp _ | Check.Func _ | Check.Not _ ->
        Some { new_program = prog; added = [] }
    | Check.Conn _ | Check.Path _ | Check.Coconn _ | Check.Copath _ ->
        (* topological statements would need edge rewiring; out of the
           currently supported mutation space *)
        None
  in
  plan target.Check.stmt

(* ------------------------------------------------------------------ *)
(* CSP assembly                                                        *)
(* ------------------------------------------------------------------ *)


(* slots referenced by a check within a program *)
let slots_of_check prog (check : Check.t) =
  let endpoints = Check.attrs_of_expr check.Check.cond @ Check.attrs_of_expr check.Check.stmt in
  List.concat_map
    (fun (e : Check.endpoint) ->
      match Check.binding_type check e.Check.var with
      | None -> []
      | Some ty ->
          let stripped = Check.strip_indices e.Check.attr in
          List.concat_map
            (fun r ->
              if not (String.equal r.Resource.rtype ty) then []
              else
                let rid = Resource.id r in
                (* indexed endpoint: one slot per element *)
                if String.contains e.Check.attr '[' then
                  match String.index_opt stripped '.' with
                  | Some i ->
                      let coll = String.sub stripped 0 i in
                      let sub =
                        String.sub stripped (i + 1) (String.length stripped - i - 1)
                      in
                      (match Resource.attr r coll with
                      | Some (Value.List items) ->
                          List.mapi (fun idx _ -> Elem (rid, coll, idx, sub)) items
                      | _ -> [])
                  | None -> []
                else [ Flat (rid, stripped) ])
            (Program.resources prog))
    endpoints

let relevant_check prog (check : Check.t) =
  let types = Program.types prog in
  List.for_all
    (fun (b : Check.binding) -> List.mem b.Check.btype types)
    check.Check.bindings

let dedup_slots slots =
  List.fold_left (fun acc s -> if List.mem s acc then acc else acc @ [ s ]) [] slots

let negative ?(options = default_options) ~provider ~kb ~donors ~target ~hard
    ~soft tp =
  let defaults = Arm.defaults provider in
  reset_fresh ();
  match plan_additions ~provider ~kb ~donors tp target with
  | None -> None
  | Some { new_program = base; added } -> (
      let hard = List.filter (relevant_check base) hard in
      let soft = List.filter (relevant_check base) soft in
      (* Bound the soft encoding: beyond a few dozen checks the solver
         spends its budget scoring rather than searching. Checks that
         constrain the freshly-added resources come first — they are the
         ones the mutation is most likely to trip. *)
      let added_types =
        List.sort_uniq String.compare
          (List.map (fun (id : Resource.id) -> id.Resource.rtype) added)
      in
      let binds_added (c : Check.t) =
        List.exists
          (fun (b : Check.binding) -> List.mem b.Check.btype added_types)
          c.Check.bindings
      in
      let soft =
        List.stable_sort
          (fun c1 c2 ->
            Int.compare
              (if binds_added c1 then 0 else 1)
              (if binds_added c2 then 0 else 1))
          soft
      in
      let soft = List.filteri (fun i _ -> i < 30) soft in
      let hard =
        List.stable_sort
          (fun c1 c2 ->
            Int.compare
              (if binds_added c1 then 0 else 1)
              (if binds_added c2 then 0 else 1))
          hard
      in
      let hard = List.filteri (fun i _ -> i < 40) hard in
      (* The mutation search space always spans the attributes the known
         checks talk about; the consider_others ablation only drops the
         corresponding constraints, leaving the solver free to wander. *)
      let all_checks = (target :: hard) @ soft in
      let slots = dedup_slots (List.concat_map (slots_of_check base) all_checks) in
      let hard = if options.consider_others then hard else [] in
      let soft = if options.consider_others then soft else [] in
      (* never mutate resources of unattended types *)
      let slots =
        List.filter
          (fun s ->
            provider.Provider.find_schema (slot_resource s).Resource.rtype
            <> None)
          slots
      in
      if slots = [] then None
      else begin
        let problem = Csp.create () in
        let target_slots = dedup_slots (slots_of_check base target) in
        let vars =
          List.map
            (fun slot ->
              let dom = slot_domain provider kb all_checks base slot in
              (* without change minimization the original value loses its
                 head-of-domain advantage: the solver takes whatever
                 comes first (Table 5's "no constraints" ablation) *)
              let dom =
                if options.minimize_changes then dom
                else
                  match dom with
                  | original :: rest -> rest @ [ original ]
                  | [] -> dom
              in
              let var = Csp.new_var problem ~name:(slot_name slot) dom in
              if List.mem slot target_slots then Csp.set_priority problem var 0;
              (slot, var))
            slots
        in
        let originals = List.map (fun slot -> (slot, read_slot base slot)) slots in
        if options.minimize_changes then
          List.iter
            (fun (slot, var) ->
              let original = read_slot base slot in
              let is_added =
                List.exists (Resource.equal_id (slot_resource slot)) added
              in
              Csp.set_value_cost problem var (fun v ->
                  if Value.equal v original then 0
                  else if is_added then 1
                  else
                    (* prefer minimal distance for ordered values *)
                    match (original, v) with
                    | Value.Int a, Value.Int b -> 1 + min 3 (abs (a - b))
                    | Value.Str a, Value.Str b -> (
                        match (Cidr.of_string a, Cidr.of_string b) with
                        | Some ca, Some cb ->
                            if Cidr.equal (Cidr.adjacent ca) cb then 1 else 2
                        | _ -> 2)
                    | _ -> 2))
            vars;
        (* A check only depends on the slots in its own scope, so each
           constraint materializes just those slots over the base
           program; unassigned slots keep their original values. *)
        let scoped_slots check =
          let check_slots = dedup_slots (slots_of_check base check) in
          List.filter_map
            (fun slot ->
              Option.map (fun var -> (slot, var)) (List.assoc_opt slot vars))
            check_slots
        in
        let eval_scoped scoped assignment_fn check =
          let prog =
            List.fold_left
              (fun prog (slot, var) ->
                match assignment_fn var with
                | v -> write_slot prog slot v
                | exception _ -> prog)
              base scoped
          in
          Eval.holds ~defaults (Graph.build prog) check
        in
        let add_constraint ~hard:is_hard name check ~negate =
          let scoped = scoped_slots check in
          let scope = List.map snd scoped in
          (* Search revisits the same scope assignments constantly;
             memoize the verdict per value tuple. *)
          let memo : (Value.t list, bool) Hashtbl.t = Hashtbl.create 64 in
          let pred lookup =
            let key = List.map (fun (_, var) -> lookup var) scoped in
            let holds =
              match Hashtbl.find_opt memo key with
              | Some h -> h
              | None ->
                  let h = eval_scoped scoped lookup check in
                  Hashtbl.replace memo key h;
                  h
            in
            if negate then not holds else holds
          in
          if is_hard then Csp.add_hard problem ~name scope pred
          else Csp.add_soft problem ~name ~weight:10 scope pred
        in
        add_constraint ~hard:true "target-violated" target ~negate:true;
        List.iter
          (fun h -> add_constraint ~hard:true ("hard:" ^ h.Check.cid) h ~negate:false)
          hard;
        List.iter
          (fun s -> add_constraint ~hard:false ("soft:" ^ s.Check.cid) s ~negate:false)
          soft;
        match Csp.solve ~node_budget:6_000 ~good_enough:6 problem with
        | None -> None
        | Some solution ->
            let final =
              List.fold_left
                (fun prog (slot, var) -> write_slot prog slot (Csp.value solution var))
                base vars
            in
            let final_graph = Graph.build final in
            let violated_soft =
              List.filter_map
                (fun s ->
                  if Eval.holds ~defaults final_graph s then None
                  else Some s.Check.cid)
                soft
            in
            let attr_changes =
              List.fold_left
                (fun acc (slot, original) ->
                  let is_added =
                    List.exists (Resource.equal_id (slot_resource slot)) added
                  in
                  if is_added then acc
                  else if Value.equal (read_slot final slot) original then acc
                  else acc + 1)
                0 originals
            in
            Some
              {
                program = final;
                violated_soft;
                attr_changes;
                topo_changes = List.length added;
              }
      end)
