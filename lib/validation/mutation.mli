(** Solver-aided negative test case generation (§4.1).

    Starting from a positive test case, the mutation engine encodes a
    finite search space over the attributes relevant to the target
    check and every other known check, plus — for aggregation targets —
    duplicated or donor-instantiated "virtual" resources that raise a
    degree past its hypothesized bound. A Max-CSP solve then finds the
    cheapest mutation that

    - violates the target check (hard),
    - keeps every check in [hard] satisfied (hard — the validated set
      [R_v] plus KB well-formedness, which is built into the domains),
    - minimizes violations of the [soft] checks (the rest of [R_c]) and
      the distance from the original program.

    [None] means UNSAT: no negative test case exists without breaking
    a hard check — the signal used by the scheduler's false-positive
    and indistinguishability logic.

    For tractability the encodings are bounded: only checks relevant to
    the test case's resource types are encoded, prioritized by whether
    they constrain freshly-added resources, and capped (40 hard / 30
    soft). The final test case is always re-validated against the full
    sets by the caller, so the caps trade completeness of the UNSAT
    signal for speed, never soundness of a produced case. *)

type options = {
  consider_others : bool;
      (** encode [hard]/[soft] checks at all (Table 5 ablation) *)
  minimize_changes : bool;
      (** prefer original values and minimal distance (Table 5 ablation) *)
}

val default_options : options

type result = {
  program : Zodiac_iac.Program.t;  (** the negative test case [t_n] *)
  violated_soft : string list;  (** cids of soft checks violated *)
  attr_changes : int;  (** mutated attributes on original resources *)
  topo_changes : int;  (** virtual resources added *)
}

val negative :
  ?options:options ->
  provider:Zodiac_provider.Provider.t ->
  kb:Zodiac_kb.Kb.t ->
  donors:(string * Zodiac_iac.Program.t) list ->
  target:Zodiac_spec.Check.t ->
  hard:Zodiac_spec.Check.t list ->
  soft:Zodiac_spec.Check.t list ->
  Testcase.tp ->
  result option
