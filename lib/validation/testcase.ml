module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Arm = Zodiac_cloud.Arm

type tp = {
  program : Program.t;
  original : Program.t;
  witness : Eval.assignment;
  source : string;
}

type entry = {
  e_source : string;
  e_prog : Program.t;
  e_graph : Graph.t;
  e_types : string list;
}

type index = entry list

let index corpus =
  List.map
    (fun (e_source, e_prog) ->
      {
        e_source;
        e_prog;
        e_graph = Graph.build e_prog;
        e_types = Program.types e_prog;
      })
    corpus

let check_types (check : Check.t) =
  List.sort_uniq String.compare
    (List.map (fun (b : Check.binding) -> b.Check.btype) check.Check.bindings)

let find_indexed ?(limit = 3) ~provider ~index check =
  let defaults = Arm.defaults provider in
  let wanted = check_types check in
  let found = ref [] in
  let count = ref 0 in
  (try
     List.iter
       (fun entry ->
         if !count >= limit * 3 then raise Exit;
         if List.for_all (fun ty -> List.mem ty entry.e_types) wanted then
           match Eval.first_witness ~defaults entry.e_graph check with
           | None -> ()
           | Some witness ->
               let keep = List.map snd witness in
               let mdc = Mdc.prune entry.e_prog ~keep in
               let mdc_graph = Graph.build mdc in
               (* the pruned program must still witness the check *)
               if
                 Eval.first_witness ~defaults mdc_graph check <> None
                 && Eval.holds ~defaults mdc_graph check
               then begin
                 incr count;
                 found :=
                   {
                     program = mdc;
                     original = entry.e_prog;
                     witness;
                     source = entry.e_source;
                   }
                   :: !found
               end)
       index
   with Exit -> ());
  List.sort
    (fun a b -> Int.compare (Program.size a.program) (Program.size b.program))
    !found
  |> List.filteri (fun i _ -> i < limit)

let find ?(limit = 3) ~provider ~corpus check =
  find_indexed ~limit ~provider ~index:(index corpus) check
