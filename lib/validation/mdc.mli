(** Minimal deployable configurations (§4.1, "Pruning IaC programs").

    Given a program and the resources witnessing a candidate check,
    the MDC keeps the witness plus every ancestor required to deploy it
    (transitively referenced resources), pruning siblings and dependent
    children. This shrinks SMT encodings and per-test deployment cost
    by the 3-9x reported in Table 6. *)

val prune :
  Zodiac_iac.Program.t ->
  keep:Zodiac_iac.Resource.id list ->
  Zodiac_iac.Program.t
(** Sub-program of [keep] and their transitive reference closure, in
    the original resource order. *)

type sizes = {
  attended : int;  (** resources of catalogue-known types *)
  unattended : int;  (** resources of types outside the catalogue *)
}

val measure : Zodiac_provider.Provider.t -> Zodiac_iac.Program.t -> sizes
