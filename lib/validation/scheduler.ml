module Program = Zodiac_iac.Program
module Graph = Zodiac_iac.Graph
module Check = Zodiac_spec.Check
module Eval = Zodiac_spec.Eval
module Kb = Zodiac_kb.Kb
module Arm = Zodiac_cloud.Arm
module Parallel = Zodiac_util.Parallel
module Telemetry = Zodiac_util.Telemetry

type deploy = Program.t -> bool
type deploy_batch = Program.t list -> bool list

type iteration = {
  iter : int;
  fp_deployable : int;
  fp_unsat : int;
  fp_no_instance : int;
  tp_single : int;
  tp_group : int;
  remaining : int;
}

type verdict =
  | Validated of { group : string list }
  | Falsified of [ `Deployable | `Unsat | `No_instance | `Stalled ]

type result = {
  validated : Check.t list;
  falsified : (Check.t * verdict) list;
  iterations : iteration list;
  deployments : int;
}

type config = {
  handle_indistinct : bool;
  use_partial_order : bool;
  max_iterations : int;
  tp_limit : int;
  donor_pool : int;
}

let default_config =
  {
    handle_indistinct = true;
    use_partial_order = true;
    max_iterations = 8;
    tp_limit = 2;
    donor_pool = 200;
  }

(* --- evaluation partial order (O4) ---------------------------------- *)

(* Types referenced by others deploy first; a check's rank is the
   highest rank among its bound types, and lower ranks are evaluated
   first. *)
let type_ranks kb =
  let ranks : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rank ty = Option.value ~default:0 (Hashtbl.find_opt ranks ty) in
  let changed = ref true in
  let guard = ref 0 in
  while !changed && !guard < 64 do
    changed := false;
    incr guard;
    List.iter
      (fun (k : Kb.conn_kind) ->
        let wanted = rank k.Kb.dst_type + 1 in
        if rank k.Kb.src_type < wanted then begin
          Hashtbl.replace ranks k.Kb.src_type wanted;
          changed := true
        end)
      (Kb.conn_kinds kb)
  done;
  rank

let check_rank rank (c : Check.t) =
  List.fold_left (fun acc (b : Check.binding) -> max acc (rank b.Check.btype)) 0 c.Check.bindings

(* --- main loop ------------------------------------------------------ *)

type state = {
  mutable rc : Check.t list;
  mutable rv : Check.t list;
  mutable falsified : (Check.t * verdict) list;
  mutable deployments : int;
  tp_cache : (string, Testcase.tp list) Hashtbl.t;
  index : Testcase.index;
}

let cids checks = List.map (fun (c : Check.t) -> c.Check.cid) checks

let find_tps st ~provider ~corpus:_ ~limit (c : Check.t) =
  match Hashtbl.find_opt st.tp_cache c.Check.cid with
  | Some tps -> tps
  | None ->
      let tps = Testcase.find_indexed ~limit ~provider ~index:st.index c in
      Hashtbl.replace st.tp_cache c.Check.cid tps;
      tps

let remove_from_rc st cid =
  st.rc <- List.filter (fun (c : Check.t) -> not (String.equal c.Check.cid cid)) st.rc

let in_rc st (c : Check.t) =
  List.exists (fun (c' : Check.t) -> String.equal c'.Check.cid c.Check.cid) st.rc

let mutate _st ~provider ~kb ~donors ~target ~hard ~soft tp =
  Mutation.negative ~provider ~kb ~donors ~target ~hard ~soft tp

(* Warm the t_p cache for [checks]: the misses are computed in parallel
   (index search is pure) and committed sequentially, after which
   [find_tps] is a read-only probe that any domain may run. *)
let ensure_tps ?jobs st ~provider ~limit checks =
  let missing =
    List.filter
      (fun (c : Check.t) -> not (Hashtbl.mem st.tp_cache c.Check.cid))
      checks
  in
  let found =
    Parallel.map ?jobs
      (fun (c : Check.t) -> Testcase.find_indexed ~limit ~provider ~index:st.index c)
      missing
  in
  List.iter2
    (fun (c : Check.t) tps -> Hashtbl.replace st.tp_cache c.Check.cid tps)
    missing found

(* Union-find style grouping of mutually-inseparable checks. *)
let compute_groups ?jobs st ~provider ~kb ~donors ~corpus ~tp_limit =
  ensure_tps ?jobs st ~provider ~limit:tp_limit st.rc;
  let rn_of (c : Check.t) =
    match find_tps st ~provider ~corpus ~limit:tp_limit c with
    | [] -> []
    | tp :: _ -> (
        let soft =
          List.filter (fun (c' : Check.t) -> not (String.equal c'.Check.cid c.Check.cid)) st.rc
        in
        match mutate st ~provider ~kb ~donors ~target:c ~hard:st.rv ~soft tp with
        | None -> []
        | Some res -> c.Check.cid :: res.Mutation.violated_soft)
  in
  let rns =
    Parallel.map ?jobs (fun (c : Check.t) -> (c.Check.cid, rn_of c)) st.rc
  in
  let mutual (c1 : Check.t) (c2 : Check.t) =
    let rn_for (c : Check.t) =
      Option.value ~default:[] (List.assoc_opt c.Check.cid rns)
    in
    List.mem c2.Check.cid (rn_for c1) && List.mem c1.Check.cid (rn_for c2)
  in
  (* build candidate groups by transitive closure of mutuality *)
  let groups = ref [] in
  List.iter
    (fun c ->
      let joined = ref false in
      groups :=
        List.map
          (fun group ->
            if (not !joined) && List.exists (mutual c) group then begin
              joined := true;
              c :: group
            end
            else group)
          !groups;
      if not !joined then
        let mates =
          List.filter
            (fun (c' : Check.t) ->
              (not (String.equal c'.Check.cid c.Check.cid)) && mutual c c')
            st.rc
        in
        if mates <> [] then groups := (c :: mates) :: !groups)
    st.rc;
  (* refine: a member is separable if some t_p admits a t_n conforming
     to all other group members (hard) *)
  let refined =
    Parallel.map ?jobs
      (fun group ->
        List.filter
          (fun (c : Check.t) ->
            let others =
              List.filter
                (fun (c' : Check.t) -> not (String.equal c'.Check.cid c.Check.cid))
                group
            in
            let separable =
              List.exists
                (fun tp ->
                  match
                    mutate st ~provider ~kb ~donors ~target:c
                      ~hard:(st.rv @ others) ~soft:[] tp
                  with
                  | Some _ -> true
                  | None -> false)
                (find_tps st ~provider ~corpus ~limit:tp_limit c)
            in
            not separable)
          group)
      !groups
  in
  List.filter (fun g -> List.length g >= 2) refined

(* Each pass is batch-synchronous: every surviving check computes its
   mutant from the same pass-start snapshot of (R_c, R_v) — a pure
   computation fanned out across domains — then the whole mutant batch
   deploys in snapshot order, and verdicts are committed sequentially in
   that same order. The result is identical for every [jobs] value; it
   differs from a per-check-interleaved schedule only in that mutants are
   planned against the snapshot rather than against mid-pass removals,
   which batching (the paper's concurrent validation against Azure)
   inherently requires. *)

type 'a plan = No_instance | Unsat | Planned of 'a

let run ?(config = default_config) ?(telemetry = Telemetry.null) ?jobs
    ?deploy_batch ~provider ~kb ~corpus ~deploy candidates =
  let deploy_batch =
    match deploy_batch with Some f -> f | None -> List.map deploy
  in
  let donors =
    List.filteri (fun i _ -> i < config.donor_pool) corpus
  in
  let st =
    {
      rc = candidates;
      rv = [];
      falsified = [];
      deployments = 0;
      tp_cache = Hashtbl.create 256;
      index = Testcase.index corpus;
    }
  in
  let rank = type_ranks kb in
  let order checks =
    if config.use_partial_order then
      List.stable_sort
        (fun c1 c2 -> Int.compare (check_rank rank c1) (check_rank rank c2))
        checks
    else checks
  in
  st.rc <- order st.rc;
  let run_batch planned =
    st.deployments <- st.deployments + List.length planned;
    Telemetry.count telemetry "scheduler.batches" 1;
    Telemetry.count telemetry "scheduler.batch_programs" (List.length planned);
    deploy_batch planned
  in
  let iterations = ref [] in
  let iter_no = ref 0 in
  let progress = ref true in
  while st.rc <> [] && !progress && !iter_no < config.max_iterations do
    incr iter_no;
    let fp_deployable = ref 0 in
    let fp_unsat = ref 0 in
    let fp_no_instance = ref 0 in
    let tp_single = ref 0 in
    let tp_group = ref 0 in
    (* ---- false positive removal pass ---- *)
    let rc0 = order st.rc in
    let rv0 = st.rv in
    ensure_tps ?jobs st ~provider ~limit:config.tp_limit rc0;
    let plans =
      Parallel.map ?jobs
        (fun (c : Check.t) ->
          match find_tps st ~provider ~corpus ~limit:config.tp_limit c with
          | [] -> No_instance
          | tps -> (
              let soft =
                List.filter
                  (fun (c' : Check.t) -> not (String.equal c'.Check.cid c.Check.cid))
                  rc0
              in
              let results =
                List.filter_map
                  (fun tp ->
                    mutate st ~provider ~kb ~donors ~target:c ~hard:rv0 ~soft tp)
                  tps
              in
              match results with [] -> Unsat | res :: _ -> Planned res))
        rc0
    in
    let to_deploy =
      List.filter_map
        (function Planned res -> Some res.Mutation.program | _ -> None)
        plans
    in
    let verdicts = ref (run_batch to_deploy) in
    let next_verdict () =
      match !verdicts with
      | v :: rest ->
          verdicts := rest;
          v
      | [] -> assert false
    in
    List.iter2
      (fun (c : Check.t) plan ->
        match plan with
        | No_instance ->
            if in_rc st c then begin
              remove_from_rc st c.Check.cid;
              st.falsified <- (c, Falsified `No_instance) :: st.falsified;
              incr fp_no_instance
            end
        | Unsat ->
            if in_rc st c then begin
              remove_from_rc st c.Check.cid;
              st.falsified <- (c, Falsified `Unsat) :: st.falsified;
              incr fp_unsat
            end
        | Planned res ->
            let deployable = next_verdict () in
            if in_rc st c && deployable then begin
              (* deployable: c and every violated candidate are FPs *)
              let victims =
                c.Check.cid :: res.Mutation.violated_soft
                |> List.filter (fun cid ->
                       List.exists
                         (fun (c' : Check.t) -> String.equal c'.Check.cid cid)
                         st.rc)
              in
              List.iter
                (fun cid ->
                  match
                    List.find_opt
                      (fun (c' : Check.t) -> String.equal c'.Check.cid cid)
                      st.rc
                  with
                  | Some victim ->
                      remove_from_rc st cid;
                      st.falsified <-
                        (victim, Falsified `Deployable) :: st.falsified;
                      incr fp_deployable
                  | None -> ())
                victims
            end)
      rc0 plans;
    (* ---- indistinguishable groups (O3) ---- *)
    let groups =
      if config.handle_indistinct then
        compute_groups ?jobs st ~provider ~kb ~donors ~corpus
          ~tp_limit:config.tp_limit
      else []
    in
    let group_of (cid : string) =
      List.find_opt
        (fun g -> List.exists (fun (c : Check.t) -> String.equal c.Check.cid cid) g)
        groups
    in
    (* ---- true positive validation pass ---- *)
    let rc1 = order st.rc in
    let rv1 = st.rv in
    ensure_tps ?jobs st ~provider ~limit:config.tp_limit rc1;
    let plans =
      Parallel.map ?jobs
        (fun (c : Check.t) ->
          match find_tps st ~provider ~corpus ~limit:config.tp_limit c with
          | [] -> None
          | tp :: _ ->
              let soft =
                List.filter
                  (fun (c' : Check.t) -> not (String.equal c'.Check.cid c.Check.cid))
                  rc1
              in
              mutate st ~provider ~kb ~donors ~target:c ~hard:rv1 ~soft tp)
        rc1
    in
    let to_deploy =
      List.filter_map (Option.map (fun res -> res.Mutation.program)) plans
    in
    let verdicts = ref (run_batch to_deploy) in
    let next_verdict () =
      match !verdicts with
      | v :: rest ->
          verdicts := rest;
          v
      | [] -> assert false
    in
    List.iter2
      (fun (c : Check.t) plan ->
        match plan with
        | None -> ()
        | Some res ->
            let deployable = next_verdict () in
            if in_rc st c && not deployable then begin
              let rn =
                c.Check.cid
                :: List.filter
                     (fun cid ->
                       List.exists
                         (fun (c' : Check.t) -> String.equal c'.Check.cid cid)
                         st.rc)
                     res.Mutation.violated_soft
              in
              if List.length rn = 1 then begin
                remove_from_rc st c.Check.cid;
                st.rv <- c :: st.rv;
                incr tp_single
              end
              else
                match group_of c.Check.cid with
                | Some group
                  when List.for_all
                         (fun cid ->
                           List.exists
                             (fun (g : Check.t) -> String.equal g.Check.cid cid)
                             group)
                         rn ->
                    (* validate every member of R_n together *)
                    List.iter
                      (fun cid ->
                        match
                          List.find_opt
                            (fun (c' : Check.t) -> String.equal c'.Check.cid cid)
                            st.rc
                        with
                        | Some mate ->
                            remove_from_rc st cid;
                            st.rv <- mate :: st.rv;
                            incr tp_group
                        | None -> ())
                      rn
                | Some _ | None -> ()
            end)
      rc1 plans;
    let made_progress =
      !fp_deployable + !fp_unsat + !fp_no_instance + !tp_single + !tp_group > 0
    in
    progress := made_progress;
    iterations :=
      {
        iter = !iter_no;
        fp_deployable = !fp_deployable;
        fp_unsat = !fp_unsat;
        fp_no_instance = !fp_no_instance;
        tp_single = !tp_single;
        tp_group = !tp_group;
        remaining = List.length st.rc;
      }
      :: !iterations
  done;
  (* whatever is left could not be resolved *)
  List.iter
    (fun (c : Check.t) -> st.falsified <- (c, Falsified `Stalled) :: st.falsified)
    st.rc;
  Telemetry.count telemetry "scheduler.iterations" (List.length !iterations);
  Telemetry.count telemetry "scheduler.deployments" st.deployments;
  {
    validated = List.rev st.rv;
    falsified = List.rev st.falsified;
    iterations = List.rev !iterations;
    deployments = st.deployments;
  }

let counterexample_pass ?jobs ~provider ~corpus ~deploy validated =
  let defaults = Arm.defaults provider in
  (* Pure phase, fanned out per check: collect the corpus programs whose
     minimal deployable counterexample still violates the check. *)
  let mdcs_of (c : Check.t) =
    List.filter_map
      (fun (_, prog) ->
        let graph = Graph.build prog in
        match Eval.violations ~defaults graph c with
        | [] -> None
        | violation :: _ ->
            let mdc = Mdc.prune prog ~keep:(List.map snd violation) in
            let mdc_graph = Graph.build mdc in
            if Eval.holds ~defaults mdc_graph c then None else Some mdc)
      corpus
  in
  let candidates = Parallel.map ?jobs mdcs_of validated in
  (* Deploy phase, sequential with the same early exit as a fully
     sequential scan: per check, in corpus order, stop at the first
     deployable counterexample. *)
  let kept, exposed =
    List.partition
      (fun ((_ : Check.t), mdcs) -> not (List.exists deploy mdcs))
      (List.combine validated candidates)
  in
  (List.map fst kept, List.map fst exposed)

(* silence unused-warning for cids helper kept for debugging *)
let _ = cids
