(** Positive test cases: corpus programs witnessing a candidate check
    (its condition and statement both hold), pruned to a minimal
    deployable configuration. *)

type tp = {
  program : Zodiac_iac.Program.t;  (** the MDC *)
  original : Zodiac_iac.Program.t;  (** the un-pruned source program *)
  witness : Zodiac_spec.Eval.assignment;
  source : string;  (** project name *)
}

val find :
  ?limit:int ->
  provider:Zodiac_provider.Provider.t ->
  corpus:(string * Zodiac_iac.Program.t) list ->
  Zodiac_spec.Check.t ->
  tp list
(** Up to [limit] (default 3) positive test cases from distinct
    projects, smallest MDC first. The MDC is re-checked to still
    witness the check after pruning. *)

type index
(** A corpus with pre-built graphs and type signatures, so repeated
    lookups don't rebuild graphs per (check, program) pair. *)

val index : (string * Zodiac_iac.Program.t) list -> index

val find_indexed :
  ?limit:int ->
  provider:Zodiac_provider.Provider.t ->
  index:index ->
  Zodiac_spec.Check.t ->
  tp list
