module Prng = Zodiac_util.Prng
module Program = Zodiac_iac.Program
module Provider = Zodiac_provider.Provider
module Build = Provider.Build

type project = {
  pname : string;
  scenario : string;
  program : Zodiac_iac.Program.t;
  injected : string list;
}

let scenario_names = Provider.scenario_names

(* ------------- violation injection ----------------------------------- *)

(* Each injector returns the mutated program when applicable; try them
   in a shuffled order until one fires. *)
let inject injectors rng prog =
  let shuffled = Prng.shuffle_list rng injectors in
  let rec try_injectors = function
    | [] -> (prog, None)
    | (label, injector) :: rest -> (
        match injector rng prog with
        | Some mutated -> (mutated, Some label)
        | None -> try_injectors rest)
  in
  try_injectors shuffled

(* ------------- top level --------------------------------------------- *)

let generate_one ~provider ?(violation_rate = 0.04) rng index =
  let scenario_name, builder =
    Prng.weighted rng
      (List.map (fun (w, s) -> (w, s)) provider.Provider.scenarios)
  in
  let ctx = Build.new_ctx ~regions:provider.Provider.regions rng in
  builder ctx;
  provider.Provider.add_unattended ctx;
  let program = Program.of_resources ctx.Build.resources in
  let program, injected =
    if Prng.chance rng violation_rate then
      let program, label = inject provider.Provider.injectors rng program in
      (program, Option.to_list label)
    else (program, [])
  in
  {
    pname = Printf.sprintf "repo-%04d-%s" index scenario_name;
    scenario = scenario_name;
    program;
    injected;
  }

let generate_range ~provider ?(violation_rate = 0.04) ?jobs ~seed ~lo ~hi () =
  (* Each project gets its own generator derived from [(seed, index)], so
     projects are independent work items: the corpus is identical whether
     they are built sequentially, across domains, or — because indices
     below [lo] are never touched — as an extension of a shorter corpus
     under the same seed. corpus(seed, n) is a strict prefix of
     corpus(seed, m) for n < m, which is what the warm-start cache's
     incremental path relies on. *)
  Zodiac_util.Parallel.map ?jobs
    (fun i -> generate_one ~provider ~violation_rate (Prng.derive seed i) i)
    (List.init (max 0 (hi - lo)) (fun k -> lo + k))

let generate ~provider ?(violation_rate = 0.04) ?jobs ~seed ~count () =
  generate_range ~provider ~violation_rate ?jobs ~seed ~lo:0 ~hi:count ()

let conforming ~provider ?jobs ~seed ~count () =
  generate ~provider ~violation_rate:0.0 ?jobs ~seed ~count ()

module Codec = Zodiac_util.Codec

let write_project b p =
  Codec.write_string b p.pname;
  Codec.write_string b p.scenario;
  Program.write b p.program;
  Codec.write_list Codec.write_string b p.injected

let read_project s =
  let pname = Codec.read_string s in
  let scenario = Codec.read_string s in
  let program = Program.read s in
  let injected = Codec.read_list Codec.read_string s in
  { pname; scenario; program; injected }

let projects_artifact =
  {
    Zodiac_util.Stage.write = (fun b ps -> Codec.write_list write_project b ps);
    read = Codec.read_list read_project;
  }
