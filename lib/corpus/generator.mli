(** Synthetic IaC repository generator.

    Stands in for the paper's 26k crawled GitHub repositories. Projects
    are drawn from the provider's weighted scenario families
    ({!Zodiac_provider.Provider.scenarios}) — for Azure, fourteen
    realistic shapes (web tiers,
    hub-and-spoke networks, VPN sites, AKS clusters, storage pipelines,
    application-gateway frontends, data tiers, VM fleets, hardened
    networks, DNS setups, messaging stacks, PaaS apps). Generation is
    conforming-by-construction — locations agree, CIDRs are carved
    disjointly from the VPC space, skus come from the documentation
    tables — and then a configurable fraction of projects get a
    violation injected, reproducing the statistical structure mining
    relies on (high confidence with a tail of counterexamples).

    The generator also skews option usage the way real corpora do:
    e.g. the [VM.create = "Attach"] path is vanishingly rare, which is
    exactly what produces the paper's §5.6 false positive. *)

type project = {
  pname : string;
  scenario : string;
  program : Zodiac_iac.Program.t;
  injected : string list;
      (** labels of violations injected into this project (empty for a
          conforming project) *)
}

val scenario_names : Zodiac_provider.Provider.t -> string list

val generate_one :
  provider:Zodiac_provider.Provider.t ->
  ?violation_rate:float ->
  Zodiac_util.Prng.t ->
  int ->
  project
(** [generate_one rng index] builds one project; the scenario is chosen
    from a weighted distribution. [violation_rate] (default 0.04) is
    the probability that a violation is injected. *)

val generate :
  provider:Zodiac_provider.Provider.t ->
  ?violation_rate:float ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  project list
(** A deterministic corpus of [count] projects. Project [i] is generated
    from the independent stream [Prng.derive seed i], so the corpus is
    identical for every [jobs] value (default: recommended domain count). *)

val generate_range :
  provider:Zodiac_provider.Provider.t ->
  ?violation_rate:float ->
  ?jobs:int ->
  seed:int ->
  lo:int ->
  hi:int ->
  unit ->
  project list
(** Projects [lo, hi) of the corpus [generate ~seed ~count:hi ()] — per-
    index PRNG streams make [generate ~count:n] a strict prefix of
    [generate ~count:m] for [n < m], so a cached corpus extends
    incrementally: [cached_prefix @ generate_range ~lo:n ~hi:m ()]. *)

val write_project : Zodiac_util.Codec.sink -> project -> unit
(** Binary codec for the warm-start cache; exact inverse of
    {!read_project}. *)

val read_project : Zodiac_util.Codec.src -> project
(** @raise Zodiac_util.Codec.Corrupt on malformed input. *)

val projects_artifact : project list Zodiac_util.Stage.artifact
(** The corpus stage's cache binding: a length-prefixed project list
    ({!write_project}/{!read_project}) for {!Zodiac_util.Stage.run}. *)

val conforming :
  provider:Zodiac_provider.Provider.t ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  project list
(** A corpus with no injected violations (used for clean baselines). *)
