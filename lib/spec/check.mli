(** The semantic-check assertion language (Figure 4 of the paper).

    A check is [let r1:t1, ..., rn:tn in cond => stmt]: for every
    (injective) assignment of the bound variables to resources of the
    declared types in an IaC graph, if [cond] holds then [stmt] must
    hold.

    Attribute paths may carry index variables ([rule\[i\].priority]);
    these are implicitly universally quantified over the elements of the
    traversed lists, which is how intra-resource checks over repeated
    blocks (security rules, routes) are expressed. *)

type binding = { var : string; btype : string }

type endpoint = { var : string; attr : string }
(** [r.attr] — [attr] is a dotted path, possibly with index variables. *)

type cmp_op = Eq | Ne | Le | Ge | Lt | Gt

type func = Overlap | Contain | Length

type term =
  | Const of Zodiac_iac.Value.t
  | Attr of endpoint
  | Indeg of string * Zodiac_iac.Graph.type_spec
  | Outdeg of string * Zodiac_iac.Graph.type_spec

type expr =
  | Conn of endpoint * endpoint
  | Path of string * string
  | Coconn of (endpoint * endpoint) * (endpoint * endpoint)
  | Copath of (string * string) * (string * string)
  | Cmp of cmp_op * term * term
  | Func of func * term * term
      (** [Func (Length, t1, t2)] asserts the length of list/string [t1]
          equals [t2]; [Overlap]/[Contain] operate on CIDR values. *)
  | Not of expr
  | And of expr list

type category =
  | Intra  (** single resource, attribute-only *)
  | Inter_no_agg  (** multiple resources, no counting *)
  | Inter_agg  (** uses indegree/outdegree *)
  | Interpolated  (** quantitative check completed by the LLM oracle *)

type source = Mined | Llm_interpolated | Authored

type t = {
  cid : string;  (** stable identifier *)
  bindings : binding list;
  cond : expr;
  stmt : expr;
  source : source;
}

val make : ?cid:string -> ?source:source -> binding list -> expr -> expr -> t
(** When [cid] is omitted a digest of the printed form is used, so
    structurally equal checks share an id. *)

val category : t -> category
(** Structural classification, with {!Llm_interpolated} provenance
    taking precedence. *)

val binding_type : t -> string -> string option
(** Declared type of a bound variable. *)

val vars_of_expr : expr -> string list
(** Bound variables mentioned, without duplicates. *)

val attrs_of_expr : expr -> endpoint list
(** Every attribute endpoint mentioned in the expression. *)

val index_vars : t -> string list
(** Index variables (e.g. ["i"; "j"]) appearing in attribute paths. *)

val strip_indices : string -> string
(** Remove ["\[i\]"] markers from an attribute path. *)

val write : Zodiac_util.Codec.sink -> t -> unit
(** Binary codec for the warm-start cache. The cid is stored verbatim,
    so {!read} returns a field-identical check. *)

val read : Zodiac_util.Codec.src -> t
(** @raise Zodiac_util.Codec.Corrupt on malformed input. *)

val equal : t -> t -> bool
(** Structural equality of bindings/cond/stmt (ignores id and source). *)

val compare : t -> t -> int
