module Value = Zodiac_iac.Value
module Graph = Zodiac_iac.Graph

type binding = { var : string; btype : string }

type endpoint = { var : string; attr : string }

type cmp_op = Eq | Ne | Le | Ge | Lt | Gt

type func = Overlap | Contain | Length

type term =
  | Const of Value.t
  | Attr of endpoint
  | Indeg of string * Graph.type_spec
  | Outdeg of string * Graph.type_spec

type expr =
  | Conn of endpoint * endpoint
  | Path of string * string
  | Coconn of (endpoint * endpoint) * (endpoint * endpoint)
  | Copath of (string * string) * (string * string)
  | Cmp of cmp_op * term * term
  | Func of func * term * term
  | Not of expr
  | And of expr list

type category = Intra | Inter_no_agg | Inter_agg | Interpolated

type source = Mined | Llm_interpolated | Authored

type t = {
  cid : string;
  bindings : binding list;
  cond : expr;
  stmt : expr;
  source : source;
}

(* Canonical rendering used only for digesting into a stable id. *)
let tyspec_render = function
  | Graph.Type ty -> ty
  | Graph.Not_type ty -> "!" ^ ty

let term_render = function
  | Const v -> Value.to_string v
  | Attr e -> Printf.sprintf "%s.%s" e.var e.attr
  | Indeg (v, ty) -> Printf.sprintf "indeg(%s,%s)" v (tyspec_render ty)
  | Outdeg (v, ty) -> Printf.sprintf "outdeg(%s,%s)" v (tyspec_render ty)

let cmp_render = function
  | Eq -> "=="
  | Ne -> "!="
  | Le -> "<="
  | Ge -> ">="
  | Lt -> "<"
  | Gt -> ">"

let func_render = function Overlap -> "overlap" | Contain -> "contain" | Length -> "length"

let rec expr_render = function
  | Conn (a, b) -> Printf.sprintf "conn(%s.%s->%s.%s)" a.var a.attr b.var b.attr
  | Path (a, b) -> Printf.sprintf "path(%s->%s)" a b
  | Coconn ((a, b), (c, d)) ->
      Printf.sprintf "coconn(%s.%s->%s.%s,%s.%s->%s.%s)" a.var a.attr b.var b.attr
        c.var c.attr d.var d.attr
  | Copath ((a, b), (c, d)) -> Printf.sprintf "copath(%s->%s,%s->%s)" a b c d
  | Cmp (op, t1, t2) ->
      Printf.sprintf "%s%s%s" (term_render t1) (cmp_render op) (term_render t2)
  | Func (f, t1, t2) ->
      Printf.sprintf "%s(%s,%s)" (func_render f) (term_render t1) (term_render t2)
  | Not e -> "!" ^ expr_render e
  | And es -> String.concat "&&" (List.map expr_render es)

let render c =
  Printf.sprintf "let %s in %s => %s"
    (String.concat ","
       (List.map
          (fun (b : binding) -> Printf.sprintf "%s:%s" b.var b.btype)
          c.bindings))
    (expr_render c.cond) (expr_render c.stmt)

(* FNV-1a over the canonical rendering. *)
let digest s =
  let h = ref 0x3f29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  Printf.sprintf "c%08x" (!h land 0xFFFFFFFF)

let make ?cid ?(source = Authored) bindings cond stmt =
  let proto = { cid = ""; bindings; cond; stmt; source } in
  let cid = match cid with Some id -> id | None -> digest (render proto) in
  { proto with cid }

(* Binary codec for the warm-start cache. The cid is stored verbatim so
   a decoded check is field-identical to the encoded one (no re-digest). *)
module Codec = Zodiac_util.Codec

let write_endpoint b (e : endpoint) =
  Codec.write_string b e.var;
  Codec.write_string b e.attr

let read_endpoint s =
  let var = Codec.read_string s in
  let attr = Codec.read_string s in
  { var; attr }

let write_tyspec b = function
  | Graph.Type ty ->
      Codec.write_byte b 0;
      Codec.write_string b ty
  | Graph.Not_type ty ->
      Codec.write_byte b 1;
      Codec.write_string b ty

let read_tyspec s =
  match Codec.read_byte s with
  | 0 -> Graph.Type (Codec.read_string s)
  | 1 -> Graph.Not_type (Codec.read_string s)
  | n -> Codec.corrupt "bad type_spec tag %d" n

let cmp_code = function Eq -> 0 | Ne -> 1 | Le -> 2 | Ge -> 3 | Lt -> 4 | Gt -> 5

let cmp_of_code = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Le
  | 3 -> Ge
  | 4 -> Lt
  | 5 -> Gt
  | n -> Codec.corrupt "bad cmp_op tag %d" n

let func_code = function Overlap -> 0 | Contain -> 1 | Length -> 2

let func_of_code = function
  | 0 -> Overlap
  | 1 -> Contain
  | 2 -> Length
  | n -> Codec.corrupt "bad func tag %d" n

let write_term b = function
  | Const v ->
      Codec.write_byte b 0;
      Value.write b v
  | Attr e ->
      Codec.write_byte b 1;
      write_endpoint b e
  | Indeg (v, ty) ->
      Codec.write_byte b 2;
      Codec.write_string b v;
      write_tyspec b ty
  | Outdeg (v, ty) ->
      Codec.write_byte b 3;
      Codec.write_string b v;
      write_tyspec b ty

let read_term s =
  match Codec.read_byte s with
  | 0 -> Const (Value.read s)
  | 1 -> Attr (read_endpoint s)
  | 2 ->
      let v = Codec.read_string s in
      Indeg (v, read_tyspec s)
  | 3 ->
      let v = Codec.read_string s in
      Outdeg (v, read_tyspec s)
  | n -> Codec.corrupt "bad term tag %d" n

let rec write_expr b = function
  | Conn (a, e) ->
      Codec.write_byte b 0;
      write_endpoint b a;
      write_endpoint b e
  | Path (a, e) ->
      Codec.write_byte b 1;
      Codec.write_string b a;
      Codec.write_string b e
  | Coconn ((a, e), (c, d)) ->
      Codec.write_byte b 2;
      write_endpoint b a;
      write_endpoint b e;
      write_endpoint b c;
      write_endpoint b d
  | Copath ((a, e), (c, d)) ->
      Codec.write_byte b 3;
      Codec.write_string b a;
      Codec.write_string b e;
      Codec.write_string b c;
      Codec.write_string b d
  | Cmp (op, t1, t2) ->
      Codec.write_byte b 4;
      Codec.write_byte b (cmp_code op);
      write_term b t1;
      write_term b t2
  | Func (f, t1, t2) ->
      Codec.write_byte b 5;
      Codec.write_byte b (func_code f);
      write_term b t1;
      write_term b t2
  | Not e ->
      Codec.write_byte b 6;
      write_expr b e
  | And es ->
      Codec.write_byte b 7;
      Codec.write_list write_expr b es

let rec read_expr s =
  match Codec.read_byte s with
  | 0 ->
      let a = read_endpoint s in
      let e = read_endpoint s in
      Conn (a, e)
  | 1 ->
      let a = Codec.read_string s in
      let e = Codec.read_string s in
      Path (a, e)
  | 2 ->
      let a = read_endpoint s in
      let e = read_endpoint s in
      let c = read_endpoint s in
      let d = read_endpoint s in
      Coconn ((a, e), (c, d))
  | 3 ->
      let a = Codec.read_string s in
      let e = Codec.read_string s in
      let c = Codec.read_string s in
      let d = Codec.read_string s in
      Copath ((a, e), (c, d))
  | 4 ->
      let op = cmp_of_code (Codec.read_byte s) in
      let t1 = read_term s in
      let t2 = read_term s in
      Cmp (op, t1, t2)
  | 5 ->
      let f = func_of_code (Codec.read_byte s) in
      let t1 = read_term s in
      let t2 = read_term s in
      Func (f, t1, t2)
  | 6 -> Not (read_expr s)
  | 7 -> And (Codec.read_list read_expr s)
  | n -> Codec.corrupt "bad expr tag %d" n

let source_code = function Mined -> 0 | Llm_interpolated -> 1 | Authored -> 2

let source_of_code = function
  | 0 -> Mined
  | 1 -> Llm_interpolated
  | 2 -> Authored
  | n -> Codec.corrupt "bad source tag %d" n

let write b c =
  Codec.write_string b c.cid;
  Codec.write_list
    (fun b (bd : binding) ->
      Codec.write_string b bd.var;
      Codec.write_string b bd.btype)
    b c.bindings;
  write_expr b c.cond;
  write_expr b c.stmt;
  Codec.write_byte b (source_code c.source)

let read s =
  let cid = Codec.read_string s in
  let bindings =
    Codec.read_list
      (fun s ->
        let var = Codec.read_string s in
        let btype = Codec.read_string s in
        { var; btype })
      s
  in
  let cond = read_expr s in
  let stmt = read_expr s in
  let source = source_of_code (Codec.read_byte s) in
  { cid; bindings; cond; stmt; source }

let rec vars_of_expr_acc acc = function
  | Conn (a, b) -> add a.var (add b.var acc)
  | Path (a, b) -> add a (add b acc)
  | Coconn ((a, b), (c, d)) -> add a.var (add b.var (add c.var (add d.var acc)))
  | Copath ((a, b), (c, d)) -> add a (add b (add c (add d acc)))
  | Cmp (_, t1, t2) | Func (_, t1, t2) -> term_vars (term_vars acc t1) t2
  | Not e -> vars_of_expr_acc acc e
  | And es -> List.fold_left vars_of_expr_acc acc es

and term_vars acc = function
  | Const _ -> acc
  | Attr e -> add e.var acc
  | Indeg (v, _) | Outdeg (v, _) -> add v acc

and add v acc = if List.mem v acc then acc else acc @ [ v ]

let vars_of_expr e = vars_of_expr_acc [] e

let rec attrs_of_expr = function
  | Conn (a, b) -> [ a; b ]
  | Path _ | Copath _ -> []
  | Coconn ((a, b), (c, d)) -> [ a; b; c; d ]
  | Cmp (_, t1, t2) | Func (_, t1, t2) -> term_attrs t1 @ term_attrs t2
  | Not e -> attrs_of_expr e
  | And es -> List.concat_map attrs_of_expr es

and term_attrs = function
  | Const _ | Indeg _ | Outdeg _ -> []
  | Attr e -> [ e ]

let rec has_agg = function
  | Cmp (_, t1, t2) | Func (_, t1, t2) -> term_agg t1 || term_agg t2
  | Not e -> has_agg e
  | And es -> List.exists has_agg es
  | Conn _ | Path _ | Coconn _ | Copath _ -> false

and term_agg = function Indeg _ | Outdeg _ -> true | Const _ | Attr _ -> false

let category c =
  if c.source = Llm_interpolated then Interpolated
  else if has_agg c.cond || has_agg c.stmt then Inter_agg
  else if List.length c.bindings <= 1 then Intra
  else Inter_no_agg

let binding_type c var =
  List.find_map
    (fun (b : binding) -> if String.equal b.var var then Some b.btype else None)
    c.bindings

(* Index variables are single letters inside brackets. *)
let index_vars_of_path path =
  let acc = ref [] in
  let n = String.length path in
  let i = ref 0 in
  while !i < n do
    if path.[!i] = '[' && !i + 2 < n && path.[!i + 2] = ']' then begin
      let v = String.make 1 path.[!i + 1] in
      if not (List.mem v !acc) then acc := v :: !acc;
      i := !i + 3
    end
    else incr i
  done;
  List.rev !acc

let index_vars c =
  let endpoints = attrs_of_expr c.cond @ attrs_of_expr c.stmt in
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
        acc
        (index_vars_of_path e.attr))
    [] endpoints

let strip_indices path =
  let buf = Buffer.create (String.length path) in
  let n = String.length path in
  let i = ref 0 in
  while !i < n do
    if path.[!i] = '[' && !i + 2 < n && path.[!i + 2] = ']' then i := !i + 3
    else begin
      Buffer.add_char buf path.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let equal a b =
  a.bindings = b.bindings && a.cond = b.cond && a.stmt = b.stmt

let compare a b = Stdlib.compare (render a) (render b)
