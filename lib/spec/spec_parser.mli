(** Parser for the concrete check syntax produced by {!Spec_printer}.

    Grammar (informal):
    {v
    check    := 'let' bindings 'in' expr '=>' expr
    bindings := var ':' TYPE (',' var ':' TYPE)*
    expr     := conj ('&&' conj)*
    conj     := '!'? atom
    atom     := 'conn' '(' ep '->' ep ')'
              | 'path' '(' var '->' var ')'
              | 'coconn' '(' ep '->' ep ',' ep '->' ep ')'
              | 'copath' '(' var '->' var ',' var '->' var ')'
              | ('overlap'|'contain'|'length') '(' term ',' term ')'
              | term ('=='|'!='|'<='|'>='|'<'|'>') term
    term     := 'null' | 'true' | 'false' | INT | '\'' STRING '\''
              | ('indegree'|'outdegree') '(' var ',' '!'? TYPE ')'
              | var '.' attrpath
    v} *)

val parse : string -> (Check.t, string) result

val parse_exn : string -> Check.t
(** @raise Invalid_argument on syntax errors. *)

val parse_many : string list -> (Check.t list, string) result
(** Parse a batch, reporting the first failing input with its
    1-based position ("check N: ..."). *)
