module Value = Zodiac_iac.Value
module Graph = Zodiac_iac.Graph

type token =
  | Word of string  (* identifier, possibly with dots/brackets *)
  | Quoted of string
  | Int_tok of int
  | Sym of string  (* punctuation / operators *)
  | End

exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '[' | ']' -> true
  | _ -> false

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail "unterminated quoted string";
      out := Quoted (String.sub src (!i + 1) (!j - !i - 1)) :: !out;
      i := !j + 1
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      out := Int_tok (int_of_string (String.sub src !i (!j - !i))) :: !out;
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while !j < n && is_word_char src.[!j] do
        incr j
      done;
      out := Word (String.sub src !i (!j - !i)) :: !out;
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "->" | "=>" | "&&" ->
          out := Sym two :: !out;
          i := !i + 2
      | _ ->
          (match c with
          | '(' | ')' | ',' | ':' | '!' | '<' | '>' ->
              out := Sym (String.make 1 c) :: !out
          | _ -> fail "illegal character %C" c);
          incr i
    end
  done;
  Array.of_list (List.rev (End :: !out))

type state = { toks : token array; mutable idx : int }

let peek st = st.toks.(st.idx)

let next st =
  let tok = st.toks.(st.idx) in
  if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1;
  tok

let expect_sym st s =
  match next st with
  | Sym s' when String.equal s s' -> ()
  | _ -> fail "expected '%s'" s

let expect_word st =
  match next st with Word w -> w | _ -> fail "expected identifier"

(* Split "r1.ip_config.subnet_id" into variable and attribute path. *)
let split_endpoint word =
  match String.index_opt word '.' with
  | Some i ->
      Some
        {
          Check.var = String.sub word 0 i;
          attr = String.sub word (i + 1) (String.length word - i - 1);
        }
  | None -> None

let parse_endpoint st =
  let w = expect_word st in
  match split_endpoint w with
  | Some e -> e
  | None -> fail "expected endpoint var.attr, got %s" w

let parse_tyspec st =
  match next st with
  | Sym "!" -> Graph.Not_type (expect_word st)
  | Word ty -> Graph.Type ty
  | _ -> fail "expected type specifier"

let parse_term st =
  match peek st with
  | Int_tok i ->
      ignore (next st);
      Check.Const (Value.Int i)
  | Quoted s ->
      ignore (next st);
      Check.Const (Value.Str s)
  | Word "null" ->
      ignore (next st);
      Check.Const Value.Null
  | Word "true" ->
      ignore (next st);
      Check.Const (Value.Bool true)
  | Word "false" ->
      ignore (next st);
      Check.Const (Value.Bool false)
  | Word ("indegree" | "outdegree") -> (
      match next st with
      | Word fn ->
          expect_sym st "(";
          let var = expect_word st in
          expect_sym st ",";
          let ty = parse_tyspec st in
          expect_sym st ")";
          if String.equal fn "indegree" then Check.Indeg (var, ty)
          else Check.Outdeg (var, ty)
      | _ -> assert false)
  | Word w -> (
      ignore (next st);
      match split_endpoint w with
      | Some e -> Check.Attr e
      | None -> fail "expected term, got bare identifier %s" w)
  | Sym s -> fail "expected term, got '%s'" s
  | End -> fail "expected term, got end of input"

let parse_atom st =
  match peek st with
  | Word "conn" ->
      ignore (next st);
      expect_sym st "(";
      let a = parse_endpoint st in
      expect_sym st "->";
      let b = parse_endpoint st in
      expect_sym st ")";
      Check.Conn (a, b)
  | Word "path" ->
      ignore (next st);
      expect_sym st "(";
      let a = expect_word st in
      expect_sym st "->";
      let b = expect_word st in
      expect_sym st ")";
      Check.Path (a, b)
  | Word "coconn" ->
      ignore (next st);
      expect_sym st "(";
      let a = parse_endpoint st in
      expect_sym st "->";
      let b = parse_endpoint st in
      expect_sym st ",";
      let c = parse_endpoint st in
      expect_sym st "->";
      let d = parse_endpoint st in
      expect_sym st ")";
      Check.Coconn ((a, b), (c, d))
  | Word "copath" ->
      ignore (next st);
      expect_sym st "(";
      let a = expect_word st in
      expect_sym st "->";
      let b = expect_word st in
      expect_sym st ",";
      let c = expect_word st in
      expect_sym st "->";
      let d = expect_word st in
      expect_sym st ")";
      Check.Copath ((a, b), (c, d))
  | Word ("overlap" | "contain" | "length") -> (
      match next st with
      | Word fn ->
          expect_sym st "(";
          let t1 = parse_term st in
          expect_sym st ",";
          let t2 = parse_term st in
          expect_sym st ")";
          let f =
            match fn with
            | "overlap" -> Check.Overlap
            | "contain" -> Check.Contain
            | _ -> Check.Length
          in
          Check.Func (f, t1, t2)
      | _ -> assert false)
  | _ -> (
      let t1 = parse_term st in
      match next st with
      | Sym ("==" | "!=" | "<=" | ">=" | "<" | ">" as op) ->
          let t2 = parse_term st in
          let op =
            match op with
            | "==" -> Check.Eq
            | "!=" -> Check.Ne
            | "<=" -> Check.Le
            | ">=" -> Check.Ge
            | "<" -> Check.Lt
            | _ -> Check.Gt
          in
          Check.Cmp (op, t1, t2)
      | _ -> fail "expected comparison operator")

let parse_conj st =
  match peek st with
  | Sym "!" ->
      ignore (next st);
      Check.Not (parse_atom st)
  | _ -> parse_atom st

let parse_expr st =
  let first = parse_conj st in
  let rec loop acc =
    match peek st with
    | Sym "&&" ->
        ignore (next st);
        loop (parse_conj st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ single ] -> single | many -> Check.And many

let parse_bindings st =
  let parse_one () =
    let var = expect_word st in
    expect_sym st ":";
    let btype = expect_word st in
    { Check.var; btype }
  in
  let rec loop acc =
    match peek st with
    | Sym "," ->
        ignore (next st);
        loop (parse_one () :: acc)
    | _ -> List.rev acc
  in
  loop [ parse_one () ]

let parse_check st =
  (match next st with
  | Word "let" -> ()
  | _ -> fail "expected 'let'");
  let bindings = parse_bindings st in
  (match next st with
  | Word "in" -> ()
  | _ -> fail "expected 'in'");
  let cond = parse_expr st in
  expect_sym st "=>";
  let stmt = parse_expr st in
  (match peek st with End -> () | _ -> fail "trailing input after check");
  Check.make bindings cond stmt

let parse src =
  match parse_check { toks = tokenize src; idx = 0 } with
  | check -> Ok check
  | exception Err msg -> Error (Printf.sprintf "%s in %S" msg src)

let parse_exn src =
  match parse src with Ok c -> c | Error e -> invalid_arg ("Spec_parser: " ^ e)

let parse_many srcs =
  let rec loop i acc = function
    | [] -> Ok (List.rev acc)
    | src :: rest -> (
        match parse src with
        | Ok c -> loop (i + 1) (c :: acc) rest
        | Error e -> Error (Printf.sprintf "check %d: %s" i e))
  in
  loop 1 [] srcs
