(** Bounded LRU memoization of deployment outcomes.

    Keys are canonical program fingerprints ({!Fingerprint.canonical});
    values are whatever the engine chooses to remember (genuine
    {!Zodiac_cloud.Arm.outcome}s — transient faults are never cached).
    Capacity-bounded with least-recently-used eviction, and
    instrumented with hit/miss/eviction counters for the engine stats
    record. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 8192 entries. Capacity [>= 1] enforced. *)

val find : 'a t -> string -> 'a option
(** Lookup; refreshes recency and counts a hit or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite; evicts the least recently used entry when the
    cache is full. *)

val mem : 'a t -> string -> bool
(** Recency- and counter-neutral membership test. *)

val length : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val clear : 'a t -> unit
(** Drop all entries; counters are preserved. *)
