(** Canonical program fingerprints for outcome memoization.

    The validation scheduler re-deploys structurally identical mutants
    across its FP/TP passes and iterations; the only differences are
    the generated local resource names. Deployment outcomes are
    invariant under a consistent renaming of those local names (all
    references move with the resource they point at), so the memo
    cache keys on an {e α-canonical} form:

    - each resource is summarized by its type and attributes, with
      every reference abstracted to the equivalence class of its
      target rather than its spelled name;
    - classes are computed by iterative partition refinement (colour
      refinement on the resource graph), which terminates in at most
      [|resources|] rounds;
    - the canonical form is the sorted multiset of final resource
      summaries, so resource order is irrelevant too.

    Two α-equivalent programs (identical up to local-name renaming and
    resource order) therefore produce equal fingerprints, while any
    attribute or topology difference — including the cloud-visible
    ["name"] attributes — produces a different one. *)

val canonical : Zodiac_iac.Program.t -> string
(** The full canonical form. Collision-free by construction: use this
    as the cache key. *)

val digest : Zodiac_iac.Program.t -> string
(** 16-hex-digit FNV-1a hash of {!canonical}, for display. *)

val equivalent : Zodiac_iac.Program.t -> Zodiac_iac.Program.t -> bool
(** α-equivalence: equal canonical forms. *)
