(** Exponential backoff with decorrelating jitter.

    Retry pacing for the resilient deployment client: attempt [n]
    (0-based) waits [base * multiplier^n] simulated seconds, capped at
    [max_delay], with a uniformly drawn jitter fraction subtracted so
    synchronized clients fan out. Deterministic given the PRNG state. *)

type config = {
  base : float;  (** first retry delay, simulated seconds *)
  multiplier : float;  (** growth factor per attempt ([>= 1]) *)
  max_delay : float;  (** ceiling on any single delay *)
  jitter : float;  (** fraction of the delay randomized away, in [0,1] *)
}

val default : config
(** 1s base, doubling, 30s cap, 0.5 jitter. *)

val raw_delay : config -> attempt:int -> float
(** The jitter-free delay for [attempt] (0-based retry index). *)

val delay : config -> prng:Zodiac_util.Prng.t -> attempt:int -> float
(** [raw_delay] with jitter applied: uniform in
    [\[(1 - jitter) * raw, raw\]]. Always positive. *)

val schedule : config -> attempts:int -> float list
(** Jitter-free preview of the first [attempts] delays. *)
