module Prng = Zodiac_util.Prng
module Flaky = Zodiac_cloud.Flaky
module Arm = Zodiac_cloud.Arm
module Rules = Zodiac_cloud.Rules

type error = Budget_exhausted of Flaky.fault | Deadline_exceeded of float

let error_to_string = function
  | Budget_exhausted f ->
      Printf.sprintf "retry budget exhausted (last fault: %s in %s phase)"
        (Flaky.kind_to_string f.Flaky.kind)
        (Rules.phase_to_string f.Flaky.phase)
  | Deadline_exceeded t -> Printf.sprintf "deadline exceeded after %.1fs" t

type config = {
  max_retries : int;
  backoff : Backoff.config;
  breaker : Breaker.config;
  deadline : float option;
  attempt_cost : float;
  seed : int;
}

let default_config =
  {
    max_retries = 5;
    backoff = Backoff.default;
    breaker = Breaker.default;
    deadline = None;
    attempt_cost = 2.0;
    seed = 17;
  }

type t = {
  config : config;
  stats : Stats.t;
  backend : Zodiac_iac.Program.t -> Flaky.response;
  breaker : Breaker.t;
  prng : Prng.t;
  mutable clock : float;
}

let create ?(config = default_config) ~stats backend =
  {
    config;
    stats;
    backend;
    breaker = Breaker.create config.breaker;
    prng = Prng.create config.seed;
    clock = 0.0;
  }

let of_arm ~provider ?rules ?quota ?config ~stats () =
  let rules =
    match rules with
    | Some r -> r
    | None -> provider.Zodiac_provider.Provider.ground_truth ()
  in
  let quota = match quota with Some q -> q | None -> Zodiac_cloud.Quota.unlimited in
  create ?config ~stats (fun prog ->
      Flaky.Outcome (Arm.deploy ~provider ~rules ~quota prog))

let advance t dt =
  t.clock <- t.clock +. dt;
  Stats.add_sim_time t.stats dt

(* The retry loop, generalized over how a response is obtained so that
   [deploy] (live backend call) and [replay] (precomputed response) share
   one request-accounting path. *)
let run_request t backend =
  Stats.record_request t.stats;
  let start = t.clock in
  let deadline = Option.map (fun d -> start +. d) t.config.deadline in
  let past_deadline () =
    match deadline with Some d -> t.clock > d | None -> false
  in
  let rec attempt n =
    (* an open breaker paces the client instead of shedding the request *)
    (match Breaker.open_until t.breaker ~now:t.clock with
    | Some until -> advance t (until -. t.clock)
    | None -> ());
    advance t t.config.attempt_cost;
    Stats.record_attempt t.stats ~retry:(n > 0);
    match backend () with
    | Flaky.Outcome outcome ->
        Breaker.record_success t.breaker;
        Ok outcome
    | Flaky.Fault fault ->
        Stats.record_fault t.stats
          ~kind:(Flaky.kind_to_string fault.Flaky.kind)
          ~phase:(Rules.phase_to_string fault.Flaky.phase);
        let opens_before = Breaker.opens t.breaker in
        Breaker.record_failure t.breaker ~now:t.clock;
        if Breaker.opens t.breaker > opens_before then
          Stats.record_breaker_open t.stats;
        if n >= t.config.max_retries then begin
          Stats.record_giveup t.stats;
          Error (Budget_exhausted fault)
        end
        else begin
          let wait =
            Float.max fault.Flaky.retry_after
              (Backoff.delay t.config.backoff ~prng:t.prng ~attempt:n)
          in
          advance t wait;
          if past_deadline () then begin
            Stats.record_giveup t.stats;
            Error (Deadline_exceeded (t.clock -. start))
          end
          else attempt (n + 1)
        end
  in
  attempt 0

let deploy t prog = run_request t (fun () -> t.backend prog)

let raw t prog = t.backend prog

let replay t response = run_request t (fun () -> response)

let now t = t.clock
let breaker t = t.breaker
