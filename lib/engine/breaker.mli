(** Circuit breaker over the deployment backend.

    Classic three-state machine driven by an external (simulated)
    clock:

    - {b Closed}: requests flow; consecutive transient failures are
      counted, and reaching [failure_threshold] trips the breaker;
    - {b Open}: the backend is presumed throttling; the breaker stays
      open for [cooldown] simulated seconds from the trip time;
    - {b Half_open}: the cooldown elapsed; one probe is allowed — a
      success closes the breaker, a failure re-trips it immediately.

    The resilient client uses an open breaker for {e pacing}, not load
    shedding: it advances its simulated clock to the reopen time
    rather than failing the deployment, so soundness of verdicts is
    unaffected. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip ([>= 1]) *)
  cooldown : float;  (** open duration, simulated seconds *)
}

val default : config
(** Threshold 5, cooldown 60s. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create : config -> t

val state : t -> now:float -> state

val open_until : t -> now:float -> float option
(** [Some t] while the breaker is open and will admit a probe at [t]. *)

val record_success : t -> unit
(** Resets the failure streak and closes the breaker. *)

val record_failure : t -> now:float -> unit
(** Count a transient failure; trips the breaker from [Closed] at the
    threshold and re-trips immediately from [Half_open]. *)

val opens : t -> int
(** How many times the breaker has tripped. *)
