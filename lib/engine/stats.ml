type snapshot = {
  requests : int;
  attempts : int;
  retries : int;
  faults : int;
  faults_by_kind : (string * int) list;
  faults_by_phase : (string * int) list;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  deployments_saved : int;
  breaker_opens : int;
  giveups : int;
  sim_seconds : float;
}

let empty =
  {
    requests = 0;
    attempts = 0;
    retries = 0;
    faults = 0;
    faults_by_kind = [];
    faults_by_phase = [];
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    deployments_saved = 0;
    breaker_opens = 0;
    giveups = 0;
    sim_seconds = 0.0;
  }

type t = {
  mutable requests : int;
  mutable attempts : int;
  mutable retries : int;
  mutable breaker_opens : int;
  mutable giveups : int;
  mutable sim_seconds : float;
  by_kind : (string, int) Hashtbl.t;
  by_phase : (string, int) Hashtbl.t;
}

let create () =
  {
    requests = 0;
    attempts = 0;
    retries = 0;
    breaker_opens = 0;
    giveups = 0;
    sim_seconds = 0.0;
    by_kind = Hashtbl.create 4;
    by_phase = Hashtbl.create 5;
  }

let reset t =
  t.requests <- 0;
  t.attempts <- 0;
  t.retries <- 0;
  t.breaker_opens <- 0;
  t.giveups <- 0;
  t.sim_seconds <- 0.0;
  Hashtbl.reset t.by_kind;
  Hashtbl.reset t.by_phase

let bump table key =
  Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let record_request t = t.requests <- t.requests + 1

let record_attempt t ~retry =
  t.attempts <- t.attempts + 1;
  if retry then t.retries <- t.retries + 1

let record_fault t ~kind ~phase =
  bump t.by_kind kind;
  bump t.by_phase phase

let record_breaker_open t = t.breaker_opens <- t.breaker_opens + 1
let record_giveup t = t.giveups <- t.giveups + 1
let add_sim_time t dt = t.sim_seconds <- t.sim_seconds +. dt

let sorted_tally table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_with ~cache_hits ~cache_misses ~cache_evictions t =
  let faults_by_kind = sorted_tally t.by_kind in
  {
    requests = t.requests;
    attempts = t.attempts;
    retries = t.retries;
    faults = List.fold_left (fun acc (_, n) -> acc + n) 0 faults_by_kind;
    faults_by_kind;
    faults_by_phase = sorted_tally t.by_phase;
    cache_hits;
    cache_misses;
    cache_evictions;
    deployments_saved = cache_hits;
    breaker_opens = t.breaker_opens;
    giveups = t.giveups;
    sim_seconds = t.sim_seconds;
  }

let basic_snapshot t =
  snapshot_with ~cache_hits:0 ~cache_misses:0 ~cache_evictions:0 t

(* Flat integer view for telemetry spans; [sim_seconds] is simulated
   (not wall-clock) time, so rounding it to whole seconds keeps the
   counter list deterministic. *)
let counters (s : snapshot) =
  [
    ("engine.requests", s.requests);
    ("engine.deployments", s.attempts);
    ("engine.retries", s.retries);
    ("engine.faults", s.faults);
    ("engine.memo_hits", s.cache_hits);
    ("engine.memo_misses", s.cache_misses);
    ("engine.memo_evictions", s.cache_evictions);
    ("engine.breaker_opens", s.breaker_opens);
    ("engine.giveups", s.giveups);
    ("engine.sim_seconds", int_of_float s.sim_seconds);
  ]

let tally_line pairs =
  if pairs = [] then "none"
  else
    String.concat ", "
      (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) pairs)

let summary (s : snapshot) =
  String.concat "\n"
    [
      Printf.sprintf
        "engine: %d requests, %d raw deployments (%d retries), %d saved by memo cache"
        s.requests s.attempts s.retries s.deployments_saved;
      Printf.sprintf "  transient faults: %d (%s)" s.faults
        (tally_line s.faults_by_kind);
      Printf.sprintf "  faults by phase: %s" (tally_line s.faults_by_phase);
      Printf.sprintf
        "  cache: %d hits / %d misses / %d evictions; breaker opens: %d; giveups: %d"
        s.cache_hits s.cache_misses s.cache_evictions s.breaker_opens s.giveups;
      Printf.sprintf "  simulated time: %.1fs" s.sim_seconds;
    ]
