(** The deployment-execution engine facade.

    Sits between the validation scheduler / pipeline and the ARM
    simulator, composing the pieces of this library:

    + an optional fault-injection backend ({!Zodiac_cloud.Flaky});
    + the resilient retry client ({!Client}) that recovers genuine
      outcomes from transient faults;
    + an α-canonical outcome memoization cache ({!Memo} keyed by
      {!Fingerprint.canonical}) — the scheduler re-deploys structurally
      identical mutants across its FP/TP passes, and every cache hit is
      a deployment that never happens;
    + the engine statistics record ({!Stats}).

    The soundness property inherited from {!Client}: with the default
    configuration (retry budget above the flaky backend's burst cap),
    the [validated]/[falsified] sets computed through this engine are
    identical to a fault-free run — faults cost simulated time and
    retries, never verdicts. *)

type backend =
  | Pure  (** the fault-free {!Zodiac_cloud.Arm} simulator *)
  | Faulty of Zodiac_cloud.Flaky.config  (** seeded transient faults *)

type config = {
  client : Client.config;
  memo : bool;  (** memoize outcomes by canonical fingerprint *)
  memo_capacity : int;
  backend : backend;
}

val default_config : config
(** Memo on (capacity 8192), pure backend, default client. *)

val faulty_config : ?fault_rate:float -> ?seed:int -> unit -> config
(** [default_config] over a {!Faulty} backend with the given rate
    (default {!Zodiac_cloud.Flaky.default_config}[.fault_rate]). *)

type t

val create :
  provider:Zodiac_provider.Provider.t ->
  ?rules:Zodiac_cloud.Rules.t list ->
  ?quota:Zodiac_cloud.Quota.t ->
  ?config:config ->
  unit ->
  t
(** [rules]/[quota] configure the underlying simulator. *)

val config : t -> config

val deploy : t -> Zodiac_iac.Program.t -> (Zodiac_cloud.Arm.outcome, Client.error) result
(** Full outcome through cache and retry loop. Only genuine outcomes
    are cached; errors (possible only when the client budget is set
    below the fault burst cap, or a deadline is imposed) are not. *)

val deploy_batch :
  ?jobs:int ->
  t ->
  Zodiac_iac.Program.t list ->
  (Zodiac_cloud.Arm.outcome, Client.error) result list
(** Equivalent to [List.map (deploy t)] — bit-identical results and
    stats for every [jobs] value. With the [Pure] backend, raw simulator
    responses for memo-missing fingerprints are computed on up to [jobs]
    domains, then committed sequentially in batch order; with a [Faulty]
    backend (shared seeded fault stream) the batch stays sequential. *)

val success : t -> Zodiac_iac.Program.t -> bool
(** [Arm.success] of the recovered outcome; an abandoned request
    counts as a failed deployment (and in [giveups]). *)

val oracle : t -> Zodiac_iac.Program.t -> bool
(** [success] partially applied — the [Scheduler.deploy] oracle. *)

val oracle_batch : ?jobs:int -> t -> Zodiac_iac.Program.t list -> bool list
(** [success] over {!deploy_batch} — the [Scheduler.deploy_batch]
    oracle. *)

val stats : t -> Stats.snapshot
(** Current statistics, cache counters included. *)

val memo_entries : t -> int
(** Outcomes currently resident in the memoization cache (0 when
    memoization is off) — a live-occupancy gauge, distinct from the
    cumulative hit/miss counters in {!stats}. *)
