(** The engine statistics record.

    One mutable accumulator threaded through the resilient client, the
    memo cache and the engine facade, snapshotted into an immutable
    record for reports, the CLI and the E13 bench experiment.

    Terminology: a {e request} is one deployment asked of the engine;
    an {e attempt} is one raw call on the (possibly flaky) backend; a
    {e retry} is any attempt after the first for the same request.
    [deployments_saved] is the number of requests answered from the
    memo cache without touching the backend at all. *)

type snapshot = {
  requests : int;
  attempts : int;
  retries : int;
  faults : int;  (** transient faults observed (sum of [faults_by_kind]) *)
  faults_by_kind : (string * int) list;
  faults_by_phase : (string * int) list;
      (** per deployment phase in which faults surfaced *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  deployments_saved : int;  (** = [cache_hits] *)
  breaker_opens : int;
  giveups : int;  (** requests abandoned (retry budget or deadline) *)
  sim_seconds : float;  (** simulated wall time spent on calls + waits *)
}

val empty : snapshot

type t

val create : unit -> t
val reset : t -> unit

val record_request : t -> unit
val record_attempt : t -> retry:bool -> unit
val record_fault : t -> kind:string -> phase:string -> unit
val record_breaker_open : t -> unit
val record_giveup : t -> unit
val add_sim_time : t -> float -> unit

val snapshot_with :
  cache_hits:int -> cache_misses:int -> cache_evictions:int -> t -> snapshot
(** Snapshot, merging in the memo-cache counters (the cache keeps its
    own tallies). *)

val basic_snapshot : t -> snapshot
(** Snapshot with zero cache counters. *)

val counters : snapshot -> (string * int) list
(** Flat ["engine.*"]-prefixed integer counters for telemetry spans.
    Deterministic: simulated time is rounded to whole (simulated)
    seconds; no wall-clock value is involved. *)

val summary : snapshot -> string
(** Multi-line human-readable rendering for reports and the CLI. *)
