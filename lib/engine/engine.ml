module Arm = Zodiac_cloud.Arm
module Flaky = Zodiac_cloud.Flaky
module Rules = Zodiac_cloud.Rules
module Quota = Zodiac_cloud.Quota
module Program = Zodiac_iac.Program
module Parallel = Zodiac_util.Parallel

type backend = Pure | Faulty of Flaky.config

type config = {
  client : Client.config;
  memo : bool;
  memo_capacity : int;
  backend : backend;
}

let default_config =
  {
    client = Client.default_config;
    memo = true;
    memo_capacity = 8192;
    backend = Pure;
  }

let faulty_config ?fault_rate ?seed () =
  let base = Flaky.default_config in
  let fault_rate = Option.value ~default:base.Flaky.fault_rate fault_rate in
  let seed = Option.value ~default:base.Flaky.seed seed in
  { default_config with backend = Faulty { base with Flaky.fault_rate; seed } }

type t = {
  config : config;
  stats : Stats.t;
  client : Client.t;
  cache : Arm.outcome Memo.t option;
}

let create ~provider ?rules ?quota ?(config = default_config) () =
  let stats = Stats.create () in
  let client =
    match config.backend with
    | Pure -> Client.of_arm ~provider ?rules ?quota ~config:config.client ~stats ()
    | Faulty fault_config ->
        let flaky = Flaky.create ~provider ?rules ?quota fault_config in
        Client.create ~config:config.client ~stats (Flaky.deploy flaky)
  in
  let cache =
    if config.memo then Some (Memo.create ~capacity:config.memo_capacity ())
    else None
  in
  { config; stats; client; cache }

let config t = t.config

let deploy t prog =
  match t.cache with
  | None -> Client.deploy t.client prog
  | Some cache -> (
      let key = Fingerprint.canonical prog in
      match Memo.find cache key with
      | Some outcome ->
          (* a request answered without touching the backend *)
          Stats.record_request t.stats;
          Ok outcome
      | None -> (
          match Client.deploy t.client prog with
          | Ok outcome ->
              Memo.add cache key outcome;
              Ok outcome
          | Error _ as e -> e))

(* Batched deployments. The contract is that
   [deploy_batch t progs = List.map (deploy t) progs] — bit-identical
   results and stats — for every [jobs] value; parallelism is only
   exploited where that equality is provable:

   - [Pure] backend: the simulator is a pure function, so raw responses
     for memo-missing fingerprints are computed across domains, then
     committed sequentially in batch order through {!Client.replay},
     which reproduces the exact request accounting (clock, breaker,
     memo hit/miss/eviction sequence) of the sequential path.
   - [Faulty] backend: fault draws come from one seeded stream, so the
     response depends on request order; the batch stays sequential and
     order-faithful. *)
let deploy_batch ?jobs t progs =
  match t.config.backend with
  | Faulty _ -> List.map (deploy t) progs
  | Pure -> (
      match t.cache with
      | None ->
          let responses = Parallel.map ?jobs (Client.raw t.client) progs in
          List.map (Client.replay t.client) responses
      | Some cache ->
          let keys = Parallel.map ?jobs Fingerprint.canonical progs in
          (* First occurrence of each fingerprint not already memoized
             gets a raw backend call; duplicates within the batch ride
             the first occurrence, exactly as they would sequentially. *)
          let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
          let pending = ref [] in
          List.iter2
            (fun prog key ->
              if (not (Memo.mem cache key)) && not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                pending := (key, prog) :: !pending
              end)
            progs keys;
          let pending = List.rev !pending in
          let responses =
            Parallel.map ?jobs (fun (_, prog) -> Client.raw t.client prog) pending
          in
          let resp : (string, Flaky.response) Hashtbl.t = Hashtbl.create 64 in
          List.iter2
            (fun (key, _) r -> Hashtbl.replace resp key r)
            pending responses;
          List.map2
            (fun prog key ->
              match Memo.find cache key with
              | Some outcome ->
                  Stats.record_request t.stats;
                  Ok outcome
              | None -> (
                  let response =
                    match Hashtbl.find_opt resp key with
                    | Some r -> r
                    | None ->
                        (* the pre-scan saw this key cached but it has
                           since been evicted: fall back to a live call,
                           as the sequential path would *)
                        Client.raw t.client prog
                  in
                  match Client.replay t.client response with
                  | Ok outcome ->
                      Memo.add cache key outcome;
                      Ok outcome
                  | Error _ as e -> e))
            progs keys)

let success t prog =
  match deploy t prog with Ok outcome -> Arm.success outcome | Error _ -> false

let oracle t = success t

let oracle_batch ?jobs t progs =
  List.map
    (function Ok outcome -> Arm.success outcome | Error _ -> false)
    (deploy_batch ?jobs t progs)

let stats t =
  match t.cache with
  | None -> Stats.basic_snapshot t.stats
  | Some cache ->
      Stats.snapshot_with ~cache_hits:(Memo.hits cache)
        ~cache_misses:(Memo.misses cache)
        ~cache_evictions:(Memo.evictions cache) t.stats

let memo_entries t =
  match t.cache with None -> 0 | Some cache -> Memo.length cache
