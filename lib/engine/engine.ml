module Arm = Zodiac_cloud.Arm
module Flaky = Zodiac_cloud.Flaky
module Rules = Zodiac_cloud.Rules
module Quota = Zodiac_cloud.Quota
module Program = Zodiac_iac.Program

type backend = Pure | Faulty of Flaky.config

type config = {
  client : Client.config;
  memo : bool;
  memo_capacity : int;
  backend : backend;
}

let default_config =
  {
    client = Client.default_config;
    memo = true;
    memo_capacity = 8192;
    backend = Pure;
  }

let faulty_config ?fault_rate ?seed () =
  let base = Flaky.default_config in
  let fault_rate = Option.value ~default:base.Flaky.fault_rate fault_rate in
  let seed = Option.value ~default:base.Flaky.seed seed in
  { default_config with backend = Faulty { base with Flaky.fault_rate; seed } }

type t = {
  config : config;
  stats : Stats.t;
  client : Client.t;
  cache : Arm.outcome Memo.t option;
}

let create ?rules ?quota ?(config = default_config) () =
  let stats = Stats.create () in
  let client =
    match config.backend with
    | Pure -> Client.of_arm ?rules ?quota ~config:config.client ~stats ()
    | Faulty fault_config ->
        let flaky = Flaky.create ?rules ?quota fault_config in
        Client.create ~config:config.client ~stats (Flaky.deploy flaky)
  in
  let cache =
    if config.memo then Some (Memo.create ~capacity:config.memo_capacity ())
    else None
  in
  { config; stats; client; cache }

let config t = t.config

let deploy t prog =
  match t.cache with
  | None -> Client.deploy t.client prog
  | Some cache -> (
      let key = Fingerprint.canonical prog in
      match Memo.find cache key with
      | Some outcome ->
          (* a request answered without touching the backend *)
          Stats.record_request t.stats;
          Ok outcome
      | None -> (
          match Client.deploy t.client prog with
          | Ok outcome ->
              Memo.add cache key outcome;
              Ok outcome
          | Error _ as e -> e))

let success t prog =
  match deploy t prog with Ok outcome -> Arm.success outcome | Error _ -> false

let oracle t = success t

let stats t =
  match t.cache with
  | None -> Stats.basic_snapshot t.stats
  | Some cache ->
      Stats.snapshot_with ~cache_hits:(Memo.hits cache)
        ~cache_misses:(Memo.misses cache)
        ~cache_evictions:(Memo.evictions cache) t.stats
