module Value = Zodiac_iac.Value
module Resource = Zodiac_iac.Resource
module Program = Zodiac_iac.Program

let rec value_repr label v =
  match v with
  | Value.Null -> "null"
  | Value.Bool b -> if b then "true" else "false"
  | Value.Int i -> string_of_int i
  | Value.Str s -> "\"" ^ String.escaped s ^ "\""
  | Value.List vs ->
      "[" ^ String.concat ";" (List.map (value_repr label) vs) ^ "]"
  | Value.Block fields ->
      let fields =
        List.sort (fun (a, _) (b, _) -> String.compare a b) fields
      in
      "{"
      ^ String.concat ";"
          (List.map (fun (k, v) -> k ^ "=" ^ value_repr label v) fields)
      ^ "}"
  | Value.Ref r -> "&" ^ label r ^ "." ^ r.attr

let resource_repr label (r : Resource.t) =
  let attrs =
    List.sort (fun (a, _) (b, _) -> String.compare a b) r.Resource.attrs
  in
  r.Resource.rtype ^ "{"
  ^ String.concat ";"
      (List.map (fun (k, v) -> k ^ "=" ^ value_repr label v) attrs)
  ^ "}"

let id_key rtype rname = rtype ^ "." ^ rname

(* Colour refinement (1-WL) over the reference graph, in both
   directions: a resource's colour is refined by the colours of the
   resources it references AND by the colours of the resources
   referencing it (with the attribute path of each edge). Outgoing
   references alone cannot split, e.g., two attribute-identical VPCs of
   which only one carries subnets — and outcome-relevant checks
   (outdegree exclusivity, CIDR overlap among siblings) see exactly
   that difference. *)
let canonical prog =
  let resources = Program.resources prog in
  let n = List.length resources in
  let classes : (string, int) Hashtbl.t = Hashtbl.create (max 16 n) in
  let class_str key =
    match Hashtbl.find_opt classes key with
    | Some c -> string_of_int c
    | None -> "?" (* dangling reference *)
  in
  let class_label (reference : Value.reference) =
    reference.Value.rtype ^ "#"
    ^ class_str (id_key reference.Value.rtype reference.Value.rname)
  in
  (* in-edges: target resource key -> (referrer key, attr path) list *)
  let in_edges : (string, (string * string) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Resource.t) ->
      let src = id_key r.Resource.rtype r.Resource.rname in
      List.iter
        (fun (path, (reference : Value.reference)) ->
          let dst = id_key reference.Value.rtype reference.Value.rname in
          Hashtbl.replace in_edges dst
            ((src, path) :: Option.value ~default:[] (Hashtbl.find_opt in_edges dst)))
        (Resource.references r))
    resources;
  let in_repr key =
    let edges = Option.value ~default:[] (Hashtbl.find_opt in_edges key) in
    String.concat ","
      (List.sort String.compare
         (List.map (fun (src, path) -> class_str src ^ "@" ^ path) edges))
  in
  let refine () =
    (* include the previous class in the summary so refinement is
       monotone: classes split but never merge *)
    let reprs =
      List.map
        (fun (r : Resource.t) ->
          let k = id_key r.Resource.rtype r.Resource.rname in
          let prev = Option.value ~default:0 (Hashtbl.find_opt classes k) in
          ( k,
            string_of_int prev ^ ":" ^ resource_repr class_label r ^ "|in:"
            ^ in_repr k ))
        resources
    in
    let distinct = List.sort_uniq String.compare (List.map snd reprs) in
    let changed = ref false in
    List.iter
      (fun (k, repr) ->
        let c =
          let rec index i = function
            | [] -> 0
            | x :: rest -> if String.equal x repr then i else index (i + 1) rest
          in
          index 0 distinct
        in
        (match Hashtbl.find_opt classes k with
        | Some old when old = c -> ()
        | _ -> changed := true);
        Hashtbl.replace classes k c)
      reprs;
    !changed
  in
  let rec loop round = if round < n && refine () then loop (round + 1) in
  loop 0;
  (* the final summary embeds each resource's own class (which encodes
     its in-neighbourhood through refinement) next to its out-labelled
     structure; α-equivalent programs agree exactly *)
  let final =
    List.sort String.compare
      (List.map
         (fun (r : Resource.t) ->
           "c"
           ^ class_str (id_key r.Resource.rtype r.Resource.rname)
           ^ "|"
           ^ resource_repr class_label r)
         resources)
  in
  Printf.sprintf "n=%d|%s" n (String.concat "\n" final)

(* FNV-1a, 64-bit *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let digest prog = Printf.sprintf "%016Lx" (fnv1a64 (canonical prog))

let equivalent p1 p2 = String.equal (canonical p1) (canonical p2)
