type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  table : (string, 'a entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 8192) () =
  {
    table = Hashtbl.create 256;
    capacity = max 1 capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let find t key =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table key with
  | Some entry ->
      entry.stamp <- t.tick;
      t.hits <- t.hits + 1;
      Some entry.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, stamp) when stamp <= entry.stamp -> acc
        | _ -> Some (key, entry.stamp))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  t.tick <- t.tick + 1;
  if (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= t.capacity
  then evict_lru t;
  Hashtbl.replace t.table key { value; stamp = t.tick }

let mem t key = Hashtbl.mem t.table key
let length t = Hashtbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let clear t = Hashtbl.reset t.table
