module Prng = Zodiac_util.Prng

type config = {
  base : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default = { base = 1.0; multiplier = 2.0; max_delay = 30.0; jitter = 0.5 }

let raw_delay config ~attempt =
  let d = config.base *. (config.multiplier ** float_of_int attempt) in
  Float.min d config.max_delay

let delay config ~prng ~attempt =
  let raw = raw_delay config ~attempt in
  let jitter = Float.max 0.0 (Float.min 1.0 config.jitter) in
  let cut = Prng.float prng (raw *. jitter) in
  Float.max (raw -. cut) (0.001 *. config.base)

let schedule config ~attempts =
  List.init (max 0 attempts) (fun i -> raw_delay config ~attempt:i)
