(** The resilient deployment client.

    Recovers the genuine {!Zodiac_cloud.Arm.outcome} from a backend
    that may answer with transient faults ({!Zodiac_cloud.Flaky}).
    Each request runs a retry loop under a per-request budget:

    - transient faults are retried after an exponential-backoff delay
      with jitter ({!Backoff}), never sooner than the fault's
      server-suggested [retry_after];
    - a circuit breaker ({!Breaker}) counts consecutive faults across
      requests; while it is open the client {e paces} (advances its
      simulated clock to the reopen time) rather than shedding the
      request, so verdicts are never dropped on the floor;
    - deadline accounting runs on a simulated clock: every attempt
      costs [attempt_cost] simulated seconds and every wait its delay;
      an optional per-request [deadline] aborts the retry loop.

    Soundness: with a flaky backend whose burst cap is
    [max_consecutive] and a client budget [max_retries >=
    max_consecutive], every request returns [Ok] with the genuine
    outcome — faults only cost time, never truth. *)

type error =
  | Budget_exhausted of Zodiac_cloud.Flaky.fault
      (** the last fault seen when the retry budget ran out *)
  | Deadline_exceeded of float  (** simulated seconds consumed *)

val error_to_string : error -> string

type config = {
  max_retries : int;  (** retries per request, on top of the first attempt *)
  backoff : Backoff.config;
  breaker : Breaker.config;
  deadline : float option;  (** per-request budget, simulated seconds *)
  attempt_cost : float;  (** simulated seconds per backend call *)
  seed : int;  (** jitter PRNG seed *)
}

val default_config : config
(** 5 retries, default backoff/breaker, no deadline, 2s per attempt. *)

type t

val create :
  ?config:config ->
  stats:Stats.t ->
  (Zodiac_iac.Program.t -> Zodiac_cloud.Flaky.response) ->
  t

val of_arm :
  provider:Zodiac_provider.Provider.t ->
  ?rules:Zodiac_cloud.Rules.t list ->
  ?quota:Zodiac_cloud.Quota.t ->
  ?config:config ->
  stats:Stats.t ->
  unit ->
  t
(** A client over the fault-free simulator (every call passes through
    to {!Zodiac_cloud.Arm.deploy}). *)

val deploy : t -> Zodiac_iac.Program.t -> (Zodiac_cloud.Arm.outcome, error) result

val raw : t -> Zodiac_iac.Program.t -> Zodiac_cloud.Flaky.response
(** Call the backend with no bookkeeping: no stats, no clock, no
    breaker. Safe from any domain when the backend is pure (the
    fault-free simulator); the engine's batch path uses it to
    precompute responses in parallel. *)

val replay :
  t -> Zodiac_cloud.Flaky.response -> (Zodiac_cloud.Arm.outcome, error) result
(** Account for a request whose response was precomputed with {!raw}:
    performs exactly the bookkeeping {!deploy} would (request/attempt
    counters, breaker, simulated clock). For an [Outcome] response this
    is bit-identical to the [deploy] call it replaces. A [Fault]
    response would be re-served on every retry, so only replay
    responses from fault-free backends. *)

val now : t -> float
(** The simulated clock, total seconds across all requests so far. *)

val breaker : t -> Breaker.t
