type config = { failure_threshold : int; cooldown : float }

let default = { failure_threshold = 5; cooldown = 60.0 }

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  config : config;
  mutable failures : int;  (** consecutive transient failures *)
  mutable tripped_until : float option;
  mutable opens : int;
}

let create config =
  let config = { config with failure_threshold = max 1 config.failure_threshold } in
  { config; failures = 0; tripped_until = None; opens = 0 }

let state t ~now =
  match t.tripped_until with
  | None -> Closed
  | Some until -> if now < until then Open else Half_open

let open_until t ~now =
  match t.tripped_until with
  | Some until when now < until -> Some until
  | _ -> None

let trip t ~now =
  t.tripped_until <- Some (now +. t.config.cooldown);
  t.opens <- t.opens + 1;
  t.failures <- 0

let record_success t =
  t.failures <- 0;
  t.tripped_until <- None

let record_failure t ~now =
  match state t ~now with
  | Half_open -> trip t ~now
  | Open | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.config.failure_threshold then trip t ~now

let opens t = t.opens
