type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let derive seed index =
  (* Jump directly to the [index]-th gamma step of the stream rooted at
     [seed], then mix once more so adjacent indices decorrelate. Unlike
     [split] on a shared generator this needs no sequential threading, so
     per-index streams can be created independently on any domain. *)
  let root = mix (Int64.of_int seed) in
  let jump = Int64.mul golden_gamma (Int64.of_int (index + 1)) in
  { state = mix (Int64.add root jump) }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to non-negative and reduce; modulo bias is negligible for the
     small bounds used throughout Zodiac. *)
  let v = Int64.to_int (next64 t) land max_int in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t p = float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t items =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 items in
  if total <= 0 then invalid_arg "Prng.weighted: no positive weight";
  let k = int t total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: unreachable"
    | (w, x) :: rest ->
        let acc = acc + max 0 w in
        if k < acc then x else pick acc rest
  in
  pick 0 items

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  Array.to_list arr

let sample t k xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  let n = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 n)
