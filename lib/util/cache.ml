type t = {
  c_dir : string;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_writes : int;
}

type stats = { hits : int; misses : int; writes : int }

let default_dir = ".zodiac-cache"

let rec ensure_dir dir =
  if String.equal dir "" || String.equal dir "." || String.equal dir "/"
     || Sys.file_exists dir
  then ()
  else begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ~dir () =
  ensure_dir dir;
  { c_dir = dir; c_hits = 0; c_misses = 0; c_writes = 0 }

let dir t = t.c_dir

let path_of t ~stage ~key size =
  let base =
    match size with
    | None -> Printf.sprintf "%s-%s.bin" stage key
    | Some n -> Printf.sprintf "%s-%s-n%d.bin" stage key n
  in
  Filename.concat t.c_dir base

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let find ?size t ~stage ~key read =
  match read_file (path_of t ~stage ~key size) with
  | None ->
      t.c_misses <- t.c_misses + 1;
      None
  | Some data -> (
      match Codec.decode ~stage data read with
      | Ok v ->
          t.c_hits <- t.c_hits + 1;
          Some v
      | Error _ ->
          (* corrupt or sealed under another codec version: a miss *)
          t.c_misses <- t.c_misses + 1;
          None)

let store ?size t ~stage ~key fill =
  let path = path_of t ~stage ~key size in
  let data = Codec.encode ~stage fill in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data);
    Sys.rename tmp path;
    t.c_writes <- t.c_writes + 1
  with Sys_error _ -> ()

let sizes t ~stage ~key =
  let prefix = Printf.sprintf "%s-%s-n" stage key in
  let plen = String.length prefix in
  match (try Some (Sys.readdir t.c_dir) with Sys_error _ -> None) with
  | None -> []
  | Some files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             if
               String.length f > plen + 4
               && String.equal (String.sub f 0 plen) prefix
               && Filename.check_suffix f ".bin"
             then int_of_string_opt (String.sub f plen (String.length f - plen - 4))
             else None)
      |> List.sort_uniq Int.compare

let stats t = { hits = t.c_hits; misses = t.c_misses; writes = t.c_writes }
