type t = {
  c_dir : string;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_writes : int;
  mutable c_write_failures : int;
}

type stats = {
  hits : int;
  misses : int;
  writes : int;
  write_failures : int;
}

let default_dir = ".zodiac-cache"

let rec ensure_dir dir =
  if String.equal dir "" || String.equal dir "." || String.equal dir "/"
     || Sys.file_exists dir
  then ()
  else begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ~dir () =
  ensure_dir dir;
  { c_dir = dir; c_hits = 0; c_misses = 0; c_writes = 0; c_write_failures = 0 }

let dir t = t.c_dir

let path_of t ~stage ~key size =
  let base =
    match size with
    | None -> Printf.sprintf "%s-%s.bin" stage key
    | Some n -> Printf.sprintf "%s-%s-n%d.bin" stage key n
  in
  Filename.concat t.c_dir base

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let find ?size t ~stage ~key read =
  match read_file (path_of t ~stage ~key size) with
  | None ->
      t.c_misses <- t.c_misses + 1;
      None
  | Some data -> (
      match Codec.decode ~stage data read with
      | Ok v ->
          t.c_hits <- t.c_hits + 1;
          Some v
      | Error _ ->
          (* corrupt or sealed under another codec version: a miss *)
          t.c_misses <- t.c_misses + 1;
          None)

let store ?size t ~stage ~key fill =
  let path = path_of t ~stage ~key size in
  let data = Codec.encode ~stage fill in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data);
    Sys.rename tmp path;
    t.c_writes <- t.c_writes + 1
  with Sys_error _ -> t.c_write_failures <- t.c_write_failures + 1

let mem ?size t ~stage ~key = Sys.file_exists (path_of t ~stage ~key size)

let sizes t ~stage ~key =
  let prefix = Printf.sprintf "%s-%s-n" stage key in
  let plen = String.length prefix in
  match (try Some (Sys.readdir t.c_dir) with Sys_error _ -> None) with
  | None -> []
  | Some files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             if
               String.length f > plen + 4
               && String.equal (String.sub f 0 plen) prefix
               && Filename.check_suffix f ".bin"
             then int_of_string_opt (String.sub f plen (String.length f - plen - 4))
             else None)
      |> List.sort_uniq Int.compare

let stats t =
  {
    hits = t.c_hits;
    misses = t.c_misses;
    writes = t.c_writes;
    write_failures = t.c_write_failures;
  }

(* ---- claim files ---------------------------------------------------
   Multi-process coordination: a claim is an [O_CREAT|O_EXCL]-created
   marker file in the cache directory — exactly one creator wins, with
   no locks and no server. A claim that outlives [stale_after] seconds
   (its holder was killed) can be taken over: the contender atomically
   renames the stale file aside (exactly one renamer succeeds; the
   losers see ENOENT and fall back to the normal create race) and then
   re-enters the create race for the now-vacant name. A takeover racing
   a live-but-slow holder at worst duplicates work; it can never
   corrupt results, because artifact stores are tmp+rename atomic and
   deterministic — the race only decides WHO builds, never WHAT. *)

type claim = Claimed of { stolen : bool } | Busy

let claim_path t ~name = Filename.concat t.c_dir (name ^ ".claim")

let try_create path owner =
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
  with
  | exception Unix.Unix_error _ -> false
  | fd ->
      (try
         ignore (Unix.write_substring fd owner 0 (String.length owner))
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      true

let claim_age path =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> None
  | st -> Some (Unix.gettimeofday () -. st.Unix.st_mtime)

let try_claim ?stale_after t ~name ~owner =
  let path = claim_path t ~name in
  if try_create path owner then Claimed { stolen = false }
  else
    let stale =
      match (stale_after, claim_age path) with
      | Some limit, Some age -> age > limit
      | _ -> false
    in
    if not stale then Busy
    else
      (* Rename-aside: atomic, single-winner. The unique destination
         (owner names embed the pid) means contenders never clobber
         each other's aside files. *)
      let aside = Printf.sprintf "%s.%s.stale" path owner in
      match Unix.rename path aside with
      | exception Unix.Unix_error _ ->
          (* Someone else took it over (or the holder released between
             our two looks): one more shot at the vacant name. *)
          if try_create path owner then Claimed { stolen = false } else Busy
      | () ->
          (try Unix.unlink aside with Unix.Unix_error _ -> ());
          if try_create path owner then Claimed { stolen = true } else Busy

let release t ~name =
  try Unix.unlink (claim_path t ~name) with Unix.Unix_error _ -> ()
