(** Minimal self-contained JSON representation.

    Terraform compiles HCL programs into JSON deployment plans; several
    Zodiac components (the plan format, baseline checkers, the KB dump)
    exchange data in JSON. No external JSON library is assumed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} on malformed input, with a human message. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default false) adds newlines and 2-space indent. *)

val of_string : string -> t
(** Parse a JSON document. @raise Parse_error on malformed input. *)

val of_string_result : ?max_bytes:int -> string -> (t, string) result
(** Exception-free {!of_string} for untrusted input (the [serve]
    protocol): malformed documents, truncated input, invalid escapes
    and — when [max_bytes] is given — oversized payloads all come back
    as [Error] with a human message, never an exception. *)

val member : string -> t -> t
(** [member key json] is the value bound to [key] in an object, or [Null]
    when absent or when [json] is not an object. *)

val to_list : t -> t list
(** The elements of a [List], or [] for any other constructor. *)

val string_value : t -> string option
(** [Some s] when the value is a [String]. *)

val int_value : t -> int option
(** [Some i] when the value is an [Int]. *)

val bool_value : t -> bool option
(** [Some b] when the value is a [Bool]. *)

val float_value : t -> float option
(** [Some f] for a [Float], [Some (float_of_int i)] for an [Int]. *)

val equal : t -> t -> bool
(** Structural equality with object keys order-sensitive. *)
