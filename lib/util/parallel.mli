(** Deterministic domain pool over stdlib [Domain].

    OCaml 5 gives us true shared-memory parallelism but no batteries-included
    pool (the container has no domainslib), so Zodiac carries its own. The
    design goal is stronger than "fast": every combinator here is
    {b deterministic} — the result is bit-identical to the sequential
    ([jobs = 1]) execution regardless of how many domains run or how the
    scheduler interleaves them. That is what lets the pipeline expose a
    [--jobs] knob while keeping reproducibility guarantees (same seed, same
    artifacts) intact.

    The contract is achieved by (1) splitting the input into contiguous
    chunks with a fixed chunk boundary computation that does not depend on
    [jobs]-relative scheduling, (2) writing each result into a preallocated
    slot indexed by input position, and (3) merging chunk results strictly in
    chunk-index order. Worker functions must therefore be pure up to their
    own local state: they may allocate and mutate private structures, but
    must not race on shared mutable state.

    Exceptions raised by worker functions are re-raised in the calling
    domain. When several chunks fail, the exception of the {e lowest-indexed}
    failing input wins, again independent of scheduling. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1. The
    default for every [?jobs] argument in the pipeline. *)

val sequential_cutoff : int
(** Inputs shorter than this run sequentially in the calling domain
    regardless of [jobs]: below it, [Domain.spawn] cost dominates any
    parallel win. Combined with the hardware clamp (never more domains
    than [recommended_jobs ()]), this makes the combinators adaptive —
    asking for [jobs=8] on a small input or a small machine costs
    nothing over [jobs=1]. Purely a scheduling decision; results are
    unchanged by the determinism contract. *)

val chunks_scheduled : unit -> int
(** Monotone count of chunks handed to workers since program start,
    across every combinator. Telemetry snapshots it around a stage to
    report the stage's scheduling granularity. {b Scheduling metadata
    only}: the value depends on [jobs] and the host's domain count, so
    it must never feed into artifacts or determinism checks. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed on up to [jobs] domains.
    Output order always matches input order. [jobs <= 1] (or a short input)
    runs sequentially in the calling domain with no spawns. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [mapi ~jobs f xs] is [List.mapi f xs] with the same guarantees as
    {!map}. The index passed to [f] is the element's position in [xs],
    independent of chunking. *)

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> merge:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce ~jobs ~map ~merge ~init xs] maps every element and folds the
    results {e in input order}: the result equals
    [List.fold_left merge init (List.map map xs)]. Only the [map] phase runs
    in parallel; [merge] runs sequentially in the calling domain, so it may
    freely mutate an accumulator. *)

val chunks : ?jobs:int -> 'a list -> 'a list list
(** [chunks ~jobs xs] is the deterministic chunking {!map} uses internally:
    contiguous slices, in order, concatenating back to [xs], with boundaries
    that depend only on [List.length xs] and [jobs]. Exposed for shard-merge
    callers (KB build, miner counting) that want one private accumulator per
    chunk rather than per element. *)
