(* Deterministic-by-default spans and counters. See telemetry.mli. *)

type span = {
  span_name : string;
  depth : int;
  counters : (string * int) list;
  notes : (string * string) list;
  wall_seconds : float option;
}

type event =
  | Span_open of string
  | Span_close of span
  | Count of { span : string option; counter : string; value : int }

type sink = event -> unit

type open_span = {
  os_name : string;
  os_depth : int;
  os_started : float option;
  mutable os_counters : (string * int) list; (* reverse insertion order *)
  mutable os_notes : (string * string) list;
}

type recorder = {
  clock : (unit -> float) option;
  mutable sinks : sink list;
  mutable stack : open_span list; (* innermost first *)
  mutable closed : span list; (* reverse span-open order *)
  mutable order : int; (* next open rank, pairs with closed for ordering *)
  mutable open_ranks : (string * int) list; (* rank per closed span *)
  mutable root : (string * int) list; (* counters outside any span *)
  lock : Mutex.t;
}

type t = recorder option

let null = None

let create ?clock ?(sinks = []) () =
  Some
    {
      clock;
      sinks;
      stack = [];
      closed = [];
      order = 0;
      open_ranks = [];
      root = [];
      lock = Mutex.create ();
    }

let enabled = Option.is_some

let deterministic = function None -> true | Some r -> Option.is_none r.clock

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let emit r event = List.iter (fun sink -> sink event) r.sinks

let add_sink t sink =
  match t with None -> () | Some r -> locked r (fun () -> r.sinks <- sink :: r.sinks)

let bump assoc key value =
  match List.assoc_opt key assoc with
  | None -> (key, value) :: assoc
  | Some v -> (key, v + value) :: List.remove_assoc key assoc

let sorted_pairs pairs = List.sort (fun (a, _) (b, _) -> compare a b) pairs

let count t counter value =
  match t with
  | None -> ()
  | Some r ->
      locked r (fun () ->
          let span =
            match r.stack with
            | [] ->
                r.root <- bump r.root counter value;
                None
            | os :: _ ->
                os.os_counters <- bump os.os_counters counter value;
                Some os.os_name
          in
          emit r (Count { span; counter; value }))

let note t key value =
  match t with
  | None -> ()
  | Some r ->
      locked r (fun () ->
          match r.stack with
          | [] -> ()
          | os :: _ -> os.os_notes <- (key, value) :: List.remove_assoc key os.os_notes)

let open_span r name =
  locked r (fun () ->
      let os =
        {
          os_name = name;
          os_depth = List.length r.stack;
          os_started = Option.map (fun clock -> clock ()) r.clock;
          os_counters = [];
          os_notes = [];
        }
      in
      r.stack <- os :: r.stack;
      r.order <- r.order + 1;
      emit r (Span_open name);
      (os, r.order - 1))

let close_span r (os, rank) =
  locked r (fun () ->
      (match r.stack with
      | top :: rest when top == os -> r.stack <- rest
      | stack -> r.stack <- List.filter (fun o -> o != os) stack);
      let wall_seconds =
        match (os.os_started, r.clock) with
        | Some t0, Some clock -> Some (clock () -. t0)
        | _ -> None
      in
      let span =
        {
          span_name = os.os_name;
          depth = os.os_depth;
          counters = sorted_pairs os.os_counters;
          notes = sorted_pairs os.os_notes;
          wall_seconds;
        }
      in
      r.closed <- span :: r.closed;
      r.open_ranks <- (os.os_name, rank) :: r.open_ranks;
      emit r (Span_close span);
      span)

let with_span t name f =
  match t with
  | None -> f ()
  | Some r ->
      let handle = open_span r name in
      Fun.protect ~finally:(fun () -> ignore (close_span r handle)) f

let timed t name f =
  match t with
  | None -> (f (), 0.)
  | Some r ->
      let handle = open_span r name in
      let finished = ref None in
      Fun.protect
        ~finally:(fun () ->
          match !finished with
          | Some _ -> ()
          | None -> ignore (close_span r handle))
        (fun () ->
          let result = f () in
          let span = close_span r handle in
          finished := Some span;
          (result, Option.value span.wall_seconds ~default:0.))

(* Spans are accumulated in close order; re-sort by open rank so nested
   spans appear under their parent in reports and traces. *)
let spans t =
  match t with
  | None -> []
  | Some r ->
      locked r (fun () ->
          let closed = List.rev r.closed and ranks = List.rev r.open_ranks in
          List.map snd
            (List.stable_sort
               (fun (a, _) (b, _) -> compare a b)
               (List.map2 (fun (_, rank) span -> (rank, span)) ranks closed)))

let totals t =
  match t with
  | None -> []
  | Some r ->
      let spans = spans t in
      let root = locked r (fun () -> r.root) in
      let acc =
        List.fold_left
          (fun acc span ->
            List.fold_left (fun acc (k, v) -> bump acc k v) acc span.counters)
          root spans
      in
      sorted_pairs acc

let find_counter span name = List.assoc_opt name span.counters

let span_json span =
  let base =
    [
      ("name", Json.String span.span_name);
      ("depth", Json.Int span.depth);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) span.counters) );
      ( "notes",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) span.notes) );
    ]
  in
  match span.wall_seconds with
  | None -> Json.Obj base
  | Some s -> Json.Obj (base @ [ ("wall_seconds", Json.Float s) ])

let to_json t =
  Json.Obj
    [
      ("deterministic", Json.Bool (deterministic t));
      ("spans", Json.List (List.map span_json (spans t)));
      ( "totals",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (totals t)) );
    ]

let summary_table t =
  let spans = spans t in
  let clocked = List.exists (fun s -> s.wall_seconds <> None) spans in
  let header =
    [ "stage" ] @ (if clocked then [ "wall (s)" ] else []) @ [ "counters" ]
  in
  let indent depth name = String.make (2 * depth) ' ' ^ name in
  let counters_cell span =
    match span.counters with
    | [] -> "-"
    | cs -> String.concat "  " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cs)
  in
  let rows =
    List.map
      (fun span ->
        [ indent span.depth span.span_name ]
        @ (if clocked then
             [
               (match span.wall_seconds with
               | None -> "-"
               | Some s -> Printf.sprintf "%.3f" s);
             ]
           else [])
        @ [ counters_cell span ])
      spans
  in
  Tablefmt.render ~header rows
