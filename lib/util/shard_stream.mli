(** Checkpointed folds over fixed-size shards of an indexed corpus.

    The streaming counterpart of the warm-start cache: instead of
    materializing all [total] items and counting them in one pass, a
    stream loads items shard by shard ([load ~lo ~hi]), counts each
    shard into a mergeable monoid value ([count]), folds the per-shard
    values in shard order ([merge]) and drops the shard before loading
    the next one — peak memory is one shard of items plus the
    accumulated tables, independent of [total].

    Every completed shard's counted value checkpoints through {!Cache}
    under a key derived from [(key, lo, hi)], so a killed run resumes
    from the last finished shard: on the next run, checkpointed shards
    are loaded (never re-generated, never re-counted) and only the
    unfinished ones are rebuilt. A corrupted or stale checkpoint reads
    back as a miss and that shard is rebuilt — the PR-3 corruption
    guarantee, per shard.

    Correctness contract: [merge] must be an exact monoid over
    contiguous groupings — [fold] with any [shard_size] (and any mix of
    resumed and rebuilt shards) produces a result equal to counting all
    items at once. All the Zodiac counting tables (KB stats, miner
    intra/indexed/pair/num-range/inter families) satisfy this by
    integer addition, (min, max, sum) or (max, sum) merges. *)

type outcome = {
  shards : int;  (** shards in the plan *)
  resumed : int;  (** loaded from a checkpoint, not re-counted *)
  built : int;  (** loaded, counted and checkpointed this run *)
}

val no_shards : outcome
(** [{ shards = 0; resumed = 0; built = 0 }] — the outcome of a fold
    that never ran (e.g. its downstream artifact was already cached). *)

val plan : total:int -> shard_size:int -> (int * int * int) list
(** [(index, lo, hi)] triples covering [0, total) in order, each
    spanning at most [shard_size] items ([shard_size <= 0] is treated
    as one single shard; [total <= 0] yields an empty plan). *)

val shard_key : key:string -> lo:int -> hi:int -> string
(** The checkpoint cache key of the shard [\[lo, hi)] under the
    stream-wide [key] — exposed so tests and benches can address
    individual checkpoint entries. *)

val claim_name : stage:string -> key:string -> lo:int -> hi:int -> string
(** The {!Cache.try_claim} name a worker uses for the shard
    [\[lo, hi)] of [(stage, key)] — exposed so tests and benches can
    plant or inspect claims. *)

val fold :
  ?cache:Cache.t ->
  ?telemetry:Telemetry.t ->
  ?on_shard:(index:int -> shards:int -> built:bool -> unit) ->
  stage:string ->
  key:string ->
  write:(Codec.sink -> 'b -> unit) ->
  read:(Codec.src -> 'b) ->
  load:(lo:int -> hi:int -> 'a) ->
  count:('a -> 'b) ->
  merge:('acc -> 'b -> 'acc) ->
  init:'acc ->
  total:int ->
  shard_size:int ->
  unit ->
  'acc * outcome
(** Fold the shard plan. Per shard: probe the checkpoint
    [(stage, shard_key ~key ~lo ~hi)] — on a hit merge the stored
    value, otherwise [load], [count], checkpoint and merge. [key] must
    fingerprint everything a shard's counted value depends on besides
    its own [\[lo, hi)] range (corpus identity, counting configuration,
    any whole-corpus context such as a finalized KB).

    [telemetry] receives the [shard.*] counters ([shard.total],
    [shard.resumed], [shard.built], [shard.items] — items loaded for
    rebuilt shards) inside a [shard.fold] span. Without a [cache] the
    fold still streams (bounded memory) but nothing checkpoints.
    [on_shard] fires after each shard merges (with [built = false] for
    a checkpoint resume) — a progress hook, never part of results. *)

type worker_outcome = {
  w_claimed : int;  (** shards this worker won a claim for *)
  w_built : int;  (** shards it actually counted and checkpointed *)
  w_stolen : int;  (** claims taken over from a stale holder *)
  w_waits : int;  (** poll sleeps spent waiting on siblings *)
}

val fold_worker :
  cache:Cache.t ->
  ?telemetry:Telemetry.t ->
  ?stale_after:float ->
  ?poll_interval:float ->
  stage:string ->
  key:string ->
  write:(Codec.sink -> 'b -> unit) ->
  load:(lo:int -> hi:int -> 'a) ->
  count:('a -> 'b) ->
  total:int ->
  shard_size:int ->
  unit ->
  worker_outcome
(** The multi-process side of the stream: race cooperating processes
    to checkpoint every shard of the plan, without merging anything.
    Per sweep, each shard that has no checkpoint yet is claimed through
    {!Cache.try_claim} under {!claim_name} (with [stale_after] passed
    through, so a [kill -9]'d sibling's claims are taken over once they
    age past it); a won claim re-probes the checkpoint, then loads,
    counts and stores it, and is always released. When some shards are
    still held by live siblings the worker sleeps [poll_interval]
    seconds (default 0.05) between sweeps; it returns once every shard
    in the plan is checkpointed.

    Exactly-once when no claim goes stale: the [O_CREAT|O_EXCL] create
    admits one builder per shard. After a stale takeover the work may
    be duplicated — never diverging, since checkpoint bytes are a
    deterministic function of the shard and stores are atomic.

    The caller (the parent orchestration) must still run {!fold} to
    merge the checkpoints — that fold is the merge pass, and rebuilds
    inline any shard no worker finished, so completion never depends
    on worker survival.

    [telemetry] receives [mproc.claimed]/[mproc.built]/[mproc.stolen]/
    [mproc.waits] and [shard.items] inside a [shard.worker] span. *)
