(* First-class pipeline stages. See stage.mli. *)

type 'a artifact = {
  write : Codec.sink -> 'a -> unit;
  read : Codec.src -> 'a;
}

type 'a store =
  | Uncached
  | Keyed of { key : string; artifact : 'a artifact }
  | Sized of {
      key : string;
      size : int;
      artifact : 'a artifact;
      shrink : (larger:int -> 'a -> 'a) option;
      extend : (cached:int -> 'a -> 'a) option;
    }
  | Streamed of {
      key : string;
      size : int option;
      artifact : 'a artifact;
      stream : cache:Cache.t option -> telemetry:Telemetry.t -> jobs:int -> 'a;
    }

type 'a t = {
  name : string;
  store : 'a store;
  build : jobs:int -> 'a;
}

let uncached ~name build = { name; store = Uncached; build }

let keyed ~name ~key ~artifact build =
  { name; store = Keyed { key; artifact }; build }

let sized ~name ~key ~size ~artifact ?shrink ?extend build =
  { name; store = Sized { key; size; artifact; shrink; extend }; build }

let streamed ~name ~key ?size ~artifact stream =
  {
    name;
    store = Streamed { key; size; artifact; stream };
    build = (fun ~jobs -> stream ~cache:None ~telemetry:Telemetry.null ~jobs);
  }

(* The three lookup ladders below reproduce the hand-wired PR-3 paths
   byte for byte (including which probes count as cache misses): exact
   size, then shrink-from-larger (derivable, so not re-stored), then
   extend-largest-smaller (stored at the new size), then cold. *)

let run_keyed c ~name ~jobs ~key ~artifact build set_source =
  match Cache.find c ~stage:name ~key artifact.read with
  | Some v ->
      set_source "warm";
      v
  | None ->
      let v = build ~jobs in
      Cache.store c ~stage:name ~key (fun b -> artifact.write b v);
      set_source "cold";
      v

let run_sized c ~name ~jobs ~key ~size:n ~artifact ~shrink ~extend build
    set_source =
  match Cache.find c ~stage:name ~key ~size:n artifact.read with
  | Some v ->
      set_source "warm";
      v
  | None -> (
      let sizes = Cache.sizes c ~stage:name ~key in
      let from_larger =
        match shrink with
        | None -> None
        | Some shrink ->
            List.filter (fun m -> m > n) sizes
            |> List.find_map (fun m ->
                   Option.map
                     (fun v -> shrink ~larger:m v)
                     (Cache.find c ~stage:name ~key ~size:m artifact.read))
      in
      match from_larger with
      | Some v ->
          set_source "prefix";
          v
      | None ->
          let base =
            match extend with
            | None -> None
            | Some extend ->
                List.filter (fun m -> m < n) sizes
                |> List.rev
                |> List.find_map (fun m ->
                       Option.map
                         (fun v -> (fun () -> extend ~cached:m v))
                         (Cache.find c ~stage:name ~key ~size:m artifact.read))
          in
          let v =
            match base with
            | Some grow ->
                set_source "extended";
                grow ()
            | None ->
                set_source "cold";
                build ~jobs
          in
          Cache.store c ~stage:name ~key ~size:n (fun b -> artifact.write b v);
          v)

let run ?cache ?(telemetry = Telemetry.null) ?jobs t =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallel.recommended_jobs ()
  in
  Telemetry.with_span telemetry t.name (fun () ->
      Telemetry.note telemetry "jobs" (string_of_int jobs);
      let set_source s = Telemetry.note telemetry "source" s in
      let stats0 = Option.map Cache.stats cache in
      let chunks0 = Parallel.chunks_scheduled () in
      let v =
        match (t.store, cache) with
        (* The streamed ladder: exact hit → resume from per-shard
           checkpoints (inside [stream]) → cold. Threads cache and
           telemetry into the fold even when the final artifact store
           is absent, so a cacheless run still streams. *)
        | Streamed { stream; _ }, None ->
            set_source "uncached";
            stream ~cache:None ~telemetry ~jobs
        | Streamed { key; size; artifact; stream }, Some c -> (
            match Cache.find ?size c ~stage:t.name ~key artifact.read with
            | Some v ->
                set_source "warm";
                v
            | None ->
                let v = stream ~cache ~telemetry ~jobs in
                Cache.store ?size c ~stage:t.name ~key (fun b ->
                    artifact.write b v);
                set_source "streamed";
                v)
        | Uncached, _ | _, None ->
            set_source "uncached";
            t.build ~jobs
        | Keyed { key; artifact }, Some c ->
            run_keyed c ~name:t.name ~jobs ~key ~artifact t.build set_source
        | Sized { key; size; artifact; shrink; extend }, Some c ->
            run_sized c ~name:t.name ~jobs ~key ~size ~artifact ~shrink ~extend
              t.build set_source
      in
      (match (cache, stats0) with
      | Some c, Some s0 ->
          let s1 = Cache.stats c in
          Telemetry.count telemetry "cache.hits" (s1.Cache.hits - s0.Cache.hits);
          Telemetry.count telemetry "cache.misses"
            (s1.Cache.misses - s0.Cache.misses);
          Telemetry.count telemetry "cache.writes"
            (s1.Cache.writes - s0.Cache.writes);
          (* Only surfaced when something actually failed, so healthy
             runs keep their historical counter sets. *)
          let failed = s1.Cache.write_failures - s0.Cache.write_failures in
          if failed <> 0 then
            Telemetry.count telemetry "cache.write_failures" failed
      | _ -> ());
      Telemetry.count telemetry "parallel.chunks"
        (Parallel.chunks_scheduled () - chunks0);
      v)
