(** Persistent content-addressed artifact store for warm-start runs.

    One directory, one file per entry. An entry is addressed by a
    [stage] name plus a [key] — a {!Codec.fingerprint} of everything
    the stage's output depends on — and optionally a [size] for stages
    whose output grows monotonically with corpus size (the corpus
    itself, KB statistics). Sized entries let a warm run find the
    largest cached prefix and extend it incrementally instead of
    rebuilding from scratch.

    Entries are sealed {!Codec} envelopes: a corrupted file, a stale
    codec version or a stage mismatch simply reads back as [None]
    (counted as a miss), so the caller always falls back to a cold
    rebuild. Writes go through a temp file and [Sys.rename], so a
    crashed run never leaves a half-written entry behind. All failures
    to write (read-only dir, disk full) are swallowed: the cache is an
    accelerator, never a correctness dependency. *)

type t

type stats = { hits : int; misses : int; writes : int }

val default_dir : string
(** [".zodiac-cache"] — the CLI default, kept out of version control. *)

val create : dir:string -> unit -> t
(** Open (creating directories as needed, best-effort) a cache rooted
    at [dir]. *)

val dir : t -> string

val find : ?size:int -> t -> stage:string -> key:string -> (Codec.src -> 'a) -> 'a option
(** Decode the entry for [(stage, key, size?)], or [None] (missing,
    corrupt, stale version — all count as misses). *)

val store : ?size:int -> t -> stage:string -> key:string -> (Codec.sink -> unit) -> unit
(** Atomically (re)write the entry for [(stage, key, size?)]. *)

val sizes : t -> stage:string -> key:string -> int list
(** Recorded sizes of the sized entries under [(stage, key)], sorted
    ascending. Decoding may still fail for any of them; callers must
    treat each size as a hint. *)

val stats : t -> stats
(** Hit/miss/write counters accumulated on this handle. *)
