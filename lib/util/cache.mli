(** Persistent content-addressed artifact store for warm-start runs.

    One directory, one file per entry. An entry is addressed by a
    [stage] name plus a [key] — a {!Codec.fingerprint} of everything
    the stage's output depends on — and optionally a [size] for stages
    whose output grows monotonically with corpus size (the corpus
    itself, KB statistics). Sized entries let a warm run find the
    largest cached prefix and extend it incrementally instead of
    rebuilding from scratch.

    Entries are sealed {!Codec} envelopes: a corrupted file, a stale
    codec version or a stage mismatch simply reads back as [None]
    (counted as a miss), so the caller always falls back to a cold
    rebuild. Writes go through a temp file and [Sys.rename], so a
    crashed run never leaves a half-written entry behind. All failures
    to write (read-only dir, disk full) are swallowed: the cache is an
    accelerator, never a correctness dependency. *)

type t

type stats = {
  hits : int;
  misses : int;
  writes : int;
  write_failures : int;  (** stores that failed (read-only dir, disk full) *)
}

val default_dir : string
(** [".zodiac-cache"] — the CLI default, kept out of version control. *)

val create : dir:string -> unit -> t
(** Open (creating directories as needed, best-effort) a cache rooted
    at [dir]. *)

val dir : t -> string

val find : ?size:int -> t -> stage:string -> key:string -> (Codec.src -> 'a) -> 'a option
(** Decode the entry for [(stage, key, size?)], or [None] (missing,
    corrupt, stale version — all count as misses). *)

val store : ?size:int -> t -> stage:string -> key:string -> (Codec.sink -> unit) -> unit
(** Atomically (re)write the entry for [(stage, key, size?)]. A failed
    write is swallowed (the cache is an accelerator, never a
    correctness dependency) but counted in [stats.write_failures]. *)

val mem : ?size:int -> t -> stage:string -> key:string -> bool
(** Whether an entry file exists for [(stage, key, size?)]. Cheap
    (no read, no decode) — the entry may still prove corrupt when
    decoded; only {!find} validates. *)

val sizes : t -> stage:string -> key:string -> int list
(** Recorded sizes of the sized entries under [(stage, key)], sorted
    ascending. Decoding may still fail for any of them; callers must
    treat each size as a hint. *)

val stats : t -> stats
(** Hit/miss/write counters accumulated on this handle. *)

(** {2 Claim files}

    Advisory shard claims for multi-process mining: cooperating
    processes folding into the same cache directory use claim files to
    decide who builds which shard. A claim is created atomically
    ([O_CREAT|O_EXCL] — exactly one winner), released by unlink, and —
    when its holder was [kill -9]'d — taken over once it is older than
    a caller-chosen deadline, via an atomic rename-aside that admits
    exactly one contender to the re-create race.

    Claims are {e advisory}: they only arbitrate who does the work.
    Correctness never depends on them — artifact stores are atomic and
    deterministic, so a takeover racing a live holder at worst builds
    the same bytes twice. *)

type claim =
  | Claimed of { stolen : bool }
      (** the claim is ours; [stolen] when taken over from a stale
          holder rather than freshly created *)
  | Busy  (** another live process holds it *)

val try_claim : ?stale_after:float -> t -> name:string -> owner:string -> claim
(** Try to claim [name] for [owner] (an identifying string — embed the
    pid so owners are unique per process). With [stale_after], an
    existing claim older than that many seconds is taken over. *)

val release : t -> name:string -> unit
(** Drop the claim on [name] (idempotent, never fails). *)

val claim_path : t -> name:string -> string
(** On-disk path of [name]'s claim file — exposed for tests and for
    benches that inspect lingering claims after a kill. *)
