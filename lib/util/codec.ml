exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* v2: KB observation rows carry the bounded-table residue
   (evicted mass + CIDR flag); stale v1 cache entries decode as
   [Corrupt] and are rebuilt. *)
let version = 2

type sink = Buffer.t

type src = { data : string; mutable pos : int }

let sink () = Buffer.create 4096
let contents = Buffer.contents
let src_of_string data = { data; pos = 0 }

let write_byte b i = Buffer.add_char b (Char.chr (i land 0xff))

let read_byte s =
  if s.pos >= String.length s.data then corrupt "unexpected end of input";
  let c = Char.code s.data.[s.pos] in
  s.pos <- s.pos + 1;
  c

let write_bool b v = write_byte b (if v then 1 else 0)

let read_bool s =
  match read_byte s with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bad bool byte %d" n

(* Rotate-left by one over the native int width: small non-negative
   ints stay small, small negative ints become small odd naturals, and
   the mapping is a bijection on all of [int] (unlike the textbook
   zigzag, which drops the top magnitude bit on 63-bit ints). *)
let rot1 i = (i lsl 1) lor (i lsr (Sys.int_size - 1))
let unrot1 z = (z lsr 1) lor (z lsl (Sys.int_size - 1))

let write_int b i =
  let rec go v =
    if v land lnot 0x7f = 0 then write_byte b v
    else begin
      write_byte b (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go (rot1 i)

let read_int s =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint too long";
    let byte = read_byte s in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  unrot1 (go 0 0)

let write_float b f =
  let bits = Int64.bits_of_float f in
  for k = 0 to 7 do
    write_byte b (Int64.to_int (Int64.shift_right_logical bits (8 * k)) land 0xff)
  done

let read_float s =
  let bits = ref 0L in
  for k = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (read_byte s)) (8 * k))
  done;
  Int64.float_of_bits !bits

let write_string b s =
  write_int b (String.length s);
  Buffer.add_string b s

let read_string s =
  let n = read_int s in
  if n < 0 || s.pos + n > String.length s.data then corrupt "bad string length %d" n;
  let r = String.sub s.data s.pos n in
  s.pos <- s.pos + n;
  r

let write_option w b = function
  | None -> write_byte b 0
  | Some v ->
      write_byte b 1;
      w b v

let read_option r s =
  match read_byte s with
  | 0 -> None
  | 1 -> Some (r s)
  | n -> corrupt "bad option byte %d" n

let write_list w b xs =
  write_int b (List.length xs);
  List.iter (w b) xs

let read_list r s =
  let n = read_int s in
  (* every element consumes at least one byte, so a length beyond the
     remaining input is necessarily corrupt — reject it before
     allocating *)
  if n < 0 || n > String.length s.data - s.pos then corrupt "bad list length %d" n;
  List.init n (fun _ -> r s)

let write_table wk wv b tbl =
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let rows = List.sort (fun (k1, _) (k2, _) -> Stdlib.compare k1 k2) rows in
  write_list
    (fun b (k, v) ->
      wk b k;
      wv b v)
    b rows

let read_table rk rv s =
  let rows =
    read_list
      (fun s ->
        let k = rk s in
        let v = rv s in
        (k, v))
      s
  in
  let tbl = Hashtbl.create (max 16 (List.length rows)) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) rows;
  tbl

(* ------------------------------------------------------------------ *)
(* Sealed envelopes                                                    *)
(* ------------------------------------------------------------------ *)

let magic = "ZDC1"

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let write_fixed64 b bits =
  for k = 0 to 7 do
    write_byte b (Int64.to_int (Int64.shift_right_logical bits (8 * k)) land 0xff)
  done

let read_fixed64 s =
  let bits = ref 0L in
  for k = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (read_byte s)) (8 * k))
  done;
  !bits

let encode ~stage fill =
  let body = sink () in
  fill body;
  let payload = Buffer.contents body in
  let out = sink () in
  Buffer.add_string out magic;
  write_int out version;
  write_string out stage;
  write_string out payload;
  write_fixed64 out (fnv64 payload);
  Buffer.contents out

let decode ~stage data read =
  try
    if String.length data < 4 || not (String.equal (String.sub data 0 4) magic) then
      corrupt "bad magic";
    let s = src_of_string data in
    s.pos <- 4;
    let v = read_int s in
    if v <> version then corrupt "stale codec version %d (expected %d)" v version;
    let st = read_string s in
    if not (String.equal st stage) then
      corrupt "stage mismatch: %S (expected %S)" st stage;
    let payload = read_string s in
    let sum = read_fixed64 s in
    if not (Int64.equal sum (fnv64 payload)) then corrupt "checksum mismatch";
    Ok (read (src_of_string payload))
  with Corrupt msg -> Error msg

let fingerprint parts =
  (* length-prefix each part so the digest is injective on the list,
     then MD5 for a short stable hex key *)
  let b = Buffer.create 128 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))
