(** Compact, versioned binary serialization for cached artifacts.

    The cache stores pipeline-stage outputs (corpus projects, KB
    statistics, mined candidates) on disk between runs, so the format
    must be (a) exact — floats round-trip through their IEEE-754 bits,
    ints through a lossless rotated varint — and (b) self-invalidating:
    every sealed buffer carries a magic tag, the codec {!version}, a
    stage name and a payload checksum, and {!decode} refuses anything
    that does not match. A stale or corrupted cache entry therefore
    degrades into a cache miss, never into a wrong artifact.

    Writers append to a {!sink}; readers consume a {!src} and raise
    {!Corrupt} on malformed input ({!decode} catches it). *)

type sink
(** An append-only output buffer. *)

type src
(** An input cursor over immutable bytes. *)

exception Corrupt of string
(** Raised by readers on malformed input. {!decode} turns it into
    [Error _]; readers used directly must be wrapped by the caller. *)

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with a formatted message. *)

val version : int
(** Bumped whenever any serialized layout changes; {!decode} rejects
    buffers sealed under a different version. *)

val sink : unit -> sink
val contents : sink -> string
val src_of_string : string -> src

(** {1 Primitive writers and readers}

    Every [write_x]/[read_x] pair round-trips exactly. *)

val write_byte : sink -> int -> unit
(** Low byte only; used for constructor tags. *)

val read_byte : src -> int

val write_bool : sink -> bool -> unit
val read_bool : src -> bool

val write_int : sink -> int -> unit
(** Rotated-zigzag LEB128: lossless for every native [int], one byte
    for small magnitudes. *)

val read_int : src -> int

val write_float : sink -> float -> unit
(** The raw IEEE-754 bits ({!Int64.bits_of_float}), so confidence/lift
    statistics reload bit-identically. *)

val read_float : src -> float

val write_string : sink -> string -> unit
val read_string : src -> string

val write_option : (sink -> 'a -> unit) -> sink -> 'a option -> unit
val read_option : (src -> 'a) -> src -> 'a option

val write_list : (sink -> 'a -> unit) -> sink -> 'a list -> unit
(** Length-prefixed; preserves order. *)

val read_list : (src -> 'a) -> src -> 'a list

val write_table :
  (sink -> 'k -> unit) -> (sink -> 'v -> unit) -> sink -> ('k, 'v) Hashtbl.t -> unit
(** Rows sorted by polymorphic compare on the key, so equal tables
    serialize to equal bytes regardless of insertion order (cache
    entries are reproducible). Keys must not contain functional
    values. *)

val read_table : (src -> 'k) -> (src -> 'v) -> src -> ('k, 'v) Hashtbl.t

(** {1 Sealed envelopes} *)

val encode : stage:string -> (sink -> unit) -> string
(** [encode ~stage fill] runs [fill] on a fresh sink and seals the
    payload with magic, {!version}, [stage] and an FNV-1a checksum. *)

val decode : stage:string -> string -> (src -> 'a) -> ('a, string) result
(** Verify the envelope (magic, version, stage, checksum) and run the
    reader on the payload. Any mismatch or {!Corrupt} from the reader
    yields [Error]. *)

val fingerprint : string list -> string
(** Deterministic hex digest of the given parts (order-sensitive,
    injective on the part list) — the cache-key helper. *)
