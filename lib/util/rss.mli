(** Peak-resident-set-size probe.

    Reads the process's high-water RSS mark ([VmHWM]) from
    [/proc/self/status]. Linux-only by construction: on any platform
    (or sandbox) without procfs every probe returns [None] and the
    callers degrade to not reporting memory. The probe is a read-only
    observation — it never appears in cached artifacts or deterministic
    telemetry counters, only in human-facing reports and bench JSON. *)

val peak_rss_kb : unit -> int option
(** Peak resident set size of this process in kilobytes ([VmHWM]), or
    [None] when [/proc/self/status] is unavailable or unparsable. *)

val reset_peak : unit -> bool
(** Reset the kernel's high-water mark to the current RSS by writing
    ["5"] to [/proc/self/clear_refs], so a subsequent workload measures
    its own peak rather than the process lifetime maximum. Returns
    [false] (and changes nothing) where unsupported. *)
