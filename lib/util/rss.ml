(* Peak-RSS probe over /proc/self/status. See rss.mli. *)

let status_path = "/proc/self/status"
let clear_refs_path = "/proc/self/clear_refs"

(* "VmHWM:     12345 kB" -> 12345 *)
let parse_vmhwm line =
  let prefix = "VmHWM:" in
  if String.length line <= String.length prefix then None
  else if not (String.equal (String.sub line 0 (String.length prefix)) prefix)
  then None
  else
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
    |> String.split_on_char ' '
    |> List.find_map (fun tok ->
           match String.trim tok with
           | "" -> None
           | tok -> int_of_string_opt tok)

let peak_rss_kb () =
  match open_in status_path with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line -> (
            match parse_vmhwm line with Some kb -> Some kb | None -> scan ())
      in
      let result = scan () in
      close_in_noerr ic;
      result

let reset_peak () =
  match open_out clear_refs_path with
  | exception Sys_error _ -> false
  | oc -> (
      try
        output_string oc "5\n";
        close_out oc;
        true
      with Sys_error _ ->
        close_out_noerr oc;
        false)
