(** First-class pipeline stages.

    The Figure-2 pipeline (corpus → KB → mine → filter → oracle →
    validate → counterexample) used to hand-wire each cross-cutting
    concern stage by stage: [--jobs] parallelism in one pass, cache
    keys/codecs/incremental deltas in another. A {!t} bundles what a
    stage {e is} — a name, a cache binding for its artifact and a build
    function — and {!run} applies every concern uniformly: warm-cache
    lookup/write, job-count plumbing and a {!Telemetry} span with
    cache/parallel counters. Adding the next concern (sharding, remote
    cache backends, streaming) means editing this runner once, not the
    pipeline N times.

    {b Determinism.} [run] returns exactly what the hand-wired paths
    returned: the cold build, a cached artifact decoded from a sealed
    {!Codec} envelope, or a cached prefix shrunk/extended to the
    requested size — byte-identical in all cases by the same arguments
    as before (per-index PRNG streams, monoid count merges). Telemetry
    observes; it never alters the artifact. *)

type 'a artifact = {
  write : Codec.sink -> 'a -> unit;
  read : Codec.src -> 'a;
}
(** A codec pair for the stage's output. The [read]er may raise
    {!Codec.Corrupt}; {!Cache.find} turns that into a miss. *)

(** How the stage's output is bound to the {!Cache}. *)
type 'a store =
  | Uncached  (** Pure compute (filter, oracle, validation). *)
  | Keyed of { key : string; artifact : 'a artifact }
      (** One entry addressed by [key] — a {!Codec.fingerprint} of
          every input the artifact depends on. *)
  | Sized of {
      key : string;
      size : int;
      artifact : 'a artifact;
      shrink : (larger:int -> 'a -> 'a) option;
      extend : (cached:int -> 'a -> 'a) option;
    }
      (** An output that grows monotonically with corpus size. [size]
          joins the address; a warm run may also derive the artifact
          from an entry of another size: [shrink ~larger v] cuts a
          size-[larger] artifact down to [size] (derivable, so not
          re-stored), and [extend ~cached prefix] grows a size-[cached]
          prefix up to [size] (stored at [size]). Either hook may be
          [None] to disable that path — the KB stats stage extends but
          never shrinks, matching its hand-wired predecessor. *)
  | Streamed of {
      key : string;
      size : int option;
      artifact : 'a artifact;
      stream : cache:Cache.t option -> telemetry:Telemetry.t -> jobs:int -> 'a;
    }
      (** The streaming arm of the ladder: an output folded shard by
          shard (typically a {!Shard_stream.fold}) rather than built
          from a materialized whole. The lookup order is exact-hit →
          resume-from-shard-checkpoints → cold: an exact entry at
          [(key, size?)] loads directly; otherwise [stream] runs with
          the cache and telemetry threaded through so its per-shard
          checkpoints (stored under their own stage namespace) let it
          re-count only unfinished shards, and the merged result is
          stored at [(key, size?)]. [stream] receives [cache = None]
          when the runner has no cache — it must still stream, just
          without checkpoints. *)

type 'a t = {
  name : string;
      (** Cache stage namespace and telemetry span name; one of the
          Figure-2 stage names in the pipeline. *)
  store : 'a store;
  build : jobs:int -> 'a;  (** The cold path. *)
}

val uncached : name:string -> (jobs:int -> 'a) -> 'a t
val keyed : name:string -> key:string -> artifact:'a artifact -> (jobs:int -> 'a) -> 'a t

val sized :
  name:string ->
  key:string ->
  size:int ->
  artifact:'a artifact ->
  ?shrink:(larger:int -> 'a -> 'a) ->
  ?extend:(cached:int -> 'a -> 'a) ->
  (jobs:int -> 'a) ->
  'a t

val streamed :
  name:string ->
  key:string ->
  ?size:int ->
  artifact:'a artifact ->
  (cache:Cache.t option -> telemetry:Telemetry.t -> jobs:int -> 'a) ->
  'a t
(** A {!Streamed} stage. When [name], [key], [size] and [artifact]
    match an existing {!Keyed}/{!Sized} stage's address, the exact-hit
    paths interoperate: a monolithic run warms the streamed one and
    vice versa (their artifacts are byte-identical by the monoid
    contract). *)

val run : ?cache:Cache.t -> ?telemetry:Telemetry.t -> ?jobs:int -> 'a t -> 'a
(** Execute the stage. Inside a telemetry span named [t.name] the
    runner records:
    - note ["jobs"]: the resolved job count handed to [build];
    - note ["source"]: where the artifact came from — ["uncached"]
      (no cache or [Uncached] store), ["warm"] (exact cache hit),
      ["prefix"] (shrunk from a larger entry), ["extended"]
      (incremental growth of a smaller entry), ["streamed"] (folded
      over shards, resuming from whatever checkpoints existed),
      ["cold"] (fresh build);
    - counters [cache.hits]/[cache.misses]/[cache.writes]: this
      stage's {!Cache.stats} delta;
    - counter [parallel.chunks]: the {!Parallel.chunks_scheduled}
      delta — scheduling metadata that varies with hardware, excluded
      from determinism comparisons.

    Without [?jobs] the build runs with {!Parallel.recommended_jobs}.
    Without [?cache] every store behaves like [Uncached]. *)
