(** Deterministic-by-default spans and counters for the staged pipeline.

    Every pipeline stage runs inside a {e span}; code inside the span
    attaches integer {e counters} (cache hits, deployments, retries,
    parallel chunk counts) and string {e notes} (warm/cold source,
    jobs). A recorder collects completed spans in order and can render
    them as JSON (the CLI's [--trace]) or an aligned table (the
    [report] stats section).

    {b Determinism rules.} A recorder built by {!create} without
    [~clock] never observes wall-clock time: spans carry
    [wall_seconds = None] and everything recorded is a pure function of
    the computation's own counters, so two runs of the same
    configuration produce identical telemetry. Passing [~clock]
    (e.g. [Unix.gettimeofday]) opts into wall-clock span timing — but
    the timing lives only in the recorder and its sinks; it must never
    be copied into pipeline artifacts or cache entries, which is what
    keeps cold ≡ warm byte-equality checkable.

    {b Sinks.} Observers registered with {!add_sink} (or [~sinks])
    receive every event as it happens. Sinks are pure observation: the
    recorded values and the instrumented computation's results are the
    same with zero, one or many sinks attached (a qcheck property in
    [test_stage.ml]).

    Recording is protected by a mutex, but counters should be bumped
    from the controlling domain (after [Parallel] joins), matching how
    the rest of the runtime keeps results jobs-invariant. *)

type span = {
  span_name : string;
  depth : int;  (** 0 for top-level spans; nesting increments it *)
  counters : (string * int) list;  (** sorted by counter name *)
  notes : (string * string) list;  (** sorted by key *)
  wall_seconds : float option;
      (** [None] unless the recorder was created with [~clock] *)
}

type event =
  | Span_open of string
  | Span_close of span
  | Count of { span : string option; counter : string; value : int }

type sink = event -> unit

type t

val null : t
(** The disabled recorder: every operation is a no-op, [with_span]
    just runs its thunk. Use it as the default so instrumented code
    needs no option plumbing. *)

val create : ?clock:(unit -> float) -> ?sinks:sink list -> unit -> t
(** A fresh recorder. Without [~clock] it is deterministic (no
    [wall_seconds]); with it, spans measure wall time. *)

val enabled : t -> bool
(** [false] only for {!null}. *)

val deterministic : t -> bool
(** [true] when the recorder has no clock (or is {!null}). *)

val add_sink : t -> sink -> unit

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span. The span closes (and
    reaches sinks) even if [f] raises. Nested calls record nested
    depths. *)

val count : t -> string -> int -> unit
(** Add to a counter of the innermost open span (or the recorder's
    root counters when no span is open). Zero increments are kept;
    they document that the quantity was measured. *)

val note : t -> string -> string -> unit
(** Attach/overwrite a key-value annotation on the innermost open
    span. Ignored outside any span. *)

val timed : t -> string -> (unit -> 'a) -> 'a * float
(** [timed t name f] = [with_span t name f] plus the span's wall time
    (0. on a clockless recorder) — the bench harness's timing helper. *)

val spans : t -> span list
(** Completed spans, in span-open order. *)

val totals : t -> (string * int) list
(** Counters aggregated across all spans and the root, sorted by
    name. *)

val find_counter : span -> string -> int option

val to_json : t -> Json.t
(** [{"deterministic": bool, "spans": [...], "totals": {...}}] — the
    [--trace] payload. Counters and notes are emitted in sorted order,
    so equal telemetry serializes to equal bytes. *)

val summary_table : t -> string
(** Per-stage {!Tablefmt} rendering: one row per span with its wall
    time (when clocked) and counters. *)
