(** Deterministic pseudo-random number generation.

    Zodiac's corpus generation, mining and validation experiments must be
    reproducible run-to-run, so every randomized component threads an
    explicit generator state instead of relying on global randomness.
    The implementation is SplitMix64 (Steele et al., OOPSLA'14), which is
    fast, has a 64-bit state, and supports cheap splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val derive : int -> int -> t
(** [derive seed index] is an independent stream determined only by
    [(seed, index)] — no sequential threading through a parent generator —
    so work item [index] can build its own generator on any domain and the
    result is identical to a sequential run. *)

val copy : t -> t
(** [copy t] duplicates the state; both copies evolve independently. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t items] picks proportionally to the integer weights.
    Requires at least one positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements. *)
