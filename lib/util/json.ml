type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = false) json =
  let buf = Buffer.create 256 in
  let indent n =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else begin
          (* %.17g of a large integral float has no '.' or exponent
             ("1e15" -> "1000000000000000"), which would read back as an
             Int; keep the constructor by forcing a decimal point. *)
          let text = Printf.sprintf "%.17g" f in
          Buffer.add_string buf
            (if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
             then text
             else text ^ ".0")
        end
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            emit (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            emit (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf

(* Recursive-descent parser over a string with a mutable cursor. *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let parse_literal cur lit value =
  let n = String.length lit in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = lit then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected '%s'" lit)

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
        advance cur;
        Buffer.contents buf
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            (* Decode \uXXXX; non-ASCII code points are emitted as UTF-8. *)
            if cur.pos + 4 >= String.length cur.src then fail cur "bad unicode escape";
            let hex = String.sub cur.src (cur.pos + 1) 4 in
            let hex_digit c =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
              | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
              | _ -> fail cur "bad unicode escape"
            in
            let code =
              String.fold_left (fun acc c -> (acc * 16) + hex_digit c) 0 hex
            in
            cur.pos <- cur.pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail cur "bad escape");
        advance cur;
        loop ()
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek cur with
    | Some c when is_num_char c ->
        advance cur;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub cur.src start (cur.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' ->
      advance cur;
      String (parse_string_body cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let parse_field () =
          skip_ws cur;
          expect cur '"';
          let key = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (key, v)
        in
        let fields = ref [ parse_field () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          fields := parse_field () :: !fields;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let of_string_result ?max_bytes s =
  match max_bytes with
  | Some limit when String.length s > limit ->
      Error
        (Printf.sprintf "payload of %d bytes exceeds the %d-byte limit"
           (String.length s) limit)
  | _ -> (
      match of_string s with
      | v -> Ok v
      | exception Parse_error msg -> Error msg
      | exception Stack_overflow -> Error "nesting too deep")

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function List items -> items | _ -> []

let string_value = function String s -> Some s | _ -> None

let int_value = function Int i -> Some i | _ -> None

let bool_value = function Bool b -> Some b | _ -> None

let float_value = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let equal a b = a = b
