(* Checkpointed shard folds. See shard_stream.mli. *)

type outcome = { shards : int; resumed : int; built : int }

let no_shards = { shards = 0; resumed = 0; built = 0 }

let plan ~total ~shard_size =
  if total <= 0 then []
  else
    let k = if shard_size <= 0 then total else shard_size in
    let rec go i lo acc =
      if lo >= total then List.rev acc
      else
        let hi = min total (lo + k) in
        go (i + 1) hi ((i, lo, hi) :: acc)
    in
    go 0 0 []

let shard_key ~key ~lo ~hi =
  Codec.fingerprint [ "shard"; key; string_of_int lo; string_of_int hi ]

let claim_name ~stage ~key ~lo ~hi =
  Printf.sprintf "%s-%s" stage (shard_key ~key ~lo ~hi)

let fold ?cache ?(telemetry = Telemetry.null) ?on_shard ~stage ~key ~write
    ~read ~load ~count ~merge ~init ~total ~shard_size () =
  let shards = plan ~total ~shard_size in
  Telemetry.with_span telemetry "shard.fold" (fun () ->
      let nshards = List.length shards in
      let resumed = ref 0 and built = ref 0 in
      let acc =
        List.fold_left
          (fun acc (i, lo, hi) ->
            let ckey = shard_key ~key ~lo ~hi in
            let checkpointed =
              Option.bind cache (fun c -> Cache.find c ~stage ~key:ckey read)
            in
            let value =
              match checkpointed with
              | Some v ->
                  incr resumed;
                  v
              | None ->
                  let v = count (load ~lo ~hi) in
                  Option.iter
                    (fun c ->
                      Cache.store c ~stage ~key:ckey (fun b -> write b v))
                    cache;
                  incr built;
                  Telemetry.count telemetry "shard.items" (hi - lo);
                  v
            in
            let acc = merge acc value in
            (* The shard's projects and private tables are garbage now;
               compacting keeps the heap at the live set so peak RSS
               tracks one shard plus the accumulator, not fifty shards
               of churn. Results are unaffected. *)
            Gc.compact ();
            (match on_shard with
            | Some f ->
                f ~index:i ~shards:nshards ~built:(Option.is_none checkpointed)
            | None -> ());
            acc)
          init shards
      in
      let outcome = { shards = nshards; resumed = !resumed; built = !built } in
      Telemetry.count telemetry "shard.total" outcome.shards;
      Telemetry.count telemetry "shard.resumed" outcome.resumed;
      Telemetry.count telemetry "shard.built" outcome.built;
      (acc, outcome))

(* ---- claim-driven worker sweep -------------------------------------
   The multi-process half of the stream: a worker never merges — it
   only races its siblings to checkpoint shards, sweeping the plan and
   claiming un-checkpointed shards through {!Cache.try_claim}. The
   parent's subsequent [fold] then resumes every checkpoint in shard
   order — that fold IS the merge pass, and doubles as the crash
   backstop: any shard no worker finished (or whose checkpoint is
   corrupt) is simply rebuilt inline. Claims arbitrate WHO builds;
   checkpoint bytes are deterministic, so duplicated work after a
   stale-claim takeover changes nothing. *)

type worker_outcome = {
  w_claimed : int;
  w_built : int;
  w_stolen : int;
  w_waits : int;
}

let fold_worker ~cache ?(telemetry = Telemetry.null) ?stale_after
    ?(poll_interval = 0.05) ~stage ~key ~write ~load ~count ~total
    ~shard_size () =
  let shards = plan ~total ~shard_size in
  let owner = Printf.sprintf "pid%d" (Unix.getpid ()) in
  Telemetry.with_span telemetry "shard.worker" (fun () ->
      let claimed = ref 0 and built = ref 0 in
      let stolen = ref 0 and waits = ref 0 in
      let done_ ckey = Cache.mem cache ~stage ~key:ckey in
      (* One sweep: try to build every shard that is neither
         checkpointed nor claimed by a live sibling. Returns [true]
         when every shard in the plan has a checkpoint. *)
      let sweep () =
        List.fold_left
          (fun all_done (_i, lo, hi) ->
            let ckey = shard_key ~key ~lo ~hi in
            if done_ ckey then all_done
            else
              let name = claim_name ~stage ~key ~lo ~hi in
              match Cache.try_claim ?stale_after cache ~name ~owner with
              | Cache.Busy -> false
              | Cache.Claimed { stolen = st } ->
                  Fun.protect
                    ~finally:(fun () -> Cache.release cache ~name)
                    (fun () ->
                      (* The previous holder may have finished the
                         store and died before releasing: re-probe
                         under the claim before re-mining. *)
                      if not (done_ ckey) then begin
                        incr claimed;
                        if st then incr stolen;
                        let v = count (load ~lo ~hi) in
                        Cache.store cache ~stage ~key:ckey (fun b ->
                            write b v);
                        incr built;
                        Telemetry.count telemetry "shard.items" (hi - lo);
                        Gc.compact ()
                      end);
                  all_done)
          true shards
      in
      let rec run () =
        if not (sweep ()) then begin
          (* Shards remain, all claimed by live siblings: poll until
             they checkpoint (or their claims go stale). *)
          incr waits;
          Unix.sleepf poll_interval;
          run ()
        end
      in
      run ();
      let outcome =
        {
          w_claimed = !claimed;
          w_built = !built;
          w_stolen = !stolen;
          w_waits = !waits;
        }
      in
      Telemetry.count telemetry "mproc.claimed" outcome.w_claimed;
      Telemetry.count telemetry "mproc.built" outcome.w_built;
      Telemetry.count telemetry "mproc.stolen" outcome.w_stolen;
      Telemetry.count telemetry "mproc.waits" outcome.w_waits;
      outcome)
