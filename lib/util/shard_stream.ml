(* Checkpointed shard folds. See shard_stream.mli. *)

type outcome = { shards : int; resumed : int; built : int }

let no_shards = { shards = 0; resumed = 0; built = 0 }

let plan ~total ~shard_size =
  if total <= 0 then []
  else
    let k = if shard_size <= 0 then total else shard_size in
    let rec go i lo acc =
      if lo >= total then List.rev acc
      else
        let hi = min total (lo + k) in
        go (i + 1) hi ((i, lo, hi) :: acc)
    in
    go 0 0 []

let shard_key ~key ~lo ~hi =
  Codec.fingerprint [ "shard"; key; string_of_int lo; string_of_int hi ]

let fold ?cache ?(telemetry = Telemetry.null) ~stage ~key ~write ~read ~load
    ~count ~merge ~init ~total ~shard_size () =
  let shards = plan ~total ~shard_size in
  Telemetry.with_span telemetry "shard.fold" (fun () ->
      let resumed = ref 0 and built = ref 0 in
      let acc =
        List.fold_left
          (fun acc (_i, lo, hi) ->
            let ckey = shard_key ~key ~lo ~hi in
            let checkpointed =
              Option.bind cache (fun c -> Cache.find c ~stage ~key:ckey read)
            in
            let value =
              match checkpointed with
              | Some v ->
                  incr resumed;
                  v
              | None ->
                  let v = count (load ~lo ~hi) in
                  Option.iter
                    (fun c ->
                      Cache.store c ~stage ~key:ckey (fun b -> write b v))
                    cache;
                  incr built;
                  Telemetry.count telemetry "shard.items" (hi - lo);
                  v
            in
            let acc = merge acc value in
            (* The shard's projects and private tables are garbage now;
               compacting keeps the heap at the live set so peak RSS
               tracks one shard plus the accumulator, not fifty shards
               of churn. Results are unaffected. *)
            Gc.compact ();
            acc)
          init shards
      in
      let outcome =
        { shards = List.length shards; resumed = !resumed; built = !built }
      in
      Telemetry.count telemetry "shard.total" outcome.shards;
      Telemetry.count telemetry "shard.resumed" outcome.resumed;
      Telemetry.count telemetry "shard.built" outcome.built;
      (acc, outcome))
