(* Deterministic domain pool. See parallel.mli for the contract.

   Scheduling is work-stealing over chunk indices via one [Atomic.t]; the
   nondeterminism of which domain runs which chunk never leaks into results
   because every chunk writes to slots owned by its input positions and
   merges happen strictly in index order afterwards. *)

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | None -> recommended_jobs ()
  | Some j -> max 1 j

let sequential_cutoff = 8

(* Monotone count of chunks handed to workers since program start.
   Telemetry reads it before/after a stage to report scheduling
   granularity (the [parallel.chunks] counter). Scheduling metadata
   only: the value varies with [jobs] and the host's domain count and
   never influences results. *)
let scheduled = Atomic.make 0

let chunks_scheduled () = Atomic.get scheduled

(* Domains actually worth spawning for [len] items when the caller asked
   for [jobs]: never more than the hardware has (oversubscribing a box
   only adds spawn/contention overhead — the determinism contract makes
   the clamp invisible in results), never more than [len], and none at
   all below the small-input cutoff, where spawn cost dominates. *)
let effective_jobs ~len jobs =
  if len < sequential_cutoff then 1
  else max 1 (min len (min jobs (recommended_jobs ())))

(* Contiguous chunk boundaries: chunk [i] of [n] over [len] elements covers
   [\lfloor i*len/n \rfloor, \lfloor (i+1)*len/n \rfloor). Depends only on
   [len] and [n]. *)
let bounds ~len ~n i =
  let lo = i * len / n in
  let hi = (i + 1) * len / n in
  (lo, hi)

let chunks ?jobs xs =
  let jobs = resolve_jobs jobs in
  let arr = Array.of_list xs in
  let len = Array.length arr in
  if len = 0 then []
  else
    let n = effective_jobs ~len jobs in
    ignore (Atomic.fetch_and_add scheduled n);
    List.init n (fun i ->
        let lo, hi = bounds ~len ~n i in
        Array.to_list (Array.sub arr lo (hi - lo)))

(* Run [f_chunk i] for every [i] in [0, n) on up to [jobs] domains (the
   calling domain participates). Exceptions are captured per chunk; after
   all domains join, the exception of the lowest-indexed failing chunk is
   re-raised with its backtrace. Since each chunk processes its elements in
   order and stops at the first failure, this is the lowest-indexed failing
   input among those evaluated — matching what a sequential run raises. *)
let run_chunks ~jobs ~n f_chunk =
  let jobs = min jobs (recommended_jobs ()) in
  if n <= 0 then ()
  else begin
  ignore (Atomic.fetch_and_add scheduled n);
  if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f_chunk i
    done
  else begin
    let next = Atomic.make 0 in
    let errors = Array.make n None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try f_chunk i
           with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end
  end

(* Finer-grained than [chunks]: a few chunks per domain so a slow element
   does not leave the other domains idle. Output is unaffected by the
   granularity — only load balance is. *)
let chunk_count ~len ~jobs = max 1 (min len (jobs * 4))

let mapi ?jobs f xs =
  let jobs = resolve_jobs jobs in
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when jobs <= 1 -> List.mapi f xs
  | _ ->
      let arr = Array.of_list xs in
      let len = Array.length arr in
      let jobs = effective_jobs ~len jobs in
      if jobs <= 1 then List.mapi f xs
      else begin
      let out = Array.make len None in
      let n = chunk_count ~len ~jobs in
      run_chunks ~jobs ~n (fun ci ->
          let lo, hi = bounds ~len ~n ci in
          for i = lo to hi - 1 do
            out.(i) <- Some (f i arr.(i))
          done);
      Array.to_list
        (Array.map
           (function
             | Some y -> y
             | None -> assert false (* every slot written or we raised *))
           out)
      end

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs

let map_reduce ?jobs ~map:f ~merge ~init xs =
  List.fold_left merge init (map ?jobs f xs)
